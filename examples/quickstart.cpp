// Quickstart: one designer takes a chip from behavioral description to
// mask layout through the CONCORD stack — a top-level design activity
// (AC level) whose script (DC level) runs the five design tools as
// ACID DOPs (TE level) against the versioned repository.

#include <cstdio>

#include "core/concord_system.h"
#include "sim/scenarios.h"
#include "vlsi/schema.h"

using namespace concord;

int main() {
  core::ConcordSystem system;

  // A top-level DA on its own workstation, starting from a behavioral
  // chip description of complexity 6 (six modules after synthesis).
  auto da = sim::SetupTopLevelDa(&system, "adder", /*complexity=*/6,
                                 /*max_area=*/1e9, /*max_width=*/0);
  if (!da.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 da.status().ToString().c_str());
    return 1;
  }

  Status st = system.StartDa(*da);
  if (st.ok()) st = system.RunDa(*da);
  if (!st.ok()) {
    std::fprintf(stderr, "design run failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // The DA's derivation graph now holds one DOV per tool application.
  auto graph_size = system.repository().graph(*da).size();
  auto current = system.CurrentVersion(*da);
  auto quality = system.cm().Evaluate(*da, *current);
  if (!quality.ok()) {
    std::fprintf(stderr, "evaluate failed: %s\n",
                 quality.status().ToString().c_str());
    return 1;
  }

  auto record = system.repository().Get(*current);
  double area = record->data.GetNumeric(vlsi::kAttrArea).value_or(0);
  double wirelength =
      record->data.GetNumeric(vlsi::kAttrWirelength).value_or(0);

  std::printf("design activity        : %s\n", da->ToString().c_str());
  std::printf("DOVs in derivation graph: %zu\n", graph_size);
  std::printf("final design state     : %s\n", current->ToString().c_str());
  std::printf("chip area              : %.1f\n", area);
  std::printf("est. wirelength        : %.1f\n", wirelength);
  std::printf("specification fulfilled: %zu/%zu features%s\n",
              quality->fulfilled.size(), quality->total(),
              quality->is_final() ? " (final DOV)" : "");
  std::printf("simulated design time  : %s\n",
              FormatSimTime(system.clock().Now()).c_str());
  std::printf("DOPs committed         : %llu\n",
              (unsigned long long)system.server_tm().stats().dops_committed);
  return quality->is_final() ? 0 : 2;
}
