// Chip planning with delegation — the scenario of Fig. 3 / Fig. 5.
//
// DA1 plans cell 0 top-down: structure synthesis, shape functions, and
// the chip-planner toolbox produce a floorplan whose placed subcells
// become the interfaces of delegated sub-DAs (DA2..DAn), each planning
// its subcell on its own workstation. One sub-DA is given an area
// budget no plan can meet; it reports Sub_DA_Impossible_Specification
// and the super-DA resolves the conflict by re-balancing budgets
// between siblings — the DA2/DA3 story of Sect. 4.1.

#include <cstdio>

#include "core/concord_system.h"
#include "storage/configuration.h"
#include "sim/scenarios.h"
#include "vlsi/floorplan.h"
#include "vlsi/schema.h"

using namespace concord;

int main() {
  core::ConcordSystem system;
  sim::MetricsCollector metrics;

  auto result = sim::RunDelegationScenario(&system, /*complexity=*/10,
                                           /*squeeze=*/true, &metrics);
  if (!result.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("=== Fig. 5 delegation scenario ===\n");
  std::printf("top-level DA            : %s\n",
              result->top.ToString().c_str());
  std::printf("delegated sub-DAs       : %zu\n", result->subs.size());
  std::printf("impossible spec reported: %s\n",
              result->impossible_sub.valid()
                  ? result->impossible_sub.ToString().c_str()
                  : "(none)");
  std::printf("spec re-balancing rounds: %d\n", result->replans);
  std::printf("total planned sub area  : %.1f\n", result->final_area);

  const auto& cm_stats = system.cm().stats();
  std::printf("\n=== Cooperation manager protocol log ===\n");
  std::printf("DAs created/terminated  : %llu / %llu\n",
              (unsigned long long)cm_stats.das_created,
              (unsigned long long)cm_stats.das_terminated);
  std::printf("delegations             : %llu\n",
              (unsigned long long)cm_stats.delegations);
  std::printf("events delivered        : %llu\n",
              (unsigned long long)cm_stats.events_delivered);
  std::printf("protocol violations     : %llu\n",
              (unsigned long long)cm_stats.protocol_violations);

  const auto& tm_stats = system.server_tm().stats();
  std::printf("\n=== TE level ===\n");
  std::printf("DOPs begun/committed    : %llu / %llu\n",
              (unsigned long long)tm_stats.dops_begun,
              (unsigned long long)tm_stats.dops_committed);
  std::printf("checkouts / checkins    : %llu / %llu\n",
              (unsigned long long)tm_stats.checkouts,
              (unsigned long long)tm_stats.checkins);
  std::printf("simulated design time   : %s\n",
              FormatSimTime(system.clock().Now()).c_str());

  // The inheritance effect: the final DOVs of terminated sub-DAs now
  // belong to the scope of the (completed) top-level DA's hierarchy.
  std::printf("\n=== Scope after termination ===\n");
  int inherited = 0;
  for (DaId sub : result->subs) {
    auto activity = system.cm().GetDa(sub);
    if (!activity.ok()) continue;
    for (DovId dov : (*activity)->final_dovs) {
      ++inherited;
      std::printf("  final %s of %s devolved to the super-DA\n",
                  dov.ToString().c_str(), sub.ToString().c_str());
    }
  }
  std::printf("inherited final DOVs    : %d\n", inherited);

  // The synthesized result: the configuration composed from the
  // sub-DAs' deliveries (persisted in the server DBMS).
  storage::ConfigurationStore configs(&system.repository());
  auto composed = configs.Load("fig5_composition");
  if (composed.ok()) {
    std::printf("\n=== Composed configuration '%s' ===\n",
                composed->name.c_str());
    std::printf("composite               : %s\n",
                composed->composite.ToString().c_str());
    for (const auto& [slot, dov] : composed->bindings) {
      std::printf("  %-8s -> %s\n", slot.c_str(), dov.ToString().c_str());
    }
  }
  return result->replans >= 1 && result->impossible_sub.valid() &&
                 composed.ok()
             ? 0
             : 2;
}
