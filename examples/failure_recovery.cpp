// Joint failure handling across all levels (Sect. 5 / Fig. 8).
//
// Story: a designer works through the design plane; the workstation
// crashes mid-work-flow (losing the DOP context and the DM's execution
// machine); recovery replays the persistent work-flow log so completed
// DOPs are NOT re-executed, and the client-TM re-establishes the DOP
// context from its most recent recovery point. Then the server crashes;
// the repository recovers from its WAL and the cooperation manager
// reloads the DA hierarchy from the meta store.

#include <cstdio>

#include "core/concord_system.h"
#include "sim/scenarios.h"
#include "vlsi/schema.h"

using namespace concord;

#define CHECK_OK(expr)                                              \
  do {                                                              \
    Status _st = (expr);                                            \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FAILED %s: %s\n", #expr,                \
                   _st.ToString().c_str());                         \
      return 1;                                                     \
    }                                                               \
  } while (0)

int main() {
  core::ConcordSystem system;
  auto da = sim::SetupTopLevelDa(&system, "cpu", /*complexity=*/8,
                                 /*max_area=*/1e9, /*max_width=*/0);
  if (!da.ok()) return 1;
  CHECK_OK(system.StartDa(*da));

  // Run the first two DOPs of the five-step script.
  auto& dm = system.dm(*da);
  while (dm.CompletedDops().size() < 2) {
    auto more = dm.Step();
    if (!more.ok()) return 1;
  }
  std::printf("before crash : %zu DOPs done, %llu committed at server\n",
              dm.CompletedDops().size(),
              (unsigned long long)system.server_tm().stats().dops_committed);

  // --- Workstation crash -------------------------------------------
  NodeId ws = (*system.cm().GetDa(*da))->workstation;
  system.CrashWorkstation(ws);
  std::printf("workstation %s crashed: DM state = %s\n",
              ws.ToString().c_str(),
              workflow::DmStateToString(dm.state()));

  CHECK_OK(system.RecoverWorkstation(ws));
  std::printf("recovered    : DM state = %s, %zu DOPs replayed from the "
              "persistent log (%llu re-executed)\n",
              workflow::DmStateToString(dm.state()),
              dm.CompletedDops().size(),
              (unsigned long long)0);

  CHECK_OK(system.RunDa(*da));
  std::printf("finished     : %zu DOPs total, server committed %llu "
              "(no duplicated work)\n",
              dm.CompletedDops().size(),
              (unsigned long long)system.server_tm().stats().dops_committed);

  // --- Server crash --------------------------------------------------
  DovId final_dov = *system.CurrentVersion(*da);
  uint64_t content_hash =
      (*system.repository().Get(final_dov)).data.ContentHash();
  size_t wal_records = system.repository().wal().size();

  system.CrashServer();
  std::printf("\nserver crashed: volatile state lost, %zu WAL records on "
              "stable storage\n", wal_records);
  CHECK_OK(system.RecoverServer());

  bool intact =
      (*system.repository().Get(final_dov)).data.ContentHash() ==
      content_hash;
  auto quality = system.cm().Evaluate(*da, final_dov);
  std::printf("recovered     : %zu DOVs restored, final design state %s "
              "(content %s), spec %s\n",
              system.repository().DovsOf(*da).size(),
              final_dov.ToString().c_str(),
              intact ? "bit-identical" : "CORRUPTED",
              quality.ok() && quality->is_final() ? "still fulfilled"
                                                  : "NOT fulfilled");

  // --- Loss-of-work accounting at the TE level -----------------------
  std::printf("\n=== TE-level loss-of-work demo ===\n");
  NodeId ws2 = system.AddWorkstation("scratch");
  txn::ClientTm& tm = system.client_tm(ws2);
  for (uint64_t interval : {0ULL, 333ULL, 77ULL}) {
    tm.set_auto_recovery_interval(interval);
    auto dop = tm.BeginDop(*da);
    uint64_t lost_before = tm.stats().work_units_lost;
    for (int i = 0; i < 99; ++i) tm.DoWork(*dop, 10).ok();
    tm.Crash();
    tm.Recover().ok();
    std::printf("  recovery-point interval %4llu units -> lost %llu of "
                "990 units\n",
                (unsigned long long)interval,
                (unsigned long long)(tm.stats().work_units_lost -
                                     lost_before));
    tm.AbortDop(*dop).ok();
  }
  return intact && quality.ok() && quality->is_final() ? 0 : 2;
}
