// Cooperation primitives in action: usage relationships, pre-release of
// preliminary results, ECA-rule-driven auto-propagation, negotiation
// between sibling DAs ("moving the borderline between A and B"), and
// withdrawal handling (Sect. 4.1 / 5.4).

#include <cstdio>

#include "core/concord_system.h"
#include "sim/scenarios.h"
#include "vlsi/schema.h"
#include "vlsi/tools.h"

using namespace concord;

#define CHECK_OK(expr)                                              \
  do {                                                              \
    Status _st = (expr);                                            \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FAILED %s: %s\n", #expr,                \
                   _st.ToString().c_str());                         \
      return 1;                                                     \
    }                                                               \
  } while (0)

namespace {

Result<DaId> MakeModuleDa(core::ConcordSystem* system, DaId top,
                          const std::string& name, double area_budget,
                          int designer) {
  cooperation::DaDescription desc;
  desc.dot = system->dots().module;
  desc.spec = sim::MakeSpec(area_budget, 0, vlsi::kDomainFloorplan);
  desc.designer = DesignerId(designer);
  desc.dc = sim::MakeChipPlanningScript(1);
  desc.workstation = system->AddWorkstation("ws_" + name);
  CONCORD_ASSIGN_OR_RETURN(DaId da, system->CreateSubDa(top, desc));
  storage::DesignObject seed(system->dots().module);
  seed.SetAttr(vlsi::kAttrName, name);
  seed.SetAttr(vlsi::kAttrDomain, vlsi::kDomainBehavior);
  seed.SetAttr(vlsi::kAttrBehavior, "MODULE " + name + " COMPLEXITY 5");
  seed.SetAttr(vlsi::kAttrPinCount, int64_t{8});
  CONCORD_RETURN_NOT_OK(system->SetSeedObject(da, seed));
  CONCORD_RETURN_NOT_OK(system->StartDa(da));
  return da;
}

}  // namespace

int main() {
  core::ConcordSystem system;
  auto top = sim::SetupTopLevelDa(&system, "soc", 6, 1e9, 0);
  if (!top.ok()) return 1;
  CHECK_OK(system.StartDa(*top));

  auto alice = MakeModuleDa(&system, *top, "alu", 1e6, 2);
  auto bob = MakeModuleDa(&system, *top, "rom", 1e6, 3);
  if (!alice.ok() || !bob.ok()) return 1;

  std::printf("=== 1. Alice plans and pre-releases a preliminary state ===\n");
  CHECK_OK(system.RunDa(*alice));
  DovId preliminary = *system.CurrentVersion(*alice);
  auto quality = system.cm().Evaluate(*alice, preliminary);
  std::printf("Alice's %s fulfills %zu/%zu features\n",
              preliminary.ToString().c_str(), quality->fulfilled.size(),
              quality->total());

  // Alice installs the paper's example rule:
  //   WHEN Require IF (required DOV available) THEN Propagate.
  DaId alice_id = *alice;
  core::ConcordSystem* sys = &system;
  system.dm(alice_id).rules().AddRule(
      "Require", "WHEN Require IF available THEN Propagate",
      [](const workflow::Event&) { return true; },
      [sys, alice_id](const workflow::Event&) {
        auto current = sys->CurrentVersion(alice_id);
        if (!current.ok()) return current.status();
        return sys->cm().Propagate(alice_id, *current);
      });

  std::printf("\n=== 2. Bob requires Alice's floorplan quality ===\n");
  CHECK_OK(system.cm().Require(*bob, *alice, {"goal_domain"}));
  bool visible = system.cm().InScope(*bob, preliminary);
  std::printf("after Require: ECA rule fired, %s %s visible to Bob\n",
              preliminary.ToString().c_str(),
              visible ? "is now" : "is NOT");

  std::printf("\n=== 3. Negotiation: moving the borderline ===\n");
  // Alice proposes to take 20%% of Bob's area budget.
  cooperation::Proposal proposal;
  proposal.for_from = {
      storage::Feature::AtMost("area_limit", vlsi::kAttrArea, 1.2e6)};
  proposal.for_to = {
      storage::Feature::AtMost("area_limit", vlsi::kAttrArea, 0.8e6)};
  CHECK_OK(system.cm().Propose(*alice, *bob, proposal));
  std::printf("both negotiating: alice=%s bob=%s\n",
              cooperation::DaStateToString(*system.cm().StateOf(*alice)),
              cooperation::DaStateToString(*system.cm().StateOf(*bob)));
  CHECK_OK(system.cm().Agree(*bob));
  std::printf("agreed: alice area budget=%.0f, bob area budget=%.0f\n",
              (*system.cm().GetDa(*alice))->spec.Find("area_limit")->max(),
              (*system.cm().GetDa(*bob))->spec.Find("area_limit")->max());

  std::printf("\n=== 4. Bob consumes the pre-released DOV ===\n");
  // Bob's DM runs an integration DOP whose tool checks out Alice's
  // pre-released version — so the usage lands in Bob's persistent
  // work-flow log (the basis for withdrawal analysis, Sect. 5.3).
  NodeId bob_ws = (*system.cm().GetDa(*bob))->workstation;
  txn::ClientTm& bob_tm = system.client_tm(bob_ws);
  DaId bob_id = *bob;
  DovId bob_output;
  system.dm(bob_id).SetToolRunner(
      [&](const std::string&) -> Result<workflow::DopOutcome> {
        CONCORD_ASSIGN_OR_RETURN(DopId dop, bob_tm.BeginDop(bob_id));
        CONCORD_RETURN_NOT_OK(bob_tm.Checkout(dop, preliminary));
        storage::DesignObject derived = *bob_tm.Input(dop, preliminary);
        derived.SetAttr(vlsi::kAttrName, "rom_over_alu");
        CONCORD_ASSIGN_OR_RETURN(
            DovId out, bob_tm.Checkin(dop, derived, {preliminary}));
        CONCORD_RETURN_NOT_OK(bob_tm.CommitDop(dop));
        sys->cm().NoteCheckin(bob_id, out);
        bob_output = out;
        workflow::DopOutcome outcome;
        outcome.committed = true;
        outcome.output = out;
        outcome.inputs = {preliminary};
        return outcome;
      });
  CHECK_OK(system.RunDa(*bob));
  std::printf("Bob checked out %s and derived %s from it\n",
              preliminary.ToString().c_str(),
              bob_output.ToString().c_str());

  std::printf("\n=== 5. Alice withdraws; Bob's DM pauses ===\n");
  CHECK_OK(system.cm().WithdrawPropagation(*alice, preliminary));
  auto bob_state = system.dm(*bob).state();
  std::printf("withdrawal delivered: Bob's DM is %s (his log shows the "
              "DOV was used by a local DOP)\n",
              workflow::DmStateToString(bob_state));
  bool used = system.dm(*bob).UsedDov(preliminary);
  std::printf("Bob's log analysis: UsedDov(%s) = %s\n",
              preliminary.ToString().c_str(), used ? "true" : "false");
  if (bob_state == workflow::DmState::kPaused) {
    CHECK_OK(system.dm(*bob).ResumeAfterPause());
    std::printf("designer decided to continue (his work is still valid)\n");
  }

  std::printf("\n=== Cooperation manager totals ===\n");
  const auto& stats = system.cm().stats();
  std::printf("require/propagate/withdraw: %llu / %llu / %llu\n",
              (unsigned long long)stats.require_ops,
              (unsigned long long)stats.propagations,
              (unsigned long long)stats.withdrawals);
  std::printf("proposals/agreements      : %llu / %llu\n",
              (unsigned long long)stats.proposals,
              (unsigned long long)stats.agreements);
  return visible && used ? 0 : 2;
}
