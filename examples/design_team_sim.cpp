// A design team under fire: several designers run their designs
// concurrently against one shared repository server while workstation
// and server crashes are injected — the paper's workstation/server
// world of Sect. 5.1 end to end. Every design must still complete, and
// the loss is bounded by the recovery-point fire-walls.

#include <cstdio>

#include "sim/simulator.h"

using namespace concord;

int main() {
  struct Row {
    const char* label;
    sim::SimulationOptions options;
  };
  sim::SimulationOptions calm;
  calm.designs = 6;
  calm.complexity = 8;

  sim::SimulationOptions flaky_workstations = calm;
  flaky_workstations.workstation_crash_probability = 0.05;

  sim::SimulationOptions hostile = calm;
  hostile.workstation_crash_probability = 0.05;
  hostile.server_crash_probability = 0.02;

  Row rows[] = {
      {"calm office", calm},
      {"flaky workstations (5%/step)", flaky_workstations},
      {"hostile world (+2% server)", hostile},
  };

  std::printf("%-30s | %s\n", "scenario", "outcome");
  std::printf("%.30s-+-%.60s\n",
              "------------------------------",
              "------------------------------------------------------------");
  bool all_ok = true;
  for (const Row& row : rows) {
    sim::MultiDesignerSimulation simulation(row.options);
    auto report = simulation.Run();
    if (!report.ok()) {
      std::printf("%-30s | FAILED: %s\n", row.label,
                  report.status().ToString().c_str());
      all_ok = false;
      continue;
    }
    std::printf("%-30s | %s\n", row.label, report->ToString().c_str());
    all_ok = all_ok && report->designs_failed == 0 &&
             report->designs_completed == row.options.designs;
  }
  return all_ok ? 0 : 1;
}
