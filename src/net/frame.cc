#include "net/frame.h"

#include "common/serde.h"

namespace concord::net {

void AppendFrame(std::string* out, FrameType type, std::string_view payload) {
  PutFixed32(out, kFrameMagic);
  PutByte(out, static_cast<uint8_t>(type));
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  PutFixed32(out, Crc32(payload));
  out->append(payload);
}

void FrameDecoder::Feed(std::string_view bytes) {
  if (!error_.ok()) return;
  // Compact once the consumed prefix dominates, so the buffer does not
  // grow without bound on a long-lived connection.
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

Result<Frame> FrameDecoder::Next() {
  if (!error_.ok()) return error_;
  std::string_view rest(buffer_.data() + consumed_,
                        buffer_.size() - consumed_);
  if (rest.size() < kFrameHeaderBytes) {
    return Status::Unavailable("need more bytes for frame header");
  }
  ByteReader reader(rest);
  uint32_t magic = 0;
  uint8_t type_byte = 0;
  uint32_t len = 0;
  uint32_t crc = 0;
  reader.ReadFixed32(&magic);
  reader.ReadByte(&type_byte);
  reader.ReadFixed32(&len);
  reader.ReadFixed32(&crc);
  if (magic != kFrameMagic) {
    error_ = Status::ProtocolViolation("bad frame magic");
    return error_;
  }
  if (type_byte < static_cast<uint8_t>(FrameType::kRequest) ||
      type_byte > static_cast<uint8_t>(FrameType::kGoodbye)) {
    error_ = Status::ProtocolViolation("bad frame type " +
                                       std::to_string(type_byte));
    return error_;
  }
  if (len == 0) {
    error_ = Status::ProtocolViolation("zero-length frame");
    return error_;
  }
  if (len > max_payload_) {
    error_ = Status::ProtocolViolation("oversized frame: " +
                                       std::to_string(len) + " bytes");
    return error_;
  }
  if (rest.size() < kFrameHeaderBytes + len) {
    return Status::Unavailable("need more bytes for frame payload");
  }
  std::string_view payload = rest.substr(kFrameHeaderBytes, len);
  if (Crc32(payload) != crc) {
    error_ = Status::ProtocolViolation("frame CRC mismatch");
    return error_;
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type_byte);
  frame.payload.assign(payload.data(), payload.size());
  consumed_ += kFrameHeaderBytes + len;
  return frame;
}

}  // namespace concord::net
