#include "net/address.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace concord::net {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// Builds the sockaddr for `address`. Returns the length used.
Result<socklen_t> FillSockaddr(const Address& address,
                               sockaddr_storage* storage) {
  std::memset(storage, 0, sizeof(*storage));
  if (address.kind == Address::Kind::kTcp) {
    auto* sin = reinterpret_cast<sockaddr_in*>(storage);
    sin->sin_family = AF_INET;
    sin->sin_port = htons(address.port);
    if (::inet_pton(AF_INET, address.host.c_str(), &sin->sin_addr) != 1) {
      return Status::InvalidArgument("not an IPv4 address: " + address.host);
    }
    return static_cast<socklen_t>(sizeof(sockaddr_in));
  }
  auto* sun = reinterpret_cast<sockaddr_un*>(storage);
  if (address.path.size() + 1 > sizeof(sun->sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " +
                                   address.path);
  }
  sun->sun_family = AF_UNIX;
  std::memcpy(sun->sun_path, address.path.c_str(), address.path.size() + 1);
  return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                address.path.size() + 1);
}

Result<int> NewSocket(const Address& address) {
  int domain = address.kind == Address::Kind::kTcp ? AF_INET : AF_UNIX;
  int fd = ::socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  if (address.kind == Address::Kind::kTcp) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

}  // namespace

Address Address::Tcp(std::string host, uint16_t port) {
  Address a;
  a.kind = Kind::kTcp;
  a.host = std::move(host);
  a.port = port;
  return a;
}

Address Address::Unix(std::string path) {
  Address a;
  a.kind = Kind::kUnix;
  a.path = std::move(path);
  return a;
}

Result<Address> Address::Parse(const std::string& text) {
  if (text.rfind("unix:", 0) == 0) {
    std::string path = text.substr(5);
    if (path.empty()) {
      return Status::InvalidArgument("empty unix socket path in '" + text +
                                     "'");
    }
    return Unix(std::move(path));
  }
  if (text.rfind("tcp:", 0) == 0) {
    std::string rest = text.substr(4);
    size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("expected tcp:HOST:PORT in '" + text +
                                     "'");
    }
    std::string host = rest.substr(0, colon);
    std::string port_text = rest.substr(colon + 1);
    char* end = nullptr;
    long port = std::strtol(port_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
      return Status::InvalidArgument("bad port '" + port_text + "' in '" +
                                     text + "'");
    }
    return Tcp(std::move(host), static_cast<uint16_t>(port));
  }
  return Status::InvalidArgument(
      "address must start with tcp: or unix: — got '" + text + "'");
}

std::string Address::ToString() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Result<int> ListenOn(const Address& address, int backlog, Address* bound) {
  if (address.kind == Address::Kind::kUnix) {
    // A previous owner that died by SIGKILL leaves the inode behind and
    // bind() would fail EADDRINUSE forever. Ownership of the data is
    // guarded by the WAL LOCK file, so reclaiming the socket name here
    // is safe — and exactly what a restarted concordd needs.
    ::unlink(address.path.c_str());
  }
  CONCORD_ASSIGN_OR_RETURN(int fd, NewSocket(address));
  sockaddr_storage storage;
  auto len = FillSockaddr(address, &storage);
  if (!len.ok()) {
    CloseFd(fd);
    return len.status();
  }
  if (address.kind == Address::Kind::kTcp) {
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&storage), *len) != 0) {
    Status st = Errno("bind " + address.ToString());
    CloseFd(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    Status st = Errno("listen " + address.ToString());
    CloseFd(fd);
    return st;
  }
  if (bound != nullptr) {
    *bound = address;
    if (address.kind == Address::Kind::kTcp && address.port == 0) {
      sockaddr_in sin;
      socklen_t sin_len = sizeof(sin);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sin), &sin_len) ==
          0) {
        bound->port = ntohs(sin.sin_port);
      }
    }
  }
  return fd;
}

Result<int> StartConnect(const Address& address) {
  CONCORD_ASSIGN_OR_RETURN(int fd, NewSocket(address));
  sockaddr_storage storage;
  auto len = FillSockaddr(address, &storage);
  if (!len.ok()) {
    CloseFd(fd);
    return len.status();
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&storage), *len) != 0 &&
      errno != EINPROGRESS) {
    Status st = Errno("connect " + address.ToString());
    CloseFd(fd);
    return st;
  }
  return fd;
}

Status FinishConnect(int fd) {
  int err = 0;
  socklen_t err_len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
    return Errno("getsockopt(SO_ERROR)");
  }
  if (err != 0) {
    return Status::Unavailable(std::string("connect failed: ") +
                               std::strerror(err));
  }
  return Status::OK();
}

Result<int> AcceptOn(int listen_fd) {
  int fd = ::accept4(listen_fd, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("accept queue empty");
    }
    return Errno("accept");
  }
  return fd;
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace concord::net
