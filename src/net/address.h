#ifndef CONCORD_NET_ADDRESS_H_
#define CONCORD_NET_ADDRESS_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace concord::net {

/// A transport endpoint: TCP ("tcp:host:port") or Unix-domain socket
/// ("unix:/path/to.sock"). Both carry the same framed stream protocol;
/// UDS is the one-box deployment (concordd plane + workstation drivers
/// on a developer machine or the crash harness), TCP the multi-box one.
struct Address {
  enum class Kind { kTcp, kUnix };

  Kind kind = Kind::kTcp;
  std::string host;    // kTcp
  uint16_t port = 0;   // kTcp; 0 = ephemeral (resolved at bind)
  std::string path;    // kUnix

  static Address Tcp(std::string host, uint16_t port);
  static Address Unix(std::string path);

  /// Parses "tcp:HOST:PORT" or "unix:/PATH".
  static Result<Address> Parse(const std::string& text);

  std::string ToString() const;
};

// --- Socket helpers (all fds are created O_NONBLOCK | O_CLOEXEC) ---------

/// Creates, binds and listens. A UDS path left behind by a SIGKILL'd
/// previous owner is unlinked first (the WAL LOCK file, not the socket
/// inode, is the single-owner guard). On success, for a TCP address
/// with port 0 `bound` (when non-null) receives the address with the
/// kernel-assigned port; otherwise a copy of `address`.
Result<int> ListenOn(const Address& address, int backlog = 64,
                     Address* bound = nullptr);

/// Starts a nonblocking connect. Returns the fd with the connect in
/// flight (or already established); completion is observed by polling
/// writability and reading SO_ERROR (FinishConnect).
Result<int> StartConnect(const Address& address);

/// Resolves a poll-writable in-flight connect: OK when established,
/// the socket error otherwise. The caller closes the fd on failure.
Status FinishConnect(int fd);

/// Accepts one pending connection (nonblocking); kUnavailable when the
/// accept queue is empty.
Result<int> AcceptOn(int listen_fd);

Status SetNonBlocking(int fd);
void CloseFd(int fd);

}  // namespace concord::net

#endif  // CONCORD_NET_ADDRESS_H_
