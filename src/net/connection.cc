#include "net/connection.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/address.h"

namespace concord::net {

FramedConnection::FramedConnection(EventLoop* loop, int fd)
    : loop_(loop), fd_(fd) {}

FramedConnection::~FramedConnection() { Close(); }

void FramedConnection::Start() {
  loop_->RegisterFd(fd_, POLLIN, [this](short events) { HandleEvents(events); });
}

void FramedConnection::Close() {
  if (fd_ < 0) return;
  loop_->UnregisterFd(fd_);
  CloseFd(fd_);
  fd_ = -1;
}

void FramedConnection::Fail(Status reason) {
  if (fd_ < 0) return;
  Close();
  if (on_closed_) {
    // The handler may destroy this connection; detach it first and
    // touch nothing afterwards.
    ClosedHandler handler = std::move(on_closed_);
    on_closed_ = nullptr;
    handler(std::move(reason));
  }
}

void FramedConnection::UpdateWatchedEvents() {
  if (fd_ < 0) return;
  short events = POLLIN;
  if (outbound_.size() > outbound_offset_) events |= POLLOUT;
  loop_->UpdateEvents(fd_, events);
}

void FramedConnection::HandleEvents(short events) {
  // Read first even on POLLERR/POLLHUP: the kernel may still hold
  // buffered bytes (including the peer's goodbye frame).
  if (events & (POLLIN | POLLERR | POLLHUP)) {
    HandleReadable();
    if (fd_ < 0) return;
  }
  if (events & POLLOUT) {
    HandleWritable();
  }
}

void FramedConnection::HandleReadable() {
  char buf[16384];
  for (;;) {
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
      for (;;) {
        auto frame = decoder_.Next();
        if (!frame.ok()) {
          if (frame.status().IsUnavailable()) break;  // need more bytes
          Fail(frame.status());
          return;
        }
        if (frame->type == FrameType::kGoodbye) {
          peer_said_goodbye_ = true;
        }
        if (on_frame_) on_frame_(std::move(*frame));
        if (fd_ < 0) return;  // handler closed us
      }
      continue;
    }
    if (n == 0) {
      Fail(peer_said_goodbye_
               ? Status::OK()
               : Status::Unavailable("peer closed connection"));
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    Fail(Status::Unavailable(std::string("read: ") + std::strerror(errno)));
    return;
  }
}

void FramedConnection::HandleWritable() {
  while (outbound_.size() > outbound_offset_) {
    ssize_t n = ::send(fd_, outbound_.data() + outbound_offset_,
                       outbound_.size() - outbound_offset_, MSG_NOSIGNAL);
    if (n > 0) {
      outbound_offset_ += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    Fail(Status::Unavailable(std::string("write: ") + std::strerror(errno)));
    return;
  }
  if (outbound_offset_ == outbound_.size()) {
    outbound_.clear();
    outbound_offset_ = 0;
  } else if (outbound_offset_ > 65536) {
    outbound_.erase(0, outbound_offset_);
    outbound_offset_ = 0;
  }
  UpdateWatchedEvents();
}

void FramedConnection::SendFrame(FrameType type, std::string_view payload) {
  if (fd_ < 0) return;
  AppendFrame(&outbound_, type, payload);
  HandleWritable();
}

}  // namespace concord::net
