#ifndef CONCORD_NET_FRAME_H_
#define CONCORD_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace concord::net {

/// Stream framing for the socket transport. Every message on a
/// connection is one frame:
///
///     [u32 magic "CNCD"][u8 type][u32 payload_len][u32 crc32(payload)]
///     [payload bytes]
///
/// All integers little-endian (common/serde.h). The magic catches a
/// peer speaking the wrong protocol (or a desynchronized stream) on the
/// first header; the CRC catches payload corruption. A violated header
/// is NOT resynchronizable — stream transports have no record
/// boundaries to hunt for — so any framing error tears the connection
/// down; the RPC layer's call ids + the callee dedup table make the
/// reconnect-and-retry safe (at-most-once).
///
/// payload_len must be in [1, kMaxFramePayload]: zero-length frames are
/// rejected (every protocol message has a body; an all-zero header is
/// what half-written garbage looks like), as are lengths beyond the
/// bound (a corrupt length must not become an allocation request).

enum class FrameType : uint8_t {
  kRequest = 1,
  kReply = 2,
  /// Graceful shutdown notice: the peer is closing after this frame;
  /// in-flight calls should be retried elsewhere/later, not failed.
  kGoodbye = 3,
};

inline constexpr uint32_t kFrameMagic = 0x44434E43u;  // "CNCD" LE
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 4 + 4;
inline constexpr uint32_t kMaxFramePayload = 16u << 20;

/// Appends one encoded frame to `out`.
void AppendFrame(std::string* out, FrameType type, std::string_view payload);

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kRequest;
  std::string payload;
};

/// Incremental frame reassembler: feed whatever the socket produced —
/// any fragmentation, down to one byte at a time — and poll complete
/// frames out. A framing violation (bad magic, bad type, zero/oversized
/// length, CRC mismatch) puts the decoder into a permanent error state;
/// the connection must be torn down.
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Appends raw stream bytes.
  void Feed(std::string_view bytes);

  /// Extracts the next complete frame: OK with the frame, kUnavailable
  /// while more bytes are needed, or the sticky framing error.
  Result<Frame> Next();

  bool broken() const { return !error_.ok(); }
  const Status& error() const { return error_; }

  /// Bytes buffered but not yet consumed by complete frames.
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  const uint32_t max_payload_;
  std::string buffer_;
  /// Prefix of buffer_ already handed out as frames (compacted lazily
  /// so Feed is amortized O(bytes)).
  size_t consumed_ = 0;
  Status error_ = Status::OK();
};

}  // namespace concord::net

#endif  // CONCORD_NET_FRAME_H_
