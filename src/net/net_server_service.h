#ifndef CONCORD_NET_NET_SERVER_SERVICE_H_
#define CONCORD_NET_NET_SERVER_SERVICE_H_

#include <memory>
#include <utility>

#include "net/rpc_client.h"
#include "txn/server_service.h"

namespace concord::net {

/// txn::ServerService over a real socket: the third transport backend
/// behind the seam ClientTm programs against (next to
/// LocalServerService and the simulated RemoteServerStub). Encodes the
/// batch with the existing wire codec, ships it through an RpcChannel,
/// and decodes the reply — the transaction layers cannot tell the
/// difference, which is the whole point of the seam.
class NetServerService : public txn::ServerService {
 public:
  /// `server_node` is the NodeId the remote concordd serves (shard
  /// routing and message accounting key off it; it is configuration,
  /// not discovered over the wire).
  NetServerService(NodeId server_node, std::shared_ptr<RpcChannel> channel)
      : server_node_(server_node), channel_(std::move(channel)) {}

  NodeId server_node() const override { return server_node_; }

  Result<txn::BatchReply> Execute(const txn::BatchRequest& batch) override {
    CONCORD_ASSIGN_OR_RETURN(
        std::string reply,
        channel_->Call(txn::kServerServiceMethod,
                       txn::EncodeBatchRequest(batch)));
    return txn::DecodeBatchReply(reply);
  }

  RpcChannel& channel() { return *channel_; }

 private:
  const NodeId server_node_;
  std::shared_ptr<RpcChannel> channel_;
};

}  // namespace concord::net

#endif  // CONCORD_NET_NET_SERVER_SERVICE_H_
