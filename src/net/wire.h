#ifndef CONCORD_NET_WIRE_H_
#define CONCORD_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace concord::net {

/// RPC-level envelopes carried as frame payloads (net/frame.h). The
/// transport is content-agnostic: `payload` is whatever the method's
/// codec produced (for the server-TM surface, an encoded BatchRequest /
/// BatchReply from txn/server_service.h).

/// One request. `client_id` + `call_id` key the callee's at-most-once
/// dedup table; call ids are monotonic per client, and `acked_below`
/// tells the callee every call id below it is complete (its cached
/// replies can be dropped — the dedup-bound mechanism).
struct RequestEnvelope {
  uint64_t client_id = 0;
  uint64_t call_id = 0;
  uint64_t acked_below = 0;
  std::string method;
  std::string payload;
};

/// One reply, matched to its request by call id. Application-level
/// handler failures travel as the typed Status (`status` non-OK,
/// payload empty) — exactly the split rpc::TransactionalRpc makes.
struct ReplyEnvelope {
  uint64_t call_id = 0;
  Status status = Status::OK();
  std::string payload;
};

std::string EncodeRequestEnvelope(const RequestEnvelope& request);
Result<RequestEnvelope> DecodeRequestEnvelope(std::string_view bytes);

std::string EncodeReplyEnvelope(const ReplyEnvelope& reply);
Result<ReplyEnvelope> DecodeReplyEnvelope(std::string_view bytes);

}  // namespace concord::net

#endif  // CONCORD_NET_WIRE_H_
