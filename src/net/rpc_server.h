#ifndef CONCORD_NET_RPC_SERVER_H_
#define CONCORD_NET_RPC_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "net/address.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "rpc/dedup_cache.h"

namespace concord::net {

struct RpcServerStats {
  uint64_t requests_received = 0;
  uint64_t requests_executed = 0;
  uint64_t dedup_hits = 0;
  uint64_t duplicate_in_flight = 0;
  uint64_t protocol_errors = 0;
};

/// Socket-facing RPC server: accepts framed connections on one listen
/// address, decodes request envelopes, and executes registered method
/// handlers with at-most-once semantics per (client_id, call_id).
///
/// Threading: one event-loop thread owns all sockets and the in-flight
/// bookkeeping; a small worker pool executes handlers (which may be
/// slow — they run full transaction batches) so the loop never blocks.
/// Completion hops back to the loop thread via Post to send the reply
/// and record it in the shared DedupCache. A retry arriving while the
/// original execution is still running attaches to that execution
/// instead of re-executing.
///
/// At-most-once holds per server incarnation: the dedup table is in
/// memory, so a kill -9 erases it and a retried call from before the
/// crash may re-execute. The transaction layer is what makes that safe
/// (idempotent Decide, WAL-recovered prepared state); see
/// docs/TRANSPORT.md.
class RpcServer {
 public:
  using Handler = std::function<Result<std::string>(const std::string&)>;

  struct Options {
    int worker_threads = 2;
    /// Per-client cached-reply bound (rpc::DedupCache).
    size_t dedup_capacity_per_peer = 1024;
  };

  explicit RpcServer(Address address)
      : RpcServer(std::move(address), Options()) {}
  RpcServer(Address address, Options options);
  ~RpcServer();
  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Register before Start(); the method table is immutable afterwards.
  void RegisterMethod(std::string method, Handler handler);

  /// Binds, listens, and spins up the loop + worker threads.
  Status Start();

  /// Graceful: sends kGoodbye on every open connection, stops
  /// accepting, drains workers, joins all threads. Idempotent.
  void Shutdown();

  /// Valid after Start(); ephemeral TCP ports are resolved here.
  const Address& bound_address() const { return bound_; }

  RpcServerStats stats() const;
  const rpc::DedupCache& dedup() const { return dedup_; }

 private:
  struct WorkItem {
    uint64_t client_id = 0;
    uint64_t call_id = 0;
    uint64_t conn_id = 0;
    std::string method;
    std::string payload;
  };

  // Loop-thread-only.
  void AcceptPending();
  void OnFrame(uint64_t conn_id, Frame frame);
  void OnConnectionClosed(uint64_t conn_id);
  void SendReply(uint64_t conn_id, uint64_t call_id, const Status& status,
                 const std::string& payload);
  void CompleteCall(uint64_t client_id, uint64_t call_id,
                    const Status& status, const std::string& payload);

  void WorkerMain();

  const Address address_;
  const Options options_;
  Address bound_;
  int listen_fd_ = -1;
  bool started_ = false;
  bool shut_down_ = false;

  EventLoop loop_;
  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  // Owned by the loop thread after Start().
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<FramedConnection>> conns_;
  /// (client, call) → connections waiting on the running execution.
  std::map<std::pair<uint64_t, uint64_t>, std::vector<uint64_t>> in_flight_;
  std::unordered_map<std::string, Handler> methods_;

  rpc::DedupCache dedup_;

  Mutex queue_mu_;
  CondVar queue_cv_;
  std::deque<WorkItem> queue_ GUARDED_BY(queue_mu_);
  bool stopping_ GUARDED_BY(queue_mu_) = false;

  std::atomic<uint64_t> requests_received_{0};
  std::atomic<uint64_t> requests_executed_{0};
  std::atomic<uint64_t> duplicate_in_flight_{0};
  std::atomic<uint64_t> protocol_errors_{0};
};

}  // namespace concord::net

#endif  // CONCORD_NET_RPC_SERVER_H_
