#include "net/rpc_client.h"

#include <poll.h>

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "net/wire.h"

namespace concord::net {

RpcChannel::RpcChannel(uint64_t client_id, Address server, Options options)
    : client_id_(client_id),
      server_(std::move(server)),
      options_(options),
      backoff_ms_(options.connect_backoff_initial_ms) {
  loop_thread_ = std::thread([this] { loop_.Run(); });
}

RpcChannel::~RpcChannel() { Shutdown(); }

void RpcChannel::Shutdown() {
  bool expected = false;
  if (!shut_down_.compare_exchange_strong(expected, true)) return;
  loop_.Post([this] {
    if (reconnect_timer_ != 0) {
      loop_.CancelTimer(reconnect_timer_);
      reconnect_timer_ = 0;
    }
    if (connect_fd_ >= 0) {
      loop_.UnregisterFd(connect_fd_);
      CloseFd(connect_fd_);
      connect_fd_ = -1;
    }
    if (conn_ && !conn_->closed()) {
      conn_->SendFrame(FrameType::kGoodbye, "bye");
      conn_->Close();
    }
    for (auto& [id, call] : outstanding_) {
      (void)id;
      Fulfill(call, Status::Unavailable("rpc channel shut down"), "");
    }
    outstanding_.clear();
  });
  loop_.Stop();
  loop_thread_.join();
}

RpcChannelStats RpcChannel::stats() const {
  RpcChannelStats s;
  s.calls = calls_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.connect_failures = connect_failures_.load(std::memory_order_relaxed);
  return s;
}

void RpcChannel::Fulfill(const std::shared_ptr<PendingCall>& call,
                         Status status, std::string reply) {
  {
    MutexLock lock(&call->mu);
    if (call->done) return;
    call->done = true;
    call->status = std::move(status);
    call->reply = std::move(reply);
  }
  call->cv.NotifyAll();
}

Result<std::string> RpcChannel::Call(const std::string& method,
                                     const std::string& payload) {
  if (shut_down_.load(std::memory_order_acquire)) {
    return Status::Unavailable("rpc channel shut down");
  }
  uint64_t call_id = next_call_id_.fetch_add(1, std::memory_order_relaxed);
  calls_.fetch_add(1, std::memory_order_relaxed);
  auto call = std::make_shared<PendingCall>();
  call->method = method;
  call->payload = payload;
  loop_.Post([this, call_id, call] {
    if (shut_down_.load(std::memory_order_acquire)) {
      Fulfill(call, Status::Unavailable("rpc channel shut down"), "");
      return;
    }
    outstanding_[call_id] = call;
    if (state_ == LinkState::kConnected) {
      SendRequest(call_id, *call);
    } else {
      EnsureConnected();
    }
  });

  bool done;
  {
    MutexLock lock(&call->mu);
    done = call->cv.WaitFor(&call->mu, options_.call_timeout_ms,
                            [&call]() REQUIRES(call->mu) { return call->done; });
  }
  if (!done) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    // Abandon: once erased, this id is never retried, so it drops
    // below acked_below and the server may forget it.
    loop_.Post([this, call_id] { outstanding_.erase(call_id); });
    return Status::Unavailable("rpc call timed out after " +
                               std::to_string(options_.call_timeout_ms) +
                               "ms (in doubt)");
  }
  MutexLock lock(&call->mu);
  if (!call->status.ok()) return call->status;
  return call->reply;
}

uint64_t RpcChannel::AckedBelow() const {
  // Call ids are monotonic; everything below the lowest id still
  // outstanding is complete (replied or abandoned) and will never be
  // retried by this channel.
  if (outstanding_.empty()) {
    return next_call_id_.load(std::memory_order_relaxed);
  }
  return outstanding_.begin()->first;
}

void RpcChannel::SendRequest(uint64_t call_id, const PendingCall& call) {
  RequestEnvelope request;
  request.client_id = client_id_;
  request.call_id = call_id;
  request.acked_below = AckedBelow();
  request.method = call.method;
  request.payload = call.payload;
  conn_->SendFrame(FrameType::kRequest, EncodeRequestEnvelope(request));
}

void RpcChannel::EnsureConnected() {
  if (state_ != LinkState::kDisconnected || reconnect_timer_ != 0 ||
      shut_down_.load(std::memory_order_acquire)) {
    return;
  }
  auto fd = StartConnect(server_);
  if (!fd.ok()) {
    connect_failures_.fetch_add(1, std::memory_order_relaxed);
    ScheduleReconnect();
    return;
  }
  state_ = LinkState::kConnecting;
  connect_fd_ = *fd;
  loop_.RegisterFd(connect_fd_, POLLOUT, [this, fd = *fd](short events) {
    OnConnectResult(fd, events);
  });
}

void RpcChannel::OnConnectResult(int fd, short /*events*/) {
  loop_.UnregisterFd(fd);
  connect_fd_ = -1;
  Status st = FinishConnect(fd);
  if (!st.ok()) {
    CloseFd(fd);
    connect_failures_.fetch_add(1, std::memory_order_relaxed);
    state_ = LinkState::kDisconnected;
    ScheduleReconnect();
    return;
  }
  state_ = LinkState::kConnected;
  backoff_ms_ = options_.connect_backoff_initial_ms;
  if (connected_once_) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  connected_once_ = true;
  conn_ = std::make_unique<FramedConnection>(&loop_, fd);
  conn_->set_on_frame([this](Frame frame) { OnFrame(std::move(frame)); });
  conn_->set_on_closed(
      [this](Status reason) { OnConnectionClosed(std::move(reason)); });
  conn_->Start();
  // Re-send every unreplied call, lowest id first. The server's dedup
  // table answers the ones it already executed.
  size_t resent = 0;
  for (const auto& [id, call] : outstanding_) {
    SendRequest(id, *call);
    ++resent;
    if (conn_ == nullptr || conn_->closed()) break;
  }
  if (resent > 0 && reconnects_.load(std::memory_order_relaxed) > 0) {
    retries_.fetch_add(resent, std::memory_order_relaxed);
  }
}

void RpcChannel::ScheduleReconnect() {
  if (shut_down_.load(std::memory_order_acquire) || reconnect_timer_ != 0) {
    return;
  }
  if (outstanding_.empty()) return;  // reconnect lazily on the next call
  int64_t delay = backoff_ms_;
  backoff_ms_ = std::min(backoff_ms_ * 2, options_.connect_backoff_max_ms);
  reconnect_timer_ = loop_.AddTimer(delay, [this] {
    reconnect_timer_ = 0;
    EnsureConnected();
  });
}

void RpcChannel::OnConnectionClosed(Status reason) {
  state_ = LinkState::kDisconnected;
  // Runs on the connection's own stack — defer the destruction.
  dead_conns_.push_back(std::move(conn_));
  conn_ = nullptr;
  loop_.Post([this] { dead_conns_.clear(); });
  if (!reason.ok()) {
    CONCORD_DEBUG("net", "connection to " << server_.ToString() << " lost: "
                                          << reason.message());
  }
  ScheduleReconnect();
}

void RpcChannel::OnFrame(Frame frame) {
  if (frame.type == FrameType::kGoodbye) {
    // The server is going away; the close path handles reconnects.
    return;
  }
  if (frame.type != FrameType::kReply) {
    conn_->Close();
    OnConnectionClosed(Status::ProtocolViolation("unexpected frame type"));
    return;
  }
  auto reply = DecodeReplyEnvelope(frame.payload);
  if (!reply.ok()) {
    conn_->Close();
    OnConnectionClosed(reply.status());
    return;
  }
  auto it = outstanding_.find(reply->call_id);
  if (it == outstanding_.end()) return;  // abandoned (timed out) call
  auto call = it->second;
  outstanding_.erase(it);
  Fulfill(call, std::move(reply->status), std::move(reply->payload));
}

}  // namespace concord::net
