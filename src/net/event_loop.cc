#include "net/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace concord::net {

EventLoop::EventLoop() {
  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    // Without the wake pipe, Post/Stop could block a sleeping poller
    // forever; this is an out-of-fds condition, not a recoverable one.
    std::perror("concord::net::EventLoop pipe2");
    std::abort();
  }
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
}

EventLoop::~EventLoop() {
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
}

int64_t EventLoop::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool EventLoop::OnLoopThread() const {
  return loop_thread_.load(std::memory_order_acquire) ==
         std::this_thread::get_id();
}

void EventLoop::Post(std::function<void()> fn) {
  bool wake = false;
  {
    MutexLock lock(&mu_);
    posted_.push_back(std::move(fn));
    if (!wake_pending_) {
      wake_pending_ = true;
      wake = true;
    }
  }
  if (wake) {
    char byte = 'w';
    // EAGAIN just means the pipe already holds a wakeup.
    (void)!::write(wake_write_fd_, &byte, 1);
  }
}

void EventLoop::Stop() {
  {
    MutexLock lock(&mu_);
    stop_requested_ = true;
  }
  Post([] {});  // ensure the poller wakes to observe the flag
}

void EventLoop::RegisterFd(int fd, short events, FdCallback cb) {
  fds_[fd] = FdEntry{events, std::move(cb)};
}

void EventLoop::UpdateEvents(int fd, short events) {
  auto it = fds_.find(fd);
  if (it != fds_.end()) it->second.events = events;
}

void EventLoop::UnregisterFd(int fd) { fds_.erase(fd); }

EventLoop::TimerId EventLoop::AddTimer(int64_t delay_ms,
                                       std::function<void()> cb) {
  TimerId id = next_timer_id_++;
  timers_[id] = Timer{NowMs() + (delay_ms < 0 ? 0 : delay_ms), std::move(cb)};
  return id;
}

void EventLoop::CancelTimer(TimerId id) { timers_.erase(id); }

void EventLoop::DrainWakePipe() {
  char sink[64];
  while (::read(wake_read_fd_, sink, sizeof(sink)) > 0) {
  }
  MutexLock lock(&mu_);
  wake_pending_ = false;
}

void EventLoop::RunPosted() {
  std::vector<std::function<void()>> batch;
  {
    MutexLock lock(&mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::RunDueTimers() {
  // Collect-then-fire: a timer callback may add or cancel timers, so
  // never invoke while iterating the map.
  int64_t now = NowMs();
  std::vector<std::pair<TimerId, std::function<void()>>> due;
  for (const auto& [id, timer] : timers_) {
    if (timer.deadline_ms <= now) due.emplace_back(id, timer.callback);
  }
  for (auto& [id, fn] : due) {
    if (timers_.erase(id) != 0) fn();
  }
}

int EventLoop::NextPollTimeoutMs() const {
  if (timers_.empty()) return 1000;
  int64_t nearest = INT64_MAX;
  for (const auto& [id, timer] : timers_) {
    (void)id;
    if (timer.deadline_ms < nearest) nearest = timer.deadline_ms;
  }
  int64_t delta = nearest - NowMs();
  if (delta <= 0) return 0;
  return delta > 1000 ? 1000 : static_cast<int>(delta);
}

void EventLoop::Run() {
  loop_thread_.store(std::this_thread::get_id(), std::memory_order_release);
  for (;;) {
    // Posted work runs before the stop check so tasks queued just
    // ahead of Stop() (e.g. final replies) are flushed, not dropped.
    RunPosted();
    RunDueTimers();
    {
      MutexLock lock(&mu_);
      if (stop_requested_) break;
    }

    std::vector<pollfd> pfds;
    pfds.reserve(fds_.size() + 1);
    pfds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
    for (const auto& [fd, entry] : fds_) {
      pfds.push_back(pollfd{fd, entry.events, 0});
    }

    int rc = ::poll(pfds.data(), pfds.size(), NextPollTimeoutMs());
    if (rc < 0 && errno != EINTR) {
      CONCORD_ERROR("net", "event loop poll failed: " << std::strerror(errno));
      break;
    }
    if (pfds[0].revents != 0) DrainWakePipe();
    for (size_t i = 1; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      // A callback may unregister any fd (including itself) or tear
      // down a whole connection — re-check registration before firing.
      auto it = fds_.find(pfds[i].fd);
      if (it == fds_.end()) continue;
      FdCallback cb = it->second.callback;
      cb(pfds[i].revents);
    }
  }
  loop_thread_.store(std::thread::id(), std::memory_order_release);
}

}  // namespace concord::net
