#include "net/rpc_server.h"

#include <poll.h>

#include <algorithm>

#include "common/logging.h"
#include "net/wire.h"

namespace concord::net {

RpcServer::RpcServer(Address address, Options options)
    : address_(std::move(address)),
      options_(options),
      dedup_(options.dedup_capacity_per_peer) {}

RpcServer::~RpcServer() { Shutdown(); }

void RpcServer::RegisterMethod(std::string method, Handler handler) {
  methods_[std::move(method)] = std::move(handler);
}

Status RpcServer::Start() {
  CONCORD_ASSIGN_OR_RETURN(listen_fd_, ListenOn(address_, 64, &bound_));
  // Registration happens before Run(), so this is still "loop thread"
  // territory by the EventLoop contract.
  loop_.RegisterFd(listen_fd_, POLLIN, [this](short) { AcceptPending(); });
  loop_thread_ = std::thread([this] { loop_.Run(); });
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  started_ = true;
  CONCORD_INFO("net", "rpc server listening on " << bound_.ToString());
  return Status::OK();
}

void RpcServer::Shutdown() {
  if (!started_ || shut_down_) return;
  shut_down_ = true;
  // Stop accepting and announce the close to every peer so their
  // in-flight calls retry instead of failing.
  loop_.Post([this] {
    loop_.UnregisterFd(listen_fd_);
    for (auto& [id, conn] : conns_) {
      (void)id;
      if (!conn->closed()) conn->SendFrame(FrameType::kGoodbye, "bye");
    }
  });
  {
    MutexLock lock(&queue_mu_);
    stopping_ = true;
  }
  queue_cv_.NotifyAll();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  // Workers have posted their final completions; Stop() lets the loop
  // flush them before exiting.
  loop_.Stop();
  loop_thread_.join();
  conns_.clear();
  CloseFd(listen_fd_);
  listen_fd_ = -1;
}

RpcServerStats RpcServer::stats() const {
  RpcServerStats s;
  s.requests_received = requests_received_.load(std::memory_order_relaxed);
  s.requests_executed = requests_executed_.load(std::memory_order_relaxed);
  s.dedup_hits = dedup_.stats().hits;
  s.duplicate_in_flight =
      duplicate_in_flight_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return s;
}

void RpcServer::AcceptPending() {
  for (;;) {
    auto fd = AcceptOn(listen_fd_);
    if (!fd.ok()) {
      if (!fd.status().IsUnavailable()) {
        CONCORD_WARN("net", "accept failed: " << fd.status().message());
      }
      return;
    }
    uint64_t conn_id = next_conn_id_++;
    auto conn = std::make_unique<FramedConnection>(&loop_, *fd);
    conn->set_on_frame(
        [this, conn_id](Frame frame) { OnFrame(conn_id, std::move(frame)); });
    conn->set_on_closed([this, conn_id](Status reason) {
      // Framing violations (bad magic/type/length/CRC) surface here —
      // the decoder tears the connection down before any frame exists.
      if (reason.IsProtocolViolation()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      OnConnectionClosed(conn_id);
    });
    conn->Start();
    conns_[conn_id] = std::move(conn);
  }
}

void RpcServer::OnConnectionClosed(uint64_t conn_id) {
  for (auto& [key, waiters] : in_flight_) {
    (void)key;
    std::erase(waiters, conn_id);
  }
  // The close handler runs on the connection's own stack; defer the
  // destruction one loop iteration.
  loop_.Post([this, conn_id] { conns_.erase(conn_id); });
}

void RpcServer::OnFrame(uint64_t conn_id, Frame frame) {
  if (frame.type == FrameType::kGoodbye) return;  // EOF follows
  auto conn_it = conns_.find(conn_id);
  if (conn_it == conns_.end()) return;
  FramedConnection* conn = conn_it->second.get();
  if (frame.type != FrameType::kRequest) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    conn->Close();
    loop_.Post([this, conn_id] { conns_.erase(conn_id); });
    return;
  }
  auto request = DecodeRequestEnvelope(frame.payload);
  if (!request.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    CONCORD_WARN("net", "tearing down connection: "
                            << request.status().message());
    conn->Close();
    loop_.Post([this, conn_id] { conns_.erase(conn_id); });
    return;
  }
  requests_received_.fetch_add(1, std::memory_order_relaxed);
  if (request->acked_below > 0) {
    dedup_.PruneBelow(request->client_id, request->acked_below);
  }
  // At-most-once: a completed call replays its recorded reply.
  if (auto cached = dedup_.Lookup(request->client_id, request->call_id)) {
    conn->SendFrame(FrameType::kReply, *cached);
    return;
  }
  // Still executing (e.g. the client reconnected and retried while a
  // worker holds the original): attach to that execution.
  std::pair<uint64_t, uint64_t> key{request->client_id, request->call_id};
  auto in_flight_it = in_flight_.find(key);
  if (in_flight_it != in_flight_.end()) {
    duplicate_in_flight_.fetch_add(1, std::memory_order_relaxed);
    auto& waiters = in_flight_it->second;
    if (std::find(waiters.begin(), waiters.end(), conn_id) == waiters.end()) {
      waiters.push_back(conn_id);
    }
    return;
  }
  in_flight_[key] = {conn_id};
  WorkItem item;
  item.client_id = request->client_id;
  item.call_id = request->call_id;
  item.conn_id = conn_id;
  item.method = std::move(request->method);
  item.payload = std::move(request->payload);
  {
    MutexLock lock(&queue_mu_);
    queue_.push_back(std::move(item));
  }
  queue_cv_.NotifyOne();
}

void RpcServer::WorkerMain() {
  for (;;) {
    WorkItem item;
    {
      MutexLock lock(&queue_mu_);
      queue_cv_.Wait(&queue_mu_,
                     [this]() REQUIRES(queue_mu_) {
                       return stopping_ || !queue_.empty();
                     });
      if (queue_.empty()) return;  // stopping
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    Status status = Status::OK();
    std::string reply_payload;
    auto method_it = methods_.find(item.method);
    if (method_it == methods_.end()) {
      status = Status::NotFound("unknown rpc method '" + item.method + "'");
    } else {
      auto result = method_it->second(item.payload);
      if (result.ok()) {
        reply_payload = std::move(*result);
      } else {
        status = result.status();
      }
    }
    requests_executed_.fetch_add(1, std::memory_order_relaxed);
    loop_.Post([this, client_id = item.client_id, call_id = item.call_id,
                status = std::move(status),
                payload = std::move(reply_payload)] {
      CompleteCall(client_id, call_id, status, payload);
    });
  }
}

void RpcServer::CompleteCall(uint64_t client_id, uint64_t call_id,
                             const Status& status,
                             const std::string& payload) {
  ReplyEnvelope reply;
  reply.call_id = call_id;
  reply.status = status;
  reply.payload = payload;
  std::string encoded = EncodeReplyEnvelope(reply);
  // Record first, send second: if the send races a connection drop the
  // client's retry still finds the recorded outcome.
  dedup_.Insert(client_id, call_id, encoded);
  std::pair<uint64_t, uint64_t> key{client_id, call_id};
  auto it = in_flight_.find(key);
  if (it != in_flight_.end()) {
    for (uint64_t conn_id : it->second) {
      SendReply(conn_id, call_id, status, encoded);
    }
    in_flight_.erase(it);
  }
}

void RpcServer::SendReply(uint64_t conn_id, uint64_t /*call_id*/,
                          const Status& /*status*/,
                          const std::string& encoded) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second->closed()) return;
  it->second->SendFrame(FrameType::kReply, encoded);
}

}  // namespace concord::net
