#ifndef CONCORD_NET_RPC_CLIENT_H_
#define CONCORD_NET_RPC_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "net/address.h"
#include "net/connection.h"
#include "net/event_loop.h"

namespace concord::net {

struct RpcChannelStats {
  uint64_t calls = 0;
  uint64_t retries = 0;     // envelopes re-sent after a reconnect
  uint64_t reconnects = 0;  // successful connects after the first
  uint64_t timeouts = 0;
  uint64_t connect_failures = 0;
};

/// Client end of the socket RPC transport: one channel per server
/// address, carrying synchronous Call()s from any number of threads.
///
/// The channel owns a private event loop. Connection management is
/// fully automatic: the first call connects lazily; a broken connection
/// (peer death, network error, server kGoodbye) moves every unreplied
/// call back to the resend queue and reconnects with exponential
/// backoff (connect_backoff_initial_ms doubling to _max_ms). Because
/// call ids are monotonic and the server deduplicates on
/// (client_id, call_id), re-sending after reconnect is safe: a call
/// the server already executed is answered from its dedup cache, not
/// run twice. Each request piggybacks acked_below — the lowest call id
/// this channel may still retry — letting the server prune its cache.
///
/// A Call that outlives its deadline fails with kUnavailable and is
/// never retried again by this channel (its id is then below
/// acked_below); the caller decides what an in-doubt outcome means —
/// exactly the contract ClientTm already implements for the simulated
/// transport.
class RpcChannel {
 public:
  struct Options {
    int64_t call_timeout_ms = 10000;
    int64_t connect_backoff_initial_ms = 10;
    int64_t connect_backoff_max_ms = 1000;
  };

  /// `client_id` must be unique among clients of the target server —
  /// it keys the server's at-most-once table.
  RpcChannel(uint64_t client_id, Address server)
      : RpcChannel(client_id, std::move(server), Options()) {}
  RpcChannel(uint64_t client_id, Address server, Options options);
  ~RpcChannel();
  RpcChannel(const RpcChannel&) = delete;
  RpcChannel& operator=(const RpcChannel&) = delete;

  /// Synchronous call; thread-safe. OK with the reply payload,
  /// the handler's typed error, or kUnavailable on timeout/shutdown.
  Result<std::string> Call(const std::string& method,
                           const std::string& payload);

  /// Fails outstanding calls, closes the connection, joins the loop
  /// thread. Idempotent; also run by the destructor.
  void Shutdown();

  RpcChannelStats stats() const;
  uint64_t client_id() const { return client_id_; }

 private:
  enum class LinkState { kDisconnected, kConnecting, kConnected };

  /// One in-flight call, shared between the calling thread (waits) and
  /// the loop thread (fulfills).
  struct PendingCall {
    std::string method;
    std::string payload;
    Mutex mu;
    CondVar cv;
    bool done GUARDED_BY(mu) = false;
    Status status GUARDED_BY(mu) = Status::OK();
    std::string reply GUARDED_BY(mu);
  };

  // Loop-thread-only.
  void EnsureConnected();
  void OnConnectResult(int fd, short events);
  void ScheduleReconnect();
  void OnConnectionClosed(Status reason);
  void OnFrame(Frame frame);
  void SendRequest(uint64_t call_id, const PendingCall& call);
  uint64_t AckedBelow() const;
  static void Fulfill(const std::shared_ptr<PendingCall>& call, Status status,
                      std::string reply);

  const uint64_t client_id_;
  const Address server_;
  const Options options_;

  EventLoop loop_;
  std::thread loop_thread_;
  std::atomic<uint64_t> next_call_id_{1};
  std::atomic<bool> shut_down_{false};

  // Loop-thread-only state.
  LinkState state_ = LinkState::kDisconnected;
  int connect_fd_ = -1;
  std::unique_ptr<FramedConnection> conn_;
  std::vector<std::unique_ptr<FramedConnection>> dead_conns_;
  /// Ordered: resend after reconnect walks ids low → high.
  std::map<uint64_t, std::shared_ptr<PendingCall>> outstanding_;
  int64_t backoff_ms_ = 0;
  EventLoop::TimerId reconnect_timer_ = 0;
  bool connected_once_ = false;

  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> connect_failures_{0};
};

}  // namespace concord::net

#endif  // CONCORD_NET_RPC_CLIENT_H_
