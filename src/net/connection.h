#ifndef CONCORD_NET_CONNECTION_H_
#define CONCORD_NET_CONNECTION_H_

#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/event_loop.h"
#include "net/frame.h"

namespace concord::net {

/// One established stream socket carrying frames, owned by an
/// EventLoop. Everything here runs on the loop thread: the connection
/// registers its fd, reassembles inbound frames through a FrameDecoder,
/// and keeps an outbound buffer so SendFrame never blocks — partial
/// writes leave the remainder queued behind a POLLOUT watch.
///
/// Lifecycle: the owner constructs with an fd it already owns (accepted
/// or connected), then Start() registers with the loop. Close() (or any
/// read/write/framing error → on_closed) unregisters and closes the fd.
/// on_closed is invoked at most once; after it fires the owner is
/// expected to destroy the connection (possibly re-entrantly from the
/// callback, which is safe — the connection touches no members after
/// invoking it).
class FramedConnection {
 public:
  using FrameHandler = std::function<void(Frame frame)>;
  /// `reason` is OK for a clean peer close after kGoodbye, else the
  /// read/write/framing error.
  using ClosedHandler = std::function<void(Status reason)>;

  FramedConnection(EventLoop* loop, int fd);
  ~FramedConnection();
  FramedConnection(const FramedConnection&) = delete;
  FramedConnection& operator=(const FramedConnection&) = delete;

  void set_on_frame(FrameHandler handler) { on_frame_ = std::move(handler); }
  void set_on_closed(ClosedHandler handler) {
    on_closed_ = std::move(handler);
  }

  /// Registers with the event loop. Call after the handlers are set.
  void Start();

  /// Queues one frame for transmission; flushes as much as the socket
  /// accepts immediately.
  void SendFrame(FrameType type, std::string_view payload);

  /// Unregisters and closes the fd without invoking on_closed (the
  /// owner already knows).
  void Close();

  bool closed() const { return fd_ < 0; }
  int fd() const { return fd_; }
  /// True while peer bytes are still queued locally.
  bool has_pending_output() const { return !outbound_.empty(); }

 private:
  void HandleEvents(short events);
  /// Reads until EAGAIN, dispatching complete frames.
  void HandleReadable();
  /// Flushes the outbound buffer until EAGAIN or empty.
  void HandleWritable();
  void UpdateWatchedEvents();
  /// Tears down and fires on_closed exactly once.
  void Fail(Status reason);

  EventLoop* const loop_;
  int fd_;
  FrameDecoder decoder_;
  std::string outbound_;
  size_t outbound_offset_ = 0;
  bool peer_said_goodbye_ = false;
  FrameHandler on_frame_;
  ClosedHandler on_closed_;
};

}  // namespace concord::net

#endif  // CONCORD_NET_CONNECTION_H_
