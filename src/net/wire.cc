#include "net/wire.h"

#include "common/serde.h"

namespace concord::net {

namespace {

void EncodeStatusField(std::string* out, const Status& status) {
  PutByte(out, static_cast<uint8_t>(status.code()));
  PutLengthPrefixed(out, status.ok() ? std::string_view() : status.message());
}

bool DecodeStatusField(ByteReader* in, Status* status) {
  uint8_t code = 0;
  std::string_view message;
  if (!in->ReadByte(&code) || !in->ReadLengthPrefixed(&message) ||
      code > static_cast<uint8_t>(StatusCode::kWrongShard)) {
    return false;
  }
  *status = code == 0 ? Status::OK()
                      : Status(static_cast<StatusCode>(code),
                               std::string(message));
  return true;
}

}  // namespace

std::string EncodeRequestEnvelope(const RequestEnvelope& request) {
  std::string out;
  PutFixed64(&out, request.client_id);
  PutFixed64(&out, request.call_id);
  PutFixed64(&out, request.acked_below);
  PutLengthPrefixed(&out, request.method);
  PutLengthPrefixed(&out, request.payload);
  return out;
}

Result<RequestEnvelope> DecodeRequestEnvelope(std::string_view bytes) {
  ByteReader reader(bytes);
  RequestEnvelope request;
  std::string_view method;
  std::string_view payload;
  if (!reader.ReadFixed64(&request.client_id) ||
      !reader.ReadFixed64(&request.call_id) ||
      !reader.ReadFixed64(&request.acked_below) ||
      !reader.ReadLengthPrefixed(&method) ||
      !reader.ReadLengthPrefixed(&payload) || reader.remaining() != 0) {
    return Status::ProtocolViolation("malformed request envelope");
  }
  request.method.assign(method);
  request.payload.assign(payload);
  return request;
}

std::string EncodeReplyEnvelope(const ReplyEnvelope& reply) {
  std::string out;
  PutFixed64(&out, reply.call_id);
  EncodeStatusField(&out, reply.status);
  PutLengthPrefixed(&out, reply.payload);
  return out;
}

Result<ReplyEnvelope> DecodeReplyEnvelope(std::string_view bytes) {
  ByteReader reader(bytes);
  ReplyEnvelope reply;
  std::string_view payload;
  if (!reader.ReadFixed64(&reply.call_id) ||
      !DecodeStatusField(&reader, &reply.status) ||
      !reader.ReadLengthPrefixed(&payload) || reader.remaining() != 0) {
    return Status::ProtocolViolation("malformed reply envelope");
  }
  reply.payload.assign(payload);
  return reply;
}

}  // namespace concord::net
