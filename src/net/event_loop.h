#ifndef CONCORD_NET_EVENT_LOOP_H_
#define CONCORD_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace concord::net {

/// A small poll(2)-driven reactor. One thread calls Run(); everything
/// the loop owns — fd registrations, timers, connection state hung off
/// the callbacks — is touched only from that thread, which is what
/// keeps the transport lock-free on the hot path. Other threads talk
/// to the loop exclusively through Post()/Stop(), which enqueue under
/// a mutex and wake the poller via a self-pipe.
///
/// Scale note: concordd planes are a handful of peers, not ten
/// thousand; poll over a rebuilt pollfd vector is the right tool, and
/// the interface hides the mechanism if epoll ever becomes worth it.
class EventLoop {
 public:
  /// Bitmask delivered to fd callbacks: POLLIN/POLLOUT/POLLERR/POLLHUP
  /// as defined by <poll.h>.
  using FdCallback = std::function<void(short events)>;
  using TimerId = uint64_t;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Runs until Stop(). Tags the caller as the loop thread.
  void Run();

  /// Thread-safe; returns once the stop request is queued (the loop
  /// exits after finishing the current iteration).
  void Stop();

  /// Enqueues `fn` to run on the loop thread; thread-safe, callable
  /// before Run() starts. Tasks run in post order.
  void Post(std::function<void()> fn);

  /// True on the thread currently inside Run().
  bool OnLoopThread() const;

  // -- Loop-thread-only surface (callable before Run() starts too). ---

  /// Watches `fd` for `events` (POLLIN and/or POLLOUT). The callback
  /// also fires for error/hangup conditions regardless of the mask.
  void RegisterFd(int fd, short events, FdCallback cb);
  void UpdateEvents(int fd, short events);
  /// Stops watching `fd`. Safe to call from inside that fd's own
  /// callback; does not close the fd.
  void UnregisterFd(int fd);

  /// One-shot timer `delay_ms` from now on the loop thread.
  TimerId AddTimer(int64_t delay_ms, std::function<void()> cb);
  /// No-op if the timer already fired.
  void CancelTimer(TimerId id);

 private:
  struct FdEntry {
    short events = 0;
    FdCallback callback;
  };
  struct Timer {
    int64_t deadline_ms = 0;  // steady clock
    std::function<void()> callback;
  };

  static int64_t NowMs();
  void DrainWakePipe();
  void RunPosted();
  void RunDueTimers();
  int NextPollTimeoutMs() const;

  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  // Loop-thread-only state.
  std::unordered_map<int, FdEntry> fds_;
  std::map<TimerId, Timer> timers_;
  TimerId next_timer_id_ = 1;
  std::atomic<std::thread::id> loop_thread_{};

  Mutex mu_;
  std::vector<std::function<void()>> posted_ GUARDED_BY(mu_);
  bool stop_requested_ GUARDED_BY(mu_) = false;
  bool wake_pending_ GUARDED_BY(mu_) = false;
};

}  // namespace concord::net

#endif  // CONCORD_NET_EVENT_LOOP_H_
