#ifndef CONCORD_TXN_PARTITION_H_
#define CONCORD_TXN_PARTITION_H_

#include <atomic>
#include <cstdint>
#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace concord::txn {

/// Executor-side counters of one partition, padded so two partitions'
/// counters never share a cache line.
struct alignas(64) PartitionQueueStats {
  /// Tasks executed on the partition's thread.
  std::atomic<uint64_t> tasks{0};
  /// Dequeue bursts: one burst drains everything queued at wake-up, so
  /// tasks/batches is the effective batching factor under load.
  std::atomic<uint64_t> batches{0};
  /// Deepest the mailbox ever got (contention indicator).
  std::atomic<uint64_t> queue_high_water{0};
};

/// Plain snapshot of PartitionQueueStats.
struct PartitionQueueSnapshot {
  uint64_t tasks = 0;
  uint64_t batches = 0;
  uint64_t queue_high_water = 0;
};

/// The shared-nothing execution core of a server node: K partitions,
/// each a single-threaded executor with an MPSC mailbox. State sliced
/// across partitions is touched only by tasks submitted to the owning
/// partition — cross-partition work rides messages (closures) with
/// completion futures, never a shared data mutex.
///
/// K == 1 is the inline mode: no thread is spawned and Run/Post
/// execute the task on the calling thread, reproducing the
/// pre-partitioning behaviour bit-identically (including same-thread
/// reentrancy into callers' recursive mutexes).
///
/// Deadlock discipline: a task RUNNING ON an executor must never
/// submit-and-wait to another partition (executors waiting on each
/// other can cycle). Choreography across partitions belongs on the
/// dispatching thread — it submits a step, waits, and submits the next
/// step to the next owner. Tasks themselves only touch partition-owned
/// state and internally-synchronized leaves (repository shards, WAL).
class PartitionEngine {
 public:
  /// `pin_cores` pins executor p to CPU core p % hardware_concurrency
  /// (Linux pthread affinity; a silent no-op on platforms without it,
  /// and on single-core or oversubscribed boxes it degrades to the
  /// scheduler's choice for the surplus executors).
  explicit PartitionEngine(size_t partitions, bool pin_cores = false)
      : partitions_(partitions) {
    if (partitions_ < 1) partitions_ = 1;
    if (partitions_ == 1) return;
    executors_.reserve(partitions_);
    for (size_t p = 0; p < partitions_; ++p) {
      executors_.push_back(std::make_unique<Executor>());
      Executor* ex = executors_.back().get();
      ex->thread = std::thread([this, ex, p, pin_cores] {
        if (pin_cores) PinToCore(p);
        // The executor owns partition p for its whole lifetime; the
        // role tag is what CONCORD_ASSERT_ON_PARTITION checks against.
        ScopedThreadRole role(ThreadRole::kPartitionExecutor,
                              static_cast<int>(p));
        RunLoop(ex);
      });
    }
  }

  ~PartitionEngine() { Stop(); }
  PartitionEngine(const PartitionEngine&) = delete;
  PartitionEngine& operator=(const PartitionEngine&) = delete;

  size_t count() const { return partitions_; }
  /// False in inline mode (K == 1, or after Stop()).
  bool threaded() const { return !executors_.empty() && !stopped_; }

  /// Submits `fn` to partition `p` and waits for its result. From the
  /// caller's perspective this is a synchronous call whose body runs
  /// on the owning executor (or inline when not threaded).
  template <typename F>
  std::invoke_result_t<F> Run(size_t p, F&& fn) const {
    if (!threaded()) return std::forward<F>(fn)();
    // Deadlock rule (class comment): submit-and-wait is forbidden FROM
    // executor context — executors waiting on each other can cycle.
    CONCORD_ASSERT_OFF_EXECUTOR();
    return Post(p, std::forward<F>(fn)).get();
  }

  /// Submits `fn` to partition `p` and returns the completion future —
  /// the fan-out primitive (submit to many partitions, then wait).
  template <typename F>
  std::future<std::invoke_result_t<F>> Post(size_t p, F&& fn) const {
    using R = std::invoke_result_t<F>;
    if (!threaded()) {
      std::promise<R> ready;
      if constexpr (std::is_void_v<R>) {
        std::forward<F>(fn)();
        ready.set_value();
      } else {
        ready.set_value(std::forward<F>(fn)());
      }
      return ready.get_future();
    }
    // std::function must be copyable, so the move-only packaged_task
    // rides behind a shared_ptr. One allocation per message — the
    // handoff cost is identical for every K, so scaling ratios are
    // unaffected.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue(p, [task] { (*task)(); });
    return future;
  }

  /// Barrier: returns when every mailbox is empty and every executor
  /// idle. Only meaningful when no new work is being submitted.
  void Drain() const {
    CONCORD_ASSERT_OFF_EXECUTOR();
    for (const auto& ex : executors_) {
      MutexLock lock(&ex->mu);
      while (!(ex->queue.empty() && ex->idle)) ex->idle_cv.Wait(&ex->mu);
    }
  }

  /// Joins the executor threads (after finishing all queued work).
  /// Further Run/Post calls execute inline — the shutdown path may
  /// still need to touch partition state, just not concurrently.
  void Stop() {
    if (executors_.empty() || stopped_) return;
    for (auto& ex : executors_) {
      {
        MutexLock lock(&ex->mu);
        ex->stop = true;
      }
      ex->cv.NotifyOne();
    }
    for (auto& ex : executors_) {
      if (ex->thread.joinable()) ex->thread.join();
    }
    stopped_ = true;
  }

  PartitionQueueSnapshot queue_stats(size_t p) const {
    PartitionQueueSnapshot snap;
    if (p >= executors_.size()) return snap;
    const PartitionQueueStats& stats = executors_[p]->stats;
    snap.tasks = stats.tasks.load(std::memory_order_relaxed);
    snap.batches = stats.batches.load(std::memory_order_relaxed);
    snap.queue_high_water =
        stats.queue_high_water.load(std::memory_order_relaxed);
    return snap;
  }

 private:
  struct Executor {
    Mutex mu;
    CondVar cv;
    CondVar idle_cv;
    std::deque<std::function<void()>> queue GUARDED_BY(mu);
    bool stop GUARDED_BY(mu) = false;
    bool idle GUARDED_BY(mu) = true;
    PartitionQueueStats stats;
    std::thread thread;
  };

  void Enqueue(size_t p, std::function<void()> task) const {
    Executor* ex = executors_[p % executors_.size()].get();
    {
      MutexLock lock(&ex->mu);
      ex->queue.push_back(std::move(task));
      uint64_t depth = ex->queue.size();
      uint64_t high = ex->stats.queue_high_water.load(std::memory_order_relaxed);
      if (depth > high) {
        ex->stats.queue_high_water.store(depth, std::memory_order_relaxed);
      }
    }
    ex->cv.NotifyOne();
  }

  /// Best-effort CPU affinity for executor `p`, called on the executor
  /// thread itself before it starts draining its mailbox.
  static void PinToCore(size_t p) {
#if defined(__linux__)
    unsigned cores = std::thread::hardware_concurrency();
    if (cores == 0) return;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<int>(p % cores), &set);
    pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
    (void)p;
#endif
  }

  void RunLoop(Executor* ex) {
    std::deque<std::function<void()>> burst;
    for (;;) {
      {
        MutexLock lock(&ex->mu);
        ex->idle = true;
        ex->idle_cv.NotifyAll();
        while (!ex->stop && ex->queue.empty()) ex->cv.Wait(&ex->mu);
        if (ex->queue.empty()) return;  // stop requested, mailbox drained
        burst.swap(ex->queue);
        ex->idle = false;
      }
      ex->stats.batches.fetch_add(1, std::memory_order_relaxed);
      ex->stats.tasks.fetch_add(burst.size(), std::memory_order_relaxed);
      for (auto& task : burst) task();
      burst.clear();
    }
  }

  size_t partitions_;
  bool stopped_ = false;
  /// Empty in inline mode. The executors are const-submittable: Run
  /// and Post are semantically reads of the engine (the mutation is
  /// the task's, on its owning partition).
  std::vector<std::unique_ptr<Executor>> executors_;
};

}  // namespace concord::txn

#endif  // CONCORD_TXN_PARTITION_H_
