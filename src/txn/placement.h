#ifndef CONCORD_TXN_PLACEMENT_H_
#define CONCORD_TXN_PLACEMENT_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "rpc/transactional_rpc.h"

namespace concord::txn {

struct PlacementStats {
  uint64_t assignments = 0;
  uint64_t migrations = 0;
  uint64_t lookups = 0;
};

/// The server plane's placement authority: which server node owns each
/// design activity. A DA's home node registers its DOPs' checkins —
/// i.e. every DOV a DA creates is stored on (and id-stamped by, see
/// common/ids.h) the DA's home shard at creation time. Migrating a DA
/// moves where its *future* DOVs go; already-created versions keep
/// their shard (the id is the address), so migration never copies
/// data.
///
/// The cooperation manager drives this map — placement is a
/// cooperation decision (Create_Sub_DA picks the least-loaded shard
/// for the delegated activity) — and every server-TM consults it to
/// reject checkins routed via a stale workstation cache (kWrongShard).
///
/// Thread-safe: designer threads look up placements while the CM
/// assigns and migrates concurrently.
class PlacementMap {
 public:
  PlacementMap() = default;
  PlacementMap(const PlacementMap&) = delete;
  PlacementMap& operator=(const PlacementMap&) = delete;

  /// Registers a server node; registration order defines the shard
  /// index (node registered first = shard 0 = the coordinator).
  void RegisterNode(NodeId node);
  std::vector<NodeId> nodes() const;
  size_t node_count() const;

  /// Installs a liveness probe (typically Network::IsUp) consulted by
  /// AssignLeastLoaded: a crashed node must not be handed fresh DAs —
  /// its load counter is low precisely because it is dead. Install
  /// before traffic; without a probe every registered node is a
  /// candidate.
  void SetLivenessProbe(std::function<bool(NodeId)> probe);

  /// Home node of `da`; invalid NodeId if the DA has no placement.
  NodeId HomeOf(DaId da) const;

  /// Places `da` on the live node currently owning the fewest DAs
  /// (ties go to the lowest shard; nodes the liveness probe reports
  /// down are skipped unless every node is down). Idempotent: an
  /// already-placed DA keeps its home. Returns the home node (invalid
  /// if no node is registered).
  NodeId AssignLeastLoaded(DaId da);

  /// Pins `da` to `node` (must be registered).
  Status Assign(DaId da, NodeId node);

  /// Re-homes `da` onto `to`; future checkins land there. Returns the
  /// previous home. Workstation placement caches become stale at this
  /// moment — they find out through the next kWrongShard reply.
  Result<NodeId> Migrate(DaId da, NodeId to);

  /// Drops the placement (DA terminated) and frees its load slot.
  void Release(DaId da);

  PlacementStats stats() const;

 private:
  bool IsRegisteredLocked(NodeId node) const REQUIRES(mu_);

  /// Leaf lock: never held across the liveness probe's owner or an RPC.
  mutable Mutex mu_;
  std::function<bool(NodeId)> liveness_ GUARDED_BY(mu_);
  std::vector<NodeId> nodes_ GUARDED_BY(mu_);
  std::unordered_map<DaId, NodeId> home_ GUARDED_BY(mu_);
  /// DAs currently homed per node (keyed by NodeId value).
  std::unordered_map<uint64_t, uint64_t> load_ GUARDED_BY(mu_);
  mutable PlacementStats stats_ GUARDED_BY(mu_);
};

/// RPC method the placement authority's lookup endpoint registers
/// under (hosted on the coordinator node next to the CM).
inline constexpr const char* kPlacementMethod = "txn.Placement/HomeOf";

/// Registers the server-side lookup handler for `placement` on
/// `authority_node`.
void RegisterPlacementService(const PlacementMap* placement,
                              rpc::TransactionalRpc* rpc,
                              NodeId authority_node);

struct PlacementClientStats {
  uint64_t lookups = 0;
  uint64_t cache_hits = 0;
  uint64_t fetches = 0;
  uint64_t invalidations = 0;
};

/// Workstation-side placement cache. A DA's home node is fetched from
/// the authority once (one LAN round trip over the transactional RPC)
/// and cached; every later envelope to that DA routes locally. The
/// cache can go stale when the CM migrates a DA — the owning server
/// answers kWrongShard, the client-TM calls Forget() and the next
/// lookup re-fetches.
///
/// Thread-safe (one designer thread per workstation is the norm, but
/// recovery and invalidation paths may race).
class PlacementClient {
 public:
  PlacementClient(rpc::TransactionalRpc* rpc, NodeId client_node,
                  NodeId authority_node)
      : rpc_(rpc), client_(client_node), authority_(authority_node) {}
  PlacementClient(const PlacementClient&) = delete;
  PlacementClient& operator=(const PlacementClient&) = delete;

  /// Home node of `da`: cached answer, or one RPC to the authority.
  /// kNotFound if the authority knows no placement for the DA.
  Result<NodeId> HomeOf(DaId da);

  /// Drops the cached placement for `da` (stale-shard recovery).
  void Forget(DaId da);

  PlacementClientStats stats() const;

 private:
  rpc::TransactionalRpc* rpc_;
  NodeId client_;
  NodeId authority_;
  /// Leaf lock: released before the RPC round trip in HomeOf.
  mutable Mutex mu_;
  std::unordered_map<DaId, NodeId> cache_ GUARDED_BY(mu_);
  mutable PlacementClientStats stats_ GUARDED_BY(mu_);
};

}  // namespace concord::txn

#endif  // CONCORD_TXN_PLACEMENT_H_
