#ifndef CONCORD_TXN_REMOTE_SERVER_STUB_H_
#define CONCORD_TXN_REMOTE_SERVER_STUB_H_

#include "rpc/transactional_rpc.h"
#include "txn/server_service.h"
#include "txn/server_tm.h"

namespace concord::txn {

/// ServerService over the wire: every envelope is serialized with the
/// common/serde codec and shipped through rpc::TransactionalRpc, so a
/// server trip is a real, countable, lossy, retried message —
/// RpcStats.calls counts envelopes, retries/duplicate_suppressed show
/// the reliable-channel work under loss, and the at-most-once dedup
/// table guarantees a retried checkin never executes twice (the reply,
/// statuses included, is cached and re-sent).
///
/// One stub per workstation (the `from` node of every call); the
/// server-side half is RegisterServerService below. This seam is where
/// a second server node plugs in: point another stub at another
/// endpoint's node id.
class RemoteServerStub : public ServerService {
 public:
  RemoteServerStub(rpc::TransactionalRpc* rpc, NodeId client_node,
                   NodeId server_node)
      : rpc_(rpc), client_(client_node), server_(server_node) {}
  RemoteServerStub(const RemoteServerStub&) = delete;
  RemoteServerStub& operator=(const RemoteServerStub&) = delete;

  NodeId server_node() const override { return server_; }

  Result<BatchReply> Execute(const BatchRequest& batch) override;

 private:
  rpc::TransactionalRpc* rpc_;
  NodeId client_;
  NodeId server_;
};

/// Registers the server-side half of the protocol: a handler on the
/// server-TM's node that decodes each BatchRequest, dispatches it
/// against the server-TM and encodes the BatchReply. Application
/// statuses travel INSIDE the (OK) reply payload, so the RPC layer
/// caches every executed envelope for dedup — a retry after a lost
/// reply re-sends the recorded outcome instead of re-executing.
void RegisterServerService(ServerTm* server, rpc::TransactionalRpc* rpc);

}  // namespace concord::txn

#endif  // CONCORD_TXN_REMOTE_SERVER_STUB_H_
