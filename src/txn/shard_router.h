#ifndef CONCORD_TXN_SHARD_ROUTER_H_
#define CONCORD_TXN_SHARD_ROUTER_H_

#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "txn/placement.h"
#include "txn/server_service.h"

namespace concord::txn {

/// The workstation's view of the server plane: one ServerService per
/// server node, plus the routing rules that pick the node for each
/// request.
///
///  - DOV-addressed requests (checkout) route by the shard index
///    encoded in the DOV id — the id is the address, no lookup, never
///    stale.
///  - DA-addressed requests (Begin-of-DOP, checkin) route by the DA's
///    home node, resolved through the workstation's PlacementClient
///    cache. A stale cache surfaces as kWrongShard from the contacted
///    node; the client-TM forgets the entry and retries.
///
/// The degenerate single-service router (every request to the one
/// node) reproduces the pre-sharding behaviour exactly and never
/// consults a placement client. Copyable by design: non-owning
/// pointers, held by value in the client-TM.
class ShardRouter {
 public:
  ShardRouter() = default;
  /// Single-node plane: everything routes to `service`.
  explicit ShardRouter(ServerService* single) {
    nodes_.emplace_back(single->server_node(), single);
  }
  /// Sharded plane: `nodes` in shard-index order (index 0 = the
  /// coordinator); `placement` resolves DA homes (may be null for a
  /// one-entry list).
  ShardRouter(std::vector<std::pair<NodeId, ServerService*>> nodes,
              PlacementClient* placement)
      : nodes_(std::move(nodes)), placement_(placement) {}

  size_t node_count() const { return nodes_.size(); }
  NodeId node_at(size_t shard) const { return nodes_[shard].first; }
  NodeId coordinator() const { return nodes_.front().first; }

  ServerService* service(NodeId node) const {
    for (const auto& [id, svc] : nodes_) {
      if (id == node) return svc;
    }
    return nodes_.front().second;
  }

  /// Owning node of `dov` straight from the id (out-of-range shard
  /// indices clamp to the coordinator, which answers NotFound).
  NodeId NodeOfDov(DovId dov) const {
    return nodes_[DovShardClamped(dov, nodes_.size())].first;
  }

  /// Pins `da`'s home to the node at `shard` without consulting any
  /// placement authority — static topology configuration for planes
  /// that have no placement service (a concord_client pointed at a
  /// fixed set of concordd processes). Static homes take precedence
  /// over the placement cache and are never forgotten by kWrongShard.
  Status SetStaticHome(DaId da, size_t shard) {
    if (shard >= nodes_.size()) {
      return Status::InvalidArgument("shard index " + std::to_string(shard) +
                                     " out of range (plane has " +
                                     std::to_string(nodes_.size()) +
                                     " nodes)");
    }
    for (auto& [known, node] : static_homes_) {
      if (known == da) {
        node = nodes_[shard].first;
        return Status::OK();
      }
    }
    static_homes_.emplace_back(da, nodes_[shard].first);
    return Status::OK();
  }

  /// Home node of `da` (static pin, else placement cache with one
  /// fetch RPC on a cold miss). Single-node planes and DAs unknown to
  /// the authority route to the coordinator.
  Result<NodeId> HomeOf(DaId da) {
    for (const auto& [known, node] : static_homes_) {
      if (known == da) return node;
    }
    if (nodes_.size() == 1 || placement_ == nullptr) return coordinator();
    auto home = placement_->HomeOf(da);
    if (home.ok()) return *home;
    if (home.status().IsNotFound()) return coordinator();
    return home.status();
  }

  /// Drops the cached placement of `da` after a kWrongShard reply.
  void ForgetPlacement(DaId da) {
    if (placement_ != nullptr) placement_->Forget(da);
  }

 private:
  std::vector<std::pair<NodeId, ServerService*>> nodes_;
  PlacementClient* placement_ = nullptr;
  /// Statically pinned DA homes (copyable with the router; tiny —
  /// linear scan beats a map for the handful of DAs a client drives).
  std::vector<std::pair<DaId, NodeId>> static_homes_;
};

}  // namespace concord::txn

#endif  // CONCORD_TXN_SHARD_ROUTER_H_
