#include "txn/local_server_service.h"

namespace concord::txn {

Result<BatchReply> LocalServerService::Execute(const BatchRequest& batch) {
  // Request hop: fails when either endpoint is down (the caller's
  // crash-window semantics) or the rare in-transit loss fires — this
  // transport does not retry, by design.
  CONCORD_RETURN_NOT_OK(network_->Send(client_, server_->node()));
  BatchReply reply = DispatchBatch(*server_, batch);
  // Reply hop. If it fails the effects stand on the server but the
  // client never learns the outcome — exactly the uncertainty window
  // the retried RemoteServerStub exists to close.
  CONCORD_RETURN_NOT_OK(network_->Send(server_->node(), client_));
  return reply;
}

}  // namespace concord::txn
