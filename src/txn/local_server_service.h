#ifndef CONCORD_TXN_LOCAL_SERVER_SERVICE_H_
#define CONCORD_TXN_LOCAL_SERVER_SERVICE_H_

#include "rpc/network.h"
#include "txn/server_service.h"
#include "txn/server_tm.h"

namespace concord::txn {

/// In-process ServerService: the envelope is dispatched straight
/// against the server-TM, bracketed by one request hop and one reply
/// hop on the simulated LAN so crash detection and message/latency
/// accounting match a real deployment's happy path. No serialization,
/// no retries — a lost hop surfaces as kUnavailable. Unit tests and
/// single-machine embeddings use this; everything that wants lossy,
/// retried, countable traffic uses RemoteServerStub.
class LocalServerService : public ServerService {
 public:
  LocalServerService(ServerTm* server, rpc::Network* network,
                     NodeId client_node)
      : server_(server), network_(network), client_(client_node) {}
  LocalServerService(const LocalServerService&) = delete;
  LocalServerService& operator=(const LocalServerService&) = delete;

  NodeId server_node() const override { return server_->node(); }

  Result<BatchReply> Execute(const BatchRequest& batch) override;

 private:
  ServerTm* server_;
  rpc::Network* network_;
  NodeId client_;
};

}  // namespace concord::txn

#endif  // CONCORD_TXN_LOCAL_SERVER_SERVICE_H_
