#ifndef CONCORD_TXN_DOP_CONTEXT_H_
#define CONCORD_TXN_DOP_CONTEXT_H_

#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "storage/object.h"

namespace concord::txn {

/// The volatile working context of one DOP: "the current state of the
/// design data and ... the state of the application program
/// implementing the DOP" (Sect. 5.2, fn. 1). Checked-out input
/// versions are kept read-only; the tool mutates named workspace
/// objects; `work_done` abstracts tool progress (units of work) so the
/// loss-of-work experiments can quantify what a crash destroys.
struct DopContext {
  /// Input DOVs checked out from the repository (immutable copies).
  std::map<DovId, storage::DesignObject> inputs;
  /// Tool working state, keyed by name ("floorplan", "netlist", ...).
  std::map<std::string, storage::DesignObject> workspace;
  /// Abstract units of tool work performed since Begin-of-DOP.
  uint64_t work_done = 0;

  bool operator==(const DopContext&) const = default;
};

/// A designer-named savepoint: "intermediate states, to which a
/// designer might wish to return later, are explicitly marked by the
/// designer (Save operation)" (Sect. 4.3).
struct Savepoint {
  std::string name;
  SimTime taken_at = 0;
  DopContext context;
};

/// A system-chosen recovery point: persistent snapshot of the DOP
/// context that limits the scope of work lost in a workstation crash
/// ("fire-walls inside a DOP", Sect. 5.2). Transparent to designer and
/// tool; kept on the workstation's stable storage.
struct RecoveryPoint {
  SimTime taken_at = 0;
  uint64_t sequence = 0;
  DopContext context;
};

/// Lifecycle of a DOP as seen by the client-TM.
enum class DopState {
  kActive,
  kSuspended,
  kCommitted,
  kAborted,
  /// Workstation crashed while the DOP was live; awaiting recovery.
  kCrashed,
};

const char* DopStateToString(DopState state);

}  // namespace concord::txn

#endif  // CONCORD_TXN_DOP_CONTEXT_H_
