#ifndef CONCORD_TXN_CLIENT_TM_H_
#define CONCORD_TXN_CLIENT_TM_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "rpc/invalidation.h"
#include "rpc/two_phase_commit.h"
#include "txn/dop_context.h"
#include "txn/dov_cache.h"
#include "txn/server_tm.h"

namespace concord::txn {

struct ClientTmStats {
  uint64_t savepoints_taken = 0;
  uint64_t restores = 0;
  uint64_t recovery_points_taken = 0;
  uint64_t suspends = 0;
  uint64_t resumes = 0;
  uint64_t crashes = 0;
  uint64_t dops_recovered = 0;
  uint64_t work_units_lost = 0;
  uint64_t work_units_done = 0;
  uint64_t context_handovers = 0;
  /// Checkouts served from the workstation DOV cache (no server
  /// round-trip) vs. forwarded to the server-TM.
  uint64_t checkouts_from_cache = 0;
  uint64_t checkouts_from_server = 0;
};

/// Client half of the transaction manager: "resides on the workstation
/// managing the internal structure of DOPs" (Sect. 5.1). One ClientTm
/// per workstation. It implements the TE-level facilities of Sect. 4.3
/// (Save/Restore, Suspend/Resume) and the recovery-point machinery of
/// Sect. 5.2, and drives a two-phase commit with the server-TM for
/// every critical interaction (Begin-of-DOP, checkout, checkin,
/// End-of-DOP).
///
/// It also owns the workstation's DOV cache: a Checkout whose DOV is
/// cached and validated for the DOP's DA is served locally with no
/// server round-trip (DOVs are immutable, so the bytes are always
/// right; validation covers visibility). Misses run the full 2PC +
/// server checkout as before and re-arm the cache. When an
/// InvalidationBus is wired up, server-pushed withdrawals/invalidations
/// drop cache entries, so a withdrawn version is never served locally;
/// without a bus the cache still works but relies on crashes/evictions
/// only — embedders that use the cooperation manager's withdrawal
/// machinery must connect the bus.
class ClientTm {
 public:
  ClientTm(ServerTm* server, rpc::Network* network, NodeId workstation,
           SimClock* clock, rpc::InvalidationBus* invalidations = nullptr);
  ~ClientTm();
  ClientTm(const ClientTm&) = delete;
  ClientTm& operator=(const ClientTm&) = delete;

  NodeId node() const { return node_; }

  /// Recovery points are taken automatically after this many units of
  /// tool work (0 disables automatic points; checkout-triggered points
  /// are always taken, per Sect. 5.2).
  void set_auto_recovery_interval(uint64_t units) { auto_rp_units_ = units; }

  // --- DOP lifecycle -------------------------------------------------

  /// Begin-of-DOP: registers the DOP here and at the server (2PC).
  Result<DopId> BeginDop(DaId da);

  /// Checkout of an input version into the DOP context. Always followed
  /// by a recovery point "to avoid duplicate requests of a DOV from
  /// the server in the case of a failure".
  Status Checkout(DopId dop, DovId dov, bool take_derivation_lock = false);

  /// Read access to a checked-out input.
  Result<storage::DesignObject> Input(DopId dop, DovId dov) const;
  std::vector<DovId> CheckedOut(DopId dop) const;

  /// Tool-side working state.
  Status PutWorkspace(DopId dop, const std::string& key,
                      storage::DesignObject object);
  Result<storage::DesignObject> GetWorkspace(DopId dop,
                                             const std::string& key) const;

  /// Records `units` of tool work (advances the work counter and
  /// possibly takes an automatic recovery point).
  Status DoWork(DopId dop, uint64_t units);

  // --- Designer-visible structuring (Sect. 4.3) -----------------------

  Status Save(DopId dop, const std::string& savepoint_name);
  Status Restore(DopId dop, const std::string& savepoint_name);
  Status Suspend(DopId dop);
  Status Resume(DopId dop);

  /// Takes an explicit (system) recovery point.
  Status TakeRecoveryPoint(DopId dop);

  /// Hands the in-memory context of a finished (committed) DOP over to
  /// a successor DOP on the same workstation. The paper allows this
  /// data-flow shortcut explicitly: "in quite a number of cases ...
  /// the in-memory data structure can be handed over from one DOP to
  /// the succeeding DOP" (Sect. 5, fn. 1), so the successor need not
  /// re-checkout what the predecessor had loaded. The successor gets a
  /// recovery point immediately (the handed-over state must survive a
  /// crash exactly like a checkout would).
  Status HandOverContext(DopId from, DopId to);

  // --- End-of-DOP ------------------------------------------------------

  /// Checkin of the derived version (its own ACID unit against the
  /// repository, under 2PC with the server). On integrity failure the
  /// DOP stays active and the caller sees the "checkin failure".
  Result<DovId> Checkin(DopId dop, storage::DesignObject object,
                        const std::vector<DovId>& predecessors);

  /// Commit: releases server-side locks, then removes savepoints and
  /// recovery points (Sect. 5.2 ordering).
  Status CommitDop(DopId dop);
  Status AbortDop(DopId dop);

  Result<DopState> StateOf(DopId dop) const;
  Result<uint64_t> WorkDone(DopId dop) const;

  // --- Failure handling -----------------------------------------------

  /// Workstation crash: all volatile DOP state (contexts, savepoints)
  /// is lost; recovery points survive on local stable storage.
  void Crash();
  /// Restart: re-establishes each crashed DOP from its most recent
  /// recovery point ("partial rollback to recovery points"). Returns
  /// the total units of work lost.
  Result<uint64_t> Recover();

  const ClientTmStats& stats() const { return stats_; }
  const rpc::TwoPcStats& two_pc_stats() const { return two_pc_.stats(); }
  DovCache& cache() { return cache_; }
  const DovCache& cache() const { return cache_; }

 private:
  struct DopRuntime {
    DaId da;
    DopState state = DopState::kActive;
    DopContext context;                 // volatile
    std::vector<Savepoint> savepoints;  // volatile
    uint64_t work_at_last_rp = 0;
  };

  Result<DopRuntime*> ActiveDop(DopId dop);
  /// One 2PC run client<->server for a critical interaction; returns
  /// non-OK if the protocol could not complete (e.g. server down).
  Status RunCommitProtocol(DopId dop);
  void PersistRecoveryPoint(DopId dop, const DopRuntime& runtime);

  ServerTm* server_;
  rpc::Network* network_;
  NodeId node_;
  SimClock* clock_;
  rpc::InvalidationBus* invalidations_;
  rpc::TwoPhaseCommitCoordinator two_pc_;
  IdGenerator<DopId> dop_gen_;
  uint64_t auto_rp_units_ = 0;

  /// Workstation DOV cache (volatile: dropped at Crash()). The
  /// invalidation-bus handler mutates it from the server's thread; the
  /// cache synchronizes itself.
  DovCache cache_;

  std::unordered_map<DopId, DopRuntime> dops_;  // volatile
  /// Stable storage: latest recovery point per DOP + the DOP's DA (so
  /// recovery can re-register with the server).
  std::map<uint64_t, std::pair<DaId, RecoveryPoint>> stable_rp_;
  uint64_t rp_sequence_ = 0;

  ClientTmStats stats_;
};

}  // namespace concord::txn

#endif  // CONCORD_TXN_CLIENT_TM_H_
