#ifndef CONCORD_TXN_CLIENT_TM_H_
#define CONCORD_TXN_CLIENT_TM_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "rpc/invalidation.h"
#include "rpc/network.h"
#include "rpc/two_phase_commit.h"
#include "txn/dop_context.h"
#include "txn/dov_cache.h"
#include "txn/server_service.h"
#include "txn/shard_router.h"

namespace concord::txn {

struct ClientTmStats {
  /// DOPs this client-TM committed (exactly one per DOP, however many
  /// server nodes the End-of-DOP fanned out to — the per-node
  /// ServerTmStats count resolved registrations instead, so a
  /// cross-shard DOP bumps several of those).
  uint64_t dops_committed = 0;
  uint64_t savepoints_taken = 0;
  uint64_t restores = 0;
  uint64_t recovery_points_taken = 0;
  uint64_t suspends = 0;
  uint64_t resumes = 0;
  uint64_t crashes = 0;
  uint64_t dops_recovered = 0;
  uint64_t work_units_lost = 0;
  uint64_t work_units_done = 0;
  uint64_t context_handovers = 0;
  /// Checkouts served from the workstation DOV cache (no server
  /// round-trip) vs. forwarded to the server-TM.
  uint64_t checkouts_from_cache = 0;
  uint64_t checkouts_from_server = 0;
  /// Checkins whose new DOV was inserted into the local cache
  /// (validated for the creating DA), so re-reading one's own checkin
  /// is a hit.
  uint64_t checkin_cache_inserts = 0;
  /// Checkin+commit pairs collapsed into one server round trip.
  uint64_t batched_checkin_commits = 0;
  /// Cache entries re-armed by the post-recovery revalidation batch.
  uint64_t recovery_warmup_checkouts = 0;
  /// Placement-cache entries dropped and re-fetched after a server
  /// answered kWrongShard (the DA migrated under this workstation).
  uint64_t placement_refreshes = 0;
  /// Critical interactions whose operations spanned several server
  /// nodes (ran as true multi-participant 2PC).
  uint64_t cross_shard_interactions = 0;
  /// DOPs begun and not yet committed/aborted (crashed-but-recoverable
  /// DOPs count: they are still open). With the async script engine one
  /// workstation holds many DOPs open at once; the peak gauge is the
  /// concurrency evidence the sim and benches report.
  uint64_t dops_in_flight = 0;
  uint64_t peak_dops_in_flight = 0;
};

/// Client half of the transaction manager: "resides on the workstation
/// managing the internal structure of DOPs" (Sect. 5.1). One ClientTm
/// per workstation. It implements the TE-level facilities of Sect. 4.3
/// (Save/Restore, Suspend/Resume) and the recovery-point machinery of
/// Sect. 5.2, and drives a two-phase commit with the server-TM for
/// every critical interaction (Begin-of-DOP, checkout, checkin,
/// End-of-DOP).
///
/// All server traffic goes through the typed ServerService protocol,
/// routed across the server plane by a ShardRouter: DOV-addressed
/// requests go to the shard encoded in the DOV id, DA-addressed ones
/// to the DA's home node (workstation placement cache, refreshed on
/// kWrongShard). A critical interaction whose operations land on ONE
/// node rides a single [Prepare, ops..., Decide] envelope — one server
/// round trip, the degenerate 2PC. Operations spanning several nodes
/// run the true multi-participant protocol: one [Prepare, ops...]
/// phase-1 envelope per participant (effects staged in the server's
/// 2PC ledger), then a [Decide] fan-out that commits everywhere or
/// nowhere. The client-TM neither includes nor stores a ServerTm.
///
/// It also owns the workstation's DOV cache: a Checkout whose DOV is
/// cached and validated for the DOP's DA is served locally with no
/// server round-trip (DOVs are immutable, so the bytes are always
/// right; validation covers visibility). Misses run the full envelope
/// as before and re-arm the cache; a Checkin inserts the newly created
/// version validated for the creating DA, so re-reading one's own
/// checkin hits. When an InvalidationBus is wired up, server-pushed
/// withdrawals/invalidations drop cache entries, so a withdrawn
/// version is never served locally; without a bus the cache still
/// works but relies on crashes/evictions only — embedders that use the
/// cooperation manager's withdrawal machinery must connect the bus.
///
/// Thread-safe: every public operation takes the (recursive) TM mutex,
/// so script-engine executor threads may drive concurrent DOPs of the
/// same workstation. Interactions serialize at DOP-operation
/// granularity — the paper's client-TM is one workstation process —
/// while tool processing between operations overlaps freely.
class ClientTm {
 public:
  /// Single-server plane: every envelope goes to `service`.
  ClientTm(ServerService* service, rpc::Network* network, NodeId workstation,
           SimClock* clock, rpc::InvalidationBus* invalidations = nullptr);
  /// Sharded plane: envelopes route through `router`.
  ClientTm(ShardRouter router, rpc::Network* network, NodeId workstation,
           SimClock* clock, rpc::InvalidationBus* invalidations = nullptr);
  ~ClientTm();
  ClientTm(const ClientTm&) = delete;
  ClientTm& operator=(const ClientTm&) = delete;

  NodeId node() const { return node_; }

  /// Recovery points are taken automatically after this many units of
  /// tool work (0 disables automatic points; checkout-triggered points
  /// are always taken, per Sect. 5.2).
  void set_auto_recovery_interval(uint64_t units) { auto_rp_units_ = units; }

  /// When on (the default), CheckinCommit ships checkin + derivation-
  /// lock release as ONE BatchRequest envelope (one server round trip);
  /// off, it degrades to the sequential Checkin(); CommitDop() pair —
  /// the ablation knob for the batching experiments.
  void set_batching(bool on) { batching_ = on; }
  bool batching() const { return batching_; }

  /// When on (the default), Recover() revalidates every recovered
  /// recovery point's inputs with one BatchRequest and re-warms the
  /// DOV cache from the replies; off, the cache restarts cold.
  void set_warm_cache_on_recovery(bool on) { warm_cache_on_recovery_ = on; }

  // --- DOP lifecycle -------------------------------------------------

  /// Begin-of-DOP: registers the DOP here and at the server (2PC).
  Result<DopId> BeginDop(DaId da);

  /// Checkout of an input version into the DOP context. Always followed
  /// by a recovery point "to avoid duplicate requests of a DOV from
  /// the server in the case of a failure".
  Status Checkout(DopId dop, DovId dov, bool take_derivation_lock = false);

  /// Read access to a checked-out input.
  Result<storage::DesignObject> Input(DopId dop, DovId dov) const;
  std::vector<DovId> CheckedOut(DopId dop) const;

  /// Tool-side working state.
  Status PutWorkspace(DopId dop, const std::string& key,
                      storage::DesignObject object);
  Result<storage::DesignObject> GetWorkspace(DopId dop,
                                             const std::string& key) const;

  /// Records `units` of tool work (advances the work counter and
  /// possibly takes an automatic recovery point).
  Status DoWork(DopId dop, uint64_t units);

  // --- Designer-visible structuring (Sect. 4.3) -----------------------

  Status Save(DopId dop, const std::string& savepoint_name);
  Status Restore(DopId dop, const std::string& savepoint_name);
  Status Suspend(DopId dop);
  Status Resume(DopId dop);

  /// Takes an explicit (system) recovery point.
  Status TakeRecoveryPoint(DopId dop);

  /// Hands the in-memory context of a finished (committed) DOP over to
  /// a successor DOP on the same workstation. The paper allows this
  /// data-flow shortcut explicitly: "in quite a number of cases ...
  /// the in-memory data structure can be handed over from one DOP to
  /// the succeeding DOP" (Sect. 5, fn. 1), so the successor need not
  /// re-checkout what the predecessor had loaded. The successor gets a
  /// recovery point immediately (the handed-over state must survive a
  /// crash exactly like a checkout would).
  Status HandOverContext(DopId from, DopId to);

  // --- End-of-DOP ------------------------------------------------------

  /// Checkin of the derived version (its own ACID unit against the
  /// repository, under 2PC with the server). On integrity failure the
  /// DOP stays active and the caller sees the "checkin failure".
  Result<DovId> Checkin(DopId dop, storage::DesignObject object,
                        const std::vector<DovId>& predecessors);

  /// Checkin immediately followed by End-of-DOP commit. With batching
  /// on, both ride ONE envelope: the server executes checkin and
  /// derivation-lock release in order (a failed checkin skips the
  /// commit, so the DOP stays active exactly as with the sequential
  /// pair) and the workstation pays a single round trip.
  Result<DovId> CheckinCommit(DopId dop, storage::DesignObject object,
                              const std::vector<DovId>& predecessors);

  /// Commit: releases server-side locks, then removes savepoints and
  /// recovery points (Sect. 5.2 ordering).
  Status CommitDop(DopId dop);
  Status AbortDop(DopId dop);

  Result<DopState> StateOf(DopId dop) const;
  Result<uint64_t> WorkDone(DopId dop) const;

  // --- Failure handling -----------------------------------------------

  /// Workstation crash: all volatile DOP state (contexts, savepoints)
  /// is lost; recovery points survive on local stable storage.
  void Crash();
  /// Restart: re-establishes each crashed DOP from its most recent
  /// recovery point ("partial rollback to recovery points"). Returns
  /// the total units of work lost.
  Result<uint64_t> Recover();

  /// Snapshot under the TM mutex: executor threads drive concurrent
  /// DOPs, so a reference into the live struct would race the mutators.
  ClientTmStats stats() const {
    RecursiveMutexLock lock(&mu_);
    return stats_;
  }
  rpc::TwoPcStats two_pc_stats() const {
    RecursiveMutexLock lock(&mu_);
    return two_pc_stats_;
  }
  DovCache& cache() { return cache_; }
  const DovCache& cache() const { return cache_; }

 private:
  struct DopRuntime {
    DaId da;
    DopState state = DopState::kActive;
    DopContext context;                 // volatile
    std::vector<Savepoint> savepoints;  // volatile
    uint64_t work_at_last_rp = 0;
    /// Server nodes this DOP is registered at (home node at Begin-of-
    /// DOP, plus every node a cross-shard checkout enlisted). End-of-
    /// DOP fans out to exactly these participants.
    std::vector<NodeId> participants;
  };

  /// One operation plus the server node it routes to.
  struct RoutedOp {
    NodeId node;
    ServerRequest op;
  };

  Result<DopRuntime*> ActiveDop(DopId dop) REQUIRES(mu_);
  /// Fresh interaction (2PC transaction) id, namespaced by workstation
  /// like DOP ids — the server's prepared-transaction ledger keys on
  /// it, so two interactions must never share one.
  TxnId NextTxnId() REQUIRES(mu_);
  bool Enlisted(const DopRuntime& runtime, NodeId node) const;
  /// One critical interaction client<->server plane. Ops landing on a
  /// single node ride one [Prepare, ops..., Decide] envelope (one
  /// round trip). Ops spanning nodes run true multi-participant 2PC:
  /// a [Prepare, ops...] envelope per participant (staged server-
  /// side), then a [Decide] fan-out — commit only when every
  /// participant was reachable and, for dependent chains, every
  /// operation succeeded. Returns the replies in the original op
  /// order; ops on an unreachable participant carry kUnavailable.
  /// Non-OK only when the protocol could not complete at all.
  /// `independent` declares the ops unrelated: no cross-node
  /// atomicity, each participant gets its own degenerate envelope.
  Result<BatchReply> RunCriticalInteraction(TxnId txn,
                                            std::vector<RoutedOp> ops,
                                            bool independent = false)
      REQUIRES(mu_);
  /// The multi-participant leg of RunCriticalInteraction.
  Result<BatchReply> RunMultiNodeInteraction(
      TxnId txn, const std::vector<NodeId>& participants,
      const std::vector<std::vector<size_t>>& op_indices,
      std::vector<RoutedOp>& ops, bool independent) REQUIRES(mu_);
  /// Shared checkin routing: resolves the DA's home (two attempts —
  /// a kWrongShard reply refreshes the placement cache and reroutes),
  /// piggybacks enlistment, and optionally appends the End-of-DOP
  /// commit legs for every participant (the batched CheckinCommit).
  /// On success with `with_commit` the DOP is finished client-side.
  Result<DovId> RoutedCheckin(DopId dop, DopRuntime* runtime,
                              storage::DesignObject object,
                              const std::vector<DovId>& predecessors,
                              bool with_commit) REQUIRES(mu_);
  /// End-of-DOP commit bookkeeping shared by CommitDop/CheckinCommit.
  void FinishCommitted(DopId dop, DopRuntime* runtime) REQUIRES(mu_);
  /// Inserts a freshly checked-in version into the DOV cache,
  /// validated for the creating DA.
  void CacheOwnCheckin(const DopRuntime& runtime, DopId dop, DovId dov,
                       storage::DesignObject object,
                       const std::vector<DovId>& predecessors,
                       SimTime created_at) REQUIRES(mu_);
  /// One-envelope revalidation of the recovered contexts' inputs.
  void WarmCacheFromRecoveredContexts(const std::vector<DopId>& recovered)
      REQUIRES(mu_);
  void PersistRecoveryPoint(DopId dop, const DopRuntime& runtime)
      REQUIRES(mu_);

  ShardRouter router_;
  rpc::Network* network_;
  NodeId node_;
  SimClock* clock_;
  rpc::InvalidationBus* invalidations_;
  /// Serializes public operations against each other (executor threads
  /// drive concurrent DOPs). Recursive: operations compose (e.g.
  /// CheckinCommit without batching runs Checkin + CommitDop).
  mutable RecursiveMutex mu_;

  IdGenerator<DopId> dop_gen_ GUARDED_BY(mu_);
  IdGenerator<TxnId> txn_gen_ GUARDED_BY(mu_);
  /// Config knobs: set before traffic, unguarded by design.
  uint64_t auto_rp_units_ = 0;
  bool batching_ = true;
  bool warm_cache_on_recovery_ = true;

  /// Workstation DOV cache (volatile: dropped at Crash()). The
  /// invalidation-bus handler mutates it from the server's thread; the
  /// cache synchronizes itself.
  DovCache cache_;

  std::unordered_map<DopId, DopRuntime> dops_ GUARDED_BY(mu_);  // volatile
  /// Stable storage: latest recovery point per DOP + the DOP's DA (so
  /// recovery can re-register with the server).
  std::map<uint64_t, std::pair<DaId, RecoveryPoint>> stable_rp_
      GUARDED_BY(mu_);
  uint64_t rp_sequence_ GUARDED_BY(mu_) = 0;

  ClientTmStats stats_ GUARDED_BY(mu_);
  /// Per-interaction commit-protocol accounting (the protocol itself
  /// rides the service envelope).
  rpc::TwoPcStats two_pc_stats_ GUARDED_BY(mu_);
};

}  // namespace concord::txn

#endif  // CONCORD_TXN_CLIENT_TM_H_
