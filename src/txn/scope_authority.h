#ifndef CONCORD_TXN_SCOPE_AUTHORITY_H_
#define CONCORD_TXN_SCOPE_AUTHORITY_H_

#include "common/ids.h"

namespace concord::txn {

/// Answers "does DOV d belong to the scope of DA a?" for the server-TM's
/// checkout test (Sect. 5.2: "it has to be tested that, firstly, the
/// DOV belongs to the scope of the DOP's DA"). The cooperation manager
/// implements this against its scope-locks; tests may use a permissive
/// stub.
class ScopeAuthority {
 public:
  virtual ~ScopeAuthority() = default;
  virtual bool InScope(DaId da, DovId dov) = 0;
};

/// Grants everything — for TE-level tests that exercise transaction
/// mechanics without a cooperation layer on top.
class PermissiveScopeAuthority : public ScopeAuthority {
 public:
  bool InScope(DaId, DovId) override { return true; }
};

}  // namespace concord::txn

#endif  // CONCORD_TXN_SCOPE_AUTHORITY_H_
