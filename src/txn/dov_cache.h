#ifndef CONCORD_TXN_DOV_CACHE_H_
#define CONCORD_TXN_DOV_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "storage/version.h"

namespace concord::txn {

/// Counters exposed for benchmarks and the EXPERIMENTS harness.
/// Fields are atomic (RepositoryStats-style) so the invalidation push
/// arriving on the server's thread can bump them while the designer's
/// thread counts hits; read them at quiescence (or accept slightly
/// stale values).
struct DovCacheStats {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> insertions{0};
  std::atomic<uint64_t> invalidations{0};
  std::atomic<uint64_t> evictions{0};
  /// Lookups refused because the DOV carried an invalidation tombstone.
  std::atomic<uint64_t> tombstone_refusals{0};
  /// InsertIfCurrent calls refused because an invalidation raced the
  /// server round-trip.
  std::atomic<uint64_t> stale_inserts_refused{0};
};

/// Workstation-side cache of checked-out DOVs (one per client-TM).
///
/// DOVs are immutable after checkin, so a cached copy is always
/// byte-correct; the correctness problem is *visibility*. A hit is
/// therefore only served when the requesting DOP's DA is in the
/// entry's validated set — the set of DAs for which a full server-side
/// checkout (scope test + derivation-lock test, Sect. 5.2) already
/// succeeded on this workstation. Any other DA's request is a miss and
/// goes to the server-TM, whose answer re-arms the entry for that DA.
///
/// Visibility *revocations* (Propagate withdrawn, DOV invalidated)
/// arrive as server pushes over the invalidation bus and drop the
/// entry entirely plus leave a tombstone (an invalidation-seq entry
/// with no live record). Only a fresh server checkout — authoritative
/// by definition, since the server re-ran the visibility tests —
/// re-arms the entry; nothing else widens a validated set beyond what
/// a server checkout proved.
///
/// Thread-safe: the designer thread does lookups/inserts while the
/// server's invalidation push calls Invalidate from another thread.
class DovCache {
 public:
  /// Default capacity: enough for every live input of a busy
  /// workstation while still bounding memory on long design sessions.
  static constexpr size_t kDefaultCapacity = 256;

  /// Bound on the per-DOV invalidation-seq map (tombstones). When a
  /// long session accumulates more, the map is reset and the epoch
  /// bumped — every in-flight InsertIfCurrent then refuses
  /// (conservative: one extra server trip each), and memory stays
  /// bounded.
  static constexpr size_t kMaxTrackedInvalidations = 4096;

  explicit DovCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  DovCache(const DovCache&) = delete;
  DovCache& operator=(const DovCache&) = delete;

  /// Serves `dov` if cached and validated for `da`; NotFound otherwise
  /// (the caller then performs a real server checkout).
  Result<storage::DovRecord> Lookup(DovId dov, DaId da);

  /// Authoritative insert after a successful server checkout for `da`:
  /// (re)caches the record, marks `da` validated, clears any tombstone,
  /// and evicts the least-recently-used entry beyond capacity.
  void Insert(DovId dov, storage::DovRecord record, DaId da);

  /// Monotonic per-DOV invalidation counter (0 = never invalidated).
  /// Sampled *before* a server checkout starts, it detects an
  /// invalidation push racing the round-trip.
  uint64_t InvalidationSeq(DovId dov) const;

  /// Insert that tolerates the fundamental race between a checkout's
  /// server round-trip and a concurrent invalidation push: the caller
  /// sampled InvalidationSeq(dov) BEFORE contacting the server; if any
  /// invalidation arrived since, the reply predates the revocation and
  /// caching it would resurrect a withdrawn version — the insert is
  /// refused (the next checkout simply pays the server trip again).
  /// Returns true iff the record was cached.
  bool InsertIfCurrent(DovId dov, storage::DovRecord record, DaId da,
                       uint64_t expected_seq);

  /// Insert for a version this workstation just CREATED (checkin): no
  /// pre-round-trip seq sample exists because the DOV id was assigned
  /// by the server inside the round trip. Safe substitute: insert only
  /// if no invalidation for the id has ever been seen — a fresh id has
  /// none, and if a push (e.g. another DA's derivation lock granted
  /// between the server commit and this insert) overtook the reply,
  /// the insert is refused. Returns true iff the record was cached.
  bool InsertIfNeverInvalidated(DovId dov, storage::DovRecord record, DaId da);

  /// Invalidation push: drops the entry (if present) and tombstones the
  /// id so only a fresh authoritative checkout can re-arm it. Returns
  /// true if a live entry was dropped.
  bool Invalidate(DovId dov);

  /// Workstation crash: the cache is volatile — everything goes,
  /// tombstones included (the bus redelivers outage-time invalidations
  /// at recovery, before traffic resumes).
  void Clear();

  bool Contains(DovId dov) const;
  bool IsTombstoned(DovId dov) const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

  const DovCacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    storage::DovRecord record;
    std::unordered_set<DaId> validated_das;
    /// Position in lru_ (most-recent at front).
    std::list<DovId>::iterator lru_pos;
  };

  void TouchLocked(Entry& entry, DovId dov) REQUIRES(mu_);
  void InsertLocked(DovId dov, storage::DovRecord record, DaId da)
      REQUIRES(mu_);

  const size_t capacity_;
  /// Leaf lock: the designer thread and the invalidation push serialize
  /// on it; never held across a server call.
  mutable Mutex mu_;
  std::unordered_map<DovId, Entry> entries_ GUARDED_BY(mu_);
  std::list<DovId> lru_ GUARDED_BY(mu_);  // front = most recently used
  /// Invalidations seen per DOV since the last Clear()/epoch reset. An
  /// id with a seq but no live entry is a tombstone; only an
  /// authoritative insert re-arms it. Bounded by
  /// kMaxTrackedInvalidations via the epoch below.
  std::unordered_map<DovId, uint64_t> invalidation_seq_ GUARDED_BY(mu_);
  /// Folded into every sampled seq (high bits), so resetting the map
  /// invalidates all outstanding samples instead of aliasing them to
  /// "never invalidated".
  uint64_t seq_epoch_ GUARDED_BY(mu_) = 0;
  DovCacheStats stats_;
};

}  // namespace concord::txn

#endif  // CONCORD_TXN_DOV_CACHE_H_
