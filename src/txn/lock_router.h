#ifndef CONCORD_TXN_LOCK_ROUTER_H_
#define CONCORD_TXN_LOCK_ROUTER_H_

#include <vector>

#include "common/ids.h"
#include "txn/server_lock_table.h"

namespace concord::txn {

/// Routes the cooperation manager's lock/scope operations across the
/// sharded server plane. Each server node owns the lock tables for the
/// DOVs its repository stores (a DOV's derivation lock, scope owner
/// and usage grants live where the DOV lives), and a DOV's owning
/// shard is encoded in its id — so every per-DOV operation is a pure
/// local route, and only plane-wide operations (ReleaseAll) fan out.
/// Below the node level each table is further sliced per executor
/// partition (txn/server_lock_table.h); this router is oblivious to
/// that — it routes nodes, the table routes slices.
///
/// The degenerate single-manager router reproduces the pre-sharding
/// behaviour exactly. Copyable by design: it holds non-owning pointers
/// and the CM keeps one by value.
class LockRouter {
 public:
  LockRouter() = default;
  explicit LockRouter(ServerLockTable* single) : shards_{single} {}
  explicit LockRouter(std::vector<ServerLockTable*> shards)
      : shards_(std::move(shards)) {}

  size_t shard_count() const { return shards_.size(); }

  /// Lock table owning `dov` (out-of-range shard indices clamp to
  /// the coordinator, matching the repository router). Within the
  /// node, the table routes on to the slice of the owning executor
  /// partition.
  ServerLockTable& Of(DovId dov) const {
    return *shards_[DovShardClamped(dov, shards_.size())];
  }

  // The CM-facing surface: same names and signatures as LockManager,
  // so the manager's call sites do not care whether the plane has one
  // node or many.

  void SetScopeOwner(DovId dov, DaId da) { Of(dov).SetScopeOwner(dov, da); }
  DaId ScopeOwner(DovId dov) const { return Of(dov).ScopeOwner(dov); }
  void GrantUsageRead(DovId dov, DaId da) { Of(dov).GrantUsageRead(dov, da); }
  void RevokeUsageRead(DovId dov, DaId da) {
    Of(dov).RevokeUsageRead(dov, da);
  }
  bool CanRead(DaId da, DovId dov) { return Of(dov).CanRead(da, dov); }

  void InheritScopeLocks(DaId super, DaId sub,
                         const std::vector<DovId>& final_dovs) {
    // Inheritance is per-DOV: hand each final DOV to its owning shard.
    for (DovId dov : final_dovs) {
      Of(dov).InheritScopeLocks(super, sub, {dov});
    }
  }

  void ReleaseAll() {
    for (ServerLockTable* shard : shards_) shard->ReleaseAll();
  }

 private:
  std::vector<ServerLockTable*> shards_;
};

}  // namespace concord::txn

#endif  // CONCORD_TXN_LOCK_ROUTER_H_
