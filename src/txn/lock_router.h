#ifndef CONCORD_TXN_LOCK_ROUTER_H_
#define CONCORD_TXN_LOCK_ROUTER_H_

#include <vector>

#include "common/ids.h"
#include "txn/lock_manager.h"

namespace concord::txn {

/// Routes the cooperation manager's lock/scope operations across the
/// sharded server plane. Each server node owns the lock tables for the
/// DOVs its repository stores (a DOV's derivation lock, scope owner
/// and usage grants live where the DOV lives), and a DOV's owning
/// shard is encoded in its id — so every per-DOV operation is a pure
/// local route, and only plane-wide operations (ReleaseAll) fan out.
///
/// The degenerate single-manager router reproduces the pre-sharding
/// behaviour exactly. Copyable by design: it holds non-owning pointers
/// and the CM keeps one by value.
class LockRouter {
 public:
  LockRouter() = default;
  explicit LockRouter(LockManager* single) : shards_{single} {}
  explicit LockRouter(std::vector<LockManager*> shards)
      : shards_(std::move(shards)) {}

  size_t shard_count() const { return shards_.size(); }

  /// Lock manager owning `dov` (out-of-range shard indices clamp to
  /// the coordinator, matching the repository router).
  LockManager& Of(DovId dov) const {
    return *shards_[DovShardClamped(dov, shards_.size())];
  }

  // The CM-facing surface: same names and signatures as LockManager,
  // so the manager's call sites do not care whether the plane has one
  // node or many.

  void SetScopeOwner(DovId dov, DaId da) { Of(dov).SetScopeOwner(dov, da); }
  DaId ScopeOwner(DovId dov) const { return Of(dov).ScopeOwner(dov); }
  void GrantUsageRead(DovId dov, DaId da) { Of(dov).GrantUsageRead(dov, da); }
  void RevokeUsageRead(DovId dov, DaId da) {
    Of(dov).RevokeUsageRead(dov, da);
  }
  bool CanRead(DaId da, DovId dov) { return Of(dov).CanRead(da, dov); }

  void InheritScopeLocks(DaId super, DaId sub,
                         const std::vector<DovId>& final_dovs) {
    // Inheritance is per-DOV: hand each final DOV to its owning shard.
    for (DovId dov : final_dovs) {
      Of(dov).InheritScopeLocks(super, sub, {dov});
    }
  }

  void ReleaseAll() {
    for (LockManager* shard : shards_) shard->ReleaseAll();
  }

 private:
  std::vector<LockManager*> shards_;
};

}  // namespace concord::txn

#endif  // CONCORD_TXN_LOCK_ROUTER_H_
