#ifndef CONCORD_TXN_LOCK_MANAGER_H_
#define CONCORD_TXN_LOCK_MANAGER_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"

namespace concord::txn {

struct LockStats {
  uint64_t short_locks_taken = 0;
  uint64_t derivation_locks_taken = 0;
  uint64_t derivation_conflicts = 0;
  uint64_t scope_grants = 0;
  uint64_t scope_denials = 0;
  uint64_t inheritances = 0;
};

/// The server-TM's lock tables (Sect. 5.2 / 5.4). Three mechanisms:
///
///  - **Short locks** protect individual checkin/checkout operations
///    (derivation-graph proliferation).
///  - **Derivation locks** are long locks a DA may acquire on a DOV
///    "to prevent multiple checkout (and concurrent processing) ...
///    for application-specific reasons". Exclusive per DOV, reentrant
///    for the holding DA.
///  - **Scope-locks** control DOV visibility among DAs with an
///    inheritance scheme "similar to that used in nested transactions"
///    [Mo81] but with the paper's two differences: only locks on
///    *final* DOVs are inherited by the super-DA, and a lock may be
///    granted across DAs along a usage relationship (for propagated
///    DOVs of sufficient quality).
///
/// The LockManager implements mechanism only; policy (when to grant a
/// usage read, which DOVs are final) is the cooperation manager's job.
///
/// Thread safety: all operations are internally synchronized by one
/// table mutex, so DAs running on concurrent threads can race for
/// derivation locks and exactly one wins (the others get
/// kLockConflict). The table operations are point lookups — the
/// critical sections are tiny and the mutex is a leaf lock. stats() is
/// a snapshot taken under the same mutex.
class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // --- Short locks (accounting) -------------------------------------

  /// Bracket a checkin/checkout critical section.
  void AcquireShort(DovId dov);
  void ReleaseShort(DovId dov);

  // --- Derivation locks ----------------------------------------------

  /// Acquires the exclusive derivation lock on `dov` for `da`.
  /// kLockConflict if another DA holds it.
  Status AcquireDerivation(DovId dov, DaId da);
  Status ReleaseDerivation(DovId dov, DaId da);
  /// Releases every derivation lock held by `da` (commit/abort path:
  /// "the server-TM is firstly asked to release the derivation locks
  /// held", Sect. 5.2).
  int ReleaseAllDerivation(DaId da);
  /// Invalid DaId if unlocked.
  DaId DerivationHolder(DovId dov) const;

  // --- Scope-locks -----------------------------------------------------

  /// Declares `da` the scope owner of `dov` (checkin inserts the DOV
  /// into the DA's derivation graph and scope).
  void SetScopeOwner(DovId dov, DaId da);
  DaId ScopeOwner(DovId dov) const;

  /// Grants `da` read visibility of `dov` along a usage relationship.
  void GrantUsageRead(DovId dov, DaId da);
  void RevokeUsageRead(DovId dov, DaId da);

  /// True iff `da` owns the scope-lock or holds a usage grant. Counted
  /// in stats as a grant/denial for the dissemination-control bench.
  bool CanRead(DaId da, DovId dov);

  /// Nested-transaction-style inheritance at sub-DA termination: the
  /// super-DA takes over the scope-locks of exactly the listed final
  /// DOVs and retains them. Non-final DOVs of the sub-DA stay locked by
  /// the (terminated) sub-DA, i.e. become unreachable.
  void InheritScopeLocks(DaId super, DaId sub,
                         const std::vector<DovId>& final_dovs);

  /// After the top-level DA finishes, "all locks are released".
  void ReleaseAll();

  /// All DOVs whose scope `da` owns.
  std::vector<DovId> OwnedBy(DaId da) const;

  /// Consistent snapshot of the counters.
  LockStats stats() const;
  void ResetStats();

 private:
  /// Leaf lock: never held across calls into any other component.
  mutable Mutex mu_;
  std::unordered_map<DovId, DaId> derivation_locks_ GUARDED_BY(mu_);
  std::unordered_map<DovId, DaId> scope_owner_ GUARDED_BY(mu_);
  std::unordered_map<DovId, std::unordered_set<DaId>> usage_readers_
      GUARDED_BY(mu_);
  int short_depth_ GUARDED_BY(mu_) = 0;
  LockStats stats_ GUARDED_BY(mu_);
};

}  // namespace concord::txn

#endif  // CONCORD_TXN_LOCK_MANAGER_H_
