#include "txn/server_service.h"

#include <utility>

#include "common/serde.h"
#include "storage/wal_codec.h"
#include "txn/server_tm.h"

namespace concord::txn {

namespace {

// Wire tags. Stable on-the-wire values matching the ServerRequest
// variant order — append only, never reorder.
constexpr uint8_t kTagBeginDop = 0;
constexpr uint8_t kTagCheckout = 1;
constexpr uint8_t kTagCheckin = 2;
constexpr uint8_t kTagCommitDop = 3;
constexpr uint8_t kTagAbortDop = 4;
constexpr uint8_t kTagDaOfDop = 5;
constexpr uint8_t kTagPrepare = 6;
constexpr uint8_t kTagDecide = 7;

// Reply body tags, matching the ServerReply::body variant order.
constexpr uint8_t kBodyAck = 0;
constexpr uint8_t kBodyCheckout = 1;
constexpr uint8_t kBodyCheckin = 2;
constexpr uint8_t kBodyDaOfDop = 3;
constexpr uint8_t kBodyPrepare = 4;

/// Upper bound on the per-envelope request count: a corrupt count must
/// read as a malformed payload, not as an allocation request.
constexpr uint32_t kMaxBatchOps = 1u << 20;

void EncodeStatus(std::string* out, const Status& status) {
  PutByte(out, static_cast<uint8_t>(status.code()));
  PutLengthPrefixed(out, status.ok() ? std::string_view() : status.message());
}

bool DecodeStatus(ByteReader* in, Status* status) {
  uint8_t code = 0;
  std::string_view message;
  if (!in->ReadByte(&code) ||
      code > static_cast<uint8_t>(StatusCode::kWrongShard) ||
      !in->ReadLengthPrefixed(&message)) {
    return false;
  }
  *status = code == 0 ? Status::OK()
                      : Status(static_cast<StatusCode>(code),
                               std::string(message));
  return true;
}

void EncodeDovIdList(std::string* out, const std::vector<DovId>& ids) {
  PutFixed32(out, static_cast<uint32_t>(ids.size()));
  for (DovId id : ids) PutFixed64(out, id.value());
}

bool DecodeDovIdList(ByteReader* in, std::vector<DovId>* ids) {
  uint32_t count = 0;
  if (!in->ReadFixed32(&count)) return false;
  // Never reserve from a raw wire count: each id costs 8 bytes of
  // input, so anything beyond remaining()/8 is provably malformed and
  // must fail in the read loop, not as a giant allocation.
  if (count > in->remaining() / sizeof(uint64_t)) return false;
  ids->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t value = 0;
    if (!in->ReadFixed64(&value)) return false;
    ids->push_back(DovId(value));
  }
  return true;
}

void EncodeRequest(std::string* out, const ServerRequest& op) {
  if (const auto* begin = std::get_if<BeginDopRequest>(&op)) {
    PutByte(out, kTagBeginDop);
    PutFixed64(out, begin->dop.value());
    PutFixed64(out, begin->da.value());
  } else if (const auto* checkout = std::get_if<CheckoutRequest>(&op)) {
    PutByte(out, kTagCheckout);
    PutFixed64(out, checkout->dop.value());
    PutFixed64(out, checkout->dov.value());
    PutByte(out, checkout->take_derivation_lock ? 1 : 0);
  } else if (const auto* checkin = std::get_if<CheckinRequest>(&op)) {
    PutByte(out, kTagCheckin);
    PutFixed64(out, checkin->dop.value());
    PutLengthPrefixed(out, storage::EncodeDesignObject(checkin->object));
    EncodeDovIdList(out, checkin->predecessors);
    PutFixed64(out, static_cast<uint64_t>(checkin->created_at));
  } else if (const auto* commit = std::get_if<CommitDopRequest>(&op)) {
    PutByte(out, kTagCommitDop);
    PutFixed64(out, commit->dop.value());
  } else if (const auto* abort = std::get_if<AbortDopRequest>(&op)) {
    PutByte(out, kTagAbortDop);
    PutFixed64(out, abort->dop.value());
  } else if (const auto* da_of = std::get_if<DaOfDopRequest>(&op)) {
    PutByte(out, kTagDaOfDop);
    PutFixed64(out, da_of->dop.value());
  } else if (const auto* prepare = std::get_if<PrepareRequest>(&op)) {
    PutByte(out, kTagPrepare);
    PutFixed64(out, prepare->txn.value());
  } else if (const auto* decide = std::get_if<DecideRequest>(&op)) {
    PutByte(out, kTagDecide);
    PutFixed64(out, decide->txn.value());
    PutByte(out, decide->commit ? 1 : 0);
  }
}

bool DecodeRequest(ByteReader* in, ServerRequest* op) {
  uint8_t tag = 0;
  if (!in->ReadByte(&tag)) return false;
  switch (tag) {
    case kTagBeginDop: {
      uint64_t dop = 0;
      uint64_t da = 0;
      if (!in->ReadFixed64(&dop) || !in->ReadFixed64(&da)) return false;
      *op = BeginDopRequest{DopId(dop), DaId(da)};
      return true;
    }
    case kTagCheckout: {
      uint64_t dop = 0;
      uint64_t dov = 0;
      uint8_t lock = 0;
      if (!in->ReadFixed64(&dop) || !in->ReadFixed64(&dov) ||
          !in->ReadByte(&lock)) {
        return false;
      }
      *op = CheckoutRequest{DopId(dop), DovId(dov), lock != 0};
      return true;
    }
    case kTagCheckin: {
      CheckinRequest checkin;
      uint64_t dop = 0;
      std::string_view object_bytes;
      uint64_t created_at = 0;
      if (!in->ReadFixed64(&dop) || !in->ReadLengthPrefixed(&object_bytes)) {
        return false;
      }
      auto object = storage::DecodeDesignObject(object_bytes);
      if (!object.ok()) return false;
      checkin.dop = DopId(dop);
      checkin.object = std::move(*object);
      if (!DecodeDovIdList(in, &checkin.predecessors) ||
          !in->ReadFixed64(&created_at)) {
        return false;
      }
      checkin.created_at = static_cast<SimTime>(created_at);
      *op = std::move(checkin);
      return true;
    }
    case kTagCommitDop: {
      uint64_t dop = 0;
      if (!in->ReadFixed64(&dop)) return false;
      *op = CommitDopRequest{DopId(dop)};
      return true;
    }
    case kTagAbortDop: {
      uint64_t dop = 0;
      if (!in->ReadFixed64(&dop)) return false;
      *op = AbortDopRequest{DopId(dop)};
      return true;
    }
    case kTagDaOfDop: {
      uint64_t dop = 0;
      if (!in->ReadFixed64(&dop)) return false;
      *op = DaOfDopRequest{DopId(dop)};
      return true;
    }
    case kTagPrepare: {
      uint64_t txn = 0;
      if (!in->ReadFixed64(&txn)) return false;
      *op = PrepareRequest{TxnId(txn)};
      return true;
    }
    case kTagDecide: {
      uint64_t txn = 0;
      uint8_t commit = 0;
      if (!in->ReadFixed64(&txn) || !in->ReadByte(&commit)) return false;
      *op = DecideRequest{TxnId(txn), commit != 0};
      return true;
    }
    default:
      return false;
  }
}

void EncodeReply(std::string* out, const ServerReply& reply) {
  EncodeStatus(out, reply.status);
  if (const auto* checkout = std::get_if<CheckoutReply>(&reply.body)) {
    PutByte(out, kBodyCheckout);
    PutLengthPrefixed(out, storage::EncodeDovRecord(checkout->record));
  } else if (const auto* checkin = std::get_if<CheckinReply>(&reply.body)) {
    PutByte(out, kBodyCheckin);
    PutFixed64(out, checkin->dov.value());
  } else if (const auto* da_of = std::get_if<DaOfDopReply>(&reply.body)) {
    PutByte(out, kBodyDaOfDop);
    PutFixed64(out, da_of->da.value());
  } else if (const auto* prepare = std::get_if<PrepareReply>(&reply.body)) {
    PutByte(out, kBodyPrepare);
    PutByte(out, prepare->vote ? 1 : 0);
  } else {
    PutByte(out, kBodyAck);
  }
}

bool DecodeReply(ByteReader* in, ServerReply* reply) {
  uint8_t tag = 0;
  if (!DecodeStatus(in, &reply->status) || !in->ReadByte(&tag)) return false;
  switch (tag) {
    case kBodyAck:
      reply->body = AckReply{};
      return true;
    case kBodyCheckout: {
      std::string_view record_bytes;
      if (!in->ReadLengthPrefixed(&record_bytes)) return false;
      auto record = storage::DecodeDovRecord(record_bytes);
      if (!record.ok()) return false;
      reply->body = CheckoutReply{std::move(*record)};
      return true;
    }
    case kBodyCheckin: {
      uint64_t dov = 0;
      if (!in->ReadFixed64(&dov)) return false;
      reply->body = CheckinReply{DovId(dov)};
      return true;
    }
    case kBodyDaOfDop: {
      uint64_t da = 0;
      if (!in->ReadFixed64(&da)) return false;
      reply->body = DaOfDopReply{DaId(da)};
      return true;
    }
    case kBodyPrepare: {
      uint8_t vote = 0;
      if (!in->ReadByte(&vote)) return false;
      reply->body = PrepareReply{vote != 0};
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

// --- Typed wrappers -------------------------------------------------------

Result<ServerReply> ServerService::ExecuteOne(ServerRequest op) {
  BatchRequest batch;
  batch.ops.push_back(std::move(op));
  CONCORD_ASSIGN_OR_RETURN(BatchReply reply, Execute(batch));
  if (reply.ops.size() != 1) {
    return Status::Internal("server-service reply arity mismatch");
  }
  return std::move(reply.ops.front());
}

Status ServerService::BeginDop(DopId dop, DaId da) {
  CONCORD_ASSIGN_OR_RETURN(ServerReply reply,
                           ExecuteOne(BeginDopRequest{dop, da}));
  return reply.status;
}

Result<storage::DovRecord> ServerService::Checkout(DopId dop, DovId dov,
                                                   bool take_derivation_lock) {
  CONCORD_ASSIGN_OR_RETURN(
      ServerReply reply,
      ExecuteOne(CheckoutRequest{dop, dov, take_derivation_lock}));
  CONCORD_RETURN_NOT_OK(reply.status);
  auto* body = std::get_if<CheckoutReply>(&reply.body);
  if (body == nullptr) {
    return Status::Internal("checkout reply carries no DOV record");
  }
  return std::move(body->record);
}

Result<DovId> ServerService::Checkin(DopId dop, storage::DesignObject object,
                                     std::vector<DovId> predecessors,
                                     SimTime created_at) {
  CheckinRequest request;
  request.dop = dop;
  request.object = std::move(object);
  request.predecessors = std::move(predecessors);
  request.created_at = created_at;
  CONCORD_ASSIGN_OR_RETURN(ServerReply reply, ExecuteOne(std::move(request)));
  CONCORD_RETURN_NOT_OK(reply.status);
  auto* body = std::get_if<CheckinReply>(&reply.body);
  if (body == nullptr) {
    return Status::Internal("checkin reply carries no DOV id");
  }
  return body->dov;
}

Status ServerService::CommitDop(DopId dop) {
  CONCORD_ASSIGN_OR_RETURN(ServerReply reply,
                           ExecuteOne(CommitDopRequest{dop}));
  return reply.status;
}

Status ServerService::AbortDop(DopId dop) {
  CONCORD_ASSIGN_OR_RETURN(ServerReply reply, ExecuteOne(AbortDopRequest{dop}));
  return reply.status;
}

Result<DaId> ServerService::DaOfDop(DopId dop) {
  CONCORD_ASSIGN_OR_RETURN(ServerReply reply, ExecuteOne(DaOfDopRequest{dop}));
  CONCORD_RETURN_NOT_OK(reply.status);
  auto* body = std::get_if<DaOfDopReply>(&reply.body);
  if (body == nullptr) {
    return Status::Internal("DA-of-DOP reply carries no DA id");
  }
  return body->da;
}

Result<bool> ServerService::Prepare(TxnId txn) {
  CONCORD_ASSIGN_OR_RETURN(ServerReply reply, ExecuteOne(PrepareRequest{txn}));
  CONCORD_RETURN_NOT_OK(reply.status);
  auto* body = std::get_if<PrepareReply>(&reply.body);
  if (body == nullptr) {
    return Status::Internal("prepare reply carries no vote");
  }
  return body->vote;
}

// --- Server-side dispatch -------------------------------------------------

namespace {

/// Phase-1 envelope execution: [Prepare, ops...] with no Decide. The
/// transaction's state-changing operations are validated and STAGED in
/// the server-TM's 2PC ledger instead of applied — a later [Decide]
/// envelope (phase 2) commits or discards them — while reads and
/// registrations execute immediately with undo records. Replies carry
/// the prepare-time outcomes, so the coordinator has everything it
/// needs (statuses, the new DOV id) to decide.
BatchReply DispatchPhaseOne(ServerTm& server, const BatchRequest& batch,
                            TxnId txn) {
  BatchReply out;
  out.ops.reserve(batch.ops.size());
  bool failed = false;
  for (const ServerRequest& op : batch.ops) {
    ServerReply reply;
    if (std::holds_alternative<PrepareRequest>(op)) {
      // Arrival + successful staging IS the vote.
      reply.body = PrepareReply{true};
    } else if (failed && !batch.independent) {
      reply.status = Status::Aborted(
          "skipped: an earlier request in the batch failed");
    } else if (const auto* begin = std::get_if<BeginDopRequest>(&op)) {
      reply.status = server.PrepareBeginDop(txn, begin->dop, begin->da);
    } else if (const auto* checkout = std::get_if<CheckoutRequest>(&op)) {
      auto record = server.PrepareCheckout(txn, checkout->dop, checkout->dov,
                                           checkout->take_derivation_lock);
      if (record.ok()) {
        reply.body = CheckoutReply{std::move(*record)};
      } else {
        reply.status = record.status();
      }
    } else if (const auto* checkin = std::get_if<CheckinRequest>(&op)) {
      auto dov = server.PrepareCheckin(txn, checkin->dop, checkin->object,
                                       checkin->predecessors,
                                       checkin->created_at);
      if (dov.ok()) {
        reply.body = CheckinReply{*dov};
      } else {
        reply.status = dov.status();
      }
    } else if (const auto* commit = std::get_if<CommitDopRequest>(&op)) {
      reply.status =
          server.PrepareFinish(txn, commit->dop, /*commit_outcome=*/true);
    } else if (const auto* abort = std::get_if<AbortDopRequest>(&op)) {
      reply.status =
          server.PrepareFinish(txn, abort->dop, /*commit_outcome=*/false);
    } else if (const auto* da_of = std::get_if<DaOfDopRequest>(&op)) {
      auto da = server.DaOfDop(da_of->dop);
      if (da.ok()) {
        reply.body = DaOfDopReply{*da};
      } else {
        reply.status = da.status();
      }
    }
    if (!reply.status.ok()) failed = true;
    out.ops.push_back(std::move(reply));
  }
  // Durability gate on the yes-vote: the staged effects must survive a
  // kill -9 between this reply and the coordinator's Decide, so the
  // ledger entry is persisted BEFORE the vote leaves the server. A
  // server that cannot persist flips its vote to no (the coordinator
  // then aborts). Skipped when an op already failed — the coordinator
  // cannot commit such a transaction.
  if (!failed) {
    Status persisted = server.PersistPrepared(txn);
    if (!persisted.ok()) {
      for (size_t i = 0; i < batch.ops.size(); ++i) {
        if (std::holds_alternative<PrepareRequest>(batch.ops[i])) {
          out.ops[i].status = persisted;
          out.ops[i].body = PrepareReply{false};
        }
      }
    }
  }
  return out;
}

}  // namespace

BatchReply DispatchBatch(ServerTm& server, const BatchRequest& batch) {
  // Envelope shapes:
  //  - [Prepare, ops..., Decide]: the single-participant degenerate
  //    case — both 2PC legs ride one envelope, ops apply directly.
  //  - [Prepare, ops...]: phase 1 of a multi-participant transaction —
  //    state changes are staged in the ledger (DispatchPhaseOne).
  //  - [Decide]: phase 2 — resolves the staged transaction.
  //  - no control ops at all: plain direct execution (typed wrappers).
  const PrepareRequest* prepare = nullptr;
  bool has_decide = false;
  for (const ServerRequest& op : batch.ops) {
    if (const auto* p = std::get_if<PrepareRequest>(&op)) {
      if (prepare == nullptr) prepare = p;
    } else if (std::holds_alternative<DecideRequest>(op)) {
      has_decide = true;
    }
  }
  if (prepare != nullptr && !has_decide) {
    return DispatchPhaseOne(server, batch, prepare->txn);
  }

  // Pipelined independent envelope: a batch the client has marked
  // order-free — plain checkout warm-ups, or the degenerate [Prepare,
  // ops, Decide] shape an async DM produces when it opens and finishes
  // many DOPs at once — executes as partition wavefronts: every
  // executor the envelope touches works its slice of the batch at once
  // instead of the ops walking the node serially. Checkins keep the
  // serial path (each is its own WAL-committed ACID unit), so any
  // envelope carrying one falls through.
  if (batch.independent && batch.ops.size() > 1) {
    std::vector<ServerTm::IndependentOp> core;
    std::vector<size_t> core_slot(batch.ops.size(), SIZE_MAX);
    bool eligible = true;
    for (size_t i = 0; i < batch.ops.size(); ++i) {
      const ServerRequest& op = batch.ops[i];
      ServerTm::IndependentOp out;
      if (std::holds_alternative<PrepareRequest>(op) ||
          std::holds_alternative<DecideRequest>(op)) {
        continue;  // control legs answered during reply assembly
      } else if (const auto* begin = std::get_if<BeginDopRequest>(&op)) {
        out.kind = ServerTm::IndependentOp::Kind::kBeginDop;
        out.dop = begin->dop;
        out.da = begin->da;
      } else if (const auto* checkout = std::get_if<CheckoutRequest>(&op)) {
        out.kind = ServerTm::IndependentOp::Kind::kCheckout;
        out.dop = checkout->dop;
        out.dov = checkout->dov;
        out.take_derivation_lock = checkout->take_derivation_lock;
      } else if (const auto* commit = std::get_if<CommitDopRequest>(&op)) {
        out.kind = ServerTm::IndependentOp::Kind::kCommitDop;
        out.dop = commit->dop;
      } else if (const auto* abort = std::get_if<AbortDopRequest>(&op)) {
        out.kind = ServerTm::IndependentOp::Kind::kAbortDop;
        out.dop = abort->dop;
      } else if (const auto* da_of = std::get_if<DaOfDopRequest>(&op)) {
        out.kind = ServerTm::IndependentOp::Kind::kDaOfDop;
        out.dop = da_of->dop;
      } else {
        eligible = false;
        break;
      }
      core_slot[i] = core.size();
      core.push_back(out);
    }
    if (eligible && core.size() > 1) {
      std::vector<ServerTm::IndependentOpResult> results =
          server.ExecuteIndependentBatch(core);
      BatchReply out;
      out.ops.reserve(batch.ops.size());
      for (size_t i = 0; i < batch.ops.size(); ++i) {
        ServerReply reply;
        if (std::holds_alternative<PrepareRequest>(batch.ops[i])) {
          // Reachability IS the vote (degenerate envelope; see below).
          reply.body = PrepareReply{true};
        } else if (const auto* decide =
                       std::get_if<DecideRequest>(&batch.ops[i])) {
          reply.status = server.Decide(decide->txn, decide->commit);
          reply.body = AckReply{};
        } else {
          ServerTm::IndependentOpResult& result = results[core_slot[i]];
          reply.status = std::move(result.status);
          if (reply.status.ok()) {
            if (result.record.has_value()) {
              reply.body = CheckoutReply{std::move(*result.record)};
            } else if (std::holds_alternative<DaOfDopRequest>(batch.ops[i])) {
              reply.body = DaOfDopReply{result.da};
            }
          }
        }
        out.ops.push_back(std::move(reply));
      }
      return out;
    }
  }

  BatchReply out;
  out.ops.reserve(batch.ops.size());
  bool failed = false;
  for (const ServerRequest& op : batch.ops) {
    ServerReply reply;
    if (std::holds_alternative<PrepareRequest>(op)) {
      // Reachability IS the vote: in the degenerate envelope the
      // server-TM holds no prepared state (every repository write
      // inside the envelope is its own ACID unit), so an envelope that
      // arrived can always commit.
      reply.body = PrepareReply{true};
    } else if (const auto* decide = std::get_if<DecideRequest>(&op)) {
      // In the degenerate envelope the ops already applied and the
      // ledger holds nothing — Decide acknowledges trivially. As a
      // standalone phase-2 envelope it resolves the staged txn.
      reply.status = server.Decide(decide->txn, decide->commit);
      reply.body = AckReply{};
    } else if (failed && !batch.independent) {
      reply.status = Status::Aborted(
          "skipped: an earlier request in the batch failed");
    } else if (const auto* begin = std::get_if<BeginDopRequest>(&op)) {
      reply.status = server.BeginDop(begin->dop, begin->da);
    } else if (const auto* checkout = std::get_if<CheckoutRequest>(&op)) {
      auto record = server.Checkout(checkout->dop, checkout->dov,
                                    checkout->take_derivation_lock);
      if (record.ok()) {
        reply.body = CheckoutReply{std::move(*record)};
      } else {
        reply.status = record.status();
      }
    } else if (const auto* checkin = std::get_if<CheckinRequest>(&op)) {
      auto dov = server.Checkin(checkin->dop, checkin->object,
                                checkin->predecessors, checkin->created_at);
      if (dov.ok()) {
        reply.body = CheckinReply{*dov};
      } else {
        reply.status = dov.status();
      }
    } else if (const auto* commit = std::get_if<CommitDopRequest>(&op)) {
      reply.status = server.CommitDop(commit->dop);
    } else if (const auto* abort = std::get_if<AbortDopRequest>(&op)) {
      reply.status = server.AbortDop(abort->dop);
    } else if (const auto* da_of = std::get_if<DaOfDopRequest>(&op)) {
      auto da = server.DaOfDop(da_of->dop);
      if (da.ok()) {
        reply.body = DaOfDopReply{*da};
      } else {
        reply.status = da.status();
      }
    }
    if (!reply.status.ok()) failed = true;
    out.ops.push_back(std::move(reply));
  }
  return out;
}

// --- Wire codec -----------------------------------------------------------

std::string EncodeBatchRequest(const BatchRequest& batch) {
  std::string out;
  PutByte(&out, batch.independent ? 1 : 0);
  PutFixed32(&out, static_cast<uint32_t>(batch.ops.size()));
  for (const ServerRequest& op : batch.ops) EncodeRequest(&out, op);
  return out;
}

Result<BatchRequest> DecodeBatchRequest(std::string_view payload) {
  ByteReader in(payload);
  uint8_t independent = 0;
  uint32_t count = 0;
  // Every encoded request costs at least a tag byte, so a count beyond
  // the remaining bytes is provably corrupt — reject before reserving.
  if (!in.ReadByte(&independent) || !in.ReadFixed32(&count) ||
      count > kMaxBatchOps || count > in.remaining()) {
    return Status::InvalidArgument("malformed batch-request header");
  }
  BatchRequest batch;
  batch.independent = independent != 0;
  batch.ops.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ServerRequest op;
    if (!DecodeRequest(&in, &op)) {
      return Status::InvalidArgument("malformed batch-request payload");
    }
    batch.ops.push_back(std::move(op));
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument("batch request has trailing bytes");
  }
  return batch;
}

std::string EncodeBatchReply(const BatchReply& reply) {
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(reply.ops.size()));
  for (const ServerReply& op : reply.ops) EncodeReply(&out, op);
  return out;
}

Result<BatchReply> DecodeBatchReply(std::string_view payload) {
  ByteReader in(payload);
  uint32_t count = 0;
  // A reply costs at least the status byte + message length prefix.
  if (!in.ReadFixed32(&count) || count > kMaxBatchOps ||
      count > in.remaining()) {
    return Status::InvalidArgument("malformed batch-reply header");
  }
  BatchReply reply;
  reply.ops.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ServerReply op;
    if (!DecodeReply(&in, &op)) {
      return Status::InvalidArgument("malformed batch-reply payload");
    }
    reply.ops.push_back(std::move(op));
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument("batch reply has trailing bytes");
  }
  return reply;
}

}  // namespace concord::txn
