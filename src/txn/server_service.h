#ifndef CONCORD_TXN_SERVER_SERVICE_H_
#define CONCORD_TXN_SERVER_SERVICE_H_

#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/version.h"

namespace concord::txn {

/// Typed request/response protocol for the full server-TM surface.
///
/// The paper routes every workstation<->server interaction over
/// "reliable communication protocols (transactional RPC, reliable
/// messages) which insulate the cooperation protocols from network
/// failures and workstation crashes" (Sect. 5.4). This header is that
/// boundary made explicit: one request struct per critical interaction
/// of Sect. 5.2, a reply carrying a typed Status plus the payload, and
/// a BatchRequest envelope that ships several requests in ONE server
/// round trip. Everything is serializable with the common/serde codec
/// (see EncodeBatchRequest below), so the same envelope runs in-process
/// (LocalServerService) or marshalled over the simulated LAN
/// (RemoteServerStub) without the caller noticing anything but the
/// message counters.
///
/// The 2PC legs of a critical interaction ride the same envelope:
/// PrepareRequest is the server-side phase-1 vote, DecideRequest the
/// phase-2 outcome. The client-TM brackets every interaction as
/// [Prepare, ops..., Decide], which collapses the old
/// prepare-roundtrip + operation + outcome-roundtrip into a single
/// request/reply exchange while keeping both legs visible (and
/// individually accountable) in the protocol stream.

// --- Requests -------------------------------------------------------------

/// Begin-of-DOP: register `dop` for DA `da` at the server-TM.
struct BeginDopRequest {
  DopId dop;
  DaId da;
};

/// Checkout of an input version (scope test, derivation-lock
/// compatibility test, optional lock acquisition, read).
struct CheckoutRequest {
  DopId dop;
  DovId dov;
  bool take_derivation_lock = false;
};

/// Checkin of a derived version (its own ACID unit at the repository).
struct CheckinRequest {
  DopId dop;
  storage::DesignObject object;
  std::vector<DovId> predecessors;
  SimTime created_at = 0;
};

/// End-of-DOP, commit outcome: release the DOP's derivation locks.
struct CommitDopRequest {
  DopId dop;
};

/// End-of-DOP, abort outcome.
struct AbortDopRequest {
  DopId dop;
};

/// DA registered for a DOP (introspection / recovery).
struct DaOfDopRequest {
  DopId dop;
};

/// 2PC phase 1: the server's vote for transaction `txn`. The server-TM
/// always votes yes when reachable (each repository operation is its
/// own ACID unit there); the leg exists so unreachability is detected
/// before any state-changing request and so the protocol's message
/// pattern stays observable.
struct PrepareRequest {
  TxnId txn;
};

/// 2PC phase 2: the coordinator's decision.
struct DecideRequest {
  TxnId txn;
  bool commit = true;
};

/// One operation in the envelope. The alternative order is the wire
/// tag — append new request types at the end, never reorder.
using ServerRequest =
    std::variant<BeginDopRequest, CheckoutRequest, CheckinRequest,
                 CommitDopRequest, AbortDopRequest, DaOfDopRequest,
                 PrepareRequest, DecideRequest>;

/// The envelope: requests executed in order on the server, one round
/// trip for the lot. By default the ops form a dependent chain: data
/// requests after a failed data request are skipped (their reply
/// carries kAborted) — so [Checkin, CommitDop] cannot commit a DOP
/// whose checkin failed the integrity test — while the Prepare/Decide
/// control legs always execute. Setting `independent` declares the
/// ops unrelated: every one executes regardless of earlier failures
/// (the recovery warm-up uses this — one withdrawn input must not
/// keep the still-visible ones cold).
struct BatchRequest {
  std::vector<ServerRequest> ops;
  bool independent = false;
};

// --- Replies --------------------------------------------------------------

/// Reply payload for requests that only acknowledge.
struct AckReply {};

struct CheckoutReply {
  storage::DovRecord record;
};

struct CheckinReply {
  DovId dov;
};

struct DaOfDopReply {
  DaId da;
};

struct PrepareReply {
  bool vote = false;
};

/// One reply per request, same order. `status` carries the typed
/// application outcome (lock conflict, scope denial, unknown DOP, ...)
/// end to end — transport-level failures surface as the Execute()
/// result instead, so retries never mask an application error.
struct ServerReply {
  Status status;
  std::variant<AckReply, CheckoutReply, CheckinReply, DaOfDopReply,
               PrepareReply>
      body;
};

struct BatchReply {
  std::vector<ServerReply> ops;
};

// --- Service interface ----------------------------------------------------

class ServerTm;

/// The client side of the server-TM protocol. Exactly one transport
/// primitive — Execute, one envelope per server round trip — plus typed
/// single-op conveniences implemented on top of it, so every
/// implementation (in-process or remote) funnels through the same
/// serializable surface. ClientTm programs only against this interface;
/// it neither includes nor stores a ServerTm.
class ServerService {
 public:
  virtual ~ServerService() = default;

  /// Node the service's server-TM runs on (for message accounting).
  virtual NodeId server_node() const = 0;

  /// Ships the envelope, executes it on the server, returns the
  /// replies (one per request, same order). Non-OK only for transport
  /// failure: server unreachable, retries exhausted, malformed wire
  /// payload. Application outcomes ride inside the replies.
  virtual Result<BatchReply> Execute(const BatchRequest& batch) = 0;

  // Typed single-op wrappers (one-request envelopes).
  Status BeginDop(DopId dop, DaId da);
  Result<storage::DovRecord> Checkout(DopId dop, DovId dov,
                                      bool take_derivation_lock = false);
  Result<DovId> Checkin(DopId dop, storage::DesignObject object,
                        std::vector<DovId> predecessors, SimTime created_at);
  Status CommitDop(DopId dop);
  Status AbortDop(DopId dop);
  Result<DaId> DaOfDop(DopId dop);
  Result<bool> Prepare(TxnId txn);

 private:
  /// Runs a one-request envelope and returns its single reply.
  Result<ServerReply> ExecuteOne(ServerRequest op);
};

/// Executes the envelope against a server-TM: the shared server-side
/// dispatch used by LocalServerService (in-process) and the RPC
/// endpoint (RegisterServerService). Implements the skip-after-failure
/// rule documented on BatchRequest.
BatchReply DispatchBatch(ServerTm& server, const BatchRequest& batch);

// --- Wire codec (common/serde framing) ------------------------------------

std::string EncodeBatchRequest(const BatchRequest& batch);
Result<BatchRequest> DecodeBatchRequest(std::string_view payload);

std::string EncodeBatchReply(const BatchReply& reply);
Result<BatchReply> DecodeBatchReply(std::string_view payload);

/// RPC method name the server-side endpoint registers under.
inline constexpr const char* kServerServiceMethod = "txn.ServerService/Execute";

}  // namespace concord::txn

#endif  // CONCORD_TXN_SERVER_SERVICE_H_
