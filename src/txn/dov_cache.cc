#include "txn/dov_cache.h"

#include <utility>

namespace concord::txn {

void DovCache::TouchLocked(Entry& entry, DovId dov) {
  lru_.erase(entry.lru_pos);
  lru_.push_front(dov);
  entry.lru_pos = lru_.begin();
}

Result<storage::DovRecord> DovCache::Lookup(DovId dov, DaId da) {
  MutexLock lock(&mu_);
  auto it = entries_.find(dov);
  if (it == entries_.end()) {
    if (invalidation_seq_.count(dov)) ++stats_.tombstone_refusals;
    ++stats_.misses;
    return Status::NotFound(dov.ToString() + " not cached");
  }
  if (!it->second.validated_das.count(da)) {
    // Cached bytes, but no proof the server would let *this* DA see
    // them — visibility is per-DA, so this is a miss, not a hit.
    ++stats_.misses;
    return Status::NotFound(dov.ToString() + " cached but not validated for " +
                            da.ToString());
  }
  TouchLocked(it->second, dov);
  ++stats_.hits;
  return it->second.record;
}

void DovCache::InsertLocked(DovId dov, storage::DovRecord record, DaId da) {
  auto it = entries_.find(dov);
  if (it != entries_.end()) {
    it->second.record = std::move(record);
    it->second.validated_das.insert(da);
    TouchLocked(it->second, dov);
    return;
  }
  while (entries_.size() >= capacity_) {
    DovId victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(dov);
  Entry entry;
  entry.record = std::move(record);
  entry.validated_das.insert(da);
  entry.lru_pos = lru_.begin();
  entries_.emplace(dov, std::move(entry));
  ++stats_.insertions;
}

void DovCache::Insert(DovId dov, storage::DovRecord record, DaId da) {
  MutexLock lock(&mu_);
  InsertLocked(dov, std::move(record), da);
}

uint64_t DovCache::InvalidationSeq(DovId dov) const {
  MutexLock lock(&mu_);
  auto it = invalidation_seq_.find(dov);
  uint64_t seq = it == invalidation_seq_.end() ? 0 : it->second;
  return (seq_epoch_ << 32) | seq;
}

bool DovCache::InsertIfCurrent(DovId dov, storage::DovRecord record, DaId da,
                               uint64_t expected_seq) {
  MutexLock lock(&mu_);
  auto seq_it = invalidation_seq_.find(dov);
  uint64_t seq = (seq_epoch_ << 32) |
                 (seq_it == invalidation_seq_.end() ? 0 : seq_it->second);
  if (seq != expected_seq) {
    // An invalidation arrived while the server round-trip was in
    // flight: the reply predates the revocation, so caching it would
    // serve a withdrawn version. Refuse; the entry stays dropped.
    ++stats_.stale_inserts_refused;
    return false;
  }
  InsertLocked(dov, std::move(record), da);
  return true;
}

bool DovCache::InsertIfNeverInvalidated(DovId dov, storage::DovRecord record,
                                        DaId da) {
  MutexLock lock(&mu_);
  if (invalidation_seq_.count(dov) > 0) {
    ++stats_.stale_inserts_refused;
    return false;
  }
  InsertLocked(dov, std::move(record), da);
  return true;
}

bool DovCache::Invalidate(DovId dov) {
  MutexLock lock(&mu_);
  if (invalidation_seq_.size() >= kMaxTrackedInvalidations &&
      !invalidation_seq_.count(dov)) {
    // Tombstone cap reached: reset the map and bump the epoch so every
    // outstanding pre-reset sample refuses its insert (conservative)
    // while memory stays bounded.
    invalidation_seq_.clear();
    ++seq_epoch_;
  }
  ++invalidation_seq_[dov];
  ++stats_.invalidations;
  auto it = entries_.find(dov);
  if (it == entries_.end()) return false;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  return true;
}

void DovCache::Clear() {
  MutexLock lock(&mu_);
  entries_.clear();
  lru_.clear();
  invalidation_seq_.clear();
  // Outstanding samples from before the wipe must not alias to "never
  // invalidated" afterwards.
  ++seq_epoch_;
}

bool DovCache::Contains(DovId dov) const {
  MutexLock lock(&mu_);
  return entries_.count(dov) > 0;
}

bool DovCache::IsTombstoned(DovId dov) const {
  MutexLock lock(&mu_);
  return invalidation_seq_.count(dov) > 0 && entries_.count(dov) == 0;
}

size_t DovCache::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

}  // namespace concord::txn
