#ifndef CONCORD_TXN_SERVER_LOCK_TABLE_H_
#define CONCORD_TXN_SERVER_LOCK_TABLE_H_

#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "txn/lock_manager.h"

namespace concord::txn {

/// The server-TM's lock tables, sliced across the node's executor
/// partitions: slice p owns the derivation/scope/usage state of every
/// DOV with DovPartitionOf(dov) == p, the same ownership map the
/// repository's sub-shards and the TM's partition choreography use.
///
/// Two kinds of callers:
///  - The TM hot path runs ON the owning executor and reaches its
///    slice directly (Slice(p)); with K > 1 the slice mutex is
///    uncontended there — partitions never touch each other's slices.
///  - The control plane (cooperation manager, recovery rebuild, tests)
///    calls the LockManager-shaped surface below from arbitrary
///    threads; each call routes to the owning slice, whose internal
///    mutex makes the slice safe against its executor. Control traffic
///    is rare, so this cross-thread access costs the hot path nothing.
///
/// The surface mirrors LockManager's names and signatures exactly, so
/// LockRouter and every existing call site compile unchanged; plane-
/// wide operations (ReleaseAll, OwnedBy, stats) fan out over the
/// slices.
class ServerLockTable {
 public:
  explicit ServerLockTable(size_t partitions) {
    if (partitions < 1) partitions = 1;
    owned_.reserve(partitions);
    slices_.reserve(partitions);
    for (size_t p = 0; p < partitions; ++p) {
      owned_.push_back(std::make_unique<LockManager>());
      slices_.push_back(owned_.back().get());
    }
  }
  /// Non-owning single-slice view over an externally-owned lock
  /// manager — the adapter the cooperation manager's classic
  /// (Repository*, LockManager*) constructor wraps its argument in.
  explicit ServerLockTable(LockManager* external) : slices_{external} {}
  ServerLockTable(const ServerLockTable&) = delete;
  ServerLockTable& operator=(const ServerLockTable&) = delete;

  size_t partition_count() const { return slices_.size(); }
  /// Direct slice access for code already running on partition p's
  /// executor (or introspecting a quiescent table).
  LockManager& Slice(size_t p) { return *slices_[p]; }
  const LockManager& Slice(size_t p) const { return *slices_[p]; }
  /// The slice owning `dov`.
  LockManager& Of(DovId dov) { return *slices_[DovPartitionOf(dov, slices_.size())]; }
  const LockManager& Of(DovId dov) const {
    return *slices_[DovPartitionOf(dov, slices_.size())];
  }

  // --- Short locks (accounting) -------------------------------------

  void AcquireShort(DovId dov) { Of(dov).AcquireShort(dov); }
  void ReleaseShort(DovId dov) { Of(dov).ReleaseShort(dov); }

  // --- Derivation locks ----------------------------------------------

  Status AcquireDerivation(DovId dov, DaId da) {
    return Of(dov).AcquireDerivation(dov, da);
  }
  Status ReleaseDerivation(DovId dov, DaId da) {
    return Of(dov).ReleaseDerivation(dov, da);
  }
  int ReleaseAllDerivation(DaId da) {
    int released = 0;
    for (auto& slice : slices_) released += slice->ReleaseAllDerivation(da);
    return released;
  }
  DaId DerivationHolder(DovId dov) const { return Of(dov).DerivationHolder(dov); }

  // --- Scope-locks -----------------------------------------------------

  void SetScopeOwner(DovId dov, DaId da) { Of(dov).SetScopeOwner(dov, da); }
  DaId ScopeOwner(DovId dov) const { return Of(dov).ScopeOwner(dov); }
  void GrantUsageRead(DovId dov, DaId da) { Of(dov).GrantUsageRead(dov, da); }
  void RevokeUsageRead(DovId dov, DaId da) { Of(dov).RevokeUsageRead(dov, da); }
  bool CanRead(DaId da, DovId dov) { return Of(dov).CanRead(da, dov); }

  void InheritScopeLocks(DaId super, DaId sub,
                         const std::vector<DovId>& final_dovs) {
    // Inheritance is per-DOV: hand each final DOV to its owning slice.
    for (DovId dov : final_dovs) {
      Of(dov).InheritScopeLocks(super, sub, {dov});
    }
  }

  void ReleaseAll() {
    for (auto& slice : slices_) slice->ReleaseAll();
  }

  std::vector<DovId> OwnedBy(DaId da) const {
    std::vector<DovId> owned;
    for (const auto& slice : slices_) {
      std::vector<DovId> part = slice->OwnedBy(da);
      owned.insert(owned.end(), part.begin(), part.end());
    }
    return owned;
  }

  /// Aggregated snapshot across the slices.
  LockStats stats() const {
    LockStats total;
    for (const auto& slice : slices_) {
      LockStats s = slice->stats();
      total.short_locks_taken += s.short_locks_taken;
      total.derivation_locks_taken += s.derivation_locks_taken;
      total.derivation_conflicts += s.derivation_conflicts;
      total.scope_grants += s.scope_grants;
      total.scope_denials += s.scope_denials;
      total.inheritances += s.inheritances;
    }
    return total;
  }

  void ResetStats() {
    for (auto& slice : slices_) slice->ResetStats();
  }

 private:
  /// Slice storage for the owning constructor; empty in adapter mode.
  std::vector<std::unique_ptr<LockManager>> owned_;
  /// The routing view (raw, valid either way).
  std::vector<LockManager*> slices_;
};

}  // namespace concord::txn

#endif  // CONCORD_TXN_SERVER_LOCK_TABLE_H_
