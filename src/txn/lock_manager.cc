#include "txn/lock_manager.h"

#include <cassert>

#include "common/logging.h"

namespace concord::txn {

void LockManager::AcquireShort(DovId dov) {
  (void)dov;
  MutexLock lock(&mu_);
  ++short_depth_;
  ++stats_.short_locks_taken;
}

void LockManager::ReleaseShort(DovId dov) {
  (void)dov;
  MutexLock lock(&mu_);
  assert(short_depth_ > 0);
  --short_depth_;
}

Status LockManager::AcquireDerivation(DovId dov, DaId da) {
  MutexLock lock(&mu_);
  auto it = derivation_locks_.find(dov);
  if (it != derivation_locks_.end() && it->second != da) {
    ++stats_.derivation_conflicts;
    return Status::LockConflict("derivation lock on " + dov.ToString() +
                                " held by " + it->second.ToString());
  }
  derivation_locks_[dov] = da;
  ++stats_.derivation_locks_taken;
  return Status::OK();
}

Status LockManager::ReleaseDerivation(DovId dov, DaId da) {
  MutexLock lock(&mu_);
  auto it = derivation_locks_.find(dov);
  if (it == derivation_locks_.end() || it->second != da) {
    return Status::FailedPrecondition(da.ToString() +
                                      " does not hold the derivation lock on " +
                                      dov.ToString());
  }
  derivation_locks_.erase(it);
  return Status::OK();
}

int LockManager::ReleaseAllDerivation(DaId da) {
  MutexLock lock(&mu_);
  int released = 0;
  for (auto it = derivation_locks_.begin(); it != derivation_locks_.end();) {
    if (it->second == da) {
      it = derivation_locks_.erase(it);
      ++released;
    } else {
      ++it;
    }
  }
  return released;
}

DaId LockManager::DerivationHolder(DovId dov) const {
  MutexLock lock(&mu_);
  auto it = derivation_locks_.find(dov);
  return it == derivation_locks_.end() ? DaId() : it->second;
}

void LockManager::SetScopeOwner(DovId dov, DaId da) {
  MutexLock lock(&mu_);
  scope_owner_[dov] = da;
}

DaId LockManager::ScopeOwner(DovId dov) const {
  MutexLock lock(&mu_);
  auto it = scope_owner_.find(dov);
  return it == scope_owner_.end() ? DaId() : it->second;
}

void LockManager::GrantUsageRead(DovId dov, DaId da) {
  MutexLock lock(&mu_);
  usage_readers_[dov].insert(da);
}

void LockManager::RevokeUsageRead(DovId dov, DaId da) {
  MutexLock lock(&mu_);
  auto it = usage_readers_.find(dov);
  if (it != usage_readers_.end()) it->second.erase(da);
}

bool LockManager::CanRead(DaId da, DovId dov) {
  MutexLock lock(&mu_);
  auto owner_it = scope_owner_.find(dov);
  if (owner_it != scope_owner_.end() && owner_it->second == da) {
    ++stats_.scope_grants;
    return true;
  }
  auto readers_it = usage_readers_.find(dov);
  if (readers_it != usage_readers_.end() && readers_it->second.count(da)) {
    ++stats_.scope_grants;
    return true;
  }
  ++stats_.scope_denials;
  return false;
}

void LockManager::InheritScopeLocks(DaId super, DaId sub,
                                    const std::vector<DovId>& final_dovs) {
  MutexLock lock(&mu_);
  for (DovId dov : final_dovs) {
    auto it = scope_owner_.find(dov);
    if (it != scope_owner_.end() && it->second == sub) {
      it->second = super;
      ++stats_.inheritances;
    }
  }
  CONCORD_DEBUG("locks", super.ToString() << " inherited "
                                          << final_dovs.size()
                                          << " scope-locks from "
                                          << sub.ToString());
}

void LockManager::ReleaseAll() {
  MutexLock lock(&mu_);
  derivation_locks_.clear();
  scope_owner_.clear();
  usage_readers_.clear();
}

std::vector<DovId> LockManager::OwnedBy(DaId da) const {
  MutexLock lock(&mu_);
  std::vector<DovId> owned;
  for (const auto& [dov, owner] : scope_owner_) {
    if (owner == da) owned.push_back(dov);
  }
  return owned;
}

LockStats LockManager::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void LockManager::ResetStats() {
  MutexLock lock(&mu_);
  stats_ = LockStats{};
}

}  // namespace concord::txn
