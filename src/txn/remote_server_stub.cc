#include "txn/remote_server_stub.h"

#include <utility>

namespace concord::txn {

Result<BatchReply> RemoteServerStub::Execute(const BatchRequest& batch) {
  CONCORD_ASSIGN_OR_RETURN(
      std::string wire,
      rpc_->Call(client_, server_, kServerServiceMethod,
                 EncodeBatchRequest(batch)));
  CONCORD_ASSIGN_OR_RETURN(BatchReply reply, DecodeBatchReply(wire));
  if (reply.ops.size() != batch.ops.size()) {
    return Status::Internal("server-service reply arity mismatch");
  }
  return reply;
}

void RegisterServerService(ServerTm* server, rpc::TransactionalRpc* rpc) {
  rpc->RegisterHandler(
      server->node(), kServerServiceMethod,
      [server](const std::string& request) -> Result<std::string> {
        CONCORD_ASSIGN_OR_RETURN(BatchRequest batch,
                                 DecodeBatchRequest(request));
        return EncodeBatchReply(DispatchBatch(*server, batch));
      });
}

}  // namespace concord::txn
