#ifndef CONCORD_TXN_SERVER_TM_H_
#define CONCORD_TXN_SERVER_TM_H_

#include <atomic>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "rpc/invalidation.h"
#include "rpc/network.h"
#include "rpc/two_phase_commit.h"
#include "storage/repository.h"
#include "txn/lock_manager.h"
#include "txn/partition.h"
#include "txn/placement.h"
#include "txn/scope_authority.h"
#include "txn/server_lock_table.h"

namespace concord::txn {

/// Aggregated snapshot of the checkout/checkin traffic counters.
/// Increments land in the owning partition's padded atomic slice
/// (one cache line per partition, never shared); stats() sums the
/// slices on read. Read at quiescence for exact values.
struct ServerTmStats {
  uint64_t checkouts = 0;
  uint64_t checkouts_denied_scope = 0;
  uint64_t checkouts_denied_lock = 0;
  uint64_t checkins = 0;
  uint64_t checkin_failures = 0;
  uint64_t dops_begun = 0;
  uint64_t dops_committed = 0;
  uint64_t dops_aborted = 0;
  /// Requests naming a DOP whose registration a server crash wiped.
  uint64_t unknown_dop_requests = 0;
  /// Checkins rejected because this node does not own the DA (the
  /// workstation routed via a stale placement cache).
  uint64_t wrong_shard_requests = 0;
  /// Cross-shard 2PC ledger activity: staged transactions that reached
  /// a phase-2 decision, and how each was resolved.
  uint64_t txns_prepared = 0;
  uint64_t txns_decided_commit = 0;
  uint64_t txns_decided_abort = 0;
  /// Operations whose choreography spanned more than one partition
  /// (e.g. a lock-taking checkout whose DOP and DOV live on different
  /// executors) — the intra-node messaging cost of partitioning.
  uint64_t cross_partition_ops = 0;
  /// Independent-envelope checkout wavefronts executed by the
  /// pipelined dispatch path, and the ops they carried.
  uint64_t pipelined_batches = 0;
  uint64_t pipelined_ops = 0;
};

/// Server half of the transaction manager (Sect. 5.1/5.2): "handles
/// checkout/checkin and controls concurrent access to DOVs, thus
/// residing on the server". It owns the lock tables and fronts the
/// repository; the client-TM talks to it for every critical
/// interaction.
///
/// ## Partitioned execution model
///
/// The node's state is sliced across K single-threaded executor
/// partitions (txn/partition.h):
///  - DOP registrations, per-DOP derivation-lock lists and the
///    lost-DOP set live on DopPartitionOf(dop);
///  - lock-table slices (ServerLockTable) and the repository's
///    sub-shards live on DovPartitionOf(dov);
///  - the prepared-2PC ledger lives on TxnPartitionOf(txn).
/// A public operation is a choreography run by the DISPATCHING thread
/// (the RPC handler): it submits each state-touching step to the
/// owning partition and waits on the completion future; steps never
/// hop partitions themselves, so executors cannot deadlock on each
/// other. Scope-authority callouts and invalidation publishes also
/// stay on the dispatcher — the cooperation manager's recursive mutex
/// may be held by that very thread (event delivery running a tool),
/// and an executor-side callout would deadlock against it.
///
/// K == 1 (the default) spawns no threads and executes every step
/// inline on the caller — bit-identical to the pre-partitioning
/// behaviour. Each partition's maps still sit behind a slice mutex:
/// with K == 1 concurrent designers share partition 0, and with K > 1
/// the mutex is uncontended (only the owning executor takes it).
class ServerTm {
 public:
  /// `invalidations` (optional) is the push channel to the workstation
  /// DOV caches: granting a derivation lock publishes on it, so remote
  /// cached copies cannot short-circuit the lock-compatibility test a
  /// server checkout would now fail. `partitions` is the number of
  /// executor partitions (1 = inline single-executor mode); the
  /// repository is re-sharded to match (must be traffic-free).
  /// `pin_executor_cores` pins each executor thread to one CPU core
  /// (Linux; silent no-op elsewhere).
  ServerTm(storage::Repository* repository, rpc::Network* network,
           NodeId server_node, ScopeAuthority* scope_authority,
           rpc::InvalidationBus* invalidations = nullptr, int partitions = 1,
           bool pin_executor_cores = false);
  ~ServerTm();
  ServerTm(const ServerTm&) = delete;
  ServerTm& operator=(const ServerTm&) = delete;

  NodeId node() const { return node_; }
  ServerLockTable& locks() { return locks_; }
  storage::Repository& repository() { return *repository_; }
  size_t partition_count() const { return engine_.count(); }

  /// Joins this server-TM to a sharded plane: `placement` is the
  /// plane's placement authority and this node must reject checkins
  /// for DAs it does not own (kWrongShard — how stale workstation
  /// placement caches are detected). Call before traffic; a null
  /// placement (the default) keeps the single-server behaviour.
  void JoinPlane(const PlacementMap* placement) { placement_ = placement; }

  /// Registers a new DOP for DA `da`. The server remembers the
  /// association for scope checks and lock release.
  Status BeginDop(DopId dop, DaId da);

  /// Checkout (Sect. 5.2): scope test, derivation-lock compatibility
  /// test, optional derivation-lock acquisition, then the read. Short
  /// locks bracket the operation.
  Result<storage::DovRecord> Checkout(DopId dop, DovId dov,
                                      bool take_derivation_lock);

  /// One checkout of a pipelined independent envelope.
  struct CheckoutOp {
    DopId dop;
    DovId dov;
    bool take_derivation_lock = false;
  };
  /// Executes a batch of INDEPENDENT checkouts as partition wavefronts:
  /// all DOP lookups fan out at once, scope checks run on the
  /// dispatcher, then each partition receives ONE task carrying all of
  /// its DOVs — so an envelope touching K partitions keeps K executors
  /// busy instead of walking the ops serially. Results are positional.
  std::vector<Result<storage::DovRecord>> CheckoutBatch(
      const std::vector<CheckoutOp>& ops);

  /// One operation of a pipelined MIXED-OP independent envelope — the
  /// order-free shapes a client-TM batches when a DM opens many DOPs
  /// at once (Begin-of-DOPs with their input checkouts, End-of-DOPs,
  /// registration reads). Checkins stay on the serial path: each is
  /// its own WAL-committed ACID unit.
  struct IndependentOp {
    enum class Kind { kBeginDop, kCheckout, kCommitDop, kAbortDop, kDaOfDop };
    Kind kind = Kind::kCheckout;
    DopId dop;
    /// kBeginDop: the registering DA.
    DaId da;
    /// kCheckout: the requested version.
    DovId dov;
    bool take_derivation_lock = false;
  };
  /// Positional outcome of one IndependentOp.
  struct IndependentOpResult {
    Status status;
    /// kCheckout, on success.
    std::optional<storage::DovRecord> record;
    /// kDaOfDop, on success.
    DaId da;
  };
  /// Executes a mixed independent envelope as partition wavefronts:
  /// Begin-of-DOP registrations fan out first (an envelope may open a
  /// DOP and check out into it), then the checkout/DA-of-DOP
  /// registration lookups, then — after the dispatcher's scope tests —
  /// one task per DOV partition carrying all of its checkout steps,
  /// and finally the End-of-DOP extractions with their lock-release
  /// fan-out. Every wavefront keeps each executor the envelope touches
  /// busy with ONE task carrying all of its ops; within a partition
  /// ops apply in envelope order. Results are positional.
  std::vector<IndependentOpResult> ExecuteIndependentBatch(
      const std::vector<IndependentOp>& ops);

  /// Checkin: integrity check via a repository transaction, extension
  /// of the DA's derivation graph, scope-lock to the owning DA. On
  /// integrity failure the caller (client-TM/DM) learns the "checkin
  /// failure" situation.
  Result<DovId> Checkin(DopId dop, storage::DesignObject object,
                        const std::vector<DovId>& predecessors,
                        SimTime created_at);

  /// End-of-DOP, commit outcome: release the DOP's derivation locks.
  Status CommitDop(DopId dop);
  /// End-of-DOP, abort outcome: release locks; versions already checked
  /// in by this DOP stay (each checkin was its own ACID unit — the DOP
  /// abort concerns the in-flight work, handled client-side).
  Status AbortDop(DopId dop);

  Result<DaId> DaOfDop(DopId dop) const;

  // --- Cross-shard 2PC (prepared-transaction ledger) -----------------
  //
  // A critical interaction whose operations span several server nodes
  // cannot ride one degenerate [Prepare, ops, Decide] envelope: each
  // participant must hold its effects until the coordinator has heard
  // every vote. DispatchBatch routes a phase-1 envelope ([Prepare,
  // ops...] with no Decide) through these methods — reads and
  // registrations execute immediately (with undo records), while
  // state-changing operations are validated, answered, and *staged* —
  // and a later [Decide] envelope applies or discards the stage. The
  // ledger is volatile server memory (sliced per txn partition): a
  // crash wipes it, which is the presumed-abort outcome.

  /// Phase-1 Begin-of-DOP (participant enlistment): executes
  /// immediately and survives either decision — registrations are
  /// enlistment, not data, and the client records the participant on
  /// this reply, so both sides must agree whatever the outcome.
  Status PrepareBeginDop(TxnId txn, DopId dop, DaId da);
  /// Phase-1 checkout: executes immediately (reads are safe to serve
  /// before the decision); a derivation lock acquired here is released
  /// again by Decide(abort).
  Result<storage::DovRecord> PrepareCheckout(TxnId txn, DopId dop, DovId dov,
                                             bool take_derivation_lock);
  /// Phase-1 checkin: validates (registration, placement, schema
  /// integrity), allocates the DOV id, and stages the record. Nothing
  /// reaches the repository until Decide(commit).
  Result<DovId> PrepareCheckin(TxnId txn, DopId dop,
                               storage::DesignObject object,
                               const std::vector<DovId>& predecessors,
                               SimTime created_at);
  /// Phase-1 End-of-DOP: validates the registration and stages the
  /// lock release / deregistration for Decide(commit).
  Status PrepareFinish(TxnId txn, DopId dop, bool commit_outcome);
  /// Phase-2: applies (commit) or discards + undoes (abort) the staged
  /// transaction. Idempotent: a repeated decision for an already-
  /// resolved or never-prepared transaction answers OK — with a
  /// volatile ledger, "nothing staged here" and "already resolved" are
  /// indistinguishable and both are safe to acknowledge. EXCEPT while a
  /// crash wipe is pending (between Crash() and the end of Recover()):
  /// there "nothing staged" may mean the wipe beat the lookup to a
  /// persisted stage that recovery will re-stage, so an OK would
  /// acknowledge a commit whose effects never applied — the decision
  /// answers kUnavailable instead and the coordinator must retry
  /// against the recovered node.
  Status Decide(TxnId txn, bool commit);
  /// Test introspection: true while `txn` has staged/undoable state.
  bool HasPrepared(TxnId txn) const;
  /// Control-plane introspection: every transaction with staged
  /// phase-1 state across all partitions, without stopping traffic
  /// (slice-mutex reads, like HasPrepared). The scale harness uses it
  /// to measure orphaned-2PC residue at checkpoints and end-of-run.
  std::vector<TxnId> PreparedTxns() const;

  /// Makes `txn`'s staged state durable: the entry's checkins and
  /// End-of-DOP outcomes are written to the repository's meta table
  /// (key "2pc/<txn>") in one short repository transaction.
  /// DispatchBatch calls this at the end of a phase-1 envelope BEFORE
  /// the yes-vote returns — a server that cannot persist its stage
  /// must not vote yes, or a kill -9 between the vote and the Decide
  /// would lose a checkin the coordinator goes on to commit. No-op
  /// when nothing durable is staged (lock-only entries stay volatile,
  /// which also keeps direct Prepare* callers — and their
  /// presumed-abort crash semantics — unchanged).
  Status PersistPrepared(TxnId txn);

  /// Re-stages persisted phase-1 entries from the repository's meta
  /// table after a restart (Recover() runs it; a fresh concordd
  /// process calls it after constructing over a recovered repository).
  /// Staged checkins already present in the committed store (the crash
  /// hit between apply and ledger erase) are skipped; staged
  /// End-of-DOP outcomes are dropped — the registrations and
  /// derivation locks they would release were volatile and died with
  /// the previous incarnation. Every staged id is reserved against the
  /// DOV id generator so new checkins cannot collide with a stage that
  /// applies later. Returns the number of transactions re-staged.
  size_t RestagePreparedFromStable();

  /// Simulated server crash. One wipe task is posted to EVERY
  /// partition and all are awaited: each mailbox drains its in-flight
  /// work first, so by the time Crash() returns no executor is
  /// touching pre-crash state (the deterministic drain), and the wiped
  /// registrations are remembered — a client naming one after
  /// Recover() gets the typed kUnknownDop status. The repository
  /// crashes alongside, then the node leaves the network.
  void Crash();
  Status Recover();

  /// Aggregated across all partitions.
  ServerTmStats stats() const;
  /// One partition's counter slice (per-partition throughput view).
  ServerTmStats partition_stats(size_t p) const;
  /// One partition's executor mailbox counters (contention view).
  PartitionQueueSnapshot partition_queue_stats(size_t p) const {
    return engine_.queue_stats(p);
  }

 private:
  /// Per-partition padded counter slice: only the owning partition (or
  /// the dispatcher, for rare denial/routing errors) bumps it, so hot
  /// counters stop bouncing a shared cache line between partitions.
  struct alignas(64) PartitionCounters {
    std::atomic<uint64_t> checkouts{0};
    std::atomic<uint64_t> checkouts_denied_scope{0};
    std::atomic<uint64_t> checkouts_denied_lock{0};
    std::atomic<uint64_t> checkins{0};
    std::atomic<uint64_t> checkin_failures{0};
    std::atomic<uint64_t> dops_begun{0};
    std::atomic<uint64_t> dops_committed{0};
    std::atomic<uint64_t> dops_aborted{0};
    std::atomic<uint64_t> unknown_dop_requests{0};
    std::atomic<uint64_t> wrong_shard_requests{0};
    std::atomic<uint64_t> txns_prepared{0};
    std::atomic<uint64_t> txns_decided_commit{0};
    std::atomic<uint64_t> txns_decided_abort{0};
    std::atomic<uint64_t> cross_partition_ops{0};
    std::atomic<uint64_t> pipelined_batches{0};
    std::atomic<uint64_t> pipelined_ops{0};
  };

  /// One staged (phase-1-executed, undecided) transaction.
  struct PreparedTxn {
    /// Checkin records to publish at Decide(commit), in arrival order.
    std::vector<storage::DovRecord> staged_checkins;
    /// End-of-DOP outcomes to apply at Decide(commit).
    struct StagedFinish {
      DopId dop;
      bool commit_outcome = true;
    };
    std::vector<StagedFinish> staged_finishes;
    /// Derivation locks acquired by this transaction's phase-1
    /// checkouts — released again at Decide(abort).
    std::vector<std::pair<DovId, DaId>> acquired_locks;
    /// True once PersistPrepared wrote the entry to the meta table —
    /// Decide then erases the durable copy after resolving.
    bool persisted = false;
  };

  /// One partition's exclusive state slice. The slice mutex is a leaf
  /// (never held across repository or lock-manager calls); with K > 1
  /// only the owning executor takes it, with K == 1 it is the old
  /// single mu_.
  struct Partition {
    mutable Mutex mu;
    std::unordered_map<DopId, DaId> dop_da GUARDED_BY(mu);
    /// Derivation locks taken per DOP (released at End-of-DOP).
    std::unordered_map<DopId, std::vector<DovId>> dop_derivation_locks
        GUARDED_BY(mu);
    /// Registrations wiped by Crash() and not re-registered since.
    std::unordered_set<DopId> lost_dops GUARDED_BY(mu);
    /// Cross-shard 2PC ledger slice (volatile: crash = presumed abort).
    std::unordered_map<TxnId, PreparedTxn> prepared GUARDED_BY(mu);
    mutable PartitionCounters counters;
  };

  /// Dispatcher<->executor handoff of one per-DOV checkout step.
  struct CheckoutStep {
    Status status;
    std::optional<storage::DovRecord> record;
    bool lock_acquired = false;
  };

  size_t DopPart(DopId dop) const { return DopPartitionOf(dop, engine_.count()); }
  size_t DovPart(DovId dov) const { return DovPartitionOf(dov, engine_.count()); }
  size_t TxnPart(TxnId txn) const { return TxnPartitionOf(txn, engine_.count()); }

  /// DA of `dop`, or the typed failure: kUnknownDop if a crash wiped
  /// the registration, kNotFound if it never existed. Routes to the
  /// owning partition.
  Result<DaId> LookupDop(DopId dop) const;
  /// The partition-resident body of LookupDop (runs on the owner).
  Result<DaId> LookupDopIn(const Partition& part, DopId dop) const;

  /// kWrongShard when a sharded plane's placement says `da` is homed
  /// elsewhere; OK otherwise. Runs on the dispatcher (the placement
  /// map is internally synchronized); the counter lands in `part`.
  Status CheckOwnsDa(const Partition& part, DaId da) const;

  /// The executor-resident tail of a checkout: derivation-lock
  /// compatibility test, optional acquisition, repository read.
  /// Expects the short lock already taken by the dispatcher prologue.
  CheckoutStep CheckoutStepIn(size_t pv, DovId dov, DaId da,
                              bool take_derivation_lock);
  /// Dispatcher-side epilogue of a lock-taking checkout: records the
  /// held lock in the DOP's partition (for release at End-of-DOP).
  void RecordHeldLock(DopId dop, DovId dov);

  /// Publishes the derivation-lock invalidation push for `dov`
  /// acquired by `da` (see the long rationale in Checkout). Dispatcher
  /// thread only — the bus fans out over the network.
  void PublishDerivationLock(DovId dov, DaId da);

  /// Commits a fully-built, already-validated record to the repository
  /// and hands the new DOV to the creating DA's scope — the shared
  /// tail of Checkout-path Checkin and Decide-applied staged checkins.
  /// One task on the new DOV's partition.
  Status ApplyCheckin(storage::DovRecord record);

  /// The partition-resident body of BeginDop (runs on the owner).
  Status BeginDopIn(Partition& part, DopId dop, DaId da);

  /// The partition-resident head of End-of-DOP: deregisters `dop` and
  /// extracts its DA and held derivation locks for the dispatcher's
  /// release fan-out.
  Status FinishExtractIn(Partition& part, DopId dop, DaId* da,
                         std::vector<DovId>* held);

  /// Shared End-of-DOP path: deregisters `dop` on its partition, then
  /// fans the derivation-lock releases out to the owning partitions.
  Status FinishDop(DopId dop, bool committed);

  /// Releases `locks` grouped per owning partition, one task each, and
  /// waits for all of them.
  void ReleaseDerivationLocks(const std::vector<std::pair<DovId, DaId>>& locks);

  /// Serde for the durable 2PC ledger entry (meta-table value): the
  /// staged checkins and finishes — the parts whose loss would break
  /// atomicity. acquired_locks stay volatile (locks die with the
  /// process anyway).
  static std::string EncodePreparedStage(const PreparedTxn& entry);
  static Result<PreparedTxn> DecodePreparedStage(std::string_view payload);
  /// Deletes `txn`'s meta-table entry (after Decide resolved it).
  void ErasePersistedPrepared(TxnId txn);

  storage::Repository* repository_;
  rpc::Network* network_;
  NodeId node_;
  ScopeAuthority* scope_authority_;
  rpc::InvalidationBus* invalidations_;
  const PlacementMap* placement_ = nullptr;

  /// Destruction order matters: the destructor stops the engine FIRST
  /// (joining every executor), so no task can touch parts_ or locks_
  /// while they die.
  mutable PartitionEngine engine_;
  std::vector<std::unique_ptr<Partition>> parts_;
  ServerLockTable locks_;
  /// True from the start of Crash() until Recover() has re-staged the
  /// persisted 2PC ledger. Decide's nothing-staged path consults it:
  /// with a wipe pending, absence from the volatile ledger proves
  /// nothing (FIFO mailboxes order an in-flight decision's lookup
  /// after the wipe task), so acknowledging would be unsound.
  std::atomic<bool> crash_wipe_pending_{false};
};

}  // namespace concord::txn

#endif  // CONCORD_TXN_SERVER_TM_H_
