#ifndef CONCORD_TXN_SERVER_TM_H_
#define CONCORD_TXN_SERVER_TM_H_

#include <atomic>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "rpc/invalidation.h"
#include "rpc/network.h"
#include "rpc/two_phase_commit.h"
#include "storage/repository.h"
#include "txn/lock_manager.h"
#include "txn/placement.h"
#include "txn/scope_authority.h"

namespace concord::txn {

/// Counters for the checkout/checkin traffic. Fields are atomic
/// (RepositoryStats-style) so concurrent designers can bump them
/// without serializing on the DOP-table mutex; read them at quiescence
/// (or accept slightly stale values).
struct ServerTmStats {
  std::atomic<uint64_t> checkouts{0};
  std::atomic<uint64_t> checkouts_denied_scope{0};
  std::atomic<uint64_t> checkouts_denied_lock{0};
  std::atomic<uint64_t> checkins{0};
  std::atomic<uint64_t> checkin_failures{0};
  std::atomic<uint64_t> dops_begun{0};
  std::atomic<uint64_t> dops_committed{0};
  std::atomic<uint64_t> dops_aborted{0};
  /// Requests naming a DOP whose registration a server crash wiped.
  std::atomic<uint64_t> unknown_dop_requests{0};
  /// Checkins rejected because this node does not own the DA (the
  /// workstation routed via a stale placement cache).
  std::atomic<uint64_t> wrong_shard_requests{0};
  /// Cross-shard 2PC ledger activity: staged transactions that reached
  /// a phase-2 decision, and how each was resolved.
  std::atomic<uint64_t> txns_prepared{0};
  std::atomic<uint64_t> txns_decided_commit{0};
  std::atomic<uint64_t> txns_decided_abort{0};
};

/// Server half of the transaction manager (Sect. 5.1/5.2): "handles
/// checkout/checkin and controls concurrent access to DOVs, thus
/// residing on the server". It owns the lock tables and fronts the
/// repository; the client-TM talks to it for every critical
/// interaction.
///
/// Thread-safe: one ServerTm serves every workstation, so concurrent
/// designer threads hit it at once. The DOP registration table and the
/// per-DOP derivation-lock lists sit behind mu_ (a leaf mutex held only
/// for the point lookups/updates — never across the repository read or
/// the lock-manager calls, which synchronize themselves), and the stats
/// are atomics.
class ServerTm {
 public:
  /// `invalidations` (optional) is the push channel to the workstation
  /// DOV caches: granting a derivation lock publishes on it, so remote
  /// cached copies cannot short-circuit the lock-compatibility test a
  /// server checkout would now fail.
  ServerTm(storage::Repository* repository, rpc::Network* network,
           NodeId server_node, ScopeAuthority* scope_authority,
           rpc::InvalidationBus* invalidations = nullptr);
  ServerTm(const ServerTm&) = delete;
  ServerTm& operator=(const ServerTm&) = delete;

  NodeId node() const { return node_; }
  LockManager& locks() { return locks_; }
  storage::Repository& repository() { return *repository_; }

  /// Joins this server-TM to a sharded plane: `placement` is the
  /// plane's placement authority and this node must reject checkins
  /// for DAs it does not own (kWrongShard — how stale workstation
  /// placement caches are detected). Call before traffic; a null
  /// placement (the default) keeps the single-server behaviour.
  void JoinPlane(const PlacementMap* placement) { placement_ = placement; }

  /// Registers a new DOP for DA `da`. The server remembers the
  /// association for scope checks and lock release.
  Status BeginDop(DopId dop, DaId da);

  /// Checkout (Sect. 5.2): scope test, derivation-lock compatibility
  /// test, optional derivation-lock acquisition, then the read. Short
  /// locks bracket the operation.
  Result<storage::DovRecord> Checkout(DopId dop, DovId dov,
                                      bool take_derivation_lock);

  /// Checkin: integrity check via a repository transaction, extension
  /// of the DA's derivation graph, scope-lock to the owning DA. On
  /// integrity failure the caller (client-TM/DM) learns the "checkin
  /// failure" situation.
  Result<DovId> Checkin(DopId dop, storage::DesignObject object,
                        const std::vector<DovId>& predecessors,
                        SimTime created_at);

  /// End-of-DOP, commit outcome: release the DOP's derivation locks.
  Status CommitDop(DopId dop);
  /// End-of-DOP, abort outcome: release locks; versions already checked
  /// in by this DOP stay (each checkin was its own ACID unit — the DOP
  /// abort concerns the in-flight work, handled client-side).
  Status AbortDop(DopId dop);

  Result<DaId> DaOfDop(DopId dop) const;

  // --- Cross-shard 2PC (prepared-transaction ledger) -----------------
  //
  // A critical interaction whose operations span several server nodes
  // cannot ride one degenerate [Prepare, ops, Decide] envelope: each
  // participant must hold its effects until the coordinator has heard
  // every vote. DispatchBatch routes a phase-1 envelope ([Prepare,
  // ops...] with no Decide) through these methods — reads and
  // registrations execute immediately (with undo records), while
  // state-changing operations are validated, answered, and *staged* —
  // and a later [Decide] envelope applies or discards the stage. The
  // ledger is volatile server memory: a crash wipes it, which is the
  // presumed-abort outcome.

  /// Phase-1 Begin-of-DOP (participant enlistment): executes
  /// immediately and survives either decision — registrations are
  /// enlistment, not data, and the client records the participant on
  /// this reply, so both sides must agree whatever the outcome.
  Status PrepareBeginDop(TxnId txn, DopId dop, DaId da);
  /// Phase-1 checkout: executes immediately (reads are safe to serve
  /// before the decision); a derivation lock acquired here is released
  /// again by Decide(abort).
  Result<storage::DovRecord> PrepareCheckout(TxnId txn, DopId dop, DovId dov,
                                             bool take_derivation_lock);
  /// Phase-1 checkin: validates (registration, placement, schema
  /// integrity), allocates the DOV id, and stages the record. Nothing
  /// reaches the repository until Decide(commit).
  Result<DovId> PrepareCheckin(TxnId txn, DopId dop,
                               storage::DesignObject object,
                               const std::vector<DovId>& predecessors,
                               SimTime created_at);
  /// Phase-1 End-of-DOP: validates the registration and stages the
  /// lock release / deregistration for Decide(commit).
  Status PrepareFinish(TxnId txn, DopId dop, bool commit_outcome);
  /// Phase-2: applies (commit) or discards + undoes (abort) the staged
  /// transaction. Idempotent: a repeated decision for an already-
  /// resolved or never-prepared transaction answers OK — with a
  /// volatile ledger, "nothing staged here" and "already resolved" are
  /// indistinguishable and both are safe to acknowledge.
  Status Decide(TxnId txn, bool commit);
  /// Test introspection: true while `txn` has staged/undoable state.
  bool HasPrepared(TxnId txn) const;

  /// Simulated server crash: lock tables and DOP registrations are
  /// volatile; the repository crashes alongside. The ids of the wiped
  /// registrations are remembered (the server-TM's log would know which
  /// DOPs were in flight), so a client naming one after Recover() gets
  /// the typed kUnknownDop status instead of being indistinguishable
  /// from a caller that never registered at all.
  void Crash();
  Status Recover();

  const ServerTmStats& stats() const { return stats_; }

 private:
  /// DA of `dop`, or the typed failure: kUnknownDop if a crash wiped
  /// the registration, kNotFound if it never existed. Takes mu_.
  Result<DaId> LookupDop(DopId dop) const;

  /// kWrongShard when a sharded plane's placement says `da` is homed
  /// elsewhere; OK otherwise (including the un-sharded case).
  Status CheckOwnsDa(DaId da) const;

  /// Publishes the derivation-lock invalidation push for `dov`
  /// acquired by `da` (see the long rationale in Checkout).
  void PublishDerivationLock(DovId dov, DaId da);

  /// Commits a fully-built, already-validated record to the repository
  /// and hands the new DOV to the creating DA's scope — the shared
  /// tail of Checkout-path Checkin and Decide-applied staged checkins.
  Status ApplyCheckin(storage::DovRecord record);

  /// Shared End-of-DOP path: deregisters `dop`, releases its
  /// derivation locks and bumps `outcome_counter` (committed/aborted).
  Status FinishDop(DopId dop, std::atomic<uint64_t>* outcome_counter);

  storage::Repository* repository_;
  rpc::Network* network_;
  NodeId node_;
  ScopeAuthority* scope_authority_;
  rpc::InvalidationBus* invalidations_;
  const PlacementMap* placement_ = nullptr;
  LockManager locks_;

  /// One staged (phase-1-executed, undecided) transaction.
  struct PreparedTxn {
    /// Checkin records to publish at Decide(commit), in arrival order.
    std::vector<storage::DovRecord> staged_checkins;
    /// End-of-DOP outcomes to apply at Decide(commit).
    struct StagedFinish {
      DopId dop;
      bool commit_outcome = true;
    };
    std::vector<StagedFinish> staged_finishes;
    /// Derivation locks acquired by this transaction's phase-1
    /// checkouts — released again at Decide(abort).
    std::vector<std::pair<DovId, DaId>> acquired_locks;
  };

  /// Guards dop_da_, dop_derivation_locks_, lost_dops_ and prepared_;
  /// leaf mutex, never held across repository or lock-manager calls.
  mutable std::mutex mu_;
  std::unordered_map<DopId, DaId> dop_da_;
  /// Derivation locks taken per DOP (released at End-of-DOP).
  std::unordered_map<DopId, std::vector<DovId>> dop_derivation_locks_;
  /// Registrations wiped by Crash() and not re-registered since.
  std::unordered_set<DopId> lost_dops_;
  /// Cross-shard 2PC ledger (volatile: a crash is a presumed abort).
  std::unordered_map<TxnId, PreparedTxn> prepared_;

  /// Mutable: the unknown-DOP counter is bumped from const lookups.
  mutable ServerTmStats stats_;
};

}  // namespace concord::txn

#endif  // CONCORD_TXN_SERVER_TM_H_
