#ifndef CONCORD_TXN_SERVER_TM_H_
#define CONCORD_TXN_SERVER_TM_H_

#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "rpc/network.h"
#include "rpc/two_phase_commit.h"
#include "storage/repository.h"
#include "txn/lock_manager.h"
#include "txn/scope_authority.h"

namespace concord::txn {

struct ServerTmStats {
  uint64_t checkouts = 0;
  uint64_t checkouts_denied_scope = 0;
  uint64_t checkouts_denied_lock = 0;
  uint64_t checkins = 0;
  uint64_t checkin_failures = 0;
  uint64_t dops_begun = 0;
  uint64_t dops_committed = 0;
  uint64_t dops_aborted = 0;
};

/// Server half of the transaction manager (Sect. 5.1/5.2): "handles
/// checkout/checkin and controls concurrent access to DOVs, thus
/// residing on the server". It owns the lock tables and fronts the
/// repository; the client-TM talks to it for every critical
/// interaction.
class ServerTm {
 public:
  ServerTm(storage::Repository* repository, rpc::Network* network,
           NodeId server_node, ScopeAuthority* scope_authority);
  ServerTm(const ServerTm&) = delete;
  ServerTm& operator=(const ServerTm&) = delete;

  NodeId node() const { return node_; }
  LockManager& locks() { return locks_; }
  storage::Repository& repository() { return *repository_; }

  /// Registers a new DOP for DA `da`. The server remembers the
  /// association for scope checks and lock release.
  Status BeginDop(DopId dop, DaId da);

  /// Checkout (Sect. 5.2): scope test, derivation-lock compatibility
  /// test, optional derivation-lock acquisition, then the read. Short
  /// locks bracket the operation.
  Result<storage::DovRecord> Checkout(DopId dop, DovId dov,
                                      bool take_derivation_lock);

  /// Checkin: integrity check via a repository transaction, extension
  /// of the DA's derivation graph, scope-lock to the owning DA. On
  /// integrity failure the caller (client-TM/DM) learns the "checkin
  /// failure" situation.
  Result<DovId> Checkin(DopId dop, storage::DesignObject object,
                        const std::vector<DovId>& predecessors,
                        SimTime created_at);

  /// End-of-DOP, commit outcome: release the DOP's derivation locks.
  Status CommitDop(DopId dop);
  /// End-of-DOP, abort outcome: release locks; versions already checked
  /// in by this DOP stay (each checkin was its own ACID unit — the DOP
  /// abort concerns the in-flight work, handled client-side).
  Status AbortDop(DopId dop);

  Result<DaId> DaOfDop(DopId dop) const;

  /// Simulated server crash: lock tables and DOP registrations are
  /// volatile; the repository crashes alongside.
  void Crash();
  Status Recover();

  const ServerTmStats& stats() const { return stats_; }

 private:
  storage::Repository* repository_;
  rpc::Network* network_;
  NodeId node_;
  ScopeAuthority* scope_authority_;
  LockManager locks_;
  std::unordered_map<DopId, DaId> dop_da_;
  /// Derivation locks taken per DOP (released at End-of-DOP).
  std::unordered_map<DopId, std::vector<DovId>> dop_derivation_locks_;
  ServerTmStats stats_;
};

}  // namespace concord::txn

#endif  // CONCORD_TXN_SERVER_TM_H_
