#include "txn/client_tm.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace concord::txn {

ClientTm::ClientTm(ServerService* service, rpc::Network* network,
                   NodeId workstation, SimClock* clock,
                   rpc::InvalidationBus* invalidations)
    : ClientTm(ShardRouter(service), network, workstation, clock,
               invalidations) {}

ClientTm::ClientTm(ShardRouter router, rpc::Network* network,
                   NodeId workstation, SimClock* clock,
                   rpc::InvalidationBus* invalidations)
    : router_(std::move(router)),
      network_(network),
      node_(workstation),
      clock_(clock),
      invalidations_(invalidations) {
  if (invalidations_ != nullptr) {
    // The handler runs on the publishing (server) thread and touches
    // only the self-synchronizing cache — never the DOP tables.
    invalidations_->Subscribe(
        node_, [this](const rpc::InvalidationMessage& message) {
          cache_.Invalidate(message.dov);
        });
  }
}

TxnId ClientTm::NextTxnId() {
  // Namespaced like DOP ids: the server-side 2PC ledger keys on the
  // transaction id, so ids must be unique per interaction AND across
  // workstations.
  return TxnId((node_.value() << 32) | txn_gen_.Next().value());
}

bool ClientTm::Enlisted(const DopRuntime& runtime, NodeId node) const {
  return std::find(runtime.participants.begin(), runtime.participants.end(),
                   node) != runtime.participants.end();
}

ClientTm::~ClientTm() {
  if (invalidations_ != nullptr) invalidations_->Unsubscribe(node_);
}

Result<ClientTm::DopRuntime*> ClientTm::ActiveDop(DopId dop) {
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  if (it->second.state != DopState::kActive) {
    return Status::FailedPrecondition(
        dop.ToString() + " is " + DopStateToString(it->second.state) +
        ", not active");
  }
  return &it->second;
}

Result<BatchReply> ClientTm::RunCriticalInteraction(TxnId txn,
                                                    std::vector<RoutedOp> ops,
                                                    bool independent) {
  if (!network_->IsUp(node_)) {
    return Status::Crashed("workstation is down");
  }
  if (ops.empty()) return BatchReply{};
  ++two_pc_stats_.protocols_run;
  // Client-side participant leg: co-located with the coordinator, so
  // it takes the main-memory fast path of Sect. 6 — two local hops,
  // no LAN messages.
  ++two_pc_stats_.local_fast_paths;
  if (!network_->Send(node_, node_).ok() || !network_->Send(node_, node_).ok()) {
    ++two_pc_stats_.aborted;
    return Status::Crashed("workstation is down");
  }

  // Group the ops by destination node, preserving first-appearance
  // order (the coordinator-side view of the participant list).
  std::vector<NodeId> participants;
  std::vector<std::vector<size_t>> op_indices;
  for (size_t i = 0; i < ops.size(); ++i) {
    size_t p = 0;
    while (p < participants.size() && participants[p] != ops[i].node) ++p;
    if (p == participants.size()) {
      participants.push_back(ops[i].node);
      op_indices.emplace_back();
    }
    op_indices[p].push_back(i);
  }

  if (participants.size() > 1) {
    return RunMultiNodeInteraction(txn, participants, op_indices, ops,
                                   independent);
  }

  // Single-participant degenerate case: both 2PC legs ride one
  // envelope — phase-1 vote first, the operations, then the phase-2
  // decision — one round trip for all three where the raw protocol
  // paid two round trips plus the call.
  BatchRequest batch;
  batch.independent = independent;
  batch.ops.reserve(ops.size() + 2);
  batch.ops.emplace_back(PrepareRequest{txn});
  for (RoutedOp& op : ops) batch.ops.push_back(std::move(op.op));
  batch.ops.emplace_back(DecideRequest{txn, /*commit=*/true});

  auto reply = router_.service(participants.front())->Execute(batch);
  if (!reply.ok()) {
    // Server unreachable (or retries exhausted): presumed abort.
    ++two_pc_stats_.aborted;
    return Status::Unavailable("client/server TM commit protocol failed: " +
                               reply.status().message());
  }
  if (reply->ops.size() != batch.ops.size()) {
    ++two_pc_stats_.aborted;
    return Status::Internal("server-service reply arity mismatch");
  }
  const auto* vote = std::get_if<PrepareReply>(&reply->ops.front().body);
  if (vote == nullptr || !vote->vote) {
    ++two_pc_stats_.aborted;
    return Status::Aborted("server-TM voted NO in the commit protocol");
  }
  ++two_pc_stats_.committed;
  two_pc_stats_.messages += 2;  // the envelope's request + reply LAN hops
  BatchReply out;
  out.ops.assign(std::make_move_iterator(reply->ops.begin() + 1),
                 std::make_move_iterator(reply->ops.end() - 1));
  return out;
}

Result<BatchReply> ClientTm::RunMultiNodeInteraction(
    TxnId txn, const std::vector<NodeId>& participants,
    const std::vector<std::vector<size_t>>& op_indices,
    std::vector<RoutedOp>& ops, bool independent) {
  BatchReply merged;
  merged.ops.resize(ops.size());
  for (ServerReply& reply : merged.ops) {
    reply.status = Status::Unavailable("participant unreachable");
  }

  if (independent) {
    // No cross-node atomicity required: each participant gets its own
    // degenerate [Prepare, ops, Decide] envelope; an unreachable node
    // only costs its own ops (they stay kUnavailable in the merge).
    bool any_reached = false;
    for (size_t p = 0; p < participants.size(); ++p) {
      BatchRequest batch;
      batch.independent = true;
      batch.ops.reserve(op_indices[p].size() + 2);
      batch.ops.emplace_back(PrepareRequest{txn});
      for (size_t index : op_indices[p]) {
        batch.ops.push_back(std::move(ops[index].op));
      }
      batch.ops.emplace_back(DecideRequest{txn, /*commit=*/true});
      auto reply = router_.service(participants[p])->Execute(batch);
      two_pc_stats_.messages += 2;
      if (!reply.ok() || reply->ops.size() != batch.ops.size()) continue;
      any_reached = true;
      for (size_t i = 0; i < op_indices[p].size(); ++i) {
        merged.ops[op_indices[p][i]] = std::move(reply->ops[i + 1]);
      }
    }
    if (any_reached) {
      ++two_pc_stats_.committed;
    } else {
      ++two_pc_stats_.aborted;
      return Status::Unavailable("no server node reachable");
    }
    return merged;
  }

  // True multi-participant 2PC. Phase 1: one [Prepare, ops...]
  // envelope per participant; state-changing operations are staged in
  // the participant's ledger and applied only by the decision.
  ++two_pc_stats_.multi_node_protocols;
  std::vector<bool> acked(participants.size(), false);
  bool all_acked = true;
  for (size_t p = 0; p < participants.size(); ++p) {
    BatchRequest batch;
    batch.independent = false;
    batch.ops.reserve(op_indices[p].size() + 1);
    batch.ops.emplace_back(PrepareRequest{txn});
    for (size_t index : op_indices[p]) {
      batch.ops.push_back(std::move(ops[index].op));
    }
    auto reply = router_.service(participants[p])->Execute(batch);
    ++two_pc_stats_.participant_envelopes;
    two_pc_stats_.messages += 2;
    if (!reply.ok() || reply->ops.size() != batch.ops.size()) {
      all_acked = false;
      continue;
    }
    const auto* vote = std::get_if<PrepareReply>(&reply->ops.front().body);
    if (vote == nullptr || !vote->vote) {
      all_acked = false;
      continue;
    }
    acked[p] = true;
    for (size_t i = 0; i < op_indices[p].size(); ++i) {
      merged.ops[op_indices[p][i]] = std::move(reply->ops[i + 1]);
    }
  }

  // Decision: commit only when every participant is prepared and — the
  // ops form one dependent chain — every operation succeeded. (An
  // application-level failure on node A must discard what node B
  // staged: that is exactly the cross-shard skip-after-failure rule.)
  bool data_ok = true;
  for (const ServerReply& reply : merged.ops) {
    if (!reply.status.ok()) data_ok = false;
  }
  bool commit = all_acked && data_ok;

  // Phase 2: fan the decision out to every participant that acked
  // phase 1 (presumed abort covers the rest). A commit decision is
  // retried a few times per node — the transport already retries each
  // attempt — because a participant that misses it would strand its
  // staged effects; an abort decision is best-effort by design.
  Status decide_failure = Status::OK();
  for (size_t p = 0; p < participants.size(); ++p) {
    if (!acked[p]) continue;
    BatchRequest decide;
    decide.ops.emplace_back(DecideRequest{txn, commit});
    const int attempts = commit ? 3 : 1;
    Status last = Status::OK();
    for (int attempt = 0; attempt < attempts; ++attempt) {
      auto reply = router_.service(participants[p])->Execute(decide);
      ++two_pc_stats_.participant_envelopes;
      two_pc_stats_.messages += 2;
      if (reply.ok()) {
        last = reply->ops.empty() ? Status::OK() : reply->ops.front().status;
        break;
      }
      last = reply.status();
    }
    if (commit && !last.ok() && decide_failure.ok()) decide_failure = last;
  }

  if (!all_acked) {
    ++two_pc_stats_.aborted;
    return Status::Unavailable(
        "cross-shard commit protocol aborted: participant unreachable in "
        "phase 1");
  }
  if (commit && !decide_failure.ok()) {
    // In-doubt window: some participant staged but never learned the
    // commit (it is down — its volatile ledger dies with it). Surface
    // the failure; the caller treats the interaction as failed.
    ++two_pc_stats_.aborted;
    return Status::Unavailable("cross-shard commit decision undeliverable: " +
                               decide_failure.message());
  }
  if (commit) {
    ++two_pc_stats_.committed;
  } else {
    ++two_pc_stats_.aborted;
  }
  // Data-failure aborts still return the merged replies: the callers
  // surface the first failed operation's typed status, exactly like
  // the single-node skip-after-failure path.
  return merged;
}

Result<DopId> ClientTm::BeginDop(DaId da) {
  RecursiveMutexLock lock(&mu_);
  if (!network_->IsUp(node_)) {
    return Status::Crashed("workstation is down");
  }
  // DOP ids are namespaced by workstation: every client-TM draws from
  // its own counter, and two workstations with concurrently live DOPs
  // must not collide at the server's registration table.
  DopId dop = DopId((node_.value() << 32) | dop_gen_.Next().value());
  // Registration goes to the DA's home node: that is where the DOP's
  // checkins will land, and the shard a stale placement would
  // otherwise misroute them to detects it there.
  CONCORD_ASSIGN_OR_RETURN(NodeId home, router_.HomeOf(da));
  std::vector<RoutedOp> ops;
  ops.push_back({home, BeginDopRequest{dop, da}});
  CONCORD_ASSIGN_OR_RETURN(
      BatchReply reply, RunCriticalInteraction(NextTxnId(), std::move(ops)));
  CONCORD_RETURN_NOT_OK(reply.ops.front().status);
  DopRuntime runtime;
  runtime.da = da;
  runtime.participants.push_back(home);
  dops_.emplace(dop, std::move(runtime));
  ++stats_.dops_in_flight;
  if (stats_.dops_in_flight > stats_.peak_dops_in_flight) {
    stats_.peak_dops_in_flight = stats_.dops_in_flight;
  }
  // Initial recovery point: an empty context, so a crash right after
  // Begin-of-DOP recovers to the beginning.
  PersistRecoveryPoint(dop, dops_.at(dop));
  return dop;
}

Status ClientTm::Checkout(DopId dop, DovId dov, bool take_derivation_lock) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  // Cache fast path: a DOV this workstation already fetched under the
  // same DA's visibility is served locally — no envelope, no server hop
  // (IsUp is a lock-free atomic read, so warm checkouts never touch
  // the LAN mutex). Derivation-lock requests always go to the server
  // (the lock table lives there), and a down workstation serves
  // nothing.
  if (!take_derivation_lock && network_->IsUp(node_)) {
    auto cached = cache_.Lookup(dov, runtime->da);
    if (cached.ok()) {
      ++stats_.checkouts_from_cache;
      runtime->context.inputs[dov] = std::move(cached->data);
      // "After each checkout operation a recovery point is set"
      // (Sect. 5.2) — cached checkouts included: a crash right after
      // must not re-request the DOV from the server.
      PersistRecoveryPoint(dop, *runtime);
      return Status::OK();
    }
  }
  // Sample the invalidation counter BEFORE the round-trip: if a
  // withdrawal races the checkout, the stale reply must not be cached
  // (InsertIfCurrent refuses it).
  uint64_t inv_seq = cache_.InvalidationSeq(dov);
  // Route to the node owning the DOV (the id is the address). A first
  // touch of that node enlists the DOP there — the Begin-of-DOP
  // piggybacks on the same envelope, so enlistment costs no extra
  // round trip.
  NodeId target = router_.NodeOfDov(dov);
  bool enlist = !Enlisted(*runtime, target);
  std::vector<RoutedOp> ops;
  if (enlist) ops.push_back({target, BeginDopRequest{dop, runtime->da}});
  ops.push_back({target, CheckoutRequest{dop, dov, take_derivation_lock}});
  CONCORD_ASSIGN_OR_RETURN(
      BatchReply reply, RunCriticalInteraction(NextTxnId(), std::move(ops)));
  size_t checkout_index = enlist ? 1 : 0;
  if (enlist && reply.ops.front().status.ok()) {
    // The registration exists server-side from here on, whatever the
    // checkout itself says — End-of-DOP must release it there.
    runtime->participants.push_back(target);
  }
  CONCORD_RETURN_NOT_OK(reply.ops[checkout_index].status);
  auto* body = std::get_if<CheckoutReply>(&reply.ops[checkout_index].body);
  if (body == nullptr) {
    return Status::Internal("checkout reply carries no DOV record");
  }
  storage::DovRecord record = std::move(body->record);
  ++stats_.checkouts_from_server;
  runtime->context.inputs[dov] = record.data;
  // The server just ran the visibility tests for this DA: the answer is
  // authoritative and (re-)arms the cache — unless an invalidation
  // push overtook it.
  cache_.InsertIfCurrent(dov, std::move(record), runtime->da, inv_seq);
  // "After each checkout operation a recovery point is set" (Sect 5.2).
  PersistRecoveryPoint(dop, *runtime);
  return Status::OK();
}

Result<storage::DesignObject> ClientTm::Input(DopId dop, DovId dov) const {
  RecursiveMutexLock lock(&mu_);
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  auto input_it = it->second.context.inputs.find(dov);
  if (input_it == it->second.context.inputs.end()) {
    return Status::NotFound(dov.ToString() + " not checked out by " +
                            dop.ToString());
  }
  return input_it->second;
}

std::vector<DovId> ClientTm::CheckedOut(DopId dop) const {
  RecursiveMutexLock lock(&mu_);
  std::vector<DovId> out;
  auto it = dops_.find(dop);
  if (it == dops_.end()) return out;
  for (const auto& [dov, obj] : it->second.context.inputs) out.push_back(dov);
  return out;
}

Status ClientTm::PutWorkspace(DopId dop, const std::string& key,
                              storage::DesignObject object) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  runtime->context.workspace[key] = std::move(object);
  return Status::OK();
}

Result<storage::DesignObject> ClientTm::GetWorkspace(
    DopId dop, const std::string& key) const {
  RecursiveMutexLock lock(&mu_);
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  auto ws_it = it->second.context.workspace.find(key);
  if (ws_it == it->second.context.workspace.end()) {
    return Status::NotFound("no workspace object '" + key + "' in " +
                            dop.ToString());
  }
  return ws_it->second;
}

Status ClientTm::DoWork(DopId dop, uint64_t units) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  runtime->context.work_done += units;
  stats_.work_units_done += units;
  if (auto_rp_units_ > 0 &&
      runtime->context.work_done - runtime->work_at_last_rp >= auto_rp_units_) {
    PersistRecoveryPoint(dop, *runtime);
  }
  return Status::OK();
}

Status ClientTm::Save(DopId dop, const std::string& savepoint_name) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  for (const Savepoint& sp : runtime->savepoints) {
    if (sp.name == savepoint_name) {
      return Status::AlreadyExists("savepoint '" + savepoint_name +
                                   "' already set in " + dop.ToString());
    }
  }
  runtime->savepoints.push_back(
      Savepoint{savepoint_name, clock_->Now(), runtime->context});
  ++stats_.savepoints_taken;
  return Status::OK();
}

Status ClientTm::Restore(DopId dop, const std::string& savepoint_name) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  for (const Savepoint& sp : runtime->savepoints) {
    if (sp.name == savepoint_name) {
      runtime->context = sp.context;
      ++stats_.restores;
      return Status::OK();
    }
  }
  return Status::NotFound("no savepoint '" + savepoint_name + "' in " +
                          dop.ToString());
}

Status ClientTm::Suspend(DopId dop) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  // Suspension must survive long absences (and crashes in between):
  // persist the context as a recovery point.
  PersistRecoveryPoint(dop, *runtime);
  runtime->state = DopState::kSuspended;
  ++stats_.suspends;
  return Status::OK();
}

Status ClientTm::Resume(DopId dop) {
  RecursiveMutexLock lock(&mu_);
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  if (it->second.state != DopState::kSuspended) {
    return Status::FailedPrecondition(dop.ToString() + " is not suspended");
  }
  // "The state seen by the designer after a Resume operation must be
  // equal to that seen when issuing the Suspend command" — the context
  // is exactly as persisted.
  it->second.state = DopState::kActive;
  ++stats_.resumes;
  return Status::OK();
}

Status ClientTm::TakeRecoveryPoint(DopId dop) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  PersistRecoveryPoint(dop, *runtime);
  return Status::OK();
}

void ClientTm::PersistRecoveryPoint(DopId dop, const DopRuntime& runtime) {
  RecoveryPoint rp;
  rp.taken_at = clock_->Now();
  rp.sequence = ++rp_sequence_;
  rp.context = runtime.context;
  stable_rp_[dop.value()] = {runtime.da, std::move(rp)};
  auto it = dops_.find(dop);
  if (it != dops_.end()) {
    it->second.work_at_last_rp = runtime.context.work_done;
  }
  ++stats_.recovery_points_taken;
}

Status ClientTm::HandOverContext(DopId from, DopId to) {
  RecursiveMutexLock lock(&mu_);
  auto from_it = dops_.find(from);
  if (from_it == dops_.end()) {
    return Status::NotFound(from.ToString() + " not known at this client-TM");
  }
  if (from_it->second.state != DopState::kCommitted) {
    return Status::FailedPrecondition(
        "context handover requires a committed predecessor, " +
        from.ToString() + " is " +
        std::string(DopStateToString(from_it->second.state)));
  }
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * to_runtime, ActiveDop(to));
  // The successor inherits the predecessor's loaded inputs and
  // workspace; its own work counter continues from zero.
  uint64_t own_work = to_runtime->context.work_done;
  to_runtime->context = from_it->second.context;
  to_runtime->context.work_done = own_work;
  // The handed-over inputs are the paper's one-shot in-memory shortcut;
  // the DOV cache is deliberately NOT touched here. A same-DA successor
  // needs no help — every live handed-over entry was inserted under
  // that DA at the predecessor's checkout, so its re-checkouts already
  // hit. Widening validation beyond what a server checkout proved
  // would let a handover re-validate a DOV whose grant was withdrawn
  // and re-armed by a different DA in between.
  PersistRecoveryPoint(to, *to_runtime);
  ++stats_.context_handovers;
  return Status::OK();
}

void ClientTm::CacheOwnCheckin(const DopRuntime& runtime, DopId dop, DovId dov,
                               storage::DesignObject object,
                               const std::vector<DovId>& predecessors,
                               SimTime created_at) {
  // The workstation knows every field of the record it just created —
  // rebuilding it locally matches the server's image byte for byte
  // (the server stores exactly the shipped object under the creating
  // DOP/DA), so re-reading one's own checkin needs no payload refetch.
  storage::DovRecord record;
  record.id = dov;
  record.owner_da = runtime.da;
  record.created_by = dop;
  record.type = object.type();
  record.data = std::move(object);
  record.predecessors = predecessors;
  record.created_at = created_at;
  if (cache_.InsertIfNeverInvalidated(dov, std::move(record), runtime.da)) {
    ++stats_.checkin_cache_inserts;
  }
}

Result<DovId> ClientTm::RoutedCheckin(DopId dop, DopRuntime* runtime,
                                      storage::DesignObject object,
                                      const std::vector<DovId>& predecessors,
                                      bool with_commit) {
  SimTime created_at = clock_->Now();
  // Two routing attempts: the home node answers kWrongShard when the
  // DA migrated under this workstation's placement cache; the retry
  // re-fetches the placement and lands on the new home.
  for (int attempt = 0; attempt < 2; ++attempt) {
    CONCORD_ASSIGN_OR_RETURN(NodeId home, router_.HomeOf(runtime->da));
    bool enlist = !Enlisted(*runtime, home);
    std::vector<RoutedOp> ops;
    if (enlist) ops.push_back({home, BeginDopRequest{dop, runtime->da}});
    ops.push_back({home, CheckinRequest{dop, object, predecessors,
                                        created_at}});
    if (with_commit) {
      // End-of-DOP releases the DOP's locks and registration at EVERY
      // participant: the home node first — on the same node the batch
      // chain makes a failed checkin skip the commit — then the other
      // enlisted nodes. When the set has more than one node this runs
      // as true multi-participant 2PC: each node stages its leg, and
      // the decision commits the checkin and all releases together or
      // none.
      ops.push_back({home, CommitDopRequest{dop}});
      for (NodeId p : runtime->participants) {
        if (p != home) ops.push_back({p, CommitDopRequest{dop}});
      }
    }
    size_t checkin_index = enlist ? 1 : 0;
    bool multi_node = false;
    for (const RoutedOp& op : ops) {
      if (op.node != home) multi_node = true;
    }
    CONCORD_ASSIGN_OR_RETURN(
        BatchReply reply, RunCriticalInteraction(NextTxnId(), std::move(ops)));
    if (enlist && reply.ops.front().status.ok()) {
      // The registration exists server-side from here on, whatever the
      // interaction's outcome (enlistment survives an abort decision).
      runtime->participants.push_back(home);
    }
    const Status& checkin_status = reply.ops[checkin_index].status;
    if (checkin_status.IsWrongShard() && attempt == 0) {
      // The DA migrated under this workstation's cache: refresh and
      // reroute. Nothing committed — the home's chain skipped its own
      // commit, and a cross-shard decision was abort. The misrouted
      // attempt deliberately counts toward NO logical-interaction
      // stats (the retry is the same checkin+commit, not a second
      // one).
      router_.ForgetPlacement(runtime->da);
      ++stats_.placement_refreshes;
      continue;
    }
    // Logical-interaction accounting, once per checkin+commit however
    // many routing attempts it took (protocol-level attempt counters
    // live in two_pc_stats_ instead).
    if (with_commit) ++stats_.batched_checkin_commits;
    if (multi_node) ++stats_.cross_shard_interactions;
    // Checkin failure: any commit legs were skipped (same node) or
    // abort-discarded (other nodes), so the DOP stays active and the
    // caller sees the typed "checkin failure".
    CONCORD_RETURN_NOT_OK(checkin_status);
    auto* body = std::get_if<CheckinReply>(&reply.ops[checkin_index].body);
    if (body == nullptr) {
      return Status::Internal("checkin reply carries no DOV id");
    }
    // Every commit leg must have succeeded; on a cross-shard abort the
    // staged checkin was discarded with them, so the first failure is
    // the interaction's outcome.
    for (size_t i = checkin_index + 1; i < reply.ops.size(); ++i) {
      CONCORD_RETURN_NOT_OK(reply.ops[i].status);
    }
    if (with_commit) FinishCommitted(dop, runtime);
    CacheOwnCheckin(*runtime, dop, body->dov, std::move(object), predecessors,
                    created_at);
    return body->dov;
  }
  return Status::Internal("checkin routing did not converge");
}

Result<DovId> ClientTm::Checkin(DopId dop, storage::DesignObject object,
                                const std::vector<DovId>& predecessors) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  return RoutedCheckin(dop, runtime, std::move(object), predecessors,
                       /*with_commit=*/false);
}

void ClientTm::FinishCommitted(DopId dop, DopRuntime* runtime) {
  // Sect. 5.2 ordering: the server released derivation locks first,
  // then the client removes savepoints and recovery points.
  runtime->savepoints.clear();
  stable_rp_.erase(dop.value());
  runtime->state = DopState::kCommitted;
  ++stats_.dops_committed;
  --stats_.dops_in_flight;
}

Result<DovId> ClientTm::CheckinCommit(DopId dop, storage::DesignObject object,
                                      const std::vector<DovId>& predecessors) {
  RecursiveMutexLock lock(&mu_);
  if (!batching_) {
    CONCORD_ASSIGN_OR_RETURN(DovId dov,
                             Checkin(dop, std::move(object), predecessors));
    CONCORD_RETURN_NOT_OK(CommitDop(dop));
    return dov;
  }
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  return RoutedCheckin(dop, runtime, std::move(object), predecessors,
                       /*with_commit=*/true);
}

Status ClientTm::CommitDop(DopId dop) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  // Release at every enlisted node; across shards this is the
  // multi-participant protocol (all nodes release or none).
  std::vector<RoutedOp> ops;
  for (NodeId p : runtime->participants) {
    ops.push_back({p, CommitDopRequest{dop}});
  }
  if (ops.size() > 1) ++stats_.cross_shard_interactions;
  CONCORD_ASSIGN_OR_RETURN(
      BatchReply reply, RunCriticalInteraction(NextTxnId(), std::move(ops)));
  for (const ServerReply& op : reply.ops) {
    CONCORD_RETURN_NOT_OK(op.status);
  }
  FinishCommitted(dop, runtime);
  return Status::OK();
}

Status ClientTm::AbortDop(DopId dop) {
  RecursiveMutexLock lock(&mu_);
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  if (it->second.state == DopState::kCommitted ||
      it->second.state == DopState::kAborted) {
    return Status::FailedPrecondition(dop.ToString() + " already finished");
  }
  // Aborts need no cross-node atomicity — each node dropping its locks
  // is independently correct and strictly better than keeping them —
  // so the fan-out is independent: one node being down (its volatile
  // registration dies with it anyway) must not stop the others from
  // releasing.
  std::vector<RoutedOp> ops;
  for (NodeId p : it->second.participants) {
    ops.push_back({p, AbortDopRequest{dop}});
  }
  CONCORD_ASSIGN_OR_RETURN(
      BatchReply reply, RunCriticalInteraction(NextTxnId(), std::move(ops),
                                               /*independent=*/true));
  Status first_error = Status::OK();
  for (size_t i = 0; i < reply.ops.size(); ++i) {
    const Status& st = reply.ops[i].status;
    if (st.ok()) continue;
    // A participant that already dropped the registration (its crash
    // wiped it, or an earlier partial abort reached it) has nothing
    // left to release — that is success for an abort. The same goes
    // for a participant that is DOWN right now (kUnavailable): its
    // registration and locks are volatile memory dying with it, which
    // is exactly what its recovered self would answer kUnknownDop
    // about — a down node must not strand the DOP active. Single-node
    // planes keep the strict answer (one participant, its status is
    // the outcome).
    if (reply.ops.size() > 1 &&
        (st.IsNotFound() || st.IsUnknownDop() || st.IsUnavailable())) {
      continue;
    }
    if (first_error.ok()) first_error = st;
  }
  CONCORD_RETURN_NOT_OK(first_error);
  it->second.savepoints.clear();
  stable_rp_.erase(dop.value());
  it->second.state = DopState::kAborted;
  --stats_.dops_in_flight;
  return Status::OK();
}

Result<DopState> ClientTm::StateOf(DopId dop) const {
  RecursiveMutexLock lock(&mu_);
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  return it->second.state;
}

Result<uint64_t> ClientTm::WorkDone(DopId dop) const {
  RecursiveMutexLock lock(&mu_);
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  return it->second.context.work_done;
}

void ClientTm::Crash() {
  RecursiveMutexLock lock(&mu_);
  network_->SetNodeUp(node_, false);
  // The DOV cache is volatile workstation memory: gone, tombstones
  // included (outage-time invalidations are redelivered at recovery).
  cache_.Clear();
  ++stats_.crashes;
  for (auto& [dop, runtime] : dops_) {
    if (runtime.state == DopState::kActive ||
        runtime.state == DopState::kSuspended) {
      // Volatile context and savepoints are lost.
      auto rp_it = stable_rp_.find(dop.value());
      uint64_t preserved =
          rp_it == stable_rp_.end() ? 0
                                    : rp_it->second.second.context.work_done;
      stats_.work_units_lost += runtime.context.work_done - preserved;
      runtime.context = DopContext{};
      runtime.savepoints.clear();
      runtime.state = DopState::kCrashed;
    }
  }
  CONCORD_INFO("client-tm", "workstation " << node_.ToString() << " crashed");
}

// GCC 12's -Wmaybe-uninitialized misreads the ServerRequest variant
// move inside vector reallocation as a read of uninitialized std::map
// internals (the CheckinRequest alternative's DesignObject holds one);
// the variant never holds that alternative here. Confirmed false
// positive — clang and GCC 13+ are clean.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
void ClientTm::WarmCacheFromRecoveredContexts(
    const std::vector<DopId>& recovered) {
  // The cache restarted cold and every pre-crash validation proof is
  // void (the workstation could not observe outage-time revocations).
  // Instead of paying one lazy server trip per re-read, revalidate all
  // recovered inputs with ONE BatchRequest: each entry is a real
  // server-side checkout (scope + derivation-lock tests for the DOP's
  // DA), so only still-visible versions re-arm the cache. Runs after
  // FlushPending, so outage-time tombstones are already planted and
  // InsertIfCurrent's seq test stays sound.
  struct Expected {
    DovId dov;  // invalid for piggybacked enlistment ops
    DaId da;
    uint64_t seq;
    DopId dop;      // set for enlistment ops
    NodeId enlist;  // node the enlistment targets
  };
  std::vector<RoutedOp> ops;
  std::vector<Expected> expected;
  // Bound the vectors up front (each input costs at most a checkout
  // plus one enlistment op) so growth never moves the envelope ops —
  // GCC 12's -Wmaybe-uninitialized misreads the variant move inside
  // vector reallocation as a use of uninitialized map internals.
  size_t max_ops = 0;
  for (DopId dop : recovered) {
    max_ops += 2 * dops_.at(dop).context.inputs.size();
  }
  ops.reserve(max_ops);
  expected.reserve(max_ops);
  for (DopId dop : recovered) {
    DopRuntime& runtime = dops_.at(dop);
    for (const auto& [dov, object] : runtime.context.inputs) {
      // Route each revalidation to the node owning the DOV; inputs the
      // DOP never fetched itself (handed-over contexts) may hit a node
      // it is not enlisted at — piggyback the registration like a
      // normal cross-shard checkout would.
      NodeId target = router_.NodeOfDov(dov);
      if (!Enlisted(runtime, target)) {
        bool already_queued = false;
        for (const Expected& e : expected) {
          if (e.dop == dop && e.enlist == target) already_queued = true;
        }
        if (!already_queued) {
          ops.push_back({target, BeginDopRequest{dop, runtime.da}});
          expected.push_back({DovId(), runtime.da, 0, dop, target});
        }
      }
      ops.push_back({target, CheckoutRequest{dop, dov, false}});
      expected.push_back(
          {dov, runtime.da, cache_.InvalidationSeq(dov), dop, NodeId()});
    }
  }
  if (ops.empty()) return;
  // Independent ops: one withdrawn/locked input (or one down shard)
  // must not keep the still-visible ones cold.
  auto reply = RunCriticalInteraction(NextTxnId(), std::move(ops),
                                      /*independent=*/true);
  if (!reply.ok()) return;  // server unreachable: restart cold (just slower)
  for (size_t i = 0; i < reply->ops.size(); ++i) {
    if (!reply->ops[i].status.ok()) continue;  // e.g. withdrawn during outage
    if (expected[i].enlist.valid()) {
      dops_.at(expected[i].dop).participants.push_back(expected[i].enlist);
      continue;
    }
    auto* body = std::get_if<CheckoutReply>(&reply->ops[i].body);
    if (body == nullptr) continue;
    if (cache_.InsertIfCurrent(expected[i].dov, std::move(body->record),
                               expected[i].da, expected[i].seq)) {
      ++stats_.recovery_warmup_checkouts;
    }
  }
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

Result<uint64_t> ClientTm::Recover() {
  RecursiveMutexLock lock(&mu_);
  network_->SetNodeUp(node_, true);
  // Drain invalidations the server queued while this workstation was
  // down, BEFORE any DOP resumes: the cache restarts cold, and the
  // redelivered messages plant tombstones so a recovered context's
  // handover cannot re-validate a version withdrawn during the outage.
  // A recovery point itself never re-warms the cache — its inputs were
  // validated at checkout time, and that proof does not survive an
  // outage the workstation could not observe.
  if (invalidations_ != nullptr) invalidations_->FlushPending(node_);
  uint64_t lost_total = 0;
  std::vector<DopId> recovered;
  for (auto& [dop, runtime] : dops_) {
    if (runtime.state != DopState::kCrashed) continue;
    auto rp_it = stable_rp_.find(dop.value());
    if (rp_it != stable_rp_.end()) {
      runtime.context = rp_it->second.second.context;
      runtime.work_at_last_rp = runtime.context.work_done;
    } else {
      runtime.context = DopContext{};
    }
    runtime.state = DopState::kActive;
    recovered.push_back(dop);
    ++stats_.dops_recovered;
  }
  if (warm_cache_on_recovery_ && !recovered.empty()) {
    WarmCacheFromRecoveredContexts(recovered);
  }
  lost_total = stats_.work_units_lost;
  return lost_total;
}

}  // namespace concord::txn
