#include "txn/client_tm.h"

#include <algorithm>

#include "common/logging.h"

namespace concord::txn {

namespace {

/// Ad-hoc participant whose votes/outcomes are provided as callbacks.
/// Used to drive the generic 2PC coordinator for the client/server TM
/// interactions.
class LambdaParticipant : public rpc::TwoPcParticipant {
 public:
  LambdaParticipant(NodeId node, std::function<bool()> prepare)
      : node_(node), prepare_(std::move(prepare)) {}

  NodeId node() const override { return node_; }
  bool Prepare(TxnId) override { return prepare_ ? prepare_() : true; }
  void Commit(TxnId) override {}
  void Abort(TxnId) override {}

 private:
  NodeId node_;
  std::function<bool()> prepare_;
};

}  // namespace

ClientTm::ClientTm(ServerTm* server, rpc::Network* network, NodeId workstation,
                   SimClock* clock, rpc::InvalidationBus* invalidations)
    : server_(server),
      network_(network),
      node_(workstation),
      clock_(clock),
      invalidations_(invalidations),
      two_pc_(network, workstation) {
  if (invalidations_ != nullptr) {
    // The handler runs on the publishing (server) thread and touches
    // only the self-synchronizing cache — never the DOP tables.
    invalidations_->Subscribe(
        node_, [this](const rpc::InvalidationMessage& message) {
          cache_.Invalidate(message.dov);
        });
  }
}

ClientTm::~ClientTm() {
  if (invalidations_ != nullptr) invalidations_->Unsubscribe(node_);
}

Result<ClientTm::DopRuntime*> ClientTm::ActiveDop(DopId dop) {
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  if (it->second.state != DopState::kActive) {
    return Status::FailedPrecondition(
        dop.ToString() + " is " + DopStateToString(it->second.state) +
        ", not active");
  }
  return &it->second;
}

Status ClientTm::RunCommitProtocol(DopId dop) {
  (void)dop;
  LambdaParticipant client(node_, nullptr);
  LambdaParticipant server(server_->node(), nullptr);
  CONCORD_ASSIGN_OR_RETURN(
      bool committed,
      two_pc_.Execute(TxnId(dop.value()), {&client, &server}));
  if (!committed) {
    return Status::Unavailable("client/server TM commit protocol failed");
  }
  return Status::OK();
}

Result<DopId> ClientTm::BeginDop(DaId da) {
  if (!network_->IsUp(node_)) {
    return Status::Crashed("workstation is down");
  }
  // DOP ids are namespaced by workstation: every client-TM draws from
  // its own counter, and two workstations with concurrently live DOPs
  // must not collide at the server's registration table.
  DopId dop = DopId((node_.value() << 32) | dop_gen_.Next().value());
  CONCORD_RETURN_NOT_OK(RunCommitProtocol(dop));
  CONCORD_RETURN_NOT_OK(server_->BeginDop(dop, da));
  DopRuntime runtime;
  runtime.da = da;
  dops_.emplace(dop, std::move(runtime));
  // Initial recovery point: an empty context, so a crash right after
  // Begin-of-DOP recovers to the beginning.
  PersistRecoveryPoint(dop, dops_.at(dop));
  return dop;
}

Status ClientTm::Checkout(DopId dop, DovId dov, bool take_derivation_lock) {
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  // Cache fast path: a DOV this workstation already fetched under the
  // same DA's visibility is served locally — no 2PC, no server hop
  // (IsUp is a lock-free atomic read, so warm checkouts never touch
  // the LAN mutex). Derivation-lock requests always go to the server
  // (the lock table lives there), and a down workstation serves
  // nothing.
  if (!take_derivation_lock && network_->IsUp(node_)) {
    auto cached = cache_.Lookup(dov, runtime->da);
    if (cached.ok()) {
      ++stats_.checkouts_from_cache;
      runtime->context.inputs[dov] = std::move(cached->data);
      // "After each checkout operation a recovery point is set"
      // (Sect. 5.2) — cached checkouts included: a crash right after
      // must not re-request the DOV from the server.
      PersistRecoveryPoint(dop, *runtime);
      return Status::OK();
    }
  }
  // Sample the invalidation counter BEFORE the round-trip: if a
  // withdrawal races the checkout, the stale reply must not be cached
  // (InsertIfCurrent refuses it).
  uint64_t inv_seq = cache_.InvalidationSeq(dov);
  CONCORD_RETURN_NOT_OK(RunCommitProtocol(dop));
  CONCORD_ASSIGN_OR_RETURN(
      storage::DovRecord record,
      server_->Checkout(dop, dov, take_derivation_lock));
  ++stats_.checkouts_from_server;
  runtime->context.inputs[dov] = record.data;
  // The server just ran the visibility tests for this DA: the answer is
  // authoritative and (re-)arms the cache — unless an invalidation
  // push overtook it.
  cache_.InsertIfCurrent(dov, std::move(record), runtime->da, inv_seq);
  // "After each checkout operation a recovery point is set" (Sect 5.2).
  PersistRecoveryPoint(dop, *runtime);
  return Status::OK();
}

Result<storage::DesignObject> ClientTm::Input(DopId dop, DovId dov) const {
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  auto input_it = it->second.context.inputs.find(dov);
  if (input_it == it->second.context.inputs.end()) {
    return Status::NotFound(dov.ToString() + " not checked out by " +
                            dop.ToString());
  }
  return input_it->second;
}

std::vector<DovId> ClientTm::CheckedOut(DopId dop) const {
  std::vector<DovId> out;
  auto it = dops_.find(dop);
  if (it == dops_.end()) return out;
  for (const auto& [dov, obj] : it->second.context.inputs) out.push_back(dov);
  return out;
}

Status ClientTm::PutWorkspace(DopId dop, const std::string& key,
                              storage::DesignObject object) {
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  runtime->context.workspace[key] = std::move(object);
  return Status::OK();
}

Result<storage::DesignObject> ClientTm::GetWorkspace(
    DopId dop, const std::string& key) const {
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  auto ws_it = it->second.context.workspace.find(key);
  if (ws_it == it->second.context.workspace.end()) {
    return Status::NotFound("no workspace object '" + key + "' in " +
                            dop.ToString());
  }
  return ws_it->second;
}

Status ClientTm::DoWork(DopId dop, uint64_t units) {
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  runtime->context.work_done += units;
  stats_.work_units_done += units;
  if (auto_rp_units_ > 0 &&
      runtime->context.work_done - runtime->work_at_last_rp >= auto_rp_units_) {
    PersistRecoveryPoint(dop, *runtime);
  }
  return Status::OK();
}

Status ClientTm::Save(DopId dop, const std::string& savepoint_name) {
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  for (const Savepoint& sp : runtime->savepoints) {
    if (sp.name == savepoint_name) {
      return Status::AlreadyExists("savepoint '" + savepoint_name +
                                   "' already set in " + dop.ToString());
    }
  }
  runtime->savepoints.push_back(
      Savepoint{savepoint_name, clock_->Now(), runtime->context});
  ++stats_.savepoints_taken;
  return Status::OK();
}

Status ClientTm::Restore(DopId dop, const std::string& savepoint_name) {
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  for (const Savepoint& sp : runtime->savepoints) {
    if (sp.name == savepoint_name) {
      runtime->context = sp.context;
      ++stats_.restores;
      return Status::OK();
    }
  }
  return Status::NotFound("no savepoint '" + savepoint_name + "' in " +
                          dop.ToString());
}

Status ClientTm::Suspend(DopId dop) {
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  // Suspension must survive long absences (and crashes in between):
  // persist the context as a recovery point.
  PersistRecoveryPoint(dop, *runtime);
  runtime->state = DopState::kSuspended;
  ++stats_.suspends;
  return Status::OK();
}

Status ClientTm::Resume(DopId dop) {
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  if (it->second.state != DopState::kSuspended) {
    return Status::FailedPrecondition(dop.ToString() + " is not suspended");
  }
  // "The state seen by the designer after a Resume operation must be
  // equal to that seen when issuing the Suspend command" — the context
  // is exactly as persisted.
  it->second.state = DopState::kActive;
  ++stats_.resumes;
  return Status::OK();
}

Status ClientTm::TakeRecoveryPoint(DopId dop) {
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  PersistRecoveryPoint(dop, *runtime);
  return Status::OK();
}

void ClientTm::PersistRecoveryPoint(DopId dop, const DopRuntime& runtime) {
  RecoveryPoint rp;
  rp.taken_at = clock_->Now();
  rp.sequence = ++rp_sequence_;
  rp.context = runtime.context;
  stable_rp_[dop.value()] = {runtime.da, std::move(rp)};
  auto it = dops_.find(dop);
  if (it != dops_.end()) {
    it->second.work_at_last_rp = runtime.context.work_done;
  }
  ++stats_.recovery_points_taken;
}

Status ClientTm::HandOverContext(DopId from, DopId to) {
  auto from_it = dops_.find(from);
  if (from_it == dops_.end()) {
    return Status::NotFound(from.ToString() + " not known at this client-TM");
  }
  if (from_it->second.state != DopState::kCommitted) {
    return Status::FailedPrecondition(
        "context handover requires a committed predecessor, " +
        from.ToString() + " is " +
        std::string(DopStateToString(from_it->second.state)));
  }
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * to_runtime, ActiveDop(to));
  // The successor inherits the predecessor's loaded inputs and
  // workspace; its own work counter continues from zero.
  uint64_t own_work = to_runtime->context.work_done;
  to_runtime->context = from_it->second.context;
  to_runtime->context.work_done = own_work;
  // The handed-over inputs are the paper's one-shot in-memory shortcut;
  // the DOV cache is deliberately NOT touched here. A same-DA successor
  // needs no help — every live handed-over entry was inserted under
  // that DA at the predecessor's checkout, so its re-checkouts already
  // hit. Widening validation beyond what a server checkout proved
  // would let a handover re-validate a DOV whose grant was withdrawn
  // and re-armed by a different DA in between.
  PersistRecoveryPoint(to, *to_runtime);
  ++stats_.context_handovers;
  return Status::OK();
}

Result<DovId> ClientTm::Checkin(DopId dop, storage::DesignObject object,
                                const std::vector<DovId>& predecessors) {
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  (void)runtime;
  CONCORD_RETURN_NOT_OK(RunCommitProtocol(dop));
  return server_->Checkin(dop, std::move(object), predecessors, clock_->Now());
}

Status ClientTm::CommitDop(DopId dop) {
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  CONCORD_RETURN_NOT_OK(RunCommitProtocol(dop));
  // Sect. 5.2 ordering: server releases derivation locks first, then
  // the client removes savepoints and recovery points.
  CONCORD_RETURN_NOT_OK(server_->CommitDop(dop));
  runtime->savepoints.clear();
  stable_rp_.erase(dop.value());
  runtime->state = DopState::kCommitted;
  return Status::OK();
}

Status ClientTm::AbortDop(DopId dop) {
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  if (it->second.state == DopState::kCommitted ||
      it->second.state == DopState::kAborted) {
    return Status::FailedPrecondition(dop.ToString() + " already finished");
  }
  CONCORD_RETURN_NOT_OK(RunCommitProtocol(dop));
  CONCORD_RETURN_NOT_OK(server_->AbortDop(dop));
  it->second.savepoints.clear();
  stable_rp_.erase(dop.value());
  it->second.state = DopState::kAborted;
  return Status::OK();
}

Result<DopState> ClientTm::StateOf(DopId dop) const {
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  return it->second.state;
}

Result<uint64_t> ClientTm::WorkDone(DopId dop) const {
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  return it->second.context.work_done;
}

void ClientTm::Crash() {
  network_->SetNodeUp(node_, false);
  // The DOV cache is volatile workstation memory: gone, tombstones
  // included (outage-time invalidations are redelivered at recovery).
  cache_.Clear();
  ++stats_.crashes;
  for (auto& [dop, runtime] : dops_) {
    if (runtime.state == DopState::kActive ||
        runtime.state == DopState::kSuspended) {
      // Volatile context and savepoints are lost.
      auto rp_it = stable_rp_.find(dop.value());
      uint64_t preserved =
          rp_it == stable_rp_.end() ? 0
                                    : rp_it->second.second.context.work_done;
      stats_.work_units_lost += runtime.context.work_done - preserved;
      runtime.context = DopContext{};
      runtime.savepoints.clear();
      runtime.state = DopState::kCrashed;
    }
  }
  CONCORD_INFO("client-tm", "workstation " << node_.ToString() << " crashed");
}

Result<uint64_t> ClientTm::Recover() {
  network_->SetNodeUp(node_, true);
  // Drain invalidations the server queued while this workstation was
  // down, BEFORE any DOP resumes: the cache restarts cold, and the
  // redelivered messages plant tombstones so a recovered context's
  // handover cannot re-validate a version withdrawn during the outage.
  // A recovery point itself never re-warms the cache — its inputs were
  // validated at checkout time, and that proof does not survive an
  // outage the workstation could not observe.
  if (invalidations_ != nullptr) invalidations_->FlushPending(node_);
  uint64_t lost_total = 0;
  for (auto& [dop, runtime] : dops_) {
    if (runtime.state != DopState::kCrashed) continue;
    auto rp_it = stable_rp_.find(dop.value());
    if (rp_it != stable_rp_.end()) {
      runtime.context = rp_it->second.second.context;
      runtime.work_at_last_rp = runtime.context.work_done;
    } else {
      runtime.context = DopContext{};
    }
    runtime.state = DopState::kActive;
    ++stats_.dops_recovered;
  }
  lost_total = stats_.work_units_lost;
  return lost_total;
}

}  // namespace concord::txn
