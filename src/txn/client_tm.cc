#include "txn/client_tm.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace concord::txn {

ClientTm::ClientTm(ServerService* service, rpc::Network* network,
                   NodeId workstation, SimClock* clock,
                   rpc::InvalidationBus* invalidations)
    : service_(service),
      network_(network),
      node_(workstation),
      clock_(clock),
      invalidations_(invalidations) {
  if (invalidations_ != nullptr) {
    // The handler runs on the publishing (server) thread and touches
    // only the self-synchronizing cache — never the DOP tables.
    invalidations_->Subscribe(
        node_, [this](const rpc::InvalidationMessage& message) {
          cache_.Invalidate(message.dov);
        });
  }
}

ClientTm::~ClientTm() {
  if (invalidations_ != nullptr) invalidations_->Unsubscribe(node_);
}

Result<ClientTm::DopRuntime*> ClientTm::ActiveDop(DopId dop) {
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  if (it->second.state != DopState::kActive) {
    return Status::FailedPrecondition(
        dop.ToString() + " is " + DopStateToString(it->second.state) +
        ", not active");
  }
  return &it->second;
}

Result<BatchReply> ClientTm::RunCriticalInteraction(
    TxnId txn, std::vector<ServerRequest> ops, bool independent) {
  if (!network_->IsUp(node_)) {
    return Status::Crashed("workstation is down");
  }
  ++two_pc_stats_.protocols_run;
  // Client-side participant leg: co-located with the coordinator, so
  // it takes the main-memory fast path of Sect. 6 — two local hops,
  // no LAN messages.
  ++two_pc_stats_.local_fast_paths;
  if (!network_->Send(node_, node_).ok() || !network_->Send(node_, node_).ok()) {
    ++two_pc_stats_.aborted;
    return Status::Crashed("workstation is down");
  }
  // Server-side legs ride the envelope: phase-1 vote first, the
  // operations, then the phase-2 decision — one round trip for all
  // three where the raw protocol paid two round trips plus the call.
  BatchRequest batch;
  batch.independent = independent;
  batch.ops.reserve(ops.size() + 2);
  batch.ops.emplace_back(PrepareRequest{txn});
  for (ServerRequest& op : ops) batch.ops.push_back(std::move(op));
  batch.ops.emplace_back(DecideRequest{txn, /*commit=*/true});

  auto reply = service_->Execute(batch);
  if (!reply.ok()) {
    // Server unreachable (or retries exhausted): presumed abort.
    ++two_pc_stats_.aborted;
    return Status::Unavailable("client/server TM commit protocol failed: " +
                               reply.status().message());
  }
  if (reply->ops.size() != batch.ops.size()) {
    ++two_pc_stats_.aborted;
    return Status::Internal("server-service reply arity mismatch");
  }
  const auto* vote = std::get_if<PrepareReply>(&reply->ops.front().body);
  if (vote == nullptr || !vote->vote) {
    ++two_pc_stats_.aborted;
    return Status::Aborted("server-TM voted NO in the commit protocol");
  }
  ++two_pc_stats_.committed;
  two_pc_stats_.messages += 2;  // the envelope's request + reply LAN hops
  BatchReply out;
  out.ops.assign(std::make_move_iterator(reply->ops.begin() + 1),
                 std::make_move_iterator(reply->ops.end() - 1));
  return out;
}

Result<DopId> ClientTm::BeginDop(DaId da) {
  if (!network_->IsUp(node_)) {
    return Status::Crashed("workstation is down");
  }
  // DOP ids are namespaced by workstation: every client-TM draws from
  // its own counter, and two workstations with concurrently live DOPs
  // must not collide at the server's registration table.
  DopId dop = DopId((node_.value() << 32) | dop_gen_.Next().value());
  std::vector<ServerRequest> ops;
  ops.emplace_back(BeginDopRequest{dop, da});
  CONCORD_ASSIGN_OR_RETURN(
      BatchReply reply,
      RunCriticalInteraction(TxnId(dop.value()), std::move(ops)));
  CONCORD_RETURN_NOT_OK(reply.ops.front().status);
  DopRuntime runtime;
  runtime.da = da;
  dops_.emplace(dop, std::move(runtime));
  // Initial recovery point: an empty context, so a crash right after
  // Begin-of-DOP recovers to the beginning.
  PersistRecoveryPoint(dop, dops_.at(dop));
  return dop;
}

Status ClientTm::Checkout(DopId dop, DovId dov, bool take_derivation_lock) {
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  // Cache fast path: a DOV this workstation already fetched under the
  // same DA's visibility is served locally — no envelope, no server hop
  // (IsUp is a lock-free atomic read, so warm checkouts never touch
  // the LAN mutex). Derivation-lock requests always go to the server
  // (the lock table lives there), and a down workstation serves
  // nothing.
  if (!take_derivation_lock && network_->IsUp(node_)) {
    auto cached = cache_.Lookup(dov, runtime->da);
    if (cached.ok()) {
      ++stats_.checkouts_from_cache;
      runtime->context.inputs[dov] = std::move(cached->data);
      // "After each checkout operation a recovery point is set"
      // (Sect. 5.2) — cached checkouts included: a crash right after
      // must not re-request the DOV from the server.
      PersistRecoveryPoint(dop, *runtime);
      return Status::OK();
    }
  }
  // Sample the invalidation counter BEFORE the round-trip: if a
  // withdrawal races the checkout, the stale reply must not be cached
  // (InsertIfCurrent refuses it).
  uint64_t inv_seq = cache_.InvalidationSeq(dov);
  std::vector<ServerRequest> ops;
  ops.emplace_back(CheckoutRequest{dop, dov, take_derivation_lock});
  CONCORD_ASSIGN_OR_RETURN(
      BatchReply reply,
      RunCriticalInteraction(TxnId(dop.value()), std::move(ops)));
  CONCORD_RETURN_NOT_OK(reply.ops.front().status);
  auto* body = std::get_if<CheckoutReply>(&reply.ops.front().body);
  if (body == nullptr) {
    return Status::Internal("checkout reply carries no DOV record");
  }
  storage::DovRecord record = std::move(body->record);
  ++stats_.checkouts_from_server;
  runtime->context.inputs[dov] = record.data;
  // The server just ran the visibility tests for this DA: the answer is
  // authoritative and (re-)arms the cache — unless an invalidation
  // push overtook it.
  cache_.InsertIfCurrent(dov, std::move(record), runtime->da, inv_seq);
  // "After each checkout operation a recovery point is set" (Sect 5.2).
  PersistRecoveryPoint(dop, *runtime);
  return Status::OK();
}

Result<storage::DesignObject> ClientTm::Input(DopId dop, DovId dov) const {
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  auto input_it = it->second.context.inputs.find(dov);
  if (input_it == it->second.context.inputs.end()) {
    return Status::NotFound(dov.ToString() + " not checked out by " +
                            dop.ToString());
  }
  return input_it->second;
}

std::vector<DovId> ClientTm::CheckedOut(DopId dop) const {
  std::vector<DovId> out;
  auto it = dops_.find(dop);
  if (it == dops_.end()) return out;
  for (const auto& [dov, obj] : it->second.context.inputs) out.push_back(dov);
  return out;
}

Status ClientTm::PutWorkspace(DopId dop, const std::string& key,
                              storage::DesignObject object) {
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  runtime->context.workspace[key] = std::move(object);
  return Status::OK();
}

Result<storage::DesignObject> ClientTm::GetWorkspace(
    DopId dop, const std::string& key) const {
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  auto ws_it = it->second.context.workspace.find(key);
  if (ws_it == it->second.context.workspace.end()) {
    return Status::NotFound("no workspace object '" + key + "' in " +
                            dop.ToString());
  }
  return ws_it->second;
}

Status ClientTm::DoWork(DopId dop, uint64_t units) {
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  runtime->context.work_done += units;
  stats_.work_units_done += units;
  if (auto_rp_units_ > 0 &&
      runtime->context.work_done - runtime->work_at_last_rp >= auto_rp_units_) {
    PersistRecoveryPoint(dop, *runtime);
  }
  return Status::OK();
}

Status ClientTm::Save(DopId dop, const std::string& savepoint_name) {
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  for (const Savepoint& sp : runtime->savepoints) {
    if (sp.name == savepoint_name) {
      return Status::AlreadyExists("savepoint '" + savepoint_name +
                                   "' already set in " + dop.ToString());
    }
  }
  runtime->savepoints.push_back(
      Savepoint{savepoint_name, clock_->Now(), runtime->context});
  ++stats_.savepoints_taken;
  return Status::OK();
}

Status ClientTm::Restore(DopId dop, const std::string& savepoint_name) {
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  for (const Savepoint& sp : runtime->savepoints) {
    if (sp.name == savepoint_name) {
      runtime->context = sp.context;
      ++stats_.restores;
      return Status::OK();
    }
  }
  return Status::NotFound("no savepoint '" + savepoint_name + "' in " +
                          dop.ToString());
}

Status ClientTm::Suspend(DopId dop) {
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  // Suspension must survive long absences (and crashes in between):
  // persist the context as a recovery point.
  PersistRecoveryPoint(dop, *runtime);
  runtime->state = DopState::kSuspended;
  ++stats_.suspends;
  return Status::OK();
}

Status ClientTm::Resume(DopId dop) {
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  if (it->second.state != DopState::kSuspended) {
    return Status::FailedPrecondition(dop.ToString() + " is not suspended");
  }
  // "The state seen by the designer after a Resume operation must be
  // equal to that seen when issuing the Suspend command" — the context
  // is exactly as persisted.
  it->second.state = DopState::kActive;
  ++stats_.resumes;
  return Status::OK();
}

Status ClientTm::TakeRecoveryPoint(DopId dop) {
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  PersistRecoveryPoint(dop, *runtime);
  return Status::OK();
}

void ClientTm::PersistRecoveryPoint(DopId dop, const DopRuntime& runtime) {
  RecoveryPoint rp;
  rp.taken_at = clock_->Now();
  rp.sequence = ++rp_sequence_;
  rp.context = runtime.context;
  stable_rp_[dop.value()] = {runtime.da, std::move(rp)};
  auto it = dops_.find(dop);
  if (it != dops_.end()) {
    it->second.work_at_last_rp = runtime.context.work_done;
  }
  ++stats_.recovery_points_taken;
}

Status ClientTm::HandOverContext(DopId from, DopId to) {
  auto from_it = dops_.find(from);
  if (from_it == dops_.end()) {
    return Status::NotFound(from.ToString() + " not known at this client-TM");
  }
  if (from_it->second.state != DopState::kCommitted) {
    return Status::FailedPrecondition(
        "context handover requires a committed predecessor, " +
        from.ToString() + " is " +
        std::string(DopStateToString(from_it->second.state)));
  }
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * to_runtime, ActiveDop(to));
  // The successor inherits the predecessor's loaded inputs and
  // workspace; its own work counter continues from zero.
  uint64_t own_work = to_runtime->context.work_done;
  to_runtime->context = from_it->second.context;
  to_runtime->context.work_done = own_work;
  // The handed-over inputs are the paper's one-shot in-memory shortcut;
  // the DOV cache is deliberately NOT touched here. A same-DA successor
  // needs no help — every live handed-over entry was inserted under
  // that DA at the predecessor's checkout, so its re-checkouts already
  // hit. Widening validation beyond what a server checkout proved
  // would let a handover re-validate a DOV whose grant was withdrawn
  // and re-armed by a different DA in between.
  PersistRecoveryPoint(to, *to_runtime);
  ++stats_.context_handovers;
  return Status::OK();
}

void ClientTm::CacheOwnCheckin(const DopRuntime& runtime, DopId dop, DovId dov,
                               storage::DesignObject object,
                               const std::vector<DovId>& predecessors,
                               SimTime created_at) {
  // The workstation knows every field of the record it just created —
  // rebuilding it locally matches the server's image byte for byte
  // (the server stores exactly the shipped object under the creating
  // DOP/DA), so re-reading one's own checkin needs no payload refetch.
  storage::DovRecord record;
  record.id = dov;
  record.owner_da = runtime.da;
  record.created_by = dop;
  record.type = object.type();
  record.data = std::move(object);
  record.predecessors = predecessors;
  record.created_at = created_at;
  if (cache_.InsertIfNeverInvalidated(dov, std::move(record), runtime.da)) {
    ++stats_.checkin_cache_inserts;
  }
}

Result<DovId> ClientTm::Checkin(DopId dop, storage::DesignObject object,
                                const std::vector<DovId>& predecessors) {
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  SimTime created_at = clock_->Now();
  std::vector<ServerRequest> ops;
  ops.emplace_back(CheckinRequest{dop, object, predecessors, created_at});
  CONCORD_ASSIGN_OR_RETURN(
      BatchReply reply,
      RunCriticalInteraction(TxnId(dop.value()), std::move(ops)));
  CONCORD_RETURN_NOT_OK(reply.ops.front().status);
  auto* body = std::get_if<CheckinReply>(&reply.ops.front().body);
  if (body == nullptr) {
    return Status::Internal("checkin reply carries no DOV id");
  }
  CacheOwnCheckin(*runtime, dop, body->dov, std::move(object), predecessors,
                  created_at);
  return body->dov;
}

void ClientTm::FinishCommitted(DopId dop, DopRuntime* runtime) {
  // Sect. 5.2 ordering: the server released derivation locks first,
  // then the client removes savepoints and recovery points.
  runtime->savepoints.clear();
  stable_rp_.erase(dop.value());
  runtime->state = DopState::kCommitted;
}

Result<DovId> ClientTm::CheckinCommit(DopId dop, storage::DesignObject object,
                                      const std::vector<DovId>& predecessors) {
  if (!batching_) {
    CONCORD_ASSIGN_OR_RETURN(DovId dov,
                             Checkin(dop, std::move(object), predecessors));
    CONCORD_RETURN_NOT_OK(CommitDop(dop));
    return dov;
  }
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  SimTime created_at = clock_->Now();
  std::vector<ServerRequest> ops;
  ops.emplace_back(CheckinRequest{dop, object, predecessors, created_at});
  ops.emplace_back(CommitDopRequest{dop});
  CONCORD_ASSIGN_OR_RETURN(
      BatchReply reply,
      RunCriticalInteraction(TxnId(dop.value()), std::move(ops)));
  ++stats_.batched_checkin_commits;
  // Checkin failure: the server skipped the commit request (batch
  // skip-after-failure), so the DOP stays active and the caller sees
  // the typed "checkin failure" — identical to the sequential pair.
  CONCORD_RETURN_NOT_OK(reply.ops[0].status);
  auto* body = std::get_if<CheckinReply>(&reply.ops[0].body);
  if (body == nullptr) {
    return Status::Internal("checkin reply carries no DOV id");
  }
  CONCORD_RETURN_NOT_OK(reply.ops[1].status);
  FinishCommitted(dop, runtime);
  CacheOwnCheckin(*runtime, dop, body->dov, std::move(object), predecessors,
                  created_at);
  return body->dov;
}

Status ClientTm::CommitDop(DopId dop) {
  CONCORD_ASSIGN_OR_RETURN(DopRuntime * runtime, ActiveDop(dop));
  std::vector<ServerRequest> ops;
  ops.emplace_back(CommitDopRequest{dop});
  CONCORD_ASSIGN_OR_RETURN(
      BatchReply reply,
      RunCriticalInteraction(TxnId(dop.value()), std::move(ops)));
  CONCORD_RETURN_NOT_OK(reply.ops.front().status);
  FinishCommitted(dop, runtime);
  return Status::OK();
}

Status ClientTm::AbortDop(DopId dop) {
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  if (it->second.state == DopState::kCommitted ||
      it->second.state == DopState::kAborted) {
    return Status::FailedPrecondition(dop.ToString() + " already finished");
  }
  std::vector<ServerRequest> ops;
  ops.emplace_back(AbortDopRequest{dop});
  CONCORD_ASSIGN_OR_RETURN(
      BatchReply reply,
      RunCriticalInteraction(TxnId(dop.value()), std::move(ops)));
  CONCORD_RETURN_NOT_OK(reply.ops.front().status);
  it->second.savepoints.clear();
  stable_rp_.erase(dop.value());
  it->second.state = DopState::kAborted;
  return Status::OK();
}

Result<DopState> ClientTm::StateOf(DopId dop) const {
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  return it->second.state;
}

Result<uint64_t> ClientTm::WorkDone(DopId dop) const {
  auto it = dops_.find(dop);
  if (it == dops_.end()) {
    return Status::NotFound(dop.ToString() + " not known at this client-TM");
  }
  return it->second.context.work_done;
}

void ClientTm::Crash() {
  network_->SetNodeUp(node_, false);
  // The DOV cache is volatile workstation memory: gone, tombstones
  // included (outage-time invalidations are redelivered at recovery).
  cache_.Clear();
  ++stats_.crashes;
  for (auto& [dop, runtime] : dops_) {
    if (runtime.state == DopState::kActive ||
        runtime.state == DopState::kSuspended) {
      // Volatile context and savepoints are lost.
      auto rp_it = stable_rp_.find(dop.value());
      uint64_t preserved =
          rp_it == stable_rp_.end() ? 0
                                    : rp_it->second.second.context.work_done;
      stats_.work_units_lost += runtime.context.work_done - preserved;
      runtime.context = DopContext{};
      runtime.savepoints.clear();
      runtime.state = DopState::kCrashed;
    }
  }
  CONCORD_INFO("client-tm", "workstation " << node_.ToString() << " crashed");
}

void ClientTm::WarmCacheFromRecoveredContexts(
    const std::vector<DopId>& recovered) {
  // The cache restarted cold and every pre-crash validation proof is
  // void (the workstation could not observe outage-time revocations).
  // Instead of paying one lazy server trip per re-read, revalidate all
  // recovered inputs with ONE BatchRequest: each entry is a real
  // server-side checkout (scope + derivation-lock tests for the DOP's
  // DA), so only still-visible versions re-arm the cache. Runs after
  // FlushPending, so outage-time tombstones are already planted and
  // InsertIfCurrent's seq test stays sound.
  struct Expected {
    DovId dov;
    DaId da;
    uint64_t seq;
  };
  std::vector<ServerRequest> ops;
  std::vector<Expected> expected;
  for (DopId dop : recovered) {
    const DopRuntime& runtime = dops_.at(dop);
    for (const auto& [dov, object] : runtime.context.inputs) {
      ops.emplace_back(CheckoutRequest{dop, dov, false});
      expected.push_back({dov, runtime.da, cache_.InvalidationSeq(dov)});
    }
  }
  if (ops.empty()) return;
  TxnId txn(recovered.front().value());
  // Independent ops: one withdrawn/locked input must not keep the
  // still-visible ones cold.
  auto reply = RunCriticalInteraction(txn, std::move(ops),
                                      /*independent=*/true);
  if (!reply.ok()) return;  // server unreachable: restart cold (just slower)
  for (size_t i = 0; i < reply->ops.size(); ++i) {
    if (!reply->ops[i].status.ok()) continue;  // e.g. withdrawn during outage
    auto* body = std::get_if<CheckoutReply>(&reply->ops[i].body);
    if (body == nullptr) continue;
    if (cache_.InsertIfCurrent(expected[i].dov, std::move(body->record),
                               expected[i].da, expected[i].seq)) {
      ++stats_.recovery_warmup_checkouts;
    }
  }
}

Result<uint64_t> ClientTm::Recover() {
  network_->SetNodeUp(node_, true);
  // Drain invalidations the server queued while this workstation was
  // down, BEFORE any DOP resumes: the cache restarts cold, and the
  // redelivered messages plant tombstones so a recovered context's
  // handover cannot re-validate a version withdrawn during the outage.
  // A recovery point itself never re-warms the cache — its inputs were
  // validated at checkout time, and that proof does not survive an
  // outage the workstation could not observe.
  if (invalidations_ != nullptr) invalidations_->FlushPending(node_);
  uint64_t lost_total = 0;
  std::vector<DopId> recovered;
  for (auto& [dop, runtime] : dops_) {
    if (runtime.state != DopState::kCrashed) continue;
    auto rp_it = stable_rp_.find(dop.value());
    if (rp_it != stable_rp_.end()) {
      runtime.context = rp_it->second.second.context;
      runtime.work_at_last_rp = runtime.context.work_done;
    } else {
      runtime.context = DopContext{};
    }
    runtime.state = DopState::kActive;
    recovered.push_back(dop);
    ++stats_.dops_recovered;
  }
  if (warm_cache_on_recovery_ && !recovered.empty()) {
    WarmCacheFromRecoveredContexts(recovered);
  }
  lost_total = stats_.work_units_lost;
  return lost_total;
}

}  // namespace concord::txn
