#include "txn/placement.h"

#include <algorithm>

#include "common/serde.h"

namespace concord::txn {

void PlacementMap::RegisterNode(NodeId node) {
  MutexLock lock(&mu_);
  if (IsRegisteredLocked(node)) return;
  nodes_.push_back(node);
  load_.emplace(node.value(), 0);
}

std::vector<NodeId> PlacementMap::nodes() const {
  MutexLock lock(&mu_);
  return nodes_;
}

size_t PlacementMap::node_count() const {
  MutexLock lock(&mu_);
  return nodes_.size();
}

bool PlacementMap::IsRegisteredLocked(NodeId node) const {
  return std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end();
}

NodeId PlacementMap::HomeOf(DaId da) const {
  MutexLock lock(&mu_);
  ++stats_.lookups;
  auto it = home_.find(da);
  return it == home_.end() ? NodeId() : it->second;
}

void PlacementMap::SetLivenessProbe(std::function<bool(NodeId)> probe) {
  MutexLock lock(&mu_);
  liveness_ = std::move(probe);
}

NodeId PlacementMap::AssignLeastLoaded(DaId da) {
  MutexLock lock(&mu_);
  auto existing = home_.find(da);
  if (existing != home_.end()) return existing->second;
  if (nodes_.empty()) return NodeId();
  // Prefer live nodes: a crashed node's load counter is low precisely
  // because it is dead, and homing fresh DAs there would stall new
  // work even though the surviving shards are healthy. If the probe
  // reports the whole plane down, fall back to pure least-loaded.
  NodeId best;
  for (NodeId node : nodes_) {
    if (liveness_ && !liveness_(node)) continue;
    if (!best.valid() || load_[node.value()] < load_[best.value()]) {
      best = node;
    }
  }
  if (!best.valid()) {
    best = nodes_.front();
    for (NodeId node : nodes_) {
      if (load_[node.value()] < load_[best.value()]) best = node;
    }
  }
  home_.emplace(da, best);
  ++load_[best.value()];
  ++stats_.assignments;
  return best;
}

Status PlacementMap::Assign(DaId da, NodeId node) {
  MutexLock lock(&mu_);
  if (!IsRegisteredLocked(node)) {
    return Status::InvalidArgument(node.ToString() +
                                   " is not a registered server node");
  }
  auto it = home_.find(da);
  if (it != home_.end()) {
    if (it->second == node) return Status::OK();
    --load_[it->second.value()];
    it->second = node;
  } else {
    home_.emplace(da, node);
    ++stats_.assignments;
  }
  ++load_[node.value()];
  return Status::OK();
}

Result<NodeId> PlacementMap::Migrate(DaId da, NodeId to) {
  MutexLock lock(&mu_);
  if (!IsRegisteredLocked(to)) {
    return Status::InvalidArgument(to.ToString() +
                                   " is not a registered server node");
  }
  auto it = home_.find(da);
  if (it == home_.end()) {
    return Status::NotFound(da.ToString() + " has no placement to migrate");
  }
  NodeId from = it->second;
  if (from == to) return from;
  --load_[from.value()];
  ++load_[to.value()];
  it->second = to;
  ++stats_.migrations;
  return from;
}

void PlacementMap::Release(DaId da) {
  MutexLock lock(&mu_);
  auto it = home_.find(da);
  if (it == home_.end()) return;
  --load_[it->second.value()];
  home_.erase(it);
}

PlacementStats PlacementMap::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void RegisterPlacementService(const PlacementMap* placement,
                              rpc::TransactionalRpc* rpc,
                              NodeId authority_node) {
  rpc->RegisterHandler(
      authority_node, kPlacementMethod,
      [placement](const std::string& request) -> Result<std::string> {
        ByteReader in(request);
        uint64_t da_value = 0;
        if (!in.ReadFixed64(&da_value) || in.remaining() != 0) {
          return Status::InvalidArgument("malformed placement lookup");
        }
        std::string reply;
        PutFixed64(&reply, placement->HomeOf(DaId(da_value)).value());
        return reply;
      });
}

Result<NodeId> PlacementClient::HomeOf(DaId da) {
  {
    MutexLock lock(&mu_);
    ++stats_.lookups;
    auto it = cache_.find(da);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      return it->second;
    }
  }
  std::string request;
  PutFixed64(&request, da.value());
  CONCORD_ASSIGN_OR_RETURN(std::string wire,
                           rpc_->Call(client_, authority_, kPlacementMethod,
                                      request));
  ByteReader in(wire);
  uint64_t node_value = 0;
  if (!in.ReadFixed64(&node_value)) {
    return Status::Internal("malformed placement reply");
  }
  NodeId home(node_value);
  if (!home.valid()) {
    // Unknown DAs are not cached: the authority may learn the
    // placement (InitDesign) right after this miss.
    return Status::NotFound("placement authority knows no home for " +
                            da.ToString());
  }
  MutexLock lock(&mu_);
  ++stats_.fetches;
  cache_[da] = home;
  return home;
}

void PlacementClient::Forget(DaId da) {
  MutexLock lock(&mu_);
  ++stats_.invalidations;
  cache_.erase(da);
}

PlacementClientStats PlacementClient::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace concord::txn
