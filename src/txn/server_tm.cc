#include "txn/server_tm.h"

#include <utility>

#include "common/logging.h"
#include "txn/dop_context.h"

namespace concord::txn {

const char* DopStateToString(DopState state) {
  switch (state) {
    case DopState::kActive:
      return "active";
    case DopState::kSuspended:
      return "suspended";
    case DopState::kCommitted:
      return "committed";
    case DopState::kAborted:
      return "aborted";
    case DopState::kCrashed:
      return "crashed";
  }
  return "?";
}

ServerTm::ServerTm(storage::Repository* repository, rpc::Network* network,
                   NodeId server_node, ScopeAuthority* scope_authority,
                   rpc::InvalidationBus* invalidations)
    : repository_(repository),
      network_(network),
      node_(server_node),
      scope_authority_(scope_authority),
      invalidations_(invalidations) {}

Result<DaId> ServerTm::LookupDop(DopId dop) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dop_da_.find(dop);
  if (it != dop_da_.end()) return it->second;
  if (lost_dops_.count(dop)) {
    ++stats_.unknown_dop_requests;
    return Status::UnknownDop(dop.ToString() +
                              " was registered before a server crash; "
                              "begin a new DOP");
  }
  return Status::NotFound(dop.ToString() + " not registered at server-TM");
}

Status ServerTm::CheckOwnsDa(DaId da) const {
  if (placement_ == nullptr) return Status::OK();
  NodeId home = placement_->HomeOf(da);
  if (!home.valid() || home == node_) return Status::OK();
  ++stats_.wrong_shard_requests;
  return Status::WrongShard(da.ToString() + " is homed on " + home.ToString() +
                            ", not on " + node_.ToString() +
                            " (stale placement cache?)");
}

Status ServerTm::BeginDop(DopId dop, DaId da) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dop_da_.find(dop);
  if (it != dop_da_.end()) {
    // Idempotent re-registration: participant enlistment may repeat a
    // Begin-of-DOP whose first reply was lost after the server
    // executed it — same (DOP, DA) pair must not wedge the retry.
    if (it->second == da) return Status::OK();
    return Status::AlreadyExists(dop.ToString() + " already registered for " +
                                 it->second.ToString());
  }
  dop_da_.emplace(dop, da);
  // A fresh registration supersedes a pre-crash incarnation of the id.
  lost_dops_.erase(dop);
  ++stats_.dops_begun;
  return Status::OK();
}

Result<storage::DovRecord> ServerTm::Checkout(DopId dop, DovId dov,
                                              bool take_derivation_lock) {
  CONCORD_ASSIGN_OR_RETURN(DaId da, LookupDop(dop));

  locks_.AcquireShort(dov);
  // Test 1: the DOV must belong to the scope of the DOP's DA.
  if (!scope_authority_->InScope(da, dov)) {
    locks_.ReleaseShort(dov);
    ++stats_.checkouts_denied_scope;
    return Status::PermissionDenied(dov.ToString() + " is not in the scope of " +
                                    da.ToString());
  }
  // Test 2: no incompatible derivation lock.
  DaId holder = locks_.DerivationHolder(dov);
  if (holder.valid() && holder != da) {
    locks_.ReleaseShort(dov);
    ++stats_.checkouts_denied_lock;
    return Status::LockConflict(dov.ToString() + " derivation-locked by " +
                                holder.ToString());
  }
  if (take_derivation_lock) {
    Status st = locks_.AcquireDerivation(dov, da);
    if (!st.ok()) {
      locks_.ReleaseShort(dov);
      ++stats_.checkouts_denied_lock;
      return st;
    }
    std::lock_guard<std::mutex> lock(mu_);
    dop_derivation_locks_[dop].push_back(dov);
  }
  auto record = repository_->Get(dov);
  locks_.ReleaseShort(dov);
  if (take_derivation_lock) PublishDerivationLock(dov, da);
  if (!record.ok()) return record.status();
  ++stats_.checkouts;
  return record;
}

void ServerTm::PublishDerivationLock(DovId dov, DaId da) {
  if (invalidations_ == nullptr) return;
  // Any workstation may hold this DOV in its cache from before the
  // lock existed; a local hit there would dodge the compatibility
  // test that just started failing. Push the lock as an invalidation
  // so the next checkout anywhere is forced to the server. Published
  // after the short lock is dropped (the fan-out is one LAN hop per
  // workstation — far too slow to hold a lock across) but before
  // this checkout returns, so by the time the holder can act on the
  // reply no cache serves the version. The push reaches the holder's
  // own workstation too and bumps its invalidation seq, so this
  // checkout's own reply is refused by InsertIfCurrent —
  // deliberately conservative: the holder's next plain re-read pays
  // one server trip and re-arms the cache then. (Excluding the
  // holder's node would be unsound: another DA on the same
  // workstation could keep hitting its cached copy.)
  rpc::InvalidationMessage message;
  message.kind = rpc::InvalidationMessage::Kind::kDerivationLocked;
  message.dov = dov;
  message.origin_da = da;
  // This node owns the DOV and the lock: it pays the fan-out hops.
  message.origin_node = node_;
  invalidations_->Publish(message);
}

Status ServerTm::ApplyCheckin(storage::DovRecord record) {
  DovId new_id = record.id;
  DaId da = record.owner_da;
  DopId dop = record.created_by;
  locks_.AcquireShort(new_id);
  TxnId txn = repository_->Begin();
  Status st = repository_->Put(txn, std::move(record));
  if (st.ok()) st = repository_->Commit(txn);
  if (!st.ok()) {
    repository_->Abort(txn).ok();
    locks_.ReleaseShort(new_id);
    ++stats_.checkin_failures;
    CONCORD_INFO("server-tm", "checkin failure for " << dop.ToString() << ": "
                                                     << st.ToString());
    return st;
  }
  // The new DOV now belongs to the scope of the DOP's DA.
  locks_.SetScopeOwner(new_id, da);
  locks_.ReleaseShort(new_id);
  ++stats_.checkins;
  return Status::OK();
}

Result<DovId> ServerTm::Checkin(DopId dop, storage::DesignObject object,
                                const std::vector<DovId>& predecessors,
                                SimTime created_at) {
  CONCORD_ASSIGN_OR_RETURN(DaId da, LookupDop(dop));
  // In a sharded plane the new DOV must be created on (and id-stamped
  // by) the DA's home node; a checkin routed here via a stale
  // workstation placement cache is rejected with the typed status the
  // client-TM refreshes on.
  CONCORD_RETURN_NOT_OK(CheckOwnsDa(da));

  storage::DovRecord record;
  record.id = repository_->NextDovId();
  record.owner_da = da;
  record.created_by = dop;
  record.type = object.type();
  record.data = std::move(object);
  record.predecessors = predecessors;
  record.created_at = created_at;
  DovId new_id = record.id;
  CONCORD_RETURN_NOT_OK(ApplyCheckin(std::move(record)));
  return new_id;
}

Status ServerTm::FinishDop(DopId dop, std::atomic<uint64_t>* outcome_counter) {
  // End-of-DOP, either outcome: deregister and release the DOP's
  // derivation locks ("the server-TM is firstly asked to release the
  // derivation locks held", Sect. 5.2). The registration and lock list
  // are extracted under mu_; the lock-manager calls run outside it
  // (leaf-mutex discipline).
  DaId da;
  std::vector<DovId> held;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = dop_da_.find(dop);
    if (it == dop_da_.end()) {
      if (lost_dops_.count(dop)) {
        ++stats_.unknown_dop_requests;
        return Status::UnknownDop(dop.ToString() +
                                  " was registered before a server crash");
      }
      return Status::NotFound(dop.ToString() + " not registered at server-TM");
    }
    da = it->second;
    auto locks_it = dop_derivation_locks_.find(dop);
    if (locks_it != dop_derivation_locks_.end()) {
      held = std::move(locks_it->second);
      dop_derivation_locks_.erase(locks_it);
    }
    dop_da_.erase(it);
  }
  for (DovId dov : held) {
    locks_.ReleaseDerivation(dov, da).ok();
  }
  ++*outcome_counter;
  return Status::OK();
}

Status ServerTm::CommitDop(DopId dop) {
  return FinishDop(dop, &stats_.dops_committed);
}

Status ServerTm::AbortDop(DopId dop) {
  return FinishDop(dop, &stats_.dops_aborted);
}

Result<DaId> ServerTm::DaOfDop(DopId dop) const { return LookupDop(dop); }

// --- Cross-shard 2PC ledger ------------------------------------------------

Status ServerTm::PrepareBeginDop(TxnId txn, DopId dop, DaId da) {
  // Registrations are enlistment, not data: they apply immediately and
  // SURVIVE a Decide(abort), exactly like the degenerate single-node
  // envelope (where a failed checkin skips the commit but leaves the
  // Begin-of-DOP standing). The client records the node as a
  // participant on the Begin reply, so both sides agree the node is
  // enlisted whatever the transaction's outcome — End-of-DOP releases
  // the registration either way.
  (void)txn;
  return BeginDop(dop, da);
}

Result<storage::DovRecord> ServerTm::PrepareCheckout(
    TxnId txn, DopId dop, DovId dov, bool take_derivation_lock) {
  auto record = Checkout(dop, dov, take_derivation_lock);
  if (record.ok() && take_derivation_lock) {
    auto da = LookupDop(dop);
    if (da.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      prepared_[txn].acquired_locks.emplace_back(dov, *da);
    }
  }
  return record;
}

Result<DovId> ServerTm::PrepareCheckin(TxnId txn, DopId dop,
                                       storage::DesignObject object,
                                       const std::vector<DovId>& predecessors,
                                       SimTime created_at) {
  CONCORD_ASSIGN_OR_RETURN(DaId da, LookupDop(dop));
  CONCORD_RETURN_NOT_OK(CheckOwnsDa(da));
  // Run the integrity test now — the vote must be honest — but publish
  // nothing: the record reaches the repository only at Decide(commit).
  // The check is deterministic (the schema is fixed at design start),
  // so a prepared checkin cannot fail integrity at apply time.
  Status integrity = repository_->schema().Validate(object);
  if (!integrity.ok()) {
    ++stats_.checkin_failures;
    CONCORD_INFO("server-tm", "prepare-checkin integrity failure for "
                                  << dop.ToString() << ": "
                                  << integrity.ToString());
    return integrity;
  }
  storage::DovRecord record;
  record.id = repository_->NextDovId();
  record.owner_da = da;
  record.created_by = dop;
  record.type = object.type();
  record.data = std::move(object);
  record.predecessors = predecessors;
  record.created_at = created_at;
  DovId new_id = record.id;
  std::lock_guard<std::mutex> lock(mu_);
  prepared_[txn].staged_checkins.push_back(std::move(record));
  return new_id;
}

Status ServerTm::PrepareFinish(TxnId txn, DopId dop, bool commit_outcome) {
  // Validate now so the reply carries the typed registration failure
  // (kUnknownDop after a crash, kNotFound for a stranger) before the
  // coordinator decides; the actual release happens at Decide(commit).
  CONCORD_RETURN_NOT_OK(LookupDop(dop).status());
  std::lock_guard<std::mutex> lock(mu_);
  prepared_[txn].staged_finishes.push_back({dop, commit_outcome});
  return Status::OK();
}

Status ServerTm::Decide(TxnId txn, bool commit) {
  PreparedTxn staged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = prepared_.find(txn);
    if (it == prepared_.end()) {
      // Nothing staged: either this node's phase 1 held only immediate
      // operations, the decision already arrived, or a crash wiped the
      // ledger (presumed abort — the crash also wiped everything a
      // commit would have touched). All are safe to acknowledge.
      return Status::OK();
    }
    staged = std::move(it->second);
    prepared_.erase(it);
    ++stats_.txns_prepared;
  }
  if (!commit) {
    // Presumed-abort cleanup: drop the staged effects and release the
    // derivation locks phase-1 checkouts acquired. Registrations
    // created by the transaction's Begin-of-DOP stay — see
    // PrepareBeginDop — so the client's participant list and this
    // node's table keep agreeing after an abort.
    for (const auto& [dov, da] : staged.acquired_locks) {
      locks_.ReleaseDerivation(dov, da).ok();
    }
    ++stats_.txns_decided_abort;
    return Status::OK();
  }
  Status first_error = Status::OK();
  for (storage::DovRecord& record : staged.staged_checkins) {
    Status st = ApplyCheckin(std::move(record));
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  for (const PreparedTxn::StagedFinish& finish : staged.staged_finishes) {
    Status st = finish.commit_outcome ? CommitDop(finish.dop)
                                      : AbortDop(finish.dop);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  ++stats_.txns_decided_commit;
  return first_error;
}

bool ServerTm::HasPrepared(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  return prepared_.count(txn) > 0;
}

void ServerTm::Crash() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [dop, da] : dop_da_) lost_dops_.insert(dop);
    dop_da_.clear();
    dop_derivation_locks_.clear();
    // The 2PC ledger is volatile: staged transactions die undecided,
    // which is exactly the presumed-abort outcome.
    prepared_.clear();
  }
  locks_.ReleaseAll();
  repository_->Crash();
  network_->SetNodeUp(node_, false);
}

Status ServerTm::Recover() {
  // Rebuild the repository before advertising the node as up: with
  // real on-disk stable storage, replay can fail (corrupt snapshot,
  // unreadable segment), and a node whose committed state is missing
  // must not accept traffic.
  CONCORD_RETURN_NOT_OK(repository_->Recover());
  network_->SetNodeUp(node_, true);
  return Status::OK();
}

}  // namespace concord::txn
