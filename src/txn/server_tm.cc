#include "txn/server_tm.h"

#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/serde.h"
#include "storage/wal_codec.h"
#include "txn/dop_context.h"

namespace concord::txn {

namespace {

/// Meta-table key prefix of the durable 2PC ledger.
constexpr const char* kPreparedMetaPrefix = "2pc/";

std::string PreparedLedgerKey(TxnId txn) {
  return kPreparedMetaPrefix + std::to_string(txn.value());
}

}  // namespace

const char* DopStateToString(DopState state) {
  switch (state) {
    case DopState::kActive:
      return "active";
    case DopState::kSuspended:
      return "suspended";
    case DopState::kCommitted:
      return "committed";
    case DopState::kAborted:
      return "aborted";
    case DopState::kCrashed:
      return "crashed";
  }
  return "?";
}

ServerTm::ServerTm(storage::Repository* repository, rpc::Network* network,
                   NodeId server_node, ScopeAuthority* scope_authority,
                   rpc::InvalidationBus* invalidations, int partitions,
                   bool pin_executor_cores)
    : repository_(repository),
      network_(network),
      node_(server_node),
      scope_authority_(scope_authority),
      invalidations_(invalidations),
      engine_(partitions < 1 ? 1 : static_cast<size_t>(partitions),
              pin_executor_cores),
      locks_(engine_.count()) {
  parts_.reserve(engine_.count());
  for (size_t p = 0; p < engine_.count(); ++p) {
    parts_.push_back(std::make_unique<Partition>());
  }
  // Line the repository's sub-shards up with the executor partitions so
  // every partition's DOV traffic stays on buckets it exclusively owns.
  // A repository that already carries traffic keeps its sharding (the
  // gate still stripes correctly — ownership is just coarser).
  Status st = repository_->SetExecutionPartitions(engine_.count());
  if (!st.ok()) {
    CONCORD_INFO("server-tm",
                 "repository keeps its sharding: " << st.ToString());
  }
}

ServerTm::~ServerTm() {
  // Join the executors FIRST: after Stop() no task can race the
  // destruction of parts_ and locks_ below.
  engine_.Stop();
}

Result<DaId> ServerTm::LookupDopIn(const Partition& part, DopId dop) const {
  MutexLock lock(&part.mu);
  auto it = part.dop_da.find(dop);
  if (it != part.dop_da.end()) return it->second;
  if (part.lost_dops.count(dop)) {
    ++part.counters.unknown_dop_requests;
    return Status::UnknownDop(dop.ToString() +
                              " was registered before a server crash; "
                              "begin a new DOP");
  }
  return Status::NotFound(dop.ToString() + " not registered at server-TM");
}

Result<DaId> ServerTm::LookupDop(DopId dop) const {
  size_t p = DopPart(dop);
  const Partition& part = *parts_[p];
  return engine_.Run(
      p, [&]() -> Result<DaId> { return LookupDopIn(part, dop); });
}

Status ServerTm::CheckOwnsDa(const Partition& part, DaId da) const {
  if (placement_ == nullptr) return Status::OK();
  NodeId home = placement_->HomeOf(da);
  if (!home.valid() || home == node_) return Status::OK();
  ++part.counters.wrong_shard_requests;
  return Status::WrongShard(da.ToString() + " is homed on " + home.ToString() +
                            ", not on " + node_.ToString() +
                            " (stale placement cache?)");
}

Status ServerTm::BeginDopIn(Partition& part, DopId dop, DaId da) {
  MutexLock lock(&part.mu);
  auto it = part.dop_da.find(dop);
  if (it != part.dop_da.end()) {
    // Idempotent re-registration: participant enlistment may repeat a
    // Begin-of-DOP whose first reply was lost after the server
    // executed it — same (DOP, DA) pair must not wedge the retry.
    if (it->second == da) return Status::OK();
    return Status::AlreadyExists(dop.ToString() +
                                 " already registered for " +
                                 it->second.ToString());
  }
  part.dop_da.emplace(dop, da);
  // A fresh registration supersedes a pre-crash incarnation of the id.
  part.lost_dops.erase(dop);
  ++part.counters.dops_begun;
  return Status::OK();
}

Status ServerTm::BeginDop(DopId dop, DaId da) {
  size_t p = DopPart(dop);
  Partition& part = *parts_[p];
  return engine_.Run(p,
                     [&]() -> Status { return BeginDopIn(part, dop, da); });
}

ServerTm::CheckoutStep ServerTm::CheckoutStepIn(size_t pv, DovId dov, DaId da,
                                                bool take_derivation_lock) {
  // Executor-resident: the lock-table slice and repository sub-shard
  // below belong to partition pv.
  CONCORD_ASSERT_ON_PARTITION(pv);
  CheckoutStep step;
  LockManager& slice = locks_.Slice(pv);
  Partition& part = *parts_[pv];
  // Test 2 (test 1, the scope check, ran on the dispatcher): no
  // incompatible derivation lock.
  DaId holder = slice.DerivationHolder(dov);
  if (holder.valid() && holder != da) {
    slice.ReleaseShort(dov);
    ++part.counters.checkouts_denied_lock;
    step.status = Status::LockConflict(dov.ToString() +
                                       " derivation-locked by " +
                                       holder.ToString());
    return step;
  }
  if (take_derivation_lock) {
    Status st = slice.AcquireDerivation(dov, da);
    if (!st.ok()) {
      slice.ReleaseShort(dov);
      ++part.counters.checkouts_denied_lock;
      step.status = st;
      return step;
    }
    step.lock_acquired = true;
  }
  auto record = repository_->Get(dov);
  slice.ReleaseShort(dov);
  if (!record.ok()) {
    step.status = record.status();
    return step;
  }
  step.status = Status::OK();
  step.record = std::move(*record);
  ++part.counters.checkouts;
  return step;
}

void ServerTm::RecordHeldLock(DopId dop, DovId dov) {
  size_t p = DopPart(dop);
  Partition& part = *parts_[p];
  engine_.Run(p, [&] {
    MutexLock lock(&part.mu);
    part.dop_derivation_locks[dop].push_back(dov);
  });
}

Result<storage::DovRecord> ServerTm::Checkout(DopId dop, DovId dov,
                                              bool take_derivation_lock) {
  CONCORD_ASSIGN_OR_RETURN(DaId da, LookupDop(dop));

  size_t pv = DovPart(dov);
  Partition& vpart = *parts_[pv];
  // The short lock and the scope test run on the dispatcher: the scope
  // authority may re-enter the cooperation manager's recursive mutex,
  // which THIS thread may already hold (event delivery running a tool)
  // — an executor-side callout would deadlock against it. The short
  // lock is accounting (a depth counter), so taking it off the owning
  // executor is safe.
  locks_.Slice(pv).AcquireShort(dov);
  // Test 1: the DOV must belong to the scope of the DOP's DA.
  if (!scope_authority_->InScope(da, dov)) {
    locks_.Slice(pv).ReleaseShort(dov);
    ++vpart.counters.checkouts_denied_scope;
    return Status::PermissionDenied(dov.ToString() +
                                    " is not in the scope of " +
                                    da.ToString());
  }
  if (DopPart(dop) != pv) ++vpart.counters.cross_partition_ops;
  CheckoutStep step = engine_.Run(
      pv, [&] { return CheckoutStepIn(pv, dov, da, take_derivation_lock); });
  if (step.lock_acquired) {
    RecordHeldLock(dop, dov);
    PublishDerivationLock(dov, da);
  }
  if (!step.status.ok()) return step.status;
  return std::move(*step.record);
}

std::vector<Result<storage::DovRecord>> ServerTm::CheckoutBatch(
    const std::vector<CheckoutOp>& ops) {
  // Choreography: posts wavefronts and waits on their futures — doing
  // that from an executor would deadlock the mailbox.
  CONCORD_ASSERT_OFF_EXECUTOR();
  size_t partitions = engine_.count();
  std::vector<Result<storage::DovRecord>> results(
      ops.size(), Result<storage::DovRecord>(
                      Status::Internal("batch slot not resolved")));
  if (ops.empty()) return results;
  ++parts_[0]->counters.pipelined_batches;
  parts_[0]->counters.pipelined_ops += ops.size();

  // Wavefront 1 — registration lookups, one task per DOP partition
  // carrying all of its ops.
  std::vector<DaId> das(ops.size());
  std::vector<Status> lookups(ops.size(), Status::OK());
  {
    std::vector<std::vector<size_t>> by_part(partitions);
    for (size_t i = 0; i < ops.size(); ++i) {
      by_part[DopPart(ops[i].dop)].push_back(i);
    }
    std::vector<std::future<void>> done;
    for (size_t p = 0; p < partitions; ++p) {
      if (by_part[p].empty()) continue;
      const std::vector<size_t>* group = &by_part[p];
      done.push_back(engine_.Post(p, [this, p, group, &ops, &das, &lookups] {
        for (size_t i : *group) {
          auto da = LookupDopIn(*parts_[p], ops[i].dop);
          if (da.ok()) {
            das[i] = *da;
          } else {
            lookups[i] = da.status();
          }
        }
      }));
    }
    for (auto& f : done) f.get();
  }

  // Dispatcher interlude — short locks and scope tests (the scope
  // authority must be called from this thread; see Checkout).
  std::vector<char> runnable(ops.size(), 0);
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!lookups[i].ok()) {
      results[i] = lookups[i];
      continue;
    }
    DovId dov = ops[i].dov;
    size_t pv = DovPart(dov);
    locks_.Slice(pv).AcquireShort(dov);
    if (!scope_authority_->InScope(das[i], dov)) {
      locks_.Slice(pv).ReleaseShort(dov);
      ++parts_[pv]->counters.checkouts_denied_scope;
      results[i] = Status::PermissionDenied(
          dov.ToString() + " is not in the scope of " + das[i].ToString());
      continue;
    }
    if (DopPart(ops[i].dop) != pv) ++parts_[pv]->counters.cross_partition_ops;
    runnable[i] = 1;
  }

  // Wavefront 2 — the lock tests and repository reads, one task per
  // DOV partition carrying all of its ops: an envelope spanning K
  // partitions keeps K executors busy at once.
  std::vector<CheckoutStep> steps(ops.size());
  {
    std::vector<std::vector<size_t>> by_part(partitions);
    for (size_t i = 0; i < ops.size(); ++i) {
      if (runnable[i]) by_part[DovPart(ops[i].dov)].push_back(i);
    }
    std::vector<std::future<void>> done;
    for (size_t p = 0; p < partitions; ++p) {
      if (by_part[p].empty()) continue;
      const std::vector<size_t>* group = &by_part[p];
      done.push_back(engine_.Post(p, [this, p, group, &ops, &das, &steps] {
        for (size_t i : *group) {
          steps[i] = CheckoutStepIn(p, ops[i].dov, das[i],
                                    ops[i].take_derivation_lock);
        }
      }));
    }
    for (auto& f : done) f.get();
  }

  // Dispatcher epilogue — held-lock records, invalidation pushes, and
  // the positional results.
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!runnable[i]) continue;
    CheckoutStep& step = steps[i];
    if (step.lock_acquired) {
      RecordHeldLock(ops[i].dop, ops[i].dov);
      PublishDerivationLock(ops[i].dov, das[i]);
    }
    if (!step.status.ok()) {
      results[i] = step.status;
    } else {
      results[i] = std::move(*step.record);
    }
  }
  return results;
}

std::vector<ServerTm::IndependentOpResult> ServerTm::ExecuteIndependentBatch(
    const std::vector<IndependentOp>& ops) {
  using Kind = IndependentOp::Kind;
  // Choreography: posts wavefronts and waits on their futures — doing
  // that from an executor would deadlock the mailbox.
  CONCORD_ASSERT_OFF_EXECUTOR();
  size_t partitions = engine_.count();
  std::vector<IndependentOpResult> results(ops.size());
  if (ops.empty()) return results;
  ++parts_[0]->counters.pipelined_batches;
  parts_[0]->counters.pipelined_ops += ops.size();

  /// One wavefront: eligible op indices grouped by `part_of(i)`, ONE
  /// task per partition running `body(i)` over its group in envelope
  /// order.
  auto wavefront = [&](auto part_of, auto eligible, auto body) {
    std::vector<std::vector<size_t>> by_part(partitions);
    for (size_t i = 0; i < ops.size(); ++i) {
      if (eligible(i)) by_part[part_of(i)].push_back(i);
    }
    std::vector<std::future<void>> done;
    for (size_t p = 0; p < partitions; ++p) {
      if (by_part[p].empty()) continue;
      const std::vector<size_t>* group = &by_part[p];
      done.push_back(engine_.Post(p, [group, &body] {
        for (size_t i : *group) body(i);
      }));
    }
    for (auto& f : done) f.get();
  };

  // Wavefront 0 — Begin-of-DOP registrations. They fan out BEFORE the
  // lookups: an envelope may open a DOP and check out into it.
  wavefront(
      [&](size_t i) { return DopPart(ops[i].dop); },
      [&](size_t i) { return ops[i].kind == Kind::kBeginDop; },
      [&](size_t i) {
        results[i].status =
            BeginDopIn(*parts_[DopPart(ops[i].dop)], ops[i].dop, ops[i].da);
      });

  // Wavefront 1 — registration lookups for checkouts and DA-of-DOP
  // reads, one task per DOP partition.
  std::vector<DaId> das(ops.size());
  std::vector<Status> lookups(ops.size(), Status::OK());
  wavefront(
      [&](size_t i) { return DopPart(ops[i].dop); },
      [&](size_t i) {
        return ops[i].kind == Kind::kCheckout || ops[i].kind == Kind::kDaOfDop;
      },
      [&](size_t i) {
        auto da = LookupDopIn(*parts_[DopPart(ops[i].dop)], ops[i].dop);
        if (ops[i].kind == Kind::kDaOfDop) {
          if (da.ok()) results[i].da = *da;
          results[i].status = da.status();
        } else if (da.ok()) {
          das[i] = *da;
        } else {
          lookups[i] = da.status();
        }
      });

  // Dispatcher interlude — short locks and scope tests for the
  // runnable checkouts (the scope authority must be called from this
  // thread; see Checkout).
  std::vector<char> runnable(ops.size(), 0);
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind != Kind::kCheckout) continue;
    if (!lookups[i].ok()) {
      results[i].status = lookups[i];
      continue;
    }
    DovId dov = ops[i].dov;
    size_t pv = DovPart(dov);
    locks_.Slice(pv).AcquireShort(dov);
    if (!scope_authority_->InScope(das[i], dov)) {
      locks_.Slice(pv).ReleaseShort(dov);
      ++parts_[pv]->counters.checkouts_denied_scope;
      results[i].status = Status::PermissionDenied(
          dov.ToString() + " is not in the scope of " + das[i].ToString());
      continue;
    }
    if (DopPart(ops[i].dop) != pv) ++parts_[pv]->counters.cross_partition_ops;
    runnable[i] = 1;
  }

  // Wavefront 2 — checkout lock tests and repository reads, one task
  // per DOV partition.
  std::vector<CheckoutStep> steps(ops.size());
  wavefront(
      [&](size_t i) { return DovPart(ops[i].dov); },
      [&](size_t i) { return runnable[i] != 0; },
      [&](size_t i) {
        steps[i] = CheckoutStepIn(DovPart(ops[i].dov), ops[i].dov, das[i],
                                  ops[i].take_derivation_lock);
      });

  // Dispatcher epilogue — held-lock records, invalidation pushes, and
  // the positional checkout results. Runs BEFORE the End-of-DOP
  // wavefront so a lock-taking checkout and its DOP's finish in one
  // envelope release the just-recorded lock, like the serial path.
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!runnable[i]) continue;
    CheckoutStep& step = steps[i];
    if (step.lock_acquired) {
      RecordHeldLock(ops[i].dop, ops[i].dov);
      PublishDerivationLock(ops[i].dov, das[i]);
    }
    if (step.status.ok()) {
      results[i].record = std::move(step.record);
    }
    results[i].status = std::move(step.status);
  }

  // Wavefront 3 — End-of-DOP extractions, one task per DOP partition;
  // the derivation-lock releases then fan out per DOV partition in one
  // combined pass.
  std::vector<std::vector<DovId>> held(ops.size());
  wavefront(
      [&](size_t i) { return DopPart(ops[i].dop); },
      [&](size_t i) {
        return ops[i].kind == Kind::kCommitDop ||
               ops[i].kind == Kind::kAbortDop;
      },
      [&](size_t i) {
        results[i].status = FinishExtractIn(*parts_[DopPart(ops[i].dop)],
                                            ops[i].dop, &das[i], &held[i]);
      });
  std::vector<std::pair<DovId, DaId>> releases;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind != Kind::kCommitDop && ops[i].kind != Kind::kAbortDop) {
      continue;
    }
    if (!results[i].status.ok()) continue;
    for (DovId dov : held[i]) releases.emplace_back(dov, das[i]);
    Partition& part = *parts_[DopPart(ops[i].dop)];
    if (ops[i].kind == Kind::kCommitDop) {
      ++part.counters.dops_committed;
    } else {
      ++part.counters.dops_aborted;
    }
  }
  ReleaseDerivationLocks(releases);
  return results;
}

void ServerTm::PublishDerivationLock(DovId dov, DaId da) {
  // Dispatcher thread only — the bus fans out over the network and may
  // re-enter workstation-side locks (see the rationale below).
  CONCORD_ASSERT_OFF_EXECUTOR();
  if (invalidations_ == nullptr) return;
  // Any workstation may hold this DOV in its cache from before the
  // lock existed; a local hit there would dodge the compatibility
  // test that just started failing. Push the lock as an invalidation
  // so the next checkout anywhere is forced to the server. Published
  // after the short lock is dropped (the fan-out is one LAN hop per
  // workstation — far too slow to hold a lock across) but before
  // this checkout returns, so by the time the holder can act on the
  // reply no cache serves the version. The push reaches the holder's
  // own workstation too and bumps its invalidation seq, so this
  // checkout's own reply is refused by InsertIfCurrent —
  // deliberately conservative: the holder's next plain re-read pays
  // one server trip and re-arms the cache then. (Excluding the
  // holder's node would be unsound: another DA on the same
  // workstation could keep hitting its cached copy.) The publish runs
  // on the dispatcher, never an executor: the bus fans out over the
  // network and may re-enter workstation-side locks.
  rpc::InvalidationMessage message;
  message.kind = rpc::InvalidationMessage::Kind::kDerivationLocked;
  message.dov = dov;
  message.origin_da = da;
  // This node owns the DOV and the lock: it pays the fan-out hops.
  message.origin_node = node_;
  invalidations_->Publish(message);
}

Status ServerTm::ApplyCheckin(storage::DovRecord record) {
  DovId new_id = record.id;
  DaId da = record.owner_da;
  DopId dop = record.created_by;
  size_t pv = DovPart(new_id);
  Partition& part = *parts_[pv];
  return engine_.Run(pv, [&]() -> Status {
    LockManager& slice = locks_.Slice(pv);
    slice.AcquireShort(new_id);
    // Single-record repository transaction on the partition's own
    // sub-shard: begin/write/commit in one WAL batch.
    Status st = repository_->CommitDov(std::move(record));
    if (!st.ok()) {
      slice.ReleaseShort(new_id);
      ++part.counters.checkin_failures;
      CONCORD_INFO("server-tm", "checkin failure for "
                                    << dop.ToString() << ": "
                                    << st.ToString());
      return st;
    }
    // The new DOV now belongs to the scope of the DOP's DA.
    slice.SetScopeOwner(new_id, da);
    slice.ReleaseShort(new_id);
    ++part.counters.checkins;
    return Status::OK();
  });
}

Result<DovId> ServerTm::Checkin(DopId dop, storage::DesignObject object,
                                const std::vector<DovId>& predecessors,
                                SimTime created_at) {
  CONCORD_ASSIGN_OR_RETURN(DaId da, LookupDop(dop));
  // In a sharded plane the new DOV must be created on (and id-stamped
  // by) the DA's home node; a checkin routed here via a stale
  // workstation placement cache is rejected with the typed status the
  // client-TM refreshes on.
  CONCORD_RETURN_NOT_OK(CheckOwnsDa(*parts_[DopPart(dop)], da));

  storage::DovRecord record;
  record.id = repository_->NextDovId();
  record.owner_da = da;
  record.created_by = dop;
  record.type = object.type();
  record.data = std::move(object);
  record.predecessors = predecessors;
  record.created_at = created_at;
  DovId new_id = record.id;
  if (DopPart(dop) != DovPart(new_id)) {
    ++parts_[DovPart(new_id)]->counters.cross_partition_ops;
  }
  CONCORD_RETURN_NOT_OK(ApplyCheckin(std::move(record)));
  return new_id;
}

Status ServerTm::FinishExtractIn(Partition& part, DopId dop, DaId* da,
                                 std::vector<DovId>* held) {
  MutexLock lock(&part.mu);
  auto it = part.dop_da.find(dop);
  if (it == part.dop_da.end()) {
    if (part.lost_dops.count(dop)) {
      ++part.counters.unknown_dop_requests;
      return Status::UnknownDop(dop.ToString() +
                                " was registered before a server crash");
    }
    return Status::NotFound(dop.ToString() + " not registered at server-TM");
  }
  *da = it->second;
  auto locks_it = part.dop_derivation_locks.find(dop);
  if (locks_it != part.dop_derivation_locks.end()) {
    *held = std::move(locks_it->second);
    part.dop_derivation_locks.erase(locks_it);
  }
  part.dop_da.erase(it);
  return Status::OK();
}

Status ServerTm::FinishDop(DopId dop, bool committed) {
  // End-of-DOP, either outcome: deregister and release the DOP's
  // derivation locks ("the server-TM is firstly asked to release the
  // derivation locks held", Sect. 5.2). The registration and lock list
  // are extracted on the DOP's partition; the releases then fan out to
  // the partitions owning the locked DOVs.
  size_t p = DopPart(dop);
  Partition& part = *parts_[p];
  DaId da;
  std::vector<DovId> held;
  Status extracted = engine_.Run(p, [&]() -> Status {
    return FinishExtractIn(part, dop, &da, &held);
  });
  if (!extracted.ok()) return extracted;
  std::vector<std::pair<DovId, DaId>> pairs;
  pairs.reserve(held.size());
  for (DovId dov : held) pairs.emplace_back(dov, da);
  ReleaseDerivationLocks(pairs);
  if (committed) {
    ++part.counters.dops_committed;
  } else {
    ++part.counters.dops_aborted;
  }
  return Status::OK();
}

void ServerTm::ReleaseDerivationLocks(
    const std::vector<std::pair<DovId, DaId>>& locks) {
  CONCORD_ASSERT_OFF_EXECUTOR();
  if (locks.empty()) return;
  std::vector<std::vector<std::pair<DovId, DaId>>> by_part(engine_.count());
  for (const auto& pair : locks) by_part[DovPart(pair.first)].push_back(pair);
  std::vector<std::future<void>> done;
  for (size_t p = 0; p < by_part.size(); ++p) {
    if (by_part[p].empty()) continue;
    const std::vector<std::pair<DovId, DaId>>* group = &by_part[p];
    done.push_back(engine_.Post(p, [this, p, group] {
      for (const auto& [dov, da] : *group) {
        locks_.Slice(p).ReleaseDerivation(dov, da).ok();
      }
    }));
  }
  for (auto& f : done) f.get();
}

Status ServerTm::CommitDop(DopId dop) { return FinishDop(dop, true); }

Status ServerTm::AbortDop(DopId dop) { return FinishDop(dop, false); }

Result<DaId> ServerTm::DaOfDop(DopId dop) const { return LookupDop(dop); }

// --- Cross-shard 2PC ledger ------------------------------------------------

Status ServerTm::PrepareBeginDop(TxnId txn, DopId dop, DaId da) {
  // Registrations are enlistment, not data: they apply immediately and
  // SURVIVE a Decide(abort), exactly like the degenerate single-node
  // envelope (where a failed checkin skips the commit but leaves the
  // Begin-of-DOP standing). The client records the node as a
  // participant on the Begin reply, so both sides agree the node is
  // enlisted whatever the transaction's outcome — End-of-DOP releases
  // the registration either way.
  (void)txn;
  return BeginDop(dop, da);
}

Result<storage::DovRecord> ServerTm::PrepareCheckout(
    TxnId txn, DopId dop, DovId dov, bool take_derivation_lock) {
  auto record = Checkout(dop, dov, take_derivation_lock);
  if (record.ok() && take_derivation_lock) {
    auto da = LookupDop(dop);
    if (da.ok()) {
      size_t pt = TxnPart(txn);
      Partition& tpart = *parts_[pt];
      engine_.Run(pt, [&] {
        MutexLock lock(&tpart.mu);
        tpart.prepared[txn].acquired_locks.emplace_back(dov, *da);
      });
    }
  }
  return record;
}

Result<DovId> ServerTm::PrepareCheckin(TxnId txn, DopId dop,
                                       storage::DesignObject object,
                                       const std::vector<DovId>& predecessors,
                                       SimTime created_at) {
  CONCORD_ASSIGN_OR_RETURN(DaId da, LookupDop(dop));
  Partition& dpart = *parts_[DopPart(dop)];
  CONCORD_RETURN_NOT_OK(CheckOwnsDa(dpart, da));
  // Run the integrity test now — the vote must be honest — but publish
  // nothing: the record reaches the repository only at Decide(commit).
  // The check is deterministic (the schema is fixed at design start),
  // so a prepared checkin cannot fail integrity at apply time.
  Status integrity = repository_->schema().Validate(object);
  if (!integrity.ok()) {
    ++dpart.counters.checkin_failures;
    CONCORD_INFO("server-tm", "prepare-checkin integrity failure for "
                                  << dop.ToString() << ": "
                                  << integrity.ToString());
    return integrity;
  }
  storage::DovRecord record;
  record.id = repository_->NextDovId();
  record.owner_da = da;
  record.created_by = dop;
  record.type = object.type();
  record.data = std::move(object);
  record.predecessors = predecessors;
  record.created_at = created_at;
  DovId new_id = record.id;
  size_t pt = TxnPart(txn);
  Partition& tpart = *parts_[pt];
  engine_.Run(pt, [&] {
    MutexLock lock(&tpart.mu);
    tpart.prepared[txn].staged_checkins.push_back(std::move(record));
  });
  return new_id;
}

Status ServerTm::PrepareFinish(TxnId txn, DopId dop, bool commit_outcome) {
  // Validate now so the reply carries the typed registration failure
  // (kUnknownDop after a crash, kNotFound for a stranger) before the
  // coordinator decides; the actual release happens at Decide(commit).
  CONCORD_RETURN_NOT_OK(LookupDop(dop).status());
  size_t pt = TxnPart(txn);
  Partition& tpart = *parts_[pt];
  return engine_.Run(pt, [&]() -> Status {
    MutexLock lock(&tpart.mu);
    tpart.prepared[txn].staged_finishes.push_back({dop, commit_outcome});
    return Status::OK();
  });
}

Status ServerTm::Decide(TxnId txn, bool commit) {
  size_t pt = TxnPart(txn);
  Partition& tpart = *parts_[pt];
  PreparedTxn staged;
  bool found = engine_.Run(pt, [&]() -> bool {
    MutexLock lock(&tpart.mu);
    auto it = tpart.prepared.find(txn);
    if (it == tpart.prepared.end()) return false;
    staged = std::move(it->second);
    tpart.prepared.erase(it);
    ++tpart.counters.txns_prepared;
    return true;
  });
  if (!found) {
    if (crash_wipe_pending_.load(std::memory_order_acquire)) {
      // A crash wipe raced this decision: the lookup may have run after
      // the wipe task cleared a stage that PersistPrepared made durable.
      // Recovery will re-stage it, still waiting for this decision — but
      // a coordinator never re-sends an acknowledged decision, so an OK
      // here would acknowledge a commit whose effects never apply.
      return Status::Unavailable(
          "server crashed while the decision was in flight; retry after "
          "recovery");
    }
    // Nothing staged: either this node's phase 1 held only immediate
    // operations, the decision already arrived, or a crash wiped the
    // ledger (presumed abort — the crash also wiped everything a
    // commit would have touched). All are safe to acknowledge.
    return Status::OK();
  }
  if (!commit) {
    // Presumed-abort cleanup: drop the staged effects and release the
    // derivation locks phase-1 checkouts acquired. Registrations
    // created by the transaction's Begin-of-DOP stay — see
    // PrepareBeginDop — so the client's participant list and this
    // node's table keep agreeing after an abort.
    ReleaseDerivationLocks(staged.acquired_locks);
    if (staged.persisted) ErasePersistedPrepared(txn);
    ++tpart.counters.txns_decided_abort;
    return Status::OK();
  }
  // The apply choreography runs here on the dispatcher — ApplyCheckin
  // and the finishes each route to their owning partitions.
  Status first_error = Status::OK();
  for (storage::DovRecord& record : staged.staged_checkins) {
    Status st = ApplyCheckin(std::move(record));
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  for (const PreparedTxn::StagedFinish& finish : staged.staged_finishes) {
    Status st = finish.commit_outcome ? CommitDop(finish.dop)
                                      : AbortDop(finish.dop);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  // Apply-then-erase: a crash between the two re-stages the entry at
  // restart, where already-committed checkins are recognized by id and
  // skipped — a retried Decide is idempotent either side of the kill.
  if (staged.persisted) ErasePersistedPrepared(txn);
  ++tpart.counters.txns_decided_commit;
  return first_error;
}

bool ServerTm::HasPrepared(TxnId txn) const {
  // Control-plane introspection: cross-thread but slice-mutex safe.
  const Partition& tpart = *parts_[TxnPart(txn)];
  MutexLock lock(&tpart.mu);
  return tpart.prepared.count(txn) > 0;
}

std::vector<TxnId> ServerTm::PreparedTxns() const {
  std::vector<TxnId> staged;
  for (const auto& part : parts_) {
    MutexLock lock(&part->mu);
    for (const auto& [txn, entry] : part->prepared) {
      staged.push_back(txn);
    }
  }
  return staged;
}

std::string ServerTm::EncodePreparedStage(const PreparedTxn& entry) {
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(entry.staged_checkins.size()));
  for (const storage::DovRecord& record : entry.staged_checkins) {
    PutLengthPrefixed(&out, storage::EncodeDovRecord(record));
  }
  PutFixed32(&out, static_cast<uint32_t>(entry.staged_finishes.size()));
  for (const PreparedTxn::StagedFinish& finish : entry.staged_finishes) {
    PutFixed64(&out, finish.dop.value());
    PutByte(&out, finish.commit_outcome ? 1 : 0);
  }
  return out;
}

Result<ServerTm::PreparedTxn> ServerTm::DecodePreparedStage(
    std::string_view payload) {
  ByteReader reader(payload);
  PreparedTxn entry;
  uint32_t n_checkins = 0;
  if (!reader.ReadFixed32(&n_checkins)) {
    return Status::Internal("truncated 2PC ledger entry (checkin count)");
  }
  entry.staged_checkins.reserve(n_checkins);
  for (uint32_t i = 0; i < n_checkins; ++i) {
    std::string_view encoded;
    if (!reader.ReadLengthPrefixed(&encoded)) {
      return Status::Internal("truncated 2PC ledger entry (checkin)");
    }
    CONCORD_ASSIGN_OR_RETURN(storage::DovRecord record,
                             storage::DecodeDovRecord(encoded));
    entry.staged_checkins.push_back(std::move(record));
  }
  uint32_t n_finishes = 0;
  if (!reader.ReadFixed32(&n_finishes)) {
    return Status::Internal("truncated 2PC ledger entry (finish count)");
  }
  entry.staged_finishes.reserve(n_finishes);
  for (uint32_t i = 0; i < n_finishes; ++i) {
    uint64_t dop = 0;
    uint8_t outcome = 0;
    if (!reader.ReadFixed64(&dop) || !reader.ReadByte(&outcome)) {
      return Status::Internal("truncated 2PC ledger entry (finish)");
    }
    entry.staged_finishes.push_back({DopId(dop), outcome != 0});
  }
  if (reader.remaining() != 0) {
    return Status::Internal("trailing bytes in 2PC ledger entry");
  }
  return entry;
}

Status ServerTm::PersistPrepared(TxnId txn) {
  size_t pt = TxnPart(txn);
  Partition& tpart = *parts_[pt];
  std::string encoded;
  bool durable = engine_.Run(pt, [&]() -> bool {
    MutexLock lock(&tpart.mu);
    auto it = tpart.prepared.find(txn);
    if (it == tpart.prepared.end()) return false;
    if (it->second.staged_checkins.empty() &&
        it->second.staged_finishes.empty()) {
      return false;  // lock-only stage: nothing a crash could lose
    }
    encoded = EncodePreparedStage(it->second);
    it->second.persisted = true;
    return true;
  });
  if (!durable) return Status::OK();
  TxnId meta_txn = repository_->Begin();
  Status st = repository_->PutMeta(meta_txn, PreparedLedgerKey(txn), encoded);
  if (st.ok()) {
    st = repository_->Commit(meta_txn);
  } else {
    repository_->Abort(meta_txn);
  }
  if (!st.ok()) {
    // The vote flips to no on this path; the coordinator will abort
    // and Decide(abort)'s erase of a never-written key is harmless.
    CONCORD_WARN("server-tm", "cannot persist 2PC stage for txn "
                                  << txn.value() << ": " << st.ToString());
  }
  return st;
}

void ServerTm::ErasePersistedPrepared(TxnId txn) {
  TxnId meta_txn = repository_->Begin();
  Status st = repository_->DeleteMeta(meta_txn, PreparedLedgerKey(txn));
  if (st.ok()) {
    st = repository_->Commit(meta_txn);
  } else {
    repository_->Abort(meta_txn);
  }
  if (!st.ok()) {
    // Worst case the entry is re-staged at the next restart and the
    // contains-check skips its already-applied records.
    CONCORD_WARN("server-tm", "cannot erase 2PC stage for txn "
                                  << txn.value() << ": " << st.ToString());
  }
}

size_t ServerTm::RestagePreparedFromStable() {
  size_t restaged = 0;
  for (const std::string& key :
       repository_->MetaKeysWithPrefix(kPreparedMetaPrefix)) {
    auto encoded = repository_->GetMeta(key);
    if (!encoded.ok()) continue;
    uint64_t txn_value =
        std::strtoull(key.c_str() + std::strlen(kPreparedMetaPrefix),
                      nullptr, 10);
    if (txn_value == 0) continue;
    auto decoded = DecodePreparedStage(*encoded);
    if (!decoded.ok()) {
      CONCORD_WARN("server-tm", "undecodable 2PC ledger entry " << key << ": "
                                    << decoded.status().ToString());
      continue;
    }
    TxnId txn(txn_value);
    PreparedTxn entry;
    entry.persisted = true;
    for (storage::DovRecord& record : decoded->staged_checkins) {
      // Reserve the id whether or not the record still needs to apply:
      // the generator must never re-issue it.
      repository_->ReserveDovIdsThrough(record.id);
      if (!repository_->Contains(record.id)) {
        entry.staged_checkins.push_back(std::move(record));
      }
    }
    // decoded->staged_finishes are dropped: see the header contract.
    size_t pt = TxnPart(txn);
    Partition& tpart = *parts_[pt];
    engine_.Run(pt, [&] {
      MutexLock lock(&tpart.mu);
      tpart.prepared[txn] = std::move(entry);
    });
    ++restaged;
    CONCORD_INFO("server-tm", "re-staged prepared txn " << txn.value()
                                  << " from stable storage");
  }
  return restaged;
}

void ServerTm::Crash() {
  CONCORD_ASSERT_OFF_EXECUTOR();
  // Raised before the wipe tasks are posted, so any decision whose
  // ledger lookup lands behind a wipe in some mailbox observes it (see
  // Decide). Cleared only after Recover() has re-staged the ledger.
  crash_wipe_pending_.store(true, std::memory_order_release);
  // One wipe task per partition, all awaited. Mailboxes are FIFO, so
  // each executor finishes every task queued before the crash and THEN
  // wipes — when the futures resolve, no executor is touching
  // pre-crash registrations, lock lists, or ledger entries, and the
  // repository/lock teardown below cannot race an in-flight step.
  std::vector<std::future<void>> wiped;
  wiped.reserve(parts_.size());
  for (size_t p = 0; p < parts_.size(); ++p) {
    Partition* part = parts_[p].get();
    wiped.push_back(engine_.Post(p, [part] {
      MutexLock lock(&part->mu);
      for (const auto& entry : part->dop_da) {
        part->lost_dops.insert(entry.first);
      }
      part->dop_da.clear();
      part->dop_derivation_locks.clear();
      // The 2PC ledger is volatile: staged transactions die undecided,
      // which is exactly the presumed-abort outcome.
      part->prepared.clear();
    }));
  }
  for (auto& f : wiped) f.get();
  locks_.ReleaseAll();
  repository_->Crash();
  network_->SetNodeUp(node_, false);
}

Status ServerTm::Recover() {
  // Rebuild the repository before advertising the node as up: with
  // real on-disk stable storage, replay can fail (corrupt snapshot,
  // unreadable segment), and a node whose committed state is missing
  // must not accept traffic.
  CONCORD_RETURN_NOT_OK(repository_->Recover());
  // Persisted phase-1 stages survive the crash; volatile-only stages
  // (direct Prepare* callers) stay presumed-abort.
  RestagePreparedFromStable();
  crash_wipe_pending_.store(false, std::memory_order_release);
  network_->SetNodeUp(node_, true);
  return Status::OK();
}

ServerTmStats ServerTm::partition_stats(size_t p) const {
  ServerTmStats s;
  if (p >= parts_.size()) return s;
  const PartitionCounters& c = parts_[p]->counters;
  s.checkouts = c.checkouts.load(std::memory_order_relaxed);
  s.checkouts_denied_scope =
      c.checkouts_denied_scope.load(std::memory_order_relaxed);
  s.checkouts_denied_lock =
      c.checkouts_denied_lock.load(std::memory_order_relaxed);
  s.checkins = c.checkins.load(std::memory_order_relaxed);
  s.checkin_failures = c.checkin_failures.load(std::memory_order_relaxed);
  s.dops_begun = c.dops_begun.load(std::memory_order_relaxed);
  s.dops_committed = c.dops_committed.load(std::memory_order_relaxed);
  s.dops_aborted = c.dops_aborted.load(std::memory_order_relaxed);
  s.unknown_dop_requests =
      c.unknown_dop_requests.load(std::memory_order_relaxed);
  s.wrong_shard_requests =
      c.wrong_shard_requests.load(std::memory_order_relaxed);
  s.txns_prepared = c.txns_prepared.load(std::memory_order_relaxed);
  s.txns_decided_commit =
      c.txns_decided_commit.load(std::memory_order_relaxed);
  s.txns_decided_abort = c.txns_decided_abort.load(std::memory_order_relaxed);
  s.cross_partition_ops =
      c.cross_partition_ops.load(std::memory_order_relaxed);
  s.pipelined_batches = c.pipelined_batches.load(std::memory_order_relaxed);
  s.pipelined_ops = c.pipelined_ops.load(std::memory_order_relaxed);
  return s;
}

ServerTmStats ServerTm::stats() const {
  ServerTmStats total;
  for (size_t p = 0; p < parts_.size(); ++p) {
    ServerTmStats s = partition_stats(p);
    total.checkouts += s.checkouts;
    total.checkouts_denied_scope += s.checkouts_denied_scope;
    total.checkouts_denied_lock += s.checkouts_denied_lock;
    total.checkins += s.checkins;
    total.checkin_failures += s.checkin_failures;
    total.dops_begun += s.dops_begun;
    total.dops_committed += s.dops_committed;
    total.dops_aborted += s.dops_aborted;
    total.unknown_dop_requests += s.unknown_dop_requests;
    total.wrong_shard_requests += s.wrong_shard_requests;
    total.txns_prepared += s.txns_prepared;
    total.txns_decided_commit += s.txns_decided_commit;
    total.txns_decided_abort += s.txns_decided_abort;
    total.cross_partition_ops += s.cross_partition_ops;
    total.pipelined_batches += s.pipelined_batches;
    total.pipelined_ops += s.pipelined_ops;
  }
  return total;
}

}  // namespace concord::txn
