#include "txn/server_tm.h"

#include "common/logging.h"
#include "txn/dop_context.h"

namespace concord::txn {

const char* DopStateToString(DopState state) {
  switch (state) {
    case DopState::kActive:
      return "active";
    case DopState::kSuspended:
      return "suspended";
    case DopState::kCommitted:
      return "committed";
    case DopState::kAborted:
      return "aborted";
    case DopState::kCrashed:
      return "crashed";
  }
  return "?";
}

ServerTm::ServerTm(storage::Repository* repository, rpc::Network* network,
                   NodeId server_node, ScopeAuthority* scope_authority)
    : repository_(repository),
      network_(network),
      node_(server_node),
      scope_authority_(scope_authority) {}

Status ServerTm::BeginDop(DopId dop, DaId da) {
  if (dop_da_.count(dop)) {
    return Status::AlreadyExists(dop.ToString() + " already registered");
  }
  dop_da_.emplace(dop, da);
  ++stats_.dops_begun;
  return Status::OK();
}

Result<storage::DovRecord> ServerTm::Checkout(DopId dop, DovId dov,
                                              bool take_derivation_lock) {
  auto da_it = dop_da_.find(dop);
  if (da_it == dop_da_.end()) {
    return Status::NotFound(dop.ToString() + " not registered at server-TM");
  }
  DaId da = da_it->second;

  locks_.AcquireShort(dov);
  // Test 1: the DOV must belong to the scope of the DOP's DA.
  if (!scope_authority_->InScope(da, dov)) {
    locks_.ReleaseShort(dov);
    ++stats_.checkouts_denied_scope;
    return Status::PermissionDenied(dov.ToString() + " is not in the scope of " +
                                    da.ToString());
  }
  // Test 2: no incompatible derivation lock.
  DaId holder = locks_.DerivationHolder(dov);
  if (holder.valid() && holder != da) {
    locks_.ReleaseShort(dov);
    ++stats_.checkouts_denied_lock;
    return Status::LockConflict(dov.ToString() + " derivation-locked by " +
                                holder.ToString());
  }
  if (take_derivation_lock) {
    Status st = locks_.AcquireDerivation(dov, da);
    if (!st.ok()) {
      locks_.ReleaseShort(dov);
      ++stats_.checkouts_denied_lock;
      return st;
    }
    dop_derivation_locks_[dop].push_back(dov);
  }
  auto record = repository_->Get(dov);
  locks_.ReleaseShort(dov);
  if (!record.ok()) return record.status();
  ++stats_.checkouts;
  return record;
}

Result<DovId> ServerTm::Checkin(DopId dop, storage::DesignObject object,
                                const std::vector<DovId>& predecessors,
                                SimTime created_at) {
  auto da_it = dop_da_.find(dop);
  if (da_it == dop_da_.end()) {
    return Status::NotFound(dop.ToString() + " not registered at server-TM");
  }
  DaId da = da_it->second;

  DovId new_id = repository_->NextDovId();
  locks_.AcquireShort(new_id);

  storage::DovRecord record;
  record.id = new_id;
  record.owner_da = da;
  record.created_by = dop;
  record.type = object.type();
  record.data = std::move(object);
  record.predecessors = predecessors;
  record.created_at = created_at;

  TxnId txn = repository_->Begin();
  Status st = repository_->Put(txn, std::move(record));
  if (st.ok()) st = repository_->Commit(txn);
  if (!st.ok()) {
    repository_->Abort(txn).ok();
    locks_.ReleaseShort(new_id);
    ++stats_.checkin_failures;
    CONCORD_INFO("server-tm", "checkin failure for " << dop.ToString() << ": "
                                                     << st.ToString());
    return st;
  }
  // The new DOV now belongs to the scope of the DOP's DA.
  locks_.SetScopeOwner(new_id, da);
  locks_.ReleaseShort(new_id);
  ++stats_.checkins;
  return new_id;
}

Status ServerTm::CommitDop(DopId dop) {
  auto it = dop_da_.find(dop);
  if (it == dop_da_.end()) {
    return Status::NotFound(dop.ToString() + " not registered at server-TM");
  }
  for (DovId dov : dop_derivation_locks_[dop]) {
    locks_.ReleaseDerivation(dov, it->second).ok();
  }
  dop_derivation_locks_.erase(dop);
  dop_da_.erase(it);
  ++stats_.dops_committed;
  return Status::OK();
}

Status ServerTm::AbortDop(DopId dop) {
  auto it = dop_da_.find(dop);
  if (it == dop_da_.end()) {
    return Status::NotFound(dop.ToString() + " not registered at server-TM");
  }
  for (DovId dov : dop_derivation_locks_[dop]) {
    locks_.ReleaseDerivation(dov, it->second).ok();
  }
  dop_derivation_locks_.erase(dop);
  dop_da_.erase(it);
  ++stats_.dops_aborted;
  return Status::OK();
}

Result<DaId> ServerTm::DaOfDop(DopId dop) const {
  auto it = dop_da_.find(dop);
  if (it == dop_da_.end()) {
    return Status::NotFound(dop.ToString() + " not registered at server-TM");
  }
  return it->second;
}

void ServerTm::Crash() {
  dop_da_.clear();
  dop_derivation_locks_.clear();
  locks_.ReleaseAll();
  repository_->Crash();
  network_->SetNodeUp(node_, false);
}

Status ServerTm::Recover() {
  // Rebuild the repository before advertising the node as up: with
  // real on-disk stable storage, replay can fail (corrupt snapshot,
  // unreadable segment), and a node whose committed state is missing
  // must not accept traffic.
  CONCORD_RETURN_NOT_OK(repository_->Recover());
  network_->SetNodeUp(node_, true);
  return Status::OK();
}

}  // namespace concord::txn
