#ifndef CONCORD_WORKFLOW_SCRIPT_H_
#define CONCORD_WORKFLOW_SCRIPT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace concord::workflow {

/// AST of a work-flow script (Sect. 4.2 / Fig. 6). "A script may
/// contain sequences, branches for concurrent execution, alternative
/// paths as well as iterations"; `open` marks partially undetermined
/// segments where the designer may perform arbitrary intermediate
/// actions.
class ScriptNode {
 public:
  enum class Kind {
    /// Execute one DOP of a named type (binds to a design tool).
    kDop,
    /// A named DA-level operation (Evaluate, Create_Sub_DA, Propagate,
    /// ...) executed through the cooperation layer.
    kDaOp,
    /// Children in order.
    kSequence,
    /// Fork/join: all children execute (order immaterial; the
    /// single-threaded executor interleaves them deterministically).
    kBranch,
    /// Designer chooses exactly one child.
    kAlternative,
    /// Body repeats while the designer asks for another pass.
    kIteration,
    /// "open": any intermediate actions the designer wants.
    kOpen,
  };

  Kind kind() const { return kind_; }
  /// DOP type for kDop, operation name for kDaOp; empty otherwise.
  const std::string& name() const { return name_; }
  const std::vector<std::unique_ptr<ScriptNode>>& children() const {
    return children_;
  }

  /// Maximum number of iterations the executor will allow for a kIteration
  /// node (safety bound; the designer normally stops earlier).
  int max_iterations() const { return max_iterations_; }

  /// All DOP type names that can possibly execute under this node
  /// (open nodes contribute nothing — they are unconstrained).
  std::vector<std::string> PossibleDopTypes() const;

  /// Number of nodes in this subtree.
  size_t TreeSize() const;

  std::string ToString() const;

  // --- Builders ------------------------------------------------------

  static std::unique_ptr<ScriptNode> Dop(std::string dop_type);
  static std::unique_ptr<ScriptNode> DaOp(std::string op_name);
  static std::unique_ptr<ScriptNode> Sequence(
      std::vector<std::unique_ptr<ScriptNode>> children);
  static std::unique_ptr<ScriptNode> Branch(
      std::vector<std::unique_ptr<ScriptNode>> children);
  static std::unique_ptr<ScriptNode> Alternative(
      std::vector<std::unique_ptr<ScriptNode>> children);
  static std::unique_ptr<ScriptNode> Iteration(
      std::unique_ptr<ScriptNode> body, int max_iterations = 16);
  static std::unique_ptr<ScriptNode> Open();

  /// Deep copy (scripts are persisted and re-instantiated at recovery).
  std::unique_ptr<ScriptNode> Clone() const;

 private:
  explicit ScriptNode(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string name_;
  std::vector<std::unique_ptr<ScriptNode>> children_;
  int max_iterations_ = 16;
};

/// A named script template — "a template for valid sequences of DOP
/// executions within a DA" (Sect. 4.2).
class Script {
 public:
  Script() = default;
  Script(std::string name, std::unique_ptr<ScriptNode> root)
      : name_(std::move(name)), root_(std::move(root)) {}

  Script(const Script& other) { *this = other; }
  Script& operator=(const Script& other) {
    if (this != &other) {
      name_ = other.name_;
      root_ = other.root_ ? other.root_->Clone() : nullptr;
    }
    return *this;
  }
  Script(Script&&) noexcept = default;
  Script& operator=(Script&&) noexcept = default;

  const std::string& name() const { return name_; }
  const ScriptNode* root() const { return root_.get(); }
  bool empty() const { return root_ == nullptr; }

  std::string ToString() const;

 private:
  std::string name_;
  std::unique_ptr<ScriptNode> root_;
};

}  // namespace concord::workflow

#endif  // CONCORD_WORKFLOW_SCRIPT_H_
