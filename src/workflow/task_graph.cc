#include "workflow/task_graph.h"

#include <string>

namespace concord::workflow {

std::string TaskRankToString(const TaskRank& rank) {
  std::string out;
  for (size_t i = 0; i < rank.size(); ++i) {
    if (i > 0) out.push_back('.');
    if (rank[i] == kJoinRank) {
      out.push_back('J');
    } else {
      out += std::to_string(rank[i]);
    }
  }
  return out;
}

const char* TaskNodeKindToString(TaskNodeKind kind) {
  switch (kind) {
    case TaskNodeKind::kDop:
      return "dop";
    case TaskNodeKind::kDaOp:
      return "da_op";
    case TaskNodeKind::kDecision:
      return "decision";
    case TaskNodeKind::kJoin:
      return "join";
  }
  return "?";
}

TaskNodeId TaskGraph::AddNode(TaskNodeKind kind, TaskRank rank,
                              std::string name, std::function<Status()> body,
                              SimTime timeout) {
  TaskNodeId id = static_cast<TaskNodeId>(nodes_.size());
  TaskNode node;
  node.kind = kind;
  node.rank = std::move(rank);
  node.name = std::move(name);
  node.body = std::move(body);
  node.timeout = timeout;
  node.state = TaskNodeState::kReady;
  nodes_.push_back(std::move(node));
  ready_.emplace(nodes_[id].rank, id);
  return id;
}

void TaskGraph::AddEdge(TaskNodeId from, TaskNodeId to) {
  TaskNode& source = nodes_[from];
  TaskNode& target = nodes_[to];
  source.dependents.push_back(to);
  if (source.state == TaskNodeState::kDone) return;  // satisfied on arrival
  ++target.unmet_deps;
  if (target.state == TaskNodeState::kReady) {
    // Was ready (or born ready) and just picked up a real dependency.
    ready_.erase({target.rank, to});
    target.state = TaskNodeState::kBlocked;
  }
}

void TaskGraph::Clear() {
  nodes_.clear();
  ready_.clear();
  running_ = 0;
}

TaskNodeId TaskGraph::MinReady() const {
  if (ready_.empty()) return kNoTaskNode;
  return ready_.begin()->second;
}

void TaskGraph::MarkRunning(TaskNodeId id) {
  TaskNode& node = nodes_[id];
  ready_.erase({node.rank, id});
  node.state = TaskNodeState::kRunning;
  ++running_;
}

void TaskGraph::MarkDone(TaskNodeId id) {
  TaskNode& node = nodes_[id];
  node.state = TaskNodeState::kDone;
  --running_;
  for (TaskNodeId dependent : node.dependents) {
    TaskNode& target = nodes_[dependent];
    if (target.state != TaskNodeState::kBlocked) continue;
    if (--target.unmet_deps == 0) {
      target.state = TaskNodeState::kReady;
      ready_.emplace(target.rank, dependent);
    }
  }
}

void TaskGraph::MarkReadyAgain(TaskNodeId id) {
  TaskNode& node = nodes_[id];
  node.state = TaskNodeState::kReady;
  --running_;
  ready_.emplace(node.rank, id);
}

void TaskGraph::MarkFailed(TaskNodeId id) {
  TaskNode& node = nodes_[id];
  node.state = TaskNodeState::kFailed;
  --running_;
  // Cancel the transitive downstream cone: none of those nodes can
  // ever become ready, and kContinueOnError promises a drained graph.
  std::vector<TaskNodeId> frontier = node.dependents;
  while (!frontier.empty()) {
    TaskNodeId next = frontier.back();
    frontier.pop_back();
    TaskNode& target = nodes_[next];
    if (target.state != TaskNodeState::kBlocked &&
        target.state != TaskNodeState::kReady) {
      continue;
    }
    if (target.state == TaskNodeState::kReady) ready_.erase({target.rank, next});
    target.state = TaskNodeState::kCancelled;
    for (TaskNodeId dependent : target.dependents) frontier.push_back(dependent);
  }
}

bool TaskGraph::AllTerminal() const {
  for (const TaskNode& node : nodes_) {
    if (node.state != TaskNodeState::kDone &&
        node.state != TaskNodeState::kFailed &&
        node.state != TaskNodeState::kCancelled) {
      return false;
    }
  }
  return true;
}

bool TaskGraph::AllDone() const {
  for (const TaskNode& node : nodes_) {
    if (node.state != TaskNodeState::kDone) return false;
  }
  return true;
}

}  // namespace concord::workflow
