#include "workflow/design_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace concord::workflow {

const char* WorkflowLogEntry::KindToString(Kind kind) {
  switch (kind) {
    case Kind::kDopStart:
      return "DOP_START";
    case Kind::kDopFinish:
      return "DOP_FINISH";
    case Kind::kDaOp:
      return "DA_OP";
    case Kind::kAlternativeChoice:
      return "ALT_CHOICE";
    case Kind::kIterationDecision:
      return "ITER_DECISION";
    case Kind::kOpenPlan:
      return "OPEN_PLAN";
    case Kind::kRestart:
      return "RESTART";
  }
  return "?";
}

const char* DmStateToString(DmState state) {
  switch (state) {
    case DmState::kActive:
      return "active";
    case DmState::kPaused:
      return "paused";
    case DmState::kCompleted:
      return "completed";
    case DmState::kCrashed:
      return "crashed";
  }
  return "?";
}

DesignManager::DesignManager(DaId da, Script script,
                             const ConstraintSet* constraints, SimClock* clock)
    : da_(da),
      persistent_script_(std::move(script)),
      constraints_(constraints),
      clock_(clock) {}

Status DesignManager::ValidateScript() const {
  if (constraints_ == nullptr) return Status::OK();
  return constraints_->ValidateScript(persistent_script_);
}

Status DesignManager::Start() {
  if (started_) {
    return Status::FailedPrecondition("design manager already started");
  }
  CONCORD_RETURN_NOT_OK(ValidateScript());
  ResetMachine();
  started_ = true;
  state_ = DmState::kActive;
  replay_cursor_ = persistent_log_.size();
  return Status::OK();
}

void DesignManager::ResetMachine() {
  stack_.clear();
  history_.clear();
  if (!persistent_script_.empty()) {
    stack_.push_back(MakeFrame(persistent_script_.root()));
  }
}

void DesignManager::AppendLog(WorkflowLogEntry entry) {
  entry.sequence = ++log_sequence_;
  persistent_log_.push_back(std::move(entry));
  // Live appends move the replay cursor with the log end, so
  // Replaying() is only true while Recover() walks a crash-time prefix.
  replay_cursor_ = persistent_log_.size();
}

const WorkflowLogEntry* DesignManager::PeekReplay(WorkflowLogEntry::Kind kind,
                                                  const std::string& name) {
  if (!Replaying()) return nullptr;
  const WorkflowLogEntry& entry = persistent_log_[replay_cursor_];
  if (entry.kind != kind || (!name.empty() && entry.name != name)) {
    // Divergence (should not happen with a deterministic machine):
    // truncate the suffix and continue live — robustness over replay.
    CONCORD_WARN("dm", "log divergence at #" << entry.sequence << " ("
                                             << WorkflowLogEntry::KindToString(
                                                    entry.kind)
                                             << "), truncating");
    persistent_log_.resize(replay_cursor_);
    log_sequence_ = persistent_log_.empty() ? 0
                                            : persistent_log_.back().sequence;
    return nullptr;
  }
  return &entry;
}

Status DesignManager::RunDop(const std::string& dop_type) {
  // Admission against the domain constraints guards every DOP start,
  // including designer-chosen actions in open segments.
  if (constraints_ != nullptr) {
    Status admissible = constraints_->CheckAdmissible(history_, dop_type);
    if (!admissible.ok()) {
      ++stats_.constraint_rejections;
      return admissible;
    }
  }

  // Replay path: consume DOP_START and its matching DOP_FINISH.
  if (const WorkflowLogEntry* start =
          PeekReplay(WorkflowLogEntry::Kind::kDopStart, dop_type)) {
    (void)start;
    if (replay_cursor_ + 1 < persistent_log_.size() &&
        persistent_log_[replay_cursor_ + 1].kind ==
            WorkflowLogEntry::Kind::kDopFinish &&
        persistent_log_[replay_cursor_ + 1].name == dop_type) {
      const WorkflowLogEntry finish = persistent_log_[replay_cursor_ + 1];
      replay_cursor_ += 2;
      ++stats_.dops_replayed;
      if (finish.committed) {
        history_.push_back(dop_type);
        produced_.push_back(finish.output);
        return Status::OK();
      }
      return Status::Aborted("replayed abort of DOP '" + dop_type + "'");
    }
    // Dangling start: the crash hit mid-DOP. Drop the dangling entry
    // and re-execute live.
    persistent_log_.resize(replay_cursor_);
    log_sequence_ = persistent_log_.empty() ? 0
                                            : persistent_log_.back().sequence;
  }

  if (!tool_runner_) {
    return Status::Internal("no tool runner bound to design manager of " +
                            da_.ToString());
  }
  AppendLog({WorkflowLogEntry::Kind::kDopStart, 0, dop_type, DovId(), {},
             false, 0, false, {}});
  CONCORD_ASSIGN_OR_RETURN(DopOutcome outcome, tool_runner_(dop_type));
  WorkflowLogEntry finish{WorkflowLogEntry::Kind::kDopFinish, 0, dop_type,
                          outcome.output, outcome.inputs, outcome.committed,
                          0, false, {}};
  AppendLog(std::move(finish));
  ++stats_.dops_run;
  if (!outcome.committed) {
    return Status::Aborted("DOP '" + dop_type + "' aborted");
  }
  history_.push_back(dop_type);
  produced_.push_back(outcome.output);
  return Status::OK();
}

Status DesignManager::RunDaOp(const std::string& op_name) {
  if (const WorkflowLogEntry* entry =
          PeekReplay(WorkflowLogEntry::Kind::kDaOp, op_name)) {
    (void)entry;
    ++replay_cursor_;
    ++stats_.decisions_replayed;
    return Status::OK();
  }
  Status st = da_op_runner_ ? da_op_runner_(op_name) : Status::OK();
  if (st.ok()) {
    AppendLog({WorkflowLogEntry::Kind::kDaOp, 0, op_name, DovId(), {}, false,
               0, false, {}});
  }
  return st;
}

Result<bool> DesignManager::Step() {
  if (state_ != DmState::kActive) {
    return Status::FailedPrecondition("design manager is " +
                                      std::string(DmStateToString(state_)));
  }
  if (!started_) {
    return Status::FailedPrecondition("design manager not started");
  }

  // A restart record at the replay cursor resets the machine, exactly
  // as the live event did.
  if (Replaying() &&
      persistent_log_[replay_cursor_].kind == WorkflowLogEntry::Kind::kRestart) {
    ++replay_cursor_;
    ResetMachine();
    return true;
  }

  if (stack_.empty()) {
    // Execution finished: check the eventually/immediately-followed-by
    // obligations before declaring the DA's work flow complete.
    if (constraints_ != nullptr) {
      Status complete = constraints_->CheckComplete(history_);
      if (!complete.ok()) {
        state_ = DmState::kPaused;
        return complete;
      }
    }
    state_ = DmState::kCompleted;
    return false;
  }

  Frame& frame = stack_.back();
  const ScriptNode* node = frame.node;
  DecisionMaker* decider =
      decision_maker_ != nullptr ? decision_maker_ : &default_decisions_;

  switch (node->kind()) {
    case ScriptNode::Kind::kDop: {
      CONCORD_RETURN_NOT_OK(RunDop(node->name()));
      stack_.pop_back();
      return true;
    }
    case ScriptNode::Kind::kDaOp: {
      CONCORD_RETURN_NOT_OK(RunDaOp(node->name()));
      stack_.pop_back();
      return true;
    }
    case ScriptNode::Kind::kSequence:
    case ScriptNode::Kind::kBranch: {
      if (frame.child_index < node->children().size()) {
        const ScriptNode* child = node->children()[frame.child_index].get();
        ++frame.child_index;
        stack_.push_back(MakeFrame(child));
      } else {
        stack_.pop_back();
      }
      return true;
    }
    case ScriptNode::Kind::kAlternative: {
      if (!frame.decided) {
        size_t choice;
        if (const WorkflowLogEntry* entry = PeekReplay(
                WorkflowLogEntry::Kind::kAlternativeChoice, "")) {
          choice = entry->choice;
          ++replay_cursor_;
          ++stats_.decisions_replayed;
        } else {
          choice = decider->ChooseAlternative(*node);
          if (choice >= node->children().size()) {
            return Status::InvalidArgument(
                "alternative choice " + std::to_string(choice) +
                " out of range (" + std::to_string(node->children().size()) +
                " paths)");
          }
          AppendLog({WorkflowLogEntry::Kind::kAlternativeChoice, 0, "",
                     DovId(), {}, false, choice, false, {}});
        }
        frame.decided = true;
        frame.chosen = choice;
        stack_.push_back(MakeFrame(node->children()[choice].get()));
      } else {
        stack_.pop_back();
      }
      return true;
    }
    case ScriptNode::Kind::kIteration: {
      bool another;
      if (frame.passes_done == 0) {
        another = true;  // the body always runs at least once
      } else if (const WorkflowLogEntry* entry = PeekReplay(
                     WorkflowLogEntry::Kind::kIterationDecision, "")) {
        another = entry->continue_flag;
        ++replay_cursor_;
        ++stats_.decisions_replayed;
      } else {
        another = frame.passes_done < node->max_iterations() &&
                  decider->ContinueIteration(*node, frame.passes_done);
        AppendLog({WorkflowLogEntry::Kind::kIterationDecision, 0, "", DovId(),
                   {}, false, 0, another, {}});
      }
      if (another) {
        ++frame.passes_done;
        stack_.push_back(MakeFrame(node->children().front().get()));
      } else {
        stack_.pop_back();
      }
      return true;
    }
    case ScriptNode::Kind::kOpen: {
      if (!frame.planned) {
        if (const WorkflowLogEntry* entry =
                PeekReplay(WorkflowLogEntry::Kind::kOpenPlan, "")) {
          frame.open_plan = entry->plan;
          ++replay_cursor_;
          ++stats_.decisions_replayed;
        } else {
          frame.open_plan = decider->PlanOpenSegment(*node);
          AppendLog({WorkflowLogEntry::Kind::kOpenPlan, 0, "", DovId(), {},
                     false, 0, false, frame.open_plan});
        }
        frame.planned = true;
        return true;
      }
      if (frame.open_index < frame.open_plan.size()) {
        const std::string dop_type = frame.open_plan[frame.open_index];
        CONCORD_RETURN_NOT_OK(RunDop(dop_type));
        ++frame.open_index;
      } else {
        stack_.pop_back();
      }
      return true;
    }
  }
  return Status::Internal("unhandled script node kind");
}

Status DesignManager::RunToCompletion() {
  while (true) {
    Result<bool> more = Step();
    if (!more.ok()) return more.status();
    if (!*more) return Status::OK();
    if (state_ != DmState::kActive) return Status::OK();
  }
}

Status DesignManager::HandleEvent(const Event& event) {
  ++stats_.events_handled;
  // Built-in semantics (Sect. 5.3).
  if (event.type == "Modify_Sub_DA_Specification" ||
      event.type == "Restart") {
    // "DA execution has to be restarted from the beginning. However,
    // the designer may choose any previously derived DOV as a starting
    // point" — produced_ survives the restart for exactly that reason.
    AppendLog({WorkflowLogEntry::Kind::kRestart, 0, event.type, DovId(), {},
               false, 0, false, {}});
    ResetMachine();
    if (state_ == DmState::kCompleted || state_ == DmState::kPaused) {
      state_ = DmState::kActive;
    }
    ++stats_.restarts;
  } else if (event.type == "Withdrawal") {
    if (UsedDov(event.dov)) {
      // "the processing needs to be stopped and the designer has to
      // decide on how to continue".
      state_ = DmState::kPaused;
      CONCORD_INFO("dm", da_.ToString()
                             << " paused: withdrawn " << event.dov.ToString()
                             << " was used by a local DOP");
    }
    // Otherwise: "there is no necessity for the designer to invalidate
    // his own results".
  }
  std::vector<Status> errors;
  stats_.rules_fired += rules_.Dispatch(event, &errors);
  if (!errors.empty()) return errors.front();
  return Status::OK();
}

Status DesignManager::ResumeAfterPause() {
  if (state_ != DmState::kPaused) {
    return Status::FailedPrecondition("design manager is not paused");
  }
  state_ = DmState::kActive;
  return Status::OK();
}

void DesignManager::Crash() {
  stack_.clear();
  history_.clear();
  produced_.clear();
  state_ = DmState::kCrashed;
}

Status DesignManager::Recover() {
  if (state_ != DmState::kCrashed) {
    return Status::FailedPrecondition("design manager did not crash");
  }
  // Forward recovery: fresh machine, replay the persistent log.
  replay_cursor_ = 0;
  log_sequence_ =
      persistent_log_.empty() ? 0 : persistent_log_.back().sequence;
  produced_.clear();
  ResetMachine();
  state_ = DmState::kActive;
  started_ = true;
  // Drive the machine through the replayed prefix so the volatile
  // state (history, stack position) is restored. Live execution then
  // continues from the crash point. Replayed aborts surface as they
  // did originally; they leave the machine positioned to retry.
  while (Replaying()) {
    Result<bool> more = Step();
    if (!more.ok()) {
      if (more.status().IsAborted()) continue;  // replayed abort: retry point
      return more.status();
    }
    if (!*more || state_ != DmState::kActive) break;
  }
  return Status::OK();
}

bool DesignManager::UsedDov(DovId dov) const {
  for (const WorkflowLogEntry& entry : persistent_log_) {
    if (entry.kind != WorkflowLogEntry::Kind::kDopFinish || !entry.committed) {
      continue;
    }
    if (std::find(entry.inputs.begin(), entry.inputs.end(), dov) !=
        entry.inputs.end()) {
      return true;
    }
  }
  return false;
}

}  // namespace concord::workflow
