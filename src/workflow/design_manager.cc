#include "workflow/design_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace concord::workflow {

const char* WorkflowLogEntry::KindToString(Kind kind) {
  switch (kind) {
    case Kind::kDopStart:
      return "DOP_START";
    case Kind::kDopFinish:
      return "DOP_FINISH";
    case Kind::kDaOp:
      return "DA_OP";
    case Kind::kAlternativeChoice:
      return "ALT_CHOICE";
    case Kind::kIterationDecision:
      return "ITER_DECISION";
    case Kind::kOpenPlan:
      return "OPEN_PLAN";
    case Kind::kRestart:
      return "RESTART";
  }
  return "?";
}

const char* DmStateToString(DmState state) {
  switch (state) {
    case DmState::kActive:
      return "active";
    case DmState::kPaused:
      return "paused";
    case DmState::kCompleted:
      return "completed";
    case DmState::kCrashed:
      return "crashed";
  }
  return "?";
}

namespace {

TaskRank Extend(const TaskRank& rank, uint32_t component) {
  TaskRank extended = rank;
  extended.push_back(component);
  return extended;
}

}  // namespace

DesignManager::DesignManager(DaId da, Script script,
                             const ConstraintSet* constraints, SimClock* clock)
    : da_(da),
      persistent_script_(std::move(script)),
      scheduler_(clock),
      constraints_(constraints),
      clock_(clock) {
  scheduler_.Bind(&graph_);
  // DM semantics are kCancelOnError: a failed DOP is a retry point,
  // not a cancelled subtree.
  scheduler_.set_error_policy(ErrorPolicy::kCancelOnError);
  scheduler_.hooks().on_start = [this](const TaskNode& node) {
    if (progress_sink_) progress_sink_(node, /*started=*/true, false);
  };
  scheduler_.hooks().on_complete = [this](const TaskNode& node) {
    if (progress_sink_) progress_sink_(node, false, /*failed=*/false);
  };
  scheduler_.hooks().on_error = [this](const TaskNode& node, const Status&) {
    if (progress_sink_) progress_sink_(node, false, /*failed=*/true);
  };
}

void DesignManager::SetExecutorPool(ExecutorPool* pool) {
  pool_ = pool;
  scheduler_.SetPool(pool);
}

void DesignManager::SetProgressSink(ProgressSink sink) {
  progress_sink_ = std::move(sink);
}

Status DesignManager::ValidateScript() const {
  if (constraints_ == nullptr) return Status::OK();
  return constraints_->ValidateScript(persistent_script_);
}

Status DesignManager::Start() {
  if (started_) {
    return Status::FailedPrecondition("design manager already started");
  }
  CONCORD_RETURN_NOT_OK(ValidateScript());
  ClearReplay();
  ResetMachine();
  started_ = true;
  state_ = DmState::kActive;
  return Status::OK();
}

void DesignManager::ResetMachine() {
  graph_.Clear();
  {
    MutexLock lock(&mu_);
    history_.clear();
  }
  if (!persistent_script_.empty()) {
    LowerNode(persistent_script_.root(), TaskRank{0}, {});
  }
}

void DesignManager::AppendLogLocked(WorkflowLogEntry entry) {
  entry.sequence = ++log_sequence_;
  persistent_log_.push_back(std::move(entry));
}

// --- Script lowering ---------------------------------------------------
//
// Every script construct lowers to task nodes at lexicographic ranks:
//   kDop/kDaOp     -> one leaf node
//   kSequence      -> children chained at rank+[i]
//   kBranch        -> children forked at rank+[i], join at rank+[J]
//   kAlternative   -> decision at rank+[0]; the decision body expands
//                     the chosen child at rank+[1] and wires its tail
//                     to the join at rank+[J] *before* completing (so
//                     the join can never fire early)
//   kIteration     -> decision chain at rank+[2k] with pass bodies at
//                     rank+[2k+1]; every decision holds an edge to the
//                     join, released only when the final one says stop
//   kOpen          -> plan decision at rank+[0]; planned DOPs chained
//                     at rank+[i+1], tail wired to the join
//
// Ascending-rank inline execution therefore reproduces the old
// depth-first stack machine order exactly.

std::vector<TaskNodeId> DesignManager::LowerNode(const ScriptNode* node,
                                                 TaskRank rank,
                                                 std::vector<TaskNodeId> deps) {
  switch (node->kind()) {
    case ScriptNode::Kind::kDop: {
      TaskNodeId id = graph_.AddNode(
          TaskNodeKind::kDop, rank, node->name(),
          [this, name = node->name(), path = TaskRankToString(rank)] {
            return RunDopNode(name, path);
          },
          dop_timeout_);
      for (TaskNodeId dep : deps) graph_.AddEdge(dep, id);
      return {id};
    }
    case ScriptNode::Kind::kDaOp: {
      TaskNodeId id = graph_.AddNode(
          TaskNodeKind::kDaOp, rank, node->name(),
          [this, name = node->name(), path = TaskRankToString(rank)] {
            return RunDaOpNode(name, path);
          });
      for (TaskNodeId dep : deps) graph_.AddEdge(dep, id);
      return {id};
    }
    case ScriptNode::Kind::kSequence: {
      for (size_t i = 0; i < node->children().size(); ++i) {
        deps = LowerNode(node->children()[i].get(),
                         Extend(rank, static_cast<uint32_t>(i)),
                         std::move(deps));
      }
      return deps;
    }
    case ScriptNode::Kind::kBranch: {
      std::vector<TaskNodeId> tails;
      for (size_t i = 0; i < node->children().size(); ++i) {
        std::vector<TaskNodeId> child_tails = LowerNode(
            node->children()[i].get(), Extend(rank, static_cast<uint32_t>(i)),
            deps);
        tails.insert(tails.end(), child_tails.begin(), child_tails.end());
      }
      TaskNodeId join = graph_.AddNode(TaskNodeKind::kJoin,
                                       Extend(rank, kJoinRank), "join", nullptr);
      const std::vector<TaskNodeId>& sources = tails.empty() ? deps : tails;
      for (TaskNodeId source : sources) graph_.AddEdge(source, join);
      return {join};
    }
    case ScriptNode::Kind::kAlternative: {
      TaskNodeId decision = graph_.AddNode(TaskNodeKind::kDecision,
                                           Extend(rank, 0), "choose", nullptr);
      TaskNodeId join = graph_.AddNode(TaskNodeKind::kJoin,
                                       Extend(rank, kJoinRank), "join", nullptr);
      for (TaskNodeId dep : deps) graph_.AddEdge(dep, decision);
      graph_.AddEdge(decision, join);
      graph_.node(decision).body = [this, node, rank, decision, join] {
        return RunAlternativeNode(node, rank, decision, join);
      };
      return {join};
    }
    case ScriptNode::Kind::kIteration: {
      TaskNodeId join = graph_.AddNode(TaskNodeKind::kJoin,
                                       Extend(rank, kJoinRank), "join", nullptr);
      TaskNodeId first = MakeIterationDecision(node, rank, 0, join);
      for (TaskNodeId dep : deps) graph_.AddEdge(dep, first);
      return {join};
    }
    case ScriptNode::Kind::kOpen: {
      TaskNodeId decision = graph_.AddNode(TaskNodeKind::kDecision,
                                           Extend(rank, 0), "plan", nullptr);
      TaskNodeId join = graph_.AddNode(TaskNodeKind::kJoin,
                                       Extend(rank, kJoinRank), "join", nullptr);
      for (TaskNodeId dep : deps) graph_.AddEdge(dep, decision);
      graph_.AddEdge(decision, join);
      graph_.node(decision).body = [this, node, rank, decision, join] {
        return RunOpenNode(node, rank, decision, join);
      };
      return {join};
    }
  }
  return deps;
}

TaskNodeId DesignManager::MakeIterationDecision(const ScriptNode* node,
                                                TaskRank rank, int pass,
                                                TaskNodeId join) {
  TaskNodeId decision = graph_.AddNode(
      TaskNodeKind::kDecision, Extend(rank, static_cast<uint32_t>(2 * pass)),
      "iterate", nullptr);
  // Every decision in the chain holds the join until it either stops
  // (edge released by completing with no successor) or hands over to
  // the next decision (which takes its own edge before this one
  // completes).
  graph_.AddEdge(decision, join);
  graph_.node(decision).body = [this, node, rank, pass, decision, join] {
    return RunIterationNode(node, rank, pass, decision, join);
  };
  return decision;
}

// --- Node bodies -------------------------------------------------------

Status DesignManager::RunDopNode(const std::string& dop_type,
                                 const std::string& path) {
  {
    MutexLock lock(&mu_);
    // Admission against the domain constraints guards every DOP start,
    // including designer-chosen actions in open segments.
    if (constraints_ != nullptr) {
      Status admissible = constraints_->CheckAdmissible(history_, dop_type);
      if (!admissible.ok()) {
        ++stats_.constraint_rejections;
        return admissible;
      }
    }
    if (auto record = ConsumeReplayDop(path)) {
      if (record->has_finish) {
        ++stats_.dops_replayed;
        if (record->committed) {
          history_.push_back(dop_type);
          produced_.push_back(record->output);
          return Status::OK();
        }
        return Status::Aborted("replayed abort of DOP '" + dop_type + "'");
      }
      // Dangling start: the crash hit mid-DOP. Fall through and
      // re-execute live (the old log-truncating recovery semantics).
    }
    if (!tool_runner_) {
      return Status::Internal("no tool runner bound to design manager of " +
                              da_.ToString());
    }
    WorkflowLogEntry start;
    start.kind = WorkflowLogEntry::Kind::kDopStart;
    start.name = dop_type;
    start.path = path;
    AppendLogLocked(std::move(start));
  }

  // The tool runs with mu_ released: pooled runs overlap many DOPs,
  // and the runner does its own (client-TM / RPC) synchronization.
  Result<DopOutcome> outcome = tool_runner_(dop_type);

  MutexLock lock(&mu_);
  if (!outcome.ok()) return outcome.status();
  WorkflowLogEntry finish;
  finish.kind = WorkflowLogEntry::Kind::kDopFinish;
  finish.name = dop_type;
  finish.output = outcome->output;
  finish.inputs = outcome->inputs;
  finish.committed = outcome->committed;
  finish.path = path;
  AppendLogLocked(std::move(finish));
  ++stats_.dops_run;
  if (!outcome->committed) {
    return Status::Aborted("DOP '" + dop_type + "' aborted");
  }
  history_.push_back(dop_type);
  produced_.push_back(outcome->output);
  return Status::OK();
}

Status DesignManager::RunDaOpNode(const std::string& op_name,
                                  const std::string& path) {
  {
    MutexLock lock(&mu_);
    if (ConsumeReplayDecision(WorkflowLogEntry::Kind::kDaOp, path)) {
      ++stats_.decisions_replayed;
      return Status::OK();
    }
  }
  Status st = da_op_runner_ ? da_op_runner_(op_name) : Status::OK();
  if (st.ok()) {
    MutexLock lock(&mu_);
    WorkflowLogEntry entry;
    entry.kind = WorkflowLogEntry::Kind::kDaOp;
    entry.name = op_name;
    entry.path = path;
    AppendLogLocked(std::move(entry));
  }
  return st;
}

Status DesignManager::RunAlternativeNode(const ScriptNode* node, TaskRank rank,
                                         TaskNodeId self, TaskNodeId join) {
  const std::string path = TaskRankToString(Extend(rank, 0));
  size_t choice;
  bool replayed = false;
  {
    MutexLock lock(&mu_);
    if (auto record =
            ConsumeReplayDecision(WorkflowLogEntry::Kind::kAlternativeChoice,
                                  path)) {
      choice = record->choice;
      ++stats_.decisions_replayed;
      replayed = true;
    }
  }
  if (!replayed) {
    choice = decider()->ChooseAlternative(*node);
    if (choice >= node->children().size()) {
      return Status::InvalidArgument(
          "alternative choice " + std::to_string(choice) + " out of range (" +
          std::to_string(node->children().size()) + " paths)");
    }
    MutexLock lock(&mu_);
    WorkflowLogEntry entry;
    entry.kind = WorkflowLogEntry::Kind::kAlternativeChoice;
    entry.choice = choice;
    entry.path = path;
    AppendLogLocked(std::move(entry));
  }
  // Expand the chosen path and hand the join over to its tail before
  // this decision completes — the join can then only fire once the
  // expansion has drained.
  std::vector<TaskNodeId> tails =
      LowerNode(node->children()[choice].get(), Extend(rank, 1), {self});
  for (TaskNodeId tail : tails) graph_.AddEdge(tail, join);
  return Status::OK();
}

Status DesignManager::RunIterationNode(const ScriptNode* node, TaskRank rank,
                                       int pass, TaskNodeId self,
                                       TaskNodeId join) {
  bool another;
  if (pass == 0) {
    another = true;  // the body always runs at least once (not logged)
  } else {
    const std::string path =
        TaskRankToString(Extend(rank, static_cast<uint32_t>(2 * pass)));
    bool replayed = false;
    {
      MutexLock lock(&mu_);
      if (auto record = ConsumeReplayDecision(
              WorkflowLogEntry::Kind::kIterationDecision, path)) {
        another = record->continue_flag;
        ++stats_.decisions_replayed;
        replayed = true;
      }
    }
    if (!replayed) {
      another = pass < node->max_iterations() &&
                decider()->ContinueIteration(*node, pass);
      MutexLock lock(&mu_);
      WorkflowLogEntry entry;
      entry.kind = WorkflowLogEntry::Kind::kIterationDecision;
      entry.continue_flag = another;
      entry.path = path;
      AppendLogLocked(std::move(entry));
    }
  }
  if (!another) return Status::OK();
  // Expand this pass's body and the next decision; the next decision
  // takes its join edge at creation, before this one completes.
  std::vector<TaskNodeId> tails =
      LowerNode(node->children().front().get(),
                Extend(rank, static_cast<uint32_t>(2 * pass + 1)), {self});
  TaskNodeId next = MakeIterationDecision(node, rank, pass + 1, join);
  for (TaskNodeId tail : tails) graph_.AddEdge(tail, next);
  return Status::OK();
}

Status DesignManager::RunOpenNode(const ScriptNode* node, TaskRank rank,
                                  TaskNodeId self, TaskNodeId join) {
  const std::string path = TaskRankToString(Extend(rank, 0));
  std::vector<std::string> plan;
  bool replayed = false;
  {
    MutexLock lock(&mu_);
    if (auto record =
            ConsumeReplayDecision(WorkflowLogEntry::Kind::kOpenPlan, path)) {
      plan = std::move(record->plan);
      ++stats_.decisions_replayed;
      replayed = true;
    }
  }
  if (!replayed) {
    plan = decider()->PlanOpenSegment(*node);
    MutexLock lock(&mu_);
    WorkflowLogEntry entry;
    entry.kind = WorkflowLogEntry::Kind::kOpenPlan;
    entry.plan = plan;
    entry.path = path;
    AppendLogLocked(std::move(entry));
  }
  // Designer-chosen actions run sequentially (the paper's open segment
  // is an interactive session, not a fork).
  TaskNodeId prev = self;
  for (size_t i = 0; i < plan.size(); ++i) {
    TaskRank dop_rank = Extend(rank, static_cast<uint32_t>(i + 1));
    TaskNodeId id = graph_.AddNode(
        TaskNodeKind::kDop, dop_rank, plan[i],
        [this, name = plan[i], dop_path = TaskRankToString(dop_rank)] {
          return RunDopNode(name, dop_path);
        },
        dop_timeout_);
    graph_.AddEdge(prev, id);
    prev = id;
  }
  if (prev != self) graph_.AddEdge(prev, join);
  return Status::OK();
}

// --- Replay records ----------------------------------------------------

std::optional<DesignManager::ReplayDop> DesignManager::ConsumeReplayDop(
    const std::string& path) {
  auto it = replay_dops_.find(path);
  if (it == replay_dops_.end() || it->second.empty()) return std::nullopt;
  ReplayDop record = it->second.front();
  it->second.pop_front();
  if (!record.has_finish || it->second.empty()) {
    // A dangling start makes any later record at this path ambiguous
    // (the old machine truncated the log suffix here) — drop them.
    replay_dops_.erase(it);
  }
  return record;
}

std::optional<DesignManager::ReplayDecision>
DesignManager::ConsumeReplayDecision(WorkflowLogEntry::Kind kind,
                                     const std::string& path) {
  auto it = replay_decisions_.find({static_cast<int>(kind), path});
  if (it == replay_decisions_.end() || it->second.empty()) return std::nullopt;
  ReplayDecision record = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) replay_decisions_.erase(it);
  return record;
}

bool DesignManager::ReplayPending() const {
  MutexLock lock(&mu_);
  return !replay_dops_.empty() || !replay_decisions_.empty();
}

void DesignManager::ClearReplay() {
  MutexLock lock(&mu_);
  replay_dops_.clear();
  replay_decisions_.clear();
}

// --- Driving -----------------------------------------------------------

Result<bool> DesignManager::Step() {
  if (state_ != DmState::kActive) {
    return Status::FailedPrecondition("design manager is " +
                                      std::string(DmStateToString(state_)));
  }
  if (!started_) {
    return Status::FailedPrecondition("design manager not started");
  }
  if (!graph_.HasReady()) {
    // Execution finished: check the eventually/immediately-followed-by
    // obligations before declaring the DA's work flow complete.
    if (constraints_ != nullptr) {
      MutexLock lock(&mu_);
      Status complete = constraints_->CheckComplete(history_);
      if (!complete.ok()) {
        state_ = DmState::kPaused;
        return complete;
      }
    }
    state_ = DmState::kCompleted;
    return false;
  }
  CONCORD_ASSIGN_OR_RETURN(bool ran, scheduler_.StepOne());
  (void)ran;
  return true;
}

Status DesignManager::RunToCompletion() {
  // Pooled fast path: overlap ready DOPs across the executor pool.
  // The trailing Step() loop then performs the completion check (and
  // is the entire path in inline mode).
  if (scheduler_.Pooled() && started_ && state_ == DmState::kActive) {
    CONCORD_RETURN_NOT_OK(scheduler_.Run());
  }
  while (true) {
    Result<bool> more = Step();
    if (!more.ok()) return more.status();
    if (!*more) return Status::OK();
    if (state_ != DmState::kActive) return Status::OK();
  }
}

Status DesignManager::HandleEvent(const Event& event) {
  {
    MutexLock lock(&mu_);
    ++stats_.events_handled;
  }
  // Built-in semantics (Sect. 5.3).
  if (event.type == "Modify_Sub_DA_Specification" ||
      event.type == "Restart") {
    // "DA execution has to be restarted from the beginning. However,
    // the designer may choose any previously derived DOV as a starting
    // point" — produced_ survives the restart for exactly that reason.
    {
      MutexLock lock(&mu_);
      WorkflowLogEntry entry;
      entry.kind = WorkflowLogEntry::Kind::kRestart;
      entry.name = event.type;
      AppendLogLocked(std::move(entry));
    }
    ClearReplay();
    ResetMachine();
    if (state_ == DmState::kCompleted || state_ == DmState::kPaused) {
      state_ = DmState::kActive;
    }
    {
      MutexLock lock(&mu_);
      ++stats_.restarts;
    }
  } else if (event.type == "Withdrawal") {
    if (UsedDov(event.dov)) {
      // "the processing needs to be stopped and the designer has to
      // decide on how to continue".
      state_ = DmState::kPaused;
      CONCORD_INFO("dm", da_.ToString()
                             << " paused: withdrawn " << event.dov.ToString()
                             << " was used by a local DOP");
    }
    // Otherwise: "there is no necessity for the designer to invalidate
    // his own results".
  }
  std::vector<Status> errors;
  // Dispatch with mu_ released (rule callbacks may re-enter the DM);
  // only the counter update takes the lock.
  uint64_t fired = rules_.Dispatch(event, &errors);
  {
    MutexLock lock(&mu_);
    stats_.rules_fired += fired;
  }
  if (!errors.empty()) return errors.front();
  return Status::OK();
}

Status DesignManager::ResumeAfterPause() {
  if (state_ != DmState::kPaused) {
    return Status::FailedPrecondition("design manager is not paused");
  }
  state_ = DmState::kActive;
  return Status::OK();
}

void DesignManager::Crash() {
  graph_.Clear();
  {
    MutexLock lock(&mu_);
    history_.clear();
    produced_.clear();
  }
  ClearReplay();
  state_ = DmState::kCrashed;
}

Status DesignManager::Recover() {
  if (state_ != DmState::kCrashed) {
    return Status::FailedPrecondition("design manager did not crash");
  }
  // Forward recovery: partition the persistent log into epochs at the
  // kRestart records. Prior-epoch entries belong to graph
  // instantiations that were restarted — their DOVs and replay
  // statistics are restored directly (history is not: a restart wiped
  // it). Current-epoch entries become per-path replay records the
  // re-instantiated graph consumes as its nodes execute.
  ClearReplay();
  {
    MutexLock lock(&mu_);
    produced_.clear();
    size_t current_epoch = 0;
    for (const WorkflowLogEntry& entry : persistent_log_) {
      if (entry.kind == WorkflowLogEntry::Kind::kRestart) ++current_epoch;
    }
    size_t epoch = 0;
    for (const WorkflowLogEntry& entry : persistent_log_) {
      switch (entry.kind) {
        case WorkflowLogEntry::Kind::kRestart:
          ++epoch;
          break;
        case WorkflowLogEntry::Kind::kDopStart: {
          if (epoch < current_epoch) break;
          replay_dops_[entry.path].emplace_back();
          break;
        }
        case WorkflowLogEntry::Kind::kDopFinish: {
          if (epoch < current_epoch) {
            ++stats_.dops_replayed;
            if (entry.committed) produced_.push_back(entry.output);
            break;
          }
          // Pair with this path's newest unfinished start (appends are
          // FIFO per path, however threads interleaved across paths).
          auto& records = replay_dops_[entry.path];
          auto open = std::find_if(
              records.rbegin(), records.rend(),
              [](const ReplayDop& record) { return !record.has_finish; });
          if (open == records.rend()) {
            records.emplace_back();
            open = records.rbegin();
          }
          open->has_finish = true;
          open->committed = entry.committed;
          open->output = entry.output;
          open->inputs = entry.inputs;
          break;
        }
        case WorkflowLogEntry::Kind::kDaOp:
        case WorkflowLogEntry::Kind::kAlternativeChoice:
        case WorkflowLogEntry::Kind::kIterationDecision:
        case WorkflowLogEntry::Kind::kOpenPlan: {
          if (epoch < current_epoch) {
            ++stats_.decisions_replayed;
            break;
          }
          ReplayDecision record;
          record.choice = entry.choice;
          record.continue_flag = entry.continue_flag;
          record.plan = entry.plan;
          replay_decisions_[{static_cast<int>(entry.kind), entry.path}]
              .push_back(std::move(record));
          break;
        }
      }
    }
  }
  ResetMachine();
  state_ = DmState::kActive;
  started_ = true;
  // Drive the fresh graph through the replayable prefix so the
  // volatile state (history, node positions) is restored; live
  // execution then continues from the crash point. Replayed aborts
  // surface as they did originally and leave their node re-armed as a
  // retry point.
  while (ReplayPending()) {
    Result<bool> more = Step();
    if (!more.ok()) {
      if (more.status().IsAborted()) continue;  // replayed abort: retry point
      return more.status();
    }
    if (!*more || state_ != DmState::kActive) break;
  }
  return Status::OK();
}

bool DesignManager::UsedDov(DovId dov) const {
  MutexLock lock(&mu_);
  for (const WorkflowLogEntry& entry : persistent_log_) {
    if (entry.kind != WorkflowLogEntry::Kind::kDopFinish || !entry.committed) {
      continue;
    }
    if (std::find(entry.inputs.begin(), entry.inputs.end(), dov) !=
        entry.inputs.end()) {
      return true;
    }
  }
  return false;
}

}  // namespace concord::workflow
