#ifndef CONCORD_WORKFLOW_SCRIPT_SCHEDULER_H_
#define CONCORD_WORKFLOW_SCRIPT_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "workflow/task_graph.h"

namespace concord::workflow {

/// A reusable pool of executor threads for task-node bodies. One pool
/// serves any number of design managers / scheduler runs (the paper's
/// workstation drives many DAs; spawning threads per script run would
/// dominate short scripts). A pool of 0 threads is valid and means
/// "inline": schedulers bound to it run single-threaded.
class ExecutorPool {
 public:
  explicit ExecutorPool(size_t threads);
  ~ExecutorPool();
  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  size_t threads() const { return threads_.size(); }
  /// Enqueues a task; a pool of 0 threads runs it inline.
  void Submit(std::function<void()> task);

 private:
  void RunLoop();

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

/// Scheduler callbacks, fired on the choreographer thread (the thread
/// calling StepOne()/Run()), never from executors: on_start before a
/// node is dispatched, on_complete after it retires OK, on_error after
/// it fails (with the failure status).
struct SchedulerHooks {
  std::function<void(const TaskNode&)> on_start;
  std::function<void(const TaskNode&)> on_complete;
  std::function<void(const TaskNode&, const Status&)> on_error;
};

/// Drives a TaskGraph to completion. Two modes share one code path:
///
///  - Inline (no pool, or a pool of < 2 threads): StepOne()/Run()
///    execute ready nodes lowest-rank-first on the calling thread —
///    deterministic and bit-identical to the old synchronous stack
///    machine.
///  - Pooled: Run() dispatches ready kDop/kDaOp bodies to the executor
///    pool and retires them as they complete. kDecision and kJoin
///    nodes always run on the choreographer thread, so all graph
///    mutation (including mid-run expansion by decision bodies) is
///    single-threaded; executors only run bodies and report back
///    through the completion queue.
///
/// The scheduler does not own the graph — the design manager rebuilds
/// the graph across restarts/recoveries and rebinds it.
class ScriptScheduler {
 public:
  explicit ScriptScheduler(SimClock* clock = nullptr) : clock_(clock) {}

  void Bind(TaskGraph* graph) { graph_ = graph; }
  TaskGraph* graph() { return graph_; }
  void SetPool(ExecutorPool* pool) { pool_ = pool; }
  bool Pooled() const { return pool_ != nullptr && pool_->threads() > 1; }
  void set_error_policy(ErrorPolicy policy) { policy_ = policy; }
  ErrorPolicy error_policy() const { return policy_; }
  SchedulerHooks& hooks() { return hooks_; }

  /// Executes the lowest-ranked ready node inline. Returns true when a
  /// node ran OK, false when nothing was ready (the graph is quiescent
  /// — finished, or stuck on a failure), error when the node failed
  /// (under kCancelOnError the node is re-armed as a retry point).
  Result<bool> StepOne();

  /// Drives the graph until quiescent. Pooled mode overlaps ready
  /// nodes across executors; inline mode is repeated StepOne(). Under
  /// kCancelOnError the first error stops dispatch (in-flight nodes
  /// drain) and is returned; under kContinueOnError independent
  /// subtrees keep going and the first error is reported at the end.
  Status Run();

  /// Highest number of node bodies in flight at once across all Run()
  /// calls (1 in inline mode) — the bench's parallelism gauge.
  size_t peak_concurrency() const { return peak_concurrency_; }

 private:
  void RetireOk(TaskNodeId id);
  /// Applies the error policy. Returns the (possibly first) error.
  void RetireError(TaskNodeId id, const Status& status, Status* first_error);

  TaskGraph* graph_ = nullptr;
  ExecutorPool* pool_ = nullptr;
  SimClock* clock_ = nullptr;
  ErrorPolicy policy_ = ErrorPolicy::kCancelOnError;
  SchedulerHooks hooks_;
  size_t peak_concurrency_ = 1;

  /// Completion queue: executors push (node, status), the
  /// choreographer pops. The only cross-thread state.
  Mutex done_mu_;
  CondVar done_cv_;
  std::deque<std::pair<TaskNodeId, Status>> done_ GUARDED_BY(done_mu_);
};

}  // namespace concord::workflow

#endif  // CONCORD_WORKFLOW_SCRIPT_SCHEDULER_H_
