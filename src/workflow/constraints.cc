#include "workflow/constraints.h"

#include <algorithm>
#include <set>

namespace concord::workflow {

std::string DomainConstraint::ToString() const {
  switch (kind) {
    case Kind::kPrecedes:
      return first + " precedes " + second;
    case Kind::kEventuallyFollowedBy:
      return first + " eventually followed by " + second;
    case Kind::kImmediatelyFollowedBy:
      return first + " immediately followed by " + second;
  }
  return "?";
}

ConstraintSet& ConstraintSet::Precedes(std::string first, std::string second) {
  constraints_.push_back({DomainConstraint::Kind::kPrecedes, std::move(first),
                          std::move(second)});
  return *this;
}

ConstraintSet& ConstraintSet::EventuallyFollowedBy(std::string first,
                                                   std::string second) {
  constraints_.push_back({DomainConstraint::Kind::kEventuallyFollowedBy,
                          std::move(first), std::move(second)});
  return *this;
}

ConstraintSet& ConstraintSet::ImmediatelyFollowedBy(std::string first,
                                                    std::string second) {
  constraints_.push_back({DomainConstraint::Kind::kImmediatelyFollowedBy,
                          std::move(first), std::move(second)});
  return *this;
}

Status ConstraintSet::CheckAdmissible(
    const std::vector<std::string>& completed, const std::string& next) const {
  for (const DomainConstraint& constraint : constraints_) {
    switch (constraint.kind) {
      case DomainConstraint::Kind::kPrecedes:
        if (constraint.second == next &&
            std::find(completed.begin(), completed.end(), constraint.first) ==
                completed.end()) {
          return Status::ConstraintViolation(
              "DOP '" + next + "' must not be applied before '" +
              constraint.first + "' has successfully completed");
        }
        break;
      case DomainConstraint::Kind::kImmediatelyFollowedBy:
        if (!completed.empty() && completed.back() == constraint.first &&
            next != constraint.second) {
          return Status::ConstraintViolation(
              "DOP '" + constraint.first + "' must be immediately followed by '" +
              constraint.second + "', got '" + next + "'");
        }
        break;
      case DomainConstraint::Kind::kEventuallyFollowedBy:
        break;  // end-of-DA obligation, see CheckComplete
    }
  }
  return Status::OK();
}

Status ConstraintSet::CheckComplete(
    const std::vector<std::string>& completed) const {
  for (const DomainConstraint& constraint : constraints_) {
    if (constraint.kind == DomainConstraint::Kind::kEventuallyFollowedBy ||
        constraint.kind == DomainConstraint::Kind::kImmediatelyFollowedBy) {
      for (size_t i = 0; i < completed.size(); ++i) {
        if (completed[i] != constraint.first) continue;
        bool satisfied = false;
        if (constraint.kind == DomainConstraint::Kind::kImmediatelyFollowedBy) {
          satisfied = i + 1 < completed.size() &&
                      completed[i + 1] == constraint.second;
        } else {
          for (size_t j = i + 1; j < completed.size(); ++j) {
            if (completed[j] == constraint.second) {
              satisfied = true;
              break;
            }
          }
        }
        if (!satisfied) {
          return Status::ConstraintViolation("unfulfilled obligation: " +
                                             constraint.ToString());
        }
      }
    }
  }
  return Status::OK();
}

namespace {

using TypeSet = std::set<std::string>;

/// Wildcard contributed by `open` segments: the designer may perform
/// any intermediate actions there, so later precedence requirements
/// cannot be statically refuted (the runtime admission check still
/// guards them).
constexpr char kAnyType[] = "*";

/// Recursive conservative analysis; returns the set of DOP types
/// guaranteed to have completed once `node` finishes, assuming the
/// types in `before` completed earlier. Fails fast on a provable
/// precedence violation.
Result<TypeSet> Analyze(const ConstraintSet& constraints,
                        const ScriptNode* node, const TypeSet& before) {
  switch (node->kind()) {
    case ScriptNode::Kind::kDop: {
      for (const DomainConstraint& c : constraints.constraints()) {
        if (c.kind == DomainConstraint::Kind::kPrecedes &&
            c.second == node->name() && !before.count(c.first) &&
            !before.count(kAnyType)) {
          return Status::ConstraintViolation(
              "script contradicts domain constraint '" + c.ToString() +
              "': '" + node->name() + "' reachable without prior '" + c.first +
              "'");
        }
      }
      return TypeSet{node->name()};
    }
    case ScriptNode::Kind::kDaOp:
      return TypeSet{};
    case ScriptNode::Kind::kOpen:
      return TypeSet{kAnyType};
    case ScriptNode::Kind::kSequence: {
      TypeSet acc = before;
      for (const auto& child : node->children()) {
        CONCORD_ASSIGN_OR_RETURN(TypeSet g,
                                 Analyze(constraints, child.get(), acc));
        acc.insert(g.begin(), g.end());
      }
      TypeSet gained;
      for (const auto& t : acc) {
        if (!before.count(t)) gained.insert(t);
      }
      return gained;
    }
    case ScriptNode::Kind::kBranch: {
      // Children may interleave arbitrarily: each child can only rely
      // on what held before the branch, but after the join all
      // children's work is guaranteed.
      TypeSet gained;
      for (const auto& child : node->children()) {
        CONCORD_ASSIGN_OR_RETURN(TypeSet g,
                                 Analyze(constraints, child.get(), before));
        gained.insert(g.begin(), g.end());
      }
      return gained;
    }
    case ScriptNode::Kind::kAlternative: {
      // Exactly one child runs: only the intersection is guaranteed.
      bool first_child = true;
      TypeSet common;
      for (const auto& child : node->children()) {
        CONCORD_ASSIGN_OR_RETURN(TypeSet g,
                                 Analyze(constraints, child.get(), before));
        if (first_child) {
          common = std::move(g);
          first_child = false;
        } else {
          TypeSet intersection;
          std::set_intersection(common.begin(), common.end(), g.begin(),
                                g.end(),
                                std::inserter(intersection,
                                              intersection.begin()));
          common = std::move(intersection);
        }
      }
      return common;
    }
    case ScriptNode::Kind::kIteration: {
      // The body runs at least once; validating the first pass (fewest
      // guarantees) is conservative for later passes.
      return Analyze(constraints, node->children().front().get(), before);
    }
  }
  return TypeSet{};
}

}  // namespace

Status ConstraintSet::ValidateScript(const Script& script) const {
  if (script.empty()) return Status::OK();
  auto result = Analyze(*this, script.root(), TypeSet{});
  return result.ok() ? Status::OK() : result.status();
}

}  // namespace concord::workflow
