#include "workflow/script_scheduler.h"

#include <utility>

namespace concord::workflow {

ExecutorPool::ExecutorPool(size_t threads) {
  threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { RunLoop(); });
  }
}

ExecutorPool::~ExecutorPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& thread : threads_) thread.join();
}

void ExecutorPool::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ExecutorPool::RunLoop() {
  // Pool threads run task-node bodies and own no partitioned state; the
  // role tag keeps the partition asserts honest about who is who.
  ScopedThreadRole role(ThreadRole::kPoolExecutor);
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(&mu_);
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Runs a body copy with cooperative sim-time budget accounting. Works
/// on copies, never on TaskNode references: decision bodies expand the
/// graph, which can reallocate the node table mid-call.
Status RunBody(const std::function<Status()>& body, SimTime timeout,
               const std::string& name, SimClock* clock) {
  if (!body) return Status::OK();
  const SimTime started = clock != nullptr ? clock->Now() : 0;
  Status status = body();
  if (status.ok() && timeout > 0 && clock != nullptr) {
    const SimTime elapsed = clock->Now() - started;
    if (elapsed > timeout) {
      status = Status::Aborted(
          "task '" + name + "' exceeded its time budget (" +
          FormatSimTime(elapsed) + " > " + FormatSimTime(timeout) + ")");
    }
  }
  return status;
}

}  // namespace

void ScriptScheduler::RetireOk(TaskNodeId id) {
  graph_->MarkDone(id);
  if (hooks_.on_complete) hooks_.on_complete(graph_->node(id));
}

void ScriptScheduler::RetireError(TaskNodeId id, const Status& status,
                                  Status* first_error) {
  graph_->node(id).last_status = status;
  if (policy_ == ErrorPolicy::kCancelOnError) {
    // Retry point: the node goes back to ready so a later Run()/Step()
    // resumes exactly here (aborted-DOP semantics).
    graph_->MarkReadyAgain(id);
  } else {
    graph_->MarkFailed(id);
  }
  if (hooks_.on_error) hooks_.on_error(graph_->node(id), status);
  if (first_error != nullptr && first_error->ok()) *first_error = status;
}

Result<bool> ScriptScheduler::StepOne() {
  if (graph_ == nullptr) return Status::Internal("scheduler has no graph");
  TaskNodeId id = graph_->MinReady();
  if (id == kNoTaskNode) return false;
  graph_->MarkRunning(id);
  if (hooks_.on_start) hooks_.on_start(graph_->node(id));
  // Copy body parameters: the body may grow the node table.
  Status status = RunBody(graph_->node(id).body, graph_->node(id).timeout,
                          graph_->node(id).name, clock_);
  if (status.ok()) {
    RetireOk(id);
    return true;
  }
  Status first_error;
  RetireError(id, status, &first_error);
  return first_error;
}

Status ScriptScheduler::Run() {
  if (graph_ == nullptr) return Status::Internal("scheduler has no graph");
  if (!Pooled()) {
    Status first_error;
    while (true) {
      Result<bool> more = StepOne();
      if (!more.ok()) {
        // kCancelOnError re-armed the node as a ready retry point —
        // stepping on would re-run it immediately; stop here. Under
        // kContinueOnError the node is terminal, so the independent
        // rest of the graph keeps draining.
        if (policy_ == ErrorPolicy::kCancelOnError) return more.status();
        if (first_error.ok()) first_error = more.status();
        continue;
      }
      if (!*more) return first_error;
    }
  }

  // Pooled mode. All graph access stays on this thread; executors run
  // body copies and push completions. `dispatching` goes false on the
  // first error under kCancelOnError: in-flight bodies drain, nothing
  // new starts, and the failed node waits as a ready retry point.
  Status first_error;
  bool dispatching = true;
  size_t in_flight = 0;
  while (true) {
    // Dispatch every ready node we are allowed to overlap. Decisions
    // and joins run here (they mutate the graph); DOPs and DA-ops go
    // to the pool.
    while (dispatching && graph_->HasReady()) {
      TaskNodeId id = graph_->MinReady();
      const TaskNodeKind kind = graph_->node(id).kind;
      graph_->MarkRunning(id);
      if (hooks_.on_start) hooks_.on_start(graph_->node(id));
      if (kind == TaskNodeKind::kDecision || kind == TaskNodeKind::kJoin) {
        Status status = RunBody(graph_->node(id).body, graph_->node(id).timeout,
                                graph_->node(id).name, clock_);
        if (status.ok()) {
          RetireOk(id);
        } else {
          RetireError(id, status, &first_error);
          if (policy_ == ErrorPolicy::kCancelOnError) dispatching = false;
        }
        continue;
      }
      ++in_flight;
      if (in_flight > peak_concurrency_) peak_concurrency_ = in_flight;
      // The executor gets copies of everything it needs: it must not
      // touch the graph (the node table can move under expansion).
      pool_->Submit([this, id, body = graph_->node(id).body,
                     timeout = graph_->node(id).timeout,
                     name = graph_->node(id).name] {
        Status status = RunBody(body, timeout, name, clock_);
        {
          MutexLock lock(&done_mu_);
          done_.emplace_back(id, std::move(status));
          // Notify under the lock: the choreographer may retire this
          // completion, return from Run(), and destroy the scheduler the
          // moment it can re-acquire done_mu_ — notifying after unlock
          // would touch a dead condition variable.
          done_cv_.NotifyOne();
        }
      });
    }

    if (in_flight == 0) {
      if (!graph_->HasReady() || !dispatching) break;
      continue;
    }

    // Retire at least one completion (block until an executor reports).
    std::deque<std::pair<TaskNodeId, Status>> batch;
    {
      MutexLock lock(&done_mu_);
      while (done_.empty()) done_cv_.Wait(&done_mu_);
      batch.swap(done_);
    }
    for (auto& [id, status] : batch) {
      --in_flight;
      if (status.ok()) {
        RetireOk(id);
      } else {
        RetireError(id, status, &first_error);
        if (policy_ == ErrorPolicy::kCancelOnError) dispatching = false;
      }
    }
  }
  return first_error;
}

}  // namespace concord::workflow
