#include "workflow/events.h"

namespace concord::workflow {

RuleId RuleEngine::AddRule(std::string event_type, std::string description,
                           std::function<bool(const Event&)> condition,
                           std::function<Status(const Event&)> action) {
  RuleId id = id_gen_.Next();
  rules_.push_back(EcaRule{id, std::move(event_type), std::move(description),
                           std::move(condition), std::move(action)});
  return id;
}

Status RuleEngine::RemoveRule(RuleId id) {
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if (it->id == id) {
      rules_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no rule " + id.ToString());
}

int RuleEngine::Dispatch(const Event& event, std::vector<Status>* errors) {
  int fired = 0;
  // Snapshot: actions may add/remove rules.
  std::vector<const EcaRule*> matching;
  for (const EcaRule& rule : rules_) {
    if (rule.event_type == event.type) matching.push_back(&rule);
  }
  for (const EcaRule* rule : matching) {
    if (rule->condition && !rule->condition(event)) continue;
    ++fired;
    if (rule->action) {
      Status st = rule->action(event);
      if (!st.ok() && errors != nullptr) errors->push_back(st);
    }
  }
  return fired;
}

}  // namespace concord::workflow
