#ifndef CONCORD_WORKFLOW_DESIGN_MANAGER_H_
#define CONCORD_WORKFLOW_DESIGN_MANAGER_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "workflow/constraints.h"
#include "workflow/events.h"
#include "workflow/script.h"

namespace concord::workflow {

/// Result of running one DOP, as reported back to the DM by the tool
/// runner ("as soon as a DOP finishes, the TM passes on the information
/// needed by the DM to proceed, i.e., commit/abort flag and a handle to
/// the DOP's design data", Sect. 5.3).
struct DopOutcome {
  bool committed = false;
  /// Identifier of the output DOV (invalid on abort).
  DovId output;
  /// Input DOVs the DOP consumed — the DM logs these so it can later
  /// "analyze (its log data) whether [a withdrawn] pre-released DOV was
  /// used within a local DOP" (Sect. 5.3).
  std::vector<DovId> inputs;
};

/// Runs a DOP of the given type in the context of the owning DA and
/// returns its outcome. Bound to real tools by the VLSI layer, to
/// stubs by tests.
using ToolRunner =
    std::function<Result<DopOutcome>(const std::string& dop_type)>;

/// Executes a DA-level operation named in a script's kDaOp node
/// (Evaluate, Propagate, Create_Sub_DA, ...). Bound by the core layer
/// to the cooperation manager.
using DaOpRunner = std::function<Status(const std::string& op_name)>;

/// Designer decisions the script leaves open. "Whenever several
/// choices are left open ... the associated designer ... has to specify
/// how to continue using direct interventions" (Sect. 4.2).
class DecisionMaker {
 public:
  virtual ~DecisionMaker() = default;
  /// Picks a child index of an alternative node.
  virtual size_t ChooseAlternative(const ScriptNode& alternative) = 0;
  /// Another pass of an iteration body? Called after each pass.
  virtual bool ContinueIteration(const ScriptNode& iteration,
                                 int passes_done) = 0;
  /// The DOP types to perform inside an `open` segment (may be empty).
  virtual std::vector<std::string> PlanOpenSegment(const ScriptNode& open) = 0;
};

/// A DecisionMaker that always takes the first alternative, never
/// repeats iterations beyond the first pass, and leaves open segments
/// empty. Useful for tests and as a default.
class FirstPathDecisionMaker : public DecisionMaker {
 public:
  size_t ChooseAlternative(const ScriptNode&) override { return 0; }
  bool ContinueIteration(const ScriptNode&, int) override { return false; }
  std::vector<std::string> PlanOpenSegment(const ScriptNode&) override {
    return {};
  }
};

/// Execution log entry (persistent). The DM writes "a log entry
/// capturing all DOP parameters ... for each start and finish of a DOP
/// execution" plus decision records, enabling forward recovery.
struct WorkflowLogEntry {
  enum class Kind {
    kDopStart,
    kDopFinish,
    kDaOp,
    kAlternativeChoice,
    kIterationDecision,
    kOpenPlan,
    kRestart,
  };
  Kind kind;
  uint64_t sequence = 0;
  std::string name;               // DOP type or DA op name
  DovId output;                   // kDopFinish
  std::vector<DovId> inputs;      // kDopFinish
  bool committed = false;         // kDopFinish
  size_t choice = 0;              // kAlternativeChoice
  bool continue_flag = false;     // kIterationDecision
  std::vector<std::string> plan;  // kOpenPlan

  static const char* KindToString(Kind kind);
};

enum class DmState {
  kActive,
  /// Stopped awaiting designer input (e.g. after a withdrawal hit).
  kPaused,
  kCompleted,
  kCrashed,
};

const char* DmStateToString(DmState state);

struct DmStats {
  uint64_t dops_run = 0;
  uint64_t dops_replayed = 0;
  uint64_t decisions_replayed = 0;
  uint64_t constraint_rejections = 0;
  uint64_t events_handled = 0;
  uint64_t rules_fired = 0;
  uint64_t restarts = 0;
};

/// The design manager of one DA (Sect. 5.3): enforces the work flow
/// given by script + domain constraints + ECA rules, reacts to external
/// events, and provides recoverable script execution via a persistent
/// script and a persistent execution log.
///
/// The execution engine is an explicit stack machine over the script
/// AST, so a workstation crash can happen between any two atomic
/// actions; Recover() re-instantiates the machine and replays the log
/// (completed DOPs are not re-executed — forward recovery with
/// "minimum loss of work").
class DesignManager {
 public:
  DesignManager(DaId da, Script script, const ConstraintSet* constraints,
                SimClock* clock);
  DesignManager(const DesignManager&) = delete;
  DesignManager& operator=(const DesignManager&) = delete;

  DaId da() const { return da_; }
  DmState state() const { return state_; }
  const Script& script() const { return persistent_script_; }

  void SetToolRunner(ToolRunner runner) { tool_runner_ = std::move(runner); }
  void SetDaOpRunner(DaOpRunner runner) { da_op_runner_ = std::move(runner); }
  void SetDecisionMaker(DecisionMaker* maker) { decision_maker_ = maker; }
  RuleEngine& rules() { return rules_; }

  /// Validates the script against the domain constraints. Called by
  /// Start(); also usable standalone.
  Status ValidateScript() const;

  /// Initializes the execution machine. Fails if the script
  /// contradicts the domain constraints.
  Status Start();

  /// Executes one atomic action (one DOP, one DA op, or one structural
  /// advance). Returns true while there is more to do.
  Result<bool> Step();

  /// Drives Step() until completion or pause. On completion checks the
  /// "followed by" obligations of the domain constraints.
  Status RunToCompletion();

  /// External event entry point (from the CM or the TM). Applies
  /// built-in semantics (Sect. 5.3) then dispatches ECA rules:
  ///  - Modify_Sub_DA_Specification / restart-class events reset the
  ///    execution to the beginning (history of DOVs is kept);
  ///  - Withdrawal pauses the DA if the withdrawn DOV was used by a
  ///    completed local DOP (log analysis).
  Status HandleEvent(const Event& event);

  /// Designer resumes a paused DA (after deciding how to continue).
  Status ResumeAfterPause();

  // --- Failure handling -----------------------------------------------

  /// Workstation crash: the execution machine (volatile) is lost; the
  /// persistent script and log survive.
  void Crash();
  /// Replays the persistent log over a fresh machine.
  Status Recover();

  // --- Introspection ----------------------------------------------------

  /// Types of DOPs completed so far, in order.
  const std::vector<std::string>& CompletedDops() const { return history_; }
  /// Output DOVs produced by completed DOPs, in order.
  const std::vector<DovId>& ProducedDovs() const { return produced_; }
  const std::vector<WorkflowLogEntry>& log() const { return persistent_log_; }
  const DmStats& stats() const { return stats_; }
  /// True if the given DOV was consumed by any completed DOP (log
  /// analysis for withdrawal handling).
  bool UsedDov(DovId dov) const;

 private:
  struct Frame {
    const ScriptNode* node;
    size_t child_index = 0;
    int passes_done = 0;
    bool decided = false;
    size_t chosen = 0;
    bool planned = false;
    std::vector<std::string> open_plan;
    size_t open_index = 0;
  };

  static Frame MakeFrame(const ScriptNode* node) {
    Frame frame;
    frame.node = node;
    return frame;
  }

  /// Replay cursor: while replaying, decisions and DOP outcomes come
  /// from the log instead of callbacks/tools.
  bool Replaying() const { return replay_cursor_ < persistent_log_.size(); }
  const WorkflowLogEntry* PeekReplay(WorkflowLogEntry::Kind kind,
                                     const std::string& name);
  void AppendLog(WorkflowLogEntry entry);

  Status RunDop(const std::string& dop_type);
  Status RunDaOp(const std::string& op_name);
  void ResetMachine();

  DaId da_;
  /// Persistent (survives workstation crash).
  Script persistent_script_;
  std::vector<WorkflowLogEntry> persistent_log_;
  /// Volatile.
  std::vector<Frame> stack_;
  std::vector<std::string> history_;
  std::vector<DovId> produced_;
  DmState state_ = DmState::kActive;

  const ConstraintSet* constraints_;
  SimClock* clock_;
  ToolRunner tool_runner_;
  DaOpRunner da_op_runner_;
  DecisionMaker* decision_maker_ = nullptr;
  FirstPathDecisionMaker default_decisions_;
  RuleEngine rules_;
  uint64_t log_sequence_ = 0;
  size_t replay_cursor_ = 0;
  bool started_ = false;
  DmStats stats_;
};

}  // namespace concord::workflow

#endif  // CONCORD_WORKFLOW_DESIGN_MANAGER_H_
