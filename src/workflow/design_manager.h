#ifndef CONCORD_WORKFLOW_DESIGN_MANAGER_H_
#define CONCORD_WORKFLOW_DESIGN_MANAGER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "workflow/constraints.h"
#include "workflow/events.h"
#include "workflow/script.h"
#include "workflow/script_scheduler.h"
#include "workflow/task_graph.h"

namespace concord::workflow {

/// Result of running one DOP, as reported back to the DM by the tool
/// runner ("as soon as a DOP finishes, the TM passes on the information
/// needed by the DM to proceed, i.e., commit/abort flag and a handle to
/// the DOP's design data", Sect. 5.3).
struct DopOutcome {
  bool committed = false;
  /// Identifier of the output DOV (invalid on abort).
  DovId output;
  /// Input DOVs the DOP consumed — the DM logs these so it can later
  /// "analyze (its log data) whether [a withdrawn] pre-released DOV was
  /// used within a local DOP" (Sect. 5.3).
  std::vector<DovId> inputs;
};

/// Runs a DOP of the given type in the context of the owning DA and
/// returns its outcome. Bound to real tools by the VLSI layer, to
/// stubs by tests. With an executor pool bound to the DM, tool runners
/// are invoked from executor threads concurrently — they must be
/// thread-safe (the core layer's runner is).
using ToolRunner =
    std::function<Result<DopOutcome>(const std::string& dop_type)>;

/// Executes a DA-level operation named in a script's kDaOp node
/// (Evaluate, Propagate, Create_Sub_DA, ...). Bound by the core layer
/// to the cooperation manager.
using DaOpRunner = std::function<Status(const std::string& op_name)>;

/// Designer decisions the script leaves open. "Whenever several
/// choices are left open ... the associated designer ... has to specify
/// how to continue using direct interventions" (Sect. 4.2). Decision
/// callbacks always run on the choreographer thread (the thread
/// driving Step()/RunToCompletion()), never on executors.
class DecisionMaker {
 public:
  virtual ~DecisionMaker() = default;
  /// Picks a child index of an alternative node.
  virtual size_t ChooseAlternative(const ScriptNode& alternative) = 0;
  /// Another pass of an iteration body? Called after each pass.
  virtual bool ContinueIteration(const ScriptNode& iteration,
                                 int passes_done) = 0;
  /// The DOP types to perform inside an `open` segment (may be empty).
  virtual std::vector<std::string> PlanOpenSegment(const ScriptNode& open) = 0;
};

/// A DecisionMaker that always takes the first alternative, never
/// repeats iterations beyond the first pass, and leaves open segments
/// empty. Useful for tests and as a default.
class FirstPathDecisionMaker : public DecisionMaker {
 public:
  size_t ChooseAlternative(const ScriptNode&) override { return 0; }
  bool ContinueIteration(const ScriptNode&, int) override { return false; }
  std::vector<std::string> PlanOpenSegment(const ScriptNode&) override {
    return {};
  }
};

/// Execution log entry (persistent). The DM writes "a log entry
/// capturing all DOP parameters ... for each start and finish of a DOP
/// execution" plus decision records, enabling forward recovery. Each
/// entry carries the rank path of the task node that wrote it, so
/// recovery can re-match entries to the re-instantiated graph by
/// position — independent of the (possibly concurrent) append order.
struct WorkflowLogEntry {
  enum class Kind {
    kDopStart,
    kDopFinish,
    kDaOp,
    kAlternativeChoice,
    kIterationDecision,
    kOpenPlan,
    kRestart,
  };
  Kind kind;
  uint64_t sequence = 0;
  std::string name;               // DOP type or DA op name
  DovId output;                   // kDopFinish
  std::vector<DovId> inputs;      // kDopFinish
  bool committed = false;         // kDopFinish
  size_t choice = 0;              // kAlternativeChoice
  bool continue_flag = false;     // kIterationDecision
  std::vector<std::string> plan;  // kOpenPlan
  /// Rank path of the writing task node ("0.1.2"); empty for kRestart.
  std::string path;

  static const char* KindToString(Kind kind);
};

enum class DmState {
  kActive,
  /// Stopped awaiting designer input (e.g. after a withdrawal hit).
  kPaused,
  kCompleted,
  kCrashed,
};

const char* DmStateToString(DmState state);

struct DmStats {
  uint64_t dops_run = 0;
  uint64_t dops_replayed = 0;
  uint64_t decisions_replayed = 0;
  uint64_t constraint_rejections = 0;
  uint64_t events_handled = 0;
  uint64_t rules_fired = 0;
  uint64_t restarts = 0;
};

/// Per-node progress report fed to the cooperation layer: fired when a
/// task node starts, completes, or fails. Always invoked on the
/// choreographer thread.
using ProgressSink =
    std::function<void(const TaskNode& node, bool started, bool failed)>;

/// The design manager of one DA (Sect. 5.3): enforces the work flow
/// given by script + domain constraints + ECA rules, reacts to external
/// events, and provides recoverable script execution via a persistent
/// script and a persistent execution log.
///
/// The execution engine lowers the script AST onto an explicit task
/// graph (workflow/task_graph.h): DOP runs, DA-ops and decision points
/// become nodes; sequences chain them, branches fork them, and
/// alternatives / iterations / open segments become decision nodes that
/// expand the graph as the designer decides. A ScriptScheduler drives
/// the graph: without an executor pool it executes ready nodes
/// lowest-rank-first on the calling thread — deterministically
/// reproducing the old synchronous stack machine — and with a pool it
/// overlaps ready DOPs across executor threads ("branches for
/// concurrent execution", Sect. 4.2).
///
/// A workstation crash can happen between any two atomic actions;
/// Recover() re-instantiates the graph from the persistent script and
/// re-matches the persistent log to it by node path (completed DOPs are
/// not re-executed — forward recovery with "minimum loss of work").
class DesignManager {
 public:
  DesignManager(DaId da, Script script, const ConstraintSet* constraints,
                SimClock* clock);
  DesignManager(const DesignManager&) = delete;
  DesignManager& operator=(const DesignManager&) = delete;

  DaId da() const { return da_; }
  DmState state() const { return state_; }
  const Script& script() const { return persistent_script_; }

  void SetToolRunner(ToolRunner runner) { tool_runner_ = std::move(runner); }
  void SetDaOpRunner(DaOpRunner runner) { da_op_runner_ = std::move(runner); }
  void SetDecisionMaker(DecisionMaker* maker) { decision_maker_ = maker; }
  /// Binds a reusable executor pool: RunToCompletion() then overlaps
  /// ready DOP/DA-op nodes across the pool's threads. Without a pool
  /// (or with one of < 2 threads) execution stays single-threaded and
  /// deterministic.
  void SetExecutorPool(ExecutorPool* pool);
  /// Per-node progress events (scheduler hooks), e.g. for the
  /// cooperation manager's monitoring.
  void SetProgressSink(ProgressSink sink);
  /// Sim-time budget applied to every DOP node (0 = unlimited). An
  /// overrunning DOP is treated like an aborted one: error surfaced,
  /// node re-armed as a retry point.
  void set_dop_timeout(SimTime timeout) { dop_timeout_ = timeout; }
  RuleEngine& rules() { return rules_; }

  /// Validates the script against the domain constraints. Called by
  /// Start(); also usable standalone.
  Status ValidateScript() const;

  /// Lowers the script into the task graph and readies execution.
  /// Fails if the script contradicts the domain constraints.
  Status Start();

  /// Executes one atomic action (one DOP, one DA op, or one structural
  /// advance) — always inline, lowest-rank-first, regardless of any
  /// bound pool. Returns true while there is more to do.
  Result<bool> Step();

  /// Drives the graph until completion or pause. With a bound executor
  /// pool, ready DOPs overlap across its threads; otherwise this is
  /// Step() in a loop. On completion checks the "followed by"
  /// obligations of the domain constraints.
  Status RunToCompletion();

  /// External event entry point (from the CM or the TM). Applies
  /// built-in semantics (Sect. 5.3) then dispatches ECA rules:
  ///  - Modify_Sub_DA_Specification / restart-class events reset the
  ///    execution to the beginning (history of DOVs is kept);
  ///  - Withdrawal pauses the DA if the withdrawn DOV was used by a
  ///    completed local DOP (log analysis).
  /// Must not be called while a pooled RunToCompletion() is in flight.
  Status HandleEvent(const Event& event);

  /// Designer resumes a paused DA (after deciding how to continue).
  Status ResumeAfterPause();

  // --- Failure handling -----------------------------------------------

  /// Workstation crash: the task graph (volatile) is lost; the
  /// persistent script and log survive.
  void Crash();
  /// Re-lowers the script and replays the persistent log over the
  /// fresh graph, matching entries to nodes by rank path.
  Status Recover();

  // --- Introspection ----------------------------------------------------

  /// Introspection accessors return snapshots BY VALUE under mu_:
  /// executor threads mutate these during pooled runs, so a returned
  /// reference would be read unguarded by the caller.
  /// Types of DOPs completed so far, in order.
  std::vector<std::string> CompletedDops() const {
    MutexLock lock(&mu_);
    return history_;
  }
  /// Output DOVs produced by completed DOPs, in order.
  std::vector<DovId> ProducedDovs() const {
    MutexLock lock(&mu_);
    return produced_;
  }
  std::vector<WorkflowLogEntry> log() const {
    MutexLock lock(&mu_);
    return persistent_log_;
  }
  DmStats stats() const {
    MutexLock lock(&mu_);
    return stats_;
  }
  /// The scheduler (peak-concurrency gauge etc.).
  const ScriptScheduler& scheduler() const { return scheduler_; }
  /// True if the given DOV was consumed by any completed DOP (log
  /// analysis for withdrawal handling).
  bool UsedDov(DovId dov) const;

 private:
  /// Replay records rebuilt by Recover() from the current-epoch log
  /// suffix, keyed by node path and consumed FIFO (a retried node
  /// consumes its abort pair, then its success pair).
  struct ReplayDop {
    bool has_finish = false;
    bool committed = false;
    DovId output;
    std::vector<DovId> inputs;
  };
  struct ReplayDecision {
    size_t choice = 0;
    bool continue_flag = false;
    std::vector<std::string> plan;
  };

  DecisionMaker* decider() {
    return decision_maker_ != nullptr ? decision_maker_ : &default_decisions_;
  }

  void AppendLogLocked(WorkflowLogEntry entry) REQUIRES(mu_);

  // --- Script lowering (see docs/ARCHITECTURE.md, "Async script
  // engine") -------------------------------------------------------

  /// Rebuilds the task graph from the persistent script.
  void ResetMachine();
  /// Lowers `node` at `rank`, depending on `deps`; returns the tail
  /// node(s) successors must wait on.
  std::vector<TaskNodeId> LowerNode(const ScriptNode* node, TaskRank rank,
                                    std::vector<TaskNodeId> deps);
  /// Creates iteration decision #pass (0-based = passes completed) and
  /// wires it to the iteration's join.
  TaskNodeId MakeIterationDecision(const ScriptNode* node, TaskRank rank,
                                   int pass, TaskNodeId join);

  // --- Node bodies ---------------------------------------------------

  Status RunDopNode(const std::string& dop_type, const std::string& path);
  Status RunDaOpNode(const std::string& op_name, const std::string& path);
  Status RunAlternativeNode(const ScriptNode* node, TaskRank rank,
                            TaskNodeId self, TaskNodeId join);
  Status RunIterationNode(const ScriptNode* node, TaskRank rank, int pass,
                          TaskNodeId self, TaskNodeId join);
  Status RunOpenNode(const ScriptNode* node, TaskRank rank, TaskNodeId self,
                     TaskNodeId join);

  /// Pops the next replay record for (kind, path), if any. DOP records
  /// are consumed from executor threads, decisions from the
  /// choreographer only — but both under mu_ for uniformity.
  std::optional<ReplayDop> ConsumeReplayDop(const std::string& path)
      REQUIRES(mu_);
  std::optional<ReplayDecision> ConsumeReplayDecision(
      WorkflowLogEntry::Kind kind, const std::string& path) REQUIRES(mu_);
  bool ReplayPending() const;
  void ClearReplay();

  DaId da_;
  /// Guards persistent_log_, history_, produced_, stats_ and the
  /// replay records — the state node bodies touch from executor
  /// threads during pooled runs. Tool/DA-op runners and decision
  /// callbacks are always invoked with mu_ released.
  mutable Mutex mu_;
  /// Persistent (survives workstation crash).
  Script persistent_script_;
  std::vector<WorkflowLogEntry> persistent_log_ GUARDED_BY(mu_);
  /// Volatile: the lowered task graph and its scheduler.
  TaskGraph graph_;
  ScriptScheduler scheduler_;
  ExecutorPool* pool_ = nullptr;
  std::vector<std::string> history_ GUARDED_BY(mu_);
  std::vector<DovId> produced_ GUARDED_BY(mu_);
  DmState state_ = DmState::kActive;

  const ConstraintSet* constraints_;
  SimClock* clock_;
  ToolRunner tool_runner_;
  DaOpRunner da_op_runner_;
  DecisionMaker* decision_maker_ = nullptr;
  FirstPathDecisionMaker default_decisions_;
  ProgressSink progress_sink_;
  RuleEngine rules_;
  SimTime dop_timeout_ = 0;
  uint64_t log_sequence_ GUARDED_BY(mu_) = 0;
  bool started_ = false;
  DmStats stats_ GUARDED_BY(mu_);

  std::map<std::string, std::deque<ReplayDop>> replay_dops_ GUARDED_BY(mu_);
  std::map<std::pair<int, std::string>, std::deque<ReplayDecision>>
      replay_decisions_ GUARDED_BY(mu_);
};

}  // namespace concord::workflow

#endif  // CONCORD_WORKFLOW_DESIGN_MANAGER_H_
