#ifndef CONCORD_WORKFLOW_EVENTS_H_
#define CONCORD_WORKFLOW_EVENTS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"

namespace concord::workflow {

/// An asynchronously occurring event within a DA, caused by cooperation
/// relationships (Sect. 4.2): Require/Propose arriving from other DAs,
/// specification changes pushed by the super-DA, withdrawal
/// notifications from the CM, and DOP completions from the TM.
struct Event {
  /// Event type, by convention the cooperation operation name
  /// ("Require", "Propose", "Modify_Sub_DA_Specification",
  /// "Withdrawal", "Invalidation", "DOP_Finished", ...).
  std::string type;
  /// Originating DA (invalid for system events).
  DaId from_da;
  /// Subject version, when the event concerns one.
  DovId dov;
  /// Free-form parameters (feature names, reasons, ...).
  std::map<std::string, std::string> params;

  std::string ToString() const {
    std::string out = type;
    if (from_da.valid()) out += " from " + from_da.ToString();
    if (dov.valid()) out += " on " + dov.ToString();
    return out;
  }
};

class DesignManager;

/// An (event, condition, action) rule (Sect. 4.2): "WHEN Require IF
/// (required DOV available) THEN Propagate". Conditions and actions
/// are callbacks so applications can bind arbitrary cooperation
/// operations; the DM evaluates rules in registration order.
struct EcaRule {
  RuleId id;
  /// Matched against Event::type.
  std::string event_type;
  std::string description;
  std::function<bool(const Event&)> condition;
  std::function<Status(const Event&)> action;
};

/// Per-DA rule set.
class RuleEngine {
 public:
  RuleId AddRule(std::string event_type, std::string description,
                 std::function<bool(const Event&)> condition,
                 std::function<Status(const Event&)> action);
  Status RemoveRule(RuleId id);

  /// Fires all matching rules; returns the number fired. Rule action
  /// failures are collected into `errors` (processing continues — a
  /// failing reaction must not wedge the DA).
  int Dispatch(const Event& event, std::vector<Status>* errors = nullptr);

  size_t size() const { return rules_.size(); }

 private:
  IdGenerator<RuleId> id_gen_;
  std::vector<EcaRule> rules_;
};

}  // namespace concord::workflow

#endif  // CONCORD_WORKFLOW_EVENTS_H_
