#include "workflow/script.h"

#include <sstream>

namespace concord::workflow {

std::unique_ptr<ScriptNode> ScriptNode::Dop(std::string dop_type) {
  auto node = std::unique_ptr<ScriptNode>(new ScriptNode(Kind::kDop));
  node->name_ = std::move(dop_type);
  return node;
}

std::unique_ptr<ScriptNode> ScriptNode::DaOp(std::string op_name) {
  auto node = std::unique_ptr<ScriptNode>(new ScriptNode(Kind::kDaOp));
  node->name_ = std::move(op_name);
  return node;
}

std::unique_ptr<ScriptNode> ScriptNode::Sequence(
    std::vector<std::unique_ptr<ScriptNode>> children) {
  auto node = std::unique_ptr<ScriptNode>(new ScriptNode(Kind::kSequence));
  node->children_ = std::move(children);
  return node;
}

std::unique_ptr<ScriptNode> ScriptNode::Branch(
    std::vector<std::unique_ptr<ScriptNode>> children) {
  auto node = std::unique_ptr<ScriptNode>(new ScriptNode(Kind::kBranch));
  node->children_ = std::move(children);
  return node;
}

std::unique_ptr<ScriptNode> ScriptNode::Alternative(
    std::vector<std::unique_ptr<ScriptNode>> children) {
  auto node = std::unique_ptr<ScriptNode>(new ScriptNode(Kind::kAlternative));
  node->children_ = std::move(children);
  return node;
}

std::unique_ptr<ScriptNode> ScriptNode::Iteration(
    std::unique_ptr<ScriptNode> body, int max_iterations) {
  auto node = std::unique_ptr<ScriptNode>(new ScriptNode(Kind::kIteration));
  node->children_.push_back(std::move(body));
  node->max_iterations_ = max_iterations;
  return node;
}

std::unique_ptr<ScriptNode> ScriptNode::Open() {
  return std::unique_ptr<ScriptNode>(new ScriptNode(Kind::kOpen));
}

std::unique_ptr<ScriptNode> ScriptNode::Clone() const {
  auto copy = std::unique_ptr<ScriptNode>(new ScriptNode(kind_));
  copy->name_ = name_;
  copy->max_iterations_ = max_iterations_;
  for (const auto& child : children_) {
    copy->children_.push_back(child->Clone());
  }
  return copy;
}

std::vector<std::string> ScriptNode::PossibleDopTypes() const {
  std::vector<std::string> types;
  if (kind_ == Kind::kDop) {
    types.push_back(name_);
  }
  for (const auto& child : children_) {
    for (auto& type : child->PossibleDopTypes()) {
      types.push_back(std::move(type));
    }
  }
  return types;
}

size_t ScriptNode::TreeSize() const {
  size_t size = 1;
  for (const auto& child : children_) size += child->TreeSize();
  return size;
}

std::string ScriptNode::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kDop:
      os << "dop(" << name_ << ")";
      return os.str();
    case Kind::kDaOp:
      os << "op(" << name_ << ")";
      return os.str();
    case Kind::kOpen:
      return "open";
    case Kind::kSequence:
      os << "seq";
      break;
    case Kind::kBranch:
      os << "branch";
      break;
    case Kind::kAlternative:
      os << "alt";
      break;
    case Kind::kIteration:
      os << "iter";
      break;
  }
  os << "[";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) os << ", ";
    os << children_[i]->ToString();
  }
  os << "]";
  return os.str();
}

std::string Script::ToString() const {
  return name_ + ": " + (root_ ? root_->ToString() : "<empty>");
}

}  // namespace concord::workflow
