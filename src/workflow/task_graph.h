#ifndef CONCORD_WORKFLOW_TASK_GRAPH_H_
#define CONCORD_WORKFLOW_TASK_GRAPH_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace concord::workflow {

/// Lexicographic position of a task node in the depth-first lowering of
/// a script: child i of a construct ranked r is ranked r+[i]. Running
/// ready nodes in ascending rank order reproduces the depth-first
/// interleaving of the old synchronous stack machine exactly — this is
/// the determinism contract of the single-threaded scheduler mode.
/// Nodes added mid-run (alternative/iteration/open expansions) inherit
/// their decision node's rank prefix, so the order stays total even
/// though the graph grows while it executes.
using TaskRank = std::vector<uint32_t>;

/// Rank component reserved for the join closing a compound lowering
/// (branch / alternative / iteration / open): larger than any real
/// child index, so the join orders after its entire subtree.
inline constexpr uint32_t kJoinRank = std::numeric_limits<uint32_t>::max();

/// "0.1.2" — also the replay key persisted with each log entry.
std::string TaskRankToString(const TaskRank& rank);

enum class TaskNodeKind {
  /// Runs one DOP through the tool runner (pool-eligible).
  kDop,
  /// Runs one DA-level operation through the cooperation layer
  /// (pool-eligible).
  kDaOp,
  /// A designer decision point (alternative choice, iteration
  /// continue, open-segment plan). Decision bodies may expand the
  /// graph, so they always run on the choreographer thread.
  kDecision,
  /// Structural barrier closing a compound construct. No body work;
  /// always runs on the choreographer thread.
  kJoin,
};

const char* TaskNodeKindToString(TaskNodeKind kind);

enum class TaskNodeState {
  kBlocked,    // has unmet dependencies
  kReady,      // all dependencies met, awaiting dispatch
  kRunning,    // dispatched (inline or on an executor)
  kDone,       // body returned OK
  kFailed,     // body returned an error (kContinueOnError only)
  kCancelled,  // a transitive dependency failed (kContinueOnError only)
};

/// What the scheduler does when a node's body fails.
enum class ErrorPolicy {
  /// Stop dispatching, surface the first error, and re-arm the failed
  /// node as kReady — it is a *retry point*: the next run resumes
  /// exactly there (the design-manager semantics for aborted DOPs).
  kCancelOnError,
  /// Mark the node kFailed, cancel its transitive dependents, keep
  /// executing independent subtrees, and report the first error once
  /// the rest of the graph has drained.
  kContinueOnError,
};

using TaskNodeId = uint32_t;
inline constexpr TaskNodeId kNoTaskNode =
    std::numeric_limits<TaskNodeId>::max();

/// One schedulable unit: a DOP run, a DA-op, a decision, or a join.
struct TaskNode {
  TaskNodeKind kind = TaskNodeKind::kJoin;
  TaskNodeState state = TaskNodeState::kBlocked;
  TaskRank rank;
  /// DOP type / DA-op name / decision label (for hooks and logs).
  std::string name;
  /// The node's action. Null bodies (joins) complete immediately with
  /// OK. Decision bodies may call TaskGraph::AddNode/AddEdge — they
  /// run on the choreographer thread, which owns the graph.
  std::function<Status()> body;
  /// Sim-time budget for the body (0 = unlimited). Enforced
  /// cooperatively: the scheduler compares the sim-clock before/after
  /// the body and converts an overrun into an Aborted status.
  SimTime timeout = 0;
  size_t unmet_deps = 0;
  std::vector<TaskNodeId> dependents;
  /// Outcome of the last execution attempt.
  Status last_status;
};

/// Dependency graph of task nodes, grown by lowering a Script (and by
/// decision bodies at run time). NOT thread-safe: the scheduler
/// confines all graph access to the choreographer thread; executor
/// threads only run node bodies and report completions through the
/// scheduler's queue.
class TaskGraph {
 public:
  /// Adds a node. With no dependencies it becomes kReady immediately.
  TaskNodeId AddNode(TaskNodeKind kind, TaskRank rank, std::string name,
                     std::function<Status()> body, SimTime timeout = 0);

  /// Adds the edge `from` → `to`. If `from` is already done the edge is
  /// satisfied on arrival (mid-run expansion wires new nodes to both
  /// finished and unfinished predecessors).
  void AddEdge(TaskNodeId from, TaskNodeId to);

  void Clear();

  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  const TaskNode& node(TaskNodeId id) const { return nodes_[id]; }
  TaskNode& node(TaskNodeId id) { return nodes_[id]; }

  bool HasReady() const { return !ready_.empty(); }
  /// Lowest-ranked ready node (the determinism contract), or
  /// kNoTaskNode when nothing is ready.
  TaskNodeId MinReady() const;

  /// kReady → kRunning (removes the node from the ready set).
  void MarkRunning(TaskNodeId id);
  /// kRunning → kDone; unblocks dependents whose last dependency this
  /// was.
  void MarkDone(TaskNodeId id);
  /// kRunning → kReady: the retry-point transition of
  /// ErrorPolicy::kCancelOnError.
  void MarkReadyAgain(TaskNodeId id);
  /// kRunning → kFailed, and every transitive dependent that is not
  /// already terminal → kCancelled (ErrorPolicy::kContinueOnError).
  void MarkFailed(TaskNodeId id);

  size_t running() const { return running_; }
  /// True when nothing is ready or running. Combined with
  /// AllTerminal() this is "the graph finished"; without it, the graph
  /// is stuck on a retry point or cancellation.
  bool Quiescent() const { return ready_.empty() && running_ == 0; }
  /// Every node is kDone / kFailed / kCancelled.
  bool AllTerminal() const;
  /// Every node is kDone.
  bool AllDone() const;

 private:
  std::vector<TaskNode> nodes_;
  /// Ready set ordered by (rank, id): MinReady is the deterministic
  /// next node.
  std::set<std::pair<TaskRank, TaskNodeId>> ready_;
  size_t running_ = 0;
};

}  // namespace concord::workflow

#endif  // CONCORD_WORKFLOW_TASK_GRAPH_H_
