#ifndef CONCORD_WORKFLOW_CONSTRAINTS_H_
#define CONCORD_WORKFLOW_CONSTRAINTS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "workflow/script.h"

namespace concord::workflow {

/// Domain-wide dependencies between DOP types (Sect. 4.2): "one may
/// require that a DOP of a certain type ... must not be applied before
/// a DOP of another type has successfully completed, or that a certain
/// DOP must always be followed by another DOP of a specific type".
/// Constraints "hold for all DAs of a design application domain" and
/// "any script within must not contradict these constraints".
struct DomainConstraint {
  enum class Kind {
    /// `second` must not run before `first` has completed successfully.
    kPrecedes,
    /// Every `first` must eventually be followed by a `second`.
    kEventuallyFollowedBy,
    /// A `first` must be *immediately* followed by a `second`.
    kImmediatelyFollowedBy,
  };
  Kind kind;
  std::string first;
  std::string second;

  std::string ToString() const;
};

/// The constraint set of one design application domain.
class ConstraintSet {
 public:
  ConstraintSet& Precedes(std::string first, std::string second);
  ConstraintSet& EventuallyFollowedBy(std::string first, std::string second);
  ConstraintSet& ImmediatelyFollowedBy(std::string first, std::string second);

  const std::vector<DomainConstraint>& constraints() const {
    return constraints_;
  }

  /// Runtime admission test: may a DOP of type `next` start now, given
  /// the types already completed (in order)? Enforced by the DM before
  /// every DOP start — this also covers actions inside `open` segments.
  Status CheckAdmissible(const std::vector<std::string>& completed,
                         const std::string& next) const;

  /// End-of-DA test for the "followed by" obligations.
  Status CheckComplete(const std::vector<std::string>& completed) const;

  /// Conservative static validation of a script: rejects scripts where
  /// some path would run `second` although `first` cannot have occurred
  /// before it (kPrecedes). Open segments are treated as able to supply
  /// anything, so they never cause static rejection — the runtime check
  /// still guards them.
  Status ValidateScript(const Script& script) const;

  size_t size() const { return constraints_.size(); }

 private:
  std::vector<DomainConstraint> constraints_;
};

}  // namespace concord::workflow

#endif  // CONCORD_WORKFLOW_CONSTRAINTS_H_
