#include "storage/feature.h"

#include <sstream>

namespace concord::storage {

void TestToolRegistry::Register(const std::string& name, Predicate predicate) {
  tools_[name] = std::move(predicate);
}

bool TestToolRegistry::Has(const std::string& name) const {
  return tools_.count(name) > 0;
}

Result<bool> TestToolRegistry::Run(const std::string& name,
                                   const DesignObject& object) const {
  auto it = tools_.find(name);
  if (it == tools_.end()) {
    return Status::NotFound("no test tool registered as '" + name + "'");
  }
  return it->second(object);
}

TestToolRegistry& TestToolRegistry::Global() {
  static TestToolRegistry* instance = new TestToolRegistry();
  return *instance;
}

Feature Feature::Range(std::string name, std::string attr, double min,
                       double max) {
  Feature f;
  f.name_ = std::move(name);
  f.kind_ = Kind::kRange;
  f.attr_ = std::move(attr);
  f.min_ = min;
  f.max_ = max;
  return f;
}

Feature Feature::AtMost(std::string name, std::string attr, double max) {
  return Range(std::move(name), std::move(attr),
               -std::numeric_limits<double>::infinity(), max);
}

Feature Feature::AtLeast(std::string name, std::string attr, double min) {
  return Range(std::move(name), std::move(attr), min,
               std::numeric_limits<double>::infinity());
}

Feature Feature::Equals(std::string name, std::string attr, AttrValue value) {
  Feature f;
  f.name_ = std::move(name);
  f.kind_ = Kind::kEquality;
  f.attr_ = std::move(attr);
  f.equals_ = std::move(value);
  return f;
}

Feature Feature::PassesTool(std::string name, std::string tool_name) {
  Feature f;
  f.name_ = std::move(name);
  f.kind_ = Kind::kPredicate;
  f.tool_ = std::move(tool_name);
  return f;
}

bool Feature::IsFulfilledBy(const DesignObject& object,
                            const TestToolRegistry& tools) const {
  switch (kind_) {
    case Kind::kRange: {
      auto value = object.GetNumeric(attr_);
      if (!value.ok()) return false;
      return *value >= min_ && *value <= max_;
    }
    case Kind::kEquality: {
      auto value = object.GetAttr(attr_);
      if (!value.ok()) return false;
      return *value == *equals_;
    }
    case Kind::kPredicate: {
      auto verdict = tools.Run(tool_, object);
      return verdict.ok() && *verdict;
    }
  }
  return false;
}

bool Feature::IsRefinedBy(const Feature& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kRange:
      return attr_ == other.attr_ && other.min_ >= min_ && other.max_ <= max_;
    case Kind::kEquality:
      return attr_ == other.attr_ && equals_ == other.equals_;
    case Kind::kPredicate:
      return tool_ == other.tool_;
  }
  return false;
}

std::string Feature::ToString() const {
  std::ostringstream os;
  os << name_ << ":";
  switch (kind_) {
    case Kind::kRange:
      os << " " << min_ << " <= " << attr_ << " <= " << max_;
      break;
    case Kind::kEquality:
      os << " " << attr_ << " == " << equals_->ToString();
      break;
    case Kind::kPredicate:
      os << " passes(" << tool_ << ")";
      break;
  }
  return os.str();
}

DesignSpecification& DesignSpecification::Add(Feature feature) {
  features_.push_back(std::move(feature));
  return *this;
}

DesignSpecification& DesignSpecification::Upsert(Feature feature) {
  for (auto& existing : features_) {
    if (existing.name() == feature.name()) {
      existing = std::move(feature);
      return *this;
    }
  }
  return Add(std::move(feature));
}

Status DesignSpecification::Remove(const std::string& feature_name) {
  for (auto it = features_.begin(); it != features_.end(); ++it) {
    if (it->name() == feature_name) {
      features_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no feature named '" + feature_name + "'");
}

const Feature* DesignSpecification::Find(const std::string& name) const {
  for (const auto& feature : features_) {
    if (feature.name() == name) return &feature;
  }
  return nullptr;
}

QualityState DesignSpecification::Evaluate(
    const DesignObject& object, const TestToolRegistry& tools) const {
  QualityState state;
  for (const auto& feature : features_) {
    if (feature.IsFulfilledBy(object, tools)) {
      state.fulfilled.push_back(feature.name());
    } else {
      state.unfulfilled.push_back(feature.name());
    }
  }
  return state;
}

bool DesignSpecification::FulfillsSubset(
    const DesignObject& object, const std::vector<std::string>& feature_names,
    const TestToolRegistry& tools) const {
  for (const auto& name : feature_names) {
    const Feature* feature = Find(name);
    if (feature == nullptr) return false;
    if (!feature->IsFulfilledBy(object, tools)) return false;
  }
  return true;
}

bool DesignSpecification::IsRefinementOf(
    const DesignSpecification& original) const {
  // Every original feature must still be present (same name) and at
  // least as strict; additional features are allowed.
  for (const auto& orig : original.features()) {
    const Feature* mine = Find(orig.name());
    if (mine == nullptr) return false;
    if (!orig.IsRefinedBy(*mine)) return false;
  }
  return true;
}

std::string DesignSpecification::ToString() const {
  std::ostringstream os;
  os << "SPEC{";
  for (size_t i = 0; i < features_.size(); ++i) {
    if (i > 0) os << "; ";
    os << features_[i].ToString();
  }
  os << "}";
  return os.str();
}

}  // namespace concord::storage
