#ifndef CONCORD_STORAGE_WAL_H_
#define CONCORD_STORAGE_WAL_H_

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "storage/version.h"

namespace concord::storage {

/// One write-ahead-log record. The log is the repository's stable
/// storage: a server crash wipes all volatile state, and recovery
/// replays committed transactions from the log (Sect. 5.2: durability
/// "is guaranteed by the data repository, i.e. by the logging and
/// recovery methods of the server-TM").
struct WalRecord {
  enum class Type {
    kBegin,
    kWriteDov,   // full after-image of a DOV record
    kWriteMeta,  // key/value after-image (CM state, persistent scripts)
    kDeleteMeta,
    kCommit,
    kAbort,
    kCheckpoint,
  };

  Type type;
  TxnId txn;
  /// Valid for kWriteDov.
  std::optional<DovRecord> dov;
  /// Valid for kWriteMeta / kDeleteMeta.
  std::string meta_key;
  std::string meta_value;

  static const char* TypeToString(Type type);
};

/// Append-only log on simulated stable storage. Records survive
/// Crash(); truncation only happens at checkpoints.
///
/// Appends are internally synchronized so concurrent committers can
/// share one log. A transaction's records go through AppendBatch, which
/// takes the append mutex once and flushes the whole group as a unit —
/// the group-commit point: records of one transaction are contiguous in
/// the log and no torn transaction can be observed by recovery.
/// Readers (records(), size()) are intended for recovery and for tests/
/// benches at quiescence; they require no concurrent appender.
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  void Append(WalRecord record);
  /// Appends all records under a single acquisition of the append mutex
  /// and a single flush (group commit). The batch is contiguous in the
  /// log.
  void AppendBatch(std::vector<WalRecord> records);

  const std::vector<WalRecord>& records() const { return records_; }
  size_t size() const;
  /// Total appended over the log's lifetime, including truncated
  /// prefixes — a cost measure for benchmarks.
  size_t total_appended() const;
  /// Number of (simulated) stable-storage flushes: one per Append, one
  /// per AppendBatch. The batching win shows up as flushes() growing
  /// much slower than total_appended().
  size_t flushes() const;

  /// Drops everything before the latest checkpoint record (exclusive of
  /// the checkpoint itself). No-op when no checkpoint exists.
  void TruncateToLastCheckpoint();

 private:
  mutable std::mutex append_mu_;
  std::vector<WalRecord> records_;
  size_t total_appended_ = 0;
  size_t flushes_ = 0;
};

}  // namespace concord::storage

#endif  // CONCORD_STORAGE_WAL_H_
