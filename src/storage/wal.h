#ifndef CONCORD_STORAGE_WAL_H_
#define CONCORD_STORAGE_WAL_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/sync.h"
#include "storage/version.h"

namespace concord::storage {

/// One write-ahead-log record. The log is the repository's stable
/// storage: a server crash wipes all volatile state, and recovery
/// replays committed transactions from the log (Sect. 5.2: durability
/// "is guaranteed by the data repository, i.e. by the logging and
/// recovery methods of the server-TM").
struct WalRecord {
  enum class Type {
    kBegin,
    kWriteDov,   // full after-image of a DOV record
    kWriteMeta,  // key/value after-image (CM state, persistent scripts)
    kDeleteMeta,
    kCommit,
    kAbort,
    kCheckpoint,
  };

  Type type;
  TxnId txn;
  /// Valid for kWriteDov.
  std::optional<DovRecord> dov;
  /// Valid for kWriteMeta / kDeleteMeta.
  std::string meta_key;
  std::string meta_value;

  static const char* TypeToString(Type type);
};

/// Durability knobs for a file-backed log.
struct WalOptions {
  /// Directory holding the `wal-NNNNNN.seg` segment files. Empty means
  /// in-memory simulated stable storage (the default, used by the
  /// simulation benchmarks so their cost model stays syscall-free).
  std::string dir;
  /// When true, concurrent AppendBatch callers share fsyncs: whichever
  /// committer reaches the sync point first syncs the file tail for
  /// every batch written before its fsync started (a group-commit
  /// window). Committers whose bytes were covered return without their
  /// own fsync, so flushes()/commit drops below 1 under concurrency.
  bool coalesce_fsyncs = false;
  /// Rotate to a fresh segment once the current one exceeds this many
  /// bytes (checked at batch granularity).
  size_t segment_bytes = 64ull << 20;
};

/// Append-only log on stable storage. Two modes share one interface:
///
///  - In-memory (default constructor): records live in a vector;
///    Crash() is survived because the vector is never cleared. Flushes
///    are counted but cost nothing — the simulation cost model.
///  - File-backed (after Open()): records are framed (length prefix +
///    CRC32, see wal_codec.h) into segment files. AppendBatch writes
///    the whole batch with one write(2) and one fsync, so the batch is
///    the commit point on real disks too; reopening the directory
///    truncates any torn tail and replays what survived.
///
/// Appends are internally synchronized so concurrent committers can
/// share one log. A transaction's records go through AppendBatch, which
/// makes them contiguous in the log — no torn transaction can be
/// observed by recovery.
///
/// Readers use ReadAll(), which takes the append lock (in-memory) or
/// re-reads the segment files (file-backed); unlike the old records()
/// accessor it is safe against concurrent appenders.
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Switches a fresh (no records appended) log to file-backed mode.
  /// Creates `options.dir` if needed and scans existing segments in seq
  /// order. A bad frame in the *last* segment is treated as the crash
  /// tail: it and everything after it is physically truncated away
  /// (with coalesced fsyncs, several unacknowledged batches can persist
  /// out of order at a crash, so frames past the first hole are
  /// untrustworthy — and acknowledged bytes can never sit past one).
  /// Provable corruption still refuses the open: a bad frame in an
  /// earlier segment (rotation fsyncs a segment before its successor
  /// exists), a hole in the segment sequence, or a CRC-valid frame
  /// that no longer parses (format mismatch, not a crash artifact).
  /// New appends continue the log.
  ///
  /// When `recovered` is non-null, the records decoded by the scan are
  /// appended to it in log order — the torn-tail scan and replay then
  /// share ONE read+decode of every segment, instead of the scan
  /// throwing its decodes away and ReadAll() paying a second full pass
  /// (see segment_decode_passes()). On a refused open the vector's
  /// contents are meaningless and must be discarded.
  Status Open(WalOptions options, std::vector<WalRecord>* recovered = nullptr);
  /// Flushes and closes the segment files. No-op in in-memory mode.
  void Close();
  /// Permanently rejects further appends (they fail stop). Repository
  /// poisons the log when Open fails partway, so a caller that ignores
  /// the error cannot keep committing into a WAL with no disk backing.
  void Poison() { closed_.store(true); }
  /// True once Close()d or Poison()ed; Open refuses such a log.
  bool closed() const { return closed_.load(); }
  bool file_backed() const { return dir_fd_.load() >= 0; }

  /// `sync = false` skips the dedicated fsync (file mode only; the
  /// record becomes durable with the next synced batch). For records
  /// recovery never reads, e.g. aborts. In-memory mode ignores it —
  /// the simulation cost model keeps one flush per Append.
  void Append(WalRecord record, bool sync = true);
  /// Appends all records as one unit (group commit): one lock
  /// acquisition and one flush in-memory; one write(2) plus one fsync
  /// (possibly coalesced with concurrent batches) on disk. The batch is
  /// contiguous in the log.
  void AppendBatch(std::vector<WalRecord> records);

  /// A consistent copy of the live log (everything since the last
  /// truncation), safe against concurrent appenders. File-backed logs
  /// decode it back from the segment files — recovery reads exactly
  /// what a restart would read.
  std::vector<WalRecord> ReadAll() const;

  size_t size() const;
  /// Total appended over the log's lifetime, including truncated
  /// prefixes — a cost measure for benchmarks. A reopened file-backed
  /// log restarts this count at the number of records recovered.
  size_t total_appended() const;
  /// Number of stable-storage flushes (fsync calls in file mode). The
  /// batching win shows up as flushes() growing much slower than
  /// total_appended(); with coalesce_fsyncs it also grows slower than
  /// the number of batches.
  size_t flushes() const;

  /// How many times a segment file has been read and frame-decoded end
  /// to end (Open's scan and each ReadAll pass). Startup cost measure:
  /// a single-pass open of N segments contributes exactly N.
  size_t segment_decode_passes() const {
    return segment_decode_passes_.load();
  }

  /// Drops everything before the latest checkpoint record (exclusive of
  /// the checkpoint itself). No-op when no checkpoint exists. In file
  /// mode a checkpoint record always starts a fresh segment (Append
  /// rotates first), so truncation just unlinks the older segments.
  void TruncateToLastCheckpoint();

  /// Paths of the live segment files, oldest first (empty in-memory).
  std::vector<std::string> SegmentPaths() const;

 private:
  struct Segment {
    uint64_t seq = 0;
    std::string path;
    size_t records = 0;
    size_t bytes = 0;
  };

  void AppendBatchLocked(std::string encoded, size_t record_count,
                         bool starts_checkpoint) REQUIRES(append_mu_);
  /// Aborts if a file-backed log was Close()d: a later append would
  /// silently take the in-memory path and lose durability.
  void DieIfClosed() const;
  /// Writes `encoded` to fd_ and syncs per the options. Called without
  /// append_mu_ for the sync part; see the locking notes in wal.cc.
  void SyncSeq(uint64_t seq);
  /// Closes the current segment (fsync + close) and opens the next one.
  Status RotateLocked() REQUIRES(append_mu_, sync_mu_);
  Status OpenSegmentLocked(uint64_t seq) REQUIRES(append_mu_, sync_mu_);
  void FsyncDirLocked() REQUIRES(append_mu_);

  WalOptions options_;

  /// Lock order: append_mu_ before sync_mu_ (rotation takes both; the
  /// sync path takes only sync_mu_). fd_ is written only under both and
  /// read under either — a relationship the analysis cannot express, so
  /// fd_ stays unannotated.
  mutable Mutex append_mu_;
  mutable Mutex sync_mu_ ACQUIRED_AFTER(append_mu_);

  // In-memory mode state.
  std::vector<WalRecord> records_ GUARDED_BY(append_mu_);

  // File mode state.
  int fd_ = -1;       // current append segment
  int lock_fd_ = -1;  // flock'd <dir>/LOCK while this instance owns the log
  /// For directory fsyncs; >= 0 iff file-backed. Atomic because the
  /// mode dispatch in Append/AppendBatch reads it before locking (the
  /// transition itself only happens before traffic, via Open).
  std::atomic<int> dir_fd_{-1};
  std::vector<Segment> segments_ GUARDED_BY(append_mu_);
  uint64_t next_segment_seq_ GUARDED_BY(append_mu_) = 1;
  uint64_t checkpoint_segment_seq_ GUARDED_BY(append_mu_) = 0;
  std::atomic<uint64_t> write_seq_{0};  // bumped under append_mu_
  uint64_t durable_seq_ GUARDED_BY(sync_mu_) = 0;

  std::atomic<size_t> live_records_{0};
  std::atomic<size_t> total_appended_{0};
  std::atomic<size_t> flushes_{0};
  /// Mutable: ReadAll() is a const read but still pays (and counts) a
  /// decode pass per segment.
  mutable std::atomic<size_t> segment_decode_passes_{0};
  /// Set when a file-backed log is Close()d; appends then fail stop.
  std::atomic<bool> closed_{false};
};

}  // namespace concord::storage

#endif  // CONCORD_STORAGE_WAL_H_
