#ifndef CONCORD_STORAGE_WAL_CODEC_H_
#define CONCORD_STORAGE_WAL_CODEC_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "storage/wal.h"

namespace concord::storage {

/// Binary on-disk encoding of the storage layer's stable structures.
///
/// ## Record framing
///
/// Every WAL record is framed as
///
///     [u32 payload_len][u32 crc32(payload)][payload bytes]
///
/// and records are written back to back. Payloads are never empty: an
/// all-zero header (len=0, crc=0 == Crc32("")) is what a zero-filled
/// torn tail reads back as, so readers treat len==0 as torn, never as
/// data. Recovery walks a segment frame by frame and stops at the first
/// frame whose length runs past the end of the file or whose CRC
/// disagrees with the payload — that is the torn tail of a crashed
/// write, and everything before it is intact because frames are
/// appended with a single write(2) per commit batch.
///
/// ## Payloads
///
/// WalRecord: type byte, txn id, optional DovRecord (presence byte),
/// length-prefixed meta key/value. DovRecord: ids, the nested
/// DesignObject (type, attrs, children — recursively), predecessor
/// list, creation time, cooperation flag bits. All integers are
/// little-endian fixed-width (common/serde.h).
///
/// Snapshots reuse the same framing around a payload that starts with a
/// magic/version pair, then the id-generator high-water marks, the
/// committed DOV set and the meta store.

// --- Record payloads -----------------------------------------------------

std::string EncodeWalRecord(const WalRecord& record);
Result<WalRecord> DecodeWalRecord(std::string_view payload);

std::string EncodeDovRecord(const DovRecord& record);
Result<DovRecord> DecodeDovRecord(std::string_view payload);

/// Bare DesignObject payload (type, attrs, children — recursively);
/// the same nested encoding DovRecord embeds. Also used by the
/// txn/server_service wire envelope for checkin requests.
std::string EncodeDesignObject(const DesignObject& object);
Result<DesignObject> DecodeDesignObject(std::string_view payload);

// --- Framing -------------------------------------------------------------

/// Bytes of the [len][crc] frame header.
inline constexpr size_t kFrameHeaderBytes = 8;
/// Upper bound on a single frame payload; a length prefix beyond this is
/// treated as corruption rather than an allocation request.
inline constexpr uint32_t kMaxFramePayloadBytes = 1u << 30;

void AppendFramed(std::string* out, std::string_view payload);

enum class FrameResult {
  kOk,    // payload extracted, *pos advanced past the frame
  kEnd,   // clean end of buffer: *pos == buf.size()
  kTorn,  // short header/payload or CRC mismatch at *pos
};

/// Reads the frame starting at `*pos`. On kOk, `*payload` views into
/// `buf` and `*pos` is advanced; on kEnd/kTorn nothing is modified.
FrameResult ReadFramed(std::string_view buf, size_t* pos,
                       std::string_view* payload);

// --- Checkpoint snapshots ------------------------------------------------

/// Stable-storage image written by Repository::Checkpoint: the whole
/// committed state at checkpoint time plus the id-generator high-water
/// marks (so recovery never reissues a pre-crash id).
struct RepositorySnapshot {
  std::map<uint64_t, DovRecord> dovs;  // keyed by DovId value
  std::map<std::string, std::string> meta;
  uint64_t last_dov_id = 0;
  uint64_t last_txn_id = 0;
};

/// Full snapshot-file content, including framing; DecodeSnapshot takes
/// the full file content back. Fails when the image exceeds the
/// single-frame format limit (checkpointing then degrades to "log only"
/// until a streamed snapshot format exists).
Result<std::string> EncodeSnapshot(const RepositorySnapshot& snapshot);
Result<RepositorySnapshot> DecodeSnapshot(std::string_view file_content);

}  // namespace concord::storage

#endif  // CONCORD_STORAGE_WAL_CODEC_H_
