#ifndef CONCORD_STORAGE_SCHEMA_H_
#define CONCORD_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/value.h"

namespace concord::storage {

class DesignObject;

/// Declaration of one typed attribute of a design object type.
struct AttrDef {
  std::string name;
  AttrType type = AttrType::kInt;
  bool required = true;
  /// Optional numeric bounds enforced by the repository's integrity
  /// check at checkin (Sect. 5.2: "every derived DOV observes the
  /// constraints specified in the underlying database schema").
  std::optional<double> min;
  std::optional<double> max;
};

/// Declaration of a part-of component: a DOT whose instances appear as
/// children, with a multiplicity range.
struct PartDef {
  DotId component_type;
  int min_count = 0;
  int max_count = 1 << 30;
};

/// Design object type (DOT) — the first element of a DA's description
/// vector. "The complex structure of a DOT provides a natural basis
/// for structuring the design process" (Sect. 4.1): in delegation, the
/// sub-DA's DOT must be a *part* of the super-DA's DOT.
class DesignObjectType {
 public:
  DesignObjectType(DotId id, std::string name)
      : id_(id), name_(std::move(name)) {}

  DotId id() const { return id_; }
  const std::string& name() const { return name_; }

  void AddAttr(AttrDef def) { attrs_.push_back(std::move(def)); }
  void AddPart(PartDef def) { parts_.push_back(def); }

  const std::vector<AttrDef>& attrs() const { return attrs_; }
  const std::vector<PartDef>& parts() const { return parts_; }

  const AttrDef* FindAttr(const std::string& name) const;

 private:
  DotId id_;
  std::string name_;
  std::vector<AttrDef> attrs_;
  std::vector<PartDef> parts_;
};

/// The repository's type catalog. Owns all DOT definitions and answers
/// the part-of queries that the cooperation manager needs to validate
/// delegation (sub-DA DOT must be a part of the super-DA DOT).
class SchemaCatalog {
 public:
  SchemaCatalog() = default;
  SchemaCatalog(const SchemaCatalog&) = delete;
  SchemaCatalog& operator=(const SchemaCatalog&) = delete;

  /// Creates and registers a new DOT with a fresh id.
  DesignObjectType* DefineType(const std::string& name);

  Result<const DesignObjectType*> GetType(DotId id) const;
  Result<const DesignObjectType*> GetTypeByName(const std::string& name) const;
  DesignObjectType* GetMutableType(DotId id);

  /// True if `component` equals `composite` or is reachable from it via
  /// part-of edges (transitively). Delegation requires
  /// IsPartOf(sub.dot, super.dot).
  bool IsPartOf(DotId component, DotId composite) const;

  /// Validates `object` (attribute presence, types, bounds, component
  /// multiplicities, recursive part validation) against its DOT.
  Status Validate(const DesignObject& object) const;

  size_t size() const { return types_.size(); }

 private:
  IdGenerator<DotId> id_gen_;
  std::unordered_map<DotId, std::unique_ptr<DesignObjectType>> types_;
  std::unordered_map<std::string, DotId> by_name_;
};

}  // namespace concord::storage

#endif  // CONCORD_STORAGE_SCHEMA_H_
