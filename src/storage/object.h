#ifndef CONCORD_STORAGE_OBJECT_H_
#define CONCORD_STORAGE_OBJECT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "storage/value.h"

namespace concord::storage {

/// The data payload of a design object version: a typed attribute bag
/// plus component objects mirroring the DOT's part-of hierarchy. This
/// is the "molecule" of the paper's PRIMA substrate, reduced to what
/// CONCORD's dynamics need.
///
/// DesignObject is a value type (deep copy); DOVs in the repository are
/// immutable snapshots, and DOPs work on private copies checked out to
/// the workstation.
class DesignObject {
 public:
  DesignObject() = default;
  explicit DesignObject(DotId type) : type_(type) {}

  DotId type() const { return type_; }
  void set_type(DotId type) { type_ = type; }

  /// Attribute access. Set overwrites.
  void SetAttr(const std::string& name, AttrValue value);
  bool HasAttr(const std::string& name) const;
  Result<AttrValue> GetAttr(const std::string& name) const;
  /// Numeric shortcut; error if missing or non-numeric.
  Result<double> GetNumeric(const std::string& name) const;
  const AttrMap& attrs() const { return attrs_; }

  /// Component (part-of) children.
  DesignObject& AddChild(DesignObject child);
  const std::vector<DesignObject>& children() const { return children_; }
  std::vector<DesignObject>& mutable_children() { return children_; }

  /// Number of children with the given DOT.
  int CountChildrenOfType(DotId type) const;

  /// Recursive node count (this object plus all descendants) — used by
  /// benchmarks as a size measure.
  size_t TreeSize() const;

  /// Deterministic content digest over type, attributes and children.
  /// Used by tests to verify that crash recovery restores bit-identical
  /// design states.
  uint64_t ContentHash() const;

  std::string ToString() const;

 private:
  DotId type_;
  AttrMap attrs_;
  std::vector<DesignObject> children_;
};

}  // namespace concord::storage

#endif  // CONCORD_STORAGE_OBJECT_H_
