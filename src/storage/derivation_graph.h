#ifndef CONCORD_STORAGE_DERIVATION_GRAPH_H_
#define CONCORD_STORAGE_DERIVATION_GRAPH_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"

namespace concord::storage {

/// The derivation graph of one design activity: a DAG over DOV ids with
/// edges from each version to the versions derived from it. The
/// repository maintains one graph per DA and extends it inside checkin
/// (Sect. 5.2: "its DA's derivation graph is extended by the newly
/// created DOV").
class DerivationGraph {
 public:
  DerivationGraph() = default;

  /// Adds `dov` with edges from each of `predecessors`. Predecessors
  /// that are not members of this graph are recorded as external inputs
  /// (versions read via usage relationships live in the supporting DA's
  /// graph) but create no internal edge.
  Status Add(DovId dov, const std::vector<DovId>& predecessors);

  bool Contains(DovId dov) const { return nodes_.count(dov) > 0; }
  size_t size() const { return nodes_.size(); }

  std::vector<DovId> Successors(DovId dov) const;
  std::vector<DovId> Predecessors(DovId dov) const;
  /// Versions with no predecessor inside this graph.
  std::vector<DovId> Roots() const;
  /// Versions with no successor (current design-state frontier).
  std::vector<DovId> Leaves() const;

  /// True iff `ancestor` is reachable from ... i.e. `descendant` can be
  /// reached from `ancestor` along derivation edges. A version is its
  /// own ancestor.
  bool IsAncestor(DovId ancestor, DovId descendant) const;

  /// All transitive descendants of `dov` (excluding `dov`). Used when a
  /// withdrawn or invalidated version poisons derived work.
  std::vector<DovId> Descendants(DovId dov) const;

  /// Deterministic topological order (insertion order is already
  /// topological since predecessors must exist at insert time).
  const std::vector<DovId>& TopologicalOrder() const { return order_; }

  /// External inputs recorded for `dov` (predecessors outside this
  /// graph — versions obtained along usage relationships).
  std::vector<DovId> ExternalInputs(DovId dov) const;

  /// DOVs in this graph that (transitively) derive from the external
  /// version `external` — the impact set of a withdrawal (Sect. 5.3).
  std::vector<DovId> DerivedFromExternal(DovId external) const;

  void Clear();

 private:
  std::unordered_set<DovId> nodes_;
  std::unordered_map<DovId, std::vector<DovId>> out_edges_;
  std::unordered_map<DovId, std::vector<DovId>> in_edges_;
  std::unordered_map<DovId, std::vector<DovId>> external_inputs_;
  std::vector<DovId> order_;
};

}  // namespace concord::storage

#endif  // CONCORD_STORAGE_DERIVATION_GRAPH_H_
