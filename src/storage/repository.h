#ifndef CONCORD_STORAGE_REPOSITORY_H_
#define CONCORD_STORAGE_REPOSITORY_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/derivation_graph.h"
#include "storage/schema.h"
#include "storage/version.h"
#include "storage/wal.h"

namespace concord::storage {

/// Counters exposed for benchmarks and the EXPERIMENTS harness.
struct RepositoryStats {
  uint64_t txns_begun = 0;
  uint64_t txns_committed = 0;
  uint64_t txns_aborted = 0;
  uint64_t dovs_written = 0;
  uint64_t crashes = 0;
  uint64_t recoveries = 0;
};

/// The integrated design data repository: the "advanced DBMS (object
/// and version management)" at the bottom of Fig. 1. It provides
///  - a DOT schema catalog with integrity checking,
///  - versioned, immutable DOVs organized in per-DA derivation graphs,
///  - short repository transactions with WAL-based atomicity and
///    durability (crash + recovery are first-class, simulated), and
///  - a transactional key/value "meta" store that the CM and DM use to
///    persist DA-hierarchy state and scripts (Sect. 5.4: the CM
///    "employ[s] the data management facilities of the server DBMS").
///
/// Concurrency control across DOPs is the server-TM's job (txn/
/// lock_manager.h); the repository itself serializes its short
/// transactions trivially since the simulation is single-threaded.
class Repository {
 public:
  explicit Repository(SimClock* clock);
  Repository(const Repository&) = delete;
  Repository& operator=(const Repository&) = delete;

  SchemaCatalog& schema() { return schema_; }
  const SchemaCatalog& schema() const { return schema_; }

  // --- Short repository transactions -------------------------------

  TxnId Begin();
  /// Buffers a DOV write (insert or flag update). Validation against
  /// the schema happens at commit.
  Status Put(TxnId txn, DovRecord record);
  Status PutMeta(TxnId txn, const std::string& key, const std::string& value);
  Status DeleteMeta(TxnId txn, const std::string& key);
  /// Validates, logs and applies all buffered writes atomically.
  Status Commit(TxnId txn);
  Status Abort(TxnId txn);
  bool HasActiveTxn(TxnId txn) const { return active_.count(txn) > 0; }

  // --- Reads (committed state only) --------------------------------

  Result<DovRecord> Get(DovId id) const;
  bool Contains(DovId id) const { return committed_.count(id) > 0; }
  Result<std::string> GetMeta(const std::string& key) const;
  /// All meta keys with the given prefix, in lexicographic order.
  std::vector<std::string> MetaKeysWithPrefix(const std::string& prefix) const;

  /// The derivation graph of `da` (empty graph if the DA never wrote).
  const DerivationGraph& graph(DaId da) const;

  /// All committed DOVs owned by `da`, in creation order.
  std::vector<DovId> DovsOf(DaId da) const;

  DovId NextDovId() { return dov_gen_.Next(); }

  // --- Failure model ------------------------------------------------

  /// Simulated server crash: all volatile state vanishes (active
  /// transactions, materialized committed store, graphs). Stable
  /// storage (WAL + last checkpoint snapshot) survives.
  void Crash();
  /// Replays stable storage; afterwards committed state is restored
  /// exactly and all in-flight transactions are gone (atomicity).
  Status Recover();
  /// Writes a checkpoint snapshot to stable storage and truncates the
  /// log. Returns the number of log records dropped.
  size_t Checkpoint();

  const WriteAheadLog& wal() const { return wal_; }
  const RepositoryStats& stats() const { return stats_; }

 private:
  struct PendingTxn {
    std::vector<DovRecord> dov_writes;
    std::vector<std::pair<std::string, std::string>> meta_writes;
    std::vector<std::string> meta_deletes;
  };

  /// Stable-storage image written by Checkpoint().
  struct Snapshot {
    std::map<uint64_t, DovRecord> dovs;  // keyed by DovId value
    std::map<std::string, std::string> meta;
    uint64_t last_dov_id = 0;
    uint64_t last_txn_id = 0;
  };

  void ApplyDov(const DovRecord& record);
  void RebuildGraphs();

  SimClock* clock_;
  SchemaCatalog schema_;
  IdGenerator<TxnId> txn_gen_;
  IdGenerator<DovId> dov_gen_;

  // Volatile state.
  std::unordered_map<TxnId, PendingTxn> active_;
  std::unordered_map<DovId, DovRecord> committed_;
  std::map<std::string, std::string> meta_;
  std::unordered_map<DaId, DerivationGraph> graphs_;
  std::unordered_map<DaId, std::vector<DovId>> dovs_by_da_;

  // Stable storage.
  WriteAheadLog wal_;
  Snapshot snapshot_;

  RepositoryStats stats_;
  DerivationGraph empty_graph_;
};

}  // namespace concord::storage

#endif  // CONCORD_STORAGE_REPOSITORY_H_
