#ifndef CONCORD_STORAGE_REPOSITORY_H_
#define CONCORD_STORAGE_REPOSITORY_H_

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>  // std::unique_lock for the stripe bulk-hold
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/sync.h"
#include "common/status.h"
#include "storage/derivation_graph.h"
#include "storage/schema.h"
#include "storage/version.h"
#include "storage/wal.h"
#include "storage/wal_codec.h"

namespace concord::storage {

/// Counters exposed for benchmarks and the EXPERIMENTS harness.
/// Fields are atomic so concurrent committers can bump them without a
/// lock; read them at quiescence (or accept slightly stale values).
struct RepositoryStats {
  std::atomic<uint64_t> txns_begun{0};
  std::atomic<uint64_t> txns_committed{0};
  std::atomic<uint64_t> txns_aborted{0};
  std::atomic<uint64_t> dovs_written{0};
  std::atomic<uint64_t> crashes{0};
  std::atomic<uint64_t> recoveries{0};
};

/// The integrated design data repository: the "advanced DBMS (object
/// and version management)" at the bottom of Fig. 1. It provides
///  - a DOT schema catalog with integrity checking,
///  - versioned, immutable DOVs organized in per-DA derivation graphs,
///  - short repository transactions with WAL-based atomicity and
///    durability — either simulated in-memory stable storage (the
///    default) or, after Open(dir), a real on-disk segmented log plus
///    checkpoint snapshots that survive a process restart — and
///  - a transactional key/value "meta" store that the CM and DM use to
///    persist DA-hierarchy state and scripts (Sect. 5.4: the CM
///    "employ[s] the data management facilities of the server DBMS").
///
/// ## Threading model
///
/// The repository serves concurrent multi-designer traffic:
///  - The committed DOV store is sharded into kShardCount buckets PER
///    EXECUTION PARTITION (SetExecutionPartitions), each with its own
///    mutex. A DOV's partition comes from DovPartitionOf — the same
///    map the server-TM's executor partitions use — so with K > 1
///    every partition works a disjoint slice of buckets and the
///    single-record commit fast path (CommitDov) never crosses
///    partitions. K == 1 reproduces the classic 16-bucket layout
///    exactly.
///  - WAL appends are grouped: a commit builds its whole record batch
///    outside any lock and publishes it through a single acquisition of
///    the log's append mutex (group commit — the batch is the commit
///    point and is contiguous in the log).
///  - active transactions, the meta store and the derivation graphs
///    each have their own mutex; all are leaf locks (never nested).
///  - The failure-injection gate (formerly one state_mu_) is STRIPED
///    per execution partition: Crash/Recover/Checkpoint take every
///    stripe exclusively (in index order), while normal operations
///    hold exactly one stripe shared — DOV reads/commits their
///    partition's stripe, everything else stripe 0. Any single shared
///    stripe excludes the failure path, and the hot read path stops
///    bouncing one reader-count cache line across partitions.
///
/// Contract: a TxnId is owned by one thread between Begin and
/// Commit/Abort, and concurrent writers updating the *same* DOV must
/// hold its derivation lock (txn/lock_manager.h) — exactly the paper's
/// rule for preventing concurrent processing of one version.
/// graph() returns a reference that stays valid under concurrent
/// checkins (node-based map), but NOT across Crash()/Recover(), which
/// destroy all graphs — don't hold it across failure injection.
/// Mutating the same DA's graph from two threads requires that DA's
/// operations to be serialized, which the one-designer-per-DA model
/// already guarantees.
class Repository {
 public:
  /// DOV-store buckets per execution partition.
  static constexpr size_t kShardCount = 16;

  explicit Repository(SimClock* clock);
  ~Repository();
  Repository(const Repository&) = delete;
  Repository& operator=(const Repository&) = delete;

  // --- Persistence --------------------------------------------------

  /// Attaches the repository to an on-disk directory holding the WAL
  /// segments and the checkpoint snapshot. Must be called before any
  /// traffic. When the directory already holds state from a previous
  /// incarnation, the committed image is rebuilt from the snapshot plus
  /// log replay — restart recovery. Without Open the repository runs on
  /// simulated in-memory stable storage, exactly as before.
  Status Open(const std::string& dir, WalOptions wal_options = {});
  /// Flushes the log and closes the files. Safe to call twice; the
  /// destructor calls it. In-memory repositories ignore it.
  void Close();
  bool persistent() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// Test-only, one-shot: makes the next Checkpoint() stop after the
  /// snapshot file is durably in place but before the log is truncated
  /// — simulating a crash in the window between the two.
  void SetCheckpointFailpointForTesting(bool fail_after_snapshot) {
    checkpoint_failpoint_ = fail_after_snapshot;
  }

  SchemaCatalog& schema() { return schema_; }
  const SchemaCatalog& schema() const { return schema_; }

  // --- Short repository transactions -------------------------------

  TxnId Begin();
  /// Buffers a DOV write (insert or flag update). Validation against
  /// the schema happens at commit.
  Status Put(TxnId txn, DovRecord record);
  Status PutMeta(TxnId txn, const std::string& key, const std::string& value);
  Status DeleteMeta(TxnId txn, const std::string& key);
  /// Validates, logs and applies all buffered writes atomically.
  Status Commit(TxnId txn);
  Status Abort(TxnId txn);
  bool HasActiveTxn(TxnId txn) const;

  // --- Reads (committed state only) --------------------------------

  Result<DovRecord> Get(DovId id) const;
  bool Contains(DovId id) const;
  Result<std::string> GetMeta(const std::string& key) const;
  /// All meta keys with the given prefix, in lexicographic order.
  std::vector<std::string> MetaKeysWithPrefix(const std::string& prefix) const;

  /// The derivation graph of `da` (empty graph if the DA never wrote).
  /// The reference survives concurrent checkins but not Crash/Recover;
  /// see the threading-model notes above.
  const DerivationGraph& graph(DaId da) const;

  /// All committed DOVs owned by `da`, in creation order.
  std::vector<DovId> DovsOf(DaId da) const;

  /// Declares which server shard this repository serves. Every DOV id
  /// it hands out afterwards carries the shard index in its top bits
  /// (common/ids.h), so per-shard repositories never collide on ids
  /// and both client and server can route a DOV to its owning node
  /// straight from the id. Must be set before traffic (and before
  /// Open); shard 0 — the default — reproduces the un-sharded ids.
  void set_dov_id_shard(uint32_t shard) {
    dov_shard_base_ = static_cast<uint64_t>(shard) << kDovShardShift;
  }

  DovId NextDovId() {
    return DovId(dov_shard_base_ | dov_gen_.Next().value());
  }

  /// Advances the DOV id generator past `dov`'s local counter so it is
  /// never re-issued. Recovery bumps the generator past COMMITTED ids
  /// only; a prepared-2PC checkin staged by a previous incarnation
  /// holds an allocated id that is not yet in the committed store, and
  /// without this reservation a post-restart checkin could collide
  /// with it when the staged record later applies.
  void ReserveDovIdsThrough(DovId dov) {
    uint64_t local = dov.value() & kDovLocalMask;
    while (dov_gen_.last() < local) dov_gen_.Next();
  }

  /// Aligns the DOV store and the failure-injection gate with a
  /// server-TM running `partitions` executor partitions: the bucket
  /// array grows to partitions x kShardCount (partition-major, so each
  /// partition owns a contiguous disjoint slice) and the state gate is
  /// striped per partition. Must be called before any traffic (like
  /// set_dov_id_shard); 1 — the default — is the classic layout.
  Status SetExecutionPartitions(size_t partitions);
  size_t execution_partitions() const { return partitions_; }

  /// Single-record commit fast path for the server-TM checkin: schema
  /// validation, the {BEGIN, WRITE, COMMIT} WAL batch and the apply,
  /// without registering an active transaction — the hot path skips
  /// the shared active-table mutex entirely and takes only its own
  /// partition's stripe, bucket mutex and the WAL append lock.
  /// Counter-compatible with Begin+Put+Commit (and Abort on integrity
  /// failure), which remain for multi-write transactions.
  Status CommitDov(DovRecord record);

  // --- Failure model ------------------------------------------------

  /// Simulated server crash: all volatile state vanishes (active
  /// transactions, materialized committed store, graphs). Stable
  /// storage (WAL + last checkpoint snapshot) survives. Waits for
  /// in-flight operations; a commit is either fully durable or gone.
  void Crash();
  /// Replays stable storage; afterwards committed state is restored
  /// exactly and all in-flight transactions are gone (atomicity).
  Status Recover();
  /// Writes a checkpoint snapshot to stable storage (in persistent mode
  /// an on-disk snapshot file, installed atomically via tmp + rename
  /// before the log is touched) and truncates the log. Returns the
  /// number of log records dropped.
  size_t Checkpoint();

  const WriteAheadLog& wal() const { return wal_; }
  const RepositoryStats& stats() const { return stats_; }

 private:
  struct PendingTxn {
    std::vector<DovRecord> dov_writes;
    std::vector<std::pair<std::string, std::string>> meta_writes;
    std::vector<std::string> meta_deletes;
  };

  /// One bucket of the sharded committed-DOV store.
  struct DovShard {
    /// Leaf lock (taken after the stripe's shared hold).
    mutable Mutex mu;
    std::unordered_map<DovId, DovRecord> dovs GUARDED_BY(mu);
  };

  /// Bucket owning `id`: partition-major, sub-bucket on the partition-
  /// local sequence (ids of one partition are counter = partition + k*P,
  /// so dividing by P restores a dense per-partition sequence). With
  /// one partition this is exactly the classic id % 16 (the shard base
  /// in the top bits is a multiple of 16).
  DovShard& ShardFor(DovId id) const {
    size_t partition = DovPartitionOf(id, partitions_);
    return *dov_shards_[partition * kShardCount +
                        (DovLocalOf(id) / partitions_) % kShardCount];
  }

  /// Failure-injection-gate stripe owning `id`'s partition.
  WriterPriorityMutex& StripeFor(DovId id) const {
    return *state_stripes_[DovPartitionOf(id, partitions_)];
  }

  /// Exclusive hold on every stripe, index order (Crash/Recover/
  /// Checkpoint/Open/Close). SAFETY: the bulk-hold needs a movable,
  /// vector-storable lock, which the scoped wrappers cannot provide;
  /// no field is GUARDED_BY a stripe, so the analysis loses nothing.
  std::vector<std::unique_lock<WriterPriorityMutex>> LockAllStripes() const {  // lint:allow(raw-sync)
    std::vector<std::unique_lock<WriterPriorityMutex>> held;  // lint:allow(raw-sync)
    held.reserve(state_stripes_.size());
    for (const auto& stripe : state_stripes_) held.emplace_back(*stripe);
    return held;
  }

  void ApplyDov(const DovRecord& record);
  /// Marks the repository unusable after a partial open/recovery (the
  /// WAL fail-stops appends; Checkpoint and Recover refuse).
  void Poison();
  /// Clears all volatile state. Caller holds every stripe exclusively.
  void ClearVolatileLocked();
  /// Rebuilds the committed image from `snapshot` + redo of `log` and
  /// bumps the id generators past every id on stable storage. `log`
  /// must hold every live WAL record (Open passes the records its
  /// torn-tail scan already decoded — single-pass startup; Recover
  /// passes a fresh ReadAll()). Fails if `log` is shorter than the
  /// live log (a segment failed to read back). Caller holds every
  /// stripe exclusively and has cleared the volatile state.
  Result<size_t> ReplayStableLocked(const RepositorySnapshot& snapshot,
                                    const std::vector<WalRecord>& log);
  /// Reads <dir>/snapshot.bin (empty snapshot if absent, error if
  /// unreadable or corrupt). Caller holds every stripe exclusively.
  Result<RepositorySnapshot> LoadSnapshotLocked(const std::string& dir) const;
  /// Writes `snapshot` to <dir>/snapshot.bin via tmp-file + fsync +
  /// rename + directory fsync. Caller holds every stripe exclusively.
  Status WriteSnapshotFileLocked(const RepositorySnapshot& snapshot);

  SimClock* clock_;
  std::string dir_;  // empty while not persistent
  bool checkpoint_failpoint_ = false;
  /// Set when Open or Recover failed partway: the in-memory image no
  /// longer matches stable storage, so Checkpoint (which would durably
  /// snapshot that wrong image and truncate the log) must refuse.
  std::atomic<bool> poisoned_{false};
  SchemaCatalog schema_;
  IdGenerator<TxnId> txn_gen_;
  /// Generates the shard-local counter part of DOV ids; the shard base
  /// is OR'd in by NextDovId (and stripped again when recovery bumps
  /// the generator past the ids found on stable storage).
  IdGenerator<DovId> dov_gen_;
  uint64_t dov_shard_base_ = 0;

  /// Execution-partition count (SetExecutionPartitions); plain — set
  /// once before traffic.
  size_t partitions_ = 1;

  /// The failure-injection gate, one stripe per execution partition.
  /// Shared (any one stripe) for normal operation, all-exclusive for
  /// Crash/Recover/Checkpoint. Always the outermost lock.
  /// unique_ptr because WriterPriorityMutex is immovable.
  mutable std::vector<std::unique_ptr<WriterPriorityMutex>> state_stripes_;

  // Volatile state. Each container below is guarded by the leaf mutex
  // named next to it; leaf mutexes are never held together.
  mutable Mutex active_mu_;
  std::unordered_map<TxnId, PendingTxn> active_ GUARDED_BY(active_mu_);

  /// partitions_ x kShardCount buckets, partition-major.
  mutable std::vector<std::unique_ptr<DovShard>> dov_shards_;

  mutable Mutex meta_mu_;
  std::map<std::string, std::string> meta_ GUARDED_BY(meta_mu_);

  mutable Mutex graphs_mu_;
  std::unordered_map<DaId, DerivationGraph> graphs_ GUARDED_BY(graphs_mu_);
  std::unordered_map<DaId, std::vector<DovId>> dovs_by_da_
      GUARDED_BY(graphs_mu_);

  // Stable storage. The WAL synchronizes its own appends; snapshot_ is
  // only touched under an all-stripes exclusive hold and is used by the
  // simulated in-memory mode only — persistent mode keeps the snapshot
  // on disk (<dir>/snapshot.bin) and reloads it during recovery rather
  // than paying double residency for the whole committed image.
  WriteAheadLog wal_;
  RepositorySnapshot snapshot_;

  RepositoryStats stats_;
  DerivationGraph empty_graph_;
};

}  // namespace concord::storage

#endif  // CONCORD_STORAGE_REPOSITORY_H_
