#ifndef CONCORD_STORAGE_REPOSITORY_H_
#define CONCORD_STORAGE_REPOSITORY_H_

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/sync.h"
#include "common/status.h"
#include "storage/derivation_graph.h"
#include "storage/schema.h"
#include "storage/version.h"
#include "storage/wal.h"

namespace concord::storage {

/// Counters exposed for benchmarks and the EXPERIMENTS harness.
/// Fields are atomic so concurrent committers can bump them without a
/// lock; read them at quiescence (or accept slightly stale values).
struct RepositoryStats {
  std::atomic<uint64_t> txns_begun{0};
  std::atomic<uint64_t> txns_committed{0};
  std::atomic<uint64_t> txns_aborted{0};
  std::atomic<uint64_t> dovs_written{0};
  std::atomic<uint64_t> crashes{0};
  std::atomic<uint64_t> recoveries{0};
};

/// The integrated design data repository: the "advanced DBMS (object
/// and version management)" at the bottom of Fig. 1. It provides
///  - a DOT schema catalog with integrity checking,
///  - versioned, immutable DOVs organized in per-DA derivation graphs,
///  - short repository transactions with WAL-based atomicity and
///    durability (crash + recovery are first-class, simulated), and
///  - a transactional key/value "meta" store that the CM and DM use to
///    persist DA-hierarchy state and scripts (Sect. 5.4: the CM
///    "employ[s] the data management facilities of the server DBMS").
///
/// ## Threading model
///
/// The repository serves concurrent multi-designer traffic:
///  - The committed DOV store is sharded into kShardCount buckets, each
///    with its own mutex, so checkins/reads on different DOVs rarely
///    contend.
///  - WAL appends are grouped: a commit builds its whole record batch
///    outside any lock and publishes it through a single acquisition of
///    the log's append mutex (group commit — the batch is the commit
///    point and is contiguous in the log).
///  - active transactions, the meta store and the derivation graphs
///    each have their own mutex; all are leaf locks (never nested).
///  - Crash/Recover/Checkpoint take a writer (exclusive) hold on
///    state_mu_; every other operation holds it shared, so failure
///    injection observes no half-applied transaction.
///
/// Contract: a TxnId is owned by one thread between Begin and
/// Commit/Abort, and concurrent writers updating the *same* DOV must
/// hold its derivation lock (txn/lock_manager.h) — exactly the paper's
/// rule for preventing concurrent processing of one version.
/// graph() returns a reference that stays valid under concurrent
/// checkins (node-based map), but NOT across Crash()/Recover(), which
/// destroy all graphs — don't hold it across failure injection.
/// Mutating the same DA's graph from two threads requires that DA's
/// operations to be serialized, which the one-designer-per-DA model
/// already guarantees.
class Repository {
 public:
  static constexpr size_t kShardCount = 16;

  explicit Repository(SimClock* clock);
  Repository(const Repository&) = delete;
  Repository& operator=(const Repository&) = delete;

  SchemaCatalog& schema() { return schema_; }
  const SchemaCatalog& schema() const { return schema_; }

  // --- Short repository transactions -------------------------------

  TxnId Begin();
  /// Buffers a DOV write (insert or flag update). Validation against
  /// the schema happens at commit.
  Status Put(TxnId txn, DovRecord record);
  Status PutMeta(TxnId txn, const std::string& key, const std::string& value);
  Status DeleteMeta(TxnId txn, const std::string& key);
  /// Validates, logs and applies all buffered writes atomically.
  Status Commit(TxnId txn);
  Status Abort(TxnId txn);
  bool HasActiveTxn(TxnId txn) const;

  // --- Reads (committed state only) --------------------------------

  Result<DovRecord> Get(DovId id) const;
  bool Contains(DovId id) const;
  Result<std::string> GetMeta(const std::string& key) const;
  /// All meta keys with the given prefix, in lexicographic order.
  std::vector<std::string> MetaKeysWithPrefix(const std::string& prefix) const;

  /// The derivation graph of `da` (empty graph if the DA never wrote).
  /// The reference survives concurrent checkins but not Crash/Recover;
  /// see the threading-model notes above.
  const DerivationGraph& graph(DaId da) const;

  /// All committed DOVs owned by `da`, in creation order.
  std::vector<DovId> DovsOf(DaId da) const;

  DovId NextDovId() { return dov_gen_.Next(); }

  // --- Failure model ------------------------------------------------

  /// Simulated server crash: all volatile state vanishes (active
  /// transactions, materialized committed store, graphs). Stable
  /// storage (WAL + last checkpoint snapshot) survives. Waits for
  /// in-flight operations; a commit is either fully durable or gone.
  void Crash();
  /// Replays stable storage; afterwards committed state is restored
  /// exactly and all in-flight transactions are gone (atomicity).
  Status Recover();
  /// Writes a checkpoint snapshot to stable storage and truncates the
  /// log. Returns the number of log records dropped.
  size_t Checkpoint();

  const WriteAheadLog& wal() const { return wal_; }
  const RepositoryStats& stats() const { return stats_; }

 private:
  struct PendingTxn {
    std::vector<DovRecord> dov_writes;
    std::vector<std::pair<std::string, std::string>> meta_writes;
    std::vector<std::string> meta_deletes;
  };

  /// One bucket of the sharded committed-DOV store.
  struct DovShard {
    mutable std::mutex mu;
    std::unordered_map<DovId, DovRecord> dovs;
  };

  /// Stable-storage image written by Checkpoint().
  struct Snapshot {
    std::map<uint64_t, DovRecord> dovs;  // keyed by DovId value
    std::map<std::string, std::string> meta;
    uint64_t last_dov_id = 0;
    uint64_t last_txn_id = 0;
  };

  DovShard& ShardFor(DovId id) const {
    return dov_shards_[id.value() % kShardCount];
  }

  void ApplyDov(const DovRecord& record);
  /// Clears all volatile state. Caller holds state_mu_ exclusively.
  void ClearVolatileLocked();

  SimClock* clock_;
  SchemaCatalog schema_;
  IdGenerator<TxnId> txn_gen_;
  IdGenerator<DovId> dov_gen_;

  /// Shared for normal operation, exclusive for Crash/Recover/
  /// Checkpoint. Always the outermost lock.
  mutable WriterPriorityMutex state_mu_;

  // Volatile state. Each container below is guarded by the leaf mutex
  // named next to it; leaf mutexes are never held together.
  mutable std::mutex active_mu_;
  std::unordered_map<TxnId, PendingTxn> active_;

  mutable std::array<DovShard, kShardCount> dov_shards_;

  mutable std::mutex meta_mu_;
  std::map<std::string, std::string> meta_;

  mutable std::mutex graphs_mu_;
  std::unordered_map<DaId, DerivationGraph> graphs_;
  std::unordered_map<DaId, std::vector<DovId>> dovs_by_da_;

  // Stable storage. The WAL synchronizes its own appends; snapshot_ is
  // only touched under an exclusive state_mu_ hold.
  WriteAheadLog wal_;
  Snapshot snapshot_;

  RepositoryStats stats_;
  DerivationGraph empty_graph_;
};

}  // namespace concord::storage

#endif  // CONCORD_STORAGE_REPOSITORY_H_
