#include "storage/repository.h"

#include <algorithm>

#include "common/logging.h"

namespace concord::storage {

std::string DovRecord::ToString() const {
  std::string out = id.ToString() + "@" + owner_da.ToString();
  if (final_dov) out += " [final]";
  if (propagated) out += " [propagated]";
  if (invalidated) out += " [invalidated]";
  return out;
}

Repository::Repository(SimClock* clock) : clock_(clock) {}

TxnId Repository::Begin() {
  TxnId id = txn_gen_.Next();
  active_.emplace(id, PendingTxn{});
  ++stats_.txns_begun;
  return id;
}

Status Repository::Put(TxnId txn, DovRecord record) {
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::NotFound("no active repository transaction " +
                            txn.ToString());
  }
  if (!record.id.valid()) {
    return Status::InvalidArgument("DOV record has no id");
  }
  it->second.dov_writes.push_back(std::move(record));
  return Status::OK();
}

Status Repository::PutMeta(TxnId txn, const std::string& key,
                           const std::string& value) {
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::NotFound("no active repository transaction " +
                            txn.ToString());
  }
  it->second.meta_writes.emplace_back(key, value);
  return Status::OK();
}

Status Repository::DeleteMeta(TxnId txn, const std::string& key) {
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::NotFound("no active repository transaction " +
                            txn.ToString());
  }
  it->second.meta_deletes.push_back(key);
  return Status::OK();
}

Status Repository::Commit(TxnId txn) {
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::NotFound("no active repository transaction " +
                            txn.ToString());
  }
  PendingTxn& pending = it->second;

  // Integrity check before anything reaches the log: "the consistency
  // of the newly created DOV has to be checked" (Sect. 5.2). A failed
  // check leaves the transaction active so the caller can abort or fix.
  for (const DovRecord& record : pending.dov_writes) {
    Status st = schema_.Validate(record.data);
    if (!st.ok()) {
      CONCORD_INFO("repo", "checkin integrity failure for "
                               << record.id.ToString() << ": "
                               << st.ToString());
      return st;
    }
  }

  // WAL protocol: BEGIN, one record per write, COMMIT. The COMMIT
  // record is the commit point.
  wal_.Append({WalRecord::Type::kBegin, txn, std::nullopt, "", ""});
  for (const DovRecord& record : pending.dov_writes) {
    wal_.Append({WalRecord::Type::kWriteDov, txn, record, "", ""});
  }
  for (const auto& [key, value] : pending.meta_writes) {
    wal_.Append({WalRecord::Type::kWriteMeta, txn, std::nullopt, key, value});
  }
  for (const std::string& key : pending.meta_deletes) {
    wal_.Append({WalRecord::Type::kDeleteMeta, txn, std::nullopt, key, ""});
  }
  wal_.Append({WalRecord::Type::kCommit, txn, std::nullopt, "", ""});

  for (const DovRecord& record : pending.dov_writes) {
    ApplyDov(record);
    ++stats_.dovs_written;
  }
  for (const auto& [key, value] : pending.meta_writes) meta_[key] = value;
  for (const std::string& key : pending.meta_deletes) meta_.erase(key);

  active_.erase(it);
  ++stats_.txns_committed;
  return Status::OK();
}

Status Repository::Abort(TxnId txn) {
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::NotFound("no active repository transaction " +
                            txn.ToString());
  }
  wal_.Append({WalRecord::Type::kAbort, txn, std::nullopt, "", ""});
  active_.erase(it);
  ++stats_.txns_aborted;
  return Status::OK();
}

Result<DovRecord> Repository::Get(DovId id) const {
  auto it = committed_.find(id);
  if (it == committed_.end()) {
    return Status::NotFound(id.ToString() + " not in repository");
  }
  return it->second;
}

Result<std::string> Repository::GetMeta(const std::string& key) const {
  auto it = meta_.find(key);
  if (it == meta_.end()) {
    return Status::NotFound("no meta entry '" + key + "'");
  }
  return it->second;
}

std::vector<std::string> Repository::MetaKeysWithPrefix(
    const std::string& prefix) const {
  std::vector<std::string> keys;
  for (auto it = meta_.lower_bound(prefix); it != meta_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  return keys;
}

const DerivationGraph& Repository::graph(DaId da) const {
  auto it = graphs_.find(da);
  return it == graphs_.end() ? empty_graph_ : it->second;
}

std::vector<DovId> Repository::DovsOf(DaId da) const {
  auto it = dovs_by_da_.find(da);
  return it == dovs_by_da_.end() ? std::vector<DovId>{} : it->second;
}

void Repository::ApplyDov(const DovRecord& record) {
  bool is_new = committed_.count(record.id) == 0;
  committed_[record.id] = record;
  if (is_new) {
    graphs_[record.owner_da].Add(record.id, record.predecessors)
        .ok();  // duplicate insert impossible: is_new checked above
    dovs_by_da_[record.owner_da].push_back(record.id);
  }
}

void Repository::Crash() {
  active_.clear();
  committed_.clear();
  meta_.clear();
  graphs_.clear();
  dovs_by_da_.clear();
  ++stats_.crashes;
  CONCORD_INFO("repo", "server crash: volatile state lost, "
                           << wal_.size() << " WAL records on stable storage");
}

Status Repository::Recover() {
  // Restore the checkpoint snapshot, then redo committed transactions
  // from the log. Uncommitted (no COMMIT record) transactions leave no
  // trace: atomicity.
  committed_.clear();
  meta_.clear();
  graphs_.clear();
  dovs_by_da_.clear();
  active_.clear();

  std::map<uint64_t, DovRecord> restored = snapshot_.dovs;
  std::map<std::string, std::string> restored_meta = snapshot_.meta;

  // First pass: find committed transaction ids.
  std::unordered_map<TxnId, bool> committed_txns;
  for (const WalRecord& record : wal_.records()) {
    if (record.type == WalRecord::Type::kCommit) {
      committed_txns[record.txn] = true;
    }
  }
  // Second pass: redo writes of committed transactions in log order.
  for (const WalRecord& record : wal_.records()) {
    if (!committed_txns.count(record.txn)) continue;
    switch (record.type) {
      case WalRecord::Type::kWriteDov:
        restored[record.dov->id.value()] = *record.dov;
        break;
      case WalRecord::Type::kWriteMeta:
        restored_meta[record.meta_key] = record.meta_value;
        break;
      case WalRecord::Type::kDeleteMeta:
        restored_meta.erase(record.meta_key);
        break;
      default:
        break;
    }
  }

  uint64_t max_dov = snapshot_.last_dov_id;
  for (const auto& [id_value, record] : restored) {
    max_dov = std::max(max_dov, id_value);
    ApplyDov(record);
  }
  meta_ = std::move(restored_meta);

  // Id generators must not reuse ids issued before the crash.
  while (dov_gen_.last() < max_dov) dov_gen_.Next();
  while (txn_gen_.last() < snapshot_.last_txn_id) txn_gen_.Next();

  ++stats_.recoveries;
  CONCORD_INFO("repo", "recovery complete: " << committed_.size()
                                             << " DOVs restored");
  return Status::OK();
}

size_t Repository::Checkpoint() {
  snapshot_.dovs.clear();
  for (const auto& [id, record] : committed_) {
    snapshot_.dovs[id.value()] = record;
  }
  snapshot_.meta = meta_;
  snapshot_.last_dov_id = dov_gen_.last();
  snapshot_.last_txn_id = txn_gen_.last();
  size_t before = wal_.size();
  wal_.Append({WalRecord::Type::kCheckpoint, TxnId(), std::nullopt, "", ""});
  wal_.TruncateToLastCheckpoint();
  return before + 1 - wal_.size();
}

}  // namespace concord::storage
