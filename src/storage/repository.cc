#include "storage/repository.h"

#include <algorithm>

#include "common/logging.h"

namespace concord::storage {

std::string DovRecord::ToString() const {
  std::string out = id.ToString() + "@" + owner_da.ToString();
  if (final_dov) out += " [final]";
  if (propagated) out += " [propagated]";
  if (invalidated) out += " [invalidated]";
  return out;
}

Repository::Repository(SimClock* clock) : clock_(clock) {}

TxnId Repository::Begin() {
  std::shared_lock<WriterPriorityMutex> state(state_mu_);
  TxnId id = txn_gen_.Next();
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    active_.emplace(id, PendingTxn{});
  }
  ++stats_.txns_begun;
  return id;
}

Status Repository::Put(TxnId txn, DovRecord record) {
  std::shared_lock<WriterPriorityMutex> state(state_mu_);
  if (!record.id.valid()) {
    return Status::InvalidArgument("DOV record has no id");
  }
  std::lock_guard<std::mutex> lock(active_mu_);
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::NotFound("no active repository transaction " +
                            txn.ToString());
  }
  it->second.dov_writes.push_back(std::move(record));
  return Status::OK();
}

Status Repository::PutMeta(TxnId txn, const std::string& key,
                           const std::string& value) {
  std::shared_lock<WriterPriorityMutex> state(state_mu_);
  std::lock_guard<std::mutex> lock(active_mu_);
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::NotFound("no active repository transaction " +
                            txn.ToString());
  }
  it->second.meta_writes.emplace_back(key, value);
  return Status::OK();
}

Status Repository::DeleteMeta(TxnId txn, const std::string& key) {
  std::shared_lock<WriterPriorityMutex> state(state_mu_);
  std::lock_guard<std::mutex> lock(active_mu_);
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::NotFound("no active repository transaction " +
                            txn.ToString());
  }
  it->second.meta_deletes.push_back(key);
  return Status::OK();
}

bool Repository::HasActiveTxn(TxnId txn) const {
  std::lock_guard<std::mutex> lock(active_mu_);
  return active_.count(txn) > 0;
}

Status Repository::Commit(TxnId txn) {
  std::shared_lock<WriterPriorityMutex> state(state_mu_);

  // Claim the pending set. The txn is owned by the committing thread,
  // so nobody else can Put into it concurrently; on integrity failure
  // it is re-registered so the caller can abort or fix (same observable
  // behaviour as the single-threaded code).
  PendingTxn pending;
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    auto it = active_.find(txn);
    if (it == active_.end()) {
      return Status::NotFound("no active repository transaction " +
                              txn.ToString());
    }
    pending = std::move(it->second);
    active_.erase(it);
  }

  // Integrity check before anything reaches the log: "the consistency
  // of the newly created DOV has to be checked" (Sect. 5.2). Runs
  // outside every lock — validation parallelizes across committers.
  for (const DovRecord& record : pending.dov_writes) {
    Status st = schema_.Validate(record.data);
    if (!st.ok()) {
      CONCORD_INFO("repo", "checkin integrity failure for "
                               << record.id.ToString() << ": "
                               << st.ToString());
      std::lock_guard<std::mutex> lock(active_mu_);
      active_[txn] = std::move(pending);
      return st;
    }
  }

  // WAL protocol: BEGIN, one record per write, COMMIT. The whole batch
  // is built lock-free and published under one acquisition of the
  // append mutex (group commit); the batch append is the commit point.
  std::vector<WalRecord> batch;
  batch.reserve(pending.dov_writes.size() + pending.meta_writes.size() +
                pending.meta_deletes.size() + 2);
  batch.push_back({WalRecord::Type::kBegin, txn, std::nullopt, "", ""});
  for (const DovRecord& record : pending.dov_writes) {
    batch.push_back({WalRecord::Type::kWriteDov, txn, record, "", ""});
  }
  for (const auto& [key, value] : pending.meta_writes) {
    batch.push_back({WalRecord::Type::kWriteMeta, txn, std::nullopt, key, value});
  }
  for (const std::string& key : pending.meta_deletes) {
    batch.push_back({WalRecord::Type::kDeleteMeta, txn, std::nullopt, key, ""});
  }
  batch.push_back({WalRecord::Type::kCommit, txn, std::nullopt, "", ""});
  wal_.AppendBatch(std::move(batch));

  for (DovRecord& record : pending.dov_writes) {
    ApplyDov(record);
    ++stats_.dovs_written;
  }
  if (!pending.meta_writes.empty() || !pending.meta_deletes.empty()) {
    std::lock_guard<std::mutex> lock(meta_mu_);
    for (auto& [key, value] : pending.meta_writes) {
      meta_[key] = std::move(value);
    }
    for (const std::string& key : pending.meta_deletes) meta_.erase(key);
  }

  ++stats_.txns_committed;
  return Status::OK();
}

Status Repository::Abort(TxnId txn) {
  std::shared_lock<WriterPriorityMutex> state(state_mu_);
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    auto it = active_.find(txn);
    if (it == active_.end()) {
      return Status::NotFound("no active repository transaction " +
                              txn.ToString());
    }
    active_.erase(it);
  }
  wal_.Append({WalRecord::Type::kAbort, txn, std::nullopt, "", ""});
  ++stats_.txns_aborted;
  return Status::OK();
}

Result<DovRecord> Repository::Get(DovId id) const {
  std::shared_lock<WriterPriorityMutex> state(state_mu_);
  DovShard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.dovs.find(id);
  if (it == shard.dovs.end()) {
    return Status::NotFound(id.ToString() + " not in repository");
  }
  return it->second;
}

bool Repository::Contains(DovId id) const {
  std::shared_lock<WriterPriorityMutex> state(state_mu_);
  DovShard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.dovs.count(id) > 0;
}

Result<std::string> Repository::GetMeta(const std::string& key) const {
  std::shared_lock<WriterPriorityMutex> state(state_mu_);
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = meta_.find(key);
  if (it == meta_.end()) {
    return Status::NotFound("no meta entry '" + key + "'");
  }
  return it->second;
}

std::vector<std::string> Repository::MetaKeysWithPrefix(
    const std::string& prefix) const {
  std::shared_lock<WriterPriorityMutex> state(state_mu_);
  std::lock_guard<std::mutex> lock(meta_mu_);
  std::vector<std::string> keys;
  for (auto it = meta_.lower_bound(prefix); it != meta_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  return keys;
}

const DerivationGraph& Repository::graph(DaId da) const {
  std::shared_lock<WriterPriorityMutex> state(state_mu_);
  std::lock_guard<std::mutex> lock(graphs_mu_);
  auto it = graphs_.find(da);
  return it == graphs_.end() ? empty_graph_ : it->second;
}

std::vector<DovId> Repository::DovsOf(DaId da) const {
  std::shared_lock<WriterPriorityMutex> state(state_mu_);
  std::lock_guard<std::mutex> lock(graphs_mu_);
  auto it = dovs_by_da_.find(da);
  return it == dovs_by_da_.end() ? std::vector<DovId>{} : it->second;
}

void Repository::ApplyDov(const DovRecord& record) {
  bool is_new;
  {
    DovShard& shard = ShardFor(record.id);
    std::lock_guard<std::mutex> lock(shard.mu);
    is_new = shard.dovs.count(record.id) == 0;
    shard.dovs[record.id] = record;
  }
  if (is_new) {
    std::lock_guard<std::mutex> lock(graphs_mu_);
    graphs_[record.owner_da].Add(record.id, record.predecessors)
        .ok();  // duplicate insert impossible: is_new checked above
    dovs_by_da_[record.owner_da].push_back(record.id);
  }
}

void Repository::ClearVolatileLocked() {
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    active_.clear();
  }
  for (DovShard& shard : dov_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.dovs.clear();
  }
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    meta_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(graphs_mu_);
    graphs_.clear();
    dovs_by_da_.clear();
  }
}

void Repository::Crash() {
  std::unique_lock<WriterPriorityMutex> state(state_mu_);
  ClearVolatileLocked();
  ++stats_.crashes;
  CONCORD_INFO("repo", "server crash: volatile state lost, "
                           << wal_.size() << " WAL records on stable storage");
}

Status Repository::Recover() {
  // Restore the checkpoint snapshot, then redo committed transactions
  // from the log. Uncommitted (no COMMIT record) transactions leave no
  // trace: atomicity. The exclusive hold keeps new traffic out until
  // the committed state is fully rebuilt.
  std::unique_lock<WriterPriorityMutex> state(state_mu_);
  ClearVolatileLocked();

  std::map<uint64_t, DovRecord> restored = snapshot_.dovs;
  std::map<std::string, std::string> restored_meta = snapshot_.meta;

  // First pass: find committed transaction ids.
  std::unordered_map<TxnId, bool> committed_txns;
  for (const WalRecord& record : wal_.records()) {
    if (record.type == WalRecord::Type::kCommit) {
      committed_txns[record.txn] = true;
    }
  }
  // Second pass: redo writes of committed transactions in log order.
  for (const WalRecord& record : wal_.records()) {
    if (!committed_txns.count(record.txn)) continue;
    switch (record.type) {
      case WalRecord::Type::kWriteDov:
        restored[record.dov->id.value()] = *record.dov;
        break;
      case WalRecord::Type::kWriteMeta:
        restored_meta[record.meta_key] = record.meta_value;
        break;
      case WalRecord::Type::kDeleteMeta:
        restored_meta.erase(record.meta_key);
        break;
      default:
        break;
    }
  }

  uint64_t max_dov = snapshot_.last_dov_id;
  size_t restored_count = restored.size();
  for (const auto& [id_value, record] : restored) {
    max_dov = std::max(max_dov, id_value);
    ApplyDov(record);
  }
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    meta_ = std::move(restored_meta);
  }

  // Id generators must not reuse ids issued before the crash.
  while (dov_gen_.last() < max_dov) dov_gen_.Next();
  while (txn_gen_.last() < snapshot_.last_txn_id) txn_gen_.Next();

  ++stats_.recoveries;
  CONCORD_INFO("repo",
               "recovery complete: " << restored_count << " DOVs restored");
  return Status::OK();
}

size_t Repository::Checkpoint() {
  std::unique_lock<WriterPriorityMutex> state(state_mu_);
  snapshot_.dovs.clear();
  for (DovShard& shard : dov_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [id, record] : shard.dovs) {
      snapshot_.dovs[id.value()] = record;
    }
  }
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    snapshot_.meta = meta_;
  }
  snapshot_.last_dov_id = dov_gen_.last();
  snapshot_.last_txn_id = txn_gen_.last();
  size_t before = wal_.size();
  wal_.Append({WalRecord::Type::kCheckpoint, TxnId(), std::nullopt, "", ""});
  wal_.TruncateToLastCheckpoint();
  return before + 1 - wal_.size();
}

}  // namespace concord::storage
