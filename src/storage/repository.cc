#include "storage/repository.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/fs.h"
#include "common/logging.h"

namespace concord::storage {

namespace {

constexpr const char* kSnapshotFile = "snapshot.bin";
constexpr const char* kSnapshotTmpFile = "snapshot.tmp";

}  // namespace

std::string DovRecord::ToString() const {
  std::string out = id.ToString() + "@" + owner_da.ToString();
  if (final_dov) out += " [final]";
  if (propagated) out += " [propagated]";
  if (invalidated) out += " [invalidated]";
  return out;
}

Repository::Repository(SimClock* clock) : clock_(clock) {
  state_stripes_.push_back(std::make_unique<WriterPriorityMutex>());
  for (size_t i = 0; i < kShardCount; ++i) {
    dov_shards_.push_back(std::make_unique<DovShard>());
  }
}

Status Repository::SetExecutionPartitions(size_t partitions) {
  if (partitions < 1) partitions = 1;
  if (partitions == partitions_) return Status::OK();
  if (wal_.total_appended() > 0 || stats_.txns_begun.load() > 0 ||
      dov_gen_.last() > 0 || txn_gen_.last() > 0 || !dir_.empty()) {
    // The bucket map is a function of the partition count; repartitioning
    // a store that already holds records would strand them in buckets
    // no lookup reaches.
    return Status::FailedPrecondition(
        "SetExecutionPartitions must precede all repository traffic");
  }
  partitions_ = partitions;
  state_stripes_.clear();
  dov_shards_.clear();
  for (size_t p = 0; p < partitions_; ++p) {
    state_stripes_.push_back(std::make_unique<WriterPriorityMutex>());
    for (size_t i = 0; i < kShardCount; ++i) {
      dov_shards_.push_back(std::make_unique<DovShard>());
    }
  }
  return Status::OK();
}

Repository::~Repository() { Close(); }

Result<RepositorySnapshot> Repository::LoadSnapshotLocked(
    const std::string& dir) const {
  std::string path = dir + "/" + kSnapshotFile;
  std::error_code ec;
  bool have_snapshot = std::filesystem::exists(path, ec);
  if (ec) {
    // "Cannot tell" must not degrade to "no snapshot": replaying the
    // log alone would silently drop everything before the log start.
    return Status::Internal("cannot stat " + path + ": " + ec.message());
  }
  if (!have_snapshot) return RepositorySnapshot{};
  CONCORD_ASSIGN_OR_RETURN(std::string content, ReadWholeFile(path));
  Result<RepositorySnapshot> snapshot = DecodeSnapshot(content);
  if (!snapshot.ok()) {
    // Fail stop rather than silently serving a partial history: the
    // snapshot is the only copy of everything before the log start.
    return Status::Internal("refusing to use " + path + ": " +
                            snapshot.status().message());
  }
  return snapshot;
}

Status Repository::Open(const std::string& dir, WalOptions wal_options) {
  auto state = LockAllStripes();
  if (poisoned_.load()) {
    return Status::FailedPrecondition(
        "repository is poisoned by an earlier failed open/recovery; "
        "create a fresh instance");
  }
  if (!dir_.empty()) {
    return Status::FailedPrecondition("repository already opened at " + dir_);
  }
  if (wal_.total_appended() > 0 || stats_.txns_begun.load() > 0 ||
      dov_gen_.last() > 0 || txn_gen_.last() > 0) {
    // Includes ids drawn via NextDovId(): an id handed out before the
    // replay bumps the generators could collide with an id already on
    // stable storage and silently overwrite a restored DOV.
    return Status::FailedPrecondition(
        "Open must precede all repository traffic");
  }
  // Any failure past this point poisons the repository: a caller that
  // ignores the error must not keep committing into an in-memory log
  // that no restart will ever see (appends then fail stop).
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    Poison();
    return Status::Internal("cannot create repository directory " + dir +
                            ": " + ec.message());
  }

  // A crash between snapshot-tmp write and rename leaves the tmp file
  // behind; it was never installed, so it is dead weight.
  std::filesystem::remove(dir + "/" + kSnapshotTmpFile, ec);

  Result<RepositorySnapshot> snapshot = LoadSnapshotLocked(dir);
  if (!snapshot.ok()) {
    Poison();
    return snapshot.status();
  }

  wal_options.dir = dir;
  // The WAL's torn-tail scan must decode every live frame anyway; it
  // hands the decoded records straight to replay, so startup reads and
  // decodes each segment exactly once.
  std::vector<WalRecord> scanned;
  Status wal_status = wal_.Open(std::move(wal_options), &scanned);
  if (!wal_status.ok()) {
    wal_.Close();
    Poison();
    return wal_status;
  }
  Result<size_t> restored = ReplayStableLocked(*snapshot, scanned);
  if (!restored.ok()) {
    // Leave no half-open repository behind: the id generators were
    // never advanced past the ids on stable storage, so accepting
    // traffic here would eventually reissue them. Closing + poisoning
    // makes any later append fail stop; the instance must be discarded.
    wal_.Close();
    Poison();
    return restored.status();
  }
  dir_ = dir;
  CONCORD_INFO("repo", "opened " << dir << ": " << *restored
                                 << " DOVs restored from snapshot + "
                                 << wal_.size() << " log records");
  return Status::OK();
}

void Repository::Close() {
  auto state = LockAllStripes();
  wal_.Close();
}

TxnId Repository::Begin() {
  SharedReadLock state(state_stripes_[0].get());
  TxnId id = txn_gen_.Next();
  {
    MutexLock lock(&active_mu_);
    active_.emplace(id, PendingTxn{});
  }
  ++stats_.txns_begun;
  return id;
}

Status Repository::Put(TxnId txn, DovRecord record) {
  SharedReadLock state(state_stripes_[0].get());
  if (!record.id.valid()) {
    return Status::InvalidArgument("DOV record has no id");
  }
  MutexLock lock(&active_mu_);
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::NotFound("no active repository transaction " +
                            txn.ToString());
  }
  it->second.dov_writes.push_back(std::move(record));
  return Status::OK();
}

Status Repository::PutMeta(TxnId txn, const std::string& key,
                           const std::string& value) {
  SharedReadLock state(state_stripes_[0].get());
  MutexLock lock(&active_mu_);
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::NotFound("no active repository transaction " +
                            txn.ToString());
  }
  it->second.meta_writes.emplace_back(key, value);
  return Status::OK();
}

Status Repository::DeleteMeta(TxnId txn, const std::string& key) {
  SharedReadLock state(state_stripes_[0].get());
  MutexLock lock(&active_mu_);
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::NotFound("no active repository transaction " +
                            txn.ToString());
  }
  it->second.meta_deletes.push_back(key);
  return Status::OK();
}

bool Repository::HasActiveTxn(TxnId txn) const {
  MutexLock lock(&active_mu_);
  return active_.count(txn) > 0;
}

Status Repository::Commit(TxnId txn) {
  SharedReadLock state(state_stripes_[0].get());

  // Claim the pending set. The txn is owned by the committing thread,
  // so nobody else can Put into it concurrently; on integrity failure
  // it is re-registered so the caller can abort or fix (same observable
  // behaviour as the single-threaded code).
  PendingTxn pending;
  {
    MutexLock lock(&active_mu_);
    auto it = active_.find(txn);
    if (it == active_.end()) {
      return Status::NotFound("no active repository transaction " +
                              txn.ToString());
    }
    pending = std::move(it->second);
    active_.erase(it);
  }

  // Integrity check before anything reaches the log: "the consistency
  // of the newly created DOV has to be checked" (Sect. 5.2). Runs
  // outside every lock — validation parallelizes across committers.
  for (const DovRecord& record : pending.dov_writes) {
    Status st = schema_.Validate(record.data);
    if (!st.ok()) {
      CONCORD_INFO("repo", "checkin integrity failure for "
                               << record.id.ToString() << ": "
                               << st.ToString());
      MutexLock lock(&active_mu_);
      active_[txn] = std::move(pending);
      return st;
    }
  }

  // WAL protocol: BEGIN, one record per write, COMMIT. The whole batch
  // is built lock-free and published under one acquisition of the
  // append mutex (group commit); the batch append is the commit point.
  std::vector<WalRecord> batch;
  batch.reserve(pending.dov_writes.size() + pending.meta_writes.size() +
                pending.meta_deletes.size() + 2);
  batch.push_back({WalRecord::Type::kBegin, txn, std::nullopt, "", ""});
  for (const DovRecord& record : pending.dov_writes) {
    batch.push_back({WalRecord::Type::kWriteDov, txn, record, "", ""});
  }
  for (const auto& [key, value] : pending.meta_writes) {
    batch.push_back({WalRecord::Type::kWriteMeta, txn, std::nullopt, key, value});
  }
  for (const std::string& key : pending.meta_deletes) {
    batch.push_back({WalRecord::Type::kDeleteMeta, txn, std::nullopt, key, ""});
  }
  batch.push_back({WalRecord::Type::kCommit, txn, std::nullopt, "", ""});
  wal_.AppendBatch(std::move(batch));

  for (DovRecord& record : pending.dov_writes) {
    ApplyDov(record);
    ++stats_.dovs_written;
  }
  if (!pending.meta_writes.empty() || !pending.meta_deletes.empty()) {
    MutexLock lock(&meta_mu_);
    for (auto& [key, value] : pending.meta_writes) {
      meta_[key] = std::move(value);
    }
    for (const std::string& key : pending.meta_deletes) meta_.erase(key);
  }

  ++stats_.txns_committed;
  return Status::OK();
}

Status Repository::Abort(TxnId txn) {
  SharedReadLock state(state_stripes_[0].get());
  {
    MutexLock lock(&active_mu_);
    auto it = active_.find(txn);
    if (it == active_.end()) {
      return Status::NotFound("no active repository transaction " +
                              txn.ToString());
    }
    active_.erase(it);
  }
  // Recovery ignores aborted transactions (their writes never reached
  // the log), so the abort marker is an audit record that need not pay
  // its own fsync.
  wal_.Append({WalRecord::Type::kAbort, txn, std::nullopt, "", ""},
              /*sync=*/false);
  ++stats_.txns_aborted;
  return Status::OK();
}

Status Repository::CommitDov(DovRecord record) {
  // One stripe shared: enough to exclude Crash/Recover/Checkpoint
  // (they need all stripes), and it is the committing partition's own
  // stripe, so partitions do not share a reader count on the hot path.
  SharedReadLock state(&StripeFor(record.id));
  TxnId txn = txn_gen_.Next();
  ++stats_.txns_begun;
  Status integrity = schema_.Validate(record.data);
  if (!integrity.ok()) {
    CONCORD_INFO("repo", "checkin integrity failure for "
                             << record.id.ToString() << ": "
                             << integrity.ToString());
    wal_.Append({WalRecord::Type::kAbort, txn, std::nullopt, "", ""},
                /*sync=*/false);
    ++stats_.txns_aborted;
    return integrity;
  }
  // Same WAL protocol and group-commit point as the general path.
  std::vector<WalRecord> batch;
  batch.reserve(3);
  batch.push_back({WalRecord::Type::kBegin, txn, std::nullopt, "", ""});
  batch.push_back({WalRecord::Type::kWriteDov, txn, record, "", ""});
  batch.push_back({WalRecord::Type::kCommit, txn, std::nullopt, "", ""});
  wal_.AppendBatch(std::move(batch));
  ApplyDov(record);
  ++stats_.dovs_written;
  ++stats_.txns_committed;
  return Status::OK();
}

Result<DovRecord> Repository::Get(DovId id) const {
  SharedReadLock state(&StripeFor(id));
  DovShard& shard = ShardFor(id);
  MutexLock lock(&shard.mu);
  auto it = shard.dovs.find(id);
  if (it == shard.dovs.end()) {
    return Status::NotFound(id.ToString() + " not in repository");
  }
  return it->second;
}

bool Repository::Contains(DovId id) const {
  SharedReadLock state(&StripeFor(id));
  DovShard& shard = ShardFor(id);
  MutexLock lock(&shard.mu);
  return shard.dovs.count(id) > 0;
}

Result<std::string> Repository::GetMeta(const std::string& key) const {
  SharedReadLock state(state_stripes_[0].get());
  MutexLock lock(&meta_mu_);
  auto it = meta_.find(key);
  if (it == meta_.end()) {
    return Status::NotFound("no meta entry '" + key + "'");
  }
  return it->second;
}

std::vector<std::string> Repository::MetaKeysWithPrefix(
    const std::string& prefix) const {
  SharedReadLock state(state_stripes_[0].get());
  MutexLock lock(&meta_mu_);
  std::vector<std::string> keys;
  for (auto it = meta_.lower_bound(prefix); it != meta_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  return keys;
}

const DerivationGraph& Repository::graph(DaId da) const {
  SharedReadLock state(state_stripes_[0].get());
  MutexLock lock(&graphs_mu_);
  auto it = graphs_.find(da);
  return it == graphs_.end() ? empty_graph_ : it->second;
}

std::vector<DovId> Repository::DovsOf(DaId da) const {
  SharedReadLock state(state_stripes_[0].get());
  MutexLock lock(&graphs_mu_);
  auto it = dovs_by_da_.find(da);
  return it == dovs_by_da_.end() ? std::vector<DovId>{} : it->second;
}

void Repository::ApplyDov(const DovRecord& record) {
  bool is_new;
  {
    DovShard& shard = ShardFor(record.id);
    MutexLock lock(&shard.mu);
    is_new = shard.dovs.count(record.id) == 0;
    shard.dovs[record.id] = record;
  }
  if (is_new) {
    MutexLock lock(&graphs_mu_);
    graphs_[record.owner_da].Add(record.id, record.predecessors)
        .ok();  // duplicate insert impossible: is_new checked above
    dovs_by_da_[record.owner_da].push_back(record.id);
  }
}

void Repository::ClearVolatileLocked() {
  {
    MutexLock lock(&active_mu_);
    active_.clear();
  }
  for (const auto& shard : dov_shards_) {
    MutexLock lock(&shard->mu);
    shard->dovs.clear();
  }
  {
    MutexLock lock(&meta_mu_);
    meta_.clear();
  }
  {
    MutexLock lock(&graphs_mu_);
    graphs_.clear();
    dovs_by_da_.clear();
  }
}

void Repository::Crash() {
  auto state = LockAllStripes();
  ClearVolatileLocked();
  ++stats_.crashes;
  CONCORD_INFO("repo", "server crash: volatile state lost, "
                           << wal_.size() << " WAL records on stable storage");
}

Result<size_t> Repository::ReplayStableLocked(
    const RepositorySnapshot& snapshot, const std::vector<WalRecord>& log) {
  // Restore the checkpoint snapshot, then redo committed transactions
  // from the log. Uncommitted (no COMMIT record) transactions leave no
  // trace: atomicity. Replay is idempotent over after-images, so a log
  // that still contains records from before the snapshot (crash in the
  // checkpoint window between snapshot install and log truncation)
  // converges to the same state.
  std::map<uint64_t, DovRecord> restored = snapshot.dovs;
  std::map<std::string, std::string> restored_meta = snapshot.meta;
  if (log.size() != wal_.size()) {
    // A live segment failed to read back (I/O error, file removed
    // out from under us): serving the readable prefix would silently
    // drop committed transactions.
    return Status::Internal(
        "WAL read incomplete: got " + std::to_string(log.size()) + " of " +
        std::to_string(wal_.size()) + " records");
  }

  // First pass: find committed transaction ids, and the id high-water
  // marks — no id on stable storage may ever be reissued, including
  // txn ids that only appear in the log.
  uint64_t max_txn = snapshot.last_txn_id;
  std::unordered_map<TxnId, bool> committed_txns;
  for (const WalRecord& record : log) {
    max_txn = std::max(max_txn, record.txn.value());
    if (record.type == WalRecord::Type::kCommit) {
      committed_txns[record.txn] = true;
    }
  }
  // Second pass: redo writes of committed transactions in log order.
  for (const WalRecord& record : log) {
    if (!committed_txns.count(record.txn)) continue;
    switch (record.type) {
      case WalRecord::Type::kWriteDov:
        restored[record.dov->id.value()] = *record.dov;
        break;
      case WalRecord::Type::kWriteMeta:
        restored_meta[record.meta_key] = record.meta_value;
        break;
      case WalRecord::Type::kDeleteMeta:
        restored_meta.erase(record.meta_key);
        break;
      default:
        break;
    }
  }

  uint64_t max_dov = snapshot.last_dov_id;
  size_t restored_count = restored.size();
  for (const auto& [id_value, record] : restored) {
    // Stable storage holds full (shard-base | counter) ids; the
    // generator tracks only the local counter, so strip the base
    // before bumping it. All records in one repository share its
    // shard, so the masked maximum is exactly the local high-water.
    max_dov = std::max(max_dov, id_value & kDovLocalMask);
    ApplyDov(record);
  }
  {
    MutexLock lock(&meta_mu_);
    meta_ = std::move(restored_meta);
  }

  while (dov_gen_.last() < max_dov) dov_gen_.Next();
  while (txn_gen_.last() < max_txn) txn_gen_.Next();
  return restored_count;
}

void Repository::Poison() {
  poisoned_.store(true);
  wal_.Poison();
}

Status Repository::Recover() {
  // The exclusive hold (every stripe) keeps new traffic out until the
  // committed state is fully rebuilt.
  auto state = LockAllStripes();
  if (poisoned_.load()) {
    return Status::FailedPrecondition(
        "repository is poisoned by an earlier failed open/recovery");
  }
  if (persistent() && wal_.closed()) {
    return Status::FailedPrecondition("repository has been closed");
  }
  // Persistent mode reads the snapshot back from disk (it is not kept
  // in memory — the committed image already lives in the shards);
  // in-memory mode replays from the snapshot_ member.
  RepositorySnapshot from_disk;
  if (persistent()) {
    Result<RepositorySnapshot> loaded = LoadSnapshotLocked(dir_);
    if (!loaded.ok()) {
      wal_.Close();
      Poison();
      return loaded.status();
    }
    from_disk = std::move(*loaded);
  }
  ClearVolatileLocked();
  Result<size_t> replayed = ReplayStableLocked(
      persistent() ? from_disk : snapshot_, wal_.ReadAll());
  if (!replayed.ok()) {
    // The volatile image is already cleared; a later Checkpoint would
    // durably snapshot that emptiness and truncate the log — the one
    // sequence that can destroy every committed DOV. Poison first.
    wal_.Close();
    Poison();
    return replayed.status();
  }
  size_t restored_count = *replayed;
  ++stats_.recoveries;
  CONCORD_INFO("repo",
               "recovery complete: " << restored_count << " DOVs restored");
  return Status::OK();
}

Status Repository::WriteSnapshotFileLocked(
    const RepositorySnapshot& snapshot) {
  std::string tmp_path = dir_ + "/" + kSnapshotTmpFile;
  std::string final_path = dir_ + "/" + kSnapshotFile;
  CONCORD_ASSIGN_OR_RETURN(std::string encoded, EncodeSnapshot(snapshot));
  CONCORD_RETURN_NOT_OK(WriteFileDurably(tmp_path, encoded));
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Status::Internal("cannot install snapshot " + final_path + ": " +
                            std::strerror(errno));
  }
  return FsyncDir(dir_);
}

size_t Repository::Checkpoint() {
  auto state = LockAllStripes();
  if (poisoned_.load()) {
    CONCORD_ERROR("repo", "checkpoint refused: repository is poisoned by "
                          "an earlier failed open/recovery");
    return 0;
  }
  if (persistent() && wal_.closed()) {
    CONCORD_ERROR("repo", "checkpoint refused: repository has been closed");
    return 0;
  }
  RepositorySnapshot snapshot;
  for (const auto& shard : dov_shards_) {
    MutexLock lock(&shard->mu);
    for (const auto& [id, record] : shard->dovs) {
      snapshot.dovs[id.value()] = record;
    }
  }
  {
    MutexLock lock(&meta_mu_);
    snapshot.meta = meta_;
  }
  snapshot.last_dov_id = dov_gen_.last();
  snapshot.last_txn_id = txn_gen_.last();

  if (persistent()) {
    // The snapshot must be durably installed before a single log record
    // is dropped; a crash in between leaves snapshot + untruncated log,
    // which replays to the same state (see ReplayStableLocked). The
    // image is not retained in memory — Recover reloads it from disk —
    // so a big repository does not pay double residency.
    Status st = WriteSnapshotFileLocked(snapshot);
    if (!st.ok()) {
      CONCORD_ERROR("repo", "checkpoint skipped, snapshot write failed: "
                                << st.ToString());
      return 0;
    }
    if (checkpoint_failpoint_) {
      checkpoint_failpoint_ = false;  // one-shot, per the docs
      CONCORD_WARN("repo", "checkpoint failpoint: crashing before "
                           "log truncation");
      return 0;
    }
  } else {
    snapshot_ = std::move(snapshot);
  }

  size_t before = wal_.size();
  wal_.Append({WalRecord::Type::kCheckpoint, TxnId(), std::nullopt, "", ""});
  wal_.TruncateToLastCheckpoint();
  return before + 1 - wal_.size();
}

}  // namespace concord::storage
