#ifndef CONCORD_STORAGE_VERSION_H_
#define CONCORD_STORAGE_VERSION_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "storage/object.h"

namespace concord::storage {

/// A design object version (DOV): one immutable design state in a DA's
/// derivation graph. "All the DOVs created within a DA are organized in
/// a derivation graph, and belong to the scope of that very DA"
/// (Sect. 4.1).
///
/// The object payload never changes after checkin; the cooperation
/// flags (propagated / invalidated / final) evolve under CM control and
/// are persisted through repository transactions like any other write.
struct DovRecord {
  DovId id;
  /// The DA whose derivation graph owns this version.
  DaId owner_da;
  /// The DOP whose checkin created this version (invalid for initial
  /// DOVs installed at DA creation).
  DopId created_by;
  DotId type;
  DesignObject data;
  /// Input versions of the creating DOP ("derived from" edges).
  std::vector<DovId> predecessors;
  SimTime created_at = 0;

  /// Pre-released along usage relationships via Propagate (Sect. 4.1).
  bool propagated = false;
  /// Marked by the CM when it becomes clear this DOV will not be an
  /// ancestor of a final DOV (Sect. 5.4, invalidation).
  bool invalidated = false;
  /// Fulfills the owning DA's entire design specification.
  bool final_dov = false;

  std::string ToString() const;
};

}  // namespace concord::storage

#endif  // CONCORD_STORAGE_VERSION_H_
