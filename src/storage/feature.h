#ifndef CONCORD_STORAGE_FEATURE_H_
#define CONCORD_STORAGE_FEATURE_H_

#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/object.h"

namespace concord::storage {

/// Registry of named predicate tools. The paper allows a feature to
/// "express the need that the resulting DOVs have to pass a particular
/// test tool successfully" (Sect. 4.1); test tools are registered here
/// by name and referenced from predicate features.
class TestToolRegistry {
 public:
  using Predicate = std::function<bool(const DesignObject&)>;

  void Register(const std::string& name, Predicate predicate);
  bool Has(const std::string& name) const;
  Result<bool> Run(const std::string& name, const DesignObject& object) const;

  static TestToolRegistry& Global();

 private:
  std::map<std::string, Predicate> tools_;
};

/// One feature of a design specification. Three forms, all named:
///  - range:     a numeric attribute must lie in [min, max]
///  - equality:  an attribute must equal a given value
///  - predicate: a registered test tool must accept the DOV
class Feature {
 public:
  enum class Kind { kRange, kEquality, kPredicate };

  /// Numeric range feature; open bounds use +-infinity.
  static Feature Range(std::string name, std::string attr, double min,
                       double max);
  static Feature AtMost(std::string name, std::string attr, double max);
  static Feature AtLeast(std::string name, std::string attr, double min);
  static Feature Equals(std::string name, std::string attr, AttrValue value);
  static Feature PassesTool(std::string name, std::string tool_name);

  const std::string& name() const { return name_; }
  Kind kind() const { return kind_; }
  const std::string& attr() const { return attr_; }
  double min() const { return min_; }
  double max() const { return max_; }
  const std::string& tool_name() const { return tool_; }
  /// The comparison value of an equality feature (empty otherwise).
  const std::optional<AttrValue>& equals_value() const { return equals_; }

  /// True iff `object` fulfills this feature. Missing attributes and
  /// test-tool errors count as "not fulfilled", never as an error: the
  /// quality state of a preliminary DOV is always well-defined.
  bool IsFulfilledBy(const DesignObject& object,
                     const TestToolRegistry& tools) const;

  /// True iff every object fulfilling `other` also fulfills this
  /// feature can only be decided for like-kinds; used for refinement
  /// checks. Returns true when `other` is at least as strict.
  bool IsRefinedBy(const Feature& other) const;

  std::string ToString() const;

 private:
  Feature() = default;
  std::string name_;
  Kind kind_ = Kind::kRange;
  std::string attr_;
  double min_ = -std::numeric_limits<double>::infinity();
  double max_ = std::numeric_limits<double>::infinity();
  std::optional<AttrValue> equals_;
  std::string tool_;
};

/// Result of evaluating a DOV against a specification: which features
/// hold. "The quality state of a given DOV is defined by the subset of
/// features fulfilled" (Sect. 4.1).
struct QualityState {
  std::vector<std::string> fulfilled;
  std::vector<std::string> unfulfilled;

  bool is_final() const { return unfulfilled.empty(); }
  size_t total() const { return fulfilled.size() + unfulfilled.size(); }
  /// Fraction of the specification satisfied, in [0,1]; 1 for an empty
  /// specification.
  double completeness() const {
    return total() == 0 ? 1.0
                        : static_cast<double>(fulfilled.size()) / total();
  }
};

/// A design specification: the SPEC element of a DA's description
/// vector — "a set of properties the DOV to be constructed should
/// possess" (Sect. 4.1).
class DesignSpecification {
 public:
  DesignSpecification() = default;

  DesignSpecification& Add(Feature feature);
  /// Replaces the feature with the same name, or adds it.
  DesignSpecification& Upsert(Feature feature);
  Status Remove(const std::string& feature_name);

  const std::vector<Feature>& features() const { return features_; }
  const Feature* Find(const std::string& name) const;
  bool empty() const { return features_.empty(); }
  size_t size() const { return features_.size(); }

  /// The Evaluate operation (Sect. 4.1): determines the quality state.
  QualityState Evaluate(const DesignObject& object,
                        const TestToolRegistry& tools =
                            TestToolRegistry::Global()) const;

  /// True iff `object` fulfills the named features (all must exist in
  /// this spec and hold). Used when serving Require requests, which ask
  /// for "a DOV with a certain set of features satisfied".
  bool FulfillsSubset(const DesignObject& object,
                      const std::vector<std::string>& feature_names,
                      const TestToolRegistry& tools =
                          TestToolRegistry::Global()) const;

  /// True iff `refined` only adds features or strictly-or-equally
  /// narrows existing ones. A sub-DA "is only allowed to refine its own
  /// specification by addition of new features or by further
  /// restricting existing features" (Sect. 4.1).
  bool IsRefinementOf(const DesignSpecification& original) const;

  std::string ToString() const;

 private:
  std::vector<Feature> features_;
};

}  // namespace concord::storage

#endif  // CONCORD_STORAGE_FEATURE_H_
