#include "storage/configuration.h"

#include <sstream>

namespace concord::storage {

namespace {
constexpr char kConfigPrefix[] = "config/";
}  // namespace

std::string Configuration::Serialize() const {
  std::ostringstream os;
  os << name << "\n" << composite.value() << "\n";
  for (const auto& [slot, dov] : bindings) {
    os << slot << "=" << dov.value() << "\n";
  }
  return os.str();
}

Result<Configuration> Configuration::Deserialize(const std::string& text) {
  Configuration config;
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line.empty()) {
    return Status::InvalidArgument("configuration text has no name line");
  }
  config.name = line;
  if (!std::getline(is, line)) {
    return Status::InvalidArgument("configuration text has no composite line");
  }
  try {
    config.composite = DovId(std::stoull(line));
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad composite id '" + line + "'");
  }
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("bad binding line '" + line + "'");
    }
    try {
      config.bindings[line.substr(0, eq)] =
          DovId(std::stoull(line.substr(eq + 1)));
    } catch (const std::exception&) {
      return Status::InvalidArgument("bad binding line '" + line + "'");
    }
  }
  return config;
}

Status ConfigurationStore::Validate(const Configuration& config) const {
  if (config.name.empty()) {
    return Status::InvalidArgument("configuration has no name");
  }
  CONCORD_ASSIGN_OR_RETURN(DovRecord composite,
                           repository_.Get(config.composite));
  for (const auto& [slot, dov] : config.bindings) {
    if (slot.empty()) {
      return Status::InvalidArgument("configuration has an empty slot name");
    }
    CONCORD_ASSIGN_OR_RETURN(DovRecord component, repository_.Get(dov));
    if (component.invalidated) {
      return Status::ConstraintViolation(
          "configuration '" + config.name + "' binds invalidated " +
          dov.ToString() + " to slot '" + slot + "'");
    }
    if (!repository_.schema().IsPartOf(component.type, composite.type)) {
      return Status::ConstraintViolation(
          "slot '" + slot + "': " + component.type.ToString() +
          " is not a part of the composite's " + composite.type.ToString());
    }
  }
  return Status::OK();
}

Status ConfigurationStore::Save(const Configuration& config) {
  CONCORD_RETURN_NOT_OK(Validate(config));
  TxnId txn = repository_.Begin();
  Status st = repository_.PutMeta(txn, kConfigPrefix + config.name,
                                   config.Serialize());
  if (st.ok()) st = repository_.Commit(txn);
  if (!st.ok()) repository_.Abort(txn).ok();
  return st;
}

Result<Configuration> ConfigurationStore::Load(const std::string& name) const {
  CONCORD_ASSIGN_OR_RETURN(std::string text,
                           repository_.GetMeta(kConfigPrefix + name));
  return Configuration::Deserialize(text);
}

std::vector<std::string> ConfigurationStore::List() const {
  std::vector<std::string> names;
  for (const std::string& key :
       repository_.MetaKeysWithPrefix(kConfigPrefix)) {
    names.push_back(key.substr(sizeof(kConfigPrefix) - 1));
  }
  return names;
}

}  // namespace concord::storage
