#ifndef CONCORD_STORAGE_REPOSITORY_ROUTER_H_
#define CONCORD_STORAGE_REPOSITORY_ROUTER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "storage/repository.h"

namespace concord::storage {

/// Routes the cooperation manager's storage surface across the sharded
/// server plane. DOV reads and flag updates go to the shard encoded in
/// the DovId; the meta store (DA hierarchy, relationships, proposals,
/// grants) lives on the coordinator (shard 0) so CM recovery has one
/// authoritative place to reload from; and a router transaction fans
/// out into at most one sub-transaction per shard.
///
/// Cross-shard router transactions commit shard by shard — each
/// sub-commit is atomic, the set is not. That is sufficient for the
/// CM: its transactions are single-purpose (one DOV flag update, or a
/// batch of meta writes), so no CM transaction ever actually spans
/// shards; the fan-out exists so the code does not have to prove that
/// invariant at every call site. Client checkins never pass through
/// here — cross-shard *DOP* atomicity is the transaction managers'
/// 2PC, see txn/server_service.h.
///
/// Copyable by design (non-owning pointers + shared routing state).
class RepositoryRouter {
 public:
  RepositoryRouter() = default;
  explicit RepositoryRouter(Repository* single)
      : RepositoryRouter(std::vector<Repository*>{single}) {}
  explicit RepositoryRouter(std::vector<Repository*> shards);

  size_t shard_count() const { return shards_.size(); }
  Repository* shard(size_t index) const { return shards_[index]; }
  /// Shard 0: hosts the meta store and the schema of record.
  Repository* coordinator() const { return shards_.front(); }

  /// Repository owning `dov` (out-of-range shard indices clamp to the
  /// coordinator so corrupt ids fail as NotFound, not as a crash).
  Repository& Of(DovId dov) const {
    return *shards_[DovShardClamped(dov, shards_.size())];
  }

  /// Schema catalog of record (the coordinator's; every shard registers
  /// an identical catalog so checkin validation agrees plane-wide).
  SchemaCatalog& schema() const { return coordinator()->schema(); }

  // --- Routed transactions -------------------------------------------

  TxnId Begin();
  Status Put(TxnId txn, DovRecord record);
  Status PutMeta(TxnId txn, const std::string& key, const std::string& value);
  Status DeleteMeta(TxnId txn, const std::string& key);
  /// Commits every sub-transaction (shard order). On failure the
  /// failed sub-transaction is re-registered by its repository and the
  /// router transaction stays alive so Abort can clean up — the same
  /// observable contract as Repository::Commit.
  Status Commit(TxnId txn);
  Status Abort(TxnId txn);

  // --- Routed reads --------------------------------------------------

  Result<DovRecord> Get(DovId id) const { return Of(id).Get(id); }
  Result<std::string> GetMeta(const std::string& key) const {
    return coordinator()->GetMeta(key);
  }
  std::vector<std::string> MetaKeysWithPrefix(const std::string& prefix) const {
    return coordinator()->MetaKeysWithPrefix(prefix);
  }

  /// All committed DOVs owned by `da`, creation order within each
  /// shard, shards concatenated in index order.
  std::vector<DovId> DovsOf(DaId da) const;

  /// True iff `ancestor` precedes `descendant` in `da`'s derivation
  /// graph on any shard. (A DA's graph lives on its home shard; after
  /// a migration the chain may span two shards, each holding the edges
  /// created while the DA was homed there.)
  bool IsAncestor(DaId da, DovId ancestor, DovId descendant) const;

 private:
  struct RoutedTxn {
    /// shard index -> that shard's live sub-transaction.
    std::unordered_map<size_t, TxnId> sub;
  };

  /// Sub-transaction of `txn` on the shard owning `dov` (opened
  /// lazily). Meta routes pass the coordinator by using shard 0.
  Result<TxnId> SubTxn(TxnId txn, size_t shard_index);

  std::vector<Repository*> shards_;
  /// Routing table for in-flight router transactions. Shared across
  /// copies of the router (the CM and the system facade may hold
  /// copies), hence the shared_ptr.
  struct State {
    /// Guards the routing table. Held across a shard's Begin() in
    /// SubTxn (so it orders BEFORE repository-internal mutexes), but
    /// released before Commit/Abort fan-out.
    Mutex mu;
    uint64_t next_txn GUARDED_BY(mu) = 0;
    std::unordered_map<TxnId, RoutedTxn> txns GUARDED_BY(mu);
  };
  std::shared_ptr<State> state_;
};

}  // namespace concord::storage

#endif  // CONCORD_STORAGE_REPOSITORY_ROUTER_H_
