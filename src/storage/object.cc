#include "storage/object.h"

#include <functional>
#include <sstream>

namespace concord::storage {

void DesignObject::SetAttr(const std::string& name, AttrValue value) {
  attrs_[name] = std::move(value);
}

bool DesignObject::HasAttr(const std::string& name) const {
  return attrs_.count(name) > 0;
}

Result<AttrValue> DesignObject::GetAttr(const std::string& name) const {
  auto it = attrs_.find(name);
  if (it == attrs_.end()) {
    return Status::NotFound("no attribute '" + name + "'");
  }
  return it->second;
}

Result<double> DesignObject::GetNumeric(const std::string& name) const {
  CONCORD_ASSIGN_OR_RETURN(AttrValue value, GetAttr(name));
  return value.AsNumeric();
}

DesignObject& DesignObject::AddChild(DesignObject child) {
  children_.push_back(std::move(child));
  return children_.back();
}

int DesignObject::CountChildrenOfType(DotId type) const {
  int count = 0;
  for (const auto& child : children_) {
    if (child.type() == type) ++count;
  }
  return count;
}

size_t DesignObject::TreeSize() const {
  size_t size = 1;
  for (const auto& child : children_) size += child.TreeSize();
  return size;
}

namespace {
uint64_t MixHash(uint64_t h, uint64_t v) {
  // 64-bit variant of boost::hash_combine.
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4));
}
}  // namespace

uint64_t DesignObject::ContentHash() const {
  uint64_t h = std::hash<uint64_t>()(type_.value());
  for (const auto& [name, value] : attrs_) {
    h = MixHash(h, std::hash<std::string>()(name));
    h = MixHash(h, std::hash<std::string>()(value.ToString()));
  }
  for (const auto& child : children_) {
    h = MixHash(h, child.ContentHash());
  }
  return h;
}

std::string DesignObject::ToString() const {
  std::ostringstream os;
  os << type_.ToString() << "{";
  bool first = true;
  for (const auto& [name, value] : attrs_) {
    if (!first) os << ", ";
    os << name << "=" << value.ToString();
    first = false;
  }
  if (!children_.empty()) {
    if (!first) os << ", ";
    os << "children=" << children_.size();
  }
  os << "}";
  return os.str();
}

}  // namespace concord::storage
