#include "storage/schema.h"

#include <unordered_set>

#include "storage/object.h"

namespace concord::storage {

const AttrDef* DesignObjectType::FindAttr(const std::string& name) const {
  for (const auto& def : attrs_) {
    if (def.name == name) return &def;
  }
  return nullptr;
}

DesignObjectType* SchemaCatalog::DefineType(const std::string& name) {
  DotId id = id_gen_.Next();
  auto type = std::make_unique<DesignObjectType>(id, name);
  DesignObjectType* raw = type.get();
  types_.emplace(id, std::move(type));
  by_name_.emplace(name, id);
  return raw;
}

Result<const DesignObjectType*> SchemaCatalog::GetType(DotId id) const {
  auto it = types_.find(id);
  if (it == types_.end()) {
    return Status::NotFound("no DOT with id " + id.ToString());
  }
  return static_cast<const DesignObjectType*>(it->second.get());
}

Result<const DesignObjectType*> SchemaCatalog::GetTypeByName(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no DOT named '" + name + "'");
  }
  return GetType(it->second);
}

DesignObjectType* SchemaCatalog::GetMutableType(DotId id) {
  auto it = types_.find(id);
  return it == types_.end() ? nullptr : it->second.get();
}

bool SchemaCatalog::IsPartOf(DotId component, DotId composite) const {
  if (component == composite) return true;
  auto it = types_.find(composite);
  if (it == types_.end()) return false;
  // BFS over part-of edges; the schema graph is small (tens of DOTs)
  // and may contain shared components, so track visited types.
  std::unordered_set<DotId> visited;
  std::vector<DotId> frontier{composite};
  visited.insert(composite);
  while (!frontier.empty()) {
    DotId current = frontier.back();
    frontier.pop_back();
    auto cit = types_.find(current);
    if (cit == types_.end()) continue;
    for (const PartDef& part : cit->second->parts()) {
      if (part.component_type == component) return true;
      if (visited.insert(part.component_type).second) {
        frontier.push_back(part.component_type);
      }
    }
  }
  return false;
}

namespace {

Status ValidateAttrAgainstDef(const AttrDef& def, const AttrValue& value,
                              const std::string& type_name) {
  if (value.type() != def.type) {
    // Allow int where double is declared: tools frequently produce
    // integral measures for real-valued attributes.
    if (!(def.type == AttrType::kDouble && value.is_int())) {
      return Status::ConstraintViolation(
          "attribute '" + def.name + "' of " + type_name + " has type " +
          AttrTypeToString(value.type()) + ", expected " +
          AttrTypeToString(def.type));
    }
  }
  if (def.min.has_value() || def.max.has_value()) {
    auto numeric = value.AsNumeric();
    if (!numeric.ok()) return numeric.status();
    if (def.min.has_value() && *numeric < *def.min) {
      return Status::ConstraintViolation(
          "attribute '" + def.name + "' = " + value.ToString() +
          " below schema minimum " + std::to_string(*def.min));
    }
    if (def.max.has_value() && *numeric > *def.max) {
      return Status::ConstraintViolation(
          "attribute '" + def.name + "' = " + value.ToString() +
          " above schema maximum " + std::to_string(*def.max));
    }
  }
  return Status::OK();
}

}  // namespace

Status SchemaCatalog::Validate(const DesignObject& object) const {
  auto type_result = GetType(object.type());
  if (!type_result.ok()) return type_result.status();
  const DesignObjectType& type = **type_result;

  for (const AttrDef& def : type.attrs()) {
    if (!object.HasAttr(def.name)) {
      if (def.required) {
        return Status::ConstraintViolation("missing required attribute '" +
                                           def.name + "' on " + type.name());
      }
      continue;
    }
    CONCORD_RETURN_NOT_OK(ValidateAttrAgainstDef(
        def, object.GetAttr(def.name).value(), type.name()));
  }
  // Reject attributes not in the schema: checkin must be
  // schema-consistent (Sect. 2, TE level).
  for (const auto& [name, value] : object.attrs()) {
    if (type.FindAttr(name) == nullptr) {
      return Status::ConstraintViolation("attribute '" + name +
                                         "' not declared on " + type.name());
    }
  }

  for (const PartDef& part : type.parts()) {
    int count = object.CountChildrenOfType(part.component_type);
    if (count < part.min_count || count > part.max_count) {
      return Status::ConstraintViolation(
          "type " + type.name() + " requires between " +
          std::to_string(part.min_count) + " and " +
          std::to_string(part.max_count) + " components of " +
          part.component_type.ToString() + ", found " + std::to_string(count));
    }
  }
  for (const DesignObject& child : object.children()) {
    bool declared = false;
    for (const PartDef& part : type.parts()) {
      if (part.component_type == child.type()) {
        declared = true;
        break;
      }
    }
    if (!declared) {
      return Status::ConstraintViolation(
          "component of type " + child.type().ToString() +
          " not declared as a part of " + type.name());
    }
    CONCORD_RETURN_NOT_OK(Validate(child));
  }
  return Status::OK();
}

}  // namespace concord::storage
