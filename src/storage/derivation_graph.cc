#include "storage/derivation_graph.h"

#include <algorithm>
#include <deque>

namespace concord::storage {

Status DerivationGraph::Add(DovId dov, const std::vector<DovId>& predecessors) {
  if (Contains(dov)) {
    return Status::AlreadyExists(dov.ToString() +
                                 " already in derivation graph");
  }
  nodes_.insert(dov);
  order_.push_back(dov);
  for (DovId pred : predecessors) {
    if (Contains(pred) && pred != dov) {
      out_edges_[pred].push_back(dov);
      in_edges_[dov].push_back(pred);
    } else {
      external_inputs_[dov].push_back(pred);
    }
  }
  return Status::OK();
}

std::vector<DovId> DerivationGraph::Successors(DovId dov) const {
  auto it = out_edges_.find(dov);
  return it == out_edges_.end() ? std::vector<DovId>{} : it->second;
}

std::vector<DovId> DerivationGraph::Predecessors(DovId dov) const {
  auto it = in_edges_.find(dov);
  return it == in_edges_.end() ? std::vector<DovId>{} : it->second;
}

std::vector<DovId> DerivationGraph::Roots() const {
  std::vector<DovId> roots;
  for (DovId dov : order_) {
    auto it = in_edges_.find(dov);
    if (it == in_edges_.end() || it->second.empty()) roots.push_back(dov);
  }
  return roots;
}

std::vector<DovId> DerivationGraph::Leaves() const {
  std::vector<DovId> leaves;
  for (DovId dov : order_) {
    auto it = out_edges_.find(dov);
    if (it == out_edges_.end() || it->second.empty()) leaves.push_back(dov);
  }
  return leaves;
}

bool DerivationGraph::IsAncestor(DovId ancestor, DovId descendant) const {
  if (!Contains(ancestor) || !Contains(descendant)) return false;
  if (ancestor == descendant) return true;
  std::deque<DovId> frontier{ancestor};
  std::unordered_set<DovId> visited{ancestor};
  while (!frontier.empty()) {
    DovId current = frontier.front();
    frontier.pop_front();
    auto it = out_edges_.find(current);
    if (it == out_edges_.end()) continue;
    for (DovId next : it->second) {
      if (next == descendant) return true;
      if (visited.insert(next).second) frontier.push_back(next);
    }
  }
  return false;
}

std::vector<DovId> DerivationGraph::Descendants(DovId dov) const {
  std::vector<DovId> result;
  if (!Contains(dov)) return result;
  std::deque<DovId> frontier{dov};
  std::unordered_set<DovId> visited{dov};
  while (!frontier.empty()) {
    DovId current = frontier.front();
    frontier.pop_front();
    auto it = out_edges_.find(current);
    if (it == out_edges_.end()) continue;
    for (DovId next : it->second) {
      if (visited.insert(next).second) {
        result.push_back(next);
        frontier.push_back(next);
      }
    }
  }
  // Deterministic order for tests: follow overall topological order.
  std::unordered_set<DovId> in_result(result.begin(), result.end());
  std::vector<DovId> ordered;
  for (DovId node : order_) {
    if (in_result.count(node)) ordered.push_back(node);
  }
  return ordered;
}

std::vector<DovId> DerivationGraph::ExternalInputs(DovId dov) const {
  auto it = external_inputs_.find(dov);
  return it == external_inputs_.end() ? std::vector<DovId>{} : it->second;
}

std::vector<DovId> DerivationGraph::DerivedFromExternal(DovId external) const {
  // Seed with versions that directly consumed the external DOV, then
  // close over descendants.
  std::unordered_set<DovId> affected;
  for (const auto& [dov, inputs] : external_inputs_) {
    if (std::find(inputs.begin(), inputs.end(), external) != inputs.end()) {
      affected.insert(dov);
      for (DovId desc : Descendants(dov)) affected.insert(desc);
    }
  }
  std::vector<DovId> ordered;
  for (DovId node : order_) {
    if (affected.count(node)) ordered.push_back(node);
  }
  return ordered;
}

void DerivationGraph::Clear() {
  nodes_.clear();
  out_edges_.clear();
  in_edges_.clear();
  external_inputs_.clear();
  order_.clear();
}

}  // namespace concord::storage
