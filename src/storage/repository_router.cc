#include "storage/repository_router.h"

namespace concord::storage {

RepositoryRouter::RepositoryRouter(std::vector<Repository*> shards)
    : shards_(std::move(shards)), state_(std::make_shared<State>()) {}

TxnId RepositoryRouter::Begin() {
  // Degenerate single-shard plane: delegate ids and transactions
  // straight to the repository, bit-identical to pre-sharding.
  if (shards_.size() == 1) return coordinator()->Begin();
  MutexLock lock(&state_->mu);
  TxnId txn(++state_->next_txn);
  state_->txns.emplace(txn, RoutedTxn{});
  return txn;
}

Result<TxnId> RepositoryRouter::SubTxn(TxnId txn, size_t shard_index) {
  MutexLock lock(&state_->mu);
  auto it = state_->txns.find(txn);
  if (it == state_->txns.end()) {
    return Status::NotFound("no active router transaction " + txn.ToString());
  }
  auto sub_it = it->second.sub.find(shard_index);
  if (sub_it != it->second.sub.end()) return sub_it->second;
  TxnId sub = shards_[shard_index]->Begin();
  it->second.sub.emplace(shard_index, sub);
  return sub;
}

Status RepositoryRouter::Put(TxnId txn, DovRecord record) {
  uint32_t shard = DovShardOf(record.id);
  size_t index = shard < shards_.size() ? shard : 0;
  if (shards_.size() == 1) return shards_[0]->Put(txn, std::move(record));
  CONCORD_ASSIGN_OR_RETURN(TxnId sub, SubTxn(txn, index));
  return shards_[index]->Put(sub, std::move(record));
}

Status RepositoryRouter::PutMeta(TxnId txn, const std::string& key,
                                 const std::string& value) {
  if (shards_.size() == 1) return coordinator()->PutMeta(txn, key, value);
  CONCORD_ASSIGN_OR_RETURN(TxnId sub, SubTxn(txn, 0));
  return coordinator()->PutMeta(sub, key, value);
}

Status RepositoryRouter::DeleteMeta(TxnId txn, const std::string& key) {
  if (shards_.size() == 1) return coordinator()->DeleteMeta(txn, key);
  CONCORD_ASSIGN_OR_RETURN(TxnId sub, SubTxn(txn, 0));
  return coordinator()->DeleteMeta(sub, key);
}

Status RepositoryRouter::Commit(TxnId txn) {
  if (shards_.size() == 1) return coordinator()->Commit(txn);
  RoutedTxn routed;
  {
    MutexLock lock(&state_->mu);
    auto it = state_->txns.find(txn);
    if (it == state_->txns.end()) {
      return Status::NotFound("no active router transaction " +
                              txn.ToString());
    }
    routed = it->second;
  }
  for (const auto& [index, sub] : routed.sub) {
    Status st = shards_[index]->Commit(sub);
    if (!st.ok()) {
      // The failed sub-transaction was re-registered by its repository;
      // the router transaction stays alive so Abort can clean up both
      // it and any not-yet-committed siblings. Already-committed
      // siblings stand (shard-by-shard commit, see the class comment).
      MutexLock lock(&state_->mu);
      auto it = state_->txns.find(txn);
      if (it != state_->txns.end()) {
        RoutedTxn& live = it->second;
        for (auto sub_it = live.sub.begin(); sub_it != live.sub.end();) {
          bool committed = !shards_[sub_it->first]->HasActiveTxn(sub_it->second);
          bool failed_here = sub_it->first == index;
          if (committed && !failed_here) {
            sub_it = live.sub.erase(sub_it);
          } else {
            ++sub_it;
          }
        }
      }
      return st;
    }
  }
  MutexLock lock(&state_->mu);
  state_->txns.erase(txn);
  return Status::OK();
}

Status RepositoryRouter::Abort(TxnId txn) {
  if (shards_.size() == 1) return coordinator()->Abort(txn);
  RoutedTxn routed;
  {
    MutexLock lock(&state_->mu);
    auto it = state_->txns.find(txn);
    if (it == state_->txns.end()) {
      return Status::NotFound("no active router transaction " +
                              txn.ToString());
    }
    routed = std::move(it->second);
    state_->txns.erase(it);
  }
  Status first_error = Status::OK();
  for (const auto& [index, sub] : routed.sub) {
    Status st = shards_[index]->Abort(sub);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

std::vector<DovId> RepositoryRouter::DovsOf(DaId da) const {
  if (shards_.size() == 1) return coordinator()->DovsOf(da);
  std::vector<DovId> all;
  for (Repository* shard : shards_) {
    std::vector<DovId> part = shard->DovsOf(da);
    all.insert(all.end(), part.begin(), part.end());
  }
  return all;
}

bool RepositoryRouter::IsAncestor(DaId da, DovId ancestor,
                                  DovId descendant) const {
  for (Repository* shard : shards_) {
    if (shard->graph(da).IsAncestor(ancestor, descendant)) return true;
  }
  return false;
}

}  // namespace concord::storage
