#include "storage/wal_codec.h"

#include <bit>
#include <cstdlib>

#include "common/logging.h"
#include "common/serde.h"

namespace concord::storage {

namespace {

// AttrValue type tags. Stable on-disk values — append only.
constexpr uint8_t kAttrInt = 0;
constexpr uint8_t kAttrDouble = 1;
constexpr uint8_t kAttrString = 2;
constexpr uint8_t kAttrBool = 3;

constexpr uint32_t kSnapshotMagic = 0x43534E50;  // "CSNP"
constexpr uint32_t kSnapshotVersion = 1;

void EncodeAttrValue(std::string* out, const AttrValue& value) {
  switch (value.type()) {
    case AttrType::kInt:
      PutByte(out, kAttrInt);
      PutFixed64(out, static_cast<uint64_t>(value.as_int()));
      break;
    case AttrType::kDouble:
      PutByte(out, kAttrDouble);
      PutFixed64(out, std::bit_cast<uint64_t>(value.as_double()));
      break;
    case AttrType::kString:
      PutByte(out, kAttrString);
      PutLengthPrefixed(out, value.as_string());
      break;
    case AttrType::kBool:
      PutByte(out, kAttrBool);
      PutByte(out, value.as_bool() ? 1 : 0);
      break;
  }
}

bool DecodeAttrValue(ByteReader* in, AttrValue* value) {
  uint8_t tag = 0;
  if (!in->ReadByte(&tag)) return false;
  switch (tag) {
    case kAttrInt: {
      uint64_t v = 0;
      if (!in->ReadFixed64(&v)) return false;
      *value = AttrValue(static_cast<int64_t>(v));
      return true;
    }
    case kAttrDouble: {
      uint64_t v = 0;
      if (!in->ReadFixed64(&v)) return false;
      *value = AttrValue(std::bit_cast<double>(v));
      return true;
    }
    case kAttrString: {
      std::string_view v;
      if (!in->ReadLengthPrefixed(&v)) return false;
      *value = AttrValue(std::string(v));
      return true;
    }
    case kAttrBool: {
      uint8_t v = 0;
      if (!in->ReadByte(&v)) return false;
      *value = AttrValue(v != 0);
      return true;
    }
    default:
      return false;
  }
}

/// Nesting bound for DesignObject trees. The CRC only catches
/// accidental damage; a malformed-but-reframed payload must produce a
/// decode error, not unbounded recursion. Far above any real part-of
/// hierarchy (VLSI cell trees are ~10 deep).
constexpr int kMaxObjectDepth = 256;

void EncodeDesignObject(std::string* out, const DesignObject& object) {
  PutFixed64(out, object.type().value());
  PutFixed32(out, static_cast<uint32_t>(object.attrs().size()));
  for (const auto& [name, value] : object.attrs()) {
    PutLengthPrefixed(out, name);
    EncodeAttrValue(out, value);
  }
  PutFixed32(out, static_cast<uint32_t>(object.children().size()));
  for (const DesignObject& child : object.children()) {
    EncodeDesignObject(out, child);
  }
}

bool DecodeDesignObject(ByteReader* in, DesignObject* object,
                        int depth = 0) {
  if (depth > kMaxObjectDepth) return false;
  uint64_t type = 0;
  uint32_t attr_count = 0;
  if (!in->ReadFixed64(&type) || !in->ReadFixed32(&attr_count)) return false;
  object->set_type(DotId(type));
  for (uint32_t i = 0; i < attr_count; ++i) {
    std::string_view name;
    AttrValue value;
    if (!in->ReadLengthPrefixed(&name) || !DecodeAttrValue(in, &value)) {
      return false;
    }
    object->SetAttr(std::string(name), std::move(value));
  }
  uint32_t child_count = 0;
  if (!in->ReadFixed32(&child_count)) return false;
  for (uint32_t i = 0; i < child_count; ++i) {
    // Every child costs at least one byte of input, so a corrupt count
    // cannot make this loop outlive the (bounds-checked) buffer.
    DesignObject child;
    if (!DecodeDesignObject(in, &child, depth + 1)) return false;
    object->AddChild(std::move(child));
  }
  return true;
}

void EncodeDovRecordTo(std::string* out, const DovRecord& record) {
  PutFixed64(out, record.id.value());
  PutFixed64(out, record.owner_da.value());
  PutFixed64(out, record.created_by.value());
  PutFixed64(out, record.type.value());
  EncodeDesignObject(out, record.data);
  PutFixed32(out, static_cast<uint32_t>(record.predecessors.size()));
  for (DovId pred : record.predecessors) PutFixed64(out, pred.value());
  PutFixed64(out, static_cast<uint64_t>(record.created_at));
  uint8_t flags = 0;
  if (record.propagated) flags |= 1;
  if (record.invalidated) flags |= 2;
  if (record.final_dov) flags |= 4;
  PutByte(out, flags);
}

bool DecodeDovRecordFrom(ByteReader* in, DovRecord* record) {
  uint64_t id = 0;
  uint64_t owner = 0;
  uint64_t creator = 0;
  uint64_t type = 0;
  if (!in->ReadFixed64(&id) || !in->ReadFixed64(&owner) ||
      !in->ReadFixed64(&creator) || !in->ReadFixed64(&type)) {
    return false;
  }
  record->id = DovId(id);
  record->owner_da = DaId(owner);
  record->created_by = DopId(creator);
  record->type = DotId(type);
  if (!DecodeDesignObject(in, &record->data)) return false;
  uint32_t pred_count = 0;
  if (!in->ReadFixed32(&pred_count)) return false;
  for (uint32_t i = 0; i < pred_count; ++i) {
    uint64_t pred = 0;
    if (!in->ReadFixed64(&pred)) return false;
    record->predecessors.push_back(DovId(pred));
  }
  uint64_t created_at = 0;
  uint8_t flags = 0;
  if (!in->ReadFixed64(&created_at) || !in->ReadByte(&flags)) return false;
  record->created_at = static_cast<SimTime>(created_at);
  record->propagated = (flags & 1) != 0;
  record->invalidated = (flags & 2) != 0;
  record->final_dov = (flags & 4) != 0;
  return true;
}

}  // namespace

std::string EncodeDesignObject(const DesignObject& object) {
  std::string out;
  EncodeDesignObject(&out, object);
  return out;
}

Result<DesignObject> DecodeDesignObject(std::string_view payload) {
  ByteReader in(payload);
  DesignObject object;
  if (!DecodeDesignObject(&in, &object) || in.remaining() != 0) {
    return Status::Internal("malformed design-object payload");
  }
  return object;
}

std::string EncodeDovRecord(const DovRecord& record) {
  std::string out;
  EncodeDovRecordTo(&out, record);
  return out;
}

Result<DovRecord> DecodeDovRecord(std::string_view payload) {
  ByteReader in(payload);
  DovRecord record;
  if (!DecodeDovRecordFrom(&in, &record) || in.remaining() != 0) {
    return Status::Internal("malformed DOV record payload");
  }
  return record;
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string out;
  PutByte(&out, static_cast<uint8_t>(record.type));
  PutFixed64(&out, record.txn.value());
  PutByte(&out, record.dov.has_value() ? 1 : 0);
  if (record.dov.has_value()) EncodeDovRecordTo(&out, *record.dov);
  PutLengthPrefixed(&out, record.meta_key);
  PutLengthPrefixed(&out, record.meta_value);
  return out;
}

Result<WalRecord> DecodeWalRecord(std::string_view payload) {
  ByteReader in(payload);
  WalRecord record;
  uint8_t type = 0;
  uint64_t txn = 0;
  uint8_t has_dov = 0;
  if (!in.ReadByte(&type) ||
      type > static_cast<uint8_t>(WalRecord::Type::kCheckpoint) ||
      !in.ReadFixed64(&txn) || !in.ReadByte(&has_dov)) {
    return Status::Internal("malformed WAL record header");
  }
  record.type = static_cast<WalRecord::Type>(type);
  record.txn = TxnId(txn);
  if (has_dov != 0) {
    DovRecord dov;
    if (!DecodeDovRecordFrom(&in, &dov)) {
      return Status::Internal("malformed WAL record DOV payload");
    }
    record.dov = std::move(dov);
  }
  std::string_view key;
  std::string_view value;
  if (!in.ReadLengthPrefixed(&key) || !in.ReadLengthPrefixed(&value) ||
      in.remaining() != 0) {
    return Status::Internal("malformed WAL record meta payload");
  }
  record.meta_key = std::string(key);
  record.meta_value = std::string(value);
  return record;
}

void AppendFramed(std::string* out, std::string_view payload) {
  if (payload.empty()) {
    // Zero-length frames are reserved: an all-zero header (len=0 and
    // crc=0 == Crc32("")) is exactly what a zero-filled torn tail
    // reads back as, so readers treat it as end-of-log, never data.
    CONCORD_ERROR("wal", "refusing to write a zero-length frame");
    std::abort();
  }
  if (payload.size() > kMaxFramePayloadBytes) {
    // ReadFramed would reject this frame as torn, so writing it means
    // durably persisting bytes recovery is guaranteed to discard —
    // fail at the write instead.
    CONCORD_ERROR("wal", "frame payload of " << payload.size()
                                             << " bytes exceeds the format "
                                                "limit");
    std::abort();
  }
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  PutFixed32(out, Crc32(payload));
  out->append(payload.data(), payload.size());
}

FrameResult ReadFramed(std::string_view buf, size_t* pos,
                       std::string_view* payload) {
  if (*pos == buf.size()) return FrameResult::kEnd;
  if (buf.size() - *pos < kFrameHeaderBytes) return FrameResult::kTorn;
  ByteReader header(buf.substr(*pos, kFrameHeaderBytes));
  uint32_t len = 0;
  uint32_t crc = 0;
  header.ReadFixed32(&len);
  header.ReadFixed32(&crc);
  if (len == 0 ||  // reserved; a zero-filled torn tail reads as this
      len > kMaxFramePayloadBytes ||
      buf.size() - *pos - kFrameHeaderBytes < len) {
    return FrameResult::kTorn;
  }
  std::string_view body = buf.substr(*pos + kFrameHeaderBytes, len);
  if (Crc32(body) != crc) return FrameResult::kTorn;
  *payload = body;
  *pos += kFrameHeaderBytes + len;
  return FrameResult::kOk;
}

Result<std::string> EncodeSnapshot(const RepositorySnapshot& snapshot) {
  std::string payload;
  PutFixed32(&payload, kSnapshotMagic);
  PutFixed32(&payload, kSnapshotVersion);
  PutFixed64(&payload, snapshot.last_dov_id);
  PutFixed64(&payload, snapshot.last_txn_id);
  PutFixed64(&payload, snapshot.dovs.size());
  for (const auto& [id_value, record] : snapshot.dovs) {
    (void)id_value;  // the record carries its own id
    EncodeDovRecordTo(&payload, record);
  }
  PutFixed64(&payload, snapshot.meta.size());
  for (const auto& [key, value] : snapshot.meta) {
    PutLengthPrefixed(&payload, key);
    PutLengthPrefixed(&payload, value);
  }
  if (payload.size() > kMaxFramePayloadBytes) {
    // One frame per snapshot for now; a repository past the frame limit
    // needs the streamed multi-frame format (ROADMAP) — degrade to "no
    // checkpoint" rather than killing a healthy server.
    return Status::Internal("snapshot of " + std::to_string(payload.size()) +
                            " bytes exceeds the single-frame format limit");
  }
  std::string out;
  AppendFramed(&out, payload);
  return out;
}

Result<RepositorySnapshot> DecodeSnapshot(std::string_view file_content) {
  size_t pos = 0;
  std::string_view payload;
  if (ReadFramed(file_content, &pos, &payload) != FrameResult::kOk ||
      pos != file_content.size()) {
    return Status::Internal("snapshot file is corrupt or truncated");
  }
  ByteReader in(payload);
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!in.ReadFixed32(&magic) || magic != kSnapshotMagic) {
    return Status::Internal("snapshot file has wrong magic");
  }
  if (!in.ReadFixed32(&version) || version != kSnapshotVersion) {
    return Status::Internal("snapshot file has unsupported version");
  }
  RepositorySnapshot snapshot;
  uint64_t dov_count = 0;
  uint64_t meta_count = 0;
  if (!in.ReadFixed64(&snapshot.last_dov_id) ||
      !in.ReadFixed64(&snapshot.last_txn_id) || !in.ReadFixed64(&dov_count)) {
    return Status::Internal("snapshot file header is malformed");
  }
  for (uint64_t i = 0; i < dov_count; ++i) {
    DovRecord record;
    if (!DecodeDovRecordFrom(&in, &record)) {
      return Status::Internal("snapshot DOV entry is malformed");
    }
    snapshot.dovs[record.id.value()] = std::move(record);
  }
  if (!in.ReadFixed64(&meta_count)) {
    return Status::Internal("snapshot meta section is malformed");
  }
  for (uint64_t i = 0; i < meta_count; ++i) {
    std::string_view key;
    std::string_view value;
    if (!in.ReadLengthPrefixed(&key) || !in.ReadLengthPrefixed(&value)) {
      return Status::Internal("snapshot meta entry is malformed");
    }
    snapshot.meta[std::string(key)] = std::string(value);
  }
  if (in.remaining() != 0) {
    return Status::Internal("snapshot file has trailing bytes");
  }
  return snapshot;
}

}  // namespace concord::storage
