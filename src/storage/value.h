#ifndef CONCORD_STORAGE_VALUE_H_
#define CONCORD_STORAGE_VALUE_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/status.h"

namespace concord::storage {

/// Attribute types supported by the design-object schema. The paper's
/// PRIMA repository is a structurally complete object model; for
/// CONCORD's purposes elementary typed attributes plus the part-of
/// hierarchy (see schema.h) are sufficient — features in a design
/// specification constrain "the value of an elementary data item"
/// (Sect. 4.1).
enum class AttrType { kInt, kDouble, kString, kBool };

const char* AttrTypeToString(AttrType type);

/// A dynamically-typed attribute value.
class AttrValue {
 public:
  AttrValue() : repr_(int64_t{0}) {}
  AttrValue(int64_t v) : repr_(v) {}            // NOLINT(runtime/explicit)
  AttrValue(int v) : repr_(int64_t{v}) {}       // NOLINT(runtime/explicit)
  AttrValue(double v) : repr_(v) {}             // NOLINT(runtime/explicit)
  AttrValue(std::string v) : repr_(std::move(v)) {}  // NOLINT
  AttrValue(const char* v) : repr_(std::string(v)) {}  // NOLINT
  AttrValue(bool v) : repr_(v) {}               // NOLINT(runtime/explicit)

  AttrType type() const;

  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }

  int64_t as_int() const { return std::get<int64_t>(repr_); }
  double as_double() const { return std::get<double>(repr_); }
  const std::string& as_string() const { return std::get<std::string>(repr_); }
  bool as_bool() const { return std::get<bool>(repr_); }

  /// Numeric view: ints and doubles promote to double; other types are
  /// an error.
  Result<double> AsNumeric() const;

  std::string ToString() const;

  friend bool operator==(const AttrValue& a, const AttrValue& b) {
    return a.repr_ == b.repr_;
  }

 private:
  std::variant<int64_t, double, std::string, bool> repr_;
};

/// Named attribute bag, ordered for deterministic iteration.
using AttrMap = std::map<std::string, AttrValue>;

}  // namespace concord::storage

#endif  // CONCORD_STORAGE_VALUE_H_
