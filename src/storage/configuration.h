#ifndef CONCORD_STORAGE_CONFIGURATION_H_
#define CONCORD_STORAGE_CONFIGURATION_H_

#include <map>
#include <utility>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/repository.h"
#include "storage/repository_router.h"

namespace concord::storage {

/// A configuration: the binding of a composite design object version to
/// exactly one version per component slot — the "notion of
/// configurations" the paper points to (Sect. 4.2) and defers to its
/// version-model companion work [Kä91, KS92]. In CONCORD's flow, the
/// super-DA composes a configuration from the final DOVs its
/// terminated sub-DAs delivered.
struct Configuration {
  std::string name;
  /// The composite this configuration realizes (e.g. the chip's
  /// floorplan DOV).
  DovId composite;
  /// Component slot name (subcell name) -> chosen version.
  std::map<std::string, DovId> bindings;

  std::string Serialize() const;
  static Result<Configuration> Deserialize(const std::string& text);
};

/// Validation and persistence of configurations against a repository.
class ConfigurationStore {
 public:
  explicit ConfigurationStore(Repository* repository)
      : repository_(repository) {}
  /// Sharded plane: bound DOVs may live on any shard; reads route by
  /// the id, the configuration record itself lands in the
  /// coordinator's meta store.
  explicit ConfigurationStore(RepositoryRouter repository)
      : repository_(std::move(repository)) {}

  /// Structural consistency of `config`:
  ///  - the composite and every bound DOV exist;
  ///  - every bound DOV's DOT is declared a part (transitively) of the
  ///    composite's DOT;
  ///  - no bound version is invalidated;
  ///  - slot names are unique (map guarantees) and non-empty.
  Status Validate(const Configuration& config) const;

  /// Validates and durably records the configuration (meta store).
  Status Save(const Configuration& config);
  Result<Configuration> Load(const std::string& name) const;
  std::vector<std::string> List() const;

 private:
  RepositoryRouter repository_;
};

}  // namespace concord::storage

#endif  // CONCORD_STORAGE_CONFIGURATION_H_
