#include "storage/wal.h"

namespace concord::storage {

const char* WalRecord::TypeToString(Type type) {
  switch (type) {
    case Type::kBegin:
      return "BEGIN";
    case Type::kWriteDov:
      return "WRITE_DOV";
    case Type::kWriteMeta:
      return "WRITE_META";
    case Type::kDeleteMeta:
      return "DELETE_META";
    case Type::kCommit:
      return "COMMIT";
    case Type::kAbort:
      return "ABORT";
    case Type::kCheckpoint:
      return "CHECKPOINT";
  }
  return "?";
}

void WriteAheadLog::Append(WalRecord record) {
  records_.push_back(std::move(record));
  ++total_appended_;
}

void WriteAheadLog::TruncateToLastCheckpoint() {
  for (size_t i = records_.size(); i > 0; --i) {
    if (records_[i - 1].type == WalRecord::Type::kCheckpoint) {
      records_.erase(records_.begin(),
                     records_.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
}

}  // namespace concord::storage
