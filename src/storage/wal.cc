#include "storage/wal.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/fs.h"
#include "common/logging.h"
#include "storage/wal_codec.h"

namespace concord::storage {

namespace {

std::string SegmentName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.seg",
                static_cast<unsigned long long>(seq));
  return buf;
}

/// Parses "wal-NNNNNN.seg"; returns 0 for anything else.
uint64_t ParseSegmentName(const std::string& name) {
  unsigned long long seq = 0;
  char tail = 0;
  if (std::sscanf(name.c_str(), "wal-%20llu.se%c", &seq, &tail) == 2 &&
      tail == 'g' && name == SegmentName(seq)) {
    return seq;
  }
  return 0;
}

/// write(2) until done. A WAL that cannot write its bytes has lost the
/// durability it promised the committer, so failure is fatal (the same
/// policy as production WALs — PostgreSQL PANICs here).
void WriteFullyOrDie(int fd, std::string_view data) {
  Status written = WriteFully(fd, data);
  if (!written.ok()) {
    CONCORD_ERROR("wal", "WAL " << written.message());
    std::abort();
  }
}

/// fsync that keeps the WAL's promise or dies trying: an acknowledged
/// commit whose fsync failed must not be reported durable (the same
/// fail-stop policy as WriteFully; see also "fsyncgate" — retrying a
/// failed fsync cannot recover the lost pages).
void FsyncOrDie(int fd) {
  if (::fsync(fd) != 0) {
    CONCORD_ERROR("wal", "WAL fsync failed: " << std::strerror(errno));
    std::abort();
  }
}

/// Decodes frames from `content` until a clean end or a torn frame.
/// Returns the byte length of the valid prefix; decoded records are
/// appended to `out` when non-null.
size_t ScanSegment(std::string_view content, std::vector<WalRecord>* out,
                   size_t* record_count, bool* clean,
                   uint64_t* last_checkpoint_at_record,
                   bool* undecodable = nullptr) {
  size_t pos = 0;
  size_t records = 0;
  *clean = true;
  for (;;) {
    std::string_view payload;
    size_t before = pos;
    FrameResult frame = ReadFramed(content, &pos, &payload);
    if (frame == FrameResult::kEnd) break;
    if (frame == FrameResult::kTorn) {
      *clean = false;
      pos = before;
      break;
    }
    Result<WalRecord> record = DecodeWalRecord(payload);
    if (!record.ok()) {
      // The CRC verified, so these are exactly the bytes that were
      // written and fsynced — a decode failure here is a format
      // mismatch (newer writer, encoder bug), not a torn write.
      if (undecodable != nullptr) *undecodable = true;
      *clean = false;
      pos = before;
      break;
    }
    if (record->type == WalRecord::Type::kCheckpoint &&
        last_checkpoint_at_record != nullptr) {
      *last_checkpoint_at_record = records;
    }
    ++records;
    if (out != nullptr) out->push_back(std::move(*record));
  }
  *record_count = records;
  return pos;
}

}  // namespace

const char* WalRecord::TypeToString(Type type) {
  switch (type) {
    case Type::kBegin:
      return "BEGIN";
    case Type::kWriteDov:
      return "WRITE_DOV";
    case Type::kWriteMeta:
      return "WRITE_META";
    case Type::kDeleteMeta:
      return "DELETE_META";
    case Type::kCommit:
      return "COMMIT";
    case Type::kAbort:
      return "ABORT";
    case Type::kCheckpoint:
      return "CHECKPOINT";
  }
  return "?";
}

WriteAheadLog::~WriteAheadLog() { Close(); }

void WriteAheadLog::DieIfClosed() const {
  if (closed_.load()) {
    CONCORD_ERROR("wal", "append to a closed file-backed WAL — the record "
                         "would silently lose durability");
    std::abort();
  }
}

Status WriteAheadLog::Open(WalOptions options,
                           std::vector<WalRecord>* recovered) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("WalOptions.dir must be set for Open");
  }
  MutexLock lock(&append_mu_);
  MutexLock sync_lock(&sync_mu_);
  if (closed_.load()) {
    // Reopening would silently clear the fail-stop guarantee the
    // earlier Close/Poison gave its caller; a fresh instance is cheap.
    return Status::FailedPrecondition("WAL was closed or poisoned; "
                                      "create a fresh instance");
  }
  if (dir_fd_.load() >= 0) {
    return Status::FailedPrecondition("WAL is already file-backed");
  }
  if (!records_.empty()) {
    return Status::FailedPrecondition(
        "cannot switch a WAL with in-memory records to file-backed mode");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::Internal("cannot create WAL directory " + options.dir +
                            ": " + ec.message());
  }
  options_ = std::move(options);

  int dir_fd = ::open(options_.dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd < 0) {
    return Status::Internal("cannot open WAL directory " + options_.dir +
                            ": " + std::strerror(errno));
  }
  dir_fd_.store(dir_fd);

  // One log owner per directory: a second instance appending to the
  // same tail segment (or unlinking segments at its own checkpoints)
  // would interleave frames and destroy acknowledged commits. Same
  // guard as LevelDB's LOCK file; flock is per open-file-description,
  // so this also rejects a second Repository in the same process.
  //
  // The file also records the holder's pid. A SIGKILL'd owner releases
  // the flock (the kernel drops it with the fd) but leaves its pid
  // text behind; a restarting concordd reclaims such a stale LOCK and
  // says so, while a conflict with a live holder refuses the open and
  // names the pid instead of a bare "is locked".
  std::string lock_path = options_.dir + "/LOCK";
  lock_fd_ = ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (lock_fd_ < 0) {
    return Status::Internal("cannot open " + lock_path + ": " +
                            std::strerror(errno));
  }
  char pid_buf[32] = {0};
  ssize_t pid_len = ::pread(lock_fd_, pid_buf, sizeof(pid_buf) - 1, 0);
  long holder = pid_len > 0 ? std::strtol(pid_buf, nullptr, 10) : 0;
  pid_t self = ::getpid();
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    std::string who = "another repository instance in this process";
    if (holder > 0 && holder != static_cast<long>(self)) {
      errno = 0;
      bool holder_alive =
          ::kill(static_cast<pid_t>(holder), 0) == 0 || errno == EPERM;
      who = holder_alive
                ? "live process " + std::to_string(holder)
                : "a descriptor inherited from dead process " +
                      std::to_string(holder);
    }
    ::close(lock_fd_);
    lock_fd_ = -1;
    return Status::FailedPrecondition("WAL directory " + options_.dir +
                                      " is locked by " + who);
  }
  if (holder > 0 && holder != static_cast<long>(self)) {
    errno = 0;
    if (::kill(static_cast<pid_t>(holder), 0) != 0 && errno == ESRCH) {
      CONCORD_INFO("wal", "reclaimed stale LOCK in " << options_.dir
                              << " left by dead pid " << holder);
    }
  }
  std::string pid_text = std::to_string(self) + "\n";
  if (::ftruncate(lock_fd_, 0) != 0 ||
      ::pwrite(lock_fd_, pid_text.data(), pid_text.size(), 0) !=
          static_cast<ssize_t>(pid_text.size())) {
    // The flock itself still guards single ownership; a write failure
    // only degrades the next opener's diagnostics.
    CONCORD_WARN("wal", "cannot record holder pid in " << lock_path << ": "
                            << std::strerror(errno));
  }

  // Scan existing segments in seq order. A torn frame in the last
  // segment is the tail lost in a crash and is truncated away; a bad
  // frame anywhere earlier is corruption of durable data and refuses
  // the open (see the mid-log check below).
  std::vector<Segment> found;
  std::filesystem::directory_iterator dir_it(options_.dir, ec);
  if (ec) {
    return Status::Internal("cannot scan WAL directory " + options_.dir +
                            ": " + ec.message());
  }
  for (const auto& entry : dir_it) {
    uint64_t seq = ParseSegmentName(entry.path().filename().string());
    if (seq != 0) found.push_back({seq, entry.path().string(), 0, 0});
  }
  std::sort(found.begin(), found.end(),
            [](const Segment& a, const Segment& b) { return a.seq < b.seq; });

  // Live segments are always seq-contiguous (rotation increments by
  // one, truncation removes a prefix); a hole means a segment vanished
  // or reappeared out-of-band, and replaying across it would silently
  // resurrect stale after-images on top of a newer snapshot.
  for (size_t i = 1; i < found.size(); ++i) {
    if (found[i].seq != found[i - 1].seq + 1) {
      return Status::Internal("WAL segment sequence has a hole between " +
                              found[i - 1].path + " and " + found[i].path);
    }
  }

  for (size_t i = 0; i < found.size(); ++i) {
    Segment& segment = found[i];
    CONCORD_ASSIGN_OR_RETURN(std::string content,
                             ReadWholeFile(segment.path));
    bool clean = false;
    bool undecodable = false;
    uint64_t checkpoint_at = ~uint64_t{0};
    // One decode pass serves both the torn-tail scan and (through
    // `recovered`) the caller's replay; for a torn tail the records
    // decoded before the tear are exactly the surviving prefix.
    ++segment_decode_passes_;
    size_t valid_bytes = ScanSegment(content, recovered, &segment.records,
                                     &clean, &checkpoint_at, &undecodable);
    if (!clean) {
      if (undecodable) {
        // CRC-valid bytes that fail to parse were durably written as-is
        // (provably not a torn write); truncating them would destroy an
        // acknowledged commit, so refuse like any other corruption.
        return Status::Internal("undecodable CRC-valid frame in " +
                                segment.path +
                                " (format mismatch, not a torn tail)");
      }
      if (i + 1 != found.size()) {
        // Rotation fsyncs a segment before its successor exists, so a
        // crash can only tear the *last* segment. A bad frame earlier
        // in the log is corruption of durable, acknowledged data —
        // fail loudly instead of silently dropping everything after it.
        return Status::Internal("corrupt frame mid-log in " + segment.path +
                                " (later segments hold durable records)");
      }
      // Everything from the first bad frame of the final segment is
      // dropped, even if CRC-valid frames follow it: with coalesced
      // fsyncs several unacknowledged batches can be in the page cache
      // at a crash, and out-of-order writeback can persist a later
      // batch's blocks but not an earlier one's. Frames past a hole
      // cannot be trusted to be ordered-after it, and acknowledged
      // (fsync-covered) bytes can never sit past a hole — so the
      // truncation is safe, and it keeps the directory reopenable
      // (LevelDB's tolerate-corrupted-tail-records policy).
      CONCORD_WARN("wal", "torn tail in " << segment.path << ": keeping "
                                          << valid_bytes << " of "
                                          << content.size() << " bytes ("
                                          << segment.records << " records)");
      if (::truncate(segment.path.c_str(),
                     static_cast<off_t>(valid_bytes)) != 0) {
        return Status::Internal("cannot truncate torn tail of " +
                                segment.path + ": " + std::strerror(errno));
      }
    }
    segment.bytes = valid_bytes;
    if (checkpoint_at != ~uint64_t{0}) checkpoint_segment_seq_ = segment.seq;
    segments_.push_back(segment);
    live_records_ += segment.records;
  }
  FsyncDirLocked();
  total_appended_ = live_records_.load();

  // Continue appending to the last surviving segment, or start fresh.
  if (!segments_.empty()) {
    next_segment_seq_ = segments_.back().seq + 1;
    fd_ = ::open(segments_.back().path.c_str(),
                 O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd_ < 0) {
      return Status::Internal("cannot open segment for append: " +
                              segments_.back().path + ": " +
                              std::strerror(errno));
    }
    return Status::OK();
  }
  return OpenSegmentLocked(next_segment_seq_++);
}

void WriteAheadLog::Close() {
  MutexLock lock(&append_mu_);
  MutexLock sync_lock(&sync_mu_);
  if (fd_ >= 0) {
    // Belt and braces: every batch was already fsynced at its commit.
    if (::fsync(fd_) != 0) {
      CONCORD_WARN("wal", "fsync on close failed: " << std::strerror(errno));
    }
    ::close(fd_);
    fd_ = -1;
  }
  if (lock_fd_ >= 0) {
    ::close(lock_fd_);  // releases the flock
    lock_fd_ = -1;
  }
  int dir_fd = dir_fd_.exchange(-1);
  if (dir_fd >= 0) {
    ::close(dir_fd);
    // Appends after Close would silently take the in-memory path and
    // lose an "acknowledged" commit at process exit; fail stop instead.
    closed_.store(true);
  }
}

Status WriteAheadLog::OpenSegmentLocked(uint64_t seq) {
  std::string path = options_.dir + "/" + SegmentName(seq);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return Status::Internal("cannot create WAL segment " + path + ": " +
                            std::strerror(errno));
  }
  segments_.push_back({seq, std::move(path), 0, 0});
  FsyncDirLocked();
  return Status::OK();
}

Status WriteAheadLog::RotateLocked() {
  if (fd_ >= 0) {
    // Everything written so far becomes durable with the closing fsync;
    // record that so coalesced committers don't re-sync it.
    FsyncOrDie(fd_);
    ++flushes_;
    durable_seq_ = write_seq_.load(std::memory_order_relaxed);
    ::close(fd_);
    fd_ = -1;
  }
  return OpenSegmentLocked(next_segment_seq_++);
}

void WriteAheadLog::FsyncDirLocked() {
  // The dirent of a segment is as load-bearing as its bytes: commits
  // acknowledged into a file whose name never became durable are lost
  // on power failure. Same fail-stop policy as FsyncOrDie.
  int dir_fd = dir_fd_.load();
  if (dir_fd >= 0) FsyncOrDie(dir_fd);
}

void WriteAheadLog::Append(WalRecord record, bool sync) {
  if (dir_fd_.load() < 0) {
    MutexLock lock(&append_mu_);
    DieIfClosed();
    records_.push_back(std::move(record));
    ++total_appended_;
    ++live_records_;
    ++flushes_;
    return;
  }
  bool is_checkpoint = record.type == WalRecord::Type::kCheckpoint;
  std::string encoded;
  AppendFramed(&encoded, EncodeWalRecord(record));
  uint64_t my_seq;
  {
    MutexLock lock(&append_mu_);
    AppendBatchLocked(std::move(encoded), 1, is_checkpoint);
    my_seq = write_seq_.load(std::memory_order_relaxed);
  }
  // Unsynced records ride along with the next synced batch's fsync.
  if (sync) SyncSeq(my_seq);
}

void WriteAheadLog::AppendBatch(std::vector<WalRecord> records) {
  if (records.empty()) return;
  if (dir_fd_.load() < 0) {
    MutexLock lock(&append_mu_);
    DieIfClosed();
    records_.insert(records_.end(),
                    std::make_move_iterator(records.begin()),
                    std::make_move_iterator(records.end()));
    total_appended_ += records.size();
    live_records_ += records.size();
    ++flushes_;
    return;
  }
  // Encode outside every lock — serialization parallelizes across
  // committers; only the write(2) itself is serialized.
  std::string encoded;
  bool has_checkpoint = false;
  for (const WalRecord& record : records) {
    has_checkpoint |= record.type == WalRecord::Type::kCheckpoint;
    AppendFramed(&encoded, EncodeWalRecord(record));
  }
  uint64_t my_seq;
  {
    MutexLock lock(&append_mu_);
    // A batch carrying a checkpoint rotates first like Append does, so
    // checkpoint_segment_seq_ never goes stale; truncation then keeps
    // the whole batch (the in-memory mode drops the records before the
    // checkpoint inside the batch — the extras are replay-idempotent).
    AppendBatchLocked(std::move(encoded), records.size(), has_checkpoint);
    my_seq = write_seq_.load(std::memory_order_relaxed);
  }
  SyncSeq(my_seq);
}

void WriteAheadLog::AppendBatchLocked(std::string encoded,
                                      size_t record_count,
                                      bool starts_checkpoint) {
  DieIfClosed();
  // Checkpoint records always start a fresh segment, so truncation is
  // pure segment unlinking; size-based rotation reuses the same path.
  bool rotate = !segments_.empty() && segments_.back().records > 0 &&
                (starts_checkpoint ||
                 segments_.back().bytes + encoded.size() >
                     options_.segment_bytes);
  if (rotate) {
    MutexLock sync(&sync_mu_);
    Status st = RotateLocked();
    if (!st.ok()) {
      CONCORD_ERROR("wal", "segment rotation failed: " << st.ToString());
      std::abort();
    }
  }
  if (starts_checkpoint) checkpoint_segment_seq_ = segments_.back().seq;
  WriteFullyOrDie(fd_, encoded);
  segments_.back().records += record_count;
  segments_.back().bytes += encoded.size();
  live_records_ += record_count;
  total_appended_ += record_count;
  write_seq_.fetch_add(1, std::memory_order_release);
}

void WriteAheadLog::SyncSeq(uint64_t seq) {
  MutexLock lock(&sync_mu_);
  if (options_.coalesce_fsyncs && durable_seq_ >= seq) {
    // A leader that started its fsync after our write(2) completed has
    // already made our batch durable — the group-commit win.
    return;
  }
  // Sample before fsync: every batch written before this point is
  // covered by the fsync below.
  uint64_t target = write_seq_.load(std::memory_order_acquire);
  FsyncOrDie(fd_);
  ++flushes_;
  durable_seq_ = std::max(durable_seq_, target);
}

std::vector<WalRecord> WriteAheadLog::ReadAll() const {
  MutexLock lock(&append_mu_);
  if (dir_fd_.load() < 0) return records_;
  std::vector<WalRecord> all;
  all.reserve(live_records_.load());
  for (const Segment& segment : segments_) {
    Result<std::string> content = ReadWholeFile(segment.path);
    if (!content.ok()) {
      CONCORD_ERROR("wal", "ReadAll: " << content.status().ToString());
      break;
    }
    bool clean = false;
    size_t records = 0;
    ++segment_decode_passes_;
    ScanSegment(*content, &all, &records, &clean, nullptr);
    if (!clean) break;
  }
  return all;
}

size_t WriteAheadLog::size() const { return live_records_.load(); }

size_t WriteAheadLog::total_appended() const { return total_appended_.load(); }

size_t WriteAheadLog::flushes() const { return flushes_.load(); }

void WriteAheadLog::TruncateToLastCheckpoint() {
  MutexLock lock(&append_mu_);
  MutexLock sync_lock(&sync_mu_);
  if (dir_fd_.load() < 0) {
    for (size_t i = records_.size(); i > 0; --i) {
      if (records_[i - 1].type == WalRecord::Type::kCheckpoint) {
        records_.erase(records_.begin(),
                       records_.begin() + static_cast<ptrdiff_t>(i - 1));
        live_records_ = records_.size();
        return;
      }
    }
    return;
  }
  if (checkpoint_segment_seq_ == 0) return;
  size_t kept = 0;
  for (const Segment& segment : segments_) {
    if (segment.seq < checkpoint_segment_seq_) {
      // A surviving dropped segment would be a hole (or stale prefix)
      // that the next Open refuses or mis-replays; fail stop like every
      // other stable-storage mutation failure.
      if (::unlink(segment.path.c_str()) != 0) {
        CONCORD_ERROR("wal", "cannot unlink " << segment.path << ": "
                                              << std::strerror(errno));
        std::abort();
      }
    } else {
      kept += segment.records;
    }
  }
  segments_.erase(
      std::remove_if(segments_.begin(), segments_.end(),
                     [this](const Segment& s) {
                       return s.seq < checkpoint_segment_seq_;
                     }),
      segments_.end());
  live_records_ = kept;
  FsyncDirLocked();
}

std::vector<std::string> WriteAheadLog::SegmentPaths() const {
  MutexLock lock(&append_mu_);
  std::vector<std::string> paths;
  paths.reserve(segments_.size());
  for (const Segment& segment : segments_) paths.push_back(segment.path);
  return paths;
}

}  // namespace concord::storage
