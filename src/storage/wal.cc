#include "storage/wal.h"

namespace concord::storage {

const char* WalRecord::TypeToString(Type type) {
  switch (type) {
    case Type::kBegin:
      return "BEGIN";
    case Type::kWriteDov:
      return "WRITE_DOV";
    case Type::kWriteMeta:
      return "WRITE_META";
    case Type::kDeleteMeta:
      return "DELETE_META";
    case Type::kCommit:
      return "COMMIT";
    case Type::kAbort:
      return "ABORT";
    case Type::kCheckpoint:
      return "CHECKPOINT";
  }
  return "?";
}

void WriteAheadLog::Append(WalRecord record) {
  std::lock_guard<std::mutex> lock(append_mu_);
  records_.push_back(std::move(record));
  ++total_appended_;
  ++flushes_;
}

void WriteAheadLog::AppendBatch(std::vector<WalRecord> records) {
  if (records.empty()) return;
  std::lock_guard<std::mutex> lock(append_mu_);
  records_.insert(records_.end(),
                  std::make_move_iterator(records.begin()),
                  std::make_move_iterator(records.end()));
  total_appended_ += records.size();
  ++flushes_;
}

size_t WriteAheadLog::size() const {
  std::lock_guard<std::mutex> lock(append_mu_);
  return records_.size();
}

size_t WriteAheadLog::total_appended() const {
  std::lock_guard<std::mutex> lock(append_mu_);
  return total_appended_;
}

size_t WriteAheadLog::flushes() const {
  std::lock_guard<std::mutex> lock(append_mu_);
  return flushes_;
}

void WriteAheadLog::TruncateToLastCheckpoint() {
  std::lock_guard<std::mutex> lock(append_mu_);
  for (size_t i = records_.size(); i > 0; --i) {
    if (records_[i - 1].type == WalRecord::Type::kCheckpoint) {
      records_.erase(records_.begin(),
                     records_.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
}

}  // namespace concord::storage
