#include "storage/value.h"

namespace concord::storage {

const char* AttrTypeToString(AttrType type) {
  switch (type) {
    case AttrType::kInt:
      return "int";
    case AttrType::kDouble:
      return "double";
    case AttrType::kString:
      return "string";
    case AttrType::kBool:
      return "bool";
  }
  return "?";
}

AttrType AttrValue::type() const {
  if (is_int()) return AttrType::kInt;
  if (is_double()) return AttrType::kDouble;
  if (is_string()) return AttrType::kString;
  return AttrType::kBool;
}

Result<double> AttrValue::AsNumeric() const {
  if (is_int()) return static_cast<double>(as_int());
  if (is_double()) return as_double();
  return Status::InvalidArgument("attribute value '" + ToString() +
                                 "' is not numeric");
}

std::string AttrValue::ToString() const {
  if (is_int()) return std::to_string(as_int());
  if (is_double()) return std::to_string(as_double());
  if (is_string()) return as_string();
  return as_bool() ? "true" : "false";
}

}  // namespace concord::storage
