#include "core/concord_system.h"

#include "common/logging.h"
#include "common/strings.h"

namespace concord::core {

void RegisterVlsiDomainConstraints(workflow::ConstraintSet* constraints) {
  // "one may require that a DOP of a certain type (e.g., chip assembly)
  // must not be applied before a DOP of another type has successfully
  // completed (e.g., structure synthesis)".
  constraints->Precedes(vlsi::kToolStructureSynthesis,
                        vlsi::kToolChipAssembly);
  // Planning needs shape functions.
  constraints->Precedes(vlsi::kToolShapeFunctionGen, vlsi::kToolChipPlanning);
  // "a certain DOP must always be followed by another DOP of a specific
  // type (e.g. pad frame editor followed by chip planner)".
  constraints->ImmediatelyFollowedBy(vlsi::kToolPadFrameEdit,
                                     vlsi::kToolChipPlanning);
}

ConcordSystem::ConcordSystem(SystemConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.server_nodes < 1) config_.server_nodes = 1;
  if (config_.partitions_per_node < 1) config_.partitions_per_node = 1;
  network_ = std::make_unique<rpc::Network>(&clock_, config.seed ^ 0x9e37);
  network_->set_lan_latency(config.lan_latency);
  network_->set_local_latency(config.local_latency);
  network_->set_loss_probability(config.message_loss_probability);
  rpc_ = std::make_unique<rpc::TransactionalRpc>(network_.get());

  // The server plane: node 0 is the coordinator (CM, placement
  // authority, meta store); every node carries a repository shard —
  // DOV ids are namespaced by shard index — and a server-TM fronting
  // it, registered as its own ServerService RPC endpoint.
  const bool sharded = config_.server_nodes > 1;
  for (int shard = 0; shard < config_.server_nodes; ++shard) {
    ServerNode node;
    node.node = network_->AddNode(shard == 0 ? std::string("server")
                                             : IndexedName("server", shard));
    node.repository = std::make_unique<storage::Repository>(&clock_);
    node.repository->set_dov_id_shard(static_cast<uint32_t>(shard));
    servers_.push_back(std::move(node));
    placement_.RegisterNode(servers_.back().node);
  }
  server_node_ = servers_.front().node;
  invalidation_bus_ =
      std::make_unique<rpc::InvalidationBus>(network_.get(), server_node_);

  // Every shard registers the identical VLSI schema (same call order,
  // same DOT ids), so checkin validation agrees plane-wide.
  for (ServerNode& server : servers_) {
    dots_ = vlsi::RegisterVlsiSchema(&server.repository->schema());
  }
  toolbox_ = std::make_unique<vlsi::ToolBox>(dots_);
  RegisterVlsiDomainConstraints(&constraints_);

  // The server-TMs ask *this* for scope decisions; we forward to the
  // CM (which is constructed right after and owns the policy).
  std::vector<storage::Repository*> repos;
  std::vector<txn::ServerLockTable*> lock_shards;
  for (ServerNode& server : servers_) {
    server.tm = std::make_unique<txn::ServerTm>(
        server.repository.get(), network_.get(), server.node, this,
        invalidation_bus_.get(), config_.partitions_per_node,
        config_.pin_executor_cores);
    if (sharded) server.tm->JoinPlane(&placement_);
    // Server-side half of the ServerService protocol: every client-TM
    // envelope lands here as a real, countable RPC.
    txn::RegisterServerService(server.tm.get(), rpc_.get());
    repos.push_back(server.repository.get());
    lock_shards.push_back(&server.tm->locks());
  }
  // Workstation placement caches fetch from the coordinator, and new
  // DAs are never homed on a node currently crashed.
  placement_.SetLivenessProbe(
      [this](NodeId node) { return network_->IsUp(node); });
  txn::RegisterPlacementService(&placement_, rpc_.get(), server_node_);

  cm_ = std::make_unique<cooperation::CooperationManager>(
      storage::RepositoryRouter(std::move(repos)),
      txn::LockRouter(std::move(lock_shards)),
      sharded ? &placement_ : nullptr, &clock_);
  cm_->SetEventSink([this](DaId da, const workflow::Event& event) {
    DeliverEvent(da, event);
  });
  // CM withdrawal/invalidation -> push to every workstation DOV cache,
  // published from the node that owns the withdrawn DOV.
  cm_->SetWithdrawalSink(
      [this](DaId da, DovId dov, bool invalidated, DovId replacement) {
        rpc::InvalidationMessage message;
        message.kind = invalidated
                           ? rpc::InvalidationMessage::Kind::kInvalidated
                           : rpc::InvalidationMessage::Kind::kWithdrawn;
        message.dov = dov;
        message.origin_da = da;
        message.replacement = replacement;
        message.origin_node =
            servers_[DovShardClamped(dov, servers_.size())].node;
        invalidation_bus_->Publish(message);
      });
}

ConcordSystem::~ConcordSystem() = default;

NodeId ConcordSystem::AddWorkstation(const std::string& name) {
  NodeId node = network_->AddNode(name);
  Workstation ws;
  // One stub per server node: every server trip is a countable RPC on
  // the link the request actually takes.
  std::vector<std::pair<NodeId, txn::ServerService*>> routes;
  for (ServerNode& server : servers_) {
    ws.stubs.push_back(std::make_unique<txn::RemoteServerStub>(
        rpc_.get(), node, server.node));
    routes.emplace_back(server.node, ws.stubs.back().get());
  }
  ws.placement = std::make_unique<txn::PlacementClient>(rpc_.get(), node,
                                                        server_node_);
  ws.tm = std::make_unique<txn::ClientTm>(
      txn::ShardRouter(std::move(routes), ws.placement.get()), network_.get(),
      node, &clock_, invalidation_bus_.get());
  ws.tm->set_auto_recovery_interval(config_.recovery_point_interval);
  workstations_.emplace(node.value(), std::move(ws));
  return node;
}

txn::ClientTm& ConcordSystem::client_tm(NodeId workstation) {
  return *workstations_.at(workstation.value()).tm;
}

workflow::DesignManager& ConcordSystem::dm(DaId da) {
  return *das_.at(da.value()).dm;
}

Result<ConcordSystem::DaRuntime*> ConcordSystem::RuntimeOf(DaId da) {
  auto it = das_.find(da.value());
  if (it == das_.end()) {
    return Status::NotFound("no runtime for " + da.ToString());
  }
  return &it->second;
}

bool ConcordSystem::InScope(DaId da, DovId dov) {
  return cm_->InScope(da, dov);
}

void ConcordSystem::BindDm(DaId da, DaRuntime* runtime) {
  runtime->dm->SetToolRunner([this, da](const std::string& dop_type) {
    return RunTool(da, dop_type);
  });
  runtime->dm->SetDaOpRunner(
      [this, da](const std::string& op_name) { return RunDaOp(da, op_name); });
  // Per-node script progress feeds the CM, so supervising DAs (and the
  // sim's metrics) can watch a sub-DA's script advance.
  runtime->dm->SetProgressSink([this, da](const workflow::TaskNode& node,
                                          bool started, bool failed) {
    cm_->NoteScriptProgress(da, node.name,
                            workflow::TaskRankToString(node.rank), started,
                            failed);
  });
  if (executor_pool_ != nullptr) runtime->dm->SetExecutorPool(executor_pool_);
}

void ConcordSystem::SetExecutorPool(workflow::ExecutorPool* pool) {
  executor_pool_ = pool;
  for (auto& [da_value, runtime] : das_) {
    runtime.dm->SetExecutorPool(pool);
  }
}

Result<DaId> ConcordSystem::InitDesign(cooperation::DaDescription description) {
  if (!workstations_.count(description.workstation.value())) {
    return Status::InvalidArgument("unknown workstation " +
                                   description.workstation.ToString());
  }
  workflow::Script script = description.dc;
  NodeId workstation = description.workstation;
  CONCORD_ASSIGN_OR_RETURN(DaId da, cm_->InitDesign(std::move(description)));

  DaRuntime runtime;
  runtime.workstation = workstation;
  runtime.dm = std::make_unique<workflow::DesignManager>(
      da, std::move(script), &constraints_, &clock_);
  auto [it, inserted] = das_.emplace(da.value(), std::move(runtime));
  BindDm(da, &it->second);
  return da;
}

Result<DaId> ConcordSystem::CreateSubDa(DaId super,
                                        cooperation::DaDescription description) {
  if (!workstations_.count(description.workstation.value())) {
    return Status::InvalidArgument("unknown workstation " +
                                   description.workstation.ToString());
  }
  workflow::Script script = description.dc;
  NodeId workstation = description.workstation;
  CONCORD_ASSIGN_OR_RETURN(DaId da,
                           cm_->CreateSubDa(super, std::move(description)));

  DaRuntime runtime;
  runtime.workstation = workstation;
  runtime.dm = std::make_unique<workflow::DesignManager>(
      da, std::move(script), &constraints_, &clock_);
  auto [it, inserted] = das_.emplace(da.value(), std::move(runtime));
  BindDm(da, &it->second);
  return da;
}

Status ConcordSystem::RunDaOp(DaId da, const std::string& op_name) {
  if (op_name == "Evaluate") {
    CONCORD_ASSIGN_OR_RETURN(DovId current, CurrentVersion(da));
    return cm_->Evaluate(da, current).status();
  }
  if (op_name == "Propagate") {
    CONCORD_ASSIGN_OR_RETURN(DovId current, CurrentVersion(da));
    // Propagation presumes an evaluated quality state (Sect. 4.1).
    CONCORD_RETURN_NOT_OK(cm_->Evaluate(da, current).status());
    return cm_->Propagate(da, current);
  }
  if (op_name == "Sub_DA_Ready_To_Commit") {
    // Evaluate first so a qualifying current version is marked final.
    auto current = CurrentVersion(da);
    if (current.ok()) cm_->Evaluate(da, *current).status().ok();
    return cm_->SubDaReadyToCommit(da);
  }
  if (op_name == "Sub_DA_Impossible_Specification") {
    return cm_->SubDaImpossibleSpecification(da, "reported by script");
  }
  return Status::NotFound("unknown DA operation '" + op_name +
                          "' in script of " + da.ToString());
}

Status ConcordSystem::StartDa(DaId da) {
  CONCORD_ASSIGN_OR_RETURN(DaRuntime * runtime, RuntimeOf(da));
  CONCORD_RETURN_NOT_OK(cm_->Start(da));
  return runtime->dm->Start();
}

Status ConcordSystem::RunDa(DaId da) {
  CONCORD_ASSIGN_OR_RETURN(DaRuntime * runtime, RuntimeOf(da));
  return runtime->dm->RunToCompletion();
}

Status ConcordSystem::SetSeedObject(DaId da, storage::DesignObject object) {
  CONCORD_ASSIGN_OR_RETURN(DaRuntime * runtime, RuntimeOf(da));
  runtime->seed = std::move(object);
  return Status::OK();
}

Result<DovId> ConcordSystem::CurrentVersion(DaId da) const {
  auto it = das_.find(da.value());
  if (it == das_.end()) {
    return Status::NotFound("no runtime for " + da.ToString());
  }
  if (!it->second.current.valid()) {
    return Status::NotFound(da.ToString() + " has not checked in any DOV yet");
  }
  return it->second.current;
}

Status ConcordSystem::SetDecisionMaker(DaId da,
                                       workflow::DecisionMaker* maker) {
  CONCORD_ASSIGN_OR_RETURN(DaRuntime * runtime, RuntimeOf(da));
  runtime->dm->SetDecisionMaker(maker);
  return Status::OK();
}

Result<workflow::DopOutcome> ConcordSystem::RunTool(
    DaId da, const std::string& dop_type) {
  CONCORD_ASSIGN_OR_RETURN(ToolRun run, BeginToolRun(da, dop_type));
  return FinishToolRun(std::move(run));
}

Result<ConcordSystem::ToolRun> ConcordSystem::BeginToolRun(
    DaId da, const std::string& dop_type) {
  MutexLock lock(&tool_mu_);
  CONCORD_ASSIGN_OR_RETURN(DaRuntime * runtime, RuntimeOf(da));
  txn::ClientTm& tm = client_tm(runtime->workstation);

  // Begin-of-DOP.
  CONCORD_ASSIGN_OR_RETURN(DopId dop, tm.BeginDop(da));
  ToolRun run;
  run.da = da;
  run.dop_type = dop_type;
  run.dop = dop;

  // Input selection: the DA's current version, its initial DOV, or the
  // seed object for a from-scratch DA.
  DovId input_dov;
  if (runtime->current.valid()) {
    input_dov = runtime->current;
  } else {
    auto activity = cm_->GetDa(da);
    if (activity.ok() && (*activity)->initial_dov) {
      input_dov = *(*activity)->initial_dov;
    }
  }
  if (input_dov.valid()) {
    Status st = tm.Checkout(dop, input_dov);
    if (!st.ok()) {
      tm.AbortDop(dop).ok();
      return st;
    }
    CONCORD_ASSIGN_OR_RETURN(run.input, tm.Input(dop, input_dov));
    run.inputs.push_back(input_dov);
  } else if (runtime->seed.has_value()) {
    run.input = *runtime->seed;
  } else {
    tm.AbortDop(dop).ok();
    return Status::FailedPrecondition(
        da.ToString() + " has no current version, initial DOV or seed object");
  }
  return run;
}

Result<workflow::DopOutcome> ConcordSystem::FinishToolRun(ToolRun run) {
  MutexLock lock(&tool_mu_);
  CONCORD_ASSIGN_OR_RETURN(DaRuntime * runtime, RuntimeOf(run.da));
  txn::ClientTm& tm = client_tm(runtime->workstation);
  const DopId dop = run.dop;
  const std::vector<DovId>& inputs = run.inputs;

  // Tool processing. The shared RNG keeps the single-threaded draw
  // order bit-identical to the pre-async engine; concurrent callers
  // serialize here at DOP granularity (the sim clock is what the
  // makespan experiments measure, and it is advanced atomically).
  auto tool_result = toolbox_->Run(run.dop_type, run.input, &rng_);
  if (!tool_result.ok()) {
    tm.AbortDop(dop).ok();
    workflow::DopOutcome outcome;
    outcome.committed = false;
    outcome.inputs = inputs;
    CONCORD_INFO("core", run.dop_type << " in " << run.da.ToString()
                                      << " aborted: "
                                      << tool_result.status().ToString());
    return outcome;
  }
  tm.DoWork(dop, tool_result->work_units).ok();
  clock_.Advance(static_cast<SimTime>(tool_result->work_units) *
                 config_.time_per_work_unit);

  // Checkin + End-of-DOP, batched into one server round trip (the
  // server skips the commit when the checkin fails, so the sequential
  // semantics are preserved).
  auto checked_in = tm.CheckinCommit(dop, tool_result->object, inputs);
  if (!checked_in.ok()) {
    // "checkin failure": report to the DM as an aborted DOP.
    tm.AbortDop(dop).ok();
    workflow::DopOutcome outcome;
    outcome.committed = false;
    outcome.inputs = inputs;
    return outcome;
  }
  cm_->NoteCheckin(run.da, *checked_in);
  runtime->current = *checked_in;

  workflow::DopOutcome outcome;
  outcome.committed = true;
  outcome.output = *checked_in;
  outcome.inputs = inputs;
  return outcome;
}

void ConcordSystem::DeliverEvent(DaId da, const workflow::Event& event) {
  auto it = das_.find(da.value());
  if (it == das_.end()) return;  // DA without a local runtime (tests)
  DaRuntime& runtime = it->second;
  // One hop server -> workstation; if the workstation is down, queue
  // (reliable delivery, Sect. 5.4).
  if (!network_->IsUp(runtime.workstation)) {
    runtime.pending_events.push_back(event);
    return;
  }
  network_->Send(server_node_, runtime.workstation).ok();
  if (event.type == "Modify_Sub_DA_Specification" || event.type == "Restart") {
    // The DA restarts from the beginning; the default designer policy
    // starts over from the seed/initial DOV rather than the last
    // derived state (previous DOVs stay available in the graph).
    runtime.current = DovId();
  }
  runtime.dm->HandleEvent(event).ok();
}

void ConcordSystem::CrashWorkstation(NodeId workstation) {
  auto it = workstations_.find(workstation.value());
  if (it == workstations_.end()) return;
  it->second.tm->Crash();
  for (auto& [da_value, runtime] : das_) {
    if (runtime.workstation == workstation &&
        runtime.dm->state() != workflow::DmState::kCompleted) {
      runtime.dm->Crash();
    }
  }
}

Status ConcordSystem::RecoverWorkstation(NodeId workstation) {
  auto it = workstations_.find(workstation.value());
  if (it == workstations_.end()) {
    return Status::NotFound("unknown workstation " + workstation.ToString());
  }
  CONCORD_RETURN_NOT_OK(it->second.tm->Recover().status());
  for (auto& [da_value, runtime] : das_) {
    if (runtime.workstation != workstation) continue;
    if (runtime.dm->state() == workflow::DmState::kCrashed) {
      CONCORD_RETURN_NOT_OK(runtime.dm->Recover());
      // Restore the DA's current-version pointer from the replayed log.
      if (!runtime.dm->ProducedDovs().empty()) {
        runtime.current = runtime.dm->ProducedDovs().back();
      }
    }
    // Deliver events queued while the workstation was down.
    while (!runtime.pending_events.empty()) {
      workflow::Event event = runtime.pending_events.front();
      runtime.pending_events.pop_front();
      network_->Send(server_node_, workstation).ok();
      runtime.dm->HandleEvent(event).ok();
    }
  }
  return Status::OK();
}

void ConcordSystem::CrashServer() {
  for (size_t shard = 0; shard < servers_.size(); ++shard) {
    CrashServerNode(shard);
  }
}

Status ConcordSystem::RecoverServer() {
  for (ServerNode& server : servers_) {
    CONCORD_RETURN_NOT_OK(server.tm->Recover());
  }
  // One full rebuild of the CM (and, through it, every shard's
  // scope-lock tables) from the coordinator's meta store.
  return cm_->Recover();
}

void ConcordSystem::CrashServerNode(size_t shard) {
  ServerNode& server = servers_[shard];
  server.tm->Crash();
  // The RPC at-most-once dedup table is volatile server memory: a
  // retried pre-crash envelope re-executes after recovery (and gets
  // the typed kUnknownDop answer for its wiped registration).
  rpc_->ClearNodeState(server.node);
  // The coordinator hosts the CM: its crash takes the cooperation
  // state down with it. Other shards leave the CM running — their DAs
  // elsewhere keep cooperating.
  if (shard == 0) cm_->Crash();
}

Status ConcordSystem::RecoverServerNode(size_t shard) {
  CONCORD_RETURN_NOT_OK(servers_[shard].tm->Recover());
  if (shard == 0) return cm_->Recover();
  // The CM never went down; only this node's lock tables restarted
  // empty. Re-derive them from the persisted cooperation state (the
  // writes route per DOV, so surviving shards just see idempotent
  // re-applies).
  return cm_->ReestablishLocks();
}

}  // namespace concord::core
