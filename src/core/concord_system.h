#ifndef CONCORD_CORE_CONCORD_SYSTEM_H_
#define CONCORD_CORE_CONCORD_SYSTEM_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "cooperation/cooperation_manager.h"
#include "rpc/invalidation.h"
#include "rpc/network.h"
#include "rpc/transactional_rpc.h"
#include "storage/repository.h"
#include "storage/repository_router.h"
#include "txn/client_tm.h"
#include "txn/lock_router.h"
#include "txn/placement.h"
#include "txn/remote_server_stub.h"
#include "txn/server_tm.h"
#include "txn/shard_router.h"
#include "vlsi/tools.h"
#include "workflow/constraints.h"
#include "workflow/design_manager.h"

namespace concord::core {

/// Configuration of a ConcordSystem instance.
struct SystemConfig {
  uint64_t seed = 42;
  /// Simulated time per unit of tool work.
  SimTime time_per_work_unit = 5 * kMillisecond;
  /// Client-TM automatic recovery-point interval in work units
  /// (0 = only checkout-triggered points).
  uint64_t recovery_point_interval = 200;
  SimTime lan_latency = 2 * kMillisecond;
  SimTime local_latency = 20 * kMicrosecond;
  double message_loss_probability = 0.0;
  /// Server-plane width: number of server-TM nodes the DAs/DOVs shard
  /// across. 1 (the default) is the classic single-server system; with
  /// N >= 2 the CM places each DA on the least-loaded node, DOV ids
  /// carry their shard, and cross-shard interactions run true
  /// multi-participant 2PC.
  int server_nodes = 1;
  /// Executor partitions per server node (txn/partition.h): each node's
  /// TM state — repository sub-shards, lock-table slices, the 2PC
  /// ledger — is sliced across this many single-threaded executors.
  /// 1 (the default) spawns no executor threads and reproduces the
  /// classic single-executor behaviour bit-identically.
  int partitions_per_node = 1;
  /// Pin each partition executor thread to a CPU core (Linux pthread
  /// affinity; silent no-op on platforms without it). Off by default —
  /// pinning helps dedicated server boxes and hurts shared ones.
  bool pin_executor_cores = false;
};

/// The assembled CONCORD system (Fig. 8): a server *plane* of one or
/// more nodes — each carrying a repository shard and a server-TM, with
/// the CM and the placement authority on the coordinator (node 0) —
/// one client-TM per workstation, one DM per DA. This facade is the
/// public API the examples and benchmarks program against; it owns all
/// managers and routes cooperation events from the CM to the DMs over
/// the simulated LAN.
class ConcordSystem : public txn::ScopeAuthority {
 public:
  explicit ConcordSystem(SystemConfig config = SystemConfig{});
  ~ConcordSystem();
  ConcordSystem(const ConcordSystem&) = delete;
  ConcordSystem& operator=(const ConcordSystem&) = delete;

  // --- Topology -------------------------------------------------------

  /// Coordinator node (shard 0; hosts the CM and placement authority).
  NodeId server_node() const { return server_node_; }
  size_t server_node_count() const { return servers_.size(); }
  /// Node id of server shard `shard`.
  NodeId server_node_at(size_t shard) const { return servers_[shard].node; }
  /// Registers a designer workstation (client-TM included).
  NodeId AddWorkstation(const std::string& name);

  // --- DA lifecycle -----------------------------------------------------

  /// Init_Design + design-manager creation on the DA's workstation.
  Result<DaId> InitDesign(cooperation::DaDescription description);
  /// Create_Sub_DA + design-manager creation.
  Result<DaId> CreateSubDa(DaId super, cooperation::DaDescription description);
  /// Starts the DA at the CM and its DM.
  Status StartDa(DaId da);
  /// Drives the DA's work flow to completion (or pause). With an
  /// executor pool bound (SetExecutorPool), ready DOPs of
  /// branch-parallel scripts overlap across the pool's threads.
  Status RunDa(DaId da);

  /// An open asynchronous tool run: Begin-of-DOP registered and the
  /// input version checked out, tool processing not yet performed.
  /// FinishToolRun completes (or aborts) it. Splitting the two halves
  /// lets one workstation hold hundreds of DOPs open concurrently.
  struct ToolRun {
    DaId da;
    std::string dop_type;
    DopId dop;
    storage::DesignObject input;
    std::vector<DovId> inputs;
  };
  /// First half of a DOP: Begin-of-DOP + input selection/checkout.
  Result<ToolRun> BeginToolRun(DaId da, const std::string& dop_type);
  /// Second half: tool processing + checkin/commit (or abort).
  Result<workflow::DopOutcome> FinishToolRun(ToolRun run);

  /// Binds a shared executor pool to every DM (existing and future).
  /// The pool must outlive this system. Passing nullptr detaches.
  void SetExecutorPool(workflow::ExecutorPool* pool);

  /// Installs the object a DA starts from when it has no initial DOV
  /// (e.g. the behavioral description for the top-level DA).
  Status SetSeedObject(DaId da, storage::DesignObject object);

  /// The DA's current working version (last checkin), if any.
  Result<DovId> CurrentVersion(DaId da) const;

  // --- Components -------------------------------------------------------

  SimClock& clock() { return clock_; }
  Rng& rng() { return rng_; }
  rpc::Network& network() { return *network_; }
  /// The transactional-RPC channel every client<->server TM envelope
  /// rides; its stats count the server round trips (and their retries
  /// under loss) of all checkout/checkin/begin/commit/abort traffic.
  rpc::TransactionalRpc& rpc() { return *rpc_; }
  rpc::InvalidationBus& invalidation_bus() { return *invalidation_bus_; }
  /// Coordinator-shard components (the whole system when
  /// server_nodes == 1).
  storage::Repository& repository() { return *servers_[0].repository; }
  txn::ServerTm& server_tm() { return *servers_[0].tm; }
  /// Per-shard components of the server plane.
  storage::Repository& repository_at(size_t shard) {
    return *servers_[shard].repository;
  }
  txn::ServerTm& server_tm_at(size_t shard) { return *servers_[shard].tm; }
  txn::PlacementMap& placement() { return placement_; }
  cooperation::CooperationManager& cm() { return *cm_; }
  txn::ClientTm& client_tm(NodeId workstation);
  workflow::DesignManager& dm(DaId da);
  bool HasDm(DaId da) const { return das_.count(da.value()) > 0; }
  const vlsi::ToolBox& toolbox() const { return *toolbox_; }
  const vlsi::VlsiDots& dots() const { return dots_; }
  workflow::ConstraintSet& constraints() { return constraints_; }

  /// Binds a decision maker to a DA's DM (defaults to first-path).
  Status SetDecisionMaker(DaId da, workflow::DecisionMaker* maker);

  // --- Failure injection -------------------------------------------------

  /// Crashes one workstation: its client-TM loses volatile DOP state,
  /// every DM hosted there loses its execution machine. Events sent to
  /// DAs on a crashed workstation queue up and are delivered at
  /// recovery (reliable messaging, Sect. 5.4).
  void CrashWorkstation(NodeId workstation);
  Status RecoverWorkstation(NodeId workstation);

  /// Crashes the whole server plane: repositories, server-TM lock
  /// tables and CM state are volatile; WAL + meta store survive and
  /// recovery rebuilds all of it.
  void CrashServer();
  Status RecoverServer();

  /// Crashes ONE server node of the plane; the other shards keep
  /// serving their DAs (crashing shard 0 also takes down the CM and
  /// the placement authority hosted there). Recovery replays the
  /// node's repository and — for a non-coordinator node — re-derives
  /// its lock tables from the CM's persisted state.
  void CrashServerNode(size_t shard);
  Status RecoverServerNode(size_t shard);

  // --- ScopeAuthority (forwards to the CM) ---------------------------

  bool InScope(DaId da, DovId dov) override;

 private:
  struct DaRuntime {
    std::unique_ptr<workflow::DesignManager> dm;
    NodeId workstation;
    /// Latest version checked in by this DA's DOPs.
    DovId current;
    /// Seed object when the DA starts from scratch.
    std::optional<storage::DesignObject> seed;
    /// Events awaiting delivery (workstation down).
    std::deque<workflow::Event> pending_events;
  };

  /// The default tool runner bound to each DA's DM: wraps one ToolBox
  /// invocation in a full DOP (Begin, checkout, work, checkin, commit).
  Result<workflow::DopOutcome> RunTool(DaId da, const std::string& dop_type);
  /// The default DA-operation runner for kDaOp script nodes: binds the
  /// operation names of Sect. 4.2 ("Evaluate", "Propagate",
  /// "Sub_DA_Ready_To_Commit", ...) to the cooperation manager,
  /// applied to the DA's current version.
  Status RunDaOp(DaId da, const std::string& op_name);
  void BindDm(DaId da, DaRuntime* runtime);
  void DeliverEvent(DaId da, const workflow::Event& event);
  Result<DaRuntime*> RuntimeOf(DaId da);

  /// One node of the server plane: its own repository shard (DOV ids
  /// namespaced by shard index) fronted by its own server-TM.
  struct ServerNode {
    NodeId node;
    std::unique_ptr<storage::Repository> repository;
    std::unique_ptr<txn::ServerTm> tm;
  };

  /// One registered workstation: per-server-node stubs, the placement
  /// cache, and the client-TM routing across them.
  struct Workstation {
    std::vector<std::unique_ptr<txn::RemoteServerStub>> stubs;
    std::unique_ptr<txn::PlacementClient> placement;
    std::unique_ptr<txn::ClientTm> tm;
  };

  SystemConfig config_;
  SimClock clock_;
  Rng rng_;
  std::unique_ptr<rpc::Network> network_;
  NodeId server_node_;
  /// Reliable channel for the ServerService envelopes (at-most-once
  /// dedup lives callee-side; CrashServer wipes it like any other
  /// volatile server memory).
  std::unique_ptr<rpc::TransactionalRpc> rpc_;
  /// Server->workstation push channel for DOV-cache invalidations.
  /// Must outlive the client-TMs (they unsubscribe in their dtors), so
  /// it is declared before workstations_.
  std::unique_ptr<rpc::InvalidationBus> invalidation_bus_;
  /// The server plane, shard-index order; servers_[0] is the
  /// coordinator (hosts the CM, placement authority and meta store).
  std::vector<ServerNode> servers_;
  /// DA -> server-node placement, driven by the CM.
  txn::PlacementMap placement_;
  std::unique_ptr<cooperation::CooperationManager> cm_;
  std::unique_ptr<vlsi::ToolBox> toolbox_;
  vlsi::VlsiDots dots_;
  workflow::ConstraintSet constraints_;
  /// Optional shared executor pool for DM script scheduling.
  workflow::ExecutorPool* executor_pool_ = nullptr;
  /// Serializes the tool-run path (runtime `current`/`seed` fields and
  /// the shared tool RNG) against concurrent executor threads. Never
  /// held while calling into the CM's event sinks.
  mutable Mutex tool_mu_;

  /// Per-workstation runtime; every client-TM talks to the plane only
  /// through its own stubs (declared inside so they outlive the TM).
  std::map<uint64_t, Workstation> workstations_;
  std::map<uint64_t, DaRuntime> das_;
};

/// Registers the paper's VLSI domain constraints (Sect. 4.2 examples):
/// chip assembly only after structure synthesis; pad-frame edit
/// immediately followed by chip planning; chip planning only after
/// shape-function generation.
void RegisterVlsiDomainConstraints(workflow::ConstraintSet* constraints);

}  // namespace concord::core

#endif  // CONCORD_CORE_CONCORD_SYSTEM_H_
