#ifndef CONCORD_SIM_DESIGNER_H_
#define CONCORD_SIM_DESIGNER_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "workflow/design_manager.h"

namespace concord::sim {

/// A scripted designer agent: substitutes for the human decisions a DA
/// needs ("the designer has to decide how to proceed choosing among
/// three alternative methods", Sect. 4.2). Behaviour is driven by a
/// seeded Rng so every run is reproducible.
class ScriptedDesigner : public workflow::DecisionMaker {
 public:
  ScriptedDesigner(Rng* rng, double iteration_continue_probability = 0.3,
                   std::vector<std::string> open_plan = {})
      : rng_(rng),
        iterate_prob_(iteration_continue_probability),
        open_plan_(std::move(open_plan)) {}

  size_t ChooseAlternative(const workflow::ScriptNode& node) override {
    return rng_->Index(node.children().size());
  }

  bool ContinueIteration(const workflow::ScriptNode&, int passes_done) override {
    // Diminishing enthusiasm for re-iterations.
    return rng_->Chance(iterate_prob_ / (1 + passes_done));
  }

  std::vector<std::string> PlanOpenSegment(
      const workflow::ScriptNode&) override {
    return open_plan_;
  }

  int decisions_made() const { return decisions_; }

 private:
  Rng* rng_;
  double iterate_prob_;
  std::vector<std::string> open_plan_;
  int decisions_ = 0;
};

}  // namespace concord::sim

#endif  // CONCORD_SIM_DESIGNER_H_
