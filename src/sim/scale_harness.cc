// Million-DOV chaos harness (ROADMAP direction 5): generate a large
// design plane, drive sustained mixed traffic from many designer
// threads, and run a seeded chaos schedule — message loss, rolling
// server-node crash/recover, workstation crashes, MigrateDa churn —
// while the InvariantChecker cross-examines every client-acked effect
// against authoritative server state. See docs/SCALE.md.

#include "sim/scale_harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/logging.h"
#include "storage/object.h"
#include "storage/schema.h"
#include "storage/version.h"
#include "txn/remote_server_stub.h"

namespace concord::sim {

namespace {

/// Aborts the process with a message: the generator must succeed for
/// the harness to gate anything, so a setup failure is fatal rather
/// than a silently empty plane.
void GenerateCheck(bool ok, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "scale_harness: plane generation failed: %s\n", what);
  std::abort();
}

constexpr size_t kViolationDetailCap = 200;
constexpr size_t kCheckpointAtomicitySample = 4096;
constexpr size_t kGeneratorTxnBatch = 256;
constexpr size_t kMaxOpenChains = 64;

}  // namespace

const char* ViolationClassName(ViolationClass c) {
  switch (c) {
    case ViolationClass::kLostCommit:
      return "lost_commit";
    case ViolationClass::kResurrectedVersion:
      return "resurrected_version";
    case ViolationClass::kAtomicityViolation:
      return "atomicity_violation";
    case ViolationClass::kCacheCoherence:
      return "cache_coherence";
    case ViolationClass::kDuplicateId:
      return "duplicate_id";
    case ViolationClass::kWalUnbounded:
      return "wal_unbounded";
  }
  return "unknown";
}

// --- InvariantChecker --------------------------------------------------------

void InvariantChecker::AddViolation(ViolationClass c, std::string detail) {
  ++counts_[static_cast<size_t>(c)];
  if (violations_.size() < kViolationDetailCap) {
    violations_.push_back({c, std::move(detail)});
  }
}

bool InvariantChecker::AddViolationOnce(ViolationClass c, uint64_t key,
                                        std::string detail) {
  // VerifyAgainst rescans every record each time it runs (checkpoints
  // and end-of-run); one broken id must count as one violation, not
  // once per scan.
  if (!reported_.insert({static_cast<size_t>(c), key}).second) return false;
  AddViolation(c, std::move(detail));
  return true;
}

void InvariantChecker::RecordAckedCommit(AckedCommit acked) {
  MutexLock lock(&mu_);
  if (!acked_ids_.insert(acked.dov.value()).second) {
    AddViolation(ViolationClass::kDuplicateId,
                 "DOV id " + std::to_string(acked.dov.value()) +
                     " acked twice (id reissued across a recovery?)");
  }
  acked_.push_back(std::move(acked));
  seq_.fetch_add(1, std::memory_order_acq_rel);
}

void InvariantChecker::RecordRetired(DovId dov, bool invalidated, bool armed) {
  MutexLock lock(&mu_);
  Retired entry;
  entry.invalidated = invalidated;
  entry.armed = armed;
  entry.seq = seq_.fetch_add(1, std::memory_order_acq_rel);
  auto [it, inserted] = retired_.emplace(dov.value(), entry);
  if (!inserted) {
    // A withdrawn version later invalidated keeps the stronger flag.
    it->second.invalidated = it->second.invalidated || invalidated;
    it->second.armed = it->second.armed && armed;
  } else {
    retired_order_.push_back(dov.value());
  }
}

void InvariantChecker::NoteCheckoutObservation(size_t ws, DovId dov,
                                               bool from_cache,
                                               uint64_t seq_at_op_start) {
  MutexLock lock(&mu_);
  if (!from_cache) {
    // A server round trip is an authoritative scope decision for this
    // workstation: it re-arms the cache, and later hits inherit its
    // legitimacy (e.g. the owning DA re-reading its own withdrawn
    // version — withdrawal only revokes the requiring DA's view).
    server_validated_[{ws, dov.value()}] =
        seq_.fetch_add(1, std::memory_order_acq_rel);
    return;
  }
  auto it = retired_.find(dov.value());
  if (it == retired_.end() || !it->second.armed) return;
  // The retirement must strictly precede the op (in-flight checkouts
  // racing the withdrawal are legal), ...
  if (it->second.seq >= seq_at_op_start) return;
  // ... the workstation's cache memory must be intact since then, ...
  auto crash = ws_crash_seq_.find(ws);
  if (crash != ws_crash_seq_.end() && crash->second > it->second.seq) return;
  // ... and no post-retirement server checkout may have re-validated
  // the DOV for this workstation (single driving thread per
  // workstation: the re-validation is recorded before any hit it
  // enables can be observed).
  auto valid = server_validated_.find({ws, dov.value()});
  if (valid != server_validated_.end() && valid->second > it->second.seq) {
    return;
  }
  AddViolation(ViolationClass::kCacheCoherence,
               "ws " + std::to_string(ws) + " served retired DOV " +
                   std::to_string(dov.value()) +
                   " from its cache after the invalidation push");
}

void InvariantChecker::NoteWorkstationCrash(size_t ws) {
  MutexLock lock(&mu_);
  ws_crash_seq_[ws] = seq_.fetch_add(1, std::memory_order_acq_rel);
}

void InvariantChecker::NoteWalSize(size_t shard,
                                   size_t records_after_checkpoint,
                                   size_t bound) {
  MutexLock lock(&mu_);
  if (records_after_checkpoint <= bound) return;
  AddViolation(ViolationClass::kWalUnbounded,
               "shard " + std::to_string(shard) + " kept " +
                   std::to_string(records_after_checkpoint) +
                   " WAL records after a checkpoint (bound " +
                   std::to_string(bound) + ")");
}

DovId InvariantChecker::SampleRetired(uint64_t entropy) const {
  MutexLock lock(&mu_);
  if (retired_order_.empty()) return DovId();
  return DovId(retired_order_[entropy % retired_order_.size()]);
}

void InvariantChecker::VerifyAgainst(ScalePlane* plane, bool only_up_nodes) {
  MutexLock lock(&mu_);
  const size_t nodes = plane->node_count();

  // I1: no acked committed DOV lost or corrupted.
  for (const AckedCommit& acked : acked_) {
    size_t home = DovShardClamped(acked.dov, nodes);
    ScalePlane::Shard& shard = plane->shard(home);
    if (only_up_nodes && !shard.up.load(std::memory_order_acquire)) continue;
    auto record = shard.repo->Get(acked.dov);
    if (!record.ok()) {
      std::string parts;
      for (size_t p : acked.participants) {
        parts += (parts.empty() ? "" : ",") + std::to_string(p);
      }
      AddViolationOnce(ViolationClass::kLostCommit, acked.dov.value(),
                       "acked DOV " + std::to_string(acked.dov.value()) +
                           " missing from shard " + std::to_string(home) +
                           " (ws " + std::to_string(acked.ws) + ", da " +
                           std::to_string(acked.da.value()) + ", dop " +
                           std::to_string(acked.dop.value()) +
                           ", participants [" + parts + "]): " +
                           record.status().ToString());
      continue;
    }
    auto value = record->data.GetAttr("value");
    if (!value.ok() || !value->is_int() || value->as_int() != acked.value) {
      AddViolationOnce(ViolationClass::kLostCommit, acked.dov.value(),
                       "acked DOV " + std::to_string(acked.dov.value()) +
                           " payload mismatch (expected value " +
                           std::to_string(acked.value) + ")");
    }
  }

  // I2: no withdrawn/invalidated version resurrected.
  for (const auto& [dov_value, retired] : retired_) {
    DovId dov(dov_value);
    size_t home = DovShardClamped(dov, nodes);
    ScalePlane::Shard& shard = plane->shard(home);
    if (only_up_nodes && !shard.up.load(std::memory_order_acquire)) continue;
    auto record = shard.repo->Get(dov);
    if (!record.ok()) continue;  // absence is covered by I1 when acked
    if (retired.invalidated && !record->invalidated) {
      AddViolationOnce(ViolationClass::kResurrectedVersion, dov_value,
                       "invalidated DOV " + std::to_string(dov_value) +
                           " lost its invalidated flag");
    }
    if (!retired.invalidated && record->propagated) {
      AddViolationOnce(ViolationClass::kResurrectedVersion, dov_value,
                       "withdrawn DOV " + std::to_string(dov_value) +
                           " is propagated again");
    }
  }

  // I3: acked End-of-DOP commits fully applied on every participant
  // (a still-registered DOP on one shard is a half-applied decision).
  // Checkpoint scans sample the most recent window — DaOfDop is a
  // partition-executor round trip, so a full scan mid-traffic would
  // stall the checker; the end-of-run scan covers everything.
  size_t first = 0;
  if (only_up_nodes && acked_.size() > kCheckpointAtomicitySample) {
    first = acked_.size() - kCheckpointAtomicitySample;
  }
  for (size_t i = first; i < acked_.size(); ++i) {
    const AckedCommit& acked = acked_[i];
    for (size_t participant : acked.participants) {
      if (participant >= nodes) continue;
      ScalePlane::Shard& shard = plane->shard(participant);
      if (only_up_nodes && !shard.up.load(std::memory_order_acquire)) {
        continue;
      }
      auto da = shard.tm->DaOfDop(acked.dop);
      if (da.ok()) {
        AddViolationOnce(ViolationClass::kAtomicityViolation,
                         acked.dop.value(),
                         "acked DOP " + std::to_string(acked.dop.value()) +
                             " still registered on participant shard " +
                             std::to_string(participant));
      }
    }
  }
}

std::vector<Violation> InvariantChecker::violations() const {
  MutexLock lock(&mu_);
  return violations_;
}

size_t InvariantChecker::violation_count() const {
  MutexLock lock(&mu_);
  size_t total = 0;
  for (size_t count : counts_) total += count;
  return total;
}

size_t InvariantChecker::violation_count(ViolationClass c) const {
  MutexLock lock(&mu_);
  return counts_[static_cast<size_t>(c)];
}

size_t InvariantChecker::acked_commits() const {
  MutexLock lock(&mu_);
  return acked_.size();
}

// --- ScalePlane --------------------------------------------------------------

ScalePlane::ScalePlane(const ScaleConfig& config)
    : config_(config),
      network_(&clock_, config.seed ^ 0x9e3779b9),
      rpc_(&network_) {
  const size_t nodes = std::max<size_t>(2, config_.server_nodes);
  for (size_t s = 0; s < nodes; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->node = network_.AddNode(
        s == 0 ? std::string("server") : "server" + std::to_string(s));
    shard->repo = std::make_unique<storage::Repository>(&clock_);
    shard->repo->set_dov_id_shard(static_cast<uint32_t>(s));
    // Identical schema per shard (same call order, same DOT ids):
    // "cell" versions carry the payload; the root DA is typed "chip",
    // which cells are parts of (Create_Sub_DA's part-of check).
    auto* cell = shard->repo->schema().DefineType("cell");
    cell->AddAttr({"value", storage::AttrType::kInt, true, 0.0, 1e9});
    auto* chip = shard->repo->schema().DefineType("chip");
    chip->AddAttr({"value", storage::AttrType::kInt, true, 0.0, 1e9});
    chip->AddPart({cell->id(), 0, 1 << 20});
    cell_dot_ = cell->id();
    root_dot_ = chip->id();
    placement_.RegisterNode(shard->node);
    shards_.push_back(std::move(shard));
  }
  bus_ = std::make_unique<rpc::InvalidationBus>(&network_, shards_[0]->node);
  for (size_t s = 0; s < nodes; ++s) {
    Shard& shard = *shards_[s];
    shard.tm = std::make_unique<txn::ServerTm>(shard.repo.get(), &network_,
                                               shard.node, this, bus_.get(),
                                               config_.partitions);
    shard.tm->JoinPlane(&placement_);
    txn::RegisterServerService(shard.tm.get(), &rpc_);
  }
  placement_.SetLivenessProbe(
      [this](NodeId node) { return network_.IsUp(node); });
  txn::RegisterPlacementService(&placement_, &rpc_, shards_[0]->node);

  std::vector<storage::Repository*> repos;
  std::vector<txn::ServerLockTable*> lock_shards;
  for (auto& shard : shards_) {
    repos.push_back(shard->repo.get());
    lock_shards.push_back(&shard->tm->locks());
  }
  cm_ = std::make_unique<cooperation::CooperationManager>(
      storage::RepositoryRouter(std::move(repos)),
      txn::LockRouter(std::move(lock_shards)), &placement_, &clock_);
  cm_->SetEventSink([](DaId, const workflow::Event&) {});
  // CM withdrawal/invalidation -> push to every workstation DOV cache,
  // published from the node that owns the withdrawn DOV (the
  // ConcordSystem wiring, replicated here).
  cm_->SetWithdrawalSink(
      [this](DaId da, DovId dov, bool invalidated, DovId replacement) {
        rpc::InvalidationMessage message;
        message.kind = invalidated
                           ? rpc::InvalidationMessage::Kind::kInvalidated
                           : rpc::InvalidationMessage::Kind::kWithdrawn;
        message.dov = dov;
        message.origin_da = da;
        message.replacement = replacement;
        message.origin_node =
            shards_[DovShardClamped(dov, shards_.size())]->node;
        bus_->Publish(message);
      });

  for (size_t w = 0; w < config_.workstations; ++w) {
    auto ws = std::make_unique<Workstation>();
    ws->node = network_.AddNode("ws" + std::to_string(w));
    std::vector<std::pair<NodeId, txn::ServerService*>> routes;
    for (auto& shard : shards_) {
      ws->stubs.push_back(std::make_unique<txn::RemoteServerStub>(
          &rpc_, ws->node, shard->node));
      routes.emplace_back(shard->node, ws->stubs.back().get());
    }
    ws->placement_client = std::make_unique<txn::PlacementClient>(
        &rpc_, ws->node, shards_[0]->node);
    ws->client = std::make_unique<txn::ClientTm>(
        txn::ShardRouter(std::move(routes), ws->placement_client.get()),
        &network_, ws->node, &clock_, bus_.get());
    workstations_.push_back(std::move(ws));
  }
}

ScalePlane::~ScalePlane() = default;

bool ScalePlane::InScope(DaId da, DovId dov) {
  return cm_ ? cm_->InScope(da, dov) : true;
}

void ScalePlane::CrashNode(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  shard.up.store(false, std::memory_order_release);
  shard.tm->Crash();
  // The RPC at-most-once dedup table is volatile server memory.
  rpc_.ClearNodeState(shard.node);
  // The coordinator hosts the CM: its crash takes cooperation state
  // down with it; other shards leave the CM running.
  if (shard_index == 0) cm_->Crash();
}

Status ScalePlane::RecoverNode(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  CONCORD_RETURN_NOT_OK(shard.tm->Recover());
  shard.up.store(true, std::memory_order_release);
  if (shard_index == 0) return cm_->Recover();
  // The CM never went down; re-derive this node's restarted scope-lock
  // tables from persisted cooperation state.
  return cm_->ReestablishLocks();
}

// --- ScaleHarness ------------------------------------------------------------

/// Shared traffic registry for one design activity. Traffic threads
/// lock `mu` only around pool picks/updates (never across a server
/// round trip); `shard` tracks the placement home and is updated by
/// the chaos thread on MigrateDa.
struct ScaleHarness::DaState {
  DaId id;
  std::atomic<size_t> shard{0};
  size_t partner = 0;  ///< index of the paired DA (mutual Require)
  Mutex mu;
  std::vector<DovId> pool GUARDED_BY(mu);        ///< own usable versions
  std::vector<DovId> propagated GUARDED_BY(mu);  ///< currently propagated
};

ScaleHarness::ScaleHarness(const ScaleConfig& config)
    : config_(config), plane_(config) {
  if (config_.das < 2) config_.das = 2;
  if (config_.workstations < 1) config_.workstations = 1;
  zipf_cdf_.resize(config_.das);
  double total = 0.0;
  for (size_t i = 0; i < config_.das; ++i) {
    total += std::pow(static_cast<double>(i + 1), -config_.zipf_s);
    zipf_cdf_[i] = total;
  }
  for (double& entry : zipf_cdf_) entry /= total;
}

ScaleHarness::~ScaleHarness() = default;

size_t ScaleHarness::ZipfPick(Rng* rng) const {
  double draw = rng->NextDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), draw);
  if (it == zipf_cdf_.end()) return zipf_cdf_.size() - 1;
  return static_cast<size_t>(it - zipf_cdf_.begin());
}

void ScaleHarness::Generate() {
  if (generated_) return;
  generated_ = true;
  auto& cm = plane_.cm();
  const size_t nodes = plane_.node_count();

  // DA hierarchy through the CM (persisted to the coordinator's meta
  // store, so coordinator crash/recover rebuilds it).
  cooperation::DaDescription root_desc;
  root_desc.dot = plane_.root_dot();
  root_desc.designer = DesignerId(1);
  root_desc.workstation = plane_.workstation(0).node;
  auto root = cm.InitDesign(root_desc);
  GenerateCheck(root.ok(), "InitDesign");
  GenerateCheck(cm.Start(*root).ok(), "Start(root)");
  for (size_t i = 0; i < config_.das; ++i) {
    cooperation::DaDescription desc;
    desc.dot = plane_.cell_dot();
    desc.designer = DesignerId(2 + i);
    desc.workstation = plane_.workstation(i % config_.workstations).node;
    auto sub = cm.CreateSubDa(*root, desc);
    GenerateCheck(sub.ok(), "CreateSubDa");
    GenerateCheck(cm.Start(*sub).ok(), "Start(sub)");
    const size_t home = i % nodes;
    GenerateCheck(
        plane_.placement().Assign(*sub, plane_.shard(home).node).ok(),
        "placement.Assign");
    auto state = std::make_unique<DaState>();
    state->id = *sub;
    state->shard.store(home, std::memory_order_release);
    state->partner = (i ^ 1) < config_.das ? (i ^ 1) : i;
    da_states_.push_back(std::move(state));
  }

  // Bulk-load the derivation chains: one generator thread per shard,
  // writing straight into that shard's repository (batched txns, no
  // server round trips) and claiming scope ownership on its node's
  // lock table — exactly the state a long history of checkins leaves.
  std::atomic<size_t> generated_total{0};
  std::vector<std::thread> generators;
  for (size_t s = 0; s < nodes; ++s) {
    generators.emplace_back([this, s, nodes, &generated_total] {
      Rng rng(config_.seed ^ (0x5eed0000 + s * 77));
      storage::Repository& repo = *plane_.shard(s).repo;
      txn::ServerLockTable& locks = plane_.shard(s).tm->locks();
      const size_t per_da = std::max<size_t>(1, config_.dovs / config_.das);
      for (size_t i = s; i < da_states_.size(); i += nodes) {
        DaState& state = *da_states_[i];
        std::vector<std::pair<DovId, size_t>> tails;  // chain tip, depth
        TxnId txn = repo.Begin();
        size_t in_batch = 0;
        MutexLock lock(&state.mu);  // pre-traffic; uncontended
        for (size_t k = 0; k < per_da; ++k) {
          storage::DovRecord record;
          record.id = repo.NextDovId();
          record.owner_da = state.id;
          record.created_by = DopId();
          record.type = plane_.cell_dot();
          record.data = storage::DesignObject(plane_.cell_dot());
          record.data.SetAttr("value", static_cast<int64_t>(k));
          if (!tails.empty() && !rng.Chance(0.05)) {
            size_t t = rng.Index(tails.size());
            record.predecessors = {tails[t].first};
            size_t depth = tails[t].second + 1;
            if (rng.Chance(config_.branch_probability) &&
                tails.size() < kMaxOpenChains) {
              tails.push_back({record.id, depth});
            } else if (depth < config_.chain_depth) {
              tails[t] = {record.id, depth};
            } else {
              tails.erase(tails.begin() + t);
            }
          } else {
            tails.push_back({record.id, 0});
          }
          DovId id = record.id;
          GenerateCheck(repo.Put(txn, std::move(record)).ok(), "Put");
          locks.SetScopeOwner(id, state.id);
          state.pool.push_back(id);
          if (++in_batch == kGeneratorTxnBatch) {
            GenerateCheck(repo.Commit(txn).ok(), "Commit");
            txn = repo.Begin();
            in_batch = 0;
          }
        }
        GenerateCheck(repo.Commit(txn).ok(), "Commit(final)");
        generated_total.fetch_add(per_da, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& generator : generators) generator.join();
  dovs_generated_ = generated_total.load();

  // Cooperation relationships (each DA pair requires each other's
  // results) and initial propagations, so cross-DA — and therefore
  // cross-shard — checkouts have material from the first op on.
  for (auto& state : da_states_) {
    if (da_states_[state->partner]->id == state->id) continue;
    GenerateCheck(
        cm.Require(da_states_[state->partner]->id, state->id, {}).ok(),
        "Require");
  }
  for (auto& state : da_states_) {
    MutexLock lock(&state->mu);
    size_t count = std::min(config_.propagated_per_da, state->pool.size());
    for (size_t k = 0; k < count; ++k) {
      DovId dov = state->pool[k * state->pool.size() / std::max<size_t>(
                                                           count, 1)];
      if (cm.Propagate(state->id, dov).ok()) {
        state->propagated.push_back(dov);
      }
    }
  }
  CONCORD_INFO("scale", "generated " << dovs_generated_ << " DOVs across "
                                     << config_.das << " DAs on " << nodes
                                     << " nodes");
}

void ScaleHarness::RunDopOnce(size_t ws, Rng* rng,
                              std::vector<double>* latencies) {
  ScalePlane::Workstation& workstation = plane_.workstation(ws);
  txn::ClientTm& client = *workstation.client;
  DaState& state = *da_states_[ZipfPick(rng)];
  const size_t home = state.shard.load(std::memory_order_acquire);

  // Pick inputs: 1-2 own versions, sometimes one the partner DA
  // propagated (usually cross-shard — that commit runs the true
  // multi-participant 2PC).
  std::vector<DovId> own_inputs;
  {
    MutexLock lock(&state.mu);
    if (state.pool.empty()) return;
    size_t want = static_cast<size_t>(rng->Uniform(1, 2));
    for (size_t i = 0; i < want; ++i) {
      DovId pick = rng->Pick(state.pool);
      if (std::find(own_inputs.begin(), own_inputs.end(), pick) ==
          own_inputs.end()) {
        own_inputs.push_back(pick);
      }
    }
  }
  DovId partner_input;
  if (rng->Chance(config_.cross_da_checkout_probability)) {
    DaState& partner = *da_states_[state.partner];
    MutexLock lock(&partner.mu);
    if (!partner.propagated.empty()) {
      partner_input = rng->Pick(partner.propagated);
    }
  }

  auto dop = client.BeginDop(state.id);
  if (!dop.ok()) {
    op_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::vector<size_t> participants{home};
  std::vector<DovId> checked_out;
  auto checkout = [&](DovId dov, bool take_derivation_lock) {
    uint64_t seq_before = checker_.CurrentSeq();
    uint64_t cache_hits_before = client.stats().checkouts_from_cache;
    Status status = client.Checkout(*dop, dov, take_derivation_lock);
    if (!status.ok()) {
      op_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    bool from_cache = client.stats().checkouts_from_cache > cache_hits_before;
    checker_.NoteCheckoutObservation(ws, dov, from_cache, seq_before);
    checked_out.push_back(dov);
    size_t shard = DovShardClamped(dov, plane_.node_count());
    if (std::find(participants.begin(), participants.end(), shard) ==
        participants.end()) {
      participants.push_back(shard);
    }
  };
  for (DovId input : own_inputs) {
    checkout(input, rng->Chance(config_.derivation_lock_probability));
  }
  if (partner_input.valid()) checkout(partner_input, false);

  if (checked_out.empty() || rng->Chance(config_.abort_probability)) {
    if (client.AbortDop(*dop).ok()) {
      aborts_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }

  storage::DesignObject object(plane_.cell_dot());
  int64_t value = rng->Uniform(0, 999999999);
  object.SetAttr("value", value);
  auto started = std::chrono::steady_clock::now();
  auto dov = client.CheckinCommit(*dop, std::move(object), checked_out);
  auto elapsed = std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - started)
                     .count();
  if (!dov.ok()) {
    op_errors_.fetch_add(1, std::memory_order_relaxed);
    client.AbortDop(*dop).ok();  // best effort: free server-side locks
    return;
  }
  latencies->push_back(elapsed);
  InvariantChecker::AckedCommit acked;
  acked.ws = ws;
  acked.dop = *dop;
  acked.dov = *dov;
  acked.value = value;
  acked.da = state.id;
  acked.participants = std::move(participants);
  checker_.RecordAckedCommit(std::move(acked));
  MutexLock lock(&state.mu);
  state.pool.push_back(*dov);
}

void ScaleHarness::RunCmOpOnce(size_t ws, Rng* rng) {
  (void)ws;
  cm_ops_.fetch_add(1, std::memory_order_relaxed);
  auto& cm = plane_.cm();
  DaState& state = *da_states_[ZipfPick(rng)];
  int64_t action = rng->Uniform(0, 2);

  if (action == 0) {  // propagate a fresh version
    DovId dov;
    {
      MutexLock lock(&state.mu);
      if (state.pool.empty()) return;
      DovId pick = rng->Pick(state.pool);
      if (std::find(state.propagated.begin(), state.propagated.end(), pick) ==
          state.propagated.end()) {
        dov = pick;
      }
    }
    if (!dov.valid()) return;
    if (cm.Propagate(state.id, dov).ok()) {
      MutexLock lock(&state.mu);
      state.propagated.push_back(dov);
    } else {
      op_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }

  // Withdraw or invalidate-and-replace: retire the version from the
  // traffic pools FIRST (so no thread legitimately re-uses it), then
  // run the CM op, then record the retirement for the checker. The
  // retirement is "armed" for the coherence check only when the
  // invalidation push provably reached every workstation (publisher
  // node up; caches verified clean).
  DovId dov;
  DovId replacement;
  {
    MutexLock lock(&state.mu);
    if (state.propagated.empty()) return;
    size_t index = rng->Index(state.propagated.size());
    dov = state.propagated[index];
    if (action == 2) {  // invalidate needs an own replacement version
      for (int attempt = 0; attempt < 4; ++attempt) {
        DovId candidate = rng->Pick(state.pool);
        if (candidate != dov) {
          replacement = candidate;
          break;
        }
      }
      if (!replacement.valid()) return;
    }
    state.propagated.erase(state.propagated.begin() + index);
    state.pool.erase(std::remove(state.pool.begin(), state.pool.end(), dov),
                     state.pool.end());
  }
  Status status = action == 1
                      ? cm.WithdrawPropagation(state.id, dov)
                      : cm.InvalidateAndReplace(state.id, dov, replacement);
  if (!status.ok()) {
    // Conservative: the DOV stays retired from the pools (never
    // re-used) but is not recorded — no invariant rides on it.
    op_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  bool armed =
      plane_.shard(DovShardClamped(dov, plane_.node_count()))
          .up.load(std::memory_order_acquire);
  for (size_t w = 0; armed && w < plane_.workstation_count(); ++w) {
    if (plane_.workstation(w).client->cache().Contains(dov)) armed = false;
  }
  checker_.RecordRetired(dov, action == 2, armed);
  if (action == 2) {
    MutexLock lock(&state.mu);
    if (std::find(state.propagated.begin(), state.propagated.end(),
                  replacement) == state.propagated.end()) {
      state.propagated.push_back(replacement);  // IAR propagates it
    }
  }
}

void ScaleHarness::RunProbeOnce(size_t ws, Rng* rng) {
  // Deliberately ask for a retired version: the server will mostly
  // deny it (scope revoked), and the workstation cache must NEVER
  // serve it — the live edge of the coherence invariant.
  DovId dov = checker_.SampleRetired(
      static_cast<uint64_t>(rng->Uniform(0, 1 << 30)));
  if (!dov.valid()) return;
  probes_.fetch_add(1, std::memory_order_relaxed);
  ScalePlane::Workstation& workstation = plane_.workstation(ws);
  txn::ClientTm& client = *workstation.client;
  DaState& state = *da_states_[ZipfPick(rng)];
  auto dop = client.BeginDop(state.id);
  if (!dop.ok()) return;
  uint64_t seq_before = checker_.CurrentSeq();
  uint64_t cache_hits_before = client.stats().checkouts_from_cache;
  Status status = client.Checkout(*dop, dov, false);
  if (status.ok()) {
    bool from_cache = client.stats().checkouts_from_cache > cache_hits_before;
    checker_.NoteCheckoutObservation(ws, dov, from_cache, seq_before);
  }
  client.AbortDop(*dop).ok();
}

void ScaleHarness::TrafficThread(size_t ws,
                                 std::vector<double>* checkin_latencies_us) {
  Rng rng(config_.seed * 0x9e3779b97f4a7c15ULL ^ (ws + 1));
  for (size_t op = 0; op < config_.ops_per_workstation; ++op) {
    if (stop_traffic_.load(std::memory_order_acquire)) break;
    ops_attempted_.fetch_add(1, std::memory_order_relaxed);
    double draw = rng.NextDouble();
    if (draw < config_.cm_op_probability) {
      RunCmOpOnce(ws, &rng);
    } else if (draw < config_.cm_op_probability + config_.probe_probability) {
      RunProbeOnce(ws, &rng);
    } else {
      RunDopOnce(ws, &rng, checkin_latencies_us);
    }
  }
  traffic_done_.fetch_add(1, std::memory_order_acq_rel);
}

void ScaleHarness::CheckpointSweep() {
  size_t max_after = 0;
  for (size_t s = 0; s < plane_.node_count(); ++s) {
    ScalePlane::Shard& shard = plane_.shard(s);
    // Never checkpoint a crashed node: its volatile image is empty, and
    // snapshotting that emptiness while truncating the log would be the
    // one sequence that destroys committed state (docs/SCALE.md).
    if (!shard.up.load(std::memory_order_acquire)) continue;
    shard.repo->Checkpoint();
    size_t after = shard.repo->wal().size();
    checker_.NoteWalSize(s, after, config_.wal_bound);
    max_after = std::max(max_after, after);
  }
  last_checkpoint_wal_records_ = max_after;
  ++checkpoints_done_;
}

void ScaleHarness::ChaosThread() {
  enum EventType {
    kNodeCrash,
    kNodeRecover,
    kWorkstationCrash,
    kMigrate,
    kCheckpoint,
    kLossChange,
  };
  struct Event {
    double pos;
    EventType type;
    size_t arg;
  };
  Rng rng(config_.seed ^ 0xc4a05c4a05ULL);
  std::vector<Event> events;

  const size_t nodes = plane_.node_count();
  const size_t cycles = config_.crash_cycles;
  for (size_t i = 0; i < cycles; ++i) {
    // Rolling victims starting at shard 1 (the coordinator joins the
    // rotation once every other node has had a turn).
    size_t victim = (i + 1) % nodes;
    double base = 0.08 + 0.74 * (static_cast<double>(i) / std::max<size_t>(
                                                              cycles, 1));
    double jitter = rng.NextDouble() * 0.02;
    events.push_back({base + jitter, kNodeCrash, victim});
    events.push_back(
        {base + jitter + 0.30 / std::max<size_t>(cycles, 1), kNodeRecover,
         victim});
  }
  for (size_t i = 0; i < config_.workstation_crashes; ++i) {
    double pos = 0.15 + 0.7 * (i + 0.5) / std::max<size_t>(
                                              config_.workstation_crashes, 1);
    events.push_back({pos, kWorkstationCrash,
                      rng.Index(plane_.workstation_count())});
  }
  for (size_t i = 0; i < config_.migrations; ++i) {
    double pos =
        0.3 + 0.4 * (i + 0.5) / std::max<size_t>(config_.migrations, 1);
    events.push_back({pos, kMigrate, i});
  }
  for (size_t i = 0; i < config_.checkpoints; ++i) {
    double pos = (i + 1.0) / (config_.checkpoints + 1.0);
    events.push_back({pos, kCheckpoint, i});
  }
  // Continuous loss with churn: the probability steps around its
  // configured level instead of staying flat.
  events.push_back({0.25, kLossChange, 0});
  events.push_back({0.55, kLossChange, 1});
  events.push_back({0.8, kLossChange, 2});
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.pos < b.pos; });

  const size_t total_ops =
      config_.workstations * std::max<size_t>(config_.ops_per_workstation, 1);
  size_t next = 0;
  while (next < events.size()) {
    bool traffic_finished =
        traffic_done_.load(std::memory_order_acquire) == config_.workstations;
    double progress =
        traffic_finished
            ? 2.0
            : static_cast<double>(ops_attempted_.load(
                  std::memory_order_relaxed)) /
                  static_cast<double>(total_ops);
    while (next < events.size() && events[next].pos <= progress) {
      const Event& event = events[next++];
      switch (event.type) {
        case kNodeCrash:
          if (plane_.shard(event.arg).up.load(std::memory_order_acquire)) {
            plane_.CrashNode(event.arg);
            ++crash_cycles_done_;
          }
          break;
        case kNodeRecover:
          if (!plane_.shard(event.arg).up.load(std::memory_order_acquire)) {
            Status status = plane_.RecoverNode(event.arg);
            if (!status.ok()) {
              CONCORD_ERROR("scale", "node " << event.arg
                                             << " recovery failed: "
                                             << status.ToString());
            }
          }
          break;
        case kWorkstationCrash: {
          auto& workstation = plane_.workstation(event.arg);
          workstation.client->Crash();
          checker_.NoteWorkstationCrash(event.arg);
          workstation.client->Recover().ok();
          ++workstation_crashes_done_;
          break;
        }
        case kMigrate: {
          // Migrate a hot DA to a different up node, mid-traffic.
          for (int attempt = 0; attempt < 4 && nodes > 1; ++attempt) {
            DaState& state = *da_states_[rng.Index(
                std::min<size_t>(da_states_.size(), 8))];
            size_t current = state.shard.load(std::memory_order_acquire);
            size_t target = (current + 1 + rng.Index(nodes - 1)) % nodes;
            if (target == current ||
                !plane_.shard(target).up.load(std::memory_order_acquire)) {
              continue;
            }
            if (plane_.cm()
                    .MigrateDa(state.id, plane_.shard(target).node)
                    .ok()) {
              state.shard.store(target, std::memory_order_release);
              ++migrations_done_;
              break;
            }
          }
          break;
        }
        case kCheckpoint:
          CheckpointSweep();
          checker_.VerifyAgainst(&plane_, /*only_up_nodes=*/true);
          break;
        case kLossChange: {
          double factors[] = {1.6, 0.4, 1.0};
          plane_.network().set_loss_probability(config_.loss_probability *
                                                factors[event.arg % 3]);
          break;
        }
      }
    }
    if (next >= events.size()) break;
    if (!traffic_finished) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

void ScaleHarness::FinalVerify() {
  // Quiesce: stop losing messages, bring every node back, re-derive
  // cooperation locks, then run the full cross-examination.
  plane_.network().set_loss_probability(0.0);
  for (size_t s = 0; s < plane_.node_count(); ++s) {
    if (!plane_.shard(s).up.load(std::memory_order_acquire)) {
      Status status = plane_.RecoverNode(s);
      if (!status.ok()) {
        CONCORD_ERROR("scale", "final recovery of node "
                                   << s << " failed: " << status.ToString());
      }
    }
  }
  CheckpointSweep();
  checker_.VerifyAgainst(&plane_, /*only_up_nodes=*/false);
}

ScaleResult ScaleHarness::Run() {
  Generate();
  plane_.network().set_loss_probability(config_.loss_probability);
  auto started = std::chrono::steady_clock::now();

  std::vector<std::vector<double>> latencies(config_.workstations);
  std::thread chaos(&ScaleHarness::ChaosThread, this);
  std::vector<std::thread> traffic;
  for (size_t w = 0; w < config_.workstations; ++w) {
    traffic.emplace_back(&ScaleHarness::TrafficThread, this, w,
                         &latencies[w]);
  }
  for (std::thread& thread : traffic) thread.join();
  chaos.join();
  double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              started)
                    .count();

  FinalVerify();

  ScaleResult result;
  result.seed = config_.seed;
  result.dovs_generated = dovs_generated_;
  result.das = config_.das;
  result.ops_attempted = ops_attempted_.load();
  result.acked_commits = checker_.acked_commits();
  result.aborts = aborts_.load();
  result.op_errors = op_errors_.load();
  result.cm_ops = cm_ops_.load();
  result.probe_checkouts = probes_.load();
  result.crash_cycles_done = crash_cycles_done_;
  result.workstation_crashes_done = workstation_crashes_done_;
  result.migrations_done = migrations_done_;
  result.checkpoints_done = checkpoints_done_;
  result.wal_records_after_last_checkpoint = last_checkpoint_wal_records_;
  for (size_t s = 0; s < plane_.node_count(); ++s) {
    result.prepared_residue += plane_.shard(s).tm->PreparedTxns().size();
  }
  result.wall_seconds = wall;
  result.throughput_ops_per_sec =
      wall > 0 ? static_cast<double>(result.ops_attempted) / wall : 0.0;

  std::vector<double> merged;
  for (auto& slice : latencies) {
    merged.insert(merged.end(), slice.begin(), slice.end());
  }
  std::sort(merged.begin(), merged.end());
  auto percentile = [&merged](double p) {
    if (merged.empty()) return 0.0;
    size_t index = static_cast<size_t>(p * (merged.size() - 1));
    return merged[index];
  };
  result.checkin_p50_us = percentile(0.50);
  result.checkin_p95_us = percentile(0.95);
  result.checkin_p99_us = percentile(0.99);

  result.violations = checker_.violations();
  for (size_t c = 0; c < 6; ++c) {
    result.violations_by_class[c] =
        checker_.violation_count(static_cast<ViolationClass>(c));
    result.violations_total += result.violations_by_class[c];
  }
  return result;
}

std::string ScaleResultJson(const ScaleResult& result) {
  char buffer[256];
  std::string json = "{\n";
  auto add_u = [&](const char* key, uint64_t value, bool comma = true) {
    std::snprintf(buffer, sizeof(buffer), "  \"%s\": %llu%s\n", key,
                  static_cast<unsigned long long>(value), comma ? "," : "");
    json += buffer;
  };
  auto add_d = [&](const char* key, double value) {
    std::snprintf(buffer, sizeof(buffer), "  \"%s\": %.2f,\n", key, value);
    json += buffer;
  };
  add_u("seed", result.seed);
  add_u("dovs_generated", result.dovs_generated);
  add_u("das", result.das);
  add_u("ops_attempted", result.ops_attempted);
  add_u("acked_commits", result.acked_commits);
  add_u("aborts", result.aborts);
  add_u("op_errors", result.op_errors);
  add_u("cm_ops", result.cm_ops);
  add_u("probe_checkouts", result.probe_checkouts);
  add_u("crash_cycles_done", result.crash_cycles_done);
  add_u("workstation_crashes_done", result.workstation_crashes_done);
  add_u("migrations_done", result.migrations_done);
  add_u("checkpoints_done", result.checkpoints_done);
  add_u("wal_records_after_last_checkpoint",
        result.wal_records_after_last_checkpoint);
  add_u("prepared_residue", result.prepared_residue);
  add_d("wall_seconds", result.wall_seconds);
  add_d("throughput_ops_per_sec", result.throughput_ops_per_sec);
  add_d("checkin_p50_us", result.checkin_p50_us);
  add_d("checkin_p95_us", result.checkin_p95_us);
  add_d("checkin_p99_us", result.checkin_p99_us);
  for (size_t c = 0; c < 6; ++c) {
    add_u(ViolationClassName(static_cast<ViolationClass>(c)),
          result.violations_by_class[c]);
  }
  add_u("violations_total", result.violations_total, /*comma=*/false);
  json += "}\n";
  return json;
}

}  // namespace concord::sim
