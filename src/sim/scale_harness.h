#ifndef CONCORD_SIM_SCALE_HARNESS_H_
#define CONCORD_SIM_SCALE_HARNESS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/sync.h"
#include "cooperation/cooperation_manager.h"
#include "rpc/invalidation.h"
#include "rpc/network.h"
#include "rpc/transactional_rpc.h"
#include "storage/repository.h"
#include "txn/client_tm.h"
#include "txn/placement.h"
#include "txn/remote_server_stub.h"
#include "txn/scope_authority.h"
#include "txn/server_tm.h"
#include "txn/shard_router.h"

namespace concord::sim {

/// One deterministic seed governs everything: the plane generator, the
/// per-workstation traffic mixes, and the chaos schedule (which node
/// crashes when, which DA migrates where). Replaying a failed run is
/// `CONCORD_SEED=<n>` — see docs/SCALE.md.
struct ScaleConfig {
  uint64_t seed = 42;

  // Plane shape.
  size_t server_nodes = 4;
  int partitions = 2;
  size_t workstations = 8;

  // Generator: `dovs` committed versions spread over `das` design
  // activities (Zipf-hot selection, exponent `zipf_s`), derivation
  // chains up to `chain_depth` deep with occasional branches.
  size_t das = 32;
  size_t dovs = 100000;
  size_t chain_depth = 64;
  double branch_probability = 0.15;
  double zipf_s = 1.1;
  /// Propagated versions pre-established per DA so cross-DA (and thus
  /// cross-shard) checkouts have material from the first op on.
  size_t propagated_per_da = 8;

  // Traffic: DOP attempts per workstation thread.
  size_t ops_per_workstation = 1500;
  double abort_probability = 0.15;
  double derivation_lock_probability = 0.2;
  double cross_da_checkout_probability = 0.35;
  /// Probability a traffic op is a cooperation op (propagate /
  /// withdraw / invalidate-and-replace) instead of a DOP.
  double cm_op_probability = 0.04;
  /// Probability of a deliberate probe checkout of a retired
  /// (withdrawn/invalidated) DOV — the live cache-coherence test: such
  /// a checkout must never be served from the workstation cache.
  double probe_probability = 0.03;

  // Chaos schedule.
  double loss_probability = 0.05;
  size_t crash_cycles = 3;          ///< rolling server-node crash/recover
  size_t workstation_crashes = 2;   ///< workstation kill/recover cycles
  size_t migrations = 1;            ///< MigrateDa churn events
  size_t checkpoints = 4;           ///< periodic Checkpoint() sweeps
  /// WAL records allowed to remain right after a checkpoint truncation
  /// (only appends racing the checkpoint should survive it).
  size_t wal_bound = 50000;
};

/// Violation classes the checker can report.
enum class ViolationClass {
  kLostCommit,           ///< acked committed DOV missing or corrupted
  kResurrectedVersion,   ///< withdrawn/invalidated flag flipped back
  kAtomicityViolation,   ///< acked DOP still half-applied on a participant
  kCacheCoherence,       ///< retired DOV served from a workstation cache
  kDuplicateId,          ///< DOV id reissued across recoveries
  kWalUnbounded,         ///< WAL not truncated by checkpoint
};

const char* ViolationClassName(ViolationClass c);

struct Violation {
  ViolationClass klass;
  std::string detail;
};

class ScalePlane;

/// Always-on invariant checker: traffic threads record every acked
/// effect (commits, withdrawals, probe observations) as they happen;
/// the chaos driver cross-examines those records against authoritative
/// server/repository state at checkpoints (skipping crashed nodes) and
/// at end-of-run (after recovering everything). Thread-safe.
class InvariantChecker {
 public:
  struct AckedCommit {
    size_t ws;
    DopId dop;
    DovId dov;
    int64_t value;
    DaId da;
    std::vector<size_t> participants;  ///< shard indexes the DOP touched
  };

  /// Monotone event sequence: ordering witness between retirements and
  /// checkout observations (no wall clock — the schedule is seeded).
  uint64_t CurrentSeq() const { return seq_.load(std::memory_order_acquire); }

  /// Records a client-acked committed checkin. Flags kDuplicateId
  /// immediately if the DOV id was already acked (an id reissued
  /// across a recovery would collide here).
  void RecordAckedCommit(AckedCommit acked);

  /// Records a propagation retirement the CM acked. `invalidated`
  /// distinguishes InvalidateAndReplace from WithdrawPropagation.
  /// `armed` marks retirements whose invalidation push provably
  /// reached every live workstation cache (publisher and subscribers
  /// up) — only armed retirements participate in the coherence check.
  void RecordRetired(DovId dov, bool invalidated, bool armed);

  /// Online cache-coherence check: a checkout of `dov` served from the
  /// workstation cache is a violation iff the DOV was retired-and-armed
  /// before the op started (seq ordering excludes the in-flight race),
  /// the workstation has not crashed since the retirement (a crash
  /// wipes the cache's never-invalidated memory), and the server has
  /// not re-validated the DOV for this workstation since the
  /// retirement. The last exclusion is load-bearing: a withdrawal only
  /// revokes the *requiring* DA's visibility, so the owning DA may
  /// legitimately check the version back out from the server — the
  /// authoritative scope test runs there — and that round trip re-arms
  /// the cache. Server-served observations (from_cache=false) are
  /// therefore recorded as (ws, dov) re-validation points; each
  /// workstation is driven by a single thread, so a cache hit always
  /// follows its enabling server round trip in this order.
  void NoteCheckoutObservation(size_t ws, DovId dov, bool from_cache,
                               uint64_t seq_at_op_start);

  /// Sequence-stamps a workstation crash (see NoteCheckoutObservation).
  void NoteWorkstationCrash(size_t ws);

  /// WAL-bound check, fed after each Checkpoint() with the surviving
  /// record count.
  void NoteWalSize(size_t shard, size_t records_after_checkpoint,
                   size_t bound);

  /// Cross-examines all records against the plane. With `only_up_nodes`
  /// the scan skips crashed shards (checkpoint mode); the end-of-run
  /// scan recovers everything first and passes false.
  void VerifyAgainst(ScalePlane* plane, bool only_up_nodes);

  /// Random retired DOV for probe checkouts (invalid id when none yet).
  DovId SampleRetired(uint64_t entropy) const;

  std::vector<Violation> violations() const;
  size_t violation_count() const;
  size_t violation_count(ViolationClass c) const;
  size_t acked_commits() const;

 private:
  void AddViolation(ViolationClass c, std::string detail) REQUIRES(mu_);
  /// Same, but keyed: repeated VerifyAgainst scans report one broken
  /// id once, not once per scan. Returns whether it was new.
  bool AddViolationOnce(ViolationClass c, uint64_t key, std::string detail)
      REQUIRES(mu_);

  struct Retired {
    bool invalidated = false;
    bool armed = false;
    uint64_t seq = 0;
  };

  mutable Mutex mu_;
  std::atomic<uint64_t> seq_{1};
  std::vector<AckedCommit> acked_ GUARDED_BY(mu_);
  std::set<uint64_t> acked_ids_ GUARDED_BY(mu_);
  std::map<uint64_t, Retired> retired_ GUARDED_BY(mu_);
  std::vector<uint64_t> retired_order_ GUARDED_BY(mu_);
  std::map<size_t, uint64_t> ws_crash_seq_ GUARDED_BY(mu_);
  /// Last sequence point at which the server (re-)served (ws, dov) —
  /// an authoritative scope decision that legitimizes later cache hits.
  std::map<std::pair<size_t, uint64_t>, uint64_t> server_validated_
      GUARDED_BY(mu_);
  std::set<std::pair<size_t, uint64_t>> reported_ GUARDED_BY(mu_);
  std::vector<Violation> violations_ GUARDED_BY(mu_);
  size_t counts_[6] GUARDED_BY(mu_) = {0, 0, 0, 0, 0, 0};
};

/// The full multi-node plane the harness drives: N server nodes (each a
/// repository shard + partitioned ServerTm + ServerService endpoint),
/// the CooperationManager as plane-wide scope authority (withdrawals
/// fan out to every workstation DOV cache over the invalidation bus),
/// the placement authority on the coordinator, and one workstation
/// (ClientTm) per designer thread.
class ScalePlane : public txn::ScopeAuthority {
 public:
  struct Shard {
    NodeId node;
    std::unique_ptr<storage::Repository> repo;
    std::unique_ptr<txn::ServerTm> tm;
    std::atomic<bool> up{true};
  };

  struct Workstation {
    NodeId node;
    std::vector<std::unique_ptr<txn::RemoteServerStub>> stubs;
    std::unique_ptr<txn::PlacementClient> placement_client;
    std::unique_ptr<txn::ClientTm> client;
  };

  explicit ScalePlane(const ScaleConfig& config);
  ~ScalePlane() override;

  bool InScope(DaId da, DovId dov) override;

  /// Server-node crash: deterministic partition drain, volatile wipe,
  /// RPC dedup loss; the coordinator takes the CM down with it.
  void CrashNode(size_t shard);
  /// WAL replay + (coordinator) CM rebuild or (other nodes) scope-lock
  /// re-derivation from persisted cooperation state.
  Status RecoverNode(size_t shard);

  size_t node_count() const { return shards_.size(); }
  Shard& shard(size_t s) { return *shards_[s]; }
  Workstation& workstation(size_t w) { return *workstations_[w]; }
  size_t workstation_count() const { return workstations_.size(); }
  cooperation::CooperationManager& cm() { return *cm_; }
  txn::PlacementMap& placement() { return placement_; }
  rpc::Network& network() { return network_; }
  rpc::InvalidationBus& bus() { return *bus_; }
  DotId root_dot() const { return root_dot_; }
  DotId cell_dot() const { return cell_dot_; }

 private:
  ScaleConfig config_;
  SimClock clock_;
  rpc::Network network_;
  rpc::TransactionalRpc rpc_;
  txn::PlacementMap placement_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<rpc::InvalidationBus> bus_;
  std::unique_ptr<cooperation::CooperationManager> cm_;
  std::vector<std::unique_ptr<Workstation>> workstations_;
  DotId root_dot_;
  DotId cell_dot_;
};

/// End-of-run report (the bench serializes this into
/// BENCH_scale_chaos.json).
struct ScaleResult {
  uint64_t seed = 0;
  size_t dovs_generated = 0;
  size_t das = 0;
  size_t ops_attempted = 0;
  size_t acked_commits = 0;
  size_t aborts = 0;
  size_t op_errors = 0;  ///< tolerated failures (crash windows, denials)
  size_t cm_ops = 0;
  size_t probe_checkouts = 0;
  size_t crash_cycles_done = 0;
  size_t workstation_crashes_done = 0;
  size_t migrations_done = 0;
  size_t checkpoints_done = 0;
  size_t wal_records_after_last_checkpoint = 0;
  size_t prepared_residue = 0;  ///< orphaned 2PC stages left at the end
  double wall_seconds = 0.0;
  double throughput_ops_per_sec = 0.0;
  double checkin_p50_us = 0.0;
  double checkin_p95_us = 0.0;
  double checkin_p99_us = 0.0;
  std::vector<Violation> violations;
  size_t violations_total = 0;
  size_t violations_by_class[6] = {0, 0, 0, 0, 0, 0};
};

/// Generator + traffic driver + chaos scheduler + checker, wired
/// together over one ScalePlane. Run() executes the whole scenario:
/// generate the plane, start the designer threads, run the seeded
/// chaos schedule to completion, quiesce, recover everything and run
/// the final full-plane verification.
class ScaleHarness {
 public:
  explicit ScaleHarness(const ScaleConfig& config);
  ~ScaleHarness();

  /// Phase 1: materialize the design plane (DA hierarchy through the
  /// CM, DOV derivation chains bulk-loaded per shard in parallel,
  /// cooperation relationships + initial propagations). Idempotent
  /// guard: call once.
  void Generate();

  /// Phases 2-4: mixed traffic + chaos schedule + final verification.
  /// Calls Generate() first if it has not run yet.
  ScaleResult Run();

  ScalePlane& plane() { return plane_; }
  InvariantChecker& checker() { return checker_; }

 private:
  struct DaState;

  void TrafficThread(size_t ws, std::vector<double>* checkin_latencies_us);
  void ChaosThread();
  void RunDopOnce(size_t ws, Rng* rng, std::vector<double>* latencies);
  void RunCmOpOnce(size_t ws, Rng* rng);
  void RunProbeOnce(size_t ws, Rng* rng);
  size_t ZipfPick(Rng* rng) const;
  void CheckpointSweep();
  void FinalVerify();

  ScaleConfig config_;
  ScalePlane plane_;
  InvariantChecker checker_;

  std::vector<std::unique_ptr<DaState>> da_states_;
  std::vector<double> zipf_cdf_;
  std::atomic<bool> stop_traffic_{false};
  std::atomic<size_t> ops_attempted_{0};
  std::atomic<size_t> aborts_{0};
  std::atomic<size_t> op_errors_{0};
  std::atomic<size_t> cm_ops_{0};
  std::atomic<size_t> probes_{0};
  std::atomic<size_t> traffic_done_{0};
  bool generated_ = false;
  size_t dovs_generated_ = 0;

  // Chaos bookkeeping (chaos thread only, read at report time).
  size_t crash_cycles_done_ = 0;
  size_t workstation_crashes_done_ = 0;
  size_t migrations_done_ = 0;
  size_t checkpoints_done_ = 0;
  size_t last_checkpoint_wal_records_ = 0;
};

/// Serializes a result into the BENCH_scale_chaos.json shape (one key
/// per line — tools/check_scale_chaos.sh greps `violations_total`).
std::string ScaleResultJson(const ScaleResult& result);

}  // namespace concord::sim

#endif  // CONCORD_SIM_SCALE_HARNESS_H_
