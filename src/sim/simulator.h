#ifndef CONCORD_SIM_SIMULATOR_H_
#define CONCORD_SIM_SIMULATOR_H_

#include <string>
#include <vector>

#include "core/concord_system.h"
#include "sim/metrics.h"

namespace concord::sim {

/// Configuration of a multi-designer simulation run.
struct SimulationOptions {
  /// Number of concurrent top-level designs (one designer/workstation
  /// each).
  int designs = 4;
  /// Behavioral complexity of each design (module count after
  /// synthesis).
  int complexity = 6;
  /// Probability that a given workstation crashes after any step of its
  /// design manager (crash + immediate recovery).
  double workstation_crash_probability = 0.0;
  /// Probability of a server crash between scheduler rounds.
  double server_crash_probability = 0.0;
  uint64_t seed = 42;
  /// Server-plane width (see SystemConfig::server_nodes): with N >= 2
  /// the CM shards the designs' DAs across N server nodes and the
  /// report carries per-node round-trip counts.
  int server_nodes = 1;
  /// Executor partitions per server node (see
  /// SystemConfig::partitions_per_node); with K >= 2 the report carries
  /// the coordinator's per-partition checkout split.
  int partitions_per_node = 1;
  /// Pin partition executor threads to CPU cores (see
  /// SystemConfig::pin_executor_cores).
  bool pin_executor_cores = false;
};

/// Outcome of a simulation run.
struct SimulationReport {
  int designs_completed = 0;
  int designs_failed = 0;
  int workstation_crashes = 0;
  int server_crashes = 0;
  uint64_t dops_committed = 0;
  uint64_t scheduler_steps = 0;
  /// Simulated wall time at the end of the run.
  SimTime sim_time = 0;
  /// TE-level work lost to crashes (units).
  uint64_t work_units_lost = 0;
  /// Checkouts served from the workstation DOV caches vs. forwarded to
  /// the server-TM, plus invalidation pushes delivered — the hot-read-
  /// path split the cache layer introduces.
  uint64_t checkouts_from_cache = 0;
  uint64_t checkouts_from_server = 0;
  uint64_t cache_invalidations_delivered = 0;
  /// ServerService envelopes shipped over the transactional RPC (one
  /// per critical client/server-TM interaction — batching collapses
  /// checkin+commit pairs into one), plus the transport's retry work.
  uint64_t rpc_calls = 0;
  uint64_t rpc_retries = 0;
  /// Checkin+commit pairs that rode a single batched envelope.
  uint64_t batched_checkin_commits = 0;
  /// Round trips (logical RPC calls) per server node, shard order —
  /// the plane's load split. One entry for the single-server system.
  std::vector<uint64_t> per_node_round_trips;
  /// Interactions that spanned shards (true multi-participant 2PC)
  /// and placement-cache refreshes after DA migrations.
  uint64_t cross_shard_interactions = 0;
  uint64_t placement_refreshes = 0;
  /// Server-side traffic totals, aggregated ON READ from the TMs'
  /// per-partition counter slices (the hot path only ever bumps its
  /// own partition's cache line).
  uint64_t server_checkouts = 0;
  uint64_t server_checkins = 0;
  /// Operations whose choreography spanned executor partitions.
  uint64_t cross_partition_ops = 0;
  /// Coordinator node's checkout count per executor partition
  /// (partition order; one entry for the single-executor system).
  std::vector<uint64_t> per_partition_checkouts;

  std::string ToString() const;
};

/// Drives several independent design activities "in parallel" (round-
/// robin over their design managers, one atomic step each) against one
/// shared server, optionally injecting workstation and server crashes.
/// This is the workstation/server workload of Sect. 5.1 at small scale;
/// the shared SimClock gives the team's concurrent-engineering
/// turnaround.
class MultiDesignerSimulation {
 public:
  explicit MultiDesignerSimulation(SimulationOptions options);

  /// Runs to completion (every design finished or failed). The system
  /// stays alive afterwards for inspection.
  Result<SimulationReport> Run();

  core::ConcordSystem& system() { return *system_; }
  const std::vector<DaId>& das() const { return das_; }

 private:
  SimulationOptions options_;
  std::unique_ptr<core::ConcordSystem> system_;
  Rng crash_rng_;
  std::vector<DaId> das_;
};

}  // namespace concord::sim

#endif  // CONCORD_SIM_SIMULATOR_H_
