#include "sim/simulator.h"

#include <sstream>

#include "common/logging.h"
#include "common/strings.h"
#include "sim/scenarios.h"

namespace concord::sim {

std::string SimulationReport::ToString() const {
  std::ostringstream os;
  os << designs_completed << " completed, " << designs_failed << " failed; "
     << workstation_crashes << " workstation + " << server_crashes
     << " server crashes; " << dops_committed << " DOPs committed; "
     << work_units_lost << " work units lost; design time "
     << FormatSimTime(sim_time) << "; checkouts " << checkouts_from_cache
     << " cached / " << checkouts_from_server << " server ("
     << cache_invalidations_delivered << " invalidations pushed); "
     << rpc_calls << " server round trips (" << rpc_retries << " retries, "
     << batched_checkin_commits << " batched checkin+commits)";
  if (per_node_round_trips.size() > 1) {
    os << "; per-node round trips [";
    for (size_t i = 0; i < per_node_round_trips.size(); ++i) {
      if (i > 0) os << ", ";
      os << "s" << i << ": " << per_node_round_trips[i];
    }
    os << "] (" << cross_shard_interactions << " cross-shard, "
       << placement_refreshes << " placement refreshes)";
  }
  if (per_partition_checkouts.size() > 1) {
    os << "; server " << server_checkouts << " checkouts / "
       << server_checkins << " checkins across "
       << per_partition_checkouts.size() << " partitions [";
    for (size_t p = 0; p < per_partition_checkouts.size(); ++p) {
      if (p > 0) os << ", ";
      os << "p" << p << ": " << per_partition_checkouts[p];
    }
    os << "] (" << cross_partition_ops << " cross-partition)";
  }
  return os.str();
}

MultiDesignerSimulation::MultiDesignerSimulation(SimulationOptions options)
    : options_(options), crash_rng_(options.seed ^ 0xC0FFEE) {
  core::SystemConfig config;
  config.seed = options_.seed;
  config.time_per_work_unit = kMillisecond;
  config.server_nodes = options_.server_nodes;
  config.partitions_per_node = options_.partitions_per_node;
  config.pin_executor_cores = options_.pin_executor_cores;
  system_ = std::make_unique<core::ConcordSystem>(config);
}

Result<SimulationReport> MultiDesignerSimulation::Run() {
  SimulationReport report;

  for (int i = 0; i < options_.designs; ++i) {
    CONCORD_ASSIGN_OR_RETURN(
        DaId da, SetupTopLevelDa(system_.get(), IndexedName("d", i),
                                 options_.complexity, 1e9, 0));
    CONCORD_RETURN_NOT_OK(system_->StartDa(da));
    das_.push_back(da);
  }

  std::vector<bool> done(das_.size(), false);
  std::vector<bool> failed(das_.size(), false);
  size_t remaining = das_.size();
  // Bound the scheduler so tool aborts can't spin forever: each design
  // needs ~a dozen steps; give plenty of slack for crashes and retries.
  const uint64_t step_budget = 10000 * das_.size();

  while (remaining > 0 && report.scheduler_steps < step_budget) {
    for (size_t i = 0; i < das_.size(); ++i) {
      if (done[i]) continue;
      DaId da = das_[i];
      workflow::DesignManager& dm = system_->dm(da);
      ++report.scheduler_steps;

      auto more = dm.Step();
      if (!more.ok()) {
        if (more.status().IsAborted()) {
          // Tool failure: the designer retries (the DM left a retry
          // point). A few retries are normal; persistent failure marks
          // the design failed.
          if (report.scheduler_steps % 97 == 0) continue;
          continue;
        }
        failed[i] = true;
        done[i] = true;
        --remaining;
        ++report.designs_failed;
        continue;
      }
      if (!*more || dm.state() == workflow::DmState::kCompleted) {
        done[i] = true;
        --remaining;
        ++report.designs_completed;
        continue;
      }

      // Workstation crash injection (crash + recovery, the DA carries
      // on with forward recovery).
      if (options_.workstation_crash_probability > 0 &&
          crash_rng_.Chance(options_.workstation_crash_probability)) {
        NodeId ws = (*system_->cm().GetDa(da))->workstation;
        system_->CrashWorkstation(ws);
        CONCORD_RETURN_NOT_OK(system_->RecoverWorkstation(ws));
        ++report.workstation_crashes;
      }
    }
    // Server crash injection between rounds.
    if (options_.server_crash_probability > 0 &&
        crash_rng_.Chance(options_.server_crash_probability)) {
      system_->CrashServer();
      CONCORD_RETURN_NOT_OK(system_->RecoverServer());
      ++report.server_crashes;
    }
  }

  for (size_t shard = 0; shard < system_->server_node_count(); ++shard) {
    report.per_node_round_trips.push_back(
        system_->rpc().CallsTo(system_->server_node_at(shard)));
  }
  report.sim_time = system_->clock().Now();
  for (DaId da : das_) {
    NodeId ws = (*system_->cm().GetDa(da))->workstation;
    // Commit counting is client-side: exactly one per DOP, however
    // many server nodes a cross-shard End-of-DOP fanned out to (each
    // participant's ServerTm counter would count its own leg).
    report.dops_committed += system_->client_tm(ws).stats().dops_committed;
    report.work_units_lost +=
        system_->client_tm(ws).stats().work_units_lost;
    report.checkouts_from_cache +=
        system_->client_tm(ws).stats().checkouts_from_cache;
    report.checkouts_from_server +=
        system_->client_tm(ws).stats().checkouts_from_server;
    report.batched_checkin_commits +=
        system_->client_tm(ws).stats().batched_checkin_commits;
    report.cross_shard_interactions +=
        system_->client_tm(ws).stats().cross_shard_interactions;
    report.placement_refreshes +=
        system_->client_tm(ws).stats().placement_refreshes;
  }
  // Server-side totals aggregate on read: each addend is one
  // partition's private counter slice, summed here and only here.
  for (size_t shard = 0; shard < system_->server_node_count(); ++shard) {
    txn::ServerTmStats node = system_->server_tm_at(shard).stats();
    report.server_checkouts += node.checkouts;
    report.server_checkins += node.checkins;
    report.cross_partition_ops += node.cross_partition_ops;
  }
  txn::ServerTm& coordinator = system_->server_tm();
  for (size_t p = 0; p < coordinator.partition_count(); ++p) {
    report.per_partition_checkouts.push_back(
        coordinator.partition_stats(p).checkouts);
  }
  report.cache_invalidations_delivered =
      system_->invalidation_bus().stats().deliveries;
  report.rpc_calls = system_->rpc().stats().calls;
  report.rpc_retries = system_->rpc().stats().retries;
  if (remaining > 0) {
    return Status::Internal("simulation exceeded its step budget with " +
                            std::to_string(remaining) + " designs open");
  }
  return report;
}

}  // namespace concord::sim
