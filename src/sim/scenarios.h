#ifndef CONCORD_SIM_SCENARIOS_H_
#define CONCORD_SIM_SCENARIOS_H_

#include <string>
#include <vector>

#include "core/concord_system.h"
#include "sim/metrics.h"

namespace concord::sim {

/// The full design-plane script (Fig. 2 traversal): structure
/// synthesis, shape-function generation, pad-frame edit, chip
/// planning, chip assembly. Satisfies the registered VLSI domain
/// constraints by construction.
workflow::Script MakeFullDesignScript();

/// The chip-planning script of Fig. 3 with designer re-iterations of
/// the planning step.
workflow::Script MakeChipPlanningScript(int max_replans = 3);

/// The Fig. 6a script: structure synthesis, then an `open` segment,
/// then chip assembly.
workflow::Script MakeOpenScript();

/// The Fig. 6b script: shape-function generation followed by a choice
/// among three alternative planning methods.
workflow::Script MakeAlternativesScript();

/// Specification for a chip/module DA: area and width limits plus the
/// domain goal.
storage::DesignSpecification MakeSpec(double max_area, double max_width,
                                      const std::string& goal_domain);

/// Sets up one DA that traverses the whole design plane on a fresh
/// workstation: creates the workstation, DA (with seed behavioral
/// object of the given complexity) — caller then StartDa + RunDa.
Result<DaId> SetupTopLevelDa(core::ConcordSystem* system,
                             const std::string& name, int complexity,
                             double max_area, double max_width);

/// Result of the Fig. 5 delegation scenario.
struct DelegationResult {
  DaId top;
  std::vector<DaId> subs;
  /// Sub-DA that reported Sub_DA_Impossible_Specification (invalid if
  /// none did).
  DaId impossible_sub;
  int replans = 0;
  double final_area = 0;
};

/// Runs the delegation scenario of Fig. 5 on `system`: a top-level DA
/// plans cell 0, then delegates each placed subcell to its own sub-DA
/// on its own workstation. Sub-DA specs derive from the floorplan
/// interfaces; `squeeze` shrinks one sub-DA's area budget so it reports
/// an impossible specification, which the super-DA resolves by
/// re-balancing the sibling budgets (the DA2/DA3 story of Sect. 4.1).
Result<DelegationResult> RunDelegationScenario(core::ConcordSystem* system,
                                               int complexity, bool squeeze,
                                               MetricsCollector* metrics);

/// Result of the concurrent-DOP scenario.
struct ConcurrentDopResult {
  /// Highest number of DOPs simultaneously open at the workstation's
  /// client-TM (the async-engine concurrency evidence).
  uint64_t peak_dops_in_flight = 0;
  uint64_t dops_committed = 0;
};

/// Async-engine scenario: ONE workstation opens `dops` tool runs on a
/// single DA through the split BeginToolRun/FinishToolRun path — all
/// Begin-of-DOPs (with input checkout) first, then all finishes — so
/// `dops` DOPs are simultaneously in flight at one client-TM. Every
/// DOP derives from the DA's seed object (sibling derivations of one
/// version, Sect. 3's version graph fan-out).
Result<ConcurrentDopResult> RunConcurrentDopScenario(
    core::ConcordSystem* system, int dops, int complexity = 5);

}  // namespace concord::sim

#endif  // CONCORD_SIM_SCENARIOS_H_
