#ifndef CONCORD_SIM_METRICS_H_
#define CONCORD_SIM_METRICS_H_

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

namespace concord::sim {

/// Summary statistics over one metric series.
struct Summary {
  size_t count = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
};

/// A named collection of measurement series — the benches use this to
/// print the per-figure result rows.
class MetricsCollector {
 public:
  void Record(const std::string& series, double value) {
    series_[series].push_back(value);
  }
  void Count(const std::string& counter, int64_t delta = 1) {
    counters_[counter] += delta;
  }

  Summary Summarize(const std::string& series) const {
    Summary s;
    auto it = series_.find(series);
    if (it == series_.end() || it->second.empty()) return s;
    std::vector<double> sorted = it->second;
    std::sort(sorted.begin(), sorted.end());
    s.count = sorted.size();
    s.min = sorted.front();
    s.max = sorted.back();
    double total = 0;
    for (double v : sorted) total += v;
    s.mean = total / static_cast<double>(sorted.size());
    s.p50 = sorted[sorted.size() / 2];
    s.p95 = sorted[std::min(sorted.size() - 1,
                            static_cast<size_t>(
                                std::ceil(0.95 * sorted.size())))];
    return s;
  }

  int64_t counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  const std::map<std::string, std::vector<double>>& all_series() const {
    return series_;
  }

 private:
  std::map<std::string, std::vector<double>> series_;
  std::map<std::string, int64_t> counters_;
};

}  // namespace concord::sim

#endif  // CONCORD_SIM_METRICS_H_
