#include "sim/scenarios.h"

#include <algorithm>

#include "common/logging.h"
#include "vlsi/floorplan.h"
#include "vlsi/tools.h"

namespace concord::sim {

using workflow::Script;
using workflow::ScriptNode;

Script MakeFullDesignScript() {
  std::vector<std::unique_ptr<ScriptNode>> steps;
  steps.push_back(ScriptNode::Dop(vlsi::kToolStructureSynthesis));
  steps.push_back(ScriptNode::Dop(vlsi::kToolShapeFunctionGen));
  steps.push_back(ScriptNode::Dop(vlsi::kToolPadFrameEdit));
  steps.push_back(ScriptNode::Dop(vlsi::kToolChipPlanning));
  steps.push_back(ScriptNode::Dop(vlsi::kToolChipAssembly));
  return Script("full_design", ScriptNode::Sequence(std::move(steps)));
}

Script MakeChipPlanningScript(int max_replans) {
  std::vector<std::unique_ptr<ScriptNode>> steps;
  steps.push_back(ScriptNode::Dop(vlsi::kToolStructureSynthesis));
  steps.push_back(ScriptNode::Dop(vlsi::kToolShapeFunctionGen));
  steps.push_back(ScriptNode::Iteration(
      ScriptNode::Dop(vlsi::kToolChipPlanning), max_replans));
  return Script("chip_planning", ScriptNode::Sequence(std::move(steps)));
}

Script MakeOpenScript() {
  // Fig. 6a: structure synthesis ... open ... chip assembly. (The open
  // segment must supply shape functions + planning for assembly's
  // domain precondition to hold at run time.)
  std::vector<std::unique_ptr<ScriptNode>> steps;
  steps.push_back(ScriptNode::Dop(vlsi::kToolStructureSynthesis));
  steps.push_back(ScriptNode::Open());
  steps.push_back(ScriptNode::Dop(vlsi::kToolChipAssembly));
  return Script("fig6a_open", ScriptNode::Sequence(std::move(steps)));
}

Script MakeAlternativesScript() {
  // Fig. 6b: after shape-function generation the designer chooses among
  // three methods (direct planning / repartition first / replan twice).
  std::vector<std::unique_ptr<ScriptNode>> alt;
  alt.push_back(ScriptNode::Dop(vlsi::kToolChipPlanning));
  {
    std::vector<std::unique_ptr<ScriptNode>> path;
    path.push_back(ScriptNode::Dop(vlsi::kToolRepartitioning));
    path.push_back(ScriptNode::Dop(vlsi::kToolShapeFunctionGen));
    path.push_back(ScriptNode::Dop(vlsi::kToolChipPlanning));
    alt.push_back(ScriptNode::Sequence(std::move(path)));
  }
  alt.push_back(ScriptNode::Iteration(
      ScriptNode::Dop(vlsi::kToolChipPlanning), 2));

  std::vector<std::unique_ptr<ScriptNode>> steps;
  steps.push_back(ScriptNode::Dop(vlsi::kToolStructureSynthesis));
  steps.push_back(ScriptNode::Dop(vlsi::kToolShapeFunctionGen));
  steps.push_back(ScriptNode::Alternative(std::move(alt)));
  return Script("fig6b_alternatives", ScriptNode::Sequence(std::move(steps)));
}

storage::DesignSpecification MakeSpec(double max_area, double max_width,
                                      const std::string& goal_domain) {
  storage::DesignSpecification spec;
  spec.Add(storage::Feature::AtMost("area_limit", vlsi::kAttrArea, max_area));
  if (max_width > 0) {
    spec.Add(
        storage::Feature::AtMost("width_limit", vlsi::kAttrWidth, max_width));
  }
  spec.Add(storage::Feature::Equals("goal_domain", vlsi::kAttrDomain,
                                    goal_domain));
  return spec;
}

Result<DaId> SetupTopLevelDa(core::ConcordSystem* system,
                             const std::string& name, int complexity,
                             double max_area, double max_width) {
  NodeId ws = system->AddWorkstation("ws_" + name);
  cooperation::DaDescription description;
  description.dot = system->dots().chip;
  description.spec = MakeSpec(max_area, max_width, vlsi::kDomainMaskLayout);
  description.designer = DesignerId(1);
  description.dc = MakeFullDesignScript();
  description.workstation = ws;
  CONCORD_ASSIGN_OR_RETURN(DaId da,
                           system->InitDesign(std::move(description)));
  CONCORD_RETURN_NOT_OK(system->SetSeedObject(
      da, vlsi::MakeBehavioralChip(system->dots(), name, complexity)));
  return da;
}

namespace {

/// Runs a sub-DA to completion, evaluates its current version and
/// reports ready/impossible to the CM. Returns true if final.
Result<bool> FinishSubDa(core::ConcordSystem* system, DaId sub) {
  CONCORD_RETURN_NOT_OK(system->RunDa(sub));
  CONCORD_ASSIGN_OR_RETURN(DovId current, system->CurrentVersion(sub));
  CONCORD_ASSIGN_OR_RETURN(storage::QualityState quality,
                           system->cm().Evaluate(sub, current));
  if (quality.is_final()) {
    CONCORD_RETURN_NOT_OK(system->cm().SubDaReadyToCommit(sub));
    return true;
  }
  CONCORD_RETURN_NOT_OK(system->cm().SubDaImpossibleSpecification(
      sub, "unfulfilled: " +
               (quality.unfulfilled.empty() ? std::string("?")
                                            : quality.unfulfilled.front())));
  return false;
}

}  // namespace

Result<DelegationResult> RunDelegationScenario(core::ConcordSystem* system,
                                               int complexity, bool squeeze,
                                               MetricsCollector* metrics) {
  DelegationResult result;

  // --- Top-level DA plans cell 0 (Fig. 5, DA1). ---------------------
  NodeId top_ws = system->AddWorkstation("ws_top");
  cooperation::DaDescription top_desc;
  top_desc.dot = system->dots().chip;
  top_desc.spec = MakeSpec(1e9, 0, vlsi::kDomainFloorplan);
  top_desc.designer = DesignerId(1);
  top_desc.dc = MakeChipPlanningScript(1);
  top_desc.workstation = top_ws;
  CONCORD_ASSIGN_OR_RETURN(result.top,
                           system->InitDesign(std::move(top_desc)));
  CONCORD_RETURN_NOT_OK(system->SetSeedObject(
      result.top,
      vlsi::MakeBehavioralChip(system->dots(), "cell0", complexity)));
  CONCORD_RETURN_NOT_OK(system->StartDa(result.top));
  CONCORD_RETURN_NOT_OK(system->RunDa(result.top));

  CONCORD_ASSIGN_OR_RETURN(DovId plan_dov,
                           system->CurrentVersion(result.top));
  CONCORD_ASSIGN_OR_RETURN(storage::DovRecord plan_record,
                           system->repository().Get(plan_dov));
  CONCORD_ASSIGN_OR_RETURN(storage::AttrValue fp_attr,
                           plan_record.data.GetAttr(vlsi::kAttrFloorplan));
  CONCORD_ASSIGN_OR_RETURN(vlsi::Floorplan floorplan,
                           vlsi::Floorplan::Deserialize(fp_attr.as_string()));
  if (metrics != nullptr) {
    metrics->Record("top_plan_area", floorplan.Area());
    metrics->Record("subcells", static_cast<double>(floorplan.cells.size()));
  }

  // --- Delegate each placed subcell (Fig. 5, DA2..DA5). -------------
  // "This leads to the floorplan contents ... which is the basis for
  // delegating further planning steps on the subordinate hierarchy
  // level."
  int index = 0;
  std::vector<double> budgets;
  for (const vlsi::PlacedCell& cell : floorplan.cells) {
    NodeId ws = system->AddWorkstation("ws_sub" + std::to_string(index));
    // The sub-DA re-synthesizes its module at its own level of detail,
    // so budgets are set for the expanded design, not the parent's
    // abstract placement estimate. The squeezed DA gets a budget no
    // plan can meet (the DA2 story of Sect. 4.1).
    double budget = 1e6;
    if (squeeze && index == 0) budget = 0.5;
    budgets.push_back(budget);

    cooperation::DaDescription sub_desc;
    sub_desc.dot = system->dots().module;
    sub_desc.spec = MakeSpec(budget, 0, vlsi::kDomainFloorplan);
    sub_desc.designer = DesignerId(2 + index);
    sub_desc.dc = MakeChipPlanningScript(1);
    sub_desc.workstation = ws;
    CONCORD_ASSIGN_OR_RETURN(DaId sub,
                             system->CreateSubDa(result.top, sub_desc));
    CONCORD_RETURN_NOT_OK(system->SetSeedObject(
        sub, [&] {
          storage::DesignObject seed(system->dots().module);
          seed.SetAttr(vlsi::kAttrName, cell.name);
          seed.SetAttr(vlsi::kAttrDomain, vlsi::kDomainBehavior);
          seed.SetAttr(vlsi::kAttrBehavior,
                       "MODULE " + cell.name + " COMPLEXITY " +
                           std::to_string(std::max(2, complexity / 2)));
          seed.SetAttr(vlsi::kAttrPinCount, int64_t{8});
          return seed;
        }()));
    CONCORD_RETURN_NOT_OK(system->StartDa(sub));
    result.subs.push_back(sub);
    ++index;
  }

  // --- Run the sub-DAs; collect impossible-spec reports. -------------
  std::vector<DaId> needs_replan;
  for (size_t i = 0; i < result.subs.size(); ++i) {
    CONCORD_ASSIGN_OR_RETURN(bool final, FinishSubDa(system, result.subs[i]));
    if (!final) {
      result.impossible_sub = result.subs[i];
      needs_replan.push_back(result.subs[i]);
    }
  }

  // --- Super-DA resolves the conflict (the DA2/DA3 story): give the
  // squeezed sub-DA more area and its largest sibling less. -----------
  for (DaId sub : needs_replan) {
    size_t sub_index = 0;
    for (size_t i = 0; i < result.subs.size(); ++i) {
      if (result.subs[i] == sub) sub_index = i;
    }
    size_t donor = (sub_index + 1) % result.subs.size();
    double transfer = budgets[donor] * 0.4;
    budgets[sub_index] += transfer;
    budgets[donor] -= transfer;

    CONCORD_RETURN_NOT_OK(system->cm().ModifySubDaSpecification(
        result.top, sub,
        MakeSpec(budgets[sub_index], 0, vlsi::kDomainFloorplan)));
    if (result.subs[donor] != sub) {
      CONCORD_RETURN_NOT_OK(system->cm().ModifySubDaSpecification(
          result.top, result.subs[donor],
          MakeSpec(budgets[donor], 0, vlsi::kDomainFloorplan)));
    }
    ++result.replans;
    // Both affected DAs re-run with the modified specs.
    CONCORD_ASSIGN_OR_RETURN(bool final_now, FinishSubDa(system, sub));
    if (!final_now) {
      return Status::Internal(sub.ToString() +
                              " still impossible after re-balancing");
    }
    if (result.subs[donor] != sub) {
      CONCORD_ASSIGN_OR_RETURN(bool donor_ok,
                               FinishSubDa(system, result.subs[donor]));
      if (!donor_ok) {
        return Status::Internal("donor " + result.subs[donor].ToString() +
                                " became impossible after re-balancing");
      }
    }
  }

  // --- Terminate the hierarchy bottom-up. ----------------------------
  double total_sub_area = 0;
  for (DaId sub : result.subs) {
    auto activity = system->cm().GetDa(sub);
    if (activity.ok() && !(*activity)->final_dovs.empty()) {
      auto record = system->repository().Get((*activity)->final_dovs.front());
      if (record.ok()) {
        auto area = record->data.GetNumeric(vlsi::kAttrArea);
        if (area.ok()) total_sub_area += *area;
      }
    }
    CONCORD_RETURN_NOT_OK(system->cm().TerminateSubDa(result.top, sub));
  }
  result.final_area = total_sub_area;
  if (metrics != nullptr) {
    metrics->Record("final_sub_area_total", total_sub_area);
    metrics->Count("replans", result.replans);
  }
  // Synthesis of the delivered results: one configuration binding the
  // top-level floorplan to the chosen final DOV of each sub-task.
  CONCORD_RETURN_NOT_OK(
      system->cm()
          .ComposeConfiguration(result.top, "fig5_composition", plan_dov)
          .status());
  CONCORD_RETURN_NOT_OK(system->cm().CompleteDesign(result.top));
  return result;
}

Result<ConcurrentDopResult> RunConcurrentDopScenario(
    core::ConcordSystem* system, int dops, int complexity) {
  CONCORD_ASSIGN_OR_RETURN(
      DaId da, SetupTopLevelDa(system, "concurrent", complexity, 1e9, 0));
  CONCORD_RETURN_NOT_OK(system->StartDa(da));
  NodeId ws = (*system->cm().GetDa(da))->workstation;

  // Phase 1: open every DOP (Begin-of-DOP + checkout of the seed /
  // initial input). Nothing finishes yet, so the in-flight gauge climbs
  // to `dops`.
  std::vector<core::ConcordSystem::ToolRun> open;
  open.reserve(static_cast<size_t>(dops));
  for (int i = 0; i < dops; ++i) {
    CONCORD_ASSIGN_OR_RETURN(
        core::ConcordSystem::ToolRun run,
        system->BeginToolRun(da, vlsi::kToolStructureSynthesis));
    open.push_back(std::move(run));
  }

  ConcurrentDopResult result;
  result.peak_dops_in_flight =
      system->client_tm(ws).stats().peak_dops_in_flight;

  // Phase 2: run the tools and commit. Tool aborts are fine — the
  // scenario measures concurrency, not yield.
  for (auto& run : open) {
    CONCORD_RETURN_NOT_OK(system->FinishToolRun(std::move(run)).status());
  }
  result.dops_committed = system->client_tm(ws).stats().dops_committed;
  return result;
}

}  // namespace concord::sim
