#include "common/clock.h"

#include <cassert>
#include <cstdio>

namespace concord {

std::string FormatSimTime(SimTime t) {
  // Formatted into a stack buffer rather than std::string operator+ /
  // append chains: GCC 12's Release-mode inliner flags those with a
  // false-positive -Werror=restrict (overlapping memcpy) diagnostic.
  const char* sign = "";
  if (t < 0) {
    sign = "-";
    t = -t;
  }
  char buf[64];
  if (t < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%s%lldus", sign,
                  static_cast<long long>(t));
  } else if (t < kSecond) {
    std::snprintf(buf, sizeof(buf), "%s%lldms", sign,
                  static_cast<long long>(t / kMillisecond));
  } else if (t < kMinute) {
    std::snprintf(buf, sizeof(buf), "%s%lld.%llds", sign,
                  static_cast<long long>(t / kSecond),
                  static_cast<long long>((t % kSecond) / (100 * kMillisecond)));
  } else if (t < kHour) {
    std::snprintf(buf, sizeof(buf), "%s%lldm%llds", sign,
                  static_cast<long long>(t / kMinute),
                  static_cast<long long>((t % kMinute) / kSecond));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%lldh%lldm", sign,
                  static_cast<long long>(t / kHour),
                  static_cast<long long>((t % kHour) / kMinute));
  }
  return buf;
}

SimTime SimClock::Advance(SimTime delta) {
  assert(delta >= 0 && "SimClock cannot go backwards");
  return now_.fetch_add(delta, std::memory_order_relaxed) + delta;
}

void SimClock::AdvanceTo(SimTime t) {
  // CAS-max: never move backwards even when racing other advancers.
  SimTime current = now_.load(std::memory_order_relaxed);
  while (t > current &&
         !now_.compare_exchange_weak(current, t, std::memory_order_relaxed)) {
  }
}

}  // namespace concord
