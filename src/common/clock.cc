#include "common/clock.h"

#include <cassert>

namespace concord {

std::string FormatSimTime(SimTime t) {
  if (t < 0) return "-" + FormatSimTime(-t);
  if (t < kMillisecond) return std::to_string(t) + "us";
  if (t < kSecond) return std::to_string(t / kMillisecond) + "ms";
  if (t < kMinute) {
    return std::to_string(t / kSecond) + "." +
           std::to_string((t % kSecond) / (100 * kMillisecond)) + "s";
  }
  if (t < kHour) {
    return std::to_string(t / kMinute) + "m" +
           std::to_string((t % kMinute) / kSecond) + "s";
  }
  return std::to_string(t / kHour) + "h" +
         std::to_string((t % kHour) / kMinute) + "m";
}

SimTime SimClock::Advance(SimTime delta) {
  assert(delta >= 0 && "SimClock cannot go backwards");
  now_ += delta;
  return now_;
}

void SimClock::AdvanceTo(SimTime t) {
  if (t > now_) now_ = t;
}

}  // namespace concord
