#include "common/logging.h"

#include <iostream>

namespace concord {

const char* LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

Logger& Logger::Get() {
  static Logger* instance = new Logger();
  return *instance;
}

void Logger::Log(LogLevel level, const std::string& component,
                 const std::string& message) {
  if (hook_) {
    hook_(LogRecord{level, component, message});
    return;
  }
  if (level < min_level_) return;
  std::cerr << "[" << LogLevelToString(level) << "][" << component << "] "
            << message << "\n";
}

void Logger::SetHook(Hook hook) { hook_ = std::move(hook); }

ScopedLogCapture::ScopedLogCapture()
    : previous_min_(Logger::Get().min_level()) {
  Logger::Get().SetMinLevel(LogLevel::kDebug);
  Logger::Get().SetHook(
      [this](const LogRecord& rec) { records_.push_back(rec); });
}

ScopedLogCapture::~ScopedLogCapture() {
  Logger::Get().SetHook(nullptr);
  Logger::Get().SetMinLevel(previous_min_);
}

int ScopedLogCapture::CountContaining(const std::string& substring) const {
  int count = 0;
  for (const auto& rec : records_) {
    if (rec.message.find(substring) != std::string::npos) ++count;
  }
  return count;
}

}  // namespace concord
