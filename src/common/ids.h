#ifndef CONCORD_COMMON_IDS_H_
#define CONCORD_COMMON_IDS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace concord {

/// Strongly-typed integer id. Each CONCORD entity gets its own Tag so
/// that, e.g., a design-activity id cannot be passed where a version id
/// is expected. Id 0 is reserved as "invalid".
template <typename Tag>
class Id {
 public:
  constexpr Id() : value_(0) {}
  constexpr explicit Id(uint64_t value) : value_(value) {}

  constexpr uint64_t value() const { return value_; }
  constexpr bool valid() const { return value_ != 0; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }

  std::string ToString() const {
    return std::string(Tag::kPrefix) + std::to_string(value_);
  }

 private:
  uint64_t value_;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, Id<Tag> id) {
  return os << id.ToString();
}

struct DaTag { static constexpr const char* kPrefix = "DA"; };
struct DovTag { static constexpr const char* kPrefix = "DOV"; };
struct DopTag { static constexpr const char* kPrefix = "DOP"; };
struct DotTag { static constexpr const char* kPrefix = "DOT"; };
struct DesignerTag { static constexpr const char* kPrefix = "DSGR"; };
struct NodeTag { static constexpr const char* kPrefix = "NODE"; };
struct TxnTag { static constexpr const char* kPrefix = "TXN"; };
struct RelTag { static constexpr const char* kPrefix = "REL"; };
struct RuleTag { static constexpr const char* kPrefix = "RULE"; };
struct MsgTag { static constexpr const char* kPrefix = "MSG"; };
struct CellTag { static constexpr const char* kPrefix = "CELL"; };

/// Design activity (AC level).
using DaId = Id<DaTag>;
/// Design object version (repository).
using DovId = Id<DovTag>;
/// Design operation — one long ACID transaction (TE level).
using DopId = Id<DopTag>;
/// Design object type (schema).
using DotId = Id<DotTag>;
/// A human designer (or scripted designer agent).
using DesignerId = Id<DesignerTag>;
/// A machine in the simulated workstation/server network.
using NodeId = Id<NodeTag>;
/// A repository-level transaction.
using TxnId = Id<TxnTag>;
/// A cooperation relationship (delegation/negotiation/usage).
using RelId = Id<RelTag>;
/// An ECA rule registered with a design manager.
using RuleId = Id<RuleTag>;
/// A message on the simulated LAN.
using MsgId = Id<MsgTag>;
/// A cell in the VLSI cell hierarchy.
using CellId = Id<CellTag>;

/// DOV ids are namespaced by the server shard that created them: the
/// top 16 bits carry the shard index, the low 48 bits the shard-local
/// counter. Both sides of the wire can therefore route a DOV to its
/// owning server node without a placement lookup — the id IS the
/// address — and per-shard repositories never collide on ids. Shard 0
/// (the single-server default) produces exactly the ids the
/// un-sharded system always produced.
inline constexpr int kDovShardShift = 48;
inline constexpr uint64_t kDovLocalMask =
    (uint64_t{1} << kDovShardShift) - 1;

/// Shard index encoded in a DOV id (0 for single-server ids).
inline constexpr uint32_t DovShardOf(DovId dov) {
  return static_cast<uint32_t>(dov.value() >> kDovShardShift);
}

/// The shard-local counter part of a DOV id.
inline constexpr uint64_t DovLocalOf(DovId dov) {
  return dov.value() & kDovLocalMask;
}

/// Shard index of `dov` clamped to a plane of `shard_count` nodes: an
/// out-of-range index (corrupt or future id) routes to the coordinator
/// (shard 0), whose repository answers NotFound — the single policy
/// every router (ShardRouter, RepositoryRouter, LockRouter, the
/// invalidation sink) applies to unroutable ids.
inline constexpr size_t DovShardClamped(DovId dov, size_t shard_count) {
  uint32_t shard = DovShardOf(dov);
  return shard < shard_count ? shard : 0;
}

// --- Server-side execution partitioning (txn/partition.h) ----------------
//
// Each server node runs K single-threaded executor partitions; every
// piece of TM state is owned by exactly one of them, and an id routes
// all operations on that state to its owner. DOV ids partition on the
// shard-local counter (sequential per shard, so modulo-K spreads them
// uniformly AND the repository's per-partition sub-shards agree with
// the lock tables about who owns a DOV). DOP and TXN ids carry a
// workstation namespace in their high bits, so they run through a
// 64-bit finalizer first — raw modulo would be fine for the low
// counter bits but the mix keeps the spread independent of how the
// namespace is packed.

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mix.
inline constexpr uint64_t IdMix64(uint64_t v) {
  v ^= v >> 33;
  v *= 0xff51afd7ed558ccdULL;
  v ^= v >> 33;
  v *= 0xc4ceb9fe1a85ec53ULL;
  v ^= v >> 33;
  return v;
}

/// Executor partition owning `dov` on a node with `partitions`
/// executors. Partition 0 (the single-executor default) owns all ids.
inline constexpr size_t DovPartitionOf(DovId dov, size_t partitions) {
  return partitions <= 1 ? 0
                         : static_cast<size_t>(DovLocalOf(dov) % partitions);
}

/// Executor partition owning the registration state of `dop`.
inline constexpr size_t DopPartitionOf(DopId dop, size_t partitions) {
  return partitions <= 1 ? 0
                         : static_cast<size_t>(IdMix64(dop.value()) %
                                               partitions);
}

/// Executor partition owning the prepared-2PC ledger entry of `txn`.
inline constexpr size_t TxnPartitionOf(TxnId txn, size_t partitions) {
  return partitions <= 1 ? 0
                         : static_cast<size_t>(IdMix64(txn.value()) %
                                               partitions);
}

/// Monotonic id generator. Thread-safe: ids may be drawn concurrently
/// (e.g. parallel checkins asking the repository for fresh DOV ids);
/// single-threaded components pay one uncontended atomic increment,
/// which keeps deterministic runs deterministic.
template <typename IdType>
class IdGenerator {
 public:
  IdType Next() {
    return IdType(last_.fetch_add(1, std::memory_order_relaxed) + 1);
  }
  uint64_t last() const { return last_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> last_{0};
};

}  // namespace concord

namespace std {
template <typename Tag>
struct hash<concord::Id<Tag>> {
  size_t operator()(concord::Id<Tag> id) const noexcept {
    return std::hash<uint64_t>()(id.value());
  }
};
}  // namespace std

#endif  // CONCORD_COMMON_IDS_H_
