#ifndef CONCORD_COMMON_IDS_H_
#define CONCORD_COMMON_IDS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace concord {

/// Strongly-typed integer id. Each CONCORD entity gets its own Tag so
/// that, e.g., a design-activity id cannot be passed where a version id
/// is expected. Id 0 is reserved as "invalid".
template <typename Tag>
class Id {
 public:
  constexpr Id() : value_(0) {}
  constexpr explicit Id(uint64_t value) : value_(value) {}

  constexpr uint64_t value() const { return value_; }
  constexpr bool valid() const { return value_ != 0; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }

  std::string ToString() const {
    return std::string(Tag::kPrefix) + std::to_string(value_);
  }

 private:
  uint64_t value_;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, Id<Tag> id) {
  return os << id.ToString();
}

struct DaTag { static constexpr const char* kPrefix = "DA"; };
struct DovTag { static constexpr const char* kPrefix = "DOV"; };
struct DopTag { static constexpr const char* kPrefix = "DOP"; };
struct DotTag { static constexpr const char* kPrefix = "DOT"; };
struct DesignerTag { static constexpr const char* kPrefix = "DSGR"; };
struct NodeTag { static constexpr const char* kPrefix = "NODE"; };
struct TxnTag { static constexpr const char* kPrefix = "TXN"; };
struct RelTag { static constexpr const char* kPrefix = "REL"; };
struct RuleTag { static constexpr const char* kPrefix = "RULE"; };
struct MsgTag { static constexpr const char* kPrefix = "MSG"; };
struct CellTag { static constexpr const char* kPrefix = "CELL"; };

/// Design activity (AC level).
using DaId = Id<DaTag>;
/// Design object version (repository).
using DovId = Id<DovTag>;
/// Design operation — one long ACID transaction (TE level).
using DopId = Id<DopTag>;
/// Design object type (schema).
using DotId = Id<DotTag>;
/// A human designer (or scripted designer agent).
using DesignerId = Id<DesignerTag>;
/// A machine in the simulated workstation/server network.
using NodeId = Id<NodeTag>;
/// A repository-level transaction.
using TxnId = Id<TxnTag>;
/// A cooperation relationship (delegation/negotiation/usage).
using RelId = Id<RelTag>;
/// An ECA rule registered with a design manager.
using RuleId = Id<RuleTag>;
/// A message on the simulated LAN.
using MsgId = Id<MsgTag>;
/// A cell in the VLSI cell hierarchy.
using CellId = Id<CellTag>;

/// DOV ids are namespaced by the server shard that created them: the
/// top 16 bits carry the shard index, the low 48 bits the shard-local
/// counter. Both sides of the wire can therefore route a DOV to its
/// owning server node without a placement lookup — the id IS the
/// address — and per-shard repositories never collide on ids. Shard 0
/// (the single-server default) produces exactly the ids the
/// un-sharded system always produced.
inline constexpr int kDovShardShift = 48;
inline constexpr uint64_t kDovLocalMask =
    (uint64_t{1} << kDovShardShift) - 1;

/// Shard index encoded in a DOV id (0 for single-server ids).
inline constexpr uint32_t DovShardOf(DovId dov) {
  return static_cast<uint32_t>(dov.value() >> kDovShardShift);
}

/// The shard-local counter part of a DOV id.
inline constexpr uint64_t DovLocalOf(DovId dov) {
  return dov.value() & kDovLocalMask;
}

/// Shard index of `dov` clamped to a plane of `shard_count` nodes: an
/// out-of-range index (corrupt or future id) routes to the coordinator
/// (shard 0), whose repository answers NotFound — the single policy
/// every router (ShardRouter, RepositoryRouter, LockRouter, the
/// invalidation sink) applies to unroutable ids.
inline constexpr size_t DovShardClamped(DovId dov, size_t shard_count) {
  uint32_t shard = DovShardOf(dov);
  return shard < shard_count ? shard : 0;
}

/// Monotonic id generator. Thread-safe: ids may be drawn concurrently
/// (e.g. parallel checkins asking the repository for fresh DOV ids);
/// single-threaded components pay one uncontended atomic increment,
/// which keeps deterministic runs deterministic.
template <typename IdType>
class IdGenerator {
 public:
  IdType Next() {
    return IdType(last_.fetch_add(1, std::memory_order_relaxed) + 1);
  }
  uint64_t last() const { return last_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> last_{0};
};

}  // namespace concord

namespace std {
template <typename Tag>
struct hash<concord::Id<Tag>> {
  size_t operator()(concord::Id<Tag> id) const noexcept {
    return std::hash<uint64_t>()(id.value());
  }
};
}  // namespace std

#endif  // CONCORD_COMMON_IDS_H_
