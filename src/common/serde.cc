#include "common/serde.h"

#include <array>
#include <cstring>

namespace concord {

void PutByte(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutFixed32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(buf, 4);
}

void PutFixed64(std::string* out, uint64_t v) {
  PutFixed32(out, static_cast<uint32_t>(v & 0xffffffffu));
  PutFixed32(out, static_cast<uint32_t>(v >> 32));
}

void PutLengthPrefixed(std::string* out, std::string_view s) {
  PutFixed32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xffffffffu;
  for (char ch : data) {
    crc = kTable[(crc ^ static_cast<uint8_t>(ch)) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

bool ByteReader::ReadByte(uint8_t* v) {
  if (remaining() < 1) return false;
  *v = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool ByteReader::ReadFixed32(uint32_t* v) {
  if (remaining() < 4) return false;
  const auto* p = reinterpret_cast<const uint8_t*>(data_.data()) + pos_;
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
  pos_ += 4;
  return true;
}

bool ByteReader::ReadFixed64(uint64_t* v) {
  uint32_t lo = 0;
  uint32_t hi = 0;
  if (remaining() < 8 || !ReadFixed32(&lo) || !ReadFixed32(&hi)) return false;
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

bool ByteReader::ReadLengthPrefixed(std::string_view* s) {
  uint32_t len = 0;
  size_t saved = pos_;
  if (!ReadFixed32(&len)) return false;
  if (remaining() < len) {
    pos_ = saved;
    return false;
  }
  *s = data_.substr(pos_, len);
  pos_ += len;
  return true;
}

}  // namespace concord
