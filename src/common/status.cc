#include "common/status.h"

namespace concord {

namespace {
const std::string kEmptyString;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kPermissionDenied:
      return "permission denied";
    case StatusCode::kLockConflict:
      return "lock conflict";
    case StatusCode::kConstraintViolation:
      return "constraint violation";
    case StatusCode::kProtocolViolation:
      return "protocol violation";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kCrashed:
      return "crashed";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kUnknownDop:
      return "unknown dop";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kWrongShard:
      return "wrong shard";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return state_ ? state_->message : kEmptyString;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += state_->message;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace concord
