#ifndef CONCORD_COMMON_RANDOM_H_
#define CONCORD_COMMON_RANDOM_H_

#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace concord {

/// Deterministic RNG wrapper. All stochastic behaviour in the
/// simulation (tool run times, failure injection, workload mixes) draws
/// from an explicitly seeded Rng so runs are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t Uniform(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with probability `p`.
  bool Chance(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean) {
    assert(mean > 0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Picks a uniformly random element index for a container of `size`.
  size_t Index(size_t size) {
    assert(size > 0);
    return static_cast<size_t>(Uniform(0, static_cast<int64_t>(size) - 1));
  }

  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[Index(items.size())];
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace concord

#endif  // CONCORD_COMMON_RANDOM_H_
