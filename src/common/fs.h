#ifndef CONCORD_COMMON_FS_H_
#define CONCORD_COMMON_FS_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace concord {

/// Small POSIX file helpers with the durability semantics the storage
/// layer needs. All of them retry EINTR and report failures as Status —
/// callers decide whether a failure is fatal (a WAL losing its promise)
/// or recoverable (a snapshot write that can be retried later).

/// Reads the entire file into a string.
Result<std::string> ReadWholeFile(const std::string& path);

/// write(2)s the whole buffer to `fd`, retrying partial writes and
/// EINTR. Callers decide whether a failure is fatal.
Status WriteFully(int fd, std::string_view data);

/// Creates/overwrites `path` with `content` and fsyncs it before
/// closing. The file itself is durable on success; making the *name*
/// durable additionally requires FsyncDir on the parent directory
/// (after a rename, for atomic installs).
Status WriteFileDurably(const std::string& path, std::string_view content);

/// fsyncs a directory, making recent entry creates/renames/unlinks in
/// it durable.
Status FsyncDir(const std::string& dir);

}  // namespace concord

#endif  // CONCORD_COMMON_FS_H_
