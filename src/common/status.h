#ifndef CONCORD_COMMON_STATUS_H_
#define CONCORD_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

// The codebase requires C++20 (defaulted operator==, atomic generators).
// Fail loudly here — in the most widely included header — rather than
// with a cryptic error deep inside some translation unit.
static_assert(__cplusplus >= 202002L,
              "concord requires C++20; configure with CMAKE_CXX_STANDARD=20");

namespace concord {

/// Machine-readable category of a failure. The categories mirror the
/// failure situations called out in the CONCORD paper (Sect. 5):
/// protocol violations at the AC level, work-flow constraint violations
/// at the DC level, lock conflicts and integrity violations at the TE
/// level, and injected system failures (crashes, lost messages).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,  // e.g. DA not in the required state
  kPermissionDenied,    // e.g. DOV outside the DA's scope
  kLockConflict,        // incompatible derivation/scope lock
  kConstraintViolation, // schema or work-flow constraint violated
  kProtocolViolation,   // cooperation protocol misuse (Fig. 7)
  kAborted,             // transaction/DOP aborted
  kCrashed,             // injected workstation/server crash
  kUnavailable,         // component down or message undeliverable
  kUnknownDop,          // DOP registration lost in a server crash
  kInternal,
  // Appended after kInternal so the wire values of the older codes
  // never change (the ServerService codec ships these as raw bytes).
  kWrongShard,          // request routed to a server node that does not
                        // own the DA (stale workstation placement cache)
};

/// Returns the canonical lowercase name of `code` ("ok", "lock conflict", ...).
const char* StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object. Library code never throws; every
/// fallible operation returns a Status (or a Result<T>, see result.h).
///
/// The OK status is represented by a null state pointer, so returning
/// Status::OK() is allocation-free.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status LockConflict(std::string msg) {
    return Status(StatusCode::kLockConflict, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status ProtocolViolation(std::string msg) {
    return Status(StatusCode::kProtocolViolation, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Crashed(std::string msg) {
    return Status(StatusCode::kCrashed, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status UnknownDop(std::string msg) {
    return Status(StatusCode::kUnknownDop, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status WrongShard(std::string msg) {
    return Status(StatusCode::kWrongShard, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const;

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsLockConflict() const { return code() == StatusCode::kLockConflict; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsCrashed() const { return code() == StatusCode::kCrashed; }
  bool IsProtocolViolation() const {
    return code() == StatusCode::kProtocolViolation;
  }
  bool IsConstraintViolation() const {
    return code() == StatusCode::kConstraintViolation;
  }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsPermissionDenied() const {
    return code() == StatusCode::kPermissionDenied;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsUnknownDop() const { return code() == StatusCode::kUnknownDop; }
  bool IsWrongShard() const { return code() == StatusCode::kWrongShard; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace concord

/// Propagates a non-OK Status out of the current function.
#define CONCORD_RETURN_NOT_OK(expr)              \
  do {                                           \
    ::concord::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Assigns the value of a Result<T> expression to `lhs`, propagating
/// failure. `lhs` may include a declaration, e.g.
///   CONCORD_ASSIGN_OR_RETURN(auto dov, repo.Get(id));
#define CONCORD_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

#define CONCORD_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define CONCORD_ASSIGN_OR_RETURN_NAME(a, b) \
  CONCORD_ASSIGN_OR_RETURN_CONCAT(a, b)

#define CONCORD_ASSIGN_OR_RETURN(lhs, expr)                              \
  CONCORD_ASSIGN_OR_RETURN_IMPL(                                         \
      CONCORD_ASSIGN_OR_RETURN_NAME(_concord_result_, __LINE__), lhs, expr)

#endif  // CONCORD_COMMON_STATUS_H_
