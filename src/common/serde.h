#ifndef CONCORD_COMMON_SERDE_H_
#define CONCORD_COMMON_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace concord {

/// Binary serialization primitives shared by the storage layer's
/// on-disk formats (WAL records, checkpoint snapshots). Everything is
/// little-endian and fixed-width: the formats are read back by the same
/// build on the same machine class, and fixed-width keeps torn-write
/// detection trivial (a record is valid iff its length prefix and CRC
/// agree with the bytes on disk).

void PutByte(std::string* out, uint8_t v);
void PutFixed32(std::string* out, uint32_t v);
void PutFixed64(std::string* out, uint64_t v);
/// 32-bit length prefix followed by the raw bytes.
void PutLengthPrefixed(std::string* out, std::string_view s);

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over `data`. Used to
/// detect torn tail writes in WAL segments and bit rot in snapshots.
uint32_t Crc32(std::string_view data);

/// Bounds-checked sequential reader over an encoded buffer. Every
/// Read* returns false (leaving the output untouched) when fewer bytes
/// remain than the field needs; decoders bail out instead of reading
/// past the end of a corrupt buffer.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool ReadByte(uint8_t* v);
  bool ReadFixed32(uint32_t* v);
  bool ReadFixed64(uint64_t* v);
  /// Reads a 32-bit length prefix and yields a view of that many bytes.
  bool ReadLengthPrefixed(std::string_view* s);

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace concord

#endif  // CONCORD_COMMON_SERDE_H_
