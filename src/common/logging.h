#ifndef CONCORD_COMMON_LOGGING_H_
#define CONCORD_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>
#include <vector>

namespace concord {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

const char* LogLevelToString(LogLevel level);

/// A captured log record. Components tag records with the CONCORD
/// subsystem they originate from ("CM", "DM", "TM", "repo", ...), which
/// the tests use to assert protocol sequences.
struct LogRecord {
  LogLevel level;
  std::string component;
  std::string message;
};

/// Process-wide log sink. Default behaviour is to drop debug records
/// and print warnings/errors to stderr; tests install a capture hook.
class Logger {
 public:
  using Hook = std::function<void(const LogRecord&)>;

  static Logger& Get();

  void Log(LogLevel level, const std::string& component,
           const std::string& message);

  /// Replaces the sink; pass nullptr to restore the default.
  void SetHook(Hook hook);

  void SetMinLevel(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }

 private:
  Logger() = default;
  Hook hook_;
  LogLevel min_level_ = LogLevel::kWarning;
};

/// Installs a capturing hook for the lifetime of the object (RAII),
/// restoring the previous behaviour on destruction. Used by tests.
class ScopedLogCapture {
 public:
  ScopedLogCapture();
  ~ScopedLogCapture();
  ScopedLogCapture(const ScopedLogCapture&) = delete;
  ScopedLogCapture& operator=(const ScopedLogCapture&) = delete;

  const std::vector<LogRecord>& records() const { return records_; }
  /// Count of records whose message contains `substring`.
  int CountContaining(const std::string& substring) const;

 private:
  std::vector<LogRecord> records_;
  LogLevel previous_min_;
};

}  // namespace concord

#define CONCORD_LOG(level, component, msg_expr)                            \
  do {                                                                     \
    std::ostringstream _concord_log_os;                                    \
    _concord_log_os << msg_expr;                                           \
    ::concord::Logger::Get().Log(level, component, _concord_log_os.str()); \
  } while (0)

#define CONCORD_DEBUG(component, msg) \
  CONCORD_LOG(::concord::LogLevel::kDebug, component, msg)
#define CONCORD_INFO(component, msg) \
  CONCORD_LOG(::concord::LogLevel::kInfo, component, msg)
#define CONCORD_WARN(component, msg) \
  CONCORD_LOG(::concord::LogLevel::kWarning, component, msg)
#define CONCORD_ERROR(component, msg) \
  CONCORD_LOG(::concord::LogLevel::kError, component, msg)

#endif  // CONCORD_COMMON_LOGGING_H_
