#include "common/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace concord {

Result<std::string> ReadWholeFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  std::string content;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return Status::Internal("cannot read " + path + ": " +
                              std::strerror(err));
    }
    if (n == 0) break;
    content.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return content;
}

Status WriteFully(int fd, std::string_view data) {
  const char* p = data.data();
  size_t size = data.size();
  while (size > 0) {
    ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("write failed: ") +
                              std::strerror(errno));
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteFileDurably(const std::string& path, std::string_view content) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::Internal("cannot create " + path + ": " +
                            std::strerror(errno));
  }
  Status written = WriteFully(fd, content);
  if (!written.ok()) {
    ::close(fd);
    return Status::Internal("cannot write " + path + ": " +
                            written.message());
  }
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    return Status::Internal("cannot fsync " + path + ": " +
                            std::strerror(err));
  }
  ::close(fd);
  return Status::OK();
}

Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal("cannot open directory " + dir + ": " +
                            std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    return Status::Internal("cannot fsync directory " + dir + ": " +
                            std::strerror(err));
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace concord
