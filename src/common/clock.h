#ifndef CONCORD_COMMON_CLOCK_H_
#define CONCORD_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace concord {

/// Simulated time in microseconds. CONCORD models design sessions that
/// span hours or days; wall-clock time is useless for reproducible
/// experiments, so every component reads time from a SimClock owned by
/// the enclosing system/simulation.
using SimTime = int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;

/// Renders a SimTime as a human-readable duration ("2h03m", "15ms", ...).
std::string FormatSimTime(SimTime t);

/// A manually-advanced clock. Advancing never goes backwards.
/// Thread-safe: concurrent designers (client-TMs on benchmark/test
/// threads) all advance the one shared clock, so the counter is atomic.
/// Concurrent advances interleave in some serial order — fine for a
/// monotonic cost accumulator.
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(SimTime start) : now_(start) {}

  SimTime Now() const { return now_.load(std::memory_order_relaxed); }

  /// Moves time forward by `delta` (must be >= 0). Returns the new time.
  SimTime Advance(SimTime delta);

  /// Moves time forward to `t` if `t` is in the future; no-op otherwise.
  void AdvanceTo(SimTime t);

 private:
  std::atomic<SimTime> now_{0};
};

}  // namespace concord

#endif  // CONCORD_COMMON_CLOCK_H_
