#ifndef CONCORD_COMMON_CLOCK_H_
#define CONCORD_COMMON_CLOCK_H_

#include <cstdint>
#include <string>

namespace concord {

/// Simulated time in microseconds. CONCORD models design sessions that
/// span hours or days; wall-clock time is useless for reproducible
/// experiments, so every component reads time from a SimClock owned by
/// the enclosing system/simulation.
using SimTime = int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;

/// Renders a SimTime as a human-readable duration ("2h03m", "15ms", ...).
std::string FormatSimTime(SimTime t);

/// A manually-advanced clock. Advancing never goes backwards.
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(SimTime start) : now_(start) {}

  SimTime Now() const { return now_; }

  /// Moves time forward by `delta` (must be >= 0). Returns the new time.
  SimTime Advance(SimTime delta);

  /// Moves time forward to `t` if `t` is in the future; no-op otherwise.
  void AdvanceTo(SimTime t);

 private:
  SimTime now_ = 0;
};

}  // namespace concord

#endif  // CONCORD_COMMON_CLOCK_H_
