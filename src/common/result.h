#ifndef CONCORD_COMMON_RESULT_H_
#define CONCORD_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace concord {

/// Value-or-Status, modeled on arrow::Result. A Result is either an OK
/// status with a value, or a non-OK status. Constructing a Result from
/// an OK status without a value is a programming error.
template <typename T>
class Result {
 public:
  /// Implicit from a value (mirrors arrow::Result/absl::StatusOr).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!this->status().ok() && "Result constructed from OK status");
  }

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK if a value is held.
  Status status() const& {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `alternative` if this Result holds an error.
  T value_or(T alternative) const& {
    return ok() ? value() : std::move(alternative);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace concord

#endif  // CONCORD_COMMON_RESULT_H_
