#ifndef CONCORD_COMMON_STRINGS_H_
#define CONCORD_COMMON_STRINGS_H_

#include <string>

namespace concord {

/// Builds "<prefix><n>" in place. Use this instead of the natural
/// `"prefix" + std::to_string(n)`: that expression routes through
/// std::operator+(const char*, std::string&&), whose inlined insert
/// GCC 12 flags with a false-positive -Werror=restrict (overlapping
/// memcpy) diagnostic in Release builds.
inline std::string IndexedName(const char* prefix, long long n) {
  std::string out(prefix);
  out += std::to_string(n);
  return out;
}

}  // namespace concord

#endif  // CONCORD_COMMON_STRINGS_H_
