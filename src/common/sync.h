#ifndef CONCORD_COMMON_SYNC_H_
#define CONCORD_COMMON_SYNC_H_

#include <atomic>
#include <shared_mutex>
#include <thread>

namespace concord {

/// A shared mutex that never starves exclusive lockers.
///
/// glibc's pthread rwlock (behind std::shared_mutex) prefers readers: a
/// continuous stream of shared holders keeps an exclusive waiter out
/// forever. The repository's failure-injection path (Crash/Recover/
/// Checkpoint) takes the state lock exclusively while commit traffic
/// hammers it shared, so writer starvation there means a hang.
///
/// New shared acquirers back off (yield) while any exclusive locker is
/// waiting or active; the uncontended shared path stays one atomic load
/// plus the underlying rwlock. Meets the Lockable/SharedLockable
/// requirements used by std::unique_lock / std::shared_lock.
class WriterPriorityMutex {
 public:
  WriterPriorityMutex() = default;
  WriterPriorityMutex(const WriterPriorityMutex&) = delete;
  WriterPriorityMutex& operator=(const WriterPriorityMutex&) = delete;

  void lock_shared() {
    for (;;) {
      while (writers_.load(std::memory_order_acquire) != 0) {
        std::this_thread::yield();
      }
      mu_.lock_shared();
      if (writers_.load(std::memory_order_acquire) == 0) return;
      // An exclusive locker arrived between the check and the grab;
      // give way so the reader-preferring rwlock can drain.
      mu_.unlock_shared();
    }
  }

  void unlock_shared() { mu_.unlock_shared(); }

  void lock() {
    writers_.fetch_add(1, std::memory_order_acq_rel);
    mu_.lock();
  }

  void unlock() {
    writers_.fetch_sub(1, std::memory_order_acq_rel);
    mu_.unlock();
  }

 private:
  std::shared_mutex mu_;
  std::atomic<int> writers_{0};
};

}  // namespace concord

#endif  // CONCORD_COMMON_SYNC_H_
