#ifndef CONCORD_COMMON_SYNC_H_
#define CONCORD_COMMON_SYNC_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>
#include <thread>

// ---------------------------------------------------------------------------
// Clang Thread-Safety-Analysis annotations.
//
// Under clang, `-Wthread-safety` turns the lock discipline written with
// these macros into compile errors; under GCC (which has no equivalent
// analysis) they expand to nothing and the wrappers below behave exactly
// like the std primitives they delegate to. The vocabulary follows the
// canonical mutex.h from the Clang TSA documentation, so the annotations
// read like every other annotated codebase:
//
//   GUARDED_BY(mu)    on a field: only touch it while holding mu.
//   REQUIRES(mu)      on a function: callers must already hold mu.
//   EXCLUDES(mu)      on a function: callers must NOT hold mu (the
//                     function acquires it itself; never put this on a
//                     path that is re-entered under a recursive mutex).
//   ACQUIRED_AFTER    on a mutex member: documents (and checks) the
//                     lock-hierarchy edge; see docs/CONCURRENCY.md for
//                     the full order.
//   NO_THREAD_SAFETY_ANALYSIS
//                     the escape hatch for patterns the intraprocedural
//                     analysis cannot follow (lock arrays held in bulk,
//                     adopt/release handoffs). Every use MUST carry a
//                     `// SAFETY:` comment — tools/lint_ownership.py
//                     fails the build otherwise.
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define CONCORD_TSA(x) __attribute__((x))
#else
#define CONCORD_TSA(x)  // no-op: GCC has no thread-safety analysis
#endif

#define CAPABILITY(x) CONCORD_TSA(capability(x))
#define SCOPED_CAPABILITY CONCORD_TSA(scoped_lockable)
#define GUARDED_BY(x) CONCORD_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) CONCORD_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) CONCORD_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) CONCORD_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) CONCORD_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) CONCORD_TSA(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) CONCORD_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) CONCORD_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) CONCORD_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) CONCORD_TSA(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) CONCORD_TSA(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) CONCORD_TSA(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) CONCORD_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) CONCORD_TSA(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) CONCORD_TSA(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) CONCORD_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS CONCORD_TSA(no_thread_safety_analysis)

namespace concord {

class CondVar;

/// Annotated exclusive mutex: std::mutex plus the capability attribute
/// the analysis tracks. Use with MutexLock (scoped) or lock()/unlock()
/// in the rare manual-bracketing spots.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis (without checking at runtime) that the calling
  /// context holds this mutex — for callbacks that are documented to be
  /// invoked under it.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Annotated recursive mutex. The analysis has no notion of reentrancy:
/// it flags a DOUBLE acquisition only within one function body, so the
/// discipline for a recursive capability is the cooperation manager's
/// pattern — every public operation takes exactly one RecursiveMutexLock
/// and does its work through REQUIRES(mu_) helpers; re-entrant public
/// entry (event delivery running a tool on the same thread) is invisible
/// to the analysis and safe at runtime by recursion.
class CAPABILITY("mutex") RecursiveMutex {
 public:
  RecursiveMutex() = default;
  RecursiveMutex(const RecursiveMutex&) = delete;
  RecursiveMutex& operator=(const RecursiveMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

  /// The assertable-capability hook for re-entered contexts: a callback
  /// that is specified to run under the manager mutex calls this instead
  /// of re-locking, and the analysis treats the capability as held.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  std::recursive_mutex mu_;
};

/// RAII exclusive lock on a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() RELEASE() { mu_->unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// RAII lock on a RecursiveMutex.
class SCOPED_CAPABILITY RecursiveMutexLock {
 public:
  explicit RecursiveMutexLock(RecursiveMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->lock();
  }
  ~RecursiveMutexLock() RELEASE() { mu_->unlock(); }
  RecursiveMutexLock(const RecursiveMutexLock&) = delete;
  RecursiveMutexLock& operator=(const RecursiveMutexLock&) = delete;

 private:
  RecursiveMutex* mu_;
};

/// Condition variable paired with concord::Mutex. Delegates to
/// std::condition_variable on the wrapped native mutex, so waiting costs
/// exactly what it did before annotation.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and reacquires it. As far as the
  /// analysis is concerned the capability is held across the call.
  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Predicate loop over Wait().
  template <typename Predicate>
  void Wait(Mutex* mu, Predicate pred) REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Timed wait: releases `mu`, waits up to `timeout_ms`, reacquires.
  /// Returns false on timeout (spurious wakeups look like early
  /// returns — pair with a predicate loop as usual).
  bool WaitFor(Mutex* mu, int64_t timeout_ms) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    auto rc = cv_.wait_for(native, std::chrono::milliseconds(timeout_ms));
    native.release();
    return rc == std::cv_status::no_timeout;
  }

  /// Predicate loop with an absolute deadline carved from `timeout_ms`;
  /// returns the predicate's value at exit (false means timed out).
  template <typename Predicate>
  bool WaitFor(Mutex* mu, int64_t timeout_ms, Predicate pred) REQUIRES(mu) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (!pred()) {
      auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return pred();
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - now)
                      .count();
      WaitFor(mu, left > 0 ? left : 1);
    }
    return true;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// A shared mutex that never starves exclusive lockers.
///
/// glibc's pthread rwlock (behind std::shared_mutex) prefers readers: a
/// continuous stream of shared holders keeps an exclusive waiter out
/// forever. The repository's failure-injection path (Crash/Recover/
/// Checkpoint) takes the state lock exclusively while commit traffic
/// hammers it shared, so writer starvation there means a hang.
///
/// New shared acquirers back off (yield) while any exclusive locker is
/// waiting or active; the uncontended shared path stays one atomic load
/// plus the underlying rwlock. Meets the Lockable/SharedLockable
/// requirements used by std::unique_lock / std::shared_lock, and carries
/// the capability annotation so guarded fields can name it.
class CAPABILITY("shared_mutex") WriterPriorityMutex {
 public:
  WriterPriorityMutex() = default;
  WriterPriorityMutex(const WriterPriorityMutex&) = delete;
  WriterPriorityMutex& operator=(const WriterPriorityMutex&) = delete;

  void lock_shared() ACQUIRE_SHARED() {
    for (;;) {
      while (writers_.load(std::memory_order_acquire) != 0) {
        std::this_thread::yield();
      }
      mu_.lock_shared();
      if (writers_.load(std::memory_order_acquire) == 0) return;
      // An exclusive locker arrived between the check and the grab;
      // give way so the reader-preferring rwlock can drain.
      mu_.unlock_shared();
    }
  }

  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }

  void lock() ACQUIRE() {
    writers_.fetch_add(1, std::memory_order_acq_rel);
    mu_.lock();
  }

  void unlock() RELEASE() {
    writers_.fetch_sub(1, std::memory_order_acq_rel);
    mu_.unlock();
  }

 private:
  std::shared_mutex mu_;
  std::atomic<int> writers_{0};
};

/// RAII shared (reader) hold on a WriterPriorityMutex.
class SCOPED_CAPABILITY SharedReadLock {
 public:
  explicit SharedReadLock(WriterPriorityMutex* mu) ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->lock_shared();
  }
  ~SharedReadLock() RELEASE_GENERIC() { mu_->unlock_shared(); }
  SharedReadLock(const SharedReadLock&) = delete;
  SharedReadLock& operator=(const SharedReadLock&) = delete;

 private:
  WriterPriorityMutex* mu_;
};

// ---------------------------------------------------------------------------
// Thread roles: the runtime twin of the partition-ownership discipline.
//
// The static rules (tools/lint_ownership.py + the annotations above)
// say: executor-owned state is only touched by tasks running on the
// owning executor, and a task ON an executor never submit-and-waits to
// another partition. The TLS tag below lets the hot entry points assert
// exactly that in debug builds — a cross-partition touch or an
// executor-context wait aborts with a message instead of corrupting
// state or deadlocking nondeterministically.
//
// The checks compile away unless CONCORD_THREAD_ASSERTS is 1 (defaulted
// on in builds without NDEBUG; CMake's CONCORD_THREAD_ASSERTS option
// forces it for sanitizer/death-test legs).
// ---------------------------------------------------------------------------

#ifndef CONCORD_THREAD_ASSERTS
#ifdef NDEBUG
#define CONCORD_THREAD_ASSERTS 0
#else
#define CONCORD_THREAD_ASSERTS 1
#endif
#endif

/// What kind of thread is running. kPartitionExecutor is a
/// PartitionEngine executor (single-threaded owner of one state slice);
/// kPoolExecutor is a workflow ExecutorPool thread (runs task-node
/// bodies, owns nothing); kGeneral is everything else (dispatchers,
/// designers, tests).
enum class ThreadRole : uint8_t {
  kGeneral = 0,
  kPartitionExecutor = 1,
  kPoolExecutor = 2,
};

namespace sync_internal {
inline thread_local ThreadRole tls_role = ThreadRole::kGeneral;
inline thread_local int tls_partition = -1;
}  // namespace sync_internal

inline ThreadRole CurrentThreadRole() { return sync_internal::tls_role; }
/// Partition index of the current executor thread; -1 off executors.
inline int CurrentThreadPartition() { return sync_internal::tls_partition; }
/// True when the thread asserts are compiled in (death tests skip
/// themselves when not).
constexpr bool ThreadAssertsEnabled() { return CONCORD_THREAD_ASSERTS != 0; }

/// Tags the current thread for its lifetime-of-scope (executors tag
/// their whole run loop; tests tag blocks to simulate roles).
class ScopedThreadRole {
 public:
  explicit ScopedThreadRole(ThreadRole role, int partition = -1)
      : saved_role_(sync_internal::tls_role),
        saved_partition_(sync_internal::tls_partition) {
    sync_internal::tls_role = role;
    sync_internal::tls_partition = partition;
  }
  ~ScopedThreadRole() {
    sync_internal::tls_role = saved_role_;
    sync_internal::tls_partition = saved_partition_;
  }
  ScopedThreadRole(const ScopedThreadRole&) = delete;
  ScopedThreadRole& operator=(const ScopedThreadRole&) = delete;

 private:
  ThreadRole saved_role_;
  int saved_partition_;
};

namespace sync_internal {

[[noreturn]] inline void DieThreadRole(const char* what, const char* file,
                                       int line) {
  std::fprintf(stderr,
               "CONCORD thread-role violation: %s (thread role %d, "
               "partition %d) at %s:%d\n",
               what, static_cast<int>(tls_role), tls_partition, file, line);
  std::abort();
}

inline void AssertOnPartition(int partition, const char* file, int line) {
  if (tls_role == ThreadRole::kPartitionExecutor &&
      tls_partition != partition) {
    DieThreadRole("partition-owned state touched from the wrong executor",
                  file, line);
  }
}

inline void AssertOffExecutor(const char* file, int line) {
  if (tls_role == ThreadRole::kPartitionExecutor) {
    DieThreadRole(
        "submit-and-wait (or choreography entry) from executor context",
        file, line);
  }
}

}  // namespace sync_internal
}  // namespace concord

#if CONCORD_THREAD_ASSERTS
/// In a partition-resident task body: aborts when the code runs on a
/// partition executor other than the owner `p`. (A non-executor thread
/// passes — that is the K == 1 inline mode and quiescent test access.)
#define CONCORD_ASSERT_ON_PARTITION(p) \
  ::concord::sync_internal::AssertOnPartition( \
      static_cast<int>(p), __FILE__, __LINE__)
/// At a choreography entry point / submit-and-wait site: aborts when
/// called from a partition executor (executors waiting on each other
/// can cycle — the deadlock rule of txn/partition.h).
#define CONCORD_ASSERT_OFF_EXECUTOR() \
  ::concord::sync_internal::AssertOffExecutor(__FILE__, __LINE__)
#else
#define CONCORD_ASSERT_ON_PARTITION(p) ((void)0)
#define CONCORD_ASSERT_OFF_EXECUTOR() ((void)0)
#endif

#endif  // CONCORD_COMMON_SYNC_H_
