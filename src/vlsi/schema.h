#ifndef CONCORD_VLSI_SCHEMA_H_
#define CONCORD_VLSI_SCHEMA_H_

#include <map>
#include <string>

#include "common/random.h"
#include "storage/object.h"
#include "storage/schema.h"
#include "vlsi/shape_function.h"

namespace concord::vlsi {

/// The four-level cell hierarchy of Fig. 2: chip -> module -> block ->
/// standard cell. Ids of the registered design object types.
struct VlsiDots {
  DotId chip;
  DotId module;
  DotId block;
  DotId stdcell;
};

/// The design-plane domains of Fig. 2 (value of the "domain"
/// attribute). The design traverses them left to right.
inline constexpr const char* kDomainBehavior = "behavior";
inline constexpr const char* kDomainStructure = "structure";
inline constexpr const char* kDomainFloorplan = "floorplan";
inline constexpr const char* kDomainMaskLayout = "mask_layout";

/// Attribute names shared by the VLSI design object types.
inline constexpr const char* kAttrName = "name";
inline constexpr const char* kAttrDomain = "domain";
inline constexpr const char* kAttrArea = "area";
inline constexpr const char* kAttrWidth = "width";
inline constexpr const char* kAttrHeight = "height";
inline constexpr const char* kAttrWirelength = "wirelength";
inline constexpr const char* kAttrCutSize = "cut_size";
inline constexpr const char* kAttrNetlist = "netlist";
inline constexpr const char* kAttrShapes = "shapes";
inline constexpr const char* kAttrFloorplan = "floorplan";
inline constexpr const char* kAttrBehavior = "behavior";
inline constexpr const char* kAttrMaxWidth = "interface_max_width";
inline constexpr const char* kAttrPinCount = "pin_count";
inline constexpr const char* kAttrPadFrame = "pad_frame";

/// Registers the VLSI design object types (with their part-of
/// hierarchy, attribute declarations, and integrity bounds) in the
/// repository's schema catalog.
VlsiDots RegisterVlsiSchema(storage::SchemaCatalog* catalog);

/// Creates a behavioral-domain chip description — the starting point of
/// the design plane traversal ("MODULE add BEGIN c <- a + b END",
/// Fig. 2). `complexity` scales the synthesized structure.
storage::DesignObject MakeBehavioralChip(const VlsiDots& dots,
                                         const std::string& name,
                                         int complexity);

/// (De)serializes a per-subcell shape-function table stored in the
/// "shapes" attribute ("m0=w:h,w:h&m1=...").
std::string SerializeShapeTable(
    const std::map<std::string, ShapeFunction>& table);
Result<std::map<std::string, ShapeFunction>> DeserializeShapeTable(
    const std::string& text);

}  // namespace concord::vlsi

#endif  // CONCORD_VLSI_SCHEMA_H_
