#ifndef CONCORD_VLSI_FLOORPLAN_H_
#define CONCORD_VLSI_FLOORPLAN_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "vlsi/netlist.h"
#include "vlsi/shape_function.h"

namespace concord::vlsi {

/// Axis-aligned placement of one subcell inside its parent.
struct PlacedCell {
  std::string name;
  double x = 0;
  double y = 0;
  double width = 0;
  double height = 0;
};

/// The floorplan of a CUD: chip outline plus subcell placements — the
/// "floorplan contents" output of chip planning (Fig. 3), which also
/// induces the "interfaces (subcells)" handed to the sub-DAs of the
/// delegation scenario (Fig. 5).
struct Floorplan {
  double width = 0;
  double height = 0;
  std::vector<PlacedCell> cells;
  /// Total estimated wirelength (half-perimeter model), filled by
  /// global routing.
  double wirelength = 0;
  /// Nets crossing the top-level bipartition (planning quality metric).
  int cut_size = 0;

  double Area() const { return width * height; }
  const PlacedCell* Find(const std::string& name) const;

  std::string Serialize() const;
  static Result<Floorplan> Deserialize(const std::string& text);
};

/// A slicing tree over subcells: leaves are subcell names, internal
/// nodes are vertical or horizontal cuts.
struct SlicingNode {
  bool is_leaf = false;
  std::string cell;     // leaf
  bool vertical = true;  // internal: vertical or horizontal cut
  std::unique_ptr<SlicingNode> left;
  std::unique_ptr<SlicingNode> right;
};

/// The chip-planner toolbox (tool 5 of Fig. 2): "bipartitioning,
/// sizing, dimensioning, and global routing". Given the module/net
/// list and shape functions of the subcells plus the CUD interface
/// (target width/height bounds), it computes a slicing floorplan.
class ChipPlanner {
 public:
  struct Options {
    /// Maximum chip width allowed by the interface description (0 = no
    /// bound; sizing then picks the min-area shape).
    double max_width = 0;
    /// Alternate cut directions by depth (true) or always vertical.
    bool alternate_cuts = true;
  };

  ChipPlanner() = default;
  explicit ChipPlanner(Options options) : options_(options) {}

  /// Step 1 — bipartitioning: recursively splits the modules into a
  /// slicing tree, greedily balancing area and improving the cut with a
  /// single Kernighan–Lin-style pass per level.
  Result<std::unique_ptr<SlicingNode>> Bipartition(
      const Netlist& netlist,
      const std::map<std::string, ShapeFunction>& shapes) const;

  /// Step 2 — sizing: bottom-up Stockmeyer combination of the subcell
  /// shape functions along the slicing tree.
  Result<ShapeFunction> Size(
      const SlicingNode& tree,
      const std::map<std::string, ShapeFunction>& shapes) const;

  /// Steps 3+4 — dimensioning and global routing: picks the best root
  /// shape (min area, respecting max_width), back-propagates concrete
  /// rectangles to the leaves, and estimates wirelength with the
  /// half-perimeter model.
  Result<Floorplan> Dimension(
      const SlicingNode& tree,
      const std::map<std::string, ShapeFunction>& shapes,
      const Netlist& netlist) const;

  /// The full pipeline. `out_cut_size` is reported in the floorplan.
  Result<Floorplan> Plan(const Netlist& netlist,
                         const std::map<std::string, ShapeFunction>& shapes)
      const;

 private:
  Options options_;
};

}  // namespace concord::vlsi

#endif  // CONCORD_VLSI_FLOORPLAN_H_
