#ifndef CONCORD_VLSI_TOOLS_H_
#define CONCORD_VLSI_TOOLS_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "storage/object.h"
#include "vlsi/floorplan.h"
#include "vlsi/schema.h"

namespace concord::vlsi {

/// DOP type names, matching the tools of Fig. 2 (the numbers in the
/// design plane). Scripts and domain constraints refer to these.
inline constexpr const char* kToolStructureSynthesis = "structure_synthesis";
inline constexpr const char* kToolRepartitioning = "repartitioning";
inline constexpr const char* kToolShapeFunctionGen = "shape_function_generation";
inline constexpr const char* kToolPadFrameEdit = "pad_frame_edit";
inline constexpr const char* kToolChipPlanning = "chip_planning";
inline constexpr const char* kToolCellSynthesis = "cell_synthesis";
inline constexpr const char* kToolChipAssembly = "chip_assembly";

/// All seven tool names in design-plane order.
std::vector<std::string> AllToolNames();

/// Output of a tool invocation: the derived design state and the
/// amount of (abstract) tool work it took — the DOP reports the latter
/// to the client-TM so recovery points and loss-of-work accounting see
/// realistic magnitudes.
struct ToolResult {
  storage::DesignObject object;
  uint64_t work_units = 0;
};

/// The design-tool box of Sect. 3. Each tool derives a new design state
/// (domain transition of Fig. 2) from its input state(s); they are
/// pure functions over DesignObjects so they can run inside any DOP.
class ToolBox {
 public:
  explicit ToolBox(const VlsiDots& dots) : dots_(dots) {}

  /// Tool 1: behavior -> structure. Synthesizes a module/net list whose
  /// size is driven by the behavioral complexity.
  Result<ToolResult> StructureSynthesis(const storage::DesignObject& input,
                                        Rng* rng) const;

  /// Tool 2: structure -> structure. Perturbs the partition/netlist to
  /// explore alternatives (keeps module count, rewires a fraction).
  Result<ToolResult> Repartitioning(const storage::DesignObject& input,
                                    Rng* rng) const;

  /// Tool 3: structure -> structure+shapes. Estimates per-module areas
  /// and emits soft shape functions.
  Result<ToolResult> ShapeFunctionGeneration(
      const storage::DesignObject& input) const;

  /// Tool 4: sets the interface description (pad frame, width bound,
  /// pin intervals).
  Result<ToolResult> PadFrameEdit(const storage::DesignObject& input,
                                  double max_width) const;

  /// Tool 5: the chip-planner toolbox — bipartitioning, sizing,
  /// dimensioning, global routing. structure+shapes -> floorplan.
  Result<ToolResult> ChipPlanning(const storage::DesignObject& input) const;

  /// Tool 6: concrete layout for one (sub)cell: fixes width/height from
  /// its shape alternatives. floorplan -> mask_layout (per cell).
  Result<ToolResult> CellSynthesis(const storage::DesignObject& input) const;

  /// Tool 7: chip assembly: requires a floorplan; verifies all subcell
  /// placements, sums final area/wirelength. floorplan -> mask_layout.
  Result<ToolResult> ChipAssembly(const storage::DesignObject& input) const;

  /// Dispatch by DOP type name (tools needing extra arguments use
  /// defaults: pad frame width bound = 1.15x the min-area width).
  Result<ToolResult> Run(const std::string& tool_name,
                         const storage::DesignObject& input, Rng* rng) const;

  const VlsiDots& dots() const { return dots_; }

 private:
  VlsiDots dots_;
};

}  // namespace concord::vlsi

#endif  // CONCORD_VLSI_TOOLS_H_
