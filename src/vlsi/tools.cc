#include "vlsi/tools.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/strings.h"
#include "vlsi/netlist.h"

namespace concord::vlsi {

std::vector<std::string> AllToolNames() {
  return {kToolStructureSynthesis, kToolRepartitioning,
          kToolShapeFunctionGen,   kToolPadFrameEdit,
          kToolChipPlanning,       kToolCellSynthesis,
          kToolChipAssembly};
}

namespace {

Result<std::string> RequireDomain(const storage::DesignObject& input,
                                  const std::string& expected,
                                  const std::string& tool) {
  CONCORD_ASSIGN_OR_RETURN(storage::AttrValue domain,
                           input.GetAttr(kAttrDomain));
  if (!domain.is_string() || domain.as_string() != expected) {
    return Status::FailedPrecondition(
        tool + " expects a design state in domain '" + expected + "', got '" +
        domain.ToString() + "'");
  }
  return domain.as_string();
}

int64_t ComplexityOf(const storage::DesignObject& input) {
  auto behavior = input.GetAttr(kAttrBehavior);
  if (!behavior.ok() || !behavior->is_string()) return 4;
  const std::string& text = behavior->as_string();
  size_t pos = text.rfind(' ');
  if (pos == std::string::npos) return 4;
  try {
    return std::max<int64_t>(2, std::stoll(text.substr(pos + 1)));
  } catch (const std::exception&) {
    return 4;
  }
}

}  // namespace

Result<ToolResult> ToolBox::StructureSynthesis(
    const storage::DesignObject& input, Rng* rng) const {
  CONCORD_RETURN_NOT_OK(
      RequireDomain(input, kDomainBehavior, kToolStructureSynthesis).status());
  int64_t complexity = ComplexityOf(input);
  int modules = static_cast<int>(complexity);
  int nets = modules * 2;

  ToolResult result;
  result.object = input;
  Netlist netlist = Netlist::Random(modules, nets, 4, rng);
  result.object.SetAttr(kAttrNetlist, netlist.Serialize());
  result.object.SetAttr(kAttrDomain, kDomainStructure);
  result.work_units = static_cast<uint64_t>(modules) * 10;
  return result;
}

Result<ToolResult> ToolBox::Repartitioning(const storage::DesignObject& input,
                                           Rng* rng) const {
  CONCORD_RETURN_NOT_OK(
      RequireDomain(input, kDomainStructure, kToolRepartitioning).status());
  CONCORD_ASSIGN_OR_RETURN(storage::AttrValue netlist_attr,
                           input.GetAttr(kAttrNetlist));
  CONCORD_ASSIGN_OR_RETURN(Netlist netlist,
                           Netlist::Deserialize(netlist_attr.as_string()));
  // Rewire ~25% of the nets to explore a different structure.
  Netlist rewired;
  for (const std::string& module : netlist.modules()) {
    rewired.AddModule(module);
  }
  int module_count = static_cast<int>(netlist.modules().size());
  for (const Net& net : netlist.nets()) {
    if (module_count >= 2 && rng->Chance(0.25)) {
      Net replacement;
      replacement.name = net.name;
      int a = static_cast<int>(rng->Uniform(0, module_count - 1));
      int b = static_cast<int>(rng->Uniform(0, module_count - 1));
      if (a == b) b = (b + 1) % module_count;
      replacement.pins = {IndexedName("m", a), IndexedName("m", b)};
      rewired.AddNet(std::move(replacement));
    } else {
      rewired.AddNet(net);
    }
  }
  ToolResult result;
  result.object = input;
  result.object.SetAttr(kAttrNetlist, rewired.Serialize());
  result.work_units = static_cast<uint64_t>(netlist.nets().size()) * 3;
  return result;
}

Result<ToolResult> ToolBox::ShapeFunctionGeneration(
    const storage::DesignObject& input) const {
  CONCORD_RETURN_NOT_OK(
      RequireDomain(input, kDomainStructure, kToolShapeFunctionGen).status());
  CONCORD_ASSIGN_OR_RETURN(storage::AttrValue netlist_attr,
                           input.GetAttr(kAttrNetlist));
  CONCORD_ASSIGN_OR_RETURN(Netlist netlist,
                           Netlist::Deserialize(netlist_attr.as_string()));
  // Estimate per-module area from its connectivity (well-connected
  // modules are bigger), then emit soft shape functions.
  std::map<std::string, ShapeFunction> table;
  for (const std::string& module : netlist.modules()) {
    int degree = 0;
    for (const Net& net : netlist.nets()) {
      for (const std::string& pin : net.pins) {
        if (pin == module) ++degree;
      }
    }
    double area = 40.0 + 12.0 * degree;
    table[module] = ShapeFunction::Soft(area, 0.5, 2.0, 6);
  }
  ToolResult result;
  result.object = input;
  result.object.SetAttr(kAttrShapes, SerializeShapeTable(table));
  result.work_units = static_cast<uint64_t>(netlist.modules().size()) * 5;
  return result;
}

Result<ToolResult> ToolBox::PadFrameEdit(const storage::DesignObject& input,
                                         double max_width) const {
  ToolResult result;
  result.object = input;
  result.object.SetAttr(kAttrMaxWidth, max_width);
  std::ostringstream frame;
  auto pins = input.GetAttr(kAttrPinCount);
  int64_t pin_count = pins.ok() && pins->is_int() ? pins->as_int() : 16;
  frame << "frame[pins=" << pin_count << ",max_width=" << max_width << "]";
  result.object.SetAttr(kAttrPadFrame, frame.str());
  result.work_units = static_cast<uint64_t>(pin_count);
  return result;
}

Result<ToolResult> ToolBox::ChipPlanning(
    const storage::DesignObject& input) const {
  CONCORD_RETURN_NOT_OK(
      RequireDomain(input, kDomainStructure, kToolChipPlanning).status());
  CONCORD_ASSIGN_OR_RETURN(storage::AttrValue netlist_attr,
                           input.GetAttr(kAttrNetlist));
  CONCORD_ASSIGN_OR_RETURN(Netlist netlist,
                           Netlist::Deserialize(netlist_attr.as_string()));
  CONCORD_ASSIGN_OR_RETURN(storage::AttrValue shapes_attr,
                           input.GetAttr(kAttrShapes));
  CONCORD_ASSIGN_OR_RETURN(auto table,
                           DeserializeShapeTable(shapes_attr.as_string()));

  ChipPlanner::Options options;
  auto max_width = input.GetNumeric(kAttrMaxWidth);
  if (max_width.ok() && *max_width > 0) options.max_width = *max_width;
  ChipPlanner planner(options);
  auto planned = planner.Plan(netlist, table);
  if (!planned.ok()) {
    // An infeasible interface (e.g. max_width too small) surfaces as a
    // planning failure — the DA may report Sub_DA_Impossible_Spec.
    return planned.status();
  }

  ToolResult result;
  result.object = input;
  result.object.SetAttr(kAttrFloorplan, planned->Serialize());
  result.object.SetAttr(kAttrDomain, kDomainFloorplan);
  result.object.SetAttr(kAttrWidth, planned->width);
  result.object.SetAttr(kAttrHeight, planned->height);
  result.object.SetAttr(kAttrArea, planned->Area());
  result.object.SetAttr(kAttrWirelength, planned->wirelength);
  result.object.SetAttr(kAttrCutSize,
                        static_cast<int64_t>(planned->cut_size));
  result.work_units =
      static_cast<uint64_t>(netlist.modules().size()) * 25 +
      static_cast<uint64_t>(netlist.nets().size()) * 5;
  return result;
}

Result<ToolResult> ToolBox::CellSynthesis(
    const storage::DesignObject& input) const {
  // Leaf-cell layout: realize the min-area alternative of the cell's
  // own shape function (or derive one from its area attribute).
  ToolResult result;
  result.object = input;
  ShapeFunction fn;
  auto shapes_attr = input.GetAttr(kAttrShapes);
  if (shapes_attr.ok() && shapes_attr->is_string()) {
    CONCORD_ASSIGN_OR_RETURN(auto table,
                             DeserializeShapeTable(shapes_attr->as_string()));
    if (!table.empty()) fn = table.begin()->second;
  }
  if (fn.empty()) {
    auto area = input.GetNumeric(kAttrArea);
    fn = ShapeFunction::Soft(area.ok() && *area > 0 ? *area : 50.0, 0.8, 1.25,
                             4);
  }
  CONCORD_ASSIGN_OR_RETURN(Shape shape, fn.MinAreaShape());
  result.object.SetAttr(kAttrWidth, shape.width);
  result.object.SetAttr(kAttrHeight, shape.height);
  result.object.SetAttr(kAttrArea, shape.Area());
  result.object.SetAttr(kAttrDomain, kDomainMaskLayout);
  result.work_units = 40;
  return result;
}

Result<ToolResult> ToolBox::ChipAssembly(
    const storage::DesignObject& input) const {
  CONCORD_RETURN_NOT_OK(
      RequireDomain(input, kDomainFloorplan, kToolChipAssembly).status());
  CONCORD_ASSIGN_OR_RETURN(storage::AttrValue fp_attr,
                           input.GetAttr(kAttrFloorplan));
  CONCORD_ASSIGN_OR_RETURN(Floorplan floorplan,
                           Floorplan::Deserialize(fp_attr.as_string()));
  // Verify placements are inside the outline and non-degenerate.
  for (const PlacedCell& cell : floorplan.cells) {
    if (cell.width <= 0 || cell.height <= 0 ||
        cell.x + cell.width > floorplan.width + 1e-6 ||
        cell.y + cell.height > floorplan.height + 1e-6) {
      return Status::ConstraintViolation("subcell '" + cell.name +
                                         "' violates the chip outline");
    }
  }
  ToolResult result;
  result.object = input;
  result.object.SetAttr(kAttrDomain, kDomainMaskLayout);
  result.object.SetAttr(kAttrArea, floorplan.Area());
  result.work_units = static_cast<uint64_t>(floorplan.cells.size()) * 15 + 20;
  return result;
}

Result<ToolResult> ToolBox::Run(const std::string& tool_name,
                                const storage::DesignObject& input,
                                Rng* rng) const {
  if (tool_name == kToolStructureSynthesis) {
    return StructureSynthesis(input, rng);
  }
  if (tool_name == kToolRepartitioning) return Repartitioning(input, rng);
  if (tool_name == kToolShapeFunctionGen) {
    return ShapeFunctionGeneration(input);
  }
  if (tool_name == kToolPadFrameEdit) {
    // Default interface: allow 15% slack over the min-area width.
    double bound = 0;
    auto shapes_attr = input.GetAttr(kAttrShapes);
    if (shapes_attr.ok() && shapes_attr->is_string()) {
      auto table = DeserializeShapeTable(shapes_attr->as_string());
      if (table.ok()) {
        double total_area = 0;
        for (const auto& [name, fn] : *table) {
          auto s = fn.MinAreaShape();
          if (s.ok()) total_area += s->Area();
        }
        bound = std::sqrt(total_area) * 1.6;
      }
    }
    return PadFrameEdit(input, bound > 0 ? bound : 100.0);
  }
  if (tool_name == kToolChipPlanning) return ChipPlanning(input);
  if (tool_name == kToolCellSynthesis) return CellSynthesis(input);
  if (tool_name == kToolChipAssembly) return ChipAssembly(input);
  return Status::NotFound("unknown design tool '" + tool_name + "'");
}

}  // namespace concord::vlsi
