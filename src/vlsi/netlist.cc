#include "vlsi/netlist.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/strings.h"

namespace concord::vlsi {

bool Netlist::HasModule(const std::string& name) const {
  return std::find(modules_.begin(), modules_.end(), name) != modules_.end();
}

int Netlist::CutSize(const std::vector<std::string>& left) const {
  std::set<std::string> left_set(left.begin(), left.end());
  int cut = 0;
  for (const Net& net : nets_) {
    bool has_left = false;
    bool has_right = false;
    for (const std::string& pin : net.pins) {
      if (left_set.count(pin)) {
        has_left = true;
      } else {
        has_right = true;
      }
    }
    if (has_left && has_right) ++cut;
  }
  return cut;
}

Netlist Netlist::Random(int modules, int nets, int max_degree, Rng* rng) {
  Netlist netlist;
  for (int i = 0; i < modules; ++i) {
    netlist.AddModule(IndexedName("m", i));
  }
  for (int n = 0; n < nets; ++n) {
    Net net;
    net.name = IndexedName("n", n);
    int degree = static_cast<int>(rng->Uniform(2, std::max(2, max_degree)));
    // Locality bias: pick a home module, then neighbours around it.
    int home = static_cast<int>(rng->Uniform(0, modules - 1));
    std::set<int> picked{home};
    int span = std::max(1, modules / 4);
    int attempts = 0;
    while (static_cast<int>(picked.size()) < degree &&
           static_cast<int>(picked.size()) < modules) {
      int candidate = home + static_cast<int>(rng->Uniform(-span, span));
      candidate = std::clamp(candidate, 0, modules - 1);
      picked.insert(candidate);
      // Locality can saturate (span too narrow for the requested
      // degree): widen it so the loop always terminates.
      if (++attempts % 4 == 0) ++span;
    }
    for (int m : picked) net.pins.push_back(IndexedName("m", m));
    netlist.AddNet(std::move(net));
  }
  return netlist;
}

std::string Netlist::Serialize() const {
  std::ostringstream os;
  for (size_t i = 0; i < modules_.size(); ++i) {
    if (i > 0) os << " ";
    os << modules_[i];
  }
  os << "|";
  for (size_t n = 0; n < nets_.size(); ++n) {
    if (n > 0) os << ";";
    os << nets_[n].name << ":";
    for (size_t p = 0; p < nets_[n].pins.size(); ++p) {
      if (p > 0) os << ",";
      os << nets_[n].pins[p];
    }
  }
  return os.str();
}

Result<Netlist> Netlist::Deserialize(const std::string& text) {
  Netlist netlist;
  size_t bar = text.find('|');
  if (bar == std::string::npos) {
    return Status::InvalidArgument("netlist text has no '|' separator");
  }
  std::istringstream modules(text.substr(0, bar));
  std::string module;
  while (modules >> module) netlist.AddModule(module);

  std::string nets_text = text.substr(bar + 1);
  if (nets_text.empty()) return netlist;
  std::istringstream nets(nets_text);
  std::string net_token;
  while (std::getline(nets, net_token, ';')) {
    size_t colon = net_token.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("bad net token '" + net_token + "'");
    }
    Net net;
    net.name = net_token.substr(0, colon);
    std::istringstream pins(net_token.substr(colon + 1));
    std::string pin;
    while (std::getline(pins, pin, ',')) {
      if (!pin.empty()) net.pins.push_back(pin);
    }
    netlist.AddNet(std::move(net));
  }
  return netlist;
}

}  // namespace concord::vlsi
