#include "vlsi/floorplan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>

namespace concord::vlsi {

const PlacedCell* Floorplan::Find(const std::string& name) const {
  for (const PlacedCell& cell : cells) {
    if (cell.name == name) return &cell;
  }
  return nullptr;
}

std::string Floorplan::Serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << width << ";" << height << ";" << wirelength << ";" << cut_size;
  for (const PlacedCell& cell : cells) {
    os << "|" << cell.name << ":" << cell.x << ":" << cell.y << ":"
       << cell.width << ":" << cell.height;
  }
  return os.str();
}

Result<Floorplan> Floorplan::Deserialize(const std::string& text) {
  Floorplan fp;
  std::istringstream is(text);
  std::string head;
  if (!std::getline(is, head, '|')) {
    return Status::InvalidArgument("empty floorplan text");
  }
  {
    std::istringstream hs(head);
    std::string part;
    std::vector<double> values;
    while (std::getline(hs, part, ';')) values.push_back(std::stod(part));
    if (values.size() != 4) {
      return Status::InvalidArgument("bad floorplan header '" + head + "'");
    }
    fp.width = values[0];
    fp.height = values[1];
    fp.wirelength = values[2];
    fp.cut_size = static_cast<int>(values[3]);
  }
  std::string cell_text;
  while (std::getline(is, cell_text, '|')) {
    std::istringstream cs(cell_text);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(cs, field, ':')) fields.push_back(field);
    if (fields.size() != 5) {
      return Status::InvalidArgument("bad placed cell '" + cell_text + "'");
    }
    PlacedCell cell;
    cell.name = fields[0];
    cell.x = std::stod(fields[1]);
    cell.y = std::stod(fields[2]);
    cell.width = std::stod(fields[3]);
    cell.height = std::stod(fields[4]);
    fp.cells.push_back(std::move(cell));
  }
  return fp;
}

namespace {

double AreaOf(const std::map<std::string, ShapeFunction>& shapes,
              const std::string& name) {
  auto it = shapes.find(name);
  if (it == shapes.end() || it->second.empty()) return 1.0;
  auto min_shape = it->second.MinAreaShape();
  return min_shape.ok() ? min_shape->Area() : 1.0;
}

/// One bounded improvement pass: swap modules across the partition when
/// that lowers the cut without unbalancing the areas too far.
void ImproveCut(const Netlist& netlist,
                const std::map<std::string, ShapeFunction>& shapes,
                std::vector<std::string>* left,
                std::vector<std::string>* right) {
  if (left->empty() || right->empty()) return;
  double left_area = 0;
  double right_area = 0;
  for (const auto& m : *left) left_area += AreaOf(shapes, m);
  for (const auto& m : *right) right_area += AreaOf(shapes, m);
  double total = left_area + right_area;

  int current_cut = netlist.CutSize(*left);
  for (size_t i = 0; i < left->size(); ++i) {
    for (size_t j = 0; j < right->size(); ++j) {
      double ai = AreaOf(shapes, (*left)[i]);
      double aj = AreaOf(shapes, (*right)[j]);
      double new_left = left_area - ai + aj;
      if (new_left < 0.25 * total || new_left > 0.75 * total) continue;
      std::swap((*left)[i], (*right)[j]);
      int new_cut = netlist.CutSize(*left);
      if (new_cut < current_cut) {
        current_cut = new_cut;
        left_area = new_left;
        right_area = total - new_left;
      } else {
        std::swap((*left)[i], (*right)[j]);  // revert
      }
    }
  }
}

std::unique_ptr<SlicingNode> BuildTree(
    const Netlist& netlist, const std::map<std::string, ShapeFunction>& shapes,
    std::vector<std::string> modules, int depth, bool alternate,
    int* root_cut) {
  auto node = std::make_unique<SlicingNode>();
  if (modules.size() == 1) {
    node->is_leaf = true;
    node->cell = modules.front();
    return node;
  }
  // Greedy area balance: biggest first onto the lighter side.
  std::sort(modules.begin(), modules.end(),
            [&](const std::string& a, const std::string& b) {
              double da = AreaOf(shapes, a);
              double db = AreaOf(shapes, b);
              if (da != db) return da > db;
              return a < b;
            });
  std::vector<std::string> left;
  std::vector<std::string> right;
  double left_area = 0;
  double right_area = 0;
  for (const std::string& module : modules) {
    if (left_area <= right_area) {
      left.push_back(module);
      left_area += AreaOf(shapes, module);
    } else {
      right.push_back(module);
      right_area += AreaOf(shapes, module);
    }
  }
  ImproveCut(netlist, shapes, &left, &right);
  if (depth == 0 && root_cut != nullptr) {
    *root_cut = netlist.CutSize(left);
  }

  node->is_leaf = false;
  node->vertical = alternate ? (depth % 2 == 0) : true;
  node->left = BuildTree(netlist, shapes, std::move(left), depth + 1,
                         alternate, root_cut);
  node->right = BuildTree(netlist, shapes, std::move(right), depth + 1,
                          alternate, root_cut);
  return node;
}

Result<ShapeFunction> SizeNode(
    const SlicingNode& node,
    const std::map<std::string, ShapeFunction>& shapes) {
  if (node.is_leaf) {
    auto it = shapes.find(node.cell);
    if (it == shapes.end()) {
      return Status::NotFound("no shape function for subcell '" + node.cell +
                              "'");
    }
    return it->second;
  }
  CONCORD_ASSIGN_OR_RETURN(ShapeFunction left, SizeNode(*node.left, shapes));
  CONCORD_ASSIGN_OR_RETURN(ShapeFunction right, SizeNode(*node.right, shapes));
  return ShapeFunction::Combine(left, right, node.vertical);
}

constexpr double kEps = 1e-9;

/// Assigns concrete rectangles top-down: at each internal node, find
/// the operand-shape pair realizing the target within (W, H) with
/// minimal waste.
Status Assign(const SlicingNode& node,
              const std::map<std::string, ShapeFunction>& shapes, double x,
              double y, double target_w, double target_h,
              Floorplan* floorplan) {
  if (node.is_leaf) {
    auto it = shapes.find(node.cell);
    if (it == shapes.end()) {
      return Status::NotFound("no shape function for subcell '" + node.cell +
                              "'");
    }
    const Shape* best = nullptr;
    for (const Shape& shape : it->second.shapes()) {
      if (shape.width <= target_w + kEps && shape.height <= target_h + kEps &&
          (best == nullptr || shape.Area() < best->Area())) {
        best = &shape;
      }
    }
    if (best == nullptr) {
      return Status::Internal("no leaf shape of '" + node.cell +
                              "' fits the dimensioned slot");
    }
    floorplan->cells.push_back(
        PlacedCell{node.cell, x, y, best->width, best->height});
    return Status::OK();
  }

  CONCORD_ASSIGN_OR_RETURN(ShapeFunction left_sf, SizeNode(*node.left, shapes));
  CONCORD_ASSIGN_OR_RETURN(ShapeFunction right_sf,
                           SizeNode(*node.right, shapes));
  const Shape* best_left = nullptr;
  const Shape* best_right = nullptr;
  double best_area = std::numeric_limits<double>::infinity();
  for (const Shape& sl : left_sf.shapes()) {
    for (const Shape& sr : right_sf.shapes()) {
      double w = node.vertical ? sl.width + sr.width
                               : std::max(sl.width, sr.width);
      double h = node.vertical ? std::max(sl.height, sr.height)
                               : sl.height + sr.height;
      if (w <= target_w + kEps && h <= target_h + kEps &&
          sl.Area() + sr.Area() < best_area) {
        best_area = sl.Area() + sr.Area();
        best_left = &sl;
        best_right = &sr;
      }
    }
  }
  if (best_left == nullptr) {
    return Status::Internal("dimensioning found no feasible cut realization");
  }
  if (node.vertical) {
    CONCORD_RETURN_NOT_OK(Assign(*node.left, shapes, x, y, best_left->width,
                                 target_h, floorplan));
    CONCORD_RETURN_NOT_OK(Assign(*node.right, shapes, x + best_left->width, y,
                                 best_right->width, target_h, floorplan));
  } else {
    CONCORD_RETURN_NOT_OK(Assign(*node.left, shapes, x, y, target_w,
                                 best_left->height, floorplan));
    CONCORD_RETURN_NOT_OK(Assign(*node.right, shapes, x, y + best_left->height,
                                 target_w, best_right->height, floorplan));
  }
  return Status::OK();
}

double EstimateWirelength(const Netlist& netlist, const Floorplan& floorplan) {
  double total = 0;
  for (const Net& net : netlist.nets()) {
    double min_x = std::numeric_limits<double>::infinity();
    double max_x = -min_x;
    double min_y = min_x;
    double max_y = -min_x;
    int found = 0;
    for (const std::string& pin : net.pins) {
      const PlacedCell* cell = floorplan.Find(pin);
      if (cell == nullptr) continue;
      ++found;
      double cx = cell->x + cell->width / 2;
      double cy = cell->y + cell->height / 2;
      min_x = std::min(min_x, cx);
      max_x = std::max(max_x, cx);
      min_y = std::min(min_y, cy);
      max_y = std::max(max_y, cy);
    }
    if (found >= 2) total += (max_x - min_x) + (max_y - min_y);
  }
  return total;
}

}  // namespace

Result<std::unique_ptr<SlicingNode>> ChipPlanner::Bipartition(
    const Netlist& netlist,
    const std::map<std::string, ShapeFunction>& shapes) const {
  if (netlist.modules().empty()) {
    return Status::InvalidArgument("cannot plan an empty netlist");
  }
  return BuildTree(netlist, shapes, netlist.modules(), 0,
                   options_.alternate_cuts, nullptr);
}

Result<ShapeFunction> ChipPlanner::Size(
    const SlicingNode& tree,
    const std::map<std::string, ShapeFunction>& shapes) const {
  return SizeNode(tree, shapes);
}

Result<Floorplan> ChipPlanner::Dimension(
    const SlicingNode& tree, const std::map<std::string, ShapeFunction>& shapes,
    const Netlist& netlist) const {
  CONCORD_ASSIGN_OR_RETURN(ShapeFunction root_sf, Size(tree, shapes));
  Shape root_shape{};
  if (options_.max_width > 0) {
    CONCORD_ASSIGN_OR_RETURN(root_shape,
                             root_sf.BestUnderWidth(options_.max_width));
  } else {
    CONCORD_ASSIGN_OR_RETURN(root_shape, root_sf.MinAreaShape());
  }
  Floorplan floorplan;
  floorplan.width = root_shape.width;
  floorplan.height = root_shape.height;
  CONCORD_RETURN_NOT_OK(Assign(tree, shapes, 0, 0, root_shape.width,
                               root_shape.height, &floorplan));
  floorplan.wirelength = EstimateWirelength(netlist, floorplan);
  return floorplan;
}

Result<Floorplan> ChipPlanner::Plan(
    const Netlist& netlist,
    const std::map<std::string, ShapeFunction>& shapes) const {
  if (netlist.modules().empty()) {
    return Status::InvalidArgument("cannot plan an empty netlist");
  }
  int root_cut = 0;
  std::unique_ptr<SlicingNode> tree = BuildTree(
      netlist, shapes, netlist.modules(), 0, options_.alternate_cuts,
      &root_cut);
  CONCORD_ASSIGN_OR_RETURN(Floorplan floorplan,
                           Dimension(*tree, shapes, netlist));
  floorplan.cut_size = root_cut;
  return floorplan;
}

}  // namespace concord::vlsi
