#include "vlsi/shape_function.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace concord::vlsi {

ShapeFunction::ShapeFunction(std::vector<Shape> shapes)
    : shapes_(std::move(shapes)) {
  Normalize();
}

ShapeFunction ShapeFunction::Fixed(double width, double height) {
  return ShapeFunction({Shape{width, height}});
}

ShapeFunction ShapeFunction::Soft(double area, double min_aspect,
                                  double max_aspect, int steps) {
  std::vector<Shape> shapes;
  if (steps < 2) steps = 2;
  for (int i = 0; i < steps; ++i) {
    double t = static_cast<double>(i) / (steps - 1);
    double aspect = min_aspect + t * (max_aspect - min_aspect);
    double width = std::sqrt(area * aspect);
    double height = area / width;
    shapes.push_back(Shape{width, height});
  }
  return ShapeFunction(std::move(shapes));
}

void ShapeFunction::Add(Shape shape) { shapes_.push_back(shape); }

void ShapeFunction::Normalize() {
  if (shapes_.empty()) return;
  std::sort(shapes_.begin(), shapes_.end(), [](const Shape& a, const Shape& b) {
    if (a.width != b.width) return a.width < b.width;
    return a.height < b.height;
  });
  // Keep the Pareto frontier: with shapes sorted by (width asc, height
  // asc), a shape survives iff it is strictly lower than everything
  // before it — earlier shapes are never wider, so an equal-or-higher
  // shape is dominated.
  std::vector<Shape> frontier;
  double min_height = std::numeric_limits<double>::infinity();
  for (const Shape& shape : shapes_) {
    if (shape.height < min_height) {
      frontier.push_back(shape);
      min_height = shape.height;
    }
  }
  shapes_ = std::move(frontier);
}

Result<Shape> ShapeFunction::MinAreaShape() const {
  if (shapes_.empty()) return Status::FailedPrecondition("empty shape function");
  Shape best = shapes_.front();
  for (const Shape& shape : shapes_) {
    if (shape.Area() < best.Area()) best = shape;
  }
  return best;
}

Result<Shape> ShapeFunction::BestUnderWidth(double max_width) const {
  const Shape* best = nullptr;
  for (const Shape& shape : shapes_) {
    if (shape.width <= max_width &&
        (best == nullptr || shape.height < best->height)) {
      best = &shape;
    }
  }
  if (best == nullptr) {
    return Status::NotFound("no shape fits within width " +
                            std::to_string(max_width));
  }
  return *best;
}

ShapeFunction ShapeFunction::Combine(const ShapeFunction& a,
                                     const ShapeFunction& b,
                                     bool vertical_cut) {
  ShapeFunction combined;
  for (const Shape& sa : a.shapes()) {
    for (const Shape& sb : b.shapes()) {
      if (vertical_cut) {
        combined.Add(Shape{sa.width + sb.width,
                           std::max(sa.height, sb.height)});
      } else {
        combined.Add(Shape{std::max(sa.width, sb.width),
                           sa.height + sb.height});
      }
    }
  }
  combined.Normalize();
  return combined;
}

std::string ShapeFunction::Serialize() const {
  std::ostringstream os;
  os.precision(17);
  for (size_t i = 0; i < shapes_.size(); ++i) {
    if (i > 0) os << ",";
    os << shapes_[i].width << ":" << shapes_[i].height;
  }
  return os.str();
}

Result<ShapeFunction> ShapeFunction::Deserialize(const std::string& text) {
  ShapeFunction fn;
  if (text.empty()) return fn;
  std::istringstream is(text);
  std::string token;
  while (std::getline(is, token, ',')) {
    size_t colon = token.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("bad shape token '" + token + "'");
    }
    try {
      double w = std::stod(token.substr(0, colon));
      double h = std::stod(token.substr(colon + 1));
      fn.Add(Shape{w, h});
    } catch (const std::exception&) {
      return Status::InvalidArgument("bad shape token '" + token + "'");
    }
  }
  fn.Normalize();
  return fn;
}

}  // namespace concord::vlsi
