#include "vlsi/schema.h"

#include <sstream>

namespace concord::vlsi {

namespace {

void AddCommonAttrs(storage::DesignObjectType* type) {
  type->AddAttr({kAttrName, storage::AttrType::kString, true, {}, {}});
  type->AddAttr({kAttrDomain, storage::AttrType::kString, true, {}, {}});
  type->AddAttr({kAttrArea, storage::AttrType::kDouble, false, 0.0, {}});
  type->AddAttr({kAttrWidth, storage::AttrType::kDouble, false, 0.0, {}});
  type->AddAttr({kAttrHeight, storage::AttrType::kDouble, false, 0.0, {}});
  type->AddAttr({kAttrWirelength, storage::AttrType::kDouble, false, 0.0, {}});
  type->AddAttr({kAttrCutSize, storage::AttrType::kInt, false, 0.0, {}});
  type->AddAttr({kAttrNetlist, storage::AttrType::kString, false, {}, {}});
  type->AddAttr({kAttrShapes, storage::AttrType::kString, false, {}, {}});
  type->AddAttr({kAttrFloorplan, storage::AttrType::kString, false, {}, {}});
  type->AddAttr({kAttrBehavior, storage::AttrType::kString, false, {}, {}});
  type->AddAttr({kAttrMaxWidth, storage::AttrType::kDouble, false, 0.0, {}});
  type->AddAttr({kAttrPinCount, storage::AttrType::kInt, false, 0.0, {}});
  type->AddAttr({kAttrPadFrame, storage::AttrType::kString, false, {}, {}});
}

}  // namespace

VlsiDots RegisterVlsiSchema(storage::SchemaCatalog* catalog) {
  VlsiDots dots;
  storage::DesignObjectType* stdcell = catalog->DefineType("stdcell");
  storage::DesignObjectType* block = catalog->DefineType("block");
  storage::DesignObjectType* module = catalog->DefineType("module");
  storage::DesignObjectType* chip = catalog->DefineType("chip");
  AddCommonAttrs(stdcell);
  AddCommonAttrs(block);
  AddCommonAttrs(module);
  AddCommonAttrs(chip);
  block->AddPart({stdcell->id(), 0, 1 << 30});
  module->AddPart({block->id(), 0, 1 << 30});
  chip->AddPart({module->id(), 0, 1 << 30});
  dots.chip = chip->id();
  dots.module = module->id();
  dots.block = block->id();
  dots.stdcell = stdcell->id();
  return dots;
}

storage::DesignObject MakeBehavioralChip(const VlsiDots& dots,
                                         const std::string& name,
                                         int complexity) {
  storage::DesignObject chip(dots.chip);
  chip.SetAttr(kAttrName, name);
  chip.SetAttr(kAttrDomain, kDomainBehavior);
  std::ostringstream behavior;
  behavior << "MODULE " << name << " COMPLEXITY " << complexity;
  chip.SetAttr(kAttrBehavior, behavior.str());
  chip.SetAttr(kAttrPinCount, static_cast<int64_t>(8 + complexity * 2));
  return chip;
}

std::string SerializeShapeTable(
    const std::map<std::string, ShapeFunction>& table) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, fn] : table) {
    if (!first) os << "&";
    os << name << "=" << fn.Serialize();
    first = false;
  }
  return os.str();
}

Result<std::map<std::string, ShapeFunction>> DeserializeShapeTable(
    const std::string& text) {
  std::map<std::string, ShapeFunction> table;
  if (text.empty()) return table;
  std::istringstream is(text);
  std::string entry;
  while (std::getline(is, entry, '&')) {
    size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("bad shape table entry '" + entry + "'");
    }
    CONCORD_ASSIGN_OR_RETURN(ShapeFunction fn,
                             ShapeFunction::Deserialize(entry.substr(eq + 1)));
    table[entry.substr(0, eq)] = std::move(fn);
  }
  return table;
}

}  // namespace concord::vlsi
