#ifndef CONCORD_VLSI_SHAPE_FUNCTION_H_
#define CONCORD_VLSI_SHAPE_FUNCTION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace concord::vlsi {

/// One feasible implementation shape of a cell.
struct Shape {
  double width = 0;
  double height = 0;

  double Area() const { return width * height; }
  bool operator==(const Shape&) const = default;
};

/// A shape function: the set of non-dominated (width, height)
/// alternatives of a cell — the input the chip planner needs from tool
/// 3 of Fig. 2 ("shape functions indicating the possible shapes of the
/// subcells"). Stored as a staircase sorted by increasing width /
/// decreasing height.
///
/// Combination follows Stockmeyer's slicing-floorplan algorithm:
/// combining two shape functions under a vertical cut adds widths and
/// maxes heights (and dually for horizontal cuts); the result is
/// re-normalized to its Pareto frontier.
class ShapeFunction {
 public:
  ShapeFunction() = default;
  explicit ShapeFunction(std::vector<Shape> shapes);

  /// A single fixed shape.
  static ShapeFunction Fixed(double width, double height);
  /// A soft cell: the given area realizable at aspect ratios between
  /// `min_aspect` and `max_aspect` (width/height), discretized into
  /// `steps` alternatives.
  static ShapeFunction Soft(double area, double min_aspect, double max_aspect,
                            int steps = 8);

  void Add(Shape shape);
  /// Removes dominated shapes and sorts the staircase.
  void Normalize();

  const std::vector<Shape>& shapes() const { return shapes_; }
  bool empty() const { return shapes_.empty(); }
  size_t size() const { return shapes_.size(); }

  /// The alternative with minimum area; error when empty.
  Result<Shape> MinAreaShape() const;
  /// The minimal height at which a shape of width <= `max_width`
  /// exists; error when none fits.
  Result<Shape> BestUnderWidth(double max_width) const;

  /// Stockmeyer combination: `vertical_cut` places the operands side by
  /// side (widths add, heights max); otherwise stacked (heights add,
  /// widths max).
  static ShapeFunction Combine(const ShapeFunction& a, const ShapeFunction& b,
                               bool vertical_cut);

  /// Serialization for storage as a DOV attribute ("w:h,w:h,...").
  std::string Serialize() const;
  static Result<ShapeFunction> Deserialize(const std::string& text);

 private:
  std::vector<Shape> shapes_;
};

}  // namespace concord::vlsi

#endif  // CONCORD_VLSI_SHAPE_FUNCTION_H_
