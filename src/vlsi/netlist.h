#ifndef CONCORD_VLSI_NETLIST_H_
#define CONCORD_VLSI_NETLIST_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace concord::vlsi {

/// One net connecting a set of subcells (by name). Part of the "module
/// and net list" input of chip planning (Fig. 3).
struct Net {
  std::string name;
  std::vector<std::string> pins;  // subcell names
};

/// The module & net list of a cell under design (CUD): its subcells and
/// their connections.
class Netlist {
 public:
  Netlist() = default;

  void AddModule(const std::string& name) { modules_.push_back(name); }
  void AddNet(Net net) { nets_.push_back(std::move(net)); }

  const std::vector<std::string>& modules() const { return modules_; }
  const std::vector<Net>& nets() const { return nets_; }

  bool HasModule(const std::string& name) const;

  /// Number of nets crossing a bipartition (modules in `left` on one
  /// side, the rest on the other) — the objective of the bipartitioning
  /// step of the chip planner toolbox.
  int CutSize(const std::vector<std::string>& left) const;

  /// Deterministic pseudo-random netlist: `modules` subcells, `nets`
  /// nets of 2..`max_degree` pins each, locality-biased.
  static Netlist Random(int modules, int nets, int max_degree, Rng* rng);

  /// Serialization as a DOV attribute:
  /// "m1 m2 m3|n1:m1,m2;n2:m2,m3".
  std::string Serialize() const;
  static Result<Netlist> Deserialize(const std::string& text);

 private:
  std::vector<std::string> modules_;
  std::vector<Net> nets_;
};

}  // namespace concord::vlsi

#endif  // CONCORD_VLSI_NETLIST_H_
