#ifndef CONCORD_RPC_INVALIDATION_H_
#define CONCORD_RPC_INVALIDATION_H_

#include <deque>
#include <functional>
#include <map>
#include <string>

#include "common/ids.h"
#include "common/sync.h"
#include "rpc/network.h"

namespace concord::rpc {

/// Server-pushed cache-invalidation message. When the cooperation
/// manager withdraws a propagated DOV or invalidates it (Sect. 5.4),
/// every workstation that may hold the version in its DOV cache must
/// stop serving it — the DOV's *content* is immutable, but its
/// *visibility* just changed, and a workstation acting on a withdrawn
/// version would violate exactly the guarantee the CM's dissemination
/// control exists to give.
struct InvalidationMessage {
  enum class Kind {
    /// Propagation withdrawn (spec change, DA cancellation). The DOV
    /// may be re-propagated later.
    kWithdrawn,
    /// Invalidated for good: it will never be the ancestor of a final
    /// DOV. `replacement` carries the substitute the CM propagates.
    kInvalidated,
    /// A DA acquired the derivation lock (Sect. 5.2): other DAs'
    /// checkouts must now fail the compatibility test, so cached
    /// copies elsewhere may no longer short-circuit it. `origin_da` is
    /// the lock holder.
    kDerivationLocked,
  };

  Kind kind = Kind::kWithdrawn;
  DovId dov;
  /// The DA whose propagation was withdrawn/invalidated.
  DaId origin_da;
  /// Valid for kInvalidated.
  DovId replacement;
  /// Server node the push originates from. In a sharded plane each
  /// invalidation is published by the node that owns the DOV (the
  /// grant died there), so the hop cost is charged to the right link.
  /// Invalid (the default) falls back to the bus's coordinator node.
  NodeId origin_node;

  std::string ToString() const;
};

struct InvalidationBusStats {
  uint64_t published = 0;
  uint64_t deliveries = 0;
  /// Messages queued because the subscriber's node was down.
  uint64_t queued_node_down = 0;
  /// Queued messages redelivered after the node came back.
  uint64_t redelivered = 0;
  /// Extra transmission attempts after in-transit loss (both endpoints
  /// up): the cost of the reliable channel under a lossy LAN.
  uint64_t retransmissions = 0;
};

/// Server-side fan-out channel for InvalidationMessages. Workstations
/// subscribe a handler under their NodeId; Publish sends one message
/// per subscriber over the simulated LAN (one server->workstation hop,
/// so the push cost shows up in the network counters like every other
/// protocol message).
///
/// Delivery to a down node is *queued*, not dropped: the paper's
/// reliable-messaging rule (Sect. 5.4) applies to invalidations with
/// full force, because a workstation that silently missed a withdrawal
/// would serve the withdrawn version from its cache forever. The queue
/// drains through FlushPending(), which the client-TM calls during
/// workstation recovery before it accepts new traffic.
///
/// Thread-safe: Publish can race subscriber registration and the
/// recovery-time flush (the coherence tests drive exactly that).
/// Handlers are invoked on the publishing thread while the bus mutex is
/// held, so they must be cheap, must not publish recursively, and must
/// only touch state that is itself thread-safe (the DOV cache is).
class InvalidationBus {
 public:
  using Handler = std::function<void(const InvalidationMessage&)>;

  InvalidationBus(Network* network, NodeId server_node)
      : network_(network), server_(server_node) {}
  InvalidationBus(const InvalidationBus&) = delete;
  InvalidationBus& operator=(const InvalidationBus&) = delete;

  /// Registers (or replaces) the handler for `node`.
  void Subscribe(NodeId node, Handler handler);
  void Unsubscribe(NodeId node);

  /// Pushes `message` to every subscriber: one network hop each; down
  /// nodes get the message queued for FlushPending.
  void Publish(const InvalidationMessage& message);

  /// Redelivers messages queued while `node` was down (in order).
  /// Called by the client-TM at workstation recovery.
  void FlushPending(NodeId node);

  /// Queued (undelivered) messages for `node`.
  size_t PendingFor(NodeId node) const;

  InvalidationBusStats stats() const;

 private:
  /// One reliable transmission `from` (the publishing server node) ->
  /// node: retries in-transit losses (both endpoints up) up to
  /// kMaxTransmitAttempts, paying one network hop per attempt. False
  /// when the node (or the publisher) is down or the retry budget is
  /// exhausted — the caller queues then.
  bool TransmitLocked(NodeId from, NodeId node) REQUIRES(mu_);

  /// Retransmit budget per message. A message undeliverable this many
  /// times in a row on an up-up link is treated like a down node and
  /// queued (only reachable with pathological loss probabilities).
  static constexpr int kMaxTransmitAttempts = 16;

  Network* network_;
  NodeId server_;
  /// Held across handler invocation (documented above), so handlers
  /// must not re-enter the bus; otherwise a leaf lock.
  mutable Mutex mu_;
  std::map<uint64_t, Handler> handlers_ GUARDED_BY(mu_);  // keyed by NodeId
  std::map<uint64_t, std::deque<InvalidationMessage>> pending_
      GUARDED_BY(mu_);
  InvalidationBusStats stats_ GUARDED_BY(mu_);
};

}  // namespace concord::rpc

#endif  // CONCORD_RPC_INVALIDATION_H_
