#include "rpc/invalidation.h"

#include "common/logging.h"

namespace concord::rpc {

std::string InvalidationMessage::ToString() const {
  std::string out;
  switch (kind) {
    case Kind::kWithdrawn:
      out = "WITHDRAW ";
      break;
    case Kind::kInvalidated:
      out = "INVALIDATE ";
      break;
    case Kind::kDerivationLocked:
      out = "DERIVATION_LOCK ";
      break;
  }
  out += dov.ToString() + " from " + origin_da.ToString();
  if (replacement.valid()) out += " -> " + replacement.ToString();
  return out;
}

void InvalidationBus::Subscribe(NodeId node, Handler handler) {
  MutexLock lock(&mu_);
  handlers_[node.value()] = std::move(handler);
}

void InvalidationBus::Unsubscribe(NodeId node) {
  MutexLock lock(&mu_);
  handlers_.erase(node.value());
  pending_.erase(node.value());
}

bool InvalidationBus::TransmitLocked(NodeId from, NodeId node) {
  // The channel is reliable (retransmit-until-ack): a workstation that
  // silently missed a withdrawal would serve the withdrawn version
  // from its cache forever, so an in-transit loss on an up-up link is
  // retried — each attempt is a real hop with real cost. Only a down
  // endpoint (or an exhausted retry budget) defers to the queue.
  for (int attempt = 0; attempt < kMaxTransmitAttempts; ++attempt) {
    if (network_->Send(from, node).ok()) return true;
    if (!network_->IsUp(node) || !network_->IsUp(from)) return false;
    ++stats_.retransmissions;
  }
  return false;
}

void InvalidationBus::Publish(const InvalidationMessage& message) {
  MutexLock lock(&mu_);
  ++stats_.published;
  // Sharded plane: the owning server node pays the fan-out hops.
  NodeId from = message.origin_node.valid() ? message.origin_node : server_;
  for (auto& [node_value, handler] : handlers_) {
    NodeId node(node_value);
    // One push hop server -> workstation (retransmitted through loss).
    // An undeliverable message (node down) is queued; the workstation
    // flushes the queue during recovery, before it resumes checkouts.
    if (TransmitLocked(from, node)) {
      ++stats_.deliveries;
      handler(message);
    } else {
      ++stats_.queued_node_down;
      pending_[node_value].push_back(message);
    }
  }
}

void InvalidationBus::FlushPending(NodeId node) {
  MutexLock lock(&mu_);
  auto queue_it = pending_.find(node.value());
  if (queue_it == pending_.end()) return;
  auto handler_it = handlers_.find(node.value());
  if (handler_it == handlers_.end()) {
    pending_.erase(queue_it);
    return;
  }
  while (!queue_it->second.empty()) {
    InvalidationMessage message = queue_it->second.front();
    queue_it->second.pop_front();
    // Redelivery pays real hops too; if the node went down again the
    // message goes back to the front of the queue.
    // Redeliver from the owning node; if that node is itself down by
    // now, the coordinator relays (the withdrawal stands regardless of
    // which shard's link carries it).
    NodeId from = message.origin_node.valid() &&
                          network_->IsUp(message.origin_node)
                      ? message.origin_node
                      : server_;
    if (!TransmitLocked(from, node)) {
      queue_it->second.push_front(std::move(message));
      return;
    }
    ++stats_.deliveries;
    ++stats_.redelivered;
    handler_it->second(message);
  }
  pending_.erase(queue_it);
}

size_t InvalidationBus::PendingFor(NodeId node) const {
  MutexLock lock(&mu_);
  auto it = pending_.find(node.value());
  return it == pending_.end() ? 0 : it->second.size();
}

InvalidationBusStats InvalidationBus::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace concord::rpc
