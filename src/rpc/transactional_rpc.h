#ifndef CONCORD_RPC_TRANSACTIONAL_RPC_H_
#define CONCORD_RPC_TRANSACTIONAL_RPC_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "rpc/dedup_cache.h"
#include "rpc/network.h"

namespace concord::rpc {

/// Counters for the reliable channel. Fields are atomic
/// (ServerTmStats-style) so concurrent designer threads can bump them
/// without serializing on the dedup-table mutex; read them at
/// quiescence (or accept slightly stale values).
struct RpcStats {
  std::atomic<uint64_t> calls{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> duplicate_suppressed{0};
};

/// Reliable request/response on top of the lossy Network. The paper
/// assumes "reliable communication protocols (transactional RPC, ...)
/// which insulate the cooperation protocols from network failures and
/// workstation crashes" (Sect. 5.4). We realize this with
/// at-most-once execution: each logical call carries a fresh call id;
/// retries reuse the id, and the callee-side dedup table suppresses
/// re-execution while still re-sending the reply.
///
/// Handlers are registered per (node, method) pair; a call fails with
/// kUnavailable only if the destination stays unreachable for all
/// retry attempts — which is exactly the "workstation crash" case the
/// CM handles at a higher level.
///
/// Thread-safe: one channel serves every workstation's client-TM, so
/// concurrent designer threads call it at once. The handler and dedup
/// tables sit behind mu_ (held only for the point lookups/inserts,
/// never across a handler execution or a network hop — handlers run
/// concurrently and synchronize themselves), and the stats are atomic.
class TransactionalRpc {
 public:
  /// A handler consumes a request payload and produces a reply payload.
  using Handler = std::function<Result<std::string>(const std::string&)>;

  /// `dedup_capacity_per_peer` bounds the callee-side at-most-once
  /// table (rpc::DedupCache). Entries of live retry loops are pinned,
  /// so the bound only backstops leaks, never weakens at-most-once for
  /// a call that may still be retried.
  explicit TransactionalRpc(Network* network, int max_retries = 5,
                            size_t dedup_capacity_per_peer = 1024)
      : network_(network),
        max_retries_(max_retries),
        dedup_(dedup_capacity_per_peer) {}
  TransactionalRpc(const TransactionalRpc&) = delete;
  TransactionalRpc& operator=(const TransactionalRpc&) = delete;

  void RegisterHandler(NodeId node, const std::string& method,
                       Handler handler);

  /// Executes `method` on `to`, retrying over message loss. Exactly-
  /// once effect on the callee per call id.
  Result<std::string> Call(NodeId from, NodeId to, const std::string& method,
                           const std::string& request);

  /// Drops the callee-side dedup state for a node — part of simulating
  /// a crash of that machine (the at-most-once table is volatile
  /// memory on the callee).
  void ClearNodeState(NodeId node);

  const RpcStats& stats() const { return stats_; }
  /// The callee-side at-most-once table (bound/eviction introspection).
  const DedupCache& dedup() const { return dedup_; }
  /// Envelopes addressed to `node` (counted per logical call, like
  /// stats().calls). The sharded server plane reads this for per-node
  /// round-trip accounting.
  uint64_t CallsTo(NodeId node) const;
  void ResetStats();

 private:
  struct HandlerKey {
    NodeId node;
    std::string method;
    bool operator==(const HandlerKey&) const = default;
  };
  struct HandlerKeyHash {
    size_t operator()(const HandlerKey& key) const {
      return std::hash<uint64_t>()(key.node.value()) ^
             (std::hash<std::string>()(key.method) << 1);
    }
  };

  Network* network_;
  int max_retries_;
  IdGenerator<MsgId> call_gen_;
  /// Guards handlers_ and calls_per_node_; leaf mutex, never held
  /// across a handler execution or a Network::Send.
  mutable Mutex mu_;
  std::unordered_map<HandlerKey, Handler, HandlerKeyHash> handlers_
      GUARDED_BY(mu_);
  /// Callee-side at-most-once table, keyed by callee node. Entries are
  /// inserted PINNED and erased on every Call exit path (a returned
  /// Call never re-sends its id), so in steady state the table holds
  /// only in-flight calls; the LRU capacity is a leak backstop. Shared
  /// type with the socket transport (net::RpcServer).
  DedupCache dedup_;
  /// callee node -> logical calls addressed to it (per-node share of
  /// stats_.calls).
  std::unordered_map<NodeId, uint64_t> calls_per_node_ GUARDED_BY(mu_);
  RpcStats stats_;
};

}  // namespace concord::rpc

#endif  // CONCORD_RPC_TRANSACTIONAL_RPC_H_
