#include "rpc/transactional_rpc.h"

#include <optional>
#include <utility>

#include "common/logging.h"

namespace concord::rpc {

void TransactionalRpc::RegisterHandler(NodeId node, const std::string& method,
                                       Handler handler) {
  MutexLock lock(&mu_);
  handlers_[HandlerKey{node, method}] = std::move(handler);
}

Result<std::string> TransactionalRpc::Call(NodeId from, NodeId to,
                                           const std::string& method,
                                           const std::string& request) {
  stats_.calls.fetch_add(1, std::memory_order_relaxed);
  Handler handler;
  {
    MutexLock lock(&mu_);
    ++calls_per_node_[to];
    auto handler_it = handlers_.find(HandlerKey{to, method});
    if (handler_it == handlers_.end()) {
      stats_.failures.fetch_add(1, std::memory_order_relaxed);
      return Status::NotFound("no handler for method '" + method +
                              "' on node " + to.ToString());
    }
    handler = handler_it->second;  // copy: executed without the lock
  }
  uint64_t call_id = call_gen_.Next().value();
  // A call id lives exactly as long as its retry loop: no sender ever
  // reuses the id after Call returns, so the callee-side dedup entry
  // is dropped on every exit path — the table stays bounded by the
  // number of in-flight calls, not by the operation count. The
  // capacity bound in dedup_ is a backstop, and in-flight entries are
  // pinned against it (see DedupCache).
  auto drop_dedup = [&] { dedup_.Erase(to.value(), call_id); };

  for (int attempt = 0; attempt <= max_retries_; ++attempt) {
    if (attempt > 0) stats_.retries.fetch_add(1, std::memory_order_relaxed);
    // Request hop.
    Status sent = network_->Send(from, to);
    if (!sent.ok()) {
      if (!network_->IsUp(to) || !network_->IsUp(from)) {
        stats_.failures.fetch_add(1, std::memory_order_relaxed);
        return sent;  // crash, not loss: retrying is pointless
      }
      continue;  // lost in transit: retry with the same call id
    }
    // Execute at most once per call id. The dedup check and the result
    // insert are two separate critical sections; that is safe because a
    // call id is retried only by its originating thread, so no two
    // threads ever race on the same id.
    std::optional<std::string> cached = dedup_.Lookup(to.value(), call_id);
    std::string reply;
    if (cached.has_value()) {
      stats_.duplicate_suppressed.fetch_add(1, std::memory_order_relaxed);
      reply = std::move(*cached);
    } else {
      Result<std::string> result = handler(request);
      if (!result.ok()) {
        // Application-level failure: deliver it once, no retry. The
        // reply hop still costs latency.
        network_->Send(to, from).ok();
        return result.status();
      }
      reply = std::move(result).value();
      dedup_.Insert(to.value(), call_id, reply, /*pinned=*/true);
    }
    // Reply hop.
    Status replied = network_->Send(to, from);
    if (replied.ok()) {
      drop_dedup();
      return reply;
    }
    if (!network_->IsUp(to) || !network_->IsUp(from)) {
      stats_.failures.fetch_add(1, std::memory_order_relaxed);
      drop_dedup();
      return replied;
    }
    // Reply lost: retry; dedup makes the re-execution a no-op.
  }
  stats_.failures.fetch_add(1, std::memory_order_relaxed);
  drop_dedup();
  return Status::Unavailable("rpc '" + method + "' exhausted retries");
}

void TransactionalRpc::ClearNodeState(NodeId node) {
  dedup_.ErasePeer(node.value());
}

uint64_t TransactionalRpc::CallsTo(NodeId node) const {
  MutexLock lock(&mu_);
  auto it = calls_per_node_.find(node);
  return it == calls_per_node_.end() ? 0 : it->second;
}

void TransactionalRpc::ResetStats() {
  stats_.calls.store(0, std::memory_order_relaxed);
  stats_.retries.store(0, std::memory_order_relaxed);
  stats_.failures.store(0, std::memory_order_relaxed);
  stats_.duplicate_suppressed.store(0, std::memory_order_relaxed);
  MutexLock lock(&mu_);
  calls_per_node_.clear();
}

}  // namespace concord::rpc
