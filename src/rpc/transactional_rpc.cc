#include "rpc/transactional_rpc.h"

#include "common/logging.h"

namespace concord::rpc {

void TransactionalRpc::RegisterHandler(NodeId node, const std::string& method,
                                       Handler handler) {
  handlers_[HandlerKey{node, method}] = std::move(handler);
}

Result<std::string> TransactionalRpc::Call(NodeId from, NodeId to,
                                           const std::string& method,
                                           const std::string& request) {
  ++stats_.calls;
  auto handler_it = handlers_.find(HandlerKey{to, method});
  if (handler_it == handlers_.end()) {
    ++stats_.failures;
    return Status::NotFound("no handler for method '" + method + "' on node " +
                            to.ToString());
  }
  uint64_t call_id = call_gen_.Next().value();

  for (int attempt = 0; attempt <= max_retries_; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    // Request hop.
    Status sent = network_->Send(from, to);
    if (!sent.ok()) {
      if (!network_->IsUp(to) || !network_->IsUp(from)) {
        ++stats_.failures;
        return sent;  // crash, not loss: retrying is pointless
      }
      continue;  // lost in transit: retry with the same call id
    }
    // Execute at most once per call id.
    auto& node_executed = executed_[to];
    auto cached = node_executed.find(call_id);
    std::string reply;
    if (cached != node_executed.end()) {
      ++stats_.duplicate_suppressed;
      reply = cached->second;
    } else {
      Result<std::string> result = handler_it->second(request);
      if (!result.ok()) {
        // Application-level failure: deliver it once, no retry. The
        // reply hop still costs latency.
        network_->Send(to, from).ok();
        return result.status();
      }
      reply = *result;
      node_executed.emplace(call_id, reply);
    }
    // Reply hop.
    Status replied = network_->Send(to, from);
    if (replied.ok()) return reply;
    if (!network_->IsUp(to) || !network_->IsUp(from)) {
      ++stats_.failures;
      return replied;
    }
    // Reply lost: retry; dedup makes the re-execution a no-op.
  }
  ++stats_.failures;
  return Status::Unavailable("rpc '" + method + "' exhausted retries");
}

void TransactionalRpc::ClearNodeState(NodeId node) { executed_.erase(node); }

}  // namespace concord::rpc
