#include "rpc/two_phase_commit.h"

#include "common/logging.h"

namespace concord::rpc {

bool TwoPhaseCommitCoordinator::RoundTrip(NodeId participant_node) {
  if (local_opt_ && participant_node == node_) {
    // Main-memory communication within the same machine (Sect. 6):
    // charge local latency, no LAN messages.
    ++stats_.local_fast_paths;
    Status st = network_->Send(node_, node_);
    if (!st.ok()) return false;
    st = network_->Send(node_, node_);
    return st.ok();
  }
  // Request + reply over the LAN. Message loss is retried by the
  // transport in real deployments; at this accounting level we treat a
  // hop failure as participant-unreachable, which forces abort —
  // presumed abort keeps that safe.
  Status request = network_->Send(node_, participant_node);
  if (!request.ok()) return false;
  ++stats_.messages;
  Status reply = network_->Send(participant_node, node_);
  if (!reply.ok()) return false;
  ++stats_.messages;
  return true;
}

Result<bool> TwoPhaseCommitCoordinator::Execute(
    TxnId txn, const std::vector<TwoPcParticipant*>& participants) {
  ++stats_.protocols_run;

  // Phase 1: PREPARE round.
  std::vector<TwoPcParticipant*> voting;
  bool all_yes = true;
  for (TwoPcParticipant* participant : participants) {
    if (read_only_opt_ && participant->IsReadOnly(txn)) {
      // READ-ONLY vote: participant is done after phase 1; it still
      // costs the prepare round trip.
      if (!RoundTrip(participant->node())) {
        all_yes = false;
        break;
      }
      ++stats_.read_only_skips;
      continue;
    }
    if (!RoundTrip(participant->node())) {
      all_yes = false;
      break;
    }
    if (!participant->Prepare(txn)) {
      all_yes = false;
      voting.push_back(participant);  // must still learn the outcome
      break;
    }
    voting.push_back(participant);
  }

  // Phase 2: COMMIT / ABORT round to update participants (read-only
  // ones excluded).
  for (TwoPcParticipant* participant : voting) {
    bool reachable = RoundTrip(participant->node());
    if (all_yes) {
      // Prepared participants are obligated to commit; an unreachable
      // prepared participant would re-contact the coordinator on
      // restart (presumed abort ledger) — here the in-process call
      // applies the decision directly.
      participant->Commit(txn);
    } else {
      participant->Abort(txn);
    }
    (void)reachable;
  }

  if (all_yes) {
    ++stats_.committed;
  } else {
    ++stats_.aborted;
    CONCORD_DEBUG("2pc", "transaction " << txn.ToString() << " aborted");
  }
  return all_yes;
}

}  // namespace concord::rpc
