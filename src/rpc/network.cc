#include "rpc/network.h"

#include "common/logging.h"

namespace concord::rpc {

Network::Network(SimClock* clock, uint64_t seed) : clock_(clock), rng_(seed) {}

NodeId Network::AddNode(const std::string& name) {
  MutexLock lock(&mu_);
  NodeId id = node_gen_.Next();
  if (id.value() > kMaxNodes) {
    CONCORD_ERROR("net", "node limit " << kMaxNodes << " exceeded");
    std::abort();
  }
  names_.emplace(id, name);
  up_[id.value() - 1].store(true, std::memory_order_relaxed);
  return id;
}

Result<std::string> Network::NodeName(NodeId node) const {
  MutexLock lock(&mu_);
  auto it = names_.find(node);
  if (it == names_.end()) {
    return Status::NotFound("unknown node " + node.ToString());
  }
  return it->second;
}

void Network::SetNodeUp(NodeId node, bool up) {
  MutexLock lock(&mu_);
  auto it = names_.find(node);
  if (it == names_.end()) return;
  if (up_[node.value() - 1].load(std::memory_order_relaxed) != up) {
    CONCORD_INFO("net", "node " << it->second << " is now "
                                << (up ? "UP" : "DOWN"));
  }
  up_[node.value() - 1].store(up, std::memory_order_relaxed);
}

SimTime Network::Latency(NodeId from, NodeId to) const {
  return from == to ? local_latency_ : lan_latency_;
}

Status Network::Send(NodeId from, NodeId to) {
  MutexLock lock(&mu_);
  if (!IsUp(from)) {
    ++stats_.messages_rejected_node_down;
    return Status::Unavailable("source node down");
  }
  if (!IsUp(to)) {
    ++stats_.messages_rejected_node_down;
    return Status::Unavailable("destination node down");
  }
  double loss = loss_probability_.load(std::memory_order_relaxed);
  if (from != to && loss > 0.0 && rng_.Chance(loss)) {
    ++stats_.messages_lost;
    // A lost message still costs the sender time (timeout handled by
    // the caller); we account the hop latency once.
    clock_->Advance(Latency(from, to));
    return Status::Unavailable("message lost");
  }
  SimTime latency = Latency(from, to);
  clock_->Advance(latency);
  ++stats_.messages_sent;
  stats_.total_latency += latency;
  return Status::OK();
}

}  // namespace concord::rpc
