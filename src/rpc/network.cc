#include "rpc/network.h"

#include "common/logging.h"

namespace concord::rpc {

Network::Network(SimClock* clock, uint64_t seed) : clock_(clock), rng_(seed) {}

NodeId Network::AddNode(const std::string& name) {
  NodeId id = node_gen_.Next();
  nodes_.emplace(id, NodeState{name, true});
  return id;
}

Result<std::string> Network::NodeName(NodeId node) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    return Status::NotFound("unknown node " + node.ToString());
  }
  return it->second.name;
}

bool Network::IsUp(NodeId node) const {
  auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.up;
}

void Network::SetNodeUp(NodeId node, bool up) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return;
  if (it->second.up != up) {
    CONCORD_INFO("net", "node " << it->second.name << " is now "
                                << (up ? "UP" : "DOWN"));
  }
  it->second.up = up;
}

SimTime Network::Latency(NodeId from, NodeId to) const {
  return from == to ? local_latency_ : lan_latency_;
}

Status Network::Send(NodeId from, NodeId to) {
  if (!IsUp(from)) {
    ++stats_.messages_rejected_node_down;
    return Status::Unavailable("source node down");
  }
  if (!IsUp(to)) {
    ++stats_.messages_rejected_node_down;
    return Status::Unavailable("destination node down");
  }
  if (from != to && loss_probability_ > 0.0 &&
      rng_.Chance(loss_probability_)) {
    ++stats_.messages_lost;
    // A lost message still costs the sender time (timeout handled by
    // the caller); we account the hop latency once.
    clock_->Advance(Latency(from, to));
    return Status::Unavailable("message lost");
  }
  SimTime latency = Latency(from, to);
  clock_->Advance(latency);
  ++stats_.messages_sent;
  stats_.total_latency += latency;
  return Status::OK();
}

}  // namespace concord::rpc
