#ifndef CONCORD_RPC_TWO_PHASE_COMMIT_H_
#define CONCORD_RPC_TWO_PHASE_COMMIT_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "rpc/network.h"

namespace concord::rpc {

/// A resource manager taking part in a distributed commit. In CONCORD
/// the participants are the client-TM and server-TM halves of a DOP
/// (checkout/checkin, Begin-of-DOP, End-of-DOP "have to accomplish a
/// two-phase-commit protocol for all their critical interactions",
/// Sect. 5.2).
class TwoPcParticipant {
 public:
  virtual ~TwoPcParticipant() = default;
  /// Machine the participant runs on (determines message cost).
  virtual NodeId node() const = 0;
  /// Phase 1: vote. True = prepared (can commit), false = vote abort.
  virtual bool Prepare(TxnId txn) = 0;
  /// Phase 2 outcomes; must not fail once prepared.
  virtual void Commit(TxnId txn) = 0;
  virtual void Abort(TxnId txn) = 0;
  /// Read-only participants can be excluded from phase 2 (the
  /// "read-only optimization" of [SBCM93], mentioned in Sect. 6).
  virtual bool IsReadOnly(TxnId) const { return false; }
};

struct TwoPcStats {
  uint64_t protocols_run = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t messages = 0;
  uint64_t read_only_skips = 0;
  uint64_t local_fast_paths = 0;
  /// Interactions whose operations spanned more than one server node
  /// (true multi-participant 2PC: phase-1 envelopes + Decide fan-out),
  /// vs. the single-node degenerate case that folds both legs into one
  /// envelope.
  uint64_t multi_node_protocols = 0;
  /// Participant envelopes shipped by the multi-node path (phase 1 and
  /// phase 2 combined) — each is one server round trip.
  uint64_t participant_envelopes = 0;
};

/// Presumed-abort two-phase commit coordinator with the two
/// optimizations the paper's Sect. 6 calls out:
///  - read-only participants vote READ-ONLY in phase 1 and drop out of
///    phase 2;
///  - participants co-located with the coordinator use the main-memory
///    fast path (no LAN messages, only local latency).
class TwoPhaseCommitCoordinator {
 public:
  TwoPhaseCommitCoordinator(Network* network, NodeId coordinator_node)
      : network_(network), node_(coordinator_node) {}

  void set_read_only_optimization(bool on) { read_only_opt_ = on; }
  void set_local_optimization(bool on) { local_opt_ = on; }

  /// Runs the full protocol. Returns true if the transaction committed,
  /// false if it aborted (any NO vote or unreachable participant).
  /// Message accounting goes through the Network.
  Result<bool> Execute(TxnId txn,
                       const std::vector<TwoPcParticipant*>& participants);

  const TwoPcStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TwoPcStats{}; }

 private:
  /// One round trip coordinator <-> participant. Returns false if the
  /// participant is unreachable.
  bool RoundTrip(NodeId participant_node);

  Network* network_;
  NodeId node_;
  bool read_only_opt_ = true;
  bool local_opt_ = true;
  TwoPcStats stats_;
};

}  // namespace concord::rpc

#endif  // CONCORD_RPC_TWO_PHASE_COMMIT_H_
