#include "rpc/dedup_cache.h"

#include <utility>

namespace concord::rpc {

std::optional<std::string> DedupCache::Lookup(uint64_t peer, uint64_t call) {
  MutexLock lock(&mu_);
  auto peer_it = peers_.find(peer);
  if (peer_it == peers_.end()) return std::nullopt;
  PeerTable& table = peer_it->second;
  auto it = table.by_call.find(call);
  if (it == table.by_call.end()) return std::nullopt;
  table.lru.splice(table.lru.begin(), table.lru, it->second);
  ++stats_.hits;
  return it->second->reply;
}

bool DedupCache::Contains(uint64_t peer, uint64_t call) const {
  MutexLock lock(&mu_);
  auto peer_it = peers_.find(peer);
  return peer_it != peers_.end() && peer_it->second.by_call.count(call) > 0;
}

void DedupCache::Insert(uint64_t peer, uint64_t call, std::string reply,
                        bool pinned) {
  MutexLock lock(&mu_);
  PeerTable& table = peers_[peer];
  auto it = table.by_call.find(call);
  if (it != table.by_call.end()) {
    it->second->reply = std::move(reply);
    it->second->pinned = it->second->pinned || pinned;
    table.lru.splice(table.lru.begin(), table.lru, it->second);
    return;
  }
  table.lru.push_front(Entry{call, std::move(reply), pinned});
  table.by_call[call] = table.lru.begin();
  ++stats_.inserts;
  EvictIfNeeded(table);
}

void DedupCache::Unpin(uint64_t peer, uint64_t call, bool keep) {
  MutexLock lock(&mu_);
  auto peer_it = peers_.find(peer);
  if (peer_it == peers_.end()) return;
  PeerTable& table = peer_it->second;
  auto it = table.by_call.find(call);
  if (it == table.by_call.end()) return;
  if (!keep) {
    table.lru.erase(it->second);
    table.by_call.erase(it);
    if (table.by_call.empty()) peers_.erase(peer_it);
    return;
  }
  it->second->pinned = false;
  EvictIfNeeded(table);
}

void DedupCache::Erase(uint64_t peer, uint64_t call) {
  Unpin(peer, call, /*keep=*/false);
}

void DedupCache::PruneBelow(uint64_t peer, uint64_t acked_below) {
  MutexLock lock(&mu_);
  auto peer_it = peers_.find(peer);
  if (peer_it == peers_.end()) return;
  PeerTable& table = peer_it->second;
  for (auto it = table.lru.begin(); it != table.lru.end();) {
    if (it->call < acked_below) {
      table.by_call.erase(it->call);
      it = table.lru.erase(it);
      ++stats_.pruned;
    } else {
      ++it;
    }
  }
  if (table.by_call.empty()) peers_.erase(peer_it);
}

void DedupCache::ErasePeer(uint64_t peer) {
  MutexLock lock(&mu_);
  peers_.erase(peer);
}

size_t DedupCache::PeerEntries(uint64_t peer) const {
  MutexLock lock(&mu_);
  auto peer_it = peers_.find(peer);
  return peer_it == peers_.end() ? 0 : peer_it->second.by_call.size();
}

DedupCacheStats DedupCache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void DedupCache::EvictIfNeeded(PeerTable& table) {
  while (table.by_call.size() > per_peer_capacity_) {
    // Walk from the LRU tail past pinned (in-flight) entries; if every
    // entry is pinned the table legitimately exceeds the bound — the
    // bound trades memory for at-most-once strength, never correctness
    // of live retry loops.
    auto victim = table.lru.end();
    bool found = false;
    while (victim != table.lru.begin()) {
      --victim;
      if (!victim->pinned) {
        found = true;
        break;
      }
    }
    if (!found) return;
    table.by_call.erase(victim->call);
    table.lru.erase(victim);
    ++stats_.evictions;
  }
}

}  // namespace concord::rpc
