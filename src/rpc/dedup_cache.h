#ifndef CONCORD_RPC_DEDUP_CACHE_H_
#define CONCORD_RPC_DEDUP_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/sync.h"

namespace concord::rpc {

struct DedupCacheStats {
  uint64_t inserts = 0;
  uint64_t hits = 0;
  uint64_t evictions = 0;
  uint64_t pruned = 0;
};

/// Bounded callee-side at-most-once table, shared by the simulated
/// channel (rpc::TransactionalRpc) and the socket transport
/// (net::RpcServer). Maps (peer, call id) -> cached reply so a retried
/// call re-sends the recorded outcome instead of re-executing.
///
/// Two mechanisms keep a long-lived peer from growing server memory
/// without bound:
///
///  - Explicit acknowledgement: peers whose call ids are monotonic can
///    piggyback "everything below X is complete" (the socket envelope's
///    acked_below field); PruneBelow drops those entries outright.
///  - LRU bound: each peer holds at most `per_peer_capacity` entries;
///    inserting past that evicts the least-recently-used UNPINNED
///    entry. Entries inserted pinned (calls whose retry loop is still
///    live — the simulated channel pins, since it erases explicitly at
///    completion) are never evicted, so at-most-once can only weaken
///    for calls the eviction horizon has passed: a peer that retries a
///    call older than its last `per_peer_capacity` completed ones may
///    see it re-executed. Retry windows are short (seconds); the bound
///    is the backstop against peers that never ack.
///
/// Thread-safe; one leaf mutex (point lookups and inserts only, never
/// held across handler execution).
class DedupCache {
 public:
  explicit DedupCache(size_t per_peer_capacity = 1024)
      : per_peer_capacity_(per_peer_capacity == 0 ? 1 : per_peer_capacity) {}
  DedupCache(const DedupCache&) = delete;
  DedupCache& operator=(const DedupCache&) = delete;

  /// Cached reply for (peer, call), refreshing its LRU position.
  std::optional<std::string> Lookup(uint64_t peer, uint64_t call);

  /// True while (peer, call) has an entry (test introspection).
  bool Contains(uint64_t peer, uint64_t call) const;

  /// Records the reply. Overwrites an existing entry (keeping the
  /// stronger pin). May evict the peer's LRU unpinned entry.
  void Insert(uint64_t peer, uint64_t call, std::string reply,
              bool pinned = false);

  /// Completes a pinned entry: either drops it (keep == false, the
  /// simulated channel's call-returned path) or unpins it so the LRU
  /// bound may reclaim it later.
  void Unpin(uint64_t peer, uint64_t call, bool keep);

  void Erase(uint64_t peer, uint64_t call);

  /// Drops every entry of `peer` with call id < acked_below.
  void PruneBelow(uint64_t peer, uint64_t acked_below);

  /// Drops all state of `peer` (peer machine crashed / forgotten).
  void ErasePeer(uint64_t peer);

  size_t PeerEntries(uint64_t peer) const;
  DedupCacheStats stats() const;

 private:
  struct Entry {
    uint64_t call = 0;
    std::string reply;
    bool pinned = false;
  };
  /// Front = most recently used.
  struct PeerTable {
    std::list<Entry> lru;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> by_call;
  };

  void EvictIfNeeded(PeerTable& table) REQUIRES(mu_);

  const size_t per_peer_capacity_;
  mutable Mutex mu_;
  std::unordered_map<uint64_t, PeerTable> peers_ GUARDED_BY(mu_);
  DedupCacheStats stats_ GUARDED_BY(mu_);
};

}  // namespace concord::rpc

#endif  // CONCORD_RPC_DEDUP_CACHE_H_
