#ifndef CONCORD_RPC_NETWORK_H_
#define CONCORD_RPC_NETWORK_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace concord::rpc {

/// Per-network counters; the 2PC-optimization benchmark (EXPERIMENTS
/// A4) reads these.
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_lost = 0;
  uint64_t messages_rejected_node_down = 0;
  SimTime total_latency = 0;
};

/// The simulated workstation/server LAN of Sect. 5.1. Deterministic:
/// latency is configured, loss is drawn from a seeded Rng, and crashes
/// are injected explicitly by tests/benchmarks via SetNodeUp().
///
/// The simulation is single-threaded, so "sending" a message is
/// modeled as a synchronous hop that advances the shared SimClock by
/// the link latency and updates the counters; protocol state machines
/// (transactional RPC, 2PC) are driven by their initiator. This keeps
/// every run reproducible while preserving message counts and latency
/// totals — the quantities the paper's efficiency discussion cares
/// about.
class Network {
 public:
  Network(SimClock* clock, uint64_t seed);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a machine. The first registered node is conventionally
  /// the server.
  NodeId AddNode(const std::string& name);

  Result<std::string> NodeName(NodeId node) const;
  bool IsUp(NodeId node) const;
  /// Crash / restart a machine. Crashing is the caller's cue to also
  /// wipe the volatile state of components hosted on that machine.
  void SetNodeUp(NodeId node, bool up);

  /// One-way message hop. Fails with kUnavailable if either endpoint is
  /// down or the (seeded) loss draw fires. On success the clock
  /// advances by the link latency.
  Status Send(NodeId from, NodeId to);

  /// Latency of a single hop: intra-node messages use the main-memory
  /// cost, inter-node messages the LAN cost (Sect. 6 distinguishes the
  /// two for commit processing).
  SimTime Latency(NodeId from, NodeId to) const;

  void set_lan_latency(SimTime t) { lan_latency_ = t; }
  void set_local_latency(SimTime t) { local_latency_ = t; }
  void set_loss_probability(double p) { loss_probability_ = p; }

  SimTime lan_latency() const { return lan_latency_; }
  SimTime local_latency() const { return local_latency_; }

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }
  size_t node_count() const { return nodes_.size(); }

 private:
  struct NodeState {
    std::string name;
    bool up = true;
  };

  SimClock* clock_;
  Rng rng_;
  IdGenerator<NodeId> node_gen_;
  std::unordered_map<NodeId, NodeState> nodes_;
  SimTime lan_latency_ = 2 * kMillisecond;
  SimTime local_latency_ = 20 * kMicrosecond;
  double loss_probability_ = 0.0;
  NetworkStats stats_;
};

}  // namespace concord::rpc

#endif  // CONCORD_RPC_NETWORK_H_
