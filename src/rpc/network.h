#ifndef CONCORD_RPC_NETWORK_H_
#define CONCORD_RPC_NETWORK_H_

#include <array>
#include <atomic>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"

namespace concord::rpc {

/// Per-network counters; the 2PC-optimization benchmark (EXPERIMENTS
/// A4) reads these.
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_lost = 0;
  uint64_t messages_rejected_node_down = 0;
  SimTime total_latency = 0;
};

/// The simulated workstation/server LAN of Sect. 5.1. Deterministic:
/// latency is configured, loss is drawn from a seeded Rng, and crashes
/// are injected explicitly by tests/benchmarks via SetNodeUp().
///
/// "Sending" a message is modeled as a synchronous hop that advances
/// the shared SimClock by the link latency and updates the counters;
/// protocol state machines (transactional RPC, 2PC) are driven by
/// their initiator. This preserves message counts and latency totals —
/// the quantities the paper's efficiency discussion cares about.
///
/// Thread-safe: concurrent designer threads (one client-TM each) and
/// the server's invalidation push all share this one LAN, so the node
/// table, counters and the loss Rng sit behind one mutex. Single-
/// threaded runs stay deterministic; multi-threaded runs keep exact
/// counts but interleave loss draws in thread-schedule order.
class Network {
 public:
  /// Upper bound on registered machines; node up/down flags live in a
  /// fixed array of atomics so IsUp is lock-free (it sits on the
  /// client-TM's cache-hit fast path).
  static constexpr size_t kMaxNodes = 1024;

  Network(SimClock* clock, uint64_t seed);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a machine. The first registered node is conventionally
  /// the server.
  NodeId AddNode(const std::string& name);

  Result<std::string> NodeName(NodeId node) const;
  /// Lock-free: a relaxed atomic read (single source of truth for the
  /// node's up/down state, also consulted by cache-hit checkouts).
  bool IsUp(NodeId node) const {
    uint64_t value = node.value();
    return value >= 1 && value <= node_gen_.last() &&
           up_[value - 1].load(std::memory_order_relaxed);
  }
  /// Crash / restart a machine. Crashing is the caller's cue to also
  /// wipe the volatile state of components hosted on that machine.
  void SetNodeUp(NodeId node, bool up);

  /// One-way message hop. Fails with kUnavailable if either endpoint is
  /// down or the (seeded) loss draw fires. On success the clock
  /// advances by the link latency.
  Status Send(NodeId from, NodeId to);

  /// Latency of a single hop: intra-node messages use the main-memory
  /// cost, inter-node messages the LAN cost (Sect. 6 distinguishes the
  /// two for commit processing).
  SimTime Latency(NodeId from, NodeId to) const;

  void set_lan_latency(SimTime t) { lan_latency_ = t; }
  void set_local_latency(SimTime t) { local_latency_ = t; }
  /// Safe to call while traffic is in flight: the chaos harness churns
  /// the loss rate mid-run, so the knob is atomic (relaxed — each Send
  /// just needs some recent value, not a synchronized one).
  void set_loss_probability(double p) {
    loss_probability_.store(p, std::memory_order_relaxed);
  }

  SimTime lan_latency() const { return lan_latency_; }
  SimTime local_latency() const { return local_latency_; }

  /// Consistent snapshot of the counters.
  NetworkStats stats() const {
    MutexLock lock(&mu_);
    return stats_;
  }
  void ResetStats() {
    MutexLock lock(&mu_);
    stats_ = NetworkStats{};
  }
  size_t node_count() const { return node_gen_.last(); }

 private:
  SimClock* clock_;
  /// Guards names_, stats_ and rng_ (the latency knobs are set before
  /// traffic starts and read unguarded; loss_probability_ and up_ are
  /// atomic). Leaf lock: never held across a handler or another
  /// component's call.
  mutable Mutex mu_;
  Rng rng_ GUARDED_BY(mu_);
  IdGenerator<NodeId> node_gen_;
  std::unordered_map<NodeId, std::string> names_ GUARDED_BY(mu_);
  /// Indexed by NodeId value - 1; slots past node_gen_.last() unused.
  std::array<std::atomic<bool>, kMaxNodes> up_{};
  SimTime lan_latency_ = 2 * kMillisecond;
  SimTime local_latency_ = 20 * kMicrosecond;
  std::atomic<double> loss_probability_{0.0};
  NetworkStats stats_ GUARDED_BY(mu_);
};

}  // namespace concord::rpc

#endif  // CONCORD_RPC_NETWORK_H_
