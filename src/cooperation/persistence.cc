#include "cooperation/persistence.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace concord::cooperation::persistence {

namespace {

std::string DoubleToText(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Result<double> TextToDouble(const std::string& text) {
  if (text == "inf") return std::numeric_limits<double>::infinity();
  if (text == "-inf") return -std::numeric_limits<double>::infinity();
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) {
    return Status::InvalidArgument("bad double '" + text + "'");
  }
  return v;
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

std::string Join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.push_back(sep);
    out += parts[i];
  }
  return out;
}

std::string SerializeAttrValue(const storage::AttrValue& value) {
  switch (value.type()) {
    case storage::AttrType::kInt:
      return "i:" + std::to_string(value.as_int());
    case storage::AttrType::kDouble:
      return "d:" + DoubleToText(value.as_double());
    case storage::AttrType::kString:
      return "s:" + value.as_string();
    case storage::AttrType::kBool:
      return std::string("b:") + (value.as_bool() ? "1" : "0");
  }
  return "s:";
}

Result<storage::AttrValue> DeserializeAttrValue(const std::string& text) {
  if (text.size() < 2 || text[1] != ':') {
    return Status::InvalidArgument("bad attr value '" + text + "'");
  }
  std::string body = text.substr(2);
  switch (text[0]) {
    case 'i':
      return storage::AttrValue(static_cast<int64_t>(std::stoll(body)));
    case 'd': {
      CONCORD_ASSIGN_OR_RETURN(double v, TextToDouble(body));
      return storage::AttrValue(v);
    }
    case 's':
      return storage::AttrValue(body);
    case 'b':
      return storage::AttrValue(body == "1");
  }
  return Status::InvalidArgument("bad attr value tag in '" + text + "'");
}

std::string IdsToText(const std::vector<DaId>& ids) {
  std::vector<std::string> parts;
  for (DaId id : ids) parts.push_back(std::to_string(id.value()));
  return Join(parts, ',');
}

std::string DovIdsToText(const std::vector<DovId>& ids) {
  std::vector<std::string> parts;
  for (DovId id : ids) parts.push_back(std::to_string(id.value()));
  return Join(parts, ',');
}

template <typename IdType>
std::vector<IdType> TextToIds(const std::string& text) {
  std::vector<IdType> ids;
  if (text.empty()) return ids;
  for (const std::string& part : Split(text, ',')) {
    if (!part.empty()) ids.push_back(IdType(std::stoull(part)));
  }
  return ids;
}

}  // namespace

std::string SerializeFeature(const storage::Feature& feature) {
  using Kind = storage::Feature::Kind;
  std::vector<std::string> fields;
  switch (feature.kind()) {
    case Kind::kRange:
      fields = {"R", feature.name(), feature.attr(),
                DoubleToText(feature.min()), DoubleToText(feature.max())};
      break;
    case Kind::kEquality:
      fields = {"E", feature.name(), feature.attr(),
                SerializeAttrValue(*feature.equals_value())};
      break;
    case Kind::kPredicate:
      fields = {"P", feature.name(), feature.tool_name()};
      break;
  }
  return Join(fields, '|');
}

Result<storage::Feature> DeserializeFeature(const std::string& text) {
  std::vector<std::string> fields = Split(text, '|');
  if (fields.empty()) return Status::InvalidArgument("empty feature text");
  if (fields[0] == "R" && fields.size() == 5) {
    CONCORD_ASSIGN_OR_RETURN(double lo, TextToDouble(fields[3]));
    CONCORD_ASSIGN_OR_RETURN(double hi, TextToDouble(fields[4]));
    return storage::Feature::Range(fields[1], fields[2], lo, hi);
  }
  if (fields[0] == "E" && fields.size() == 4) {
    CONCORD_ASSIGN_OR_RETURN(storage::AttrValue value,
                             DeserializeAttrValue(fields[3]));
    return storage::Feature::Equals(fields[1], fields[2], std::move(value));
  }
  if (fields[0] == "P" && fields.size() == 3) {
    return storage::Feature::PassesTool(fields[1], fields[2]);
  }
  return Status::InvalidArgument("bad feature text '" + text + "'");
}

std::string SerializeSpec(const storage::DesignSpecification& spec) {
  std::vector<std::string> parts;
  for (const auto& feature : spec.features()) {
    parts.push_back(SerializeFeature(feature));
  }
  return Join(parts, ';');
}

Result<storage::DesignSpecification> DeserializeSpec(const std::string& text) {
  storage::DesignSpecification spec;
  if (text.empty()) return spec;
  for (const std::string& part : Split(text, ';')) {
    if (part.empty()) continue;
    CONCORD_ASSIGN_OR_RETURN(storage::Feature feature,
                             DeserializeFeature(part));
    spec.Add(std::move(feature));
  }
  return spec;
}

std::string SerializeDa(const DesignActivity& da) {
  std::ostringstream os;
  os << "id=" << da.id.value() << "\n";
  os << "dot=" << da.dot.value() << "\n";
  os << "dov0=" << (da.initial_dov ? da.initial_dov->value() : 0) << "\n";
  os << "designer=" << da.designer.value() << "\n";
  os << "state=" << static_cast<int>(da.state) << "\n";
  os << "parent=" << da.parent.value() << "\n";
  os << "workstation=" << da.workstation.value() << "\n";
  os << "children=" << IdsToText(da.children) << "\n";
  os << "finals=" << DovIdsToText(da.final_dovs) << "\n";
  os << "impossible=" << (da.impossible_reported ? 1 : 0) << "\n";
  os << "spec=" << SerializeSpec(da.spec) << "\n";
  return os.str();
}

Result<DesignActivity> DeserializeDa(const std::string& text) {
  DesignActivity da;
  for (const std::string& line : Split(text, '\n')) {
    if (line.empty()) continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("bad DA line '" + line + "'");
    }
    std::string key = line.substr(0, eq);
    std::string value = line.substr(eq + 1);
    if (key == "id") {
      da.id = DaId(std::stoull(value));
    } else if (key == "dot") {
      da.dot = DotId(std::stoull(value));
    } else if (key == "dov0") {
      uint64_t v = std::stoull(value);
      if (v != 0) da.initial_dov = DovId(v);
    } else if (key == "designer") {
      da.designer = DesignerId(std::stoull(value));
    } else if (key == "state") {
      da.state = static_cast<DaState>(std::stoi(value));
    } else if (key == "parent") {
      da.parent = DaId(std::stoull(value));
    } else if (key == "workstation") {
      da.workstation = NodeId(std::stoull(value));
    } else if (key == "children") {
      da.children = TextToIds<DaId>(value);
    } else if (key == "finals") {
      da.final_dovs = TextToIds<DovId>(value);
    } else if (key == "impossible") {
      da.impossible_reported = (value == "1");
    } else if (key == "spec") {
      CONCORD_ASSIGN_OR_RETURN(da.spec, DeserializeSpec(value));
    }
  }
  if (!da.id.valid()) {
    return Status::InvalidArgument("DA text has no id");
  }
  return da;
}

std::string SerializeRelationships(
    const std::vector<CoopRelationship>& relationships) {
  std::ostringstream os;
  for (const CoopRelationship& rel : relationships) {
    os << rel.id.value() << "|" << static_cast<int>(rel.kind) << "|"
       << rel.from.value() << "|" << rel.to.value() << "|"
       << (rel.active ? 1 : 0) << "|" << Join(rel.features, ',') << "\n";
  }
  return os.str();
}

Result<std::vector<CoopRelationship>> DeserializeRelationships(
    const std::string& text) {
  std::vector<CoopRelationship> rels;
  for (const std::string& line : Split(text, '\n')) {
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, '|');
    if (fields.size() != 6) {
      return Status::InvalidArgument("bad relationship line '" + line + "'");
    }
    CoopRelationship rel;
    rel.id = RelId(std::stoull(fields[0]));
    rel.kind = static_cast<RelKind>(std::stoi(fields[1]));
    rel.from = DaId(std::stoull(fields[2]));
    rel.to = DaId(std::stoull(fields[3]));
    rel.active = (fields[4] == "1");
    if (!fields[5].empty()) rel.features = Split(fields[5], ',');
    rels.push_back(std::move(rel));
  }
  return rels;
}

std::string SerializeProposal(const Proposal& proposal) {
  std::ostringstream os;
  os << proposal.relationship.value() << "\n"
     << proposal.from.value() << "\n"
     << proposal.to.value() << "\n";
  os << SerializeSpec([&] {
    storage::DesignSpecification s;
    for (const auto& f : proposal.for_from) s.Add(f);
    return s;
  }()) << "\n";
  os << SerializeSpec([&] {
    storage::DesignSpecification s;
    for (const auto& f : proposal.for_to) s.Add(f);
    return s;
  }()) << "\n";
  return os.str();
}

Result<Proposal> DeserializeProposal(const std::string& text) {
  std::vector<std::string> lines = Split(text, '\n');
  if (lines.size() < 5) {
    return Status::InvalidArgument("bad proposal text");
  }
  Proposal proposal;
  proposal.relationship = RelId(std::stoull(lines[0]));
  proposal.from = DaId(std::stoull(lines[1]));
  proposal.to = DaId(std::stoull(lines[2]));
  CONCORD_ASSIGN_OR_RETURN(storage::DesignSpecification from_spec,
                           DeserializeSpec(lines[3]));
  CONCORD_ASSIGN_OR_RETURN(storage::DesignSpecification to_spec,
                           DeserializeSpec(lines[4]));
  proposal.for_from = from_spec.features();
  proposal.for_to = to_spec.features();
  return proposal;
}

}  // namespace concord::cooperation::persistence
