#ifndef CONCORD_COOPERATION_DESIGN_ACTIVITY_H_
#define CONCORD_COOPERATION_DESIGN_ACTIVITY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "storage/feature.h"
#include "workflow/script.h"

namespace concord::cooperation {

/// Lifetime states of a design activity (Fig. 7).
enum class DaState {
  /// Initiated via a description vector but not yet begun.
  kGenerated,
  /// Performing design work.
  kActive,
  /// Requested to negotiate or wants to negotiate itself; internal
  /// processing is suspended.
  kNegotiating,
  /// Produced a final DOV (or reported an impossible specification) and
  /// awaits the super-DA's verdict.
  kReadyForTermination,
  /// Terminated by the super-DA; vanished from the DA hierarchy.
  kTerminated,
};

const char* DaStateToString(DaState state);

/// The fifteen operations of the simplified state/transition graph of
/// Fig. 7, numbered as in the paper.
enum class DaOperation {
  kInitDesign = 1,
  kCreateSubDa = 2,
  kStart = 3,
  kModifySubDaSpec = 4,
  kSubDaReadyToCommit = 5,
  kTerminateSubDa = 6,
  kEvaluate = 7,
  kSubDaImpossibleSpec = 8,
  kPropagate = 9,
  kRequire = 10,
  kCreateNegotiationRel = 11,
  kPropose = 12,
  kAgree = 13,
  kDisagree = 14,
  kSubDaSpecConflict = 15,
};

const char* DaOperationToString(DaOperation op);

/// A design activity: "the operational unit realizing a design task"
/// (Sect. 4.1), characterized by the description vector
/// <DOT(DOV0), SPEC, designer, DC>.
struct DesignActivity {
  DaId id;
  /// Description vector.
  DotId dot;
  std::optional<DovId> initial_dov;  // DOV0, optional scope seed
  storage::DesignSpecification spec;
  DesignerId designer;
  workflow::Script dc;  // design-control work-flow template

  DaState state = DaState::kGenerated;
  /// Invalid for the top-level DA.
  DaId parent;
  std::vector<DaId> children;
  /// Workstation the DA runs on (Sect. 5.1: "a DA is running on a
  /// single workstation").
  NodeId workstation;

  /// Final DOVs recognized so far (fulfil the whole specification).
  std::vector<DovId> final_dovs;
  /// Set when Sub_DA_Impossible_Specification was reported.
  bool impossible_reported = false;

  bool IsOpen() const {
    return state != DaState::kTerminated;
  }

  std::string ToString() const;
};

}  // namespace concord::cooperation

#endif  // CONCORD_COOPERATION_DESIGN_ACTIVITY_H_
