#ifndef CONCORD_COOPERATION_COOPERATION_MANAGER_H_
#define CONCORD_COOPERATION_COOPERATION_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "cooperation/design_activity.h"
#include "cooperation/relationships.h"
#include "storage/configuration.h"
#include "storage/repository.h"
#include "storage/repository_router.h"
#include "txn/lock_manager.h"
#include "txn/lock_router.h"
#include "txn/placement.h"
#include "txn/scope_authority.h"
#include "workflow/events.h"

namespace concord::cooperation {

struct CmStats {
  uint64_t das_created = 0;
  uint64_t das_terminated = 0;
  uint64_t delegations = 0;
  uint64_t negotiations_started = 0;
  uint64_t proposals = 0;
  uint64_t agreements = 0;
  uint64_t disagreements = 0;
  uint64_t conflicts_escalated = 0;
  uint64_t propagations = 0;
  uint64_t require_ops = 0;
  uint64_t withdrawals = 0;
  uint64_t invalidations = 0;
  uint64_t protocol_violations = 0;
  uint64_t events_delivered = 0;
  uint64_t script_nodes_started = 0;
  uint64_t script_nodes_completed = 0;
  uint64_t script_nodes_failed = 0;
};

/// Latest script-engine progress reported for a DA: which task node of
/// its design script last started/finished, and running totals. Lets a
/// supervising designer (or the sim's metrics) watch a sub-DA's script
/// advance without polling the workstation.
struct ScriptProgress {
  std::string node;  // task-node name (DOP type, "choose", "join", ...)
  std::string path;  // rank path in the lowered task graph
  uint64_t nodes_started = 0;
  uint64_t nodes_completed = 0;
  uint64_t nodes_failed = 0;
};

/// Parameters of Create_Sub_DA / Init_Design — the DA description
/// vector plus placement.
struct DaDescription {
  DotId dot;
  std::optional<DovId> initial_dov;
  storage::DesignSpecification spec;
  DesignerId designer;
  workflow::Script dc;
  NodeId workstation;
};

/// The cooperation manager (Sect. 5.4): "the mediator between
/// cooperating DAs. It enforces that cooperation takes place only
/// along established cooperation relationships, and it further checks
/// each cooperative activity to comply with the integrity constraints
/// of the underlying cooperation relationship."
///
/// Centralized at the server; persists the DA-hierarchy-describing
/// information in the server DBMS (the repository's meta store) so a
/// server crash is survivable, and implements ScopeAuthority for the
/// server-TM's checkout test. Events to DAs are delivered through an
/// EventSink installed by the embedding system (transactional RPC in
/// the full stack).
///
/// Thread-safe: every public operation takes the (recursive) manager
/// mutex, so designer threads may run cooperation ops — Propagate,
/// Withdraw, hierarchy changes — concurrently with each other and with
/// the server-TM's InScope checks. The mutex is recursive because ops
/// compose (CreateSubDa consults InScope; event delivery can re-enter
/// via the embedding system's tool runner on the same thread). It IS
/// held across event-sink and withdrawal-sink callbacks — sinks must
/// not call back into a *different* thread's CM operation
/// synchronously, and must confine themselves to thread-safe
/// components (the invalidation bus and DOV caches are). Two
/// exceptions to the lock-everything rule: the sink setters (install
/// sinks before traffic starts) and GetDa, which hands out an interior
/// pointer for driver-thread inspection — see its comment.
class CooperationManager : public txn::ScopeAuthority {
 public:
  using EventSink = std::function<void(DaId, const workflow::Event&)>;
  /// Fired after a propagation is revoked — WithdrawPropagation
  /// (`invalidated` false) or InvalidateAndReplace (`invalidated` true,
  /// `replacement` set). The embedding system fans this out to the
  /// workstation DOV caches over the invalidation bus so no
  /// workstation keeps serving the withdrawn version locally.
  using WithdrawalSink =
      std::function<void(DaId da, DovId dov, bool invalidated,
                         DovId replacement)>;

  /// Single-server plane (the original shape): one repository, one
  /// lock manager, no placement authority. The manager wraps the bare
  /// lock manager in a non-owning single-slice ServerLockTable.
  CooperationManager(storage::Repository* repository,
                     txn::LockManager* locks, SimClock* clock);

  /// Single-server plane over a node's partitioned lock table (the
  /// server-TM's `locks()`).
  CooperationManager(storage::Repository* repository,
                     txn::ServerLockTable* locks, SimClock* clock);

  /// Sharded server plane: routed storage/lock access plus the
  /// placement authority this manager drives (Create_Sub_DA places the
  /// delegated DA on the least-loaded shard; MigrateDa re-homes one).
  /// `placement` may be null (no placement decisions are made then).
  CooperationManager(storage::RepositoryRouter repository,
                     txn::LockRouter locks, txn::PlacementMap* placement,
                     SimClock* clock);

  void SetEventSink(EventSink sink) { event_sink_ = std::move(sink); }
  void SetWithdrawalSink(WithdrawalSink sink) {
    withdrawal_sink_ = std::move(sink);
  }

  // --- Hierarchy operations (Fig. 7, ops 1-6, 8) ---------------------

  /// Op 1, Init_Design: creates the top-level DA (state: generated).
  Result<DaId> InitDesign(DaDescription description);

  /// Op 2, Create_Sub_DA: delegation. Checks the creator is active and
  /// the sub-DA's DOT is a part of the super-DA's DOT; the sub-DA's
  /// spec need not refine the super's (Sect. 4.1). If `initial_dov` is
  /// given it must lie in the super-DA's scope; the sub-DA is granted
  /// read access to it.
  Result<DaId> CreateSubDa(DaId super, DaDescription description);

  /// Op 3, Start: generated -> active.
  Status Start(DaId da);

  /// Op 4, Modify_Sub_DA_Specification: only the super-DA may do this;
  /// the sub-DA receives a restart-class event and returns to active
  /// (it may keep previous DOVs as starting points).
  Status ModifySubDaSpecification(DaId super, DaId sub,
                                  storage::DesignSpecification new_spec);

  /// The sub-DA itself may only *refine* its specification.
  Status RefineOwnSpecification(DaId da,
                                storage::DesignSpecification refined);

  /// Op 5, Sub_DA_Ready_To_Commit: requires at least one final DOV;
  /// active -> ready_for_termination; the super-DA is notified and may
  /// already read the final DOVs (inheritance difference #1).
  Status SubDaReadyToCommit(DaId sub);

  /// Op 8, Sub_DA_Impossible_Specification: active ->
  /// ready_for_termination with the impossible flag; the super-DA is
  /// asked to react (terminate or modify the spec).
  Status SubDaImpossibleSpecification(DaId sub, const std::string& reason);

  /// Re-homes `da` onto server node `to` (placement rebalancing, or
  /// following a delegation whose work moved). Future checkins create
  /// their DOVs on the new shard; existing DOVs keep theirs (the id is
  /// the address, nothing is copied). Workstation placement caches go
  /// stale at this moment and resynchronize through the next
  /// kWrongShard reply. No-op error when no placement authority is
  /// wired.
  Status MigrateDa(DaId da, NodeId to);

  /// Op 6, Terminate_Sub_DA: requires all of the sub-DA's own sub-DAs
  /// terminated. Final DOVs devolve to the super-DA's scope
  /// (scope-lock inheritance); if the DA is cancelled without final
  /// DOVs, its propagated DOVs are withdrawn (Sect. 5.4).
  Status TerminateSubDa(DaId super, DaId sub);

  /// Finishes the top-level DA: "after finishing the top-level DA all
  /// locks are released".
  Status CompleteDesign(DaId top);

  /// Synthesizes the results delivered by `super`'s terminated sub-DAs
  /// (Sect. 4.1: the super-DA has "to synthesize the results delivered
  /// by those sub-DAs") into a durable configuration binding
  /// `composite` to one final DOV per sub-DA. Slots are named after the
  /// component's "name" attribute when present, else the sub-DA id.
  /// Requires every terminated sub-DA to have delivered at least one
  /// final DOV (cancelled sub-DAs are skipped).
  Result<storage::Configuration> ComposeConfiguration(
      DaId super, const std::string& name, DovId composite);

  // --- Quality (op 7) -------------------------------------------------

  /// Op 7, Evaluate: the quality state of `dov` against the owning
  /// DA's specification. When every feature holds, the DOV is marked
  /// final (persisted).
  Result<storage::QualityState> Evaluate(DaId da, DovId dov);

  // --- Usage relationships (ops 9, 10) --------------------------------

  /// Op 10, Require: establishes (or reuses) a usage relationship with
  /// `supporter` for the given feature set, notifies the supporter,
  /// and immediately serves any already-propagated qualifying DOV.
  Status Require(DaId requirer, DaId supporter,
                 const std::vector<std::string>& features);

  /// Op 9, Propagate: pre-releases `dov` along the DA's usage
  /// relationships. The DOV must lie in the DA's scope; each requiring
  /// DA whose required features are fulfilled gains read visibility.
  Status Propagate(DaId da, DovId dov);

  /// Withdrawal (Sect. 5.4): revokes a propagated DOV (spec change or
  /// cancellation); all requiring DAs that saw it are notified.
  Status WithdrawPropagation(DaId da, DovId dov);

  /// Invalidation (Sect. 5.4): marks `dov` as never becoming an
  /// ancestor of a final DOV and propagates `replacement` (which must
  /// fulfil at least the features of the invalidated DOV) in its place.
  Status InvalidateAndReplace(DaId da, DovId dov, DovId replacement);

  /// Propagated DOVs of `da` for which it has "become clear that [the]
  /// pre-released DOV will not be an ancestor of a final DOV" — i.e.
  /// the DA has final DOVs and the pre-released version is not on any
  /// derivation path to one of them. These are exactly the versions
  /// Sect. 5.4 says must be invalidated and replaced.
  std::vector<DovId> InvalidationCandidates(DaId da) const;

  // --- Negotiation (ops 11-15) ----------------------------------------

  /// Op 11, Create_Negotiation_Relationship: set by the common super-DA
  /// between two of its sub-DAs.
  Result<RelId> CreateNegotiationRelationship(
      DaId super, DaId a, DaId b, const std::vector<std::string>& subject);

  /// Op 12, Propose: dynamically establishes the relationship between
  /// siblings if absent; both parties enter `negotiating`.
  Status Propose(DaId from, DaId to, Proposal proposal);

  /// Op 13 / 14. Only the proposal's receiver may answer. On Agree the
  /// side-specific feature changes are applied to both specs and both
  /// parties return to active; on Disagree the proposal is dropped.
  Status Agree(DaId da);
  Status Disagree(DaId da);

  /// Op 15, Sub_DAs_Specification_Conflict: the parties abandon the
  /// negotiation and their common super-DA is asked to resolve it.
  Status SubDasSpecificationConflict(DaId a, DaId b);

  // --- Scope (ScopeAuthority for the server-TM) -----------------------

  /// A DA's scope: its derivation graph, the final DOVs of terminated
  /// sub-DAs (via inheritance), and DOVs visible along usage
  /// relationships.
  bool InScope(DaId da, DovId dov) override;

  /// Called after a DOP checkin so newly created DOVs enter the scope
  /// of the creating DA (the server-TM already set the scope owner; CM
  /// hooks for bookkeeping/persistence).
  void NoteCheckin(DaId da, DovId dov);

  /// Per-node progress feed from a DA's design-script engine (the DM's
  /// progress sink is wired here by the embedding system). Called from
  /// the choreographer thread of the owning workstation; safe against
  /// concurrent CM traffic.
  void NoteScriptProgress(DaId da, const std::string& node,
                          const std::string& path, bool started, bool failed);
  /// Latest reported progress for `da` (empty record if none yet).
  ScriptProgress ScriptProgressOf(DaId da) const;

  // --- Introspection ----------------------------------------------------

  /// Pointer into the DA table. The pointer itself stays valid for the
  /// CM's lifetime (entries are only removed by Crash()), but reading
  /// fields through it is NOT synchronized against concurrent
  /// mutators — it is a driver-thread/quiescent inspection accessor.
  /// Concurrent readers must use the copying accessors below
  /// (StateOf, Children, AllDas, RelationshipsOf, PendingProposalFor,
  /// Depth) or InScope.
  Result<const DesignActivity*> GetDa(DaId da) const;
  Result<DaState> StateOf(DaId da) const;
  std::vector<DaId> Children(DaId da) const;
  std::vector<DaId> AllDas() const;
  /// Relationships `da` takes part in (any kind).
  std::vector<CoopRelationship> RelationshipsOf(DaId da) const;
  /// Copy of the proposal awaiting `da`'s answer (empty if none).
  std::optional<Proposal> PendingProposalFor(DaId da) const;
  /// Depth of `da` in the hierarchy (top-level = 0).
  int Depth(DaId da) const;

  /// Snapshot under the manager mutex: concurrent designer threads
  /// mutate the counters, so a reference into the live struct would
  /// race them.
  CmStats stats() const {
    RecursiveMutexLock lock(&mu_);
    return stats_;
  }

  // --- Failure handling -------------------------------------------------

  /// Server crash handling: the CM state is volatile; Recover() reloads
  /// the DA hierarchy, relationships and scope-locks from the
  /// repository's meta store (which the repository itself recovers from
  /// its WAL).
  void Crash();
  Status Recover();

  /// Rebuilds the scope-lock and usage-grant tables from the persisted
  /// state without touching the in-memory DA hierarchy. Called after a
  /// SINGLE server node of a sharded plane recovers: that node's lock
  /// manager restarted empty while the CM (on the coordinator) kept
  /// running, so only the lock state needs re-deriving. Idempotent
  /// across all shards.
  Status ReestablishLocks();

 private:
  Result<DesignActivity*> GetMutableDa(DaId da) REQUIRES(mu_);
  Status RequireState(const DesignActivity& da, DaState state,
                      DaOperation op) REQUIRES(mu_);
  Status ProtocolError(const std::string& message) REQUIRES(mu_);
  void Deliver(DaId to, workflow::Event event) REQUIRES(mu_);
  /// Persists one DA (and the relationship table) to the repository.
  Status PersistDa(const DesignActivity& da);
  Status PersistRelationships() REQUIRES(mu_);
  /// Finds an active relationship of `kind` connecting a and b.
  CoopRelationship* FindRelationship(RelKind kind, DaId a, DaId b)
      REQUIRES(mu_);
  /// Lock-table rebuild shared by Recover and ReestablishLocks.
  Status ReestablishLocksLocked() REQUIRES(mu_);

  /// Routed storage/lock access: degenerate single-shard routers in
  /// the classic constructor, plane-wide routing in the sharded one.
  storage::RepositoryRouter repository_;
  /// Adapter for the classic LockManager* constructor: a single-slice
  /// non-owning table the router below can point at. Null otherwise.
  /// Declared before locks_ (initialization order).
  std::unique_ptr<txn::ServerLockTable> adapter_locks_;
  txn::LockRouter locks_;
  /// Placement authority this manager drives (null: no placement).
  txn::PlacementMap* placement_ = nullptr;
  SimClock* clock_;
  EventSink event_sink_;
  WithdrawalSink withdrawal_sink_;

  /// Guards the DA table, relationships and proposals. Recursive: CM
  /// ops nest (and event sinks may re-enter on the delivering thread).
  /// Ordered BEFORE the repository/lock-manager mutexes — CM ops call
  /// into both while holding it; nothing in those layers calls back.
  mutable RecursiveMutex mu_;

  IdGenerator<DaId> da_gen_ GUARDED_BY(mu_);
  IdGenerator<RelId> rel_gen_ GUARDED_BY(mu_);
  /// Keyed by DaId value.
  std::map<uint64_t, DesignActivity> das_ GUARDED_BY(mu_);
  std::vector<CoopRelationship> relationships_ GUARDED_BY(mu_);
  std::unordered_map<DaId, std::optional<Proposal>> pending_proposals_
      GUARDED_BY(mu_);
  std::unordered_map<DaId, ScriptProgress> script_progress_ GUARDED_BY(mu_);

  CmStats stats_ GUARDED_BY(mu_);
};

}  // namespace concord::cooperation

#endif  // CONCORD_COOPERATION_COOPERATION_MANAGER_H_
