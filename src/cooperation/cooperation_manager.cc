#include "cooperation/cooperation_manager.h"

#include <algorithm>

#include "common/logging.h"
#include "cooperation/persistence.h"
#include "storage/configuration.h"

namespace concord::cooperation {

namespace {
constexpr char kDaPrefix[] = "cm/da/";
constexpr char kRelsKey[] = "cm/rels";
constexpr char kProposalPrefix[] = "cm/proposal/";
constexpr char kScopePrefix[] = "cm/scope/";
constexpr char kGrantPrefix[] = "cm/grant/";

std::string DaKey(DaId da) {
  return std::string(kDaPrefix) + std::to_string(da.value());
}
}  // namespace

const char* DaStateToString(DaState state) {
  switch (state) {
    case DaState::kGenerated:
      return "generated";
    case DaState::kActive:
      return "active";
    case DaState::kNegotiating:
      return "negotiating";
    case DaState::kReadyForTermination:
      return "ready_for_termination";
    case DaState::kTerminated:
      return "terminated";
  }
  return "?";
}

const char* DaOperationToString(DaOperation op) {
  switch (op) {
    case DaOperation::kInitDesign:
      return "Init_Design";
    case DaOperation::kCreateSubDa:
      return "Create_Sub_DA";
    case DaOperation::kStart:
      return "Start";
    case DaOperation::kModifySubDaSpec:
      return "Modify_Sub_DA_Specification";
    case DaOperation::kSubDaReadyToCommit:
      return "Sub_DA_Ready_To_Commit";
    case DaOperation::kTerminateSubDa:
      return "Terminate_Sub_DA";
    case DaOperation::kEvaluate:
      return "Evaluate";
    case DaOperation::kSubDaImpossibleSpec:
      return "Sub_DA_Impossible_Specification";
    case DaOperation::kPropagate:
      return "Propagate";
    case DaOperation::kRequire:
      return "Require";
    case DaOperation::kCreateNegotiationRel:
      return "Create_Negotiation_Relationship";
    case DaOperation::kPropose:
      return "Propose";
    case DaOperation::kAgree:
      return "Agree";
    case DaOperation::kDisagree:
      return "Disagree";
    case DaOperation::kSubDaSpecConflict:
      return "Sub_DAs_Specification_Conflict";
  }
  return "?";
}

std::string DesignActivity::ToString() const {
  std::string out = id.ToString();
  out += " [" + std::string(DaStateToString(state)) + "]";
  if (parent.valid()) out += " sub of " + parent.ToString();
  out += " " + spec.ToString();
  return out;
}

const char* RelKindToString(RelKind kind) {
  switch (kind) {
    case RelKind::kDelegation:
      return "delegation";
    case RelKind::kNegotiation:
      return "negotiation";
    case RelKind::kUsage:
      return "usage";
  }
  return "?";
}

std::string CoopRelationship::ToString() const {
  return std::string(RelKindToString(kind)) + "(" + from.ToString() + " -> " +
         to.ToString() + ")";
}

CooperationManager::CooperationManager(storage::Repository* repository,
                                       txn::LockManager* locks,
                                       SimClock* clock)
    : repository_(repository),
      adapter_locks_(std::make_unique<txn::ServerLockTable>(locks)),
      locks_(adapter_locks_.get()),
      clock_(clock) {}

CooperationManager::CooperationManager(storage::Repository* repository,
                                       txn::ServerLockTable* locks,
                                       SimClock* clock)
    : repository_(repository), locks_(locks), clock_(clock) {}

CooperationManager::CooperationManager(storage::RepositoryRouter repository,
                                       txn::LockRouter locks,
                                       txn::PlacementMap* placement,
                                       SimClock* clock)
    : repository_(std::move(repository)),
      locks_(std::move(locks)),
      placement_(placement),
      clock_(clock) {}

Result<DesignActivity*> CooperationManager::GetMutableDa(DaId da) {
  auto it = das_.find(da.value());
  if (it == das_.end()) {
    return Status::NotFound("no design activity " + da.ToString());
  }
  return &it->second;
}

Result<const DesignActivity*> CooperationManager::GetDa(DaId da) const {
  RecursiveMutexLock lock(&mu_);
  auto it = das_.find(da.value());
  if (it == das_.end()) {
    return Status::NotFound("no design activity " + da.ToString());
  }
  return &it->second;
}

Result<DaState> CooperationManager::StateOf(DaId da) const {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(const DesignActivity* activity, GetDa(da));
  return activity->state;
}

Status CooperationManager::ProtocolError(const std::string& message) {
  ++stats_.protocol_violations;
  return Status::ProtocolViolation(message);
}

Status CooperationManager::RequireState(const DesignActivity& da,
                                        DaState state, DaOperation op) {
  if (da.state != state) {
    return ProtocolError(std::string(DaOperationToString(op)) +
                         " requires " + da.id.ToString() + " to be " +
                         DaStateToString(state) + ", but it is " +
                         DaStateToString(da.state));
  }
  return Status::OK();
}

void CooperationManager::Deliver(DaId to, workflow::Event event) {
  ++stats_.events_delivered;
  if (event_sink_) event_sink_(to, event);
}

Status CooperationManager::PersistDa(const DesignActivity& da) {
  TxnId txn = repository_.Begin();
  Status st =
      repository_.PutMeta(txn, DaKey(da.id), persistence::SerializeDa(da));
  if (st.ok()) st = repository_.Commit(txn);
  if (!st.ok()) repository_.Abort(txn).ok();
  return st;
}

Status CooperationManager::PersistRelationships() {
  TxnId txn = repository_.Begin();
  Status st = repository_.PutMeta(
      txn, kRelsKey, persistence::SerializeRelationships(relationships_));
  if (st.ok()) st = repository_.Commit(txn);
  if (!st.ok()) repository_.Abort(txn).ok();
  return st;
}

CoopRelationship* CooperationManager::FindRelationship(RelKind kind, DaId a,
                                                       DaId b) {
  for (CoopRelationship& rel : relationships_) {
    if (rel.kind == kind && rel.active && rel.Connects(a, b)) return &rel;
  }
  return nullptr;
}

// --- Hierarchy -------------------------------------------------------

Result<DaId> CooperationManager::InitDesign(DaDescription description) {
  RecursiveMutexLock lock(&mu_);
  DaId id = da_gen_.Next();
  DesignActivity da;
  da.id = id;
  da.dot = description.dot;
  da.initial_dov = description.initial_dov;
  da.spec = std::move(description.spec);
  da.designer = description.designer;
  da.dc = std::move(description.dc);
  da.workstation = description.workstation;
  da.state = DaState::kGenerated;
  if (da.initial_dov) {
    locks_.GrantUsageRead(*da.initial_dov, id);
  }
  das_.emplace(id.value(), std::move(da));
  // Placement decision: a fresh top-level design goes to the least-
  // loaded server node (its checkins will create DOVs there).
  if (placement_ != nullptr) placement_->AssignLeastLoaded(id);
  ++stats_.das_created;
  CONCORD_RETURN_NOT_OK(PersistDa(das_.at(id.value())));
  CONCORD_INFO("cm", "Init_Design -> " << id.ToString());
  return id;
}

Result<DaId> CooperationManager::CreateSubDa(DaId super,
                                             DaDescription description) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * parent, GetMutableDa(super));
  CONCORD_RETURN_NOT_OK(
      RequireState(*parent, DaState::kActive, DaOperation::kCreateSubDa));
  // "The DOT of the sub-DA has to be a 'part' of the super-DA's DOT."
  if (!repository_.schema().IsPartOf(description.dot, parent->dot)) {
    return ProtocolError("sub-DA DOT " + description.dot.ToString() +
                         " is not a part of super-DA DOT " +
                         parent->dot.ToString());
  }
  // An initial DOV must come from the super-DA's scope.
  if (description.initial_dov && !InScope(super, *description.initial_dov)) {
    return ProtocolError("initial DOV " + description.initial_dov->ToString() +
                         " is not in the scope of " + super.ToString());
  }

  DaId id = da_gen_.Next();
  DesignActivity da;
  da.id = id;
  da.dot = description.dot;
  da.initial_dov = description.initial_dov;
  da.spec = std::move(description.spec);
  da.designer = description.designer;
  da.dc = std::move(description.dc);
  da.workstation = description.workstation;
  da.state = DaState::kGenerated;
  da.parent = super;
  if (da.initial_dov) {
    locks_.GrantUsageRead(*da.initial_dov, id);
  }
  das_.emplace(id.value(), std::move(da));
  parent->children.push_back(id);

  CoopRelationship rel;
  rel.id = rel_gen_.Next();
  rel.kind = RelKind::kDelegation;
  rel.from = super;
  rel.to = id;
  relationships_.push_back(std::move(rel));

  // Placement decision at delegation: the sub-DA's work (and its
  // future DOVs) goes to the least-loaded server node, which may well
  // differ from the super-DA's home — this is where the plane actually
  // spreads, since every delegation is a new independent work stream.
  if (placement_ != nullptr) placement_->AssignLeastLoaded(id);
  ++stats_.das_created;
  ++stats_.delegations;
  CONCORD_RETURN_NOT_OK(PersistDa(das_.at(id.value())));
  CONCORD_RETURN_NOT_OK(PersistDa(*parent));
  CONCORD_RETURN_NOT_OK(PersistRelationships());
  CONCORD_INFO("cm", "Create_Sub_DA " << super.ToString() << " -> "
                                      << id.ToString());
  return id;
}

Status CooperationManager::MigrateDa(DaId da, NodeId to) {
  RecursiveMutexLock lock(&mu_);
  if (placement_ == nullptr) {
    return Status::FailedPrecondition(
        "no placement authority wired: single-server plane");
  }
  CONCORD_RETURN_NOT_OK(GetMutableDa(da).status());
  CONCORD_ASSIGN_OR_RETURN(NodeId from, placement_->Migrate(da, to));
  CONCORD_INFO("cm", "Migrate " << da.ToString() << ": " << from.ToString()
                                << " -> " << to.ToString());
  return Status::OK();
}

Status CooperationManager::Start(DaId da) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * activity, GetMutableDa(da));
  CONCORD_RETURN_NOT_OK(
      RequireState(*activity, DaState::kGenerated, DaOperation::kStart));
  activity->state = DaState::kActive;
  return PersistDa(*activity);
}

Status CooperationManager::ModifySubDaSpecification(
    DaId super, DaId sub, storage::DesignSpecification new_spec) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * child, GetMutableDa(sub));
  if (child->parent != super) {
    return ProtocolError(sub.ToString() + " is not a sub-DA of " +
                         super.ToString());
  }
  if (child->state == DaState::kTerminated) {
    return ProtocolError("cannot modify the specification of terminated " +
                         sub.ToString());
  }
  // A propagated DOV whose features disappear from the new spec must be
  // withdrawn (Sect. 5.4). Detect affected propagations before the
  // switch.
  std::vector<DovId> to_withdraw;
  for (DovId dov : repository_.DovsOf(sub)) {
    auto record = repository_.Get(dov);
    if (!record.ok() || !record->propagated) continue;
    // Required features of the usage relationships this DOV served.
    for (const CoopRelationship& rel : relationships_) {
      if (rel.kind != RelKind::kUsage || !rel.active || rel.to != sub) {
        continue;
      }
      for (const std::string& feature : rel.features) {
        if (new_spec.Find(feature) == nullptr) {
          to_withdraw.push_back(dov);
          break;
        }
      }
    }
  }

  child->spec = std::move(new_spec);
  child->final_dovs.clear();  // finality is relative to the spec
  child->impossible_reported = false;
  child->state = DaState::kActive;
  CONCORD_RETURN_NOT_OK(PersistDa(*child));

  for (DovId dov : to_withdraw) {
    WithdrawPropagation(sub, dov).ok();
  }

  workflow::Event event;
  event.type = "Modify_Sub_DA_Specification";
  event.from_da = super;
  Deliver(sub, std::move(event));
  return Status::OK();
}

Status CooperationManager::RefineOwnSpecification(
    DaId da, storage::DesignSpecification refined) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * activity, GetMutableDa(da));
  if (activity->state != DaState::kActive) {
    return ProtocolError("specification refinement requires an active DA");
  }
  // "The sub-DA is only allowed to refine its own specification by
  // addition of new features or by further restricting existing
  // features" (Sect. 4.1).
  if (!refined.IsRefinementOf(activity->spec)) {
    return ProtocolError("proposed specification of " + da.ToString() +
                         " is not a refinement");
  }
  activity->spec = std::move(refined);
  activity->final_dovs.clear();
  return PersistDa(*activity);
}

Status CooperationManager::SubDaReadyToCommit(DaId sub) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * child, GetMutableDa(sub));
  CONCORD_RETURN_NOT_OK(RequireState(*child, DaState::kActive,
                                     DaOperation::kSubDaReadyToCommit));
  if (!child->parent.valid()) {
    return ProtocolError("top-level " + sub.ToString() +
                         " has no super-DA to report to; use CompleteDesign");
  }
  if (child->final_dovs.empty()) {
    return ProtocolError(sub.ToString() +
                         " has no final DOV (run Evaluate first)");
  }
  child->state = DaState::kReadyForTermination;
  CONCORD_RETURN_NOT_OK(PersistDa(*child));

  // Inheritance difference #1: "a super-DA may read the final DOVs of a
  // sub-DA as soon as the sub-DA changes its state to
  // ready-for-termination".
  for (DovId dov : child->final_dovs) {
    locks_.GrantUsageRead(dov, child->parent);
  }

  workflow::Event event;
  event.type = "Sub_DA_Ready_To_Commit";
  event.from_da = sub;
  Deliver(child->parent, std::move(event));
  return Status::OK();
}

Status CooperationManager::SubDaImpossibleSpecification(
    DaId sub, const std::string& reason) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * child, GetMutableDa(sub));
  CONCORD_RETURN_NOT_OK(RequireState(*child, DaState::kActive,
                                     DaOperation::kSubDaImpossibleSpec));
  if (!child->parent.valid()) {
    return ProtocolError("top-level " + sub.ToString() +
                         " cannot report an impossible specification");
  }
  child->state = DaState::kReadyForTermination;
  child->impossible_reported = true;
  CONCORD_RETURN_NOT_OK(PersistDa(*child));

  workflow::Event event;
  event.type = "Sub_DA_Impossible_Specification";
  event.from_da = sub;
  event.params["reason"] = reason;
  Deliver(child->parent, std::move(event));
  CONCORD_INFO("cm", sub.ToString() << " reports impossible specification: "
                                    << reason);
  return Status::OK();
}

Status CooperationManager::TerminateSubDa(DaId super, DaId sub) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * parent, GetMutableDa(super));
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * child, GetMutableDa(sub));
  if (child->parent != super) {
    return ProtocolError(sub.ToString() + " is not a sub-DA of " +
                         super.ToString());
  }
  if (child->state == DaState::kTerminated) {
    return ProtocolError(sub.ToString() + " already terminated");
  }
  // "The sub-DA's termination is the precondition for the termination
  // of the super-DA" — recursively: all children must be gone first.
  for (DaId grandchild : child->children) {
    auto gc = GetDa(grandchild);
    if (gc.ok() && (*gc)->state != DaState::kTerminated) {
      return ProtocolError("cannot terminate " + sub.ToString() + ": sub-DA " +
                           grandchild.ToString() + " is still " +
                           DaStateToString((*gc)->state));
    }
  }

  bool cancelled = child->final_dovs.empty();
  if (cancelled) {
    // Cancellation: withdraw all pre-released information (Sect. 5.4).
    for (DovId dov : repository_.DovsOf(sub)) {
      auto record = repository_.Get(dov);
      if (record.ok() && record->propagated) {
        WithdrawPropagation(sub, dov).ok();
      }
    }
  } else {
    // "The final DOVs devolve to the scope of the super-DA": scope-lock
    // inheritance, retained by the super-DA.
    locks_.InheritScopeLocks(super, sub, child->final_dovs);
    TxnId txn = repository_.Begin();
    for (DovId dov : child->final_dovs) {
      repository_.PutMeta(txn, kScopePrefix + std::to_string(dov.value()),
                           std::to_string(super.value()))
          .ok();
    }
    repository_.Commit(txn).ok();
  }

  child->state = DaState::kTerminated;
  // A terminated DA creates no more DOVs: free its placement slot so
  // the least-loaded policy sees the true live load.
  if (placement_ != nullptr) placement_->Release(sub);
  ++stats_.das_terminated;
  CONCORD_RETURN_NOT_OK(PersistDa(*child));
  CONCORD_RETURN_NOT_OK(PersistDa(*parent));

  workflow::Event event;
  event.type = "Terminate_Sub_DA";
  event.from_da = super;
  Deliver(sub, std::move(event));
  return Status::OK();
}

Status CooperationManager::CompleteDesign(DaId top) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * da, GetMutableDa(top));
  if (da->parent.valid()) {
    return ProtocolError(top.ToString() + " is not the top-level DA");
  }
  if (da->state == DaState::kTerminated) {
    return ProtocolError(top.ToString() + " already terminated");
  }
  for (DaId child : da->children) {
    auto c = GetDa(child);
    if (c.ok() && (*c)->state != DaState::kTerminated) {
      return ProtocolError("cannot complete the design: " + child.ToString() +
                           " is still " + DaStateToString((*c)->state));
    }
  }
  da->state = DaState::kTerminated;
  if (placement_ != nullptr) placement_->Release(top);
  ++stats_.das_terminated;
  CONCORD_RETURN_NOT_OK(PersistDa(*da));
  // "After finishing the top-level DA all locks are released."
  locks_.ReleaseAll();
  CONCORD_INFO("cm", "design completed at " << top.ToString()
                                            << ", all locks released");
  return Status::OK();
}

Result<storage::Configuration> CooperationManager::ComposeConfiguration(
    DaId super, const std::string& name, DovId composite) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(const DesignActivity* parent, GetDa(super));
  if (!InScope(super, composite)) {
    return ProtocolError("composite " + composite.ToString() +
                         " is not in the scope of " + super.ToString());
  }
  storage::Configuration config;
  config.name = name;
  config.composite = composite;
  for (DaId child_id : parent->children) {
    CONCORD_ASSIGN_OR_RETURN(const DesignActivity* child, GetDa(child_id));
    if (child->state != DaState::kTerminated) {
      return ProtocolError("cannot compose: sub-DA " + child_id.ToString() +
                           " is still " + DaStateToString(child->state));
    }
    if (child->final_dovs.empty()) continue;  // cancelled sub-DA
    // The best (first-marked) final DOV represents the sub-task.
    DovId chosen = child->final_dovs.front();
    CONCORD_ASSIGN_OR_RETURN(storage::DovRecord record,
                             repository_.Get(chosen));
    std::string slot = child_id.ToString();
    auto component_name = record.data.GetAttr("name");
    if (component_name.ok() && component_name->is_string() &&
        !component_name->as_string().empty()) {
      slot = component_name->as_string();
    }
    config.bindings[slot] = chosen;
  }
  storage::ConfigurationStore store(repository_);
  CONCORD_RETURN_NOT_OK(store.Save(config));
  CONCORD_INFO("cm", "composed configuration '" << name << "' with "
                                                << config.bindings.size()
                                                << " bindings");
  return config;
}

// --- Quality -----------------------------------------------------------

Result<storage::QualityState> CooperationManager::Evaluate(DaId da,
                                                           DovId dov) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * activity, GetMutableDa(da));
  if (!InScope(da, dov)) {
    return ProtocolError(dov.ToString() + " is not in the scope of " +
                         da.ToString());
  }
  CONCORD_ASSIGN_OR_RETURN(storage::DovRecord record, repository_.Get(dov));
  storage::QualityState quality = activity->spec.Evaluate(record.data);
  if (quality.is_final() && !record.final_dov) {
    record.final_dov = true;
    TxnId txn = repository_.Begin();
    Status st = repository_.Put(txn, record);
    if (st.ok()) st = repository_.Commit(txn);
    if (!st.ok()) {
      repository_.Abort(txn).ok();
      return st;
    }
    if (std::find(activity->final_dovs.begin(), activity->final_dovs.end(),
                  dov) == activity->final_dovs.end()) {
      activity->final_dovs.push_back(dov);
      CONCORD_RETURN_NOT_OK(PersistDa(*activity));
    }
  }
  return quality;
}

// --- Usage ---------------------------------------------------------------

Status CooperationManager::Require(DaId requirer, DaId supporter,
                                   const std::vector<std::string>& features) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * req, GetMutableDa(requirer));
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * sup, GetMutableDa(supporter));
  if (req->state != DaState::kActive) {
    return ProtocolError("Require needs an active requiring DA");
  }
  if (!sup->IsOpen()) {
    return ProtocolError("supporting DA " + supporter.ToString() +
                         " is terminated");
  }
  // "A precondition for the usage relationship is that the requiring DA
  // knows about the design specification of the supporting DA": every
  // required feature must exist in the supporter's spec.
  for (const std::string& feature : features) {
    if (sup->spec.Find(feature) == nullptr) {
      return ProtocolError("feature '" + feature + "' is not part of " +
                           supporter.ToString() + "'s specification");
    }
  }

  CoopRelationship* rel =
      FindRelationship(RelKind::kUsage, requirer, supporter);
  if (rel == nullptr) {
    CoopRelationship new_rel;
    new_rel.id = rel_gen_.Next();
    new_rel.kind = RelKind::kUsage;
    new_rel.from = requirer;
    new_rel.to = supporter;
    new_rel.features = features;
    relationships_.push_back(std::move(new_rel));
    rel = &relationships_.back();
  } else {
    // Accumulate required features.
    for (const std::string& feature : features) {
      if (std::find(rel->features.begin(), rel->features.end(), feature) ==
          rel->features.end()) {
        rel->features.push_back(feature);
      }
    }
  }
  ++stats_.require_ops;
  CONCORD_RETURN_NOT_OK(PersistRelationships());

  // Notify the supporter (its ECA rules may react with Propagate).
  workflow::Event event;
  event.type = "Require";
  event.from_da = requirer;
  for (size_t i = 0; i < features.size(); ++i) {
    event.params["feature" + std::to_string(i)] = features[i];
  }
  Deliver(supporter, std::move(event));

  // Serve already-propagated qualifying DOVs immediately.
  for (DovId dov : repository_.DovsOf(supporter)) {
    auto record = repository_.Get(dov);
    if (!record.ok() || !record->propagated || record->invalidated) continue;
    if (sup->spec.FulfillsSubset(record->data, features)) {
      locks_.GrantUsageRead(dov, requirer);
      TxnId txn = repository_.Begin();
      repository_.PutMeta(txn, kGrantPrefix + std::to_string(dov.value()) +
                                     "/" + std::to_string(requirer.value()),
                           "1")
          .ok();
      repository_.Commit(txn).ok();
      workflow::Event served;
      served.type = "Propagate";
      served.from_da = supporter;
      served.dov = dov;
      Deliver(requirer, std::move(served));
    }
  }
  return Status::OK();
}

Status CooperationManager::Propagate(DaId da, DovId dov) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * activity, GetMutableDa(da));
  if (activity->state != DaState::kActive &&
      activity->state != DaState::kReadyForTermination) {
    return ProtocolError("Propagate requires an active DA");
  }
  if (locks_.ScopeOwner(dov) != da) {
    return ProtocolError(dov.ToString() + " is not owned by " + da.ToString());
  }
  CONCORD_ASSIGN_OR_RETURN(storage::DovRecord record, repository_.Get(dov));
  if (record.invalidated) {
    return ProtocolError("cannot propagate invalidated " + dov.ToString());
  }

  // Persist the propagated flag ("all propagated DOVs have a certain
  // quality state determined by the operation Evaluate" — evaluate
  // implicitly here to stamp quality).
  if (!record.propagated) {
    record.propagated = true;
    TxnId txn = repository_.Begin();
    Status st = repository_.Put(txn, record);
    if (st.ok()) st = repository_.Commit(txn);
    if (!st.ok()) {
      repository_.Abort(txn).ok();
      return st;
    }
  }
  ++stats_.propagations;

  // Deliver along usage relationships whose required quality holds.
  // Inheritance difference #2: the grant is tied to the usage
  // relationship and the fulfilled feature set.
  for (const CoopRelationship& rel : relationships_) {
    if (rel.kind != RelKind::kUsage || !rel.active || rel.to != da) continue;
    if (!activity->spec.FulfillsSubset(record.data, rel.features)) continue;
    locks_.GrantUsageRead(dov, rel.from);
    TxnId txn = repository_.Begin();
    repository_.PutMeta(txn, kGrantPrefix + std::to_string(dov.value()) +
                                   "/" + std::to_string(rel.from.value()),
                         "1")
        .ok();
    repository_.Commit(txn).ok();
    workflow::Event event;
    event.type = "Propagate";
    event.from_da = da;
    event.dov = dov;
    Deliver(rel.from, std::move(event));
  }
  return Status::OK();
}

Status CooperationManager::WithdrawPropagation(DaId da, DovId dov) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(storage::DovRecord record, repository_.Get(dov));
  if (record.owner_da != da && locks_.ScopeOwner(dov) != da) {
    return ProtocolError(dov.ToString() + " is not owned by " + da.ToString());
  }
  if (!record.propagated) {
    return Status::FailedPrecondition(dov.ToString() + " is not propagated");
  }
  record.propagated = false;
  TxnId txn = repository_.Begin();
  Status st = repository_.Put(txn, record);
  if (st.ok()) st = repository_.Commit(txn);
  if (!st.ok()) {
    repository_.Abort(txn).ok();
    return st;
  }
  ++stats_.withdrawals;

  // Notify every requiring DA that saw the DOV and revoke its read.
  for (const CoopRelationship& rel : relationships_) {
    if (rel.kind != RelKind::kUsage || rel.to != da) continue;
    locks_.RevokeUsageRead(dov, rel.from);
    TxnId grant_txn = repository_.Begin();
    repository_.DeleteMeta(grant_txn,
                            kGrantPrefix + std::to_string(dov.value()) + "/" +
                                std::to_string(rel.from.value()))
        .ok();
    repository_.Commit(grant_txn).ok();
    workflow::Event event;
    event.type = "Withdrawal";
    event.from_da = da;
    event.dov = dov;
    Deliver(rel.from, std::move(event));
  }
  // Push the revocation to the workstation DOV caches: the grants just
  // died, so no cache may keep serving this version locally.
  if (withdrawal_sink_) {
    withdrawal_sink_(da, dov, /*invalidated=*/false, DovId());
  }
  return Status::OK();
}

Status CooperationManager::InvalidateAndReplace(DaId da, DovId dov,
                                                DovId replacement) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * activity, GetMutableDa(da));
  CONCORD_ASSIGN_OR_RETURN(storage::DovRecord record, repository_.Get(dov));
  if (record.owner_da != da) {
    return ProtocolError(dov.ToString() + " is not owned by " + da.ToString());
  }
  CONCORD_ASSIGN_OR_RETURN(storage::DovRecord replacement_record,
                           repository_.Get(replacement));
  if (replacement_record.owner_da != da) {
    return ProtocolError("replacement must come from the scope of " +
                         da.ToString());
  }

  // "Another DOV from the scope of that DA which fulfills all the
  // required (and possibly more) features of the previously propagated
  // DOV will be propagated by the CM to the requiring DA for
  // replacement."
  for (const CoopRelationship& rel : relationships_) {
    if (rel.kind != RelKind::kUsage || !rel.active || rel.to != da) continue;
    if (!activity->spec.FulfillsSubset(replacement_record.data,
                                       rel.features)) {
      return ProtocolError("replacement " + replacement.ToString() +
                           " does not fulfil the features required by " +
                           rel.from.ToString());
    }
  }

  record.invalidated = true;
  record.propagated = false;
  TxnId txn = repository_.Begin();
  Status st = repository_.Put(txn, record);
  if (st.ok()) st = repository_.Commit(txn);
  if (!st.ok()) {
    repository_.Abort(txn).ok();
    return st;
  }
  ++stats_.invalidations;

  for (const CoopRelationship& rel : relationships_) {
    if (rel.kind != RelKind::kUsage || !rel.active || rel.to != da) continue;
    locks_.RevokeUsageRead(dov, rel.from);
    workflow::Event event;
    event.type = "Invalidation";
    event.from_da = da;
    event.dov = dov;
    event.params["replacement"] = std::to_string(replacement.value());
    Deliver(rel.from, std::move(event));
  }
  // Push to the workstation DOV caches before the replacement is
  // propagated, so no cache window exists where the dead version is
  // still served while the replacement already circulates.
  if (withdrawal_sink_) {
    withdrawal_sink_(da, dov, /*invalidated=*/true, replacement);
  }
  return Propagate(da, replacement);
}

std::vector<DovId> CooperationManager::InvalidationCandidates(
    DaId da) const {
  RecursiveMutexLock lock(&mu_);
  std::vector<DovId> candidates;
  auto activity = GetDa(da);
  if (!activity.ok() || (*activity)->final_dovs.empty()) {
    // Without a final DOV nothing is "clear" yet.
    return candidates;
  }
  for (DovId dov : repository_.DovsOf(da)) {
    auto record = repository_.Get(dov);
    if (!record.ok() || !record->propagated || record->invalidated) continue;
    bool feeds_a_final = false;
    for (DovId final_dov : (*activity)->final_dovs) {
      // Routed graph query: after a migration the DA's derivation
      // chain may span shards, each holding the edges created while
      // the DA was homed there.
      if (repository_.IsAncestor(da, dov, final_dov)) {
        feeds_a_final = true;
        break;
      }
    }
    if (!feeds_a_final) candidates.push_back(dov);
  }
  return candidates;
}

// --- Negotiation ---------------------------------------------------------

Result<RelId> CooperationManager::CreateNegotiationRelationship(
    DaId super, DaId a, DaId b, const std::vector<std::string>& subject) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(const DesignActivity* da_a, GetDa(a));
  CONCORD_ASSIGN_OR_RETURN(const DesignActivity* da_b, GetDa(b));
  // "We allow negotiation relationships between only the sub-DAs of the
  // same super-DA."
  if (da_a->parent != super || da_b->parent != super) {
    return ProtocolError("negotiation requires sub-DAs of the same super-DA " +
                         super.ToString());
  }
  if (FindRelationship(RelKind::kNegotiation, a, b) != nullptr) {
    return ProtocolError("negotiation relationship between " + a.ToString() +
                         " and " + b.ToString() + " already exists");
  }
  CoopRelationship rel;
  rel.id = rel_gen_.Next();
  rel.kind = RelKind::kNegotiation;
  rel.from = a;
  rel.to = b;
  rel.features = subject;
  RelId id = rel.id;
  relationships_.push_back(std::move(rel));
  ++stats_.negotiations_started;
  CONCORD_RETURN_NOT_OK(PersistRelationships());
  return id;
}

Status CooperationManager::Propose(DaId from, DaId to, Proposal proposal) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * proposer, GetMutableDa(from));
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * receiver, GetMutableDa(to));
  if (proposer->state != DaState::kActive &&
      proposer->state != DaState::kNegotiating) {
    return ProtocolError("Propose requires an active or negotiating DA");
  }
  if (receiver->state != DaState::kActive &&
      receiver->state != DaState::kNegotiating) {
    return ProtocolError("negotiation partner " + to.ToString() + " is " +
                         DaStateToString(receiver->state));
  }

  CoopRelationship* rel = FindRelationship(RelKind::kNegotiation, from, to);
  if (rel == nullptr) {
    // Dynamic establishment (Sect. 4.1) — still only between siblings.
    if (!proposer->parent.valid() || proposer->parent != receiver->parent) {
      return ProtocolError(
          "negotiation relationships connect only sub-DAs of the same "
          "super-DA");
    }
    CoopRelationship new_rel;
    new_rel.id = rel_gen_.Next();
    new_rel.kind = RelKind::kNegotiation;
    new_rel.from = from;
    new_rel.to = to;
    relationships_.push_back(std::move(new_rel));
    rel = &relationships_.back();
    ++stats_.negotiations_started;
    CONCORD_RETURN_NOT_OK(PersistRelationships());
  }
  if (pending_proposals_[to].has_value()) {
    return ProtocolError(to.ToString() + " already has a pending proposal");
  }

  proposal.relationship = rel->id;
  proposal.from = from;
  proposal.to = to;

  // Both parties suspend internal processing (state negotiating).
  proposer->state = DaState::kNegotiating;
  receiver->state = DaState::kNegotiating;
  pending_proposals_[to] = proposal;
  ++stats_.proposals;
  CONCORD_RETURN_NOT_OK(PersistDa(*proposer));
  CONCORD_RETURN_NOT_OK(PersistDa(*receiver));
  TxnId txn = repository_.Begin();
  repository_.PutMeta(txn, kProposalPrefix + std::to_string(to.value()),
                       persistence::SerializeProposal(proposal))
      .ok();
  repository_.Commit(txn).ok();

  workflow::Event event;
  event.type = "Propose";
  event.from_da = from;
  Deliver(to, std::move(event));
  return Status::OK();
}

Status CooperationManager::Agree(DaId da) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * receiver, GetMutableDa(da));
  CONCORD_RETURN_NOT_OK(
      RequireState(*receiver, DaState::kNegotiating, DaOperation::kAgree));
  auto& pending = pending_proposals_[da];
  if (!pending.has_value()) {
    return ProtocolError(da.ToString() + " has no pending proposal");
  }
  Proposal proposal = *pending;
  pending.reset();
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * proposer,
                           GetMutableDa(proposal.from));

  // Apply the agreed spec changes to both sides; both resume ("after
  // returning to the active state, internal processing is resumed,
  // maybe with a modified design specification").
  for (const storage::Feature& feature : proposal.for_from) {
    proposer->spec.Upsert(feature);
  }
  for (const storage::Feature& feature : proposal.for_to) {
    receiver->spec.Upsert(feature);
  }
  proposer->state = DaState::kActive;
  receiver->state = DaState::kActive;
  ++stats_.agreements;
  CONCORD_RETURN_NOT_OK(PersistDa(*proposer));
  CONCORD_RETURN_NOT_OK(PersistDa(*receiver));
  TxnId txn = repository_.Begin();
  repository_.DeleteMeta(txn, kProposalPrefix + std::to_string(da.value()))
      .ok();
  repository_.Commit(txn).ok();

  workflow::Event event;
  event.type = "Agree";
  event.from_da = da;
  Deliver(proposal.from, std::move(event));
  return Status::OK();
}

Status CooperationManager::Disagree(DaId da) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * receiver, GetMutableDa(da));
  CONCORD_RETURN_NOT_OK(
      RequireState(*receiver, DaState::kNegotiating, DaOperation::kDisagree));
  auto& pending = pending_proposals_[da];
  if (!pending.has_value()) {
    return ProtocolError(da.ToString() + " has no pending proposal");
  }
  Proposal proposal = *pending;
  pending.reset();
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * proposer,
                           GetMutableDa(proposal.from));
  proposer->state = DaState::kActive;
  receiver->state = DaState::kActive;
  ++stats_.disagreements;
  CONCORD_RETURN_NOT_OK(PersistDa(*proposer));
  CONCORD_RETURN_NOT_OK(PersistDa(*receiver));
  TxnId txn = repository_.Begin();
  repository_.DeleteMeta(txn, kProposalPrefix + std::to_string(da.value()))
      .ok();
  repository_.Commit(txn).ok();

  workflow::Event event;
  event.type = "Disagree";
  event.from_da = da;
  Deliver(proposal.from, std::move(event));
  return Status::OK();
}

Status CooperationManager::SubDasSpecificationConflict(DaId a, DaId b) {
  RecursiveMutexLock lock(&mu_);
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * da_a, GetMutableDa(a));
  CONCORD_ASSIGN_OR_RETURN(DesignActivity * da_b, GetMutableDa(b));
  if (!da_a->parent.valid() || da_a->parent != da_b->parent) {
    return ProtocolError("conflicting DAs must share a super-DA");
  }
  if (FindRelationship(RelKind::kNegotiation, a, b) == nullptr) {
    return ProtocolError("no negotiation relationship between " +
                         a.ToString() + " and " + b.ToString());
  }
  // Abandon any pending proposal between the two.
  for (DaId side : {a, b}) {
    auto& pending = pending_proposals_[side];
    if (pending.has_value() &&
        ((pending->from == a && pending->to == b) ||
         (pending->from == b && pending->to == a))) {
      pending.reset();
    }
  }
  da_a->state = DaState::kActive;
  da_b->state = DaState::kActive;
  ++stats_.conflicts_escalated;
  CONCORD_RETURN_NOT_OK(PersistDa(*da_a));
  CONCORD_RETURN_NOT_OK(PersistDa(*da_b));

  workflow::Event event;
  event.type = "Sub_DAs_Specification_Conflict";
  event.from_da = a;
  event.params["other"] = std::to_string(b.value());
  Deliver(da_a->parent, std::move(event));
  return Status::OK();
}

// --- Scope ---------------------------------------------------------------

bool CooperationManager::InScope(DaId da, DovId dov) {
  RecursiveMutexLock lock(&mu_);
  return locks_.CanRead(da, dov);
}

void CooperationManager::NoteCheckin(DaId da, DovId dov) {
  RecursiveMutexLock lock(&mu_);
  TxnId txn = repository_.Begin();
  repository_.PutMeta(txn, kScopePrefix + std::to_string(dov.value()),
                       std::to_string(da.value()))
      .ok();
  repository_.Commit(txn).ok();
}

void CooperationManager::NoteScriptProgress(DaId da, const std::string& node,
                                            const std::string& path,
                                            bool started, bool failed) {
  RecursiveMutexLock lock(&mu_);
  ScriptProgress& progress = script_progress_[da];
  progress.node = node;
  progress.path = path;
  if (started) {
    ++progress.nodes_started;
    ++stats_.script_nodes_started;
  } else if (failed) {
    ++progress.nodes_failed;
    ++stats_.script_nodes_failed;
  } else {
    ++progress.nodes_completed;
    ++stats_.script_nodes_completed;
  }
}

ScriptProgress CooperationManager::ScriptProgressOf(DaId da) const {
  RecursiveMutexLock lock(&mu_);
  auto it = script_progress_.find(da);
  return it != script_progress_.end() ? it->second : ScriptProgress{};
}

// --- Introspection ---------------------------------------------------------

std::vector<DaId> CooperationManager::Children(DaId da) const {
  RecursiveMutexLock lock(&mu_);
  auto activity = GetDa(da);
  return activity.ok() ? (*activity)->children : std::vector<DaId>{};
}

std::vector<DaId> CooperationManager::AllDas() const {
  RecursiveMutexLock lock(&mu_);
  std::vector<DaId> ids;
  for (const auto& [value, da] : das_) ids.push_back(DaId(value));
  return ids;
}

std::vector<CoopRelationship> CooperationManager::RelationshipsOf(
    DaId da) const {
  RecursiveMutexLock lock(&mu_);
  std::vector<CoopRelationship> result;
  for (const CoopRelationship& rel : relationships_) {
    if (rel.from == da || rel.to == da) result.push_back(rel);
  }
  return result;
}

std::optional<Proposal> CooperationManager::PendingProposalFor(
    DaId da) const {
  RecursiveMutexLock lock(&mu_);
  auto it = pending_proposals_.find(da);
  return it == pending_proposals_.end() ? std::nullopt : it->second;
}

int CooperationManager::Depth(DaId da) const {
  RecursiveMutexLock lock(&mu_);
  int depth = 0;
  auto current = GetDa(da);
  while (current.ok() && (*current)->parent.valid()) {
    ++depth;
    current = GetDa((*current)->parent);
  }
  return depth;
}

// --- Failure handling -------------------------------------------------------

void CooperationManager::Crash() {
  RecursiveMutexLock lock(&mu_);
  das_.clear();
  relationships_.clear();
  pending_proposals_.clear();
}

Status CooperationManager::Recover() {
  RecursiveMutexLock lock(&mu_);
  das_.clear();
  relationships_.clear();
  pending_proposals_.clear();

  uint64_t max_da = 0;
  for (const std::string& key : repository_.MetaKeysWithPrefix(kDaPrefix)) {
    CONCORD_ASSIGN_OR_RETURN(std::string text, repository_.GetMeta(key));
    CONCORD_ASSIGN_OR_RETURN(DesignActivity da,
                             persistence::DeserializeDa(text));
    max_da = std::max(max_da, da.id.value());
    das_.emplace(da.id.value(), std::move(da));
  }
  while (da_gen_.last() < max_da) da_gen_.Next();

  auto rels_text = repository_.GetMeta(kRelsKey);
  uint64_t max_rel = 0;
  if (rels_text.ok()) {
    CONCORD_ASSIGN_OR_RETURN(
        relationships_, persistence::DeserializeRelationships(*rels_text));
    for (const CoopRelationship& rel : relationships_) {
      max_rel = std::max(max_rel, rel.id.value());
    }
  }
  while (rel_gen_.last() < max_rel) rel_gen_.Next();

  for (const std::string& key :
       repository_.MetaKeysWithPrefix(kProposalPrefix)) {
    CONCORD_ASSIGN_OR_RETURN(std::string text, repository_.GetMeta(key));
    CONCORD_ASSIGN_OR_RETURN(Proposal proposal,
                             persistence::DeserializeProposal(text));
    pending_proposals_[proposal.to] = std::move(proposal);
  }

  CONCORD_RETURN_NOT_OK(ReestablishLocksLocked());
  CONCORD_INFO("cm", "recovered " << das_.size() << " DAs, "
                                  << relationships_.size()
                                  << " relationships");
  return Status::OK();
}

Status CooperationManager::ReestablishLocks() {
  RecursiveMutexLock lock(&mu_);
  return ReestablishLocksLocked();
}

Status CooperationManager::ReestablishLocksLocked() {
  // Rebuild the scope-lock tables. Base ownership comes from the
  // repository's committed DOV records; inheritance overrides live in
  // the meta store; usage grants were persisted per grant. Every write
  // routes to the shard owning the DOV, and re-applying an entry a
  // surviving shard already holds is idempotent — so this serves both
  // full-plane recovery and the one-node-recovered case.
  for (DaId da : AllDas()) {
    for (DovId dov : repository_.DovsOf(da)) {
      locks_.SetScopeOwner(dov, da);
    }
    auto activity = GetDa(da);
    if (activity.ok() && (*activity)->initial_dov) {
      locks_.GrantUsageRead(*(*activity)->initial_dov, da);
    }
  }
  for (const std::string& key :
       repository_.MetaKeysWithPrefix(kScopePrefix)) {
    CONCORD_ASSIGN_OR_RETURN(std::string value, repository_.GetMeta(key));
    DovId dov(std::stoull(key.substr(std::string(kScopePrefix).size())));
    locks_.SetScopeOwner(dov, DaId(std::stoull(value)));
  }
  for (const std::string& key :
       repository_.MetaKeysWithPrefix(kGrantPrefix)) {
    std::string tail = key.substr(std::string(kGrantPrefix).size());
    size_t slash = tail.find('/');
    if (slash == std::string::npos) continue;
    DovId dov(std::stoull(tail.substr(0, slash)));
    DaId da(std::stoull(tail.substr(slash + 1)));
    locks_.GrantUsageRead(dov, da);
  }
  // Ready-for-termination sub-DAs had granted their parents reads on
  // final DOVs.
  for (auto& [value, da] : das_) {
    if (da.state == DaState::kReadyForTermination && da.parent.valid()) {
      for (DovId dov : da.final_dovs) {
        locks_.GrantUsageRead(dov, da.parent);
      }
    }
  }
  return Status::OK();
}

}  // namespace concord::cooperation
