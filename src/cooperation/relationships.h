#ifndef CONCORD_COOPERATION_RELATIONSHIPS_H_
#define CONCORD_COOPERATION_RELATIONSHIPS_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "storage/feature.h"

namespace concord::cooperation {

/// The three explicitly modeled cooperation relationship types of
/// Sect. 4.1.
enum class RelKind {
  /// Super-DA -> sub-DA, established by Create_Sub_DA.
  kDelegation,
  /// Between sub-DAs of the same super-DA; subject: specifications.
  kNegotiation,
  /// Requiring DA <- supporting DA; subject: pre-released DOVs.
  kUsage,
};

const char* RelKindToString(RelKind kind);

/// One cooperation relationship. For usage relationships, `features`
/// records the quality the requiring DA asked for ("this feature set
/// defines the quality needed"); for negotiation relationships it
/// records the negotiation subject set by the super-DA or the
/// initiating Propose.
struct CoopRelationship {
  RelId id;
  RelKind kind;
  /// Delegation: super. Negotiation: either party. Usage: requiring DA.
  DaId from;
  /// Delegation: sub. Negotiation: other party. Usage: supporting DA.
  DaId to;
  std::vector<std::string> features;
  bool active = true;

  bool Connects(DaId a, DaId b) const {
    return (from == a && to == b) || (from == b && to == a);
  }

  std::string ToString() const;
};

/// A pending negotiation proposal: spec refinements offered by `from`
/// to `to` along a negotiation relationship. `for_from` / `for_to`
/// carry the feature changes each side would adopt on agreement (e.g.
/// moving the borderline between two cells trades area between the two
/// specs, Sect. 4.1).
struct Proposal {
  RelId relationship;
  DaId from;
  DaId to;
  std::vector<storage::Feature> for_from;
  std::vector<storage::Feature> for_to;
};

}  // namespace concord::cooperation

#endif  // CONCORD_COOPERATION_RELATIONSHIPS_H_
