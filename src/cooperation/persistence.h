#ifndef CONCORD_COOPERATION_PERSISTENCE_H_
#define CONCORD_COOPERATION_PERSISTENCE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "cooperation/design_activity.h"
#include "cooperation/relationships.h"
#include "storage/feature.h"

namespace concord::cooperation::persistence {

/// Text (de)serialization of the CM's durable state. The CM stores
/// these strings in the repository's transactional meta store, i.e. it
/// "employ[s] the data management facilities of the server DBMS"
/// (Sect. 5.4). The format is line/field based and intentionally
/// simple; feature and DA names must not contain '|', ';' or newlines.
///
/// Scripts (the DC element of the description vector) are *not* part of
/// the CM state: they persist at the design manager on the owning
/// workstation (Sect. 5.3), so a recovered DesignActivity carries an
/// empty script.

std::string SerializeFeature(const storage::Feature& feature);
Result<storage::Feature> DeserializeFeature(const std::string& text);

std::string SerializeSpec(const storage::DesignSpecification& spec);
Result<storage::DesignSpecification> DeserializeSpec(const std::string& text);

std::string SerializeDa(const DesignActivity& da);
Result<DesignActivity> DeserializeDa(const std::string& text);

std::string SerializeRelationships(
    const std::vector<CoopRelationship>& relationships);
Result<std::vector<CoopRelationship>> DeserializeRelationships(
    const std::string& text);

std::string SerializeProposal(const Proposal& proposal);
Result<Proposal> DeserializeProposal(const std::string& text);

}  // namespace concord::cooperation::persistence

#endif  // CONCORD_COOPERATION_PERSISTENCE_H_
