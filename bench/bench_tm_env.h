#ifndef CONCORD_BENCH_BENCH_TM_ENV_H_
#define CONCORD_BENCH_BENCH_TM_ENV_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "rpc/invalidation.h"
#include "rpc/network.h"
#include "rpc/transactional_rpc.h"
#include "storage/repository.h"
#include "txn/client_tm.h"
#include "txn/placement.h"
#include "txn/remote_server_stub.h"
#include "txn/scope_authority.h"
#include "txn/server_tm.h"
#include "txn/shard_router.h"

namespace concord::bench {

/// Shared benchmark fixture for the full TM stack: a server plane of
/// one or more nodes — each with its own repository shard (DOV ids
/// namespaced per shard), server-TM and ServerService RPC endpoint —
/// an invalidation bus, the placement authority on the coordinator,
/// and one workstation/client-TM per benchmark thread (each routing
/// through per-node RemoteServerStubs, so every server trip is a
/// countable TransactionalRpc call on the link it takes), each with a
/// seeded warm DOV owned by DA(t+1) on shard 0. Used by bench_cache,
/// the client-TM scenarios in bench_concurrent_checkout, and the
/// multi-server plane scenarios in bench_multi_server — one place to
/// update when the stack's wiring changes.
struct TmEnv {
  struct Shard {
    NodeId node;
    std::unique_ptr<storage::Repository> repo;
    std::unique_ptr<txn::ServerTm> tm;
  };

  SimClock clock;
  rpc::Network network{&clock, 42};
  rpc::TransactionalRpc rpc{&network};
  txn::PermissiveScopeAuthority scope;
  txn::PlacementMap placement;
  std::vector<Shard> shards;
  std::unique_ptr<rpc::InvalidationBus> bus;
  std::vector<std::unique_ptr<txn::RemoteServerStub>> stubs;
  std::vector<std::unique_ptr<txn::PlacementClient>> placement_clients;
  std::vector<std::unique_ptr<txn::ClientTm>> clients;  // one per thread
  DotId dot;
  std::vector<DovId> warm_dov;  // per-thread seeded input on shard 0

  // Single-server (shard 0) aliases kept for the existing benches.
  NodeId server_node;
  txn::ServerTm* server = nullptr;  // == shards[0].tm
  storage::Repository& repo() { return *shards[0].repo; }
  txn::ServerTm& server_at(size_t shard) { return *shards[shard].tm; }

  explicit TmEnv(int threads, int server_nodes = 1, int partitions = 1) {
    for (int s = 0; s < server_nodes; ++s) {
      Shard shard;
      shard.node =
          network.AddNode(s == 0 ? "server" : "server" + std::to_string(s));
      shard.repo = std::make_unique<storage::Repository>(&clock);
      shard.repo->set_dov_id_shard(static_cast<uint32_t>(s));
      storage::DesignObjectType* type = shard.repo->schema().DefineType("cell");
      type->AddAttr({"value", storage::AttrType::kInt, true, 0.0, 1e9});
      if (s == 0) dot = type->id();
      shards.push_back(std::move(shard));
      placement.RegisterNode(shards.back().node);
    }
    server_node = shards.front().node;
    bus = std::make_unique<rpc::InvalidationBus>(&network, server_node);
    for (Shard& shard : shards) {
      shard.tm = std::make_unique<txn::ServerTm>(shard.repo.get(), &network,
                                                 shard.node, &scope, bus.get(),
                                                 partitions);
      if (server_nodes > 1) shard.tm->JoinPlane(&placement);
      txn::RegisterServerService(shard.tm.get(), &rpc);
    }
    placement.SetLivenessProbe(
        [this](NodeId node) { return network.IsUp(node); });
    txn::RegisterPlacementService(&placement, &rpc, server_node);
    server = shards.front().tm.get();
    for (int t = 0; t < threads; ++t) {
      NodeId ws = network.AddNode("ws" + std::to_string(t));
      std::vector<std::pair<NodeId, txn::ServerService*>> routes;
      for (Shard& shard : shards) {
        stubs.push_back(
            std::make_unique<txn::RemoteServerStub>(&rpc, ws, shard.node));
        routes.emplace_back(shard.node, stubs.back().get());
      }
      placement_clients.push_back(
          std::make_unique<txn::PlacementClient>(&rpc, ws, server_node));
      clients.push_back(std::make_unique<txn::ClientTm>(
          txn::ShardRouter(std::move(routes), placement_clients.back().get()),
          &network, ws, &clock, bus.get()));
      warm_dov.push_back(Seed(DaId(t + 1), t));
    }
  }

  /// Commits one DOV owned by `da` on shard 0 (as that node's
  /// server-TM checkin would) and places the DA there.
  DovId Seed(DaId da, int64_t value) { return SeedOn(0, da, value); }

  /// Commits one DOV owned by `da` on the given shard.
  DovId SeedOn(size_t shard, DaId da, int64_t value) {
    storage::Repository& r = *shards[shard].repo;
    TxnId txn = r.Begin();
    storage::DovRecord record;
    record.id = r.NextDovId();
    record.owner_da = da;
    record.type = dot;
    record.data = storage::DesignObject(dot);
    record.data.SetAttr("value", value);
    DovId id = record.id;
    r.Put(txn, std::move(record)).ok();
    r.Commit(txn).ok();
    shards[shard].tm->locks().SetScopeOwner(id, da);
    if (shards.size() > 1) {
      placement.Assign(da, shards[shard].node).ok();
    }
    return id;
  }
};

}  // namespace concord::bench

#endif  // CONCORD_BENCH_BENCH_TM_ENV_H_
