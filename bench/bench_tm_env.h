#ifndef CONCORD_BENCH_BENCH_TM_ENV_H_
#define CONCORD_BENCH_BENCH_TM_ENV_H_

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "rpc/invalidation.h"
#include "rpc/network.h"
#include "rpc/transactional_rpc.h"
#include "storage/repository.h"
#include "txn/client_tm.h"
#include "txn/remote_server_stub.h"
#include "txn/scope_authority.h"
#include "txn/server_tm.h"

namespace concord::bench {

/// Shared benchmark fixture for the full TM stack: repository +
/// server-TM + invalidation bus + ServerService RPC endpoint on the
/// server node, and one workstation/client-TM per benchmark thread
/// (each behind its own RemoteServerStub, so every server trip is a
/// countable TransactionalRpc call), each with a seeded warm DOV owned
/// by DA(t+1). Used by bench_cache and the client-TM scenarios in
/// bench_concurrent_checkout — one place to update when the stack's
/// wiring changes.
struct TmEnv {
  SimClock clock;
  rpc::Network network{&clock, 42};
  rpc::TransactionalRpc rpc{&network};
  storage::Repository repo{&clock};
  txn::PermissiveScopeAuthority scope;
  NodeId server_node;
  std::unique_ptr<rpc::InvalidationBus> bus;
  std::unique_ptr<txn::ServerTm> server;
  std::vector<std::unique_ptr<txn::RemoteServerStub>> stubs;
  std::vector<std::unique_ptr<txn::ClientTm>> clients;  // one per thread
  DotId dot;
  std::vector<DovId> warm_dov;  // per-thread seeded input

  explicit TmEnv(int threads) {
    storage::DesignObjectType* type = repo.schema().DefineType("cell");
    type->AddAttr({"value", storage::AttrType::kInt, true, 0.0, 1e9});
    dot = type->id();
    server_node = network.AddNode("server");
    bus = std::make_unique<rpc::InvalidationBus>(&network, server_node);
    server = std::make_unique<txn::ServerTm>(&repo, &network, server_node,
                                             &scope, bus.get());
    txn::RegisterServerService(server.get(), &rpc);
    for (int t = 0; t < threads; ++t) {
      NodeId ws = network.AddNode("ws" + std::to_string(t));
      stubs.push_back(
          std::make_unique<txn::RemoteServerStub>(&rpc, ws, server_node));
      clients.push_back(std::make_unique<txn::ClientTm>(
          stubs.back().get(), &network, ws, &clock, bus.get()));
      warm_dov.push_back(Seed(DaId(t + 1), t));
    }
  }

  /// Commits one DOV owned by `da` (as the server-TM's checkin would).
  DovId Seed(DaId da, int64_t value) {
    TxnId txn = repo.Begin();
    storage::DovRecord record;
    record.id = repo.NextDovId();
    record.owner_da = da;
    record.type = dot;
    record.data = storage::DesignObject(dot);
    record.data.SetAttr("value", value);
    DovId id = record.id;
    repo.Put(txn, std::move(record)).ok();
    repo.Commit(txn).ok();
    server->locks().SetScopeOwner(id, da);
    return id;
  }
};

}  // namespace concord::bench

#endif  // CONCORD_BENCH_BENCH_TM_ENV_H_
