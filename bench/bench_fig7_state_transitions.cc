// Figure 7 — Simplified state/transition graph for a DA.
//
// Exercises the state machine operationally: throughput of the Fig. 7
// operations through the CM (including protocol-violation rejection
// cost, since the CM "checks each cooperative activity to comply with
// the integrity constraints"), plus a full legal lifecycle walk
// generated -> active -> negotiating -> active -> ready -> terminated.

#include <benchmark/benchmark.h>

#include "common/strings.h"
#include "bench/bench_util.h"

namespace concord {
namespace {

struct Fixture {
  explicit Fixture(uint64_t seed)
      : clock(),
        repo(&clock),
        locks(),
        cm(&repo, &locks, &clock) {
    (void)seed;
    auto* module = repo.schema().DefineType("module");
    module->AddAttr({"area", storage::AttrType::kDouble, false, {}, {}});
    auto* chip = repo.schema().DefineType("chip");
    chip->AddAttr({"area", storage::AttrType::kDouble, false, {}, {}});
    chip->AddPart({module->id(), 0, 1 << 20});
    chip_dot = chip->id();
    module_dot = module->id();
  }

  cooperation::DaDescription Desc(DotId dot) {
    cooperation::DaDescription d;
    d.dot = dot;
    d.designer = DesignerId(1);
    d.workstation = NodeId(1);
    return d;
  }

  SimClock clock;
  storage::Repository repo;
  txn::LockManager locks;
  cooperation::CooperationManager cm;
  DotId chip_dot;
  DotId module_dot;
};

// Full legal lifecycle of one sub-DA (ops 2,3,8,6 of Fig. 7 plus the
// negotiating loop 12/13).
void BM_StateMachine_FullLifecycle(benchmark::State& state) {
  Fixture fx(42);
  DaId top = *fx.cm.InitDesign(fx.Desc(fx.chip_dot));
  fx.cm.Start(top).ok();
  DaId sibling = *fx.cm.CreateSubDa(top, fx.Desc(fx.module_dot));
  fx.cm.Start(sibling).ok();
  for (auto _ : state) {
    DaId sub = *fx.cm.CreateSubDa(top, fx.Desc(fx.module_dot));
    fx.cm.Start(sub).ok();
    cooperation::Proposal p;
    fx.cm.Propose(sub, sibling, p).ok();   // both -> negotiating
    fx.cm.Agree(sibling).ok();             // both -> active
    fx.cm.SubDaImpossibleSpecification(sub, "r").ok();  // -> ready
    fx.cm.TerminateSubDa(top, sub).ok();   // -> terminated
  }
  state.counters["protocol_violations"] =
      static_cast<double>(fx.cm.stats().protocol_violations);
  state.SetItemsProcessed(state.iterations() * 6);  // ops per lifecycle
}
BENCHMARK(BM_StateMachine_FullLifecycle);

// Illegal-operation rejection cost (the * transitions of Fig. 7 that
// are not enabled in the current state).
void BM_StateMachine_ViolationRejection(benchmark::State& state) {
  Fixture fx(42);
  DaId top = *fx.cm.InitDesign(fx.Desc(fx.chip_dot));
  fx.cm.Start(top).ok();
  DaId sub = *fx.cm.CreateSubDa(top, fx.Desc(fx.module_dot));
  // sub stays `generated`: every work operation on it must be rejected.
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.cm.SubDaImpossibleSpecification(sub, "r"));
    benchmark::DoNotOptimize(fx.cm.Agree(sub));
    benchmark::DoNotOptimize(fx.cm.Start(top));  // double start
  }
  state.counters["violations"] =
      static_cast<double>(fx.cm.stats().protocol_violations);
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_StateMachine_ViolationRejection);

// Negotiation round-trip throughput (ops 12-14).
void BM_StateMachine_NegotiationRound(benchmark::State& state) {
  Fixture fx(42);
  DaId top = *fx.cm.InitDesign(fx.Desc(fx.chip_dot));
  fx.cm.Start(top).ok();
  DaId a = *fx.cm.CreateSubDa(top, fx.Desc(fx.module_dot));
  DaId b = *fx.cm.CreateSubDa(top, fx.Desc(fx.module_dot));
  fx.cm.Start(a).ok();
  fx.cm.Start(b).ok();
  bool agree = true;
  for (auto _ : state) {
    cooperation::Proposal p;
    p.for_to = {storage::Feature::AtMost("area_limit", "area", 50)};
    fx.cm.Propose(a, b, p).ok();
    if (agree) {
      fx.cm.Agree(b).ok();
    } else {
      fx.cm.Disagree(b).ok();
    }
    agree = !agree;
  }
  state.counters["agreements"] =
      static_cast<double>(fx.cm.stats().agreements);
  state.counters["disagreements"] =
      static_cast<double>(fx.cm.stats().disagreements);
}
BENCHMARK(BM_StateMachine_NegotiationRound);

// Evaluate throughput (op 7) as the spec size grows.
void BM_StateMachine_Evaluate(benchmark::State& state) {
  const int features = static_cast<int>(state.range(0));
  Fixture fx(42);
  storage::DesignSpecification spec;
  for (int i = 0; i < features; ++i) {
    spec.Add(storage::Feature::AtMost(IndexedName("f", i), "area",
                                      100.0 + i));
  }
  cooperation::DaDescription desc = fx.Desc(fx.chip_dot);
  desc.spec = spec;
  DaId top = *fx.cm.InitDesign(std::move(desc));
  fx.cm.Start(top).ok();

  TxnId txn = fx.repo.Begin();
  storage::DovRecord record;
  record.id = fx.repo.NextDovId();
  record.owner_da = top;
  record.type = fx.chip_dot;
  record.data = storage::DesignObject(fx.chip_dot);
  record.data.SetAttr("area", 50.0);
  fx.repo.Put(txn, record).ok();
  fx.repo.Commit(txn).ok();
  fx.locks.SetScopeOwner(record.id, top);

  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.cm.Evaluate(top, record.id));
  }
  state.counters["features"] = features;
}
BENCHMARK(BM_StateMachine_Evaluate)->Arg(1)->Arg(8)->Arg(64);

}  // namespace
}  // namespace concord

BENCHMARK_MAIN();
