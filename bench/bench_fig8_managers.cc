// Figure 8 — Responsibilities and interplay of activity managers:
// joint failure handling across CM / DM / client-TM / server-TM.
//
// Regenerates the figure as failure-injection experiments:
//  - workstation crash mid-DOP: recovery time and units of work lost,
//    swept over the recovery-point interval ("fire-walls inside a DOP");
//  - workstation crash mid-work-flow: forward recovery via the DM's
//    persistent script + log (no DOP re-execution);
//  - server crash: WAL + meta-store recovery of repository, lock
//    tables, and the CM's DA hierarchy.

#include <benchmark/benchmark.h>

#include "common/strings.h"
#include "bench/bench_util.h"

namespace concord {
namespace {

// Workstation crash inside one long DOP.
void BM_Failure_WorkstationCrashMidDop(benchmark::State& state) {
  const uint64_t rp_interval = static_cast<uint64_t>(state.range(0));
  double lost = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::ConcordSystem system(bench::DefaultConfig());
    NodeId ws = system.AddWorkstation("ws");
    txn::ClientTm& tm = system.client_tm(ws);
    tm.set_auto_recovery_interval(rp_interval);
    auto dop = tm.BeginDop(DaId(1));
    // ~1000 units of tool work in 13-unit slices (not commensurate
    // with the swept intervals, so partial loss is visible).
    for (int i = 0; i < 77; ++i) tm.DoWork(*dop, 13).ok();
    tm.Crash();
    state.ResumeTiming();
    benchmark::DoNotOptimize(tm.Recover());
    state.PauseTiming();
    lost = static_cast<double>(tm.stats().work_units_lost);
    state.ResumeTiming();
  }
  state.counters["rp_interval"] = static_cast<double>(rp_interval);
  state.counters["work_lost"] = lost;
  state.counters["work_total"] = 77 * 13;
}
BENCHMARK(BM_Failure_WorkstationCrashMidDop)
    ->Arg(0)     // checkout-only recovery points: everything lost
    ->Arg(499)
    ->Arg(97)
    ->Arg(23);

// Workstation crash between DOPs of a work flow: DM forward recovery.
void BM_Failure_WorkstationCrashMidWorkflow(benchmark::State& state) {
  const int dops_before_crash = static_cast<int>(state.range(0));
  double reexecuted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::ConcordSystem system(bench::DefaultConfig());
    auto da = sim::SetupTopLevelDa(&system, "c", 6, 1e9, 0);
    system.StartDa(*da).ok();
    auto& dm = system.dm(*da);
    while (dm.CompletedDops().size() <
           static_cast<size_t>(dops_before_crash)) {
      dm.Step().ok();
    }
    uint64_t dops_run_before = dm.stats().dops_run;
    NodeId ws = (*system.cm().GetDa(*da))->workstation;
    system.CrashWorkstation(ws);
    state.ResumeTiming();

    benchmark::DoNotOptimize(system.RecoverWorkstation(ws));

    state.PauseTiming();
    system.RunDa(*da).ok();
    // Forward recovery means completed DOPs were replayed, not re-run.
    reexecuted =
        static_cast<double>(dm.stats().dops_run - dops_run_before) -
        (5 - dops_before_crash);
    state.ResumeTiming();
  }
  state.counters["dops_at_crash"] = dops_before_crash;
  state.counters["dops_reexecuted"] = reexecuted;
}
BENCHMARK(BM_Failure_WorkstationCrashMidWorkflow)->Arg(1)->Arg(2)->Arg(4);

// Server crash: recovery cost as the design grows.
void BM_Failure_ServerCrashRecovery(benchmark::State& state) {
  const int designs = static_cast<int>(state.range(0));
  double dovs = 0;
  double das = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::ConcordSystem system(bench::DefaultConfig());
    for (int i = 0; i < designs; ++i) {
      auto da = sim::SetupTopLevelDa(&system, IndexedName("c", i), 4,
                                     1e9, 0);
      system.StartDa(*da).ok();
      system.RunDa(*da).ok();
    }
    dovs = static_cast<double>(system.repository().stats().dovs_written);
    das = static_cast<double>(system.cm().AllDas().size());
    system.CrashServer();
    state.ResumeTiming();
    benchmark::DoNotOptimize(system.RecoverServer());
  }
  state.counters["designs"] = designs;
  state.counters["dovs"] = dovs;
  state.counters["das"] = das;
}
BENCHMARK(BM_Failure_ServerCrashRecovery)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

// Checkpointing the repository bounds recovery cost: recovery after a
// checkpoint replays only the WAL suffix.
void BM_Failure_RecoveryWithCheckpoint(benchmark::State& state) {
  const bool checkpoint = state.range(0) != 0;
  double wal_at_crash = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::ConcordSystem system(bench::DefaultConfig());
    for (int i = 0; i < 8; ++i) {
      auto da = sim::SetupTopLevelDa(&system, IndexedName("c", i), 4,
                                     1e9, 0);
      system.StartDa(*da).ok();
      system.RunDa(*da).ok();
      if (checkpoint && i == 5) system.repository().Checkpoint();
    }
    wal_at_crash = static_cast<double>(system.repository().wal().size());
    system.CrashServer();
    state.ResumeTiming();
    benchmark::DoNotOptimize(system.RecoverServer());
  }
  state.counters["wal_records_replayed"] = wal_at_crash;
  state.SetLabel(checkpoint ? "with_checkpoint" : "no_checkpoint");
}
BENCHMARK(BM_Failure_RecoveryWithCheckpoint)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace concord

BENCHMARK_MAIN();
